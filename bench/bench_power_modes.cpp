// E9 — the headline comparison: "power control matters". Uniform power can
// be forced to Theta(n) slots while global power control stays near
// constant; oblivious power sits in between. Also includes the pairing-tree
// level-schedule baseline (the prior art's Theta(1/log n) rate).

#include "bench_common.h"

#include "core/baseline.h"
#include "mst/tree.h"
#include "schedule/packing.h"

namespace wagg {
namespace {

void print_table() {
  bench::print_header(
      "E9: slots by power mode and tree (rate = 1/slots)",
      "MST + global power is the paper's protocol. 'pairing/level' is the\n"
      "[11]-style baseline. The exponential chain is the nightmare instance\n"
      "for uniform power (Theta(n) slots, Moscibroda-Wattenhofer).");
  util::Table t({"family", "n", "uniform", "linear", "P_1/2", "global",
                 "pairing/level", "FFD global"});
  struct Case {
    const char* family;
    std::size_t n;
  };
  const Case cases[] = {
      {"uniform", 512},  {"uniform", 2048}, {"cluster", 512},
      {"grid", 1024},    {"expchain", 64},  {"expchain", 128},
      {"unitchain", 256},
  };
  for (const auto& c : cases) {
    const auto pts = workload::make_family(c.family, c.n, 5);
    auto slots_for = [&](core::PowerMode mode) {
      auto cfg = workload::mode_config(mode);
      return core::plan_aggregation(pts, cfg).schedule().length();
    };
    const auto pt = mst::pairing_tree(pts, 0);
    const auto level =
        core::level_schedule(pt, workload::mode_config(core::PowerMode::kGlobal));
    // Conflict-graph-free baseline: first-fit-decreasing against the exact
    // power-control oracle on the MST links. Every trial re-solves the slot
    // spectral radius, so this is quadratic-ish in slot size — capped to the
    // moderate instances (that is the point of the conflict graphs: local
    // decisions instead of global re-solves).
    std::string ffd_slots = "-";
    if (pts.size() <= 640) {
      const auto tree = mst::mst_tree(pts, 0);
      const auto ffd = schedule::ffd_schedule(
          tree.links,
          schedule::power_control_oracle(
              tree.links, workload::mode_config(core::PowerMode::kGlobal).sinr));
      ffd_slots = std::to_string(ffd.length());
    }
    t.row()
        .cell(c.family)
        .cell(pts.size())
        .cell(slots_for(core::PowerMode::kUniform))
        .cell(slots_for(core::PowerMode::kLinear))
        .cell(slots_for(core::PowerMode::kOblivious))
        .cell(slots_for(core::PowerMode::kGlobal))
        .cell(level.schedule.length())
        .cell(ffd_slots);
  }
  t.print(std::cout);
}

void BM_ModeComparison(benchmark::State& state) {
  const auto pts = workload::make_family("uniform", 512, 1);
  const auto mode = static_cast<core::PowerMode>(state.range(0));
  const auto cfg = workload::mode_config(mode);
  for (auto _ : state) {
    const auto plan = core::plan_aggregation(pts, cfg);
    benchmark::DoNotOptimize(plan.schedule().length());
  }
}
BENCHMARK(BM_ModeComparison)
    ->Arg(static_cast<int>(core::PowerMode::kUniform))
    ->Arg(static_cast<int>(core::PowerMode::kOblivious))
    ->Arg(static_cast<int>(core::PowerMode::kGlobal))
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wagg

int main(int argc, char** argv) {
  wagg::print_table();
  std::cout << "\n";
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
