// E12 — engineering performance: wall-clock scaling of each pipeline stage
// and the naive vs bucket-grid conflict-graph ablation. Not a paper claim;
// documents that the library is usable at laptop scale.

#include "bench_common.h"

#include "coloring/coloring.h"
#include "conflict/fgraph.h"
#include "mst/tree.h"
#include "schedule/repair.h"

namespace wagg {
namespace {

void BM_MstBuild(benchmark::State& state) {
  const auto pts = workload::make_family(
      "uniform", static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    const auto edges = mst::euclidean_mst(pts);
    benchmark::DoNotOptimize(edges.size());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MstBuild)->RangeMultiplier(4)->Range(256, 16384)
    ->Unit(benchmark::kMillisecond)->Complexity(benchmark::oNSquared);

void BM_ConflictNaive(benchmark::State& state) {
  const auto pts = workload::make_family(
      "uniform", static_cast<std::size_t>(state.range(0)), 1);
  const auto tree = mst::mst_tree(pts, 0);
  const auto spec = conflict::ConflictSpec::logarithmic(2.0, 3.0);
  for (auto _ : state) {
    const auto g = conflict::build_conflict_graph(tree.links, spec);
    benchmark::DoNotOptimize(g.num_edges());
  }
}
BENCHMARK(BM_ConflictNaive)->RangeMultiplier(4)->Range(256, 4096)
    ->Unit(benchmark::kMillisecond);

void BM_ConflictBucketed(benchmark::State& state) {
  const auto pts = workload::make_family(
      "uniform", static_cast<std::size_t>(state.range(0)), 1);
  const auto tree = mst::mst_tree(pts, 0);
  const auto spec = conflict::ConflictSpec::logarithmic(2.0, 3.0);
  for (auto _ : state) {
    const auto g = conflict::build_conflict_graph_bucketed(tree.links, spec);
    benchmark::DoNotOptimize(g.num_edges());
  }
}
BENCHMARK(BM_ConflictBucketed)->RangeMultiplier(4)->Range(256, 16384)
    ->Unit(benchmark::kMillisecond);

void BM_GreedyColoring(benchmark::State& state) {
  const auto pts = workload::make_family(
      "uniform", static_cast<std::size_t>(state.range(0)), 1);
  const auto tree = mst::mst_tree(pts, 0);
  const auto g = conflict::build_conflict_graph_bucketed(
      tree.links, conflict::ConflictSpec::logarithmic(2.0, 3.0));
  const auto order = tree.links.by_decreasing_length();
  for (auto _ : state) {
    const auto c = coloring::greedy_color(g, order);
    benchmark::DoNotOptimize(c.num_colors);
  }
}
BENCHMARK(BM_GreedyColoring)->RangeMultiplier(4)->Range(256, 16384)
    ->Unit(benchmark::kMillisecond);

void BM_EndToEndGlobal(benchmark::State& state) {
  const auto pts = workload::make_family(
      "uniform", static_cast<std::size_t>(state.range(0)), 1);
  const auto cfg = workload::mode_config(core::PowerMode::kGlobal);
  for (auto _ : state) {
    const auto plan = core::plan_aggregation(pts, cfg);
    benchmark::DoNotOptimize(plan.schedule().length());
  }
}
BENCHMARK(BM_EndToEndGlobal)->RangeMultiplier(4)->Range(256, 4096)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wagg

int main(int argc, char** argv) {
  wagg::bench::print_header(
      "E12: library performance scaling",
      "google-benchmark timings; see the counters below. BM_Conflict* is the\n"
      "naive-vs-bucketed ablation from DESIGN.md.");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
