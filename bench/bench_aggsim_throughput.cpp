// E11 — end-to-end validation that a verified coloring schedule of length L
// sustains generation period L (bounded buffers, steady rate exactly 1/L)
// and that offering more load (period L-1) overflows buffers — the paper's
// definition of achievable rate made operational.

#include "bench_common.h"

#include "schedule/simulator.h"

namespace wagg {
namespace {

void print_table() {
  bench::print_header(
      "E11: simulator throughput — sustained vs overdriven",
      "At period = slots the steady rate equals 1/slots and the peak buffer\n"
      "is independent of the frame count; at period = slots-1 the backlog\n"
      "grows with the frame count (rate not achievable).");
  util::Table t({"n", "slots L", "period", "steady rate", "1/L", "buf @128",
                 "buf @256", "verdict"});
  for (std::size_t n : {64u, 256u, 1024u}) {
    const auto pts = workload::make_family("uniform", n, 21);
    const auto plan =
        core::plan_aggregation(pts, workload::mode_config(core::PowerMode::kGlobal));
    const std::size_t slots = plan.schedule().length();
    for (const std::size_t period : {slots, slots > 1 ? slots - 1 : slots}) {
      // Both windows sit past the pipeline-fill transient (fill is about
      // height * L slots ~ under 128 frames for these instances), so the
      // peak buffer is flat for a sustainable rate and keeps growing for an
      // overdriven one.
      schedule::SimulationConfig cfg;
      cfg.generation_period = period;
      cfg.num_frames = 128;
      cfg.max_slots = period * 128 + 40000;
      const auto rep_a =
          schedule::simulate_aggregation(plan.tree, plan.schedule(), cfg);
      cfg.num_frames = 256;
      cfg.max_slots = period * 256 + 40000;
      const auto rep_b =
          schedule::simulate_aggregation(plan.tree, plan.schedule(), cfg);
      const bool stable = rep_b.max_buffer <= rep_a.max_buffer + 2;
      t.row()
          .cell(n)
          .cell(slots)
          .cell(period)
          .cell(rep_b.steady_rate, 4)
          .cell(1.0 / static_cast<double>(slots), 4)
          .cell(rep_a.max_buffer)
          .cell(rep_b.max_buffer)
          .cell(period == slots ? (stable ? "sustained" : "UNSTABLE?")
                                : (stable ? "unexpected" : "overflows"));
      if (period == slots && slots == 1) break;
    }
  }
  t.print(std::cout);
}

void BM_SimulateAtCapacity(benchmark::State& state) {
  const auto pts = workload::make_family(
      "uniform", static_cast<std::size_t>(state.range(0)), 21);
  const auto plan =
      core::plan_aggregation(pts, workload::mode_config(core::PowerMode::kGlobal));
  schedule::SimulationConfig cfg;
  cfg.generation_period = plan.schedule().length();
  cfg.num_frames = 64;
  for (auto _ : state) {
    const auto rep =
        schedule::simulate_aggregation(plan.tree, plan.schedule(), cfg);
    benchmark::DoNotOptimize(rep.steady_rate);
  }
}
BENCHMARK(BM_SimulateAtCapacity)
    ->Arg(256)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wagg

int main(int argc, char** argv) {
  wagg::print_table();
  std::cout << "\n";
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
