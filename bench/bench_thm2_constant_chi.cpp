// E2 — Theorem 2 / Lemma 1: chi(G_1(MST)) = O(1). The Lemma 1 statistic
// max_i I(i, T_i^+), the first-fit refinement class count, and the greedy
// chromatic number of G_1 must all stay flat as n grows.

#include "bench_common.h"

#include "coloring/coloring.h"
#include "coloring/refinement.h"
#include "conflict/fgraph.h"
#include "mst/tree.h"
#include "sinr/interference.h"

namespace wagg {
namespace {

void print_table() {
  bench::print_header(
      "E2: Theorem 2 — chi(G_1(MST)) = O(1)",
      "Paper: the unit conflict graph of any planar MST has constant\n"
      "chromatic number, via refinement driven by Lemma 1's I(i,T_i^+)=O(1).\n"
      "All three columns must be flat in n (constants differ per family).");
  util::Table t({"family", "n", "lemma1 max I", "refine classes",
                 "greedy chi(G_1)", "chi flat?"});
  for (const std::string family : {"uniform", "cluster", "grid", "expchain"}) {
    int first_chi = -1, last_chi = -1;
    for (std::size_t n : {256u, 1024u, 4096u}) {
      const auto pts = workload::make_family(family, n, 42);
      const auto tree = mst::mst_tree(pts, 0);
      const double lemma1 = sinr::lemma1_statistic(tree.links, 3.0);
      const auto refinement = coloring::firstfit_refinement(tree.links, 3.0);
      const auto g1 = conflict::build_conflict_graph_bucketed(
          tree.links, conflict::ConflictSpec::constant(1.0));
      const auto colors =
          coloring::greedy_color(g1, tree.links.by_decreasing_length());
      if (first_chi < 0) first_chi = colors.num_colors;
      last_chi = colors.num_colors;
      t.row()
          .cell(family)
          .cell(pts.size())
          .cell(lemma1, 2)
          .cell(refinement.num_classes)
          .cell(colors.num_colors)
          .cell(n == 4096 ? (std::abs(last_chi - first_chi) <= 2 ? "yes" : "NO")
                          : "");
    }
  }
  t.print(std::cout);
}

void BM_Refinement(benchmark::State& state) {
  const auto pts =
      workload::make_family("uniform", static_cast<std::size_t>(state.range(0)), 1);
  const auto tree = mst::mst_tree(pts, 0);
  for (auto _ : state) {
    const auto r = coloring::firstfit_refinement(tree.links, 3.0);
    benchmark::DoNotOptimize(r.num_classes);
  }
}
BENCHMARK(BM_Refinement)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_G1Coloring(benchmark::State& state) {
  const auto pts =
      workload::make_family("uniform", static_cast<std::size_t>(state.range(0)), 1);
  const auto tree = mst::mst_tree(pts, 0);
  const auto g1 = conflict::build_conflict_graph_bucketed(
      tree.links, conflict::ConflictSpec::constant(1.0));
  const auto order = tree.links.by_decreasing_length();
  for (auto _ : state) {
    const auto c = coloring::greedy_color(g1, order);
    benchmark::DoNotOptimize(c.num_colors);
  }
}
BENCHMARK(BM_G1Coloring)->Arg(1024)->Arg(4096)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wagg

int main(int argc, char** argv) {
  wagg::print_table();
  std::cout << "\n";
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
