// E1 — Fig 1: the worked 5-node pipeline (rate 1/2, latency 3) and the
// Sec 3.1 rate-vs-latency discussion on chains and grids.

#include "bench_common.h"

#include "core/baseline.h"
#include "instance/basic.h"
#include "instance/special.h"
#include "mst/tree.h"
#include "schedule/latency.h"
#include "schedule/simulator.h"
#include "schedule/verify.h"
#include "sinr/power.h"

namespace wagg {
namespace {

schedule::Schedule remap_fig1_schedule(const mst::AggregationTree& tree) {
  auto link_of = [&](std::int32_t child) {
    return static_cast<std::size_t>(
        tree.link_of_node[static_cast<std::size_t>(child)]);
  };
  schedule::Schedule s;
  s.slots = {{link_of(0), link_of(3)}, {link_of(1), link_of(2)}};
  return s;
}

void print_fig1_table() {
  bench::print_header(
      "E1a: Fig 1 five-node example",
      "Paper: periodic 2-slot schedule attains rate 1/2, frame latency 3,\n"
      "node d buffers two values; both slots SINR-feasible (uniform power,\n"
      "alpha=3, beta=2).");
  const auto inst = instance::fig1_instance();
  const std::vector<mst::Edge> edges{{0, 2}, {1, 3}, {2, 4}, {3, 4}};
  const auto tree = mst::orient_toward_sink(inst.points, edges, 4);
  const auto s = remap_fig1_schedule(tree);

  sinr::SinrParams prm;
  prm.alpha = 3.0;
  prm.beta = 2.0;
  const auto oracle =
      schedule::fixed_power_oracle(tree.links, prm,
                                   sinr::uniform_power(tree.links, prm));
  const bool feasible = schedule::verify_schedule(tree.links, s, oracle).ok();

  schedule::SimulationConfig cfg;
  cfg.num_frames = 200;
  cfg.generation_period = 2;
  const auto rep = schedule::simulate_aggregation(tree, s, cfg);

  util::Table t({"quantity", "paper", "measured"});
  t.row().cell("slots feasible").cell("yes").cell(feasible ? "yes" : "NO");
  t.row().cell("rate").cell("1/2").cell(rep.steady_rate, 4);
  t.row().cell("latency (slots)").cell("3").cell(rep.max_latency);
  t.row().cell("max buffer").cell("2").cell(rep.max_buffer);
  t.print(std::cout);
}

void print_rate_vs_latency_table() {
  bench::print_header(
      "E1b: rate vs latency on chains (Sec 3.1)",
      "Unit chains sustain constant rate (1/3 here) with Theta(n) latency;\n"
      "the pairing-tree baseline gets O(log n) latency at Theta(1/log n) "
      "rate.");
  util::Table t({"n", "chain rate", "chain latency", "ordered latency",
                 "pairing slots", "pairing rate", "pairing latency"});
  for (std::size_t n : {16u, 32u, 64u, 128u}) {
    const auto tree = mst::mst_tree(instance::unit_chain(n),
                                    static_cast<std::int32_t>(n - 1));
    schedule::Schedule s;
    s.slots.assign(3, {});
    for (std::size_t i = 0; i < tree.links.size(); ++i) {
      const auto sender = static_cast<std::size_t>(tree.links.link(i).sender);
      s.slots[static_cast<std::size_t>(tree.depth[sender]) % 3].push_back(i);
    }
    schedule::SimulationConfig cfg;
    cfg.num_frames = 64;
    cfg.generation_period = 3;
    const auto chain_rep = schedule::simulate_aggregation(tree, s, cfg);
    // Latency-aware slot ordering: same slots, same rate, lower latency.
    const auto ordered_rep = schedule::simulate_aggregation(
        tree, schedule::optimize_slot_order(tree, s), cfg);

    // Pairing-tree baseline under global power.
    const auto pt = mst::pairing_tree(instance::unit_chain(n),
                                      static_cast<std::int32_t>(n - 1));
    const auto level = core::level_schedule(
        pt, workload::mode_config(core::PowerMode::kGlobal));
    schedule::SimulationConfig pcfg;
    pcfg.num_frames = 64;
    pcfg.generation_period = level.schedule.length();
    const auto pair_rep =
        schedule::simulate_aggregation(pt.tree, level.schedule, pcfg);

    t.row()
        .cell(n)
        .cell(chain_rep.steady_rate, 4)
        .cell(chain_rep.max_latency)
        .cell(ordered_rep.max_latency)
        .cell(level.schedule.length())
        .cell(pair_rep.steady_rate, 4)
        .cell(pair_rep.max_latency);
  }
  t.print(std::cout);
}

void BM_Fig1Simulation(benchmark::State& state) {
  const auto inst = instance::fig1_instance();
  const std::vector<mst::Edge> edges{{0, 2}, {1, 3}, {2, 4}, {3, 4}};
  const auto tree = mst::orient_toward_sink(inst.points, edges, 4);
  const auto s = remap_fig1_schedule(tree);
  schedule::SimulationConfig cfg;
  cfg.num_frames = static_cast<std::size_t>(state.range(0));
  cfg.generation_period = 2;
  for (auto _ : state) {
    const auto rep = schedule::simulate_aggregation(tree, s, cfg);
    benchmark::DoNotOptimize(rep.frames_completed);
  }
  state.counters["rate"] = 0.5;
}
BENCHMARK(BM_Fig1Simulation)->Arg(64)->Arg(1024)->Unit(benchmark::kMicrosecond);

void BM_ChainSimulation(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto tree = mst::mst_tree(instance::unit_chain(n),
                                  static_cast<std::int32_t>(n - 1));
  schedule::Schedule s;
  s.slots.assign(3, {});
  for (std::size_t i = 0; i < tree.links.size(); ++i) {
    const auto sender = static_cast<std::size_t>(tree.links.link(i).sender);
    s.slots[static_cast<std::size_t>(tree.depth[sender]) % 3].push_back(i);
  }
  schedule::SimulationConfig cfg;
  cfg.num_frames = 64;
  cfg.generation_period = 3;
  for (auto _ : state) {
    const auto rep = schedule::simulate_aggregation(tree, s, cfg);
    benchmark::DoNotOptimize(rep.max_latency);
  }
}
BENCHMARK(BM_ChainSimulation)->Arg(64)->Arg(256)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace wagg

int main(int argc, char** argv) {
  wagg::print_fig1_table();
  wagg::print_rate_vs_latency_table();
  std::cout << "\n";
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
