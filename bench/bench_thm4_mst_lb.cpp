// E5 — Theorem 4 / Fig 3: the recursive instances R_t whose MST cannot be
// aggregated faster than rate 2/(t+1) under arbitrary power control, with
// t = Omega(log* Delta). Delta grows tower-like in t, so t <= 4 is all that
// IEEE doubles can materialize (and all that log* ever needs).

#include "bench_common.h"

#include "analysis/audit.h"
#include "instance/lowerbound.h"
#include "mst/tree.h"
#include "schedule/verify.h"
#include "sinr/interference.h"
#include "util/logmath.h"

namespace wagg {
namespace {

void print_table() {
  bench::print_header(
      "E5: Theorem 4 — R_t needs Omega(t) slots on its MST",
      "Copy counts are capped (paper's k_t is astronomically large; see\n"
      "DESIGN.md substitutions), weakening Claim 1 below t's full strength,\n"
      "but the measured slots still grow with t while log2(Delta) grows\n"
      "tower-like, certifying the log* shape.");
  util::Table t({"t", "nodes", "log2 Delta", "log* D", "capped", "exact LB",
                 "planner slots", "thm3 stat"});
  sinr::SinrParams prm;
  prm.alpha = 3.0;
  prm.beta = 1.0;
  for (int level = 1; level <= 4; ++level) {
    const auto rt = instance::recursive_rt(level, 4.0, 12, 60000);
    const auto cfg = workload::mode_config(core::PowerMode::kGlobal);
    const auto plan = core::plan_aggregation(rt.points, cfg);
    std::string exact = "-";
    if (rt.points.size() <= 14) {
      const auto oracle =
          schedule::power_control_oracle(plan.tree.links, prm);
      const auto bound =
          analysis::min_slots_lower_bound(plan.tree.links, oracle);
      if (bound) exact = std::to_string(*bound);
    }
    std::vector<std::size_t> all(plan.tree.links.size());
    for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
    t.row()
        .cell(level)
        .cell(rt.points.size())
        .cell(rt.log2_delta, 1)
        .cell(util::log2_star_of_log2(rt.log2_delta))
        .cell(rt.capped ? "yes" : "no")
        .cell(exact)
        .cell(plan.schedule().length())
        .cell(sinr::theorem3_statistic(plan.tree.links, all, prm.alpha), 2);
  }
  t.print(std::cout);
}

void print_claim1_table() {
  bench::print_header(
      "E5b: Claim 1 mechanics on R_2",
      "Any feasible set containing the long link (the G link spanning half\n"
      "the instance) can hold only a bounded number of copy links: exhaustive\n"
      "max feasible set with the long-link anchor vs total links.");
  util::Table t({"t", "links", "long-link anchor max set", "greedy packing"});
  sinr::SinrParams prm;
  prm.alpha = 3.0;
  prm.beta = 1.0;
  for (int level : {2, 3}) {
    const auto rt = instance::recursive_rt(level, 4.0, level == 2 ? 12 : 6,
                                           60000);
    const auto tree = mst::mst_tree(rt.points, 0);
    if (tree.links.size() > 20) continue;
    const auto oracle = schedule::power_control_oracle(tree.links, prm);
    // The long link is the longest one.
    const auto longest = tree.links.by_decreasing_length().front();
    std::vector<std::size_t> all(tree.links.size());
    for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
    const auto exhaustive = analysis::max_feasible_set_with_anchor(
        tree.links, all, longest, oracle);
    const auto greedy = analysis::greedy_feasible_packing(
        tree.links, tree.links.by_decreasing_length(), oracle, longest);
    t.row()
        .cell(level)
        .cell(tree.links.size())
        .cell(exhaustive)
        .cell(greedy.size());
  }
  t.print(std::cout);
}

void BM_RtPlanning(benchmark::State& state) {
  const auto rt =
      instance::recursive_rt(static_cast<int>(state.range(0)), 4.0, 12, 60000);
  const auto cfg = workload::mode_config(core::PowerMode::kGlobal);
  for (auto _ : state) {
    const auto plan = core::plan_aggregation(rt.points, cfg);
    benchmark::DoNotOptimize(plan.schedule().length());
  }
}
BENCHMARK(BM_RtPlanning)->Arg(2)->Arg(3)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wagg

int main(int argc, char** argv) {
  wagg::print_table();
  wagg::print_claim1_table();
  std::cout << "\n";
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
