// E7 — Proposition 2: on the line, the MST is a constant-factor optimal
// aggregation structure for the uniform (P_0) and linear (P_1) schemes.
// We compare the MST schedule length against random alternative spanning
// trees on random line instances.

#include "bench_common.h"

#include "instance/basic.h"

#include "mst/tree.h"
#include "util/rng.h"
#include "util/stats.h"

namespace wagg {
namespace {

mst::AggregationTree random_line_tree(const geom::Pointset& pts,
                                      util::Rng& rng) {
  std::vector<std::size_t> order(pts.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return pts[a].x < pts[b].x;
  });
  std::vector<mst::Edge> edges;
  for (std::size_t i = 1; i < order.size(); ++i) {
    const std::size_t parent = rng.below(i);
    edges.push_back(mst::Edge{static_cast<std::int32_t>(order[parent]),
                              static_cast<std::int32_t>(order[i])});
  }
  return mst::orient_toward_sink(pts, edges,
                                 static_cast<std::int32_t>(order[0]));
}

void print_table() {
  bench::print_header(
      "E7: Proposition 2 — MST optimal on the line for P_0 / P_1",
      "MST slots vs 12 random alternative spanning trees per instance\n"
      "(min / mean / max over alternatives). The MST column should never\n"
      "exceed the alternatives' min by more than a constant factor — in\n"
      "practice it is simply the best.");
  util::Table t({"mode", "n", "MST slots", "alt min", "alt mean", "alt max"});
  for (const auto mode : {core::PowerMode::kUniform, core::PowerMode::kLinear}) {
    for (std::size_t n : {12u, 24u, 48u}) {
      util::RunningStats mst_stats;
      util::RunningStats alt_min_s, alt_mean_s, alt_max_s;
      for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        const auto pts = instance::uniform_line(n, 1000.0, seed);
        const auto cfg = workload::mode_config(mode);
        const auto plan = core::plan_aggregation(pts, cfg);
        mst_stats.add(static_cast<double>(plan.schedule().length()));
        util::RunningStats alts;
        util::Rng rng(seed * 997);
        for (int trial = 0; trial < 12; ++trial) {
          const auto alt_tree = random_line_tree(pts, rng);
          const auto alt = core::schedule_links(alt_tree.links, cfg);
          alts.add(static_cast<double>(alt.schedule.length()));
        }
        alt_min_s.add(alts.min());
        alt_mean_s.add(alts.mean());
        alt_max_s.add(alts.max());
      }
      t.row()
          .cell(core::to_string(mode))
          .cell(n)
          .cell(mst_stats.mean(), 1)
          .cell(alt_min_s.mean(), 1)
          .cell(alt_mean_s.mean(), 1)
          .cell(alt_max_s.mean(), 1);
    }
  }
  t.print(std::cout);
}

void BM_LinePlanning(benchmark::State& state) {
  const auto pts = instance::uniform_line(
      static_cast<std::size_t>(state.range(0)), 1000.0, 1);
  const auto cfg = workload::mode_config(core::PowerMode::kUniform);
  for (auto _ : state) {
    const auto plan = core::plan_aggregation(pts, cfg);
    benchmark::DoNotOptimize(plan.schedule().length());
  }
}
BENCHMARK(BM_LinePlanning)->Arg(32)->Arg(128)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wagg

int main(int argc, char** argv) {
  wagg::print_table();
  std::cout << "\n";
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
