// E6 — Fig 4 / Claim 2 / Proposition 3: the MST is not always the right
// aggregation tree. The zigzag spanning path schedules in 2 slots under
// P_tau while the MST of the same points needs one slot per link.

#include "bench_common.h"

#include "analysis/audit.h"
#include "instance/zigzag.h"
#include "mst/tree.h"
#include "schedule/verify.h"
#include "sinr/power.h"

namespace wagg {
namespace {

void print_table() {
  bench::print_header(
      "E6: Proposition 3 — zigzag tree (2 slots) vs MST (n-1 slots)",
      "Reproduction note: the paper states tau in (0, 2/5]; numerically the\n"
      "short slot requires gamma(tau) > 0, i.e. tau < ~0.3403 (see the\n"
      "tau = 0.4 row, infeasible for every x). Mirrored rows exercise the\n"
      "tau >= 3/5 variant.");
  util::Table t({"tau", "m (longs)", "nodes", "zigzag slots ok?",
                 "MST cofeasible pairs", "MST exact slots", "separation"});
  sinr::SinrParams prm;
  prm.alpha = 3.0;
  prm.beta = 1.0;
  struct Case {
    double tau;
    std::size_t m;
    double x;
    bool mirrored;
  };
  const Case cases[] = {
      {0.25, 3, 24.0, false}, {0.25, 4, 24.0, false}, {0.3, 3, 32.0, false},
      {0.3, 4, 32.0, false},  {0.4, 4, 32.0, false},  {0.7, 4, 32.0, true},
      {0.75, 4, 24.0, true},
  };
  for (const auto& c : cases) {
    const auto inst = instance::zigzag_instance(c.m, c.tau, c.x, c.mirrored);
    const auto power = sinr::oblivious_power(inst.tree_links, c.tau, prm);
    const bool longs_ok =
        sinr::is_feasible(inst.tree_links, inst.long_links, prm, power);
    const bool shorts_ok =
        sinr::is_feasible(inst.tree_links, inst.short_links, prm, power);

    const auto mst_links = mst::mst_tree(inst.points, inst.sink).links;
    const auto mst_power = sinr::oblivious_power(mst_links, c.tau, prm);
    const auto oracle = schedule::fixed_power_oracle(mst_links, prm, mst_power);
    const auto pairs = analysis::count_cofeasible_pairs(mst_links, oracle);
    const auto bound = analysis::min_slots_lower_bound(mst_links, oracle);

    const std::string zig =
        longs_ok && shorts_ok ? "yes (2 slots)"
                              : (longs_ok ? "shorts infeasible" : "NO");
    t.row()
        .cell(c.tau, 2)
        .cell(c.m)
        .cell(inst.points.size())
        .cell(zig)
        .cell(pairs)
        .cell(bound ? std::to_string(*bound) : std::string("budget"))
        .cell(bound && longs_ok && shorts_ok
                  ? util::format_double(static_cast<double>(*bound) / 2.0, 1) +
                        "x"
                  : "-");
  }
  t.print(std::cout);
}

void BM_ZigzagAudit(benchmark::State& state) {
  sinr::SinrParams prm;
  prm.alpha = 3.0;
  prm.beta = 1.0;
  const auto inst = instance::zigzag_instance(4, 0.3, 32.0);
  const auto mst_links = mst::mst_tree(inst.points, inst.sink).links;
  const auto power = sinr::oblivious_power(mst_links, 0.3, prm);
  const auto oracle = schedule::fixed_power_oracle(mst_links, prm, power);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analysis::count_cofeasible_pairs(mst_links, oracle));
  }
}
BENCHMARK(BM_ZigzagAudit)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace wagg

int main(int argc, char** argv) {
  wagg::print_table();
  std::cout << "\n";
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
