// E3 — Theorem 1 / Corollary 1: MST schedule lengths. Global power control
// schedules in O(log* Delta) slots, oblivious power in O(log log Delta);
// random deployments give O(log* n) / O(log log n) w.h.p. Also ablates the
// greedy coloring order (paper prose vs appendix) and the repair pass.

#include "bench_common.h"

#include "instance/basic.h"

#include <cmath>

#include "util/logmath.h"

namespace wagg {
namespace {

struct Row {
  std::size_t colors_global, slots_global;
  std::size_t colors_obliv, slots_obliv;
  std::size_t colors_const, slots_const;
};

Row run_all_modes(const geom::Pointset& pts) {
  Row row{};
  auto run = [&](core::PowerMode mode, std::size_t& colors,
                 std::size_t& slots) {
    auto cfg = workload::mode_config(mode);
    const auto plan = core::plan_aggregation(pts, cfg);
    colors = plan.scheduling.colors_before_repair;
    slots = plan.schedule().length();
  };
  run(core::PowerMode::kGlobal, row.colors_global, row.slots_global);
  run(core::PowerMode::kOblivious, row.colors_obliv, row.slots_obliv);
  run(core::PowerMode::kUniform, row.colors_const, row.slots_const);
  return row;
}

void print_random_table() {
  bench::print_header(
      "E3a: Corollary 1 — random uniform deployments",
      "Slots (after repair; 'col' = conflict-graph colors before repair).\n"
      "Global should track log*(n) (effectively constant), oblivious\n"
      "loglog(n); both far below the Omega(log n) prior art.");
  util::Table t({"n", "log*D", "loglogD", "global col/slots", "obliv col/slots",
                 "uniform slots"});
  for (std::size_t n : {128u, 512u, 2048u, 8192u}) {
    const auto pts = workload::make_family("uniform", n, 7);
    const auto tree = mst::mst_tree(pts, 0);
    const double log_delta = tree.links.log2_delta();
    const auto row = run_all_modes(pts);
    t.row()
        .cell(n)
        .cell(util::log2_star_of_log2(log_delta))
        .cell(util::log2_log2_of_log2(log_delta), 2)
        .cell(std::to_string(row.colors_global) + "/" +
              std::to_string(row.slots_global))
        .cell(std::to_string(row.colors_obliv) + "/" +
              std::to_string(row.slots_obliv))
        .cell(row.slots_const);
  }
  t.print(std::cout);
}

void print_delta_table() {
  bench::print_header(
      "E3b: Theorem 1 — exponential chains (Delta sweep)",
      "On geometric chains Delta = base^(n-2). Global and oblivious slots\n"
      "must stay polyloglog while uniform power degenerates to Theta(n).");
  util::Table t({"n", "log2 Delta", "log*D", "loglogD", "global slots",
                 "obliv slots", "uniform slots"});
  for (std::size_t n : {16u, 32u, 64u, 128u, 256u}) {
    const auto pts = instance::exponential_chain(n, 2.0);
    const auto tree = mst::mst_tree(pts, 0);
    const double log_delta = tree.links.log2_delta();
    const auto row = run_all_modes(pts);
    t.row()
        .cell(n)
        .cell(log_delta, 1)
        .cell(util::log2_star_of_log2(log_delta))
        .cell(util::log2_log2_of_log2(log_delta), 2)
        .cell(row.slots_global)
        .cell(row.slots_obliv)
        .cell(row.slots_const);
  }
  t.print(std::cout);
}

void print_ablation_table() {
  bench::print_header(
      "E3c: ablations — coloring order and repair pass",
      "The appendix's non-increasing-length greedy vs the Sec 3 prose's\n"
      "non-decreasing order, and the cost of exact-SINR repair.");
  util::Table t({"n", "mode", "dec-len slots", "inc-len slots",
                 "no-repair colors", "repaired slots", "slots split"});
  for (std::size_t n : {512u, 2048u}) {
    const auto pts = workload::make_family("uniform", n, 11);
    for (const auto mode :
         {core::PowerMode::kGlobal, core::PowerMode::kOblivious}) {
      auto cfg = workload::mode_config(mode);
      cfg.order = core::ColoringOrder::kDecreasingLength;
      const auto dec = core::plan_aggregation(pts, cfg);
      cfg.order = core::ColoringOrder::kIncreasingLength;
      const auto inc = core::plan_aggregation(pts, cfg);
      cfg.order = core::ColoringOrder::kDecreasingLength;
      t.row()
          .cell(n)
          .cell(core::to_string(mode))
          .cell(dec.schedule().length())
          .cell(inc.schedule().length())
          .cell(dec.scheduling.colors_before_repair)
          .cell(dec.schedule().length())
          .cell(dec.scheduling.slots_split);
    }
  }
  t.print(std::cout);
}

void BM_PlanGlobal(benchmark::State& state) {
  const auto pts =
      workload::make_family("uniform", static_cast<std::size_t>(state.range(0)), 1);
  const auto cfg = workload::mode_config(core::PowerMode::kGlobal);
  for (auto _ : state) {
    const auto plan = core::plan_aggregation(pts, cfg);
    benchmark::DoNotOptimize(plan.schedule().length());
    state.counters["slots"] =
        static_cast<double>(plan.schedule().length());
  }
}
BENCHMARK(BM_PlanGlobal)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_PlanOblivious(benchmark::State& state) {
  const auto pts =
      workload::make_family("uniform", static_cast<std::size_t>(state.range(0)), 1);
  const auto cfg = workload::mode_config(core::PowerMode::kOblivious);
  for (auto _ : state) {
    const auto plan = core::plan_aggregation(pts, cfg);
    benchmark::DoNotOptimize(plan.schedule().length());
  }
}
BENCHMARK(BM_PlanOblivious)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wagg

int main(int argc, char** argv) {
  wagg::print_random_table();
  wagg::print_delta_table();
  wagg::print_ablation_table();
  std::cout << "\n";
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
