// Runtime scaling: batch-planning throughput of the PlanService as the
// worker pool grows. Requests are independent, so outcomes must be
// bit-identical for every worker count — the table asserts that via the
// plan digests while measuring plans/sec at 1, 2, 4, and 8 workers.

#include "bench_common.h"

#include <cstdint>
#include <vector>

#include "runtime/plan_service.h"
#include "workload/workload.h"

namespace wagg {
namespace {

std::vector<runtime::PlanRequest> scaling_batch(std::size_t count,
                                                std::size_t n) {
  const auto spec = workload::WorkloadSpec::parse(
      "name=scaling families=uniform sizes=" + std::to_string(n) +
      " modes=global reps=" + std::to_string(count));
  return spec.expand();
}

std::vector<std::uint64_t> digests(const runtime::BatchResult& result) {
  std::vector<std::uint64_t> out;
  out.reserve(result.outcomes.size());
  for (const auto& outcome : result.outcomes) out.push_back(outcome.digest);
  return out;
}

void print_scaling_table() {
  bench::print_header(
      "runtime scaling",
      "PlanService throughput vs worker count (uniform family, n=256; "
      "identical digests across rows certify bit-identical batches)");

  const auto requests = scaling_batch(32, 256);
  util::Table table({"workers", "plans/sec", "wall ms", "p95 ms", "ok",
                     "identical"});
  std::vector<std::uint64_t> reference;
  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    runtime::PlanService service(
        runtime::ServiceOptions{.num_workers = workers});
    const auto result = service.run(requests);
    const auto ds = digests(result);
    if (reference.empty()) reference = ds;
    table.row()
        .cell(workers)
        .cell(result.stats.plans_per_sec, 1)
        .cell(result.stats.wall_ms, 1)
        .cell(result.stats.total_latency.p95, 1)
        .cell(result.stats.succeeded)
        .cell(ds == reference ? "yes" : "NO");
  }
  table.print(std::cout);
}

void BM_BatchPlan(benchmark::State& state) {
  const auto requests =
      scaling_batch(16, static_cast<std::size_t>(state.range(1)));
  runtime::PlanService service(runtime::ServiceOptions{
      .num_workers = static_cast<std::size_t>(state.range(0))});
  for (auto _ : state) {
    const auto result = service.run(requests);
    benchmark::DoNotOptimize(result.stats.succeeded);
  }
  state.counters["plans/sec"] = benchmark::Counter(
      static_cast<double>(requests.size()) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BatchPlan)
    ->Args({1, 256})
    ->Args({2, 256})
    ->Args({4, 256})
    ->Args({8, 256})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wagg

int main(int argc, char** argv) {
  wagg::print_scaling_table();
  std::cout << "\n";
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
