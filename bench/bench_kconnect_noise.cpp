// E13 — extensions: (a) Remark 2's k-edge-connected aggregation structures:
// schedule length and the Lemma-1 statistic vs k; (b) the interference-
// limited assumption: schedule length vs ambient noise with the (1+eps)
// power margin (Sec 3.1 "Power limitations").

#include "bench_common.h"

#include "core/kconnect.h"
#include "mst/tree.h"
#include "sinr/interference.h"

namespace wagg {
namespace {

void print_kconnect_table() {
  bench::print_header(
      "E13a: Remark 2 — k-edge-connected aggregation",
      "Union of k successive MSTs; Lemma 1's constant grows with k (paper:\n"
      "O(k^4)) and schedule lengths grow mildly — robustness at bounded "
      "cost.");
  util::Table t({"n", "k", "links", "lemma1 stat", "global slots",
                 "obliv slots", "verified"});
  for (std::size_t n : {128u, 512u}) {
    const auto pts = workload::make_family("uniform", n, 13);
    for (int k = 1; k <= 4; ++k) {
      const auto global =
          core::plan_k_connected(pts, k,
                                 workload::mode_config(core::PowerMode::kGlobal));
      const auto obliv = core::plan_k_connected(
          pts, k, workload::mode_config(core::PowerMode::kOblivious));
      t.row()
          .cell(n)
          .cell(k)
          .cell(global.links.size())
          .cell(global.lemma1_statistic, 2)
          .cell(global.scheduling.schedule.length())
          .cell(obliv.scheduling.schedule.length())
          .cell(global.verified() && obliv.verified() ? "yes" : "NO");
    }
  }
  t.print(std::cout);
}

void print_noise_table() {
  bench::print_header(
      "E13b: interference-limited margins — slots vs ambient noise",
      "With P(i) >= (1+eps) beta N l_i^alpha the noise costs only constant\n"
      "factors (Sec 2); schedule lengths degrade gracefully as N grows and\n"
      "the margin shrinks.");
  util::Table t({"noise N", "eps", "uniform slots", "obliv slots",
                 "global slots"});
  const auto pts = workload::make_family("uniform", 512, 17);
  for (const double noise : {0.0, 1e-6, 1e-3, 1e-2, 0.1}) {
    for (const double eps : {0.5, 0.1}) {
      auto slots_for = [&](core::PowerMode mode) {
        auto cfg = workload::mode_config(mode);
        cfg.sinr.noise = noise;
        cfg.sinr.epsilon = eps;
        return core::plan_aggregation(pts, cfg).schedule().length();
      };
      t.row()
          .cell(noise, 6)
          .cell(eps, 1)
          .cell(slots_for(core::PowerMode::kUniform))
          .cell(slots_for(core::PowerMode::kOblivious))
          .cell(slots_for(core::PowerMode::kGlobal));
      if (noise == 0.0) break;  // eps is irrelevant without noise
    }
  }
  t.print(std::cout);
}

void BM_KConnectedPlanning(benchmark::State& state) {
  const auto pts = workload::make_family("uniform", 256, 13);
  const auto k = static_cast<int>(state.range(0));
  const auto cfg = workload::mode_config(core::PowerMode::kGlobal);
  for (auto _ : state) {
    const auto plan = core::plan_k_connected(pts, k, cfg);
    benchmark::DoNotOptimize(plan.scheduling.schedule.length());
  }
}
BENCHMARK(BM_KConnectedPlanning)->Arg(1)->Arg(3)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wagg

int main(int argc, char** argv) {
  wagg::print_kconnect_table();
  wagg::print_noise_table();
  std::cout << "\n";
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
