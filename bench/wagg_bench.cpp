// Perf observatory suite driver: runs the canonical scenario matrix with
// warmup + median-of-k timing, captures the full obs::Registry snapshot per
// scenario, and emits a versioned `wagg-bench-v1` trajectory file that the
// comparator gates future runs against.
//
//   ./wagg_bench                                  # full matrix, stdout only
//   ./wagg_bench --repeat=5 --warmup=1 --out=BENCH_2026-08-08.json
//   ./wagg_bench --quick                          # small matrix (CI smoke)
//   ./wagg_bench --profile-out=profile.txt        # per-stage self-time tables
//   ./wagg_bench --compare old.json new.json      # noise-aware verdicts
//   ./wagg_bench --compare old.json new.json --portable-only
//   ./wagg_bench --profile trace.json             # offline span profile
//
// The matrix: static batch families, churn sessions at n x rate (including
// grow:/shrink: size-varying schedules), and a PlanService session-
// throughput row. Per churn scenario the suite also runs one untimed
// profiled repeat and checks the span profiler's structural identity —
// per-stage exclusive self-times must sum to the root epoch spans within
// 1% — so a trajectory point ships with trustworthy attribution tables.
//
// --compare exits nonzero when any gated metric regressed beyond its
// noise tolerance (median +/- MAD-derived band, direction-aware; see
// obs/bench.h). --portable-only gates only the hardware-portable ratio
// metrics — the mode for comparing against a baseline recorded on
// different hardware.

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <ctime>
#include <fstream>
#include <future>
#include <iostream>
#include <limits>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "conflict/fgraph.h"
#include "core/planner.h"
#include "dynamic/dynamic_planner.h"
#include "dynamic/mutation.h"
#include "mst/mst.h"
#include "obs/bench.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "runtime/plan_service.h"
#include "util/args.h"
#include "util/clock.h"
#include "util/stats.h"
#include "util/table.h"
#include "workload/workload.h"

namespace wagg {
namespace {

/// Keeps a computed value observable without linking google-benchmark.
template <typename T>
inline void do_not_optimize(const T& value) {
  asm volatile("" : : "g"(&value) : "memory");
}

constexpr double kProfileIdentityTolerance = 0.01;  ///< excl-sum vs roots

struct SuiteOptions {
  std::size_t repeats = 5;
  std::size_t warmup = 1;
  bool quick = false;
  std::string out_path;
  std::string profile_out;
  std::string label;
  std::size_t top_k = 12;
};

// --------------------------------------------------------------- scenarios

struct ChurnSpec {
  std::string family = "uniform";
  std::size_t n = 1024;
  double rate = 0.01;
  double grow = 0.0;
  double shrink = 0.0;
  std::size_t epochs = 8;

  [[nodiscard]] std::string name() const {
    std::ostringstream out;
    out << "churn/" << family << "/n" << n;
    if (grow > 0.0) {
      out << "/grow" << util::format_double(grow, 3);
    } else if (shrink > 0.0) {
      out << "/shrink" << util::format_double(shrink, 3);
    } else {
      out << "/r" << util::format_double(rate, 3);
    }
    return out.str();
  }
};

struct ChurnRepeat {
  double epoch_ms = 0.0;
  double mst_update_ms = 0.0;
  double orient_ms = 0.0;
  double conflict_maintain_ms = 0.0;
  double conflict_query_ms = 0.0;
  double recolor_ms = 0.0;
  double repair_ms = 0.0;
  std::size_t dirty_links = 0;
  std::size_t epochs = 0;
  std::size_t fallbacks = 0;
  bool valid = true;
};

/// Applies the whole trace to a fresh-session planner, returning per-epoch
/// mean stage costs. The caller owns registry windowing.
ChurnRepeat run_churn_epochs(dynamic::DynamicPlanner& planner,
                             const dynamic::ChurnTrace& trace) {
  ChurnRepeat result;
  double epoch_sum = 0.0, mst_update = 0.0, orient = 0.0, maintain = 0.0,
         query = 0.0, recolor = 0.0, repair = 0.0;
  for (const auto& epoch : trace) {
    const auto report = planner.apply(epoch);
    epoch_sum += report.timings.incremental_ms();
    mst_update += report.timings.mst_update_ms;
    orient += report.timings.orient_ms;
    maintain += report.timings.conflict_maintain_ms;
    query += report.timings.conflict_query_ms;
    recolor += report.timings.recolor_ms;
    repair += report.timings.repair_ms;
    result.dirty_links += report.dirty_links;
    result.valid = result.valid && report.valid;
    if (report.full_replan) ++result.fallbacks;
    ++result.epochs;
  }
  const auto epochs = static_cast<double>(std::max<std::size_t>(1,
                                                                result.epochs));
  result.epoch_ms = epoch_sum / epochs;
  result.mst_update_ms = mst_update / epochs;
  result.orient_ms = orient / epochs;
  result.conflict_maintain_ms = maintain / epochs;
  result.conflict_query_ms = query / epochs;
  result.recolor_ms = recolor / epochs;
  result.repair_ms = repair / epochs;
  return result;
}

/// Best-of-k from-scratch Prim wall clock — the per-epoch tree bill of a
/// non-incremental engine, and the denominator of the portable mst_share.
double prim_baseline_ms(const geom::Pointset& points) {
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 3; ++rep) {
    const auto start = util::Clock::now();
    const auto edges = mst::euclidean_mst(points);
    do_not_optimize(edges.size());
    best = std::min(best, util::ms_since(start));
  }
  return best;
}

/// Best-of-k from-scratch conflict rebuild answering `queries` rows — the
/// pre-index per-epoch bill, and the denominator of conflict_share.
double conflict_rebuild_baseline_ms(const dynamic::DynamicPlanner& planner,
                                    const core::PlannerConfig& config,
                                    std::size_t avg_dirty) {
  const auto& links = planner.snapshot().links;
  const auto spec = core::spec_for_mode(config);
  std::vector<std::size_t> queries(
      std::min(links.size(), std::max<std::size_t>(1, avg_dirty)));
  for (std::size_t i = 0; i < queries.size(); ++i) queries[i] = i;
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 5; ++rep) {
    const auto start = util::Clock::now();
    const auto rows =
        conflict::conflict_neighbors_bucketed(links, spec, queries);
    do_not_optimize(rows.size());
    best = std::min(best, util::ms_since(start));
  }
  return best;
}

struct ScenarioRun {
  obs::BenchScenario scenario;
  std::string profile_table;
  bool profile_ok = true;
  bool valid = true;
};

ScenarioRun run_churn_scenario(const ChurnSpec& spec,
                               const SuiteOptions& suite) {
  ScenarioRun run;
  run.scenario.name = spec.name();
  run.scenario.kind = "churn";

  dynamic::ChurnParams params;
  params.epochs = spec.epochs;
  params.rate = spec.rate;
  params.grow_rate = spec.grow;
  params.shrink_rate = spec.shrink;
  const auto points = workload::make_family(spec.family, spec.n, 3);
  const auto trace = dynamic::make_churn_trace(points, params, 17);

  dynamic::DynamicOptions options;
  options.config = workload::mode_config(core::PowerMode::kGlobal);

  for (std::size_t i = 0; i < suite.warmup; ++i) {
    dynamic::DynamicPlanner planner(points, options);
    const auto warm = run_churn_epochs(planner, trace);
    do_not_optimize(warm.epoch_ms);
  }

  std::vector<ChurnRepeat> measured;
  std::vector<double> prim_baselines, rebuild_baselines;
  for (std::size_t i = 0; i < suite.repeats; ++i) {
    auto planner = std::make_unique<dynamic::DynamicPlanner>(points, options);
    // Window the registry on the mutation epochs (the construction full
    // plan would dominate the histograms).
    obs::Registry::global().reset();
    measured.push_back(run_churn_epochs(*planner, trace));
    run.valid = run.valid && measured.back().valid;
    // Measure the from-scratch baselines inside the repeat, seconds from
    // the incremental numbers they normalize: a host-regime shift then
    // scales both sides of each share and cancels. One late measurement
    // (the old shape) bakes a single denominator sample into every
    // repeat, hiding its run-to-run noise from the MAD entirely.
    const std::size_t avg_dirty =
        measured.back().dirty_links /
        std::max<std::size_t>(1, measured.back().epochs);
    prim_baselines.push_back(prim_baseline_ms(planner->snapshot().points));
    rebuild_baselines.push_back(
        conflict_rebuild_baseline_ms(*planner, options.config, avg_dirty));
  }
  run.scenario.registry = obs::Registry::global().snapshot();

  const auto column = [&measured](auto getter) {
    std::vector<double> values;
    values.reserve(measured.size());
    for (const auto& repeat : measured) values.push_back(getter(repeat));
    return values;
  };
  const auto add_ms = [&run, &column](const std::string& name, auto getter) {
    run.scenario.metrics.emplace(
        name, obs::BenchMetric::of(column(getter), "ms"));
  };
  add_ms("epoch_ms", [](const ChurnRepeat& r) { return r.epoch_ms; });
  add_ms("mst_update_ms",
         [](const ChurnRepeat& r) { return r.mst_update_ms; });
  add_ms("orient_ms", [](const ChurnRepeat& r) { return r.orient_ms; });
  add_ms("conflict_maintain_ms",
         [](const ChurnRepeat& r) { return r.conflict_maintain_ms; });
  add_ms("conflict_query_ms",
         [](const ChurnRepeat& r) { return r.conflict_query_ms; });
  add_ms("recolor_ms", [](const ChurnRepeat& r) { return r.recolor_ms; });
  add_ms("repair_ms", [](const ChurnRepeat& r) { return r.repair_ms; });

  // Portable ratios: per-epoch incremental stage cost over an in-process
  // from-scratch baseline measured on the same host, same build, same
  // instant — the only numbers a baseline recorded on other hardware can
  // fairly gate. Each repeat carries its own baseline sample (see the
  // repeat loop), so the ratio's MAD reflects denominator noise too.
  std::vector<double> mst_share, conflict_share;
  for (std::size_t i = 0; i < measured.size(); ++i) {
    const auto& r = measured[i];
    mst_share.push_back(prim_baselines[i] > 0.0
                            ? (r.mst_update_ms + r.orient_ms) /
                                  prim_baselines[i]
                            : 0.0);
    conflict_share.push_back(
        rebuild_baselines[i] > 0.0
            ? (r.conflict_maintain_ms + r.conflict_query_ms) /
                  rebuild_baselines[i]
            : 0.0);
  }
  run.scenario.metrics.emplace(
      "mst_share",
      obs::BenchMetric::of(std::move(mst_share), "ratio",
                           /*higher_is_better=*/false, /*portable=*/true));
  run.scenario.metrics.emplace(
      "conflict_share",
      obs::BenchMetric::of(std::move(conflict_share), "ratio",
                           /*higher_is_better=*/false, /*portable=*/true));

  // Untimed profiled repeat: collapse the epoch span tree into the
  // per-stage self-time table and check the structural identity the
  // profiler guarantees (exclusive self-times tile the root epoch spans).
  {
    obs::Tracer::global().enable();
    dynamic::DynamicPlanner planner(points, options);
    obs::Tracer::global().clear();  // window the trace on mutation epochs
    const auto profiled = run_churn_epochs(planner, trace);
    do_not_optimize(profiled.epoch_ms);
    obs::Tracer::global().disable();
    const auto profile = obs::profile_global_tracer();
    obs::Tracer::global().clear();
    run.profile_table = profile.table(suite.top_k);
    const double drift =
        std::abs(profile.exclusive_sum_ms() - profile.root_ms);
    run.profile_ok = profile.malformed_spans == 0 &&
                     (profile.root_ms <= 0.0 ||
                      drift <= kProfileIdentityTolerance * profile.root_ms);
  }
  return run;
}

ScenarioRun run_static_scenario(const std::string& family, std::size_t n,
                                const SuiteOptions& suite) {
  ScenarioRun run;
  run.scenario.name = "static/" + family + "/n" + std::to_string(n);
  run.scenario.kind = "static";

  runtime::PlanRequest request;
  request.points = workload::make_family(family, n, 3);
  request.config = workload::mode_config(core::PowerMode::kGlobal);

  const auto once = [&request]() {
    return runtime::execute_request(request, 0);
  };
  for (std::size_t i = 0; i < suite.warmup; ++i) {
    do_not_optimize(once().total_ms);
  }
  std::vector<double> plan_ms, tree_ms, conflict_ms;
  obs::Registry::global().reset();
  for (std::size_t i = 0; i < suite.repeats; ++i) {
    const auto outcome = once();
    run.valid = run.valid && outcome.ok;
    plan_ms.push_back(outcome.total_ms);
    tree_ms.push_back(outcome.timings.tree_ms);
    conflict_ms.push_back(outcome.timings.conflict_ms);
  }
  run.scenario.registry = obs::Registry::global().snapshot();
  run.scenario.metrics.emplace("plan_ms",
                               obs::BenchMetric::of(std::move(plan_ms), "ms"));
  run.scenario.metrics.emplace("tree_ms",
                               obs::BenchMetric::of(std::move(tree_ms), "ms"));
  run.scenario.metrics.emplace(
      "conflict_ms", obs::BenchMetric::of(std::move(conflict_ms), "ms"));
  return run;
}

ScenarioRun run_service_scenario(std::size_t sessions, std::size_t n,
                                 std::size_t epochs,
                                 const SuiteOptions& suite) {
  ScenarioRun run;
  run.scenario.name = "service/sessions" + std::to_string(sessions) + "/n" +
                      std::to_string(n);
  run.scenario.kind = "service";

  // A batch of churn-session requests over the worker pool: the serving-
  // shaped scenario. Throughput reads from the BatchStats session hooks.
  std::vector<runtime::PlanRequest> requests;
  requests.reserve(sessions);
  for (std::size_t s = 0; s < sessions; ++s) {
    runtime::PlanRequest request;
    request.points = workload::make_family("uniform", n, 3 + s);
    request.config = workload::mode_config(core::PowerMode::kGlobal);
    dynamic::ChurnParams params;
    params.epochs = epochs;
    params.rate = 0.02;
    request.trace = dynamic::make_churn_trace(request.points, params, 17 + s);
    request.seed = s;
    request.tags = "session=" + std::to_string(s);
    requests.push_back(std::move(request));
  }

  runtime::PlanService service;
  for (std::size_t i = 0; i < suite.warmup; ++i) {
    do_not_optimize(service.run(requests).stats.wall_ms);
  }
  std::vector<double> epochs_per_sec, plans_per_sec, wall_ms, request_p95;
  bool last_ok = true;
  for (std::size_t i = 0; i < suite.repeats; ++i) {
    obs::Registry::global().reset();
    const auto result = service.run(requests);
    last_ok = result.stats.failed == 0;
    run.valid = run.valid && last_ok;
    epochs_per_sec.push_back(result.stats.session_epochs_per_sec);
    plans_per_sec.push_back(result.stats.plans_per_sec);
    wall_ms.push_back(result.stats.wall_ms);
    request_p95.push_back(result.stats.total_latency.p95);
  }
  run.scenario.registry = obs::Registry::global().snapshot();
  // Pool-dispatch wall clocks: repeats inside one process share a scheduler
  // regime, and the regime itself drifts between processes by 10-20% on a
  // contended host, so the within-run MAD understates run-to-run noise.
  // Declare that floor in the schema; a real serving regression clears it.
  constexpr double kDispatchNoiseFloor = 0.25;
  const auto stamped = [](std::vector<double> values, const char* unit,
                          bool higher_is_better) {
    auto metric = obs::BenchMetric::of(std::move(values), unit,
                                       higher_is_better);
    metric.min_rel = kDispatchNoiseFloor;
    return metric;
  };
  run.scenario.metrics.emplace(
      "epochs_per_sec",
      stamped(std::move(epochs_per_sec), "per_sec", /*higher_is_better=*/true));
  run.scenario.metrics.emplace(
      "plans_per_sec",
      stamped(std::move(plans_per_sec), "per_sec", /*higher_is_better=*/true));
  run.scenario.metrics.emplace(
      "wall_ms",
      stamped(std::move(wall_ms), "ms", /*higher_is_better=*/false));
  run.scenario.metrics.emplace(
      "request_p95_ms",
      stamped(std::move(request_p95), "ms", /*higher_is_better=*/false));
  return run;
}

ScenarioRun run_serve_scenario(std::size_t sessions, std::size_t n,
                               std::size_t epochs,
                               const SuiteOptions& suite) {
  ScenarioRun run;
  run.scenario.name = "serve/sessions" + std::to_string(sessions) + "/n" +
                      std::to_string(n);
  run.scenario.kind = "serve";

  // The session-parallel runtime scenario: long-lived sessions pinned to
  // executor serial queues, epochs submitted through the async API at max
  // rate. Unlike service/ (whole churn traces as batch requests) this
  // measures the striped-executor serving path itself: open fan-out,
  // mailbox handoff per epoch, and submit-to-done latency.
  std::ostringstream spec_text;
  spec_text << "name=serve families=uniform sizes=" << n
            << " modes=oblivious reps=1 seed=3 sessions=" << sessions
            << " churn=epochs:" << epochs << ",rate:0.02";
  const auto spec = workload::WorkloadSpec::parse(spec_text.str());
  const auto requests = spec.expand();

  dynamic::DynamicOptions options;
  options.config = requests.front().config;
  runtime::PlanService service;

  struct Latch {
    std::mutex mutex;
    std::condition_variable cv;
    std::size_t remaining = 0;
    std::size_t errors = 0;
    util::Samples latency_ms;
  };
  struct ServeRepeat {
    double epochs_per_sec = 0.0;
    double epoch_p99_ms = 0.0;
    double open_ms = 0.0;
    bool ok = true;
  };
  const auto one_repeat = [&]() {
    ServeRepeat repeat;
    const auto open_start = util::Clock::now();
    std::vector<std::future<runtime::OpenOutcome>> opens;
    opens.reserve(sessions);
    for (const auto& request : requests) {
      opens.push_back(service.open_session_async(request.points, options));
    }
    std::vector<runtime::PlanService::SessionId> ids;
    ids.reserve(sessions);
    for (auto& open : opens) {
      const auto outcome = open.get();
      repeat.ok = repeat.ok && outcome.status == runtime::SessionStatus::kOk;
      if (outcome.status == runtime::SessionStatus::kOk) {
        ids.push_back(outcome.id);
      }
    }
    repeat.open_ms = util::ms_since(open_start);
    if (!repeat.ok) return repeat;

    Latch latch;
    latch.remaining = sessions * epochs;
    const auto start = util::Clock::now();
    for (std::size_t e = 0; e < epochs; ++e) {
      for (std::size_t s = 0; s < sessions; ++s) {
        service.submit_epoch(
            ids[s], requests[s].trace[e],
            [&latch](runtime::EpochOutcome outcome) {
              std::lock_guard<std::mutex> lock(latch.mutex);
              if (outcome.status != runtime::SessionStatus::kOk) {
                ++latch.errors;
              } else {
                latch.latency_ms.add(outcome.queue_ms + outcome.epoch_ms);
              }
              if (--latch.remaining == 0) latch.cv.notify_all();
            },
            runtime::OnFull::kBlock);
      }
    }
    {
      std::unique_lock<std::mutex> lock(latch.mutex);
      latch.cv.wait(lock, [&latch] { return latch.remaining == 0; });
    }
    const double wall_ms = util::ms_since(start);
    for (const auto id : ids) (void)service.close_session(id);
    repeat.ok = repeat.ok && latch.errors == 0;
    if (wall_ms > 0.0) {
      repeat.epochs_per_sec =
          static_cast<double>(sessions * epochs) * 1000.0 / wall_ms;
    }
    if (!latch.latency_ms.empty()) {
      repeat.epoch_p99_ms =
          obs::HistogramSnapshot::of(latch.latency_ms.values())
              .quantile(99.0);
    }
    return repeat;
  };

  for (std::size_t i = 0; i < suite.warmup; ++i) {
    do_not_optimize(one_repeat().epochs_per_sec);
  }
  std::vector<double> epochs_per_sec, epoch_p99_ms, open_ms;
  obs::Registry::global().reset();
  for (std::size_t i = 0; i < suite.repeats; ++i) {
    const auto repeat = one_repeat();
    run.valid = run.valid && repeat.ok;
    epochs_per_sec.push_back(repeat.epochs_per_sec);
    epoch_p99_ms.push_back(repeat.epoch_p99_ms);
    open_ms.push_back(repeat.open_ms);
  }
  run.scenario.registry = obs::Registry::global().snapshot();
  // Same pool-dispatch noise floor as service/: scheduler-regime drift
  // between processes dominates the within-run MAD.
  constexpr double kDispatchNoiseFloor = 0.25;
  const auto stamped = [](std::vector<double> values, const char* unit,
                          bool higher_is_better) {
    auto metric =
        obs::BenchMetric::of(std::move(values), unit, higher_is_better);
    metric.min_rel = kDispatchNoiseFloor;
    return metric;
  };
  run.scenario.metrics.emplace(
      "epochs_per_sec",
      stamped(std::move(epochs_per_sec), "per_sec", /*higher_is_better=*/true));
  run.scenario.metrics.emplace(
      "epoch_p99_ms",
      stamped(std::move(epoch_p99_ms), "ms", /*higher_is_better=*/false));
  run.scenario.metrics.emplace(
      "open_ms", stamped(std::move(open_ms), "ms", /*higher_is_better=*/false));
  return run;
}

// ------------------------------------------------------------------- suite

std::string today_iso_date() {
  const std::time_t now = std::time(nullptr);
  std::tm parts{};
  localtime_r(&now, &parts);
  char buffer[16];
  std::strftime(buffer, sizeof(buffer), "%Y-%m-%d", &parts);
  return buffer;
}

int run_suite(const SuiteOptions& suite) {
  obs::BenchTrajectory trajectory;
  trajectory.date = today_iso_date();
  trajectory.label = suite.label;
  trajectory.repeats = suite.repeats;
  trajectory.warmup = suite.warmup;

  std::vector<ChurnSpec> churn;
  std::vector<std::pair<std::string, std::size_t>> statics;
  std::size_t service_sessions = 8, service_n = 256, service_epochs = 10;
  std::size_t serve_sessions = 256, serve_n = 256, serve_epochs = 8;
  if (suite.quick) {
    // The CI-smoke matrix: same scenario SHAPES, small sizes.
    churn = {
        {"uniform", 256, 0.01, 0.0, 0.0, 6},
        {"uniform", 256, 0.05, 0.0, 0.0, 6},
        {"uniform", 256, 0.02, 0.02, 0.0, 6},
        {"uniform", 256, 0.02, 0.0, 0.02, 6},
    };
    statics = {{"uniform", 128}, {"cluster", 128}};
    service_sessions = 4;
    service_n = 128;
    service_epochs = 6;
    serve_sessions = 64;
    serve_n = 128;
    serve_epochs = 6;
  } else {
    for (const std::size_t n : {1024u, 2048u, 8192u}) {
      for (const double rate : {0.01, 0.05}) {
        churn.push_back({"uniform", n, rate, 0.0, 0.0, n > 4096 ? 4u : 8u});
      }
    }
    churn.push_back({"uniform", 1024, 0.02, 0.02, 0.0, 8});
    churn.push_back({"uniform", 1024, 0.02, 0.0, 0.02, 8});
    statics = {{"uniform", 256}, {"uniform", 1024}, {"cluster", 256},
               {"annulus", 256}};
  }

  bool all_valid = true;
  bool profiles_ok = true;
  std::ostringstream profiles;
  const auto ingest = [&](ScenarioRun run) {
    std::cout << "scenario " << run.scenario.name << ":";
    for (const auto& [name, metric] : run.scenario.metrics) {
      std::cout << " " << name << "="
                << util::format_double(metric.median, 4);
    }
    std::cout << (run.valid ? "" : "  INVALID") << "\n";
    if (!run.profile_table.empty()) {
      profiles << "== " << run.scenario.name << " ==\n"
               << run.profile_table << "\n";
      if (!run.profile_ok) {
        std::cout << "  PROFILE IDENTITY BROKEN: exclusive self-times do "
                     "not sum to the root epoch spans within "
                  << 100.0 * kProfileIdentityTolerance << "%\n";
      }
    }
    all_valid = all_valid && run.valid;
    profiles_ok = profiles_ok && run.profile_ok;
    trajectory.scenarios.push_back(std::move(run.scenario));
  };

  std::cout << "wagg_bench: " << (suite.quick ? "quick" : "full")
            << " matrix, repeat=" << suite.repeats
            << " warmup=" << suite.warmup << "\n\n";
  for (const auto& [family, n] : statics) {
    ingest(run_static_scenario(family, n, suite));
  }
  for (const auto& spec : churn) {
    ingest(run_churn_scenario(spec, suite));
  }
  ingest(run_service_scenario(service_sessions, service_n, service_epochs,
                              suite));
  ingest(run_serve_scenario(serve_sessions, serve_n, serve_epochs, suite));

  std::cout << "\nper-stage span profiles (exclusive self time, hottest "
               "first):\n\n"
            << profiles.str();

  if (!suite.out_path.empty()) {
    obs::write_text_file(suite.out_path, trajectory.to_json());
    std::cout << "trajectory: " << suite.out_path << " ("
              << trajectory.scenarios.size() << " scenarios, schema "
              << "wagg-bench-v1)\n";
  }
  if (!suite.profile_out.empty()) {
    obs::write_text_file(suite.profile_out, profiles.str());
    std::cout << "profiles: " << suite.profile_out << "\n";
  }

  if (!all_valid) {
    std::cout << "wagg_bench FAILED: a scenario produced an invalid plan\n";
    return 1;
  }
  if (!profiles_ok) {
    std::cout << "wagg_bench FAILED: span-profile attribution identity "
                 "broken\n";
    return 1;
  }
  return 0;
}

// ------------------------------------------------------------------- modes

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("wagg_bench: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int run_compare(const std::string& baseline_path,
                const std::string& candidate_path, const util::Args& args) {
  const auto baseline =
      obs::BenchTrajectory::from_json(read_file(baseline_path));
  const auto candidate =
      obs::BenchTrajectory::from_json(read_file(candidate_path));
  obs::CompareOptions options;
  options.min_rel_tolerance =
      args.get_double("min-rel", options.min_rel_tolerance);
  options.mad_multiplier =
      args.get_double("mad-mult", options.mad_multiplier);
  options.min_abs_ms = args.get_double("min-abs-ms", options.min_abs_ms);
  options.portable_only = args.has("portable-only");

  std::cout << "baseline:  " << baseline_path << " (" << baseline.date
            << (baseline.label.empty() ? "" : ", " + baseline.label)
            << ")\ncandidate: " << candidate_path << " (" << candidate.date
            << (candidate.label.empty() ? "" : ", " + candidate.label)
            << ")\n"
            << (options.portable_only
                    ? "gating hardware-portable metrics only\n"
                    : "")
            << "\n";
  const auto report = obs::compare(baseline, candidate, options);
  std::cout << report.table();
  return report.ok() ? 0 : 1;
}

int run_offline_profile(const std::string& trace_path,
                        const util::Args& args) {
  const auto report = obs::profile_chrome_trace(read_file(trace_path));
  std::cout << "profile of " << trace_path << ":\n"
            << report.table(
                   static_cast<std::size_t>(args.get_int("top", 0)));
  return report.malformed_spans == 0 ? 0 : 1;
}

}  // namespace
}  // namespace wagg

int main(int argc, char** argv) {
  using namespace wagg;
  const util::Args args(argc, argv);
  try {
    // Mode flags take positional operands, which util::Args ignores — scan
    // argv directly for them.
    std::vector<std::string> positional;
    bool compare_mode = false;
    bool profile_mode = false;
    for (int i = 1; i < argc; ++i) {
      const std::string arg(argv[i]);
      if (arg == "--compare") {
        compare_mode = true;
      } else if (arg == "--profile") {
        profile_mode = true;
      } else if (arg.rfind("--", 0) != 0) {
        positional.push_back(arg);
      }
    }
    if (compare_mode) {
      if (positional.size() != 2) {
        std::cerr << "usage: wagg_bench --compare <baseline.json> "
                     "<candidate.json> [--portable-only] [--min-rel=f] "
                     "[--mad-mult=k] [--min-abs-ms=f]\n";
        return 2;
      }
      return run_compare(positional[0], positional[1], args);
    }
    if (profile_mode) {
      if (positional.size() != 1) {
        std::cerr << "usage: wagg_bench --profile <trace.json> [--top=k]\n";
        return 2;
      }
      return run_offline_profile(positional[0], args);
    }

    SuiteOptions suite;
    suite.repeats = std::max<std::size_t>(
        1, static_cast<std::size_t>(args.get_int("repeat", 5)));
    suite.warmup =
        static_cast<std::size_t>(args.get_int("warmup", 1));
    suite.quick = args.has("quick");
    suite.out_path = args.get("out", "");
    suite.profile_out = args.get("profile-out", "");
    suite.label = args.get("label", "");
    suite.top_k = static_cast<std::size_t>(args.get_int("top", 12));
    return run_suite(suite);
  } catch (const std::exception& e) {
    std::cerr << "wagg_bench: " << e.what() << "\n";
    return 1;
  }
}
