// E12 — Incremental replanning under topology churn: the dynamic planner's
// per-epoch cost must track the size of the change, not the instance. The
// table runs audited sessions (the audit's from-scratch replan doubles as
// the fair full-replan baseline on identical per-epoch pointsets) and
// reports incremental vs full wall clock and the resulting speedup across
// churn rates. Speedups are reported, not gated: at high churn the dirty
// set approaches the instance and the two columns legitimately converge.

#include "bench_common.h"

#include "dynamic/dynamic_planner.h"
#include "dynamic/mutation.h"

namespace wagg {
namespace {

struct SessionCost {
  double incremental_ms = 0.0;  ///< sum over epochs, audit excluded
  double full_ms = 0.0;         ///< sum of the audit's from-scratch replans
  std::size_t epochs = 0;
  std::size_t full_replans = 0;  ///< epochs that hit the fallback
  bool all_valid = true;
};

SessionCost run_session(const std::string& family, std::size_t n, double rate,
                        std::size_t epochs, bool audit) {
  dynamic::ChurnParams params;
  params.epochs = epochs;
  params.rate = rate;
  const auto points = workload::make_family(family, n, 3);
  const auto trace = dynamic::make_churn_trace(points, params, 17);

  dynamic::DynamicOptions options;
  options.config = workload::mode_config(core::PowerMode::kGlobal);
  options.audit = audit;
  dynamic::DynamicPlanner planner(points, options);

  SessionCost cost;
  for (const auto& epoch : trace) {
    const auto report = planner.apply(epoch);
    cost.incremental_ms += report.timings.incremental_ms();
    cost.full_ms += report.audit_full_ms;
    cost.all_valid = cost.all_valid && report.valid &&
                     (!report.audited ||
                      (report.audit_valid && report.audit_tree_match &&
                       report.audit_store_match));
    if (report.full_replan) ++cost.full_replans;
    ++cost.epochs;
  }
  return cost;
}

void print_table() {
  bench::print_header(
      "E12: incremental vs full replanning under churn",
      "Per-epoch wall clock of the incremental engine against a from-scratch\n"
      "replan of the same mutated instance (audit mode provides both on\n"
      "identical pointsets). Speedup should be large at low churn rates and\n"
      "decay gracefully as the dirty set grows.");
  util::Table t({"family", "n", "rate", "epochs", "incr ms/epoch",
                 "full ms/epoch", "speedup", "fallbacks", "valid"});
  for (const std::string family : {"uniform", "cluster", "noisygrid"}) {
    for (const std::size_t n : {256u, 1024u}) {
      for (const double rate : {0.01, 0.05, 0.2}) {
        const auto cost = run_session(family, n, rate, 12, true);
        const double incr =
            cost.incremental_ms / static_cast<double>(cost.epochs);
        const double full = cost.full_ms / static_cast<double>(cost.epochs);
        t.row()
            .cell(family)
            .cell(n)
            .cell(rate, 2)
            .cell(cost.epochs)
            .cell(incr, 3)
            .cell(full, 3)
            .cell(incr > 0.0 ? full / incr : 0.0, 1)
            .cell(cost.full_replans)
            .cell(cost.all_valid ? "yes" : "NO");
      }
    }
  }
  t.print(std::cout);
}

void BM_IncrementalEpoch(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const double rate = static_cast<double>(state.range(1)) / 100.0;
  dynamic::ChurnParams params;
  params.epochs = 1;
  params.rate = rate;
  const auto points = workload::make_family("uniform", n, 3);
  const auto trace = dynamic::make_churn_trace(points, params, 17);

  dynamic::DynamicOptions options;
  options.config = workload::mode_config(core::PowerMode::kGlobal);
  for (auto _ : state) {
    // The initial full plan is set up off the clock; only the incremental
    // epoch is timed. (Traces are keyed to the initial pointset's stable
    // ids, so each iteration replays the same epoch on a fresh session.)
    state.PauseTiming();
    dynamic::DynamicPlanner planner(points, options);
    state.ResumeTiming();
    const auto report = planner.apply(trace.front());
    benchmark::DoNotOptimize(report.slots);
  }
}
BENCHMARK(BM_IncrementalEpoch)
    ->Args({512, 2})
    ->Args({512, 10})
    ->Args({2048, 1})  // the stable-id LinkStore acceptance configuration
    ->Args({2048, 2})
    ->Unit(benchmark::kMillisecond);

void BM_FullReplanEpoch(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto points = workload::make_family("uniform", n, 3);
  const auto cfg = workload::mode_config(core::PowerMode::kGlobal);
  for (auto _ : state) {
    const auto plan = core::plan_aggregation(points, cfg);
    benchmark::DoNotOptimize(plan.scheduling.schedule.length());
  }
}
BENCHMARK(BM_FullReplanEpoch)->Arg(512)->Arg(2048)->Unit(
    benchmark::kMillisecond);

/// CI gate (--smoke): one audited low-churn session must stay valid, avoid
/// the full-replan fallback, and beat the from-scratch baseline by a solid
/// margin. A regression that drags epoch cost back toward O(n) fails the
/// job instead of landing silently; the threshold sits well below the
/// current ~3x so scheduler noise on shared runners cannot flake it.
int run_smoke() {
  constexpr double kMinSpeedup = 1.4;
  const auto cost = run_session("uniform", 512, 0.01, 8, /*audit=*/true);
  const double incr = cost.incremental_ms / static_cast<double>(cost.epochs);
  const double full = cost.full_ms / static_cast<double>(cost.epochs);
  const double speedup = incr > 0.0 ? full / incr : 0.0;
  std::cout << "smoke: uniform n=512 rate=0.01 epochs=" << cost.epochs
            << " incr=" << incr << " ms/epoch full=" << full
            << " ms/epoch speedup=" << speedup
            << "x fallbacks=" << cost.full_replans
            << " valid=" << (cost.all_valid ? "yes" : "NO") << "\n";
  if (!cost.all_valid) {
    std::cout << "smoke FAILED: an epoch lost validity or audit "
                 "equivalence\n";
    return 1;
  }
  if (cost.full_replans != 0) {
    std::cout << "smoke FAILED: low-churn epochs hit the full-replan "
                 "fallback\n";
    return 1;
  }
  if (speedup < kMinSpeedup) {
    std::cout << "smoke FAILED: incremental speedup " << speedup << "x < "
              << kMinSpeedup << "x floor\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace wagg

int main(int argc, char** argv) {
  // --smoke: skip the (slow) study table, run the CI gate, then whatever
  // benchmarks the remaining flags select (CI passes a tiny
  // --benchmark_min_time so regressions surface without burning minutes).
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") {
      smoke = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  int gate = 0;
  if (smoke) {
    gate = wagg::run_smoke();
    if (gate != 0) return gate;
  } else {
    wagg::print_table();
  }
  std::cout << "\n";
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
