// E12 — Incremental replanning under topology churn: the dynamic planner's
// per-epoch cost must track the size of the change, not the instance. The
// table runs audited sessions (the audit's from-scratch replan doubles as
// the fair full-replan baseline on identical per-epoch pointsets) and
// reports incremental vs full wall clock and the resulting speedup across
// churn rates. Speedups are reported, not gated: at high churn the dirty
// set approaches the instance and the two columns legitimately converge.

#include "bench_common.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "conflict/fgraph.h"
#include "dynamic/dynamic_planner.h"
#include "dynamic/mutation.h"
#include "mst/mst.h"
#include "obs/bench.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/clock.h"
#include "util/stats.h"

namespace wagg {
namespace {

struct SessionCost {
  double incremental_ms = 0.0;  ///< sum over epochs, audit excluded
  double full_ms = 0.0;         ///< sum of the audit's from-scratch replans
  double conflict_ms = 0.0;     ///< conflict layer: index upkeep + queries
  double conflict_maintain_ms = 0.0;
  double conflict_query_ms = 0.0;
  double mst_ms = 0.0;          ///< tree layer: dynamic-tree updates + orient
  double mst_update_ms = 0.0;
  double orient_ms = 0.0;
  std::size_t epochs = 0;
  std::size_t dirty_links = 0;   ///< sum over epochs
  std::size_t full_replans = 0;  ///< epochs that hit the fallback
  bool all_valid = true;
};

/// Folds one epoch report into the running session cost (shared by the
/// study tables and the smoke gate so both always measure the same
/// quantities).
void accumulate(SessionCost& cost, const dynamic::EpochReport& report) {
  cost.incremental_ms += report.timings.incremental_ms();
  cost.full_ms += report.audit_full_ms;
  cost.conflict_ms += report.timings.conflict_ms;
  cost.conflict_maintain_ms += report.timings.conflict_maintain_ms;
  cost.conflict_query_ms += report.timings.conflict_query_ms;
  cost.mst_ms += report.timings.mst_ms();
  cost.mst_update_ms += report.timings.mst_update_ms;
  cost.orient_ms += report.timings.orient_ms;
  cost.dirty_links += report.dirty_links;
  cost.all_valid = cost.all_valid && report.valid &&
                   (!report.audited ||
                    (report.audit_valid && report.audit_tree_match &&
                     report.audit_store_match && report.audit_index_match));
  if (report.full_replan) ++cost.full_replans;
  ++cost.epochs;
}

SessionCost run_session(const std::string& family, std::size_t n, double rate,
                        std::size_t epochs, bool audit) {
  dynamic::ChurnParams params;
  params.epochs = epochs;
  params.rate = rate;
  const auto points = workload::make_family(family, n, 3);
  const auto trace = dynamic::make_churn_trace(points, params, 17);

  dynamic::DynamicOptions options;
  options.config = workload::mode_config(core::PowerMode::kGlobal);
  options.audit = audit;
  dynamic::DynamicPlanner planner(points, options);

  SessionCost cost;
  for (const auto& epoch : trace) {
    accumulate(cost, planner.apply(epoch));
  }
  return cost;
}

void print_table() {
  bench::print_header(
      "E12: incremental vs full replanning under churn",
      "Per-epoch wall clock of the incremental engine against a from-scratch\n"
      "replan of the same mutated instance (audit mode provides both on\n"
      "identical pointsets). Speedup should be large at low churn rates and\n"
      "decay gracefully as the dirty set grows.");
  util::Table t({"family", "n", "rate", "epochs", "incr ms/epoch",
                 "cfl ms/epoch", "full ms/epoch", "speedup", "fallbacks",
                 "valid"});
  for (const std::string family : {"uniform", "cluster", "noisygrid"}) {
    for (const std::size_t n : {256u, 1024u}) {
      for (const double rate : {0.01, 0.05, 0.2}) {
        const auto cost = run_session(family, n, rate, 12, true);
        const double incr =
            cost.incremental_ms / static_cast<double>(cost.epochs);
        const double full = cost.full_ms / static_cast<double>(cost.epochs);
        t.row()
            .cell(family)
            .cell(n)
            .cell(rate, 2)
            .cell(cost.epochs)
            .cell(incr, 3)
            .cell(cost.conflict_ms / static_cast<double>(cost.epochs), 3)
            .cell(full, 3)
            .cell(incr > 0.0 ? full / incr : 0.0, 1)
            .cell(cost.full_replans)
            .cell(cost.all_valid ? "yes" : "NO");
      }
    }
  }
  t.print(std::cout);
}

/// The conflict-index acceptance configuration: unaudited large sessions at
/// low churn, reporting the conflict layer's per-epoch cost split into
/// persistent-index maintenance vs dirty-row queries. Before the index this
/// column was an O(n) per-epoch grid rebuild plus un-pruned row queries
/// (~8.5 ms/epoch at n=2048 / 1% churn); the standing grids cut it >= 2x.
void print_conflict_scale_table() {
  bench::print_header(
      "E13: persistent conflict index at scale",
      "Per-epoch conflict-layer cost (index maintenance + dirty-row\n"
      "queries) under low churn. Maintenance rides the store's mutation\n"
      "stream; queries touch only dirty rows, so neither column rebuilds\n"
      "anything per epoch.");
  util::Table t({"family", "n", "rate", "epochs", "dirty/epoch",
                 "incr ms/epoch", "cfl ms/epoch", "maintain ms", "query ms",
                 "valid"});
  for (const std::size_t n : {1024u, 2048u}) {
    const auto cost = run_session("uniform", n, 0.01, 8, false);
    const auto epochs = static_cast<double>(cost.epochs);
    t.row()
        .cell("uniform")
        .cell(n)
        .cell(0.01, 2)
        .cell(cost.epochs)
        .cell(static_cast<double>(cost.dirty_links) / epochs, 1)
        .cell(cost.incremental_ms / epochs, 3)
        .cell(cost.conflict_ms / epochs, 3)
        .cell(cost.conflict_maintain_ms / epochs, 3)
        .cell(cost.conflict_query_ms / epochs, 3)
        .cell(cost.all_valid ? "yes" : "NO");
  }
  t.print(std::cout);
}

/// Best-of-a-few from-scratch Prim wall clock over the planner's final
/// snapshot — what a non-incremental engine would pay per epoch for the
/// tree alone.
double prim_baseline_ms(const geom::Pointset& points) {
  double baseline = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 3; ++rep) {
    const auto start = util::Clock::now();
    const auto edges = mst::euclidean_mst(points);
    benchmark::DoNotOptimize(edges.size());
    baseline = std::min(baseline, util::ms_since(start));
  }
  return baseline;
}

/// The dynamic-tree MST engine's acceptance configuration: low-churn
/// sessions at growing scale, reporting the tree layer's per-epoch cost
/// split into dynamic-tree updates vs orientation replay, against the
/// from-scratch Prim the pre-dtree engine effectively approached (its
/// merge-Kruskal attach walked the whole weight-ordered tree per
/// mutation). The gap must WIDEN with n — that is the point of going
/// polylog.
void print_mst_scale_table() {
  bench::print_header(
      "E14: dynamic-tree MST engine at scale",
      "Per-epoch tree-layer cost (IncrementalMst dynamic-tree updates +\n"
      "orientation-diff replay) under 1% churn, against a from-scratch\n"
      "Prim run on the same final instance. The speedup column should grow\n"
      "with n: updates are polylog while Prim is quadratic.");
  util::Table t({"family", "n", "rate", "epochs", "mst ms/epoch",
                 "update ms", "orient ms", "prim ms", "speedup", "valid"});
  for (const std::size_t n : {1024u, 2048u, 8192u}) {
    const auto cost = run_session("uniform", n, 0.01, n > 4096 ? 5 : 8,
                                  false);
    const auto epochs = static_cast<double>(cost.epochs);
    // The baseline Prim runs on an equally-sized fresh instance (the
    // session's node count drifts only a few percent from n).
    const double prim =
        prim_baseline_ms(workload::make_family("uniform", n, 3));
    const double mst = cost.mst_ms / epochs;
    t.row()
        .cell("uniform")
        .cell(n)
        .cell(0.01, 2)
        .cell(cost.epochs)
        .cell(mst, 3)
        .cell(cost.mst_update_ms / epochs, 3)
        .cell(cost.orient_ms / epochs, 3)
        .cell(prim, 3)
        .cell(mst > 0.0 ? prim / mst : 0.0, 1)
        .cell(cost.all_valid ? "yes" : "NO");
  }
  t.print(std::cout);
}

void BM_IncrementalEpoch(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const double rate = static_cast<double>(state.range(1)) / 100.0;
  dynamic::ChurnParams params;
  params.epochs = 1;
  params.rate = rate;
  const auto points = workload::make_family("uniform", n, 3);
  const auto trace = dynamic::make_churn_trace(points, params, 17);

  dynamic::DynamicOptions options;
  options.config = workload::mode_config(core::PowerMode::kGlobal);
  for (auto _ : state) {
    // The initial full plan is set up off the clock; only the incremental
    // epoch is timed. (Traces are keyed to the initial pointset's stable
    // ids, so each iteration replays the same epoch on a fresh session.)
    state.PauseTiming();
    dynamic::DynamicPlanner planner(points, options);
    state.ResumeTiming();
    const auto report = planner.apply(trace.front());
    benchmark::DoNotOptimize(report.slots);
  }
}
BENCHMARK(BM_IncrementalEpoch)
    ->Args({512, 2})
    ->Args({512, 10})
    ->Args({2048, 1})  // the stable-id LinkStore acceptance configuration
    ->Args({2048, 2})
    ->Unit(benchmark::kMillisecond);

void BM_FullReplanEpoch(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto points = workload::make_family("uniform", n, 3);
  const auto cfg = workload::mode_config(core::PowerMode::kGlobal);
  for (auto _ : state) {
    const auto plan = core::plan_aggregation(points, cfg);
    benchmark::DoNotOptimize(plan.scheduling.schedule.length());
  }
}
BENCHMARK(BM_FullReplanEpoch)->Arg(512)->Arg(2048)->Unit(
    benchmark::kMillisecond);

/// CI gate (--smoke): audited low-churn sessions must stay valid, avoid
/// the full-replan fallback, and beat the from-scratch baseline by a solid
/// margin. A regression that drags epoch cost back toward O(n) fails the
/// job instead of landing silently; the threshold sits well below the
/// current ~3x so scheduler noise on shared runners cannot flake it.
///
/// Noise protocol: --warmup sessions run first and are discarded (cold
/// caches, frequency ramp), then --repeat identical sessions are measured
/// and every timing gate reads the MEDIAN across them — one descheduled
/// session cannot flip a verdict the way the old single-session gate
/// could. Validity/fallback gates stay all-sessions (correctness is not a
/// noise quantity).
///
/// The session also gates the conflict layer: its per-epoch cost (index
/// maintenance + dirty-row queries) must undercut a from-scratch
/// conflict_neighbors_bucketed call answering the same average dirty set —
/// the O(n) rebuild every pre-index epoch paid. Measuring the budget on the
/// same machine in the same process keeps the gate hardware-relative, so a
/// regression that quietly reintroduces per-epoch rebuild work fails CI
/// without the flakiness of an absolute-milliseconds threshold.
///
/// The per-epoch budget numbers (mst_ms, conflict_ms, epoch_ms) are read
/// from the obs::Registry metrics JSON — serialized and re-parsed through
/// the same schema the CLIs export — so the gate certifies the
/// machine-readable telemetry end-to-end, not a private accumulator. The
/// legacy EpochTimings accumulation is kept alongside as a cross-check: the
/// two must agree, or the "thin view" contract broke. A final gate bounds
/// the tracing-DISABLED overhead at <= 2% of the measured epoch cost.
int run_smoke(const std::string& trace_path, const std::string& metrics_path,
              std::size_t repeats, std::size_t warmups) {
  constexpr double kMinSpeedup = 1.4;
  // With the diff-maintained row cache the conflict layer runs at ~0.2x the
  // rebuild baseline on a quiet machine (mostly maintain-side patching; the
  // query side is all cache hits). Losing the cache alone puts it back at
  // ~0.5-0.75x, reinstating the O(n) rebuild at >= 1.5x. 0.45 fails both
  // regressions with ~2x headroom over the healthy level for runner noise.
  constexpr double kMaxConflictShare = 0.45;  ///< of the rebuild baseline
  // Same construction for the tree layer: the dynamic-tree engine runs at
  // a small fraction of a from-scratch Prim on a quiet machine, while the
  // pre-dtree merge-Kruskal engine sat well above it at this size. 0.9
  // fails any regression that drags per-mutation cost back toward O(n)
  // without flaking on shared runners.
  constexpr double kMaxMstShare = 0.9;  ///< of the from-scratch Prim baseline
  const std::size_t n = 512;
  dynamic::ChurnParams params;
  params.epochs = 8;
  params.rate = 0.01;
  const auto points = workload::make_family("uniform", n, 3);
  const auto trace = dynamic::make_churn_trace(points, params, 17);

  dynamic::DynamicOptions options;
  options.config = workload::mode_config(core::PowerMode::kGlobal);
  options.audit = true;

  for (std::size_t w = 0; w < warmups; ++w) {
    dynamic::DynamicPlanner warm(points, options);
    for (const auto& epoch : trace) (void)warm.apply(epoch);
  }

  repeats = std::max<std::size_t>(1, repeats);
  std::vector<SessionCost> sessions;
  std::vector<double> epoch_times;  // last session, legacy cross-check
  std::unique_ptr<dynamic::DynamicPlanner> planner;
  for (std::size_t r = 0; r < repeats; ++r) {
    const bool last = r + 1 == repeats;
    planner = std::make_unique<dynamic::DynamicPlanner>(points, options);
    // Window the registry on the gated epochs: the construction full plan
    // would otherwise dominate the histograms (same convention as
    // wagg_churn). The JSON cross-checks below read the LAST window, whose
    // SessionCost we kept alongside.
    obs::Registry::global().reset();
    if (last && !trace_path.empty()) obs::Tracer::global().enable();
    SessionCost cost;
    epoch_times.clear();
    for (const auto& epoch : trace) {
      const auto report = planner->apply(epoch);
      accumulate(cost, report);
      epoch_times.push_back(report.timings.incremental_ms());
    }
    sessions.push_back(cost);
  }
  const SessionCost& cost = sessions.back();
  const auto epochs = static_cast<double>(cost.epochs);
  const auto median_over = [&sessions](auto per_session) {
    std::vector<double> values;
    values.reserve(sessions.size());
    for (const auto& s : sessions) values.push_back(per_session(s));
    return obs::median_of(std::move(values));
  };
  const auto per_epoch_incr = [](const SessionCost& s) {
    return s.incremental_ms / static_cast<double>(s.epochs);
  };
  const double incr = median_over(per_epoch_incr);
  const double full = median_over([](const SessionCost& s) {
    return s.full_ms / static_cast<double>(s.epochs);
  });
  const double speedup = median_over([&](const SessionCost& s) {
    const double i = per_epoch_incr(s);
    return i > 0.0 ? (s.full_ms / static_cast<double>(s.epochs)) / i : 0.0;
  });
  bool all_valid = true;
  std::size_t total_fallbacks = 0;
  for (const auto& s : sessions) {
    all_valid = all_valid && s.all_valid;
    total_fallbacks += s.full_replans;
  }

  // ---- machine-readable gate inputs: serialize the registry to the same
  // JSON the CLIs export, re-parse it, and gate on the PARSED numbers ----
  const std::string metrics_json =
      obs::Registry::global().snapshot().to_json();
  if (!metrics_path.empty()) obs::write_text_file(metrics_path, metrics_json);
  if (!trace_path.empty()) {
    obs::Tracer::global().disable();
    obs::export_trace(trace_path);
  }
  const auto parsed = obs::MetricsSnapshot::from_json(metrics_json);
  const auto& epoch_hist = parsed.histograms.at("dynamic.epoch_ms");
  const auto& mst_hist = parsed.histograms.at("dynamic.mst_ms");
  const auto& conflict_hist = parsed.histograms.at("dynamic.conflict_ms");
  const std::uint64_t json_fallbacks =
      parsed.counters.at("dynamic.full_replans");
  const double conflict = conflict_hist.mean();
  const obs::SummaryRow lat = epoch_hist.row();

  // Rebuild baseline: answer the session's average dirty set from scratch
  // against the final snapshot (pays the per-call grid build the index
  // avoids). Best of a few repetitions to shed scheduler noise.
  const auto& links = planner->snapshot().links;
  const auto spec = core::spec_for_mode(options.config);
  std::vector<std::size_t> queries(
      std::min(links.size(),
               std::max<std::size_t>(
                   1, cost.dirty_links / std::max<std::size_t>(1,
                                                               cost.epochs))));
  for (std::size_t i = 0; i < queries.size(); ++i) queries[i] = i;
  double baseline = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 5; ++rep) {
    const auto start = util::Clock::now();
    const auto rows =
        conflict::conflict_neighbors_bucketed(links, spec, queries);
    benchmark::DoNotOptimize(rows.size());
    baseline = std::min(baseline, util::ms_since(start));
  }

  // Tree-layer budget: per-epoch MST cost against a from-scratch Prim on
  // the same final instance (the per-epoch tree bill of a non-incremental
  // engine). Gates read session MEDIANS; `conflict`/`mst` stay the last
  // window's parsed values for the JSON cross-checks below.
  const double mst = mst_hist.mean();
  const double conflict_med = median_over([](const SessionCost& s) {
    return s.conflict_ms / static_cast<double>(s.epochs);
  });
  const double mst_med = median_over([](const SessionCost& s) {
    return s.mst_ms / static_cast<double>(s.epochs);
  });
  const double prim_baseline = prim_baseline_ms(planner->snapshot().points);

  std::cout << "smoke: uniform n=" << n << " rate=0.01 epochs=" << cost.epochs
            << " sessions=" << repeats << " (+" << warmups
            << " warmup), gating medians\n";
  std::cout << "smoke: incr=" << incr << " ms/epoch full=" << full
            << " ms/epoch speedup=" << speedup
            << "x conflict=" << conflict_med << " ms/epoch ("
            << median_over([](const SessionCost& s) {
                 return s.conflict_maintain_ms / static_cast<double>(s.epochs);
               })
            << " maintain / "
            << median_over([](const SessionCost& s) {
                 return s.conflict_query_ms / static_cast<double>(s.epochs);
               })
            << " query, rebuild baseline " << baseline
            << ") mst=" << mst_med << " ms/epoch ("
            << median_over([](const SessionCost& s) {
                 return s.mst_update_ms / static_cast<double>(s.epochs);
               })
            << " update / "
            << median_over([](const SessionCost& s) {
                 return s.orient_ms / static_cast<double>(s.epochs);
               })
            << " orient, Prim baseline "
            << prim_baseline << ") fallbacks=" << total_fallbacks
            << " valid=" << (all_valid ? "yes" : "NO") << "\n";
  std::cout << "smoke: epoch latency (metrics JSON) p50=" << lat.p50
            << " p95=" << lat.p95 << " mean=" << lat.mean
            << " max=" << lat.max << " ms\n";

  // ---- thin-view cross-checks: the parsed JSON must describe the same
  // session the legacy EpochTimings accumulation saw ----
  const auto rel_diff = [](double a, double b) {
    return std::abs(a - b) / std::max({1e-12, std::abs(a), std::abs(b)});
  };
  // (Pinned to the LAST session — the registry window the JSON serialized —
  // not the cross-session medians the gates read.)
  if (epoch_hist.count() != cost.epochs ||
      json_fallbacks != cost.full_replans ||
      rel_diff(mst, cost.mst_ms / epochs) > 1e-9 ||
      rel_diff(conflict, cost.conflict_ms / epochs) > 1e-9 ||
      rel_diff(epoch_hist.mean(), per_epoch_incr(cost)) > 1e-9) {
    std::cout << "smoke FAILED: metrics JSON disagrees with EpochTimings "
                 "(count/mean/fallback mismatch) — the registry is no "
                 "longer a faithful view of the pipeline\n";
    return 1;
  }
  // Quantiles: log-bucketed values must sit within the documented relative
  // error of the exact order statistic at the same rank.
  std::sort(epoch_times.begin(), epoch_times.end());
  for (const double p : {50.0, 95.0}) {
    const auto rank = static_cast<std::size_t>(
        p / 100.0 * static_cast<double>(epoch_times.size() - 1));
    const double exact = epoch_times[rank];
    if (rel_diff(epoch_hist.quantile(p), exact) >
        obs::Histogram::kMaxRelativeError + 1e-12) {
      std::cout << "smoke FAILED: histogram p" << p << " "
                << epoch_hist.quantile(p) << " strays more than "
                << obs::Histogram::kMaxRelativeError
                << " from the exact order statistic " << exact << "\n";
      return 1;
    }
  }

  if (!all_valid) {
    std::cout << "smoke FAILED: an epoch lost validity or audit "
                 "equivalence\n";
    return 1;
  }
  if (total_fallbacks != 0) {
    std::cout << "smoke FAILED: low-churn epochs hit the full-replan "
                 "fallback\n";
    return 1;
  }
  if (speedup < kMinSpeedup) {
    std::cout << "smoke FAILED: median incremental speedup " << speedup
              << "x < " << kMinSpeedup << "x floor\n";
    return 1;
  }
  if (conflict_med > kMaxConflictShare * baseline) {
    std::cout << "smoke FAILED: conflict layer " << conflict_med
              << " ms/epoch (median) exceeds " << kMaxConflictShare
              << "x the from-scratch rebuild baseline (" << baseline
              << " ms) — the index is no longer O(dirty)\n";
    return 1;
  }
  if (mst_med > kMaxMstShare * prim_baseline) {
    std::cout << "smoke FAILED: MST layer " << mst_med
              << " ms/epoch (median) exceeds " << kMaxMstShare
              << "x the from-scratch Prim baseline (" << prim_baseline
              << " ms) — tree updates are no longer localized\n";
    return 1;
  }

  // ---- tracing-disabled overhead gate: instrumentation left in the hot
  // path must cost <= 2% of an epoch when nobody is tracing ----
  // Count the spans one epoch actually opens (briefly enabled replay on a
  // fresh session), then price them at the measured disabled-span cost.
  // The product, not a full timed rerun, is what's asserted: epoch wall
  // clocks on shared runners are far noisier than 2%.
  obs::Tracer::global().enable();
  std::uint64_t spans_per_epoch = 0;
  {
    dynamic::DynamicOptions probe_options = options;
    probe_options.audit = false;  // gate the steady-state epoch, not audit
    dynamic::DynamicPlanner probe(points, probe_options);
    const std::uint64_t before = obs::Tracer::global().recorded_events();
    (void)probe.apply(trace.front());
    spans_per_epoch = obs::Tracer::global().recorded_events() - before;
  }
  obs::Tracer::global().disable();
  obs::Tracer::global().clear();

  constexpr int kSpanReps = 1'000'000;
  const auto span_start = util::Clock::now();
  for (int i = 0; i < kSpanReps; ++i) {
    obs::Span probe_span("overhead-probe");
    benchmark::DoNotOptimize(&probe_span);
  }
  const double per_span_ms = util::ms_since(span_start) / kSpanReps;
  const double overhead_ms =
      per_span_ms * static_cast<double>(spans_per_epoch);
  const double overhead_budget_ms = 0.02 * epoch_hist.mean();
  std::cout << "smoke: tracing-disabled overhead " << overhead_ms
            << " ms/epoch (" << spans_per_epoch << " spans x " << per_span_ms
            << " ms), budget " << overhead_budget_ms << " (2% of epoch)\n";
  if (overhead_ms > overhead_budget_ms) {
    std::cout << "smoke FAILED: disabled tracing costs " << overhead_ms
              << " ms/epoch > 2% of the " << epoch_hist.mean()
              << " ms epoch — the disabled span path is no longer one "
                 "relaxed load\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace wagg

int main(int argc, char** argv) {
  // --smoke: skip the (slow) study table, run the CI gate, then whatever
  // benchmarks the remaining flags select (CI passes a tiny
  // --benchmark_min_time so regressions surface without burning minutes).
  // --repeat= / --warmup= set the smoke gate's median-of-k protocol;
  // --trace= / --metrics-json= write the last smoke session's Perfetto
  // trace and registry snapshot (uploaded as CI artifacts). All are
  // consumed here — google-benchmark rejects flags it does not know.
  bool smoke = false;
  std::string trace_path;
  std::string metrics_path;
  std::size_t repeats = 3;
  std::size_t warmups = 1;
  for (int i = 1; i < argc;) {
    const std::string arg(argv[i]);
    bool consumed = true;
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--trace=", 0) == 0) {
      trace_path = arg.substr(8);
    } else if (arg.rfind("--metrics-json=", 0) == 0) {
      metrics_path = arg.substr(15);
    } else if (arg.rfind("--repeat=", 0) == 0) {
      repeats = static_cast<std::size_t>(std::stoul(arg.substr(9)));
    } else if (arg.rfind("--warmup=", 0) == 0) {
      warmups = static_cast<std::size_t>(std::stoul(arg.substr(9)));
    } else {
      consumed = false;
    }
    if (consumed) {
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
    } else {
      ++i;
    }
  }
  int gate = 0;
  if (smoke) {
    gate = wagg::run_smoke(trace_path, metrics_path, repeats, warmups);
    if (gate != 0) return gate;
  } else {
    wagg::print_table();
    wagg::print_conflict_scale_table();
    wagg::print_mst_scale_table();
  }
  std::cout << "\n";
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
