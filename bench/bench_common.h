#ifndef WAGG_BENCH_COMMON_H
#define WAGG_BENCH_COMMON_H

// Shared helpers for the experiment harness. Every bench binary prints the
// paper-shaped table(s) for its experiment (see the experiment index in
// README.md) and then runs its google-benchmark timings.
//
// Instance families and mode defaults live in the workload registry
// (src/workload/workload.h); benches call workload::make_family and
// workload::mode_config directly, so benches, tests, and the batch runtime
// all draw instances from one definition.

#include <benchmark/benchmark.h>

#include <iostream>
#include <string>

#include "core/planner.h"
#include "geom/point.h"
#include "util/table.h"
#include "workload/workload.h"

namespace wagg::bench {

inline void print_header(const std::string& experiment,
                         const std::string& claim) {
  std::cout << "\n=== " << experiment << " ===\n" << claim << "\n\n";
}

}  // namespace wagg::bench

#endif  // WAGG_BENCH_COMMON_H
