#ifndef WAGG_BENCH_COMMON_H
#define WAGG_BENCH_COMMON_H

// Shared helpers for the experiment harness. Every bench binary prints the
// paper-shaped table(s) for its experiment (see DESIGN.md experiment index)
// and then runs its google-benchmark timings.

#include <benchmark/benchmark.h>

#include <iostream>
#include <string>

#include "core/planner.h"
#include "geom/point.h"
#include "instance/basic.h"
#include "util/table.h"

namespace wagg::bench {

/// Named instance family generators used across experiments.
inline geom::Pointset make_family(const std::string& family, std::size_t n,
                                  std::uint64_t seed) {
  if (family == "uniform") {
    return instance::uniform_square(n, std::sqrt(static_cast<double>(n)),
                                    seed);
  }
  if (family == "cluster") {
    return instance::clustered(std::max<std::size_t>(n / 16, 1), 16,
                               std::sqrt(static_cast<double>(n)) * 4.0, 0.1,
                               seed);
  }
  if (family == "grid") {
    const auto side = static_cast<std::size_t>(std::sqrt(static_cast<double>(n)));
    return instance::grid(side, side, 1.0);
  }
  if (family == "expchain") {
    return instance::exponential_chain(std::min<std::size_t>(n, 900), 2.0);
  }
  if (family == "unitchain") {
    return instance::unit_chain(n);
  }
  throw std::invalid_argument("unknown family: " + family);
}

inline core::PlannerConfig mode_config(core::PowerMode mode) {
  core::PlannerConfig cfg;
  cfg.power_mode = mode;
  cfg.sinr.alpha = 3.0;
  cfg.sinr.beta = 1.0;
  return cfg;
}

inline void print_header(const std::string& experiment,
                         const std::string& claim) {
  std::cout << "\n=== " << experiment << " ===\n" << claim << "\n\n";
}

}  // namespace wagg::bench

#endif  // WAGG_BENCH_COMMON_H
