// E4 — Proposition 1 / Fig 2: the oblivious-power lower bound. On the
// doubly-exponential chain no two links are P_tau-cofeasible, so every
// schedule needs one slot per link: rate Theta(1/loglog Delta). Our own
// oblivious scheduler must match the bound (upper = lower = n-1 slots).

#include "bench_common.h"

#include "analysis/audit.h"
#include "instance/lowerbound.h"
#include "mst/tree.h"
#include "schedule/verify.h"
#include "sinr/power.h"
#include "util/logmath.h"

namespace wagg {
namespace {

void print_table() {
  bench::print_header(
      "E4: Proposition 1 — doubly-exponential chain defeats P_tau",
      "For every tau: 0 cofeasible pairs, exact minimum slots = #links, and\n"
      "#links tracks loglog(Delta). Upper bound: our oblivious planner on\n"
      "the same instance (must equal the lower bound).");
  util::Table t({"tau", "n", "log2 Delta", "loglogD", "cofeasible pairs",
                 "exact min slots", "planner slots"});
  sinr::SinrParams prm;
  prm.alpha = 3.0;
  prm.beta = 1.0;
  for (double tau : {0.25, 0.4, 0.5, 0.6, 0.75}) {
    const std::size_t cap =
        instance::max_doubly_exponential_size(tau, prm.alpha, prm.beta);
    const std::size_t n = std::min<std::size_t>(9, cap);
    const auto chain =
        instance::doubly_exponential_chain(n, tau, prm.alpha, prm.beta);
    const auto tree = mst::mst_tree(chain.points, 0);
    const auto power = sinr::oblivious_power(tree.links, tau, prm);
    const auto oracle = schedule::fixed_power_oracle(tree.links, prm, power);
    const auto pairs = analysis::count_cofeasible_pairs(tree.links, oracle);
    const auto bound = analysis::min_slots_lower_bound(tree.links, oracle);

    auto cfg = workload::mode_config(core::PowerMode::kOblivious);
    cfg.tau = tau;
    cfg.delta = std::max(0.9, std::max(tau, 1.0 - tau) + 0.05);
    const auto plan = core::plan_aggregation(chain.points, cfg);

    t.row()
        .cell(tau, 2)
        .cell(n)
        .cell(chain.log2_delta, 1)
        .cell(util::log2_log2_of_log2(chain.log2_delta), 2)
        .cell(pairs)
        .cell(bound ? std::to_string(*bound) : std::string("budget"))
        .cell(plan.schedule().length());
  }
  t.print(std::cout);
}

void print_growth_table() {
  bench::print_header(
      "E4b: n vs loglog Delta along the construction",
      "Fixing tau = 0.5 and growing n: log2(Delta) squares each step, so n\n"
      "stays within an additive constant of loglog2(Delta).");
  util::Table t({"n", "log2 Delta", "loglog2 Delta", "n - loglogD"});
  for (std::size_t n = 4; n <= 10; ++n) {
    const auto chain = instance::doubly_exponential_chain(n, 0.5, 3.0, 1.0);
    const double ll = util::log2_log2_of_log2(chain.log2_delta);
    t.row().cell(n).cell(chain.log2_delta, 1).cell(ll, 2).cell(
        static_cast<double>(n) - ll, 2);
  }
  t.print(std::cout);
}

void BM_PairwiseAudit(benchmark::State& state) {
  sinr::SinrParams prm;
  prm.alpha = 3.0;
  prm.beta = 1.0;
  const auto chain = instance::doubly_exponential_chain(9, 0.5, 3.0, 1.0);
  const auto tree = mst::mst_tree(chain.points, 0);
  const auto power = sinr::oblivious_power(tree.links, 0.5, prm);
  const auto oracle = schedule::fixed_power_oracle(tree.links, prm, power);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analysis::count_cofeasible_pairs(tree.links, oracle));
  }
}
BENCHMARK(BM_PairwiseAudit)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace wagg

int main(int argc, char** argv) {
  wagg::print_table();
  wagg::print_growth_table();
  std::cout << "\n";
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
