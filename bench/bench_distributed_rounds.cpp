// E10 — Sec 3.3: distributed schedule computation. Round counts should
// follow O((log n * slots + log^2 n) * #classes) with #classes <= log Delta.

#include "bench_common.h"

#include <cmath>

#include "distributed/distributed.h"
#include "mst/tree.h"

namespace wagg {
namespace {

void print_table() {
  bench::print_header(
      "E10: distributed scheduling rounds (Sec 3.3)",
      "Simulated contention rounds plus the paper's modeled local-broadcast\n"
      "cost O(colors + log^2 n) per phase. 'bound' is the paper's shape\n"
      "(log n * loglogD + log^2 n) * logD for comparison.");
  util::Table t({"family", "n", "phases (logD)", "colors", "coloring rounds",
                 "broadcast rounds", "total", "paper bound shape"});
  distributed::DistributedConfig cfg;
  cfg.spec = conflict::ConflictSpec::constant(2.0);
  for (const std::string family : {"uniform", "cluster", "expchain"}) {
    for (std::size_t n : {128u, 512u, 2048u}) {
      const auto pts = workload::make_family(family, n, 9);
      const auto tree = mst::mst_tree(pts, 0);
      cfg.seed = n;
      const auto result = distributed::distributed_schedule(tree.links, cfg);
      const double log_n = std::log2(static_cast<double>(pts.size()));
      const double log_delta = std::max(1.0, tree.links.log2_delta());
      const double loglog_delta = std::max(1.0, std::log2(log_delta));
      const double bound =
          (log_n * loglog_delta + log_n * log_n) * log_delta;
      t.row()
          .cell(family)
          .cell(pts.size())
          .cell(result.num_phases)
          .cell(static_cast<std::size_t>(result.coloring.num_colors))
          .cell(result.coloring_rounds)
          .cell(result.broadcast_rounds)
          .cell(result.total_rounds)
          .cell(bound, 0);
    }
  }
  t.print(std::cout);
}

void BM_DistributedScheduling(benchmark::State& state) {
  const auto pts = workload::make_family(
      "uniform", static_cast<std::size_t>(state.range(0)), 3);
  const auto tree = mst::mst_tree(pts, 0);
  distributed::DistributedConfig cfg;
  cfg.spec = conflict::ConflictSpec::constant(2.0);
  for (auto _ : state) {
    const auto result = distributed::distributed_schedule(tree.links, cfg);
    benchmark::DoNotOptimize(result.total_rounds);
  }
}
BENCHMARK(BM_DistributedScheduling)
    ->Arg(256)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wagg

int main(int argc, char** argv) {
  wagg::print_table();
  std::cout << "\n";
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
