// E8 — the Sec 4 multicoloring example: on the SINR embedding of the
// 5-cycle, every proper coloring needs 3 slots (rate 1/3) but the
// multicolor sequence 13, 24, 14, 25, 35 is feasible and achieves 2/5.

#include "bench_common.h"

#include "analysis/audit.h"
#include "coloring/coloring.h"
#include "instance/special.h"
#include "schedule/verify.h"
#include "sinr/power.h"

namespace wagg {
namespace {

void print_table() {
  bench::print_header(
      "E8: 5-cycle — multicoloring rate 2/5 beats coloring rate 1/3",
      "The pairwise infeasibility graph of the embedded links is exactly C5\n"
      "(line graph of C5); chi = 3 bounds every coloring schedule, while the\n"
      "paper's 5-slot multicolor schedule is verified feasible at rate 2/5.");
  sinr::SinrParams prm;
  prm.alpha = 3.0;
  prm.beta = 1.0;
  util::Table t({"eps", "conflict graph", "chi", "coloring rate",
                 "multicolor feasible", "multicolor rate"});
  for (double eps : {1e-4, 1e-3, 1e-2}) {
    const auto inst = instance::five_cycle_instance(1.0, eps);
    const auto power = sinr::uniform_power(inst.links, prm);
    const auto oracle = schedule::fixed_power_oracle(inst.links, prm, power);
    const auto h = analysis::pairwise_infeasibility_graph(inst.links, oracle);
    // Is H exactly the 5-cycle e_i ~ e_(i+1)?
    bool is_c5 = h.num_edges() == 5;
    for (std::size_t i = 0; i < 5 && is_c5; ++i) {
      is_c5 = h.has_edge(i, (i + 1) % 5);
    }
    const auto chi = coloring::exact_chromatic_number(h);
    schedule::Schedule multicolor;
    multicolor.slots = inst.multicolor_slots;
    const bool multi_ok =
        schedule::verify_schedule(inst.links, multicolor, oracle)
            .all_slots_feasible;
    t.row()
        .cell(eps, 4)
        .cell(is_c5 ? "C5" : "NOT C5")
        .cell(chi ? std::to_string(*chi) : std::string("budget"))
        .cell(chi ? "1/" + std::to_string(*chi) : std::string("-"))
        .cell(multi_ok ? "yes" : "NO")
        .cell(schedule::min_link_rate(multicolor, 5), 3);
  }
  t.print(std::cout);
}

void BM_FiveCycleVerification(benchmark::State& state) {
  sinr::SinrParams prm;
  prm.alpha = 3.0;
  prm.beta = 1.0;
  const auto inst = instance::five_cycle_instance();
  const auto power = sinr::uniform_power(inst.links, prm);
  const auto oracle = schedule::fixed_power_oracle(inst.links, prm, power);
  schedule::Schedule multicolor;
  multicolor.slots = inst.multicolor_slots;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        schedule::verify_schedule(inst.links, multicolor, oracle)
            .all_slots_feasible);
  }
}
BENCHMARK(BM_FiveCycleVerification)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace wagg

int main(int argc, char** argv) {
  wagg::print_table();
  std::cout << "\n";
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
