// Cross-module property/fuzz suite: randomized invariants that must hold for
// every instance family, seed and parameter combination. Complements the
// per-module unit tests and the paper_claims suite.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>

#include "analysis/audit.h"
#include "conflict/fgraph.h"
#include "core/planner.h"
#include "geom/linkset.h"
#include "instance/basic.h"
#include "instance/extended.h"
#include "mst/mst.h"
#include "mst/tree.h"
#include "schedule/latency.h"
#include "schedule/simulator.h"
#include "sinr/feasibility.h"
#include "sinr/interference.h"
#include "sinr/power.h"
#include "util/rng.h"

namespace wagg {
namespace {

sinr::SinrParams params(double alpha = 3.0, double beta = 1.0) {
  sinr::SinrParams p;
  p.alpha = alpha;
  p.beta = beta;
  return p;
}

geom::Pointset family_points(int family, std::uint64_t seed) {
  switch (family) {
    case 0:
      return instance::uniform_square(100, 9.0, seed);
    case 1:
      return instance::clustered(6, 16, 60.0, 0.4, seed);
    case 2:
      return instance::exponential_chain(18, 1.6);
    case 3:
      return instance::perturbed_grid(10, 10, 1.0, 0.3, seed);
    case 4:
      return instance::spiral(100, 7.0);
    case 5:
      return instance::pareto_field(100, 1.2, seed);
    default:
      throw std::logic_error("unknown family");
  }
}

/// Random link set: pairs of random points (not a tree; exercises the
/// geometry and SINR layers away from the MST special case).
geom::LinkSet random_links(std::size_t count, std::uint64_t seed) {
  util::Rng rng(seed);
  geom::Pointset pts;
  std::vector<geom::Link> links;
  for (std::size_t i = 0; i < 2 * count; ++i) {
    pts.push_back({rng.uniform(0, 30), rng.uniform(0, 30)});
  }
  for (std::size_t i = 0; i < count; ++i) {
    links.push_back(geom::Link{static_cast<std::int32_t>(2 * i),
                               static_cast<std::int32_t>(2 * i + 1)});
  }
  return geom::LinkSet(pts, links);
}

// --- geometry invariants ------------------------------------------------------

class GeometryFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeometryFuzz, LinkMetricInvariants) {
  const auto ls = random_links(24, GetParam());
  for (std::size_t i = 0; i < ls.size(); ++i) {
    for (std::size_t j = 0; j < ls.size(); ++j) {
      if (i == j) continue;
      // Symmetry of the node-set distance.
      EXPECT_DOUBLE_EQ(ls.link_distance(i, j), ls.link_distance(j, i));
      // d_ji connects a node of j with a node of i, so it dominates d(i,j).
      EXPECT_GE(ls.sinr_distance(j, i) + 1e-12, ls.link_distance(i, j));
      // Triangle-ish: d(i,j) <= d_ji <= d(i,j) + l_i + l_j.
      EXPECT_LE(ls.sinr_distance(j, i),
                ls.link_distance(i, j) + ls.length(i) + ls.length(j) + 1e-9);
    }
  }
}

TEST_P(GeometryFuzz, OrderingsArePermutationsAndSorted) {
  const auto ls = random_links(16, GetParam() + 100);
  const auto dec = ls.by_decreasing_length();
  const auto inc = ls.by_increasing_length();
  ASSERT_EQ(dec.size(), ls.size());
  for (std::size_t k = 0; k + 1 < dec.size(); ++k) {
    EXPECT_GE(ls.length(dec[k]) + 1e-15, ls.length(dec[k + 1]));
    EXPECT_LE(ls.length(inc[k]), ls.length(inc[k + 1]) + 1e-15);
  }
  auto sorted = dec;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t k = 0; k < sorted.size(); ++k) EXPECT_EQ(sorted[k], k);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeometryFuzz,
                         ::testing::Values(1ULL, 2ULL, 3ULL, 4ULL));

// --- MST invariants -------------------------------------------------------------

class MstFuzz
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(MstFuzz, MstIsLightestAmongPerturbations) {
  const auto [family, seed] = GetParam();
  const auto pts = family_points(family, seed);
  const auto mst_edges = mst::euclidean_mst(pts);
  const double mst_weight = mst::total_weight(pts, mst_edges);
  // Cut property spot-check: swapping any tree edge for a random non-tree
  // edge that reconnects the two sides never reduces the weight.
  util::Rng rng(seed * 31 + 7);
  for (int trial = 0; trial < 10; ++trial) {
    auto edges = mst_edges;
    const std::size_t drop = rng.below(edges.size());
    const auto dropped = edges[drop];
    edges.erase(edges.begin() + static_cast<std::ptrdiff_t>(drop));
    // Find the two components.
    mst::UnionFind uf(pts.size());
    for (const auto& e : edges) {
      uf.unite(static_cast<std::size_t>(e.u), static_cast<std::size_t>(e.v));
    }
    // Random reconnecting edge.
    for (int attempt = 0; attempt < 50; ++attempt) {
      const auto u = rng.below(pts.size());
      const auto v = rng.below(pts.size());
      if (u == v || uf.find(u) == uf.find(v)) continue;
      const double new_weight =
          mst::total_weight(pts, edges) + geom::distance(pts[u], pts[v]);
      EXPECT_GE(new_weight + 1e-9, mst_weight);
      break;
    }
    edges.push_back(dropped);
  }
}

TEST_P(MstFuzz, OrientationPreservesEdgeLengths) {
  const auto [family, seed] = GetParam();
  const auto pts = family_points(family, seed);
  const auto edges = mst::euclidean_mst(pts);
  const auto tree = mst::orient_toward_sink(pts, edges, 0);
  // Total link length equals total edge weight.
  double link_total = 0.0;
  for (std::size_t i = 0; i < tree.links.size(); ++i) {
    link_total += tree.links.length(i);
  }
  EXPECT_NEAR(link_total, mst::total_weight(pts, edges),
              1e-9 * std::max(1.0, link_total));
  // Every non-sink node has exactly one upward link; depths decrease along it.
  for (std::size_t v = 0; v < pts.size(); ++v) {
    if (static_cast<std::int32_t>(v) == tree.sink) continue;
    const auto li = tree.link_of_node[v];
    ASSERT_GE(li, 0);
    const auto& link = tree.links.link(static_cast<std::size_t>(li));
    EXPECT_EQ(link.sender, static_cast<std::int32_t>(v));
    EXPECT_EQ(tree.depth[static_cast<std::size_t>(link.receiver)] + 1,
              tree.depth[v]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, MstFuzz,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4, 5),
                       ::testing::Values(3ULL, 11ULL)));

// --- SINR invariants -------------------------------------------------------------

class SinrFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SinrFuzz, FeasibilitySubsetClosedUnderPowerControl) {
  const auto ls = random_links(8, GetParam() + 500);
  const auto prm = params();
  std::vector<std::size_t> all(ls.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  const auto full = sinr::power_control_feasible(ls, all, prm);
  if (!full.feasible) return;
  // Every subset of a feasible set is feasible (drop one element).
  for (std::size_t drop = 0; drop < all.size(); ++drop) {
    std::vector<std::size_t> sub;
    for (std::size_t i : all) {
      if (i != drop) sub.push_back(i);
    }
    EXPECT_TRUE(sinr::power_control_feasible(ls, sub, prm).feasible) << drop;
  }
}

TEST_P(SinrFuzz, AffectanceScalesWithBetaAndAlpha) {
  const auto ls = random_links(6, GetParam() + 900);
  const auto p3 = sinr::uniform_power(ls, params(3.0));
  for (std::size_t i = 0; i < ls.size(); ++i) {
    for (std::size_t j = 0; j < ls.size(); ++j) {
      if (i == j) continue;
      const double a3 =
          sinr::log2_affectance(ls, params(3.0), p3, j, i);
      const double a4 =
          sinr::log2_affectance(ls, params(4.0), p3, j, i);
      // Higher alpha shrinks affectance iff the interferer is farther than
      // the link is long (log2(l_i/d_ji) < 0).
      const double ratio = std::log2(ls.length(i)) -
                           std::log2(ls.sinr_distance(j, i));
      if (ratio < 0) {
        EXPECT_LT(a4, a3 + 1e-12);
      } else {
        EXPECT_GE(a4 + 1e-12, a3);
      }
    }
  }
}

TEST_P(SinrFuzz, PaperOperatorMatchesUniformAffectanceWhenClamped) {
  // For equal-length links, I(j, i) = min(1, (l/d(i,j))^alpha) upper-bounds
  // the uniform-power affectance (which uses the >= sender-receiver
  // distance d_ji >= d(i,j)).
  util::Rng rng(GetParam());
  geom::Pointset pts;
  std::vector<geom::Link> links;
  for (int i = 0; i < 6; ++i) {
    const double x = rng.uniform(0, 40), y = rng.uniform(0, 40);
    pts.push_back({x, y});
    pts.push_back({x + 1.0, y});
    links.push_back(geom::Link{2 * i, 2 * i + 1});
  }
  const geom::LinkSet ls(pts, links);
  const auto prm = params();
  const auto power = sinr::uniform_power(ls, prm);
  for (std::size_t i = 0; i < ls.size(); ++i) {
    for (std::size_t j = 0; j < ls.size(); ++j) {
      if (i == j) continue;
      const double op = sinr::interference_between(ls, j, i, prm.alpha);
      const double aff =
          std::exp2(sinr::log2_affectance(ls, prm, power, j, i));
      EXPECT_GE(op + 1e-12, std::min(1.0, aff));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SinrFuzz,
                         ::testing::Values(1ULL, 5ULL, 9ULL, 13ULL));

// --- end-to-end invariants ------------------------------------------------------

class PipelineMatrix
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(PipelineMatrix, VerifiedPartitionSimulatesCorrectly) {
  const auto [family, mode_idx, seed] = GetParam();
  const auto pts = family_points(family, seed);
  core::PlannerConfig cfg;
  cfg.power_mode = static_cast<core::PowerMode>(mode_idx);
  const auto plan = core::plan_aggregation(pts, cfg);
  ASSERT_TRUE(plan.verified());
  ASSERT_TRUE(schedule::is_partition(plan.schedule(), plan.tree.links.size()));

  // Latency optimization must not change rate or content.
  const auto ordered = schedule::optimize_slot_order(plan.tree, plan.schedule());
  EXPECT_EQ(ordered.length(), plan.schedule().length());

  schedule::SimulationConfig sim;
  sim.num_frames = 6;
  sim.generation_period = plan.schedule().length();
  const auto rep = schedule::simulate_aggregation(plan.tree, ordered, sim);
  EXPECT_TRUE(rep.all_frames_completed);
  EXPECT_TRUE(rep.aggregates_correct);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, PipelineMatrix,
    ::testing::Combine(
        ::testing::Values(0, 1, 2, 3, 4, 5),
        ::testing::Values(static_cast<int>(core::PowerMode::kUniform),
                          static_cast<int>(core::PowerMode::kOblivious),
                          static_cast<int>(core::PowerMode::kGlobal)),
        ::testing::Values(7ULL)));

TEST(PipelineInvariants, ScheduleLengthAtLeastInfeasibilityChi) {
  // The exact lower bound from the pairwise infeasibility graph never
  // exceeds the planner's schedule length (sanity of both sides).
  const auto pts = instance::uniform_square(16, 12.0, 3);
  core::PlannerConfig cfg;
  cfg.power_mode = core::PowerMode::kGlobal;
  const auto plan = core::plan_aggregation(pts, cfg);
  const auto oracle =
      schedule::power_control_oracle(plan.tree.links, cfg.sinr);
  const auto bound = analysis::min_slots_lower_bound(plan.tree.links, oracle);
  ASSERT_TRUE(bound.has_value());
  EXPECT_LE(static_cast<std::size_t>(*bound), plan.schedule().length());
}

TEST(PipelineInvariants, RepairIdempotent) {
  const auto pts = instance::uniform_square(80, 6.0, 9);
  core::PlannerConfig cfg;
  cfg.power_mode = core::PowerMode::kUniform;
  cfg.gamma = 0.5;  // force repairs
  const auto plan = core::plan_aggregation(pts, cfg);
  ASSERT_TRUE(plan.verified());
  // Repairing an already-repaired schedule is a no-op.
  const auto power = core::power_for_mode(plan.tree.links, cfg);
  const auto again = schedule::repair_schedule_fixed_power(
      plan.tree.links, plan.schedule(), cfg.sinr, power);
  EXPECT_EQ(again.slots_split, 0u);
  EXPECT_EQ(again.schedule.slots, plan.schedule().slots);
}

TEST(PipelineInvariants, SubLinksetSchedulesNoLonger) {
  // Removing links never lengthens the (repaired) schedule... not true in
  // general for greedy algorithms, but holds for prefixes of the length
  // order: scheduling only the longest half uses at most the full colors.
  const auto pts = instance::uniform_square(120, 8.0, 15);
  core::PlannerConfig cfg;
  cfg.power_mode = core::PowerMode::kOblivious;
  const auto tree = mst::mst_tree(pts, 0);
  const auto full = core::schedule_links(tree.links, cfg);
  const auto order = tree.links.by_decreasing_length();
  const std::vector<std::size_t> half(order.begin(),
                                      order.begin() + order.size() / 2);
  const auto sub = tree.links.subset(half);
  const auto half_result = core::schedule_links(sub, cfg);
  EXPECT_LE(half_result.schedule.length(), full.schedule.length());
}

}  // namespace
}  // namespace wagg
