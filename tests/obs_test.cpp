#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <random>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/stats.h"

namespace wagg::obs {
namespace {

// ---------------------------------------------------------------- histogram

TEST(Histogram, BucketIndexIsMonotoneAndInRange) {
  std::size_t prev = Histogram::bucket_index(0.0);
  EXPECT_EQ(prev, 0u);
  EXPECT_EQ(Histogram::bucket_index(-3.5), 0u);
  for (double v = 1e-6; v < 1e9; v *= 1.37) {
    const std::size_t index = Histogram::bucket_index(v);
    EXPECT_LT(index, Histogram::kNumBuckets);
    EXPECT_GE(index, prev) << "bucket index must be monotone in v, v=" << v;
    prev = index;
  }
  // The midpoint of a value's bucket is within half a bucket width of it.
  for (double v : {0.001, 0.7, 1.0, 3.25, 1000.0, 123456.0}) {
    const std::size_t index = Histogram::bucket_index(v);
    const double mid = Histogram::bucket_midpoint(index);
    EXPECT_LE(std::fabs(mid - v), Histogram::kMaxRelativeError * v + 1e-12)
        << "v=" << v;
  }
}

// The documented contract: a reported quantile is within kMaxRelativeError
// of the EXACT order statistic at the same rank (the one util::percentile
// interpolates around). Interpolated percentiles are not a bounded
// comparison target — adjacent order statistics can be arbitrarily far
// apart — so the cross-check pins the rank.
TEST(Histogram, QuantileWithinDocumentedErrorOfOrderStatistic) {
  std::mt19937_64 rng(20180707);
  std::uniform_real_distribution<double> exponent(-10.0, 10.0);
  std::vector<double> values;
  values.reserve(4097);
  for (std::size_t i = 0; i < 4097; ++i) {
    values.push_back(std::exp2(exponent(rng)));
  }
  const auto snap = HistogramSnapshot::of(values);
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());

  for (double p : {0.0, 1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0,
                   100.0}) {
    const auto rank = static_cast<std::size_t>(
        std::floor(p / 100.0 * static_cast<double>(sorted.size() - 1)));
    const double exact = sorted[rank];
    const double approx = snap.quantile(p);
    EXPECT_LE(std::fabs(approx - exact),
              Histogram::kMaxRelativeError * exact + 1e-12)
        << "p=" << p << " exact=" << exact << " approx=" << approx;
  }

  // Monotone in p and clamped to the exact observed range.
  double prev = snap.quantile(0.0);
  EXPECT_GE(prev, snap.min());
  for (double p = 5.0; p <= 100.0; p += 5.0) {
    const double q = snap.quantile(p);
    EXPECT_GE(q, prev) << "p=" << p;
    prev = q;
  }
  EXPECT_DOUBLE_EQ(snap.quantile(100.0), snap.max());
}

TEST(Histogram, SnapshotMeanMaxAreExact) {
  const std::vector<double> values = {3.5, 0.25, 18.0, 0.25, 7.75};
  const auto snap = HistogramSnapshot::of(values);
  util::Samples samples;
  for (double v : values) samples.add(v);
  EXPECT_EQ(snap.count(), values.size());
  EXPECT_DOUBLE_EQ(snap.mean(), samples.mean());
  EXPECT_DOUBLE_EQ(snap.max(), samples.max());
  EXPECT_DOUBLE_EQ(snap.min(), samples.min());
  const SummaryRow row = snap.row();
  EXPECT_DOUBLE_EQ(row.mean, samples.mean());
  EXPECT_DOUBLE_EQ(row.max, samples.max());
}

TEST(Histogram, EmptySnapshotAnswersZeroEverywhere) {
  const HistogramSnapshot snap;
  EXPECT_EQ(snap.count(), 0u);
  EXPECT_DOUBLE_EQ(snap.quantile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(snap.mean(), 0.0);
  EXPECT_DOUBLE_EQ(snap.max(), 0.0);
  EXPECT_TRUE(snap.nonzero_buckets().empty());
}

TEST(Histogram, ConcurrentRecordsMerge) {
  // Integer-valued samples keep the relaxed CAS sum exact regardless of the
  // interleaving, so the assertion below is deterministic.
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 20000;
  Histogram histogram;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, &go, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (std::size_t i = 0; i < kPerThread; ++i) {
        histogram.record(static_cast<double>((t + i) % 16 + 1));
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& thread : threads) thread.join();

  const auto snap = histogram.snapshot();
  EXPECT_EQ(snap.count(), kThreads * kPerThread);
  double expected_sum = 0.0;
  for (std::size_t t = 0; t < kThreads; ++t) {
    for (std::size_t i = 0; i < kPerThread; ++i) {
      expected_sum += static_cast<double>((t + i) % 16 + 1);
    }
  }
  EXPECT_DOUBLE_EQ(snap.sum(), expected_sum);
  EXPECT_DOUBLE_EQ(snap.min(), 1.0);
  EXPECT_DOUBLE_EQ(snap.max(), 16.0);
  std::uint64_t bucket_total = 0;
  for (const auto& [index, count] : snap.nonzero_buckets()) {
    bucket_total += count;
  }
  EXPECT_EQ(bucket_total, kThreads * kPerThread);
}

// ----------------------------------------------------------------- registry

TEST(Registry, ResetKeepsReferencesValid) {
  Registry registry;
  Counter& requests = registry.counter("test.requests");
  Gauge& busy = registry.gauge("test.busy");
  Histogram& latency = registry.histogram("test.latency_ms");
  requests.add(3);
  busy.set(2.0);
  latency.record(1.5);

  registry.reset();
  // Registrations survive reset; cached references keep working.
  requests.add(2);
  busy.add(1.0);
  latency.record(4.0);

  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("test.requests"), 2u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("test.busy"), 1.0);
  EXPECT_EQ(snap.histograms.at("test.latency_ms").count(), 1u);
  EXPECT_DOUBLE_EQ(snap.histograms.at("test.latency_ms").max(), 4.0);
  // Same name resolves to the same instance.
  EXPECT_EQ(&registry.counter("test.requests"), &requests);
}

TEST(Metrics, JsonRoundTripIsLossless) {
  Registry registry;
  registry.counter("dynamic.epochs").add(17);
  registry.counter("mst.path_max_swaps").add(12345678901ull);
  registry.gauge("service.busy_workers").set(3.25);
  Histogram& hist = registry.histogram("dynamic.epoch_ms");
  std::mt19937_64 rng(42);
  std::uniform_real_distribution<double> ms(0.01, 50.0);
  for (int i = 0; i < 500; ++i) hist.record(ms(rng));

  const auto before = registry.snapshot();
  const std::string text = before.to_json();
  const auto after = MetricsSnapshot::from_json(text);

  EXPECT_EQ(after.counters, before.counters);
  EXPECT_EQ(after.gauges, before.gauges);
  ASSERT_EQ(after.histograms.size(), before.histograms.size());
  const auto& a = after.histograms.at("dynamic.epoch_ms");
  const auto& b = before.histograms.at("dynamic.epoch_ms");
  EXPECT_EQ(a.count(), b.count());
  EXPECT_DOUBLE_EQ(a.sum(), b.sum());
  EXPECT_DOUBLE_EQ(a.min(), b.min());
  EXPECT_DOUBLE_EQ(a.max(), b.max());
  EXPECT_EQ(a.nonzero_buckets(), b.nonzero_buckets());
  for (double p : {50.0, 95.0, 99.0}) {
    EXPECT_DOUBLE_EQ(a.quantile(p), b.quantile(p)) << "p=" << p;
  }
}

TEST(Metrics, FromJsonRejectsUnknownSchema) {
  EXPECT_THROW(MetricsSnapshot::from_json("{}"), std::invalid_argument);
  EXPECT_THROW(MetricsSnapshot::from_json(
                   "{\"schema\": \"wagg-metrics-v999\", \"counters\": {}, "
                   "\"gauges\": {}, \"histograms\": {}}"),
               std::invalid_argument);
}

// ------------------------------------------------------- json parser edges

TEST(Json, ParsesExponentForms) {
  EXPECT_DOUBLE_EQ(json::parse("1e3").as_number(), 1000.0);
  EXPECT_DOUBLE_EQ(json::parse("1E3").as_number(), 1000.0);
  EXPECT_DOUBLE_EQ(json::parse("1.25e+2").as_number(), 125.0);
  EXPECT_DOUBLE_EQ(json::parse("125e-2").as_number(), 1.25);
  EXPECT_DOUBLE_EQ(json::parse("-2.5E-1").as_number(), -0.25);
  EXPECT_DOUBLE_EQ(json::parse("0e0").as_number(), 0.0);
  // Exponent without digits is malformed, not "ignore the suffix".
  EXPECT_THROW(json::parse("1e"), std::invalid_argument);
  EXPECT_THROW(json::parse("1e+"), std::invalid_argument);
}

TEST(Json, HugeMagnitudesRoundTripUntilTheyOverflow) {
  // Near the top of the double range: parsed exactly, not clipped.
  EXPECT_DOUBLE_EQ(json::parse("1e308").as_number(), 1e308);
  EXPECT_DOUBLE_EQ(json::parse("-1e308").as_number(), -1e308);
  const double max = std::numeric_limits<double>::max();
  EXPECT_DOUBLE_EQ(json::parse(json::number(max)).as_number(), max);
  // Past it: rejected, never saturated to inf (a perf gate comparing a
  // metric against inf would pass vacuously).
  EXPECT_THROW(json::parse("1e309"), std::invalid_argument);
  EXPECT_THROW(json::parse("-1e309"), std::invalid_argument);
  EXPECT_THROW(json::parse("1e99999"), std::invalid_argument);
}

TEST(Json, RejectsNanAndInfSpellings) {
  for (const char* text : {"NaN", "nan", "Infinity", "-Infinity", "inf",
                           "-inf", "[1, NaN]", "{\"x\": inf}"}) {
    EXPECT_THROW(json::parse(text), std::invalid_argument) << text;
  }
  // The writer side maps non-finite to null, so a round trip stays parseable.
  EXPECT_EQ(json::number(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(json::number(std::numeric_limits<double>::infinity()), "null");
}

TEST(Json, DeepNestingParsesUpToTheCapAndFailsCleanlyBeyond) {
  const auto nested = [](std::size_t depth) {
    std::string text(depth, '[');
    text += "1";
    text.append(depth, ']');
    return text;
  };
  const auto at_cap = json::parse(nested(json::kMaxParseDepth));
  const json::Value* leaf = &at_cap;
  std::size_t levels = 0;
  while (leaf->kind() == json::Value::Kind::kArray) {
    leaf = &leaf->as_array().front();
    ++levels;
  }
  EXPECT_EQ(levels, json::kMaxParseDepth);
  EXPECT_DOUBLE_EQ(leaf->as_number(), 1.0);
  // One past the cap: a clean exception, not recursion-depth stack death.
  EXPECT_THROW(json::parse(nested(json::kMaxParseDepth + 1)),
               std::invalid_argument);
  EXPECT_THROW(json::parse(nested(10'000)), std::invalid_argument);
  // Objects count against the same depth budget as arrays.
  std::string objects;
  for (std::size_t i = 0; i <= json::kMaxParseDepth; ++i) {
    objects += "{\"k\":";
  }
  objects += "1";
  objects.append(json::kMaxParseDepth + 1, '}');
  EXPECT_THROW(json::parse(objects), std::invalid_argument);
}

TEST(Json, MalformedInputsThrowInsteadOfGuessing) {
  for (const char* text : {
           "",                    // empty document
           "   ",                 // whitespace only
           "[1, 2",               // unterminated array
           "{\"a\": 1",           // unterminated object
           "{\"a\" 1}",           // missing colon
           "{\"a\": 1,}",         // trailing comma (object)
           "[1, 2,]",             // trailing comma (array)
           "[,1]",                // leading comma
           "{1: 2}",              // non-string key
           "\"unterminated",      // unterminated string
           "\"bad \\q escape\"",  // unknown escape
           "01",                  // leading zero
           "+1",                  // leading plus
           "1.",                  // dot without fraction digits
           ".5",                  // fraction without integer part
           "truth",               // keyword typo
           "nul",                 // truncated keyword
           "1 2",                 // trailing garbage
           "[1] []",              // two documents
           "]",                   // closer as a document
           ",",                   // separator as a document
       }) {
    EXPECT_THROW(json::parse(text), std::invalid_argument) << text;
  }
}

// ------------------------------------------------------------------- tracer

struct ParsedEvent {
  std::uint32_t tid = 0;
  std::string name;
  double start_us = 0.0;
  double end_us = 0.0;
};

std::vector<ParsedEvent> parse_trace(const std::string& text) {
  const auto doc = json::parse(text);
  std::vector<ParsedEvent> events;
  for (const auto& entry : doc.at("traceEvents").as_array()) {
    if (entry.at("ph").as_string() != "X") continue;  // skip thread_name meta
    ParsedEvent event;
    event.tid = static_cast<std::uint32_t>(entry.at("tid").as_number());
    event.name = entry.at("name").as_string();
    event.start_us = entry.at("ts").as_number();
    event.end_us = event.start_us + entry.at("dur").as_number();
    events.push_back(std::move(event));
  }
  return events;
}

class TracerTest : public ::testing::Test {
 protected:
  // The tracer is process-global; every test starts and ends with a clean,
  // disabled tracer so suites compose in one binary.
  void SetUp() override {
    Tracer::global().disable();
    Tracer::global().clear();
  }
  void TearDown() override {
    Tracer::global().disable();
    Tracer::global().clear();
  }
};

TEST_F(TracerTest, DisabledTracerRecordsNothing) {
  {
    Span span("never-kept");
    StageSpan stage("also-never-kept");
    stage.next("still-nothing");
  }
  EXPECT_EQ(Tracer::global().recorded_events(), 0u);
  EXPECT_EQ(Tracer::global().dropped_events(), 0u);
}

TEST_F(TracerTest, RingDropsOldestWithExactAccounting) {
  static constexpr const char* kNames[10] = {"e0", "e1", "e2", "e3", "e4",
                                             "e5", "e6", "e7", "e8", "e9"};
  Tracer& tracer = Tracer::global();
  tracer.enable(/*events_per_thread=*/4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    tracer.record(kNames[i], i * 100, i * 100 + 50);
  }
  tracer.disable();

  EXPECT_EQ(tracer.recorded_events(), 10u);
  EXPECT_EQ(tracer.dropped_events(), 6u);  // written - capacity, exactly

  // The ring keeps the TAIL of the story: the last 4 spans, oldest first.
  const auto events = parse_trace(tracer.chrome_trace_json());
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].name, kNames[6 + i]);
  }
  // And the export self-reports the drop count.
  const auto doc = json::parse(tracer.chrome_trace_json());
  EXPECT_DOUBLE_EQ(doc.at("otherData").at("dropped_events").as_number(), 6.0);
}

TEST_F(TracerTest, MultiThreadSpansStayPerThreadAndWellNested) {
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kIterations = 50;
  static constexpr const char* kOuter[kThreads] = {"w0.outer", "w1.outer",
                                                   "w2.outer", "w3.outer"};
  static constexpr const char* kInner[kThreads] = {"w0.inner", "w1.inner",
                                                   "w2.inner", "w3.inner"};
  Tracer& tracer = Tracer::global();
  tracer.enable();

  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&go, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (std::size_t i = 0; i < kIterations; ++i) {
        Span outer(kOuter[t]);
        Span inner(kInner[t]);
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& thread : threads) thread.join();
  tracer.disable();

  EXPECT_EQ(tracer.recorded_events(), kThreads * kIterations * 2);
  EXPECT_EQ(tracer.dropped_events(), 0u);

  const auto events = parse_trace(tracer.chrome_trace_json());
  ASSERT_EQ(events.size(), kThreads * kIterations * 2);

  std::map<std::uint32_t, std::vector<ParsedEvent>> by_tid;
  for (const auto& event : events) by_tid[event.tid].push_back(event);
  ASSERT_EQ(by_tid.size(), kThreads);

  for (const auto& [tid, tid_events] : by_tid) {
    // Each ring holds exactly one thread's spans — one worker prefix per tid.
    const std::string prefix = tid_events.front().name.substr(0, 2);
    for (const auto& event : tid_events) {
      EXPECT_EQ(event.name.substr(0, 2), prefix) << "tid=" << tid;
    }
    EXPECT_EQ(tid_events.size(), kIterations * 2);

    // Within a thread, spans are well-nested: any two either contain one
    // another or are disjoint. Partial overlap means a torn ring slot or
    // interleaved writers. (Timestamps survive the ns -> us conversion up
    // to rounding; 1e-3 us absorbs it.)
    constexpr double kTolUs = 1e-3;
    for (std::size_t i = 0; i < tid_events.size(); ++i) {
      for (std::size_t j = i + 1; j < tid_events.size(); ++j) {
        const auto& a = tid_events[i];
        const auto& b = tid_events[j];
        const bool a_contains_b = a.start_us <= b.start_us + kTolUs &&
                                  b.end_us <= a.end_us + kTolUs;
        const bool b_contains_a = b.start_us <= a.start_us + kTolUs &&
                                  a.end_us <= b.end_us + kTolUs;
        const bool disjoint = a.end_us <= b.start_us + kTolUs ||
                              b.end_us <= a.start_us + kTolUs;
        EXPECT_TRUE(a_contains_b || b_contains_a || disjoint)
            << "tid=" << tid << " " << a.name << " [" << a.start_us << ", "
            << a.end_us << ") overlaps " << b.name << " [" << b.start_us
            << ", " << b.end_us << ")";
      }
    }
  }
}

TEST_F(TracerTest, StageSpanTilesWithoutGapOrOverlap) {
  Tracer& tracer = Tracer::global();
  tracer.enable();
  {
    StageSpan stage("stage.a");
    stage.next("stage.b");
    stage.next("stage.c");
    stage.close();
    stage.close();  // idempotent: no fourth event
  }
  tracer.disable();

  auto events = parse_trace(tracer.chrome_trace_json());
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].name, "stage.a");
  EXPECT_EQ(events[1].name, "stage.b");
  EXPECT_EQ(events[2].name, "stage.c");
  // next() hands the closing timestamp straight to the opening span, so
  // consecutive stages tile exactly (up to the ns -> us export rounding).
  EXPECT_NEAR(events[0].end_us, events[1].start_us, 1e-3);
  EXPECT_NEAR(events[1].end_us, events[2].start_us, 1e-3);
}

// ------------------------------------------------------------ util bridges

TEST(PercentileOr, FallsBackOnlyOnEmptyInput) {
  const std::vector<double> empty;
  EXPECT_DOUBLE_EQ(util::percentile_or(empty, 50.0, -1.0), -1.0);
  const std::vector<double> values = {3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(util::percentile_or(values, 50.0, -1.0), 2.0);
  EXPECT_DOUBLE_EQ(util::percentile_or(values, 0.0, -1.0), 1.0);
  // Out-of-range p stays a loud programming error, even on empty input.
  EXPECT_THROW(util::percentile_or(empty, 101.0, 0.0), std::invalid_argument);
  EXPECT_THROW(util::percentile_or(values, -0.5, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace wagg::obs
