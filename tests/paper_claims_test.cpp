// Cross-module tests pinning the paper's claims (the executable versions of
// Theorems 1-4 and Propositions 1-3). Each test states the claim it checks.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "analysis/audit.h"
#include "core/planner.h"
#include "instance/basic.h"
#include "instance/lowerbound.h"
#include "instance/special.h"
#include "instance/zigzag.h"
#include "mst/tree.h"
#include "schedule/verify.h"
#include "sinr/interference.h"
#include "sinr/power.h"
#include "util/logmath.h"
#include "util/rng.h"

namespace wagg {
namespace {

sinr::SinrParams params(double alpha = 3.0, double beta = 1.0) {
  sinr::SinrParams p;
  p.alpha = alpha;
  p.beta = beta;
  return p;
}

// --- Lemma 1: MST sparsity I(i, T_i^+) = O(1) -------------------------------

class Lemma1OnFamilies
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(Lemma1OnFamilies, OutgoingInterferenceToLongerLinksBounded) {
  const auto [family, seed] = GetParam();
  geom::Pointset pts;
  switch (family) {
    case 0:
      pts = instance::uniform_square(250, 12.0, seed);
      break;
    case 1:
      pts = instance::clustered(10, 25, 200.0, 0.3, seed);
      break;
    case 2:
      pts = instance::exponential_chain(26, 1.4);
      break;
    case 3:
      pts = instance::grid(16, 16, 1.0);
      break;
    case 4:
      pts = instance::uniform_disk(250, 10.0, seed);
      break;
    default:
      FAIL();
  }
  const auto tree = mst::mst_tree(pts, 0);
  // The paper proves an absolute constant. Measured: ~6.7 for uniform
  // deployments, ~15.3 for grids (equal-length ties put every link in
  // T_i^+), flat in n. Assert family-appropriate ceilings.
  const double ceiling = family == 3 ? 18.0 : 10.0;
  EXPECT_LT(sinr::lemma1_statistic(tree.links, 3.0), ceiling);
  // Sanity-check the statistic itself is not vacuous.
  EXPECT_GT(sinr::lemma1_statistic(tree.links, 3.0), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Families, Lemma1OnFamilies,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                       ::testing::Values(2ULL, 6ULL)));

// --- Theorem 1 / Corollary 1: schedule lengths ------------------------------

TEST(Theorem1, GlobalPowerSchedulesRandomInstancesInFewSlots) {
  // Cor 1: O(log* n) slots with global power control, w.h.p. log*(4096) = 4;
  // with constants, anything below ~20 demonstrates "nearly constant".
  core::PlannerConfig cfg;
  cfg.power_mode = core::PowerMode::kGlobal;
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const auto pts = instance::uniform_square(512, 100.0, seed);
    const auto plan = core::plan_aggregation(pts, cfg);
    EXPECT_TRUE(plan.verified());
    EXPECT_LE(plan.schedule().length(), 20u) << "seed " << seed;
  }
}

TEST(Theorem1, ObliviousPowerWithinLogLogFactor) {
  core::PlannerConfig cfg;
  cfg.power_mode = core::PowerMode::kOblivious;
  cfg.tau = 0.5;
  for (std::uint64_t seed : {1ULL, 2ULL}) {
    const auto pts = instance::uniform_square(512, 100.0, seed);
    const auto plan = core::plan_aggregation(pts, cfg);
    EXPECT_TRUE(plan.verified());
    // log log Delta is ~4-5 here; allow generous constants.
    EXPECT_LE(plan.schedule().length(), 40u) << "seed " << seed;
  }
}

TEST(Theorem1, ExponentialChainGlobalBeatsUniformAsymptotically) {
  // On the exponential chain uniform power degenerates (Omega(n) slots)
  // while global power control stays polylog — the paper's headline gap.
  const std::size_t n = 48;
  const auto pts = instance::exponential_chain(n, 2.0);
  core::PlannerConfig uni;
  uni.power_mode = core::PowerMode::kUniform;
  core::PlannerConfig glob;
  glob.power_mode = core::PowerMode::kGlobal;
  const auto plan_uni = core::plan_aggregation(pts, uni);
  const auto plan_glob = core::plan_aggregation(pts, glob);
  ASSERT_TRUE(plan_uni.verified());
  ASSERT_TRUE(plan_glob.verified());
  // Uniform needs a constant fraction of n; global stays far below.
  EXPECT_GE(plan_uni.schedule().length(), n / 3);
  EXPECT_LE(plan_glob.schedule().length(), n / 3);
  EXPECT_LT(plan_glob.schedule().length() * 2,
            plan_uni.schedule().length());
}

// --- Proposition 1 / Fig 2: oblivious lower bound ---------------------------

class Prop1Taus : public ::testing::TestWithParam<double> {};

TEST_P(Prop1Taus, NoTwoLinksCofeasibleOnDoublyExponentialChain) {
  const double tau = GetParam();
  const auto prm = params(3.0, 1.0);
  const std::size_t n = std::min<std::size_t>(
      8, instance::max_doubly_exponential_size(tau, prm.alpha, prm.beta));
  const auto chain =
      instance::doubly_exponential_chain(n, tau, prm.alpha, prm.beta);
  const auto tree = mst::mst_tree(chain.points, 0);
  const auto power = sinr::oblivious_power(tree.links, tau, prm);
  const auto oracle = schedule::fixed_power_oracle(tree.links, prm, power);
  // The paper's Sec 4.1 argument: every pair of links on this pointset is
  // P_tau-infeasible, regardless of orientation. Our MST orients links one
  // way; check all pairs.
  EXPECT_EQ(analysis::count_cofeasible_pairs(tree.links, oracle), 0u);
  // Hence every aggregation schedule needs n-1 slots: rate Theta(1/loglogD).
  const auto bound = analysis::min_slots_lower_bound(tree.links, oracle);
  ASSERT_TRUE(bound.has_value());
  EXPECT_EQ(*bound, static_cast<int>(tree.links.size()));
  // And n-1 tracks loglog Delta.
  const double loglog = util::log2_log2_of_log2(chain.log2_delta);
  EXPECT_NEAR(static_cast<double>(n), loglog, 5.0);
}

INSTANTIATE_TEST_SUITE_P(Taus, Prop1Taus,
                         ::testing::Values(0.25, 0.4, 0.5, 0.6, 0.75));

TEST(Prop1, ReversedOrientationAlsoInfeasible) {
  const auto prm = params(3.0, 1.0);
  const auto chain = instance::doubly_exponential_chain(6, 0.5, 3.0, 1.0);
  // Orient all links right-to-left instead.
  std::vector<geom::Link> links;
  for (std::size_t i = 0; i + 1 < chain.points.size(); ++i) {
    links.push_back(geom::Link{static_cast<std::int32_t>(i + 1),
                               static_cast<std::int32_t>(i)});
  }
  const geom::LinkSet ls(chain.points, links);
  const auto power = sinr::oblivious_power(ls, 0.5, prm);
  const auto oracle = schedule::fixed_power_oracle(ls, prm, power);
  EXPECT_EQ(analysis::count_cofeasible_pairs(ls, oracle), 0u);
}

// --- Theorem 4 / Fig 3: MST lower bound under arbitrary power ---------------

TEST(Theorem4, RtNeedsMoreSlotsAsTGrows) {
  const auto prm = params(3.0, 1.0);
  core::PlannerConfig cfg;
  cfg.power_mode = core::PowerMode::kGlobal;
  cfg.sinr = prm;
  std::vector<std::size_t> lengths;
  for (int t = 1; t <= 3; ++t) {
    const auto rt = instance::recursive_rt(t, 4.0, 12, 4000);
    const auto plan = core::plan_aggregation(rt.points, cfg);
    ASSERT_TRUE(plan.verified());
    lengths.push_back(plan.schedule().length());
    // The exact lower bound for any coloring schedule is at least t on these
    // instances (pairwise infeasibility alone shows this for small t).
    if (rt.points.size() <= 14) {
      const auto oracle = schedule::power_control_oracle(plan.tree.links, prm);
      const auto bound =
          analysis::min_slots_lower_bound(plan.tree.links, oracle);
      ASSERT_TRUE(bound.has_value());
      EXPECT_GE(*bound, t);
    }
  }
  // Monotone growth with t.
  EXPECT_LT(lengths[0], lengths[2]);
}

TEST(Theorem4, DeltaGrowsTowerLikeSoTIsLogStar) {
  // log2 Delta(R_t) should grow at least geometrically in t, so that
  // t = O(log* Delta) with small constants.
  double prev = 0.0;
  for (int t = 2; t <= 4; ++t) {
    const auto rt = instance::recursive_rt(t, 4.0, 12, 100000);
    EXPECT_GT(rt.log2_delta, 1.5 * prev);
    prev = rt.log2_delta;
  }
}

// --- Claim 2 / Proposition 3 / Fig 4: MST sub-optimality --------------------

TEST(Claim2, ZigzagTwoSlotScheduleIsPtauFeasible) {
  const double tau = 0.3;
  const auto prm = params(3.0, 1.0);
  const auto inst = instance::zigzag_instance(4, tau, 32.0);
  const auto power = sinr::oblivious_power(inst.tree_links, tau, prm);
  // Claim 2: the long links form one feasible slot, the shorts another.
  EXPECT_TRUE(sinr::is_feasible(inst.tree_links, inst.long_links, prm, power));
  EXPECT_TRUE(sinr::is_feasible(inst.tree_links, inst.short_links, prm, power));
}

TEST(Claim2, HoldsForSmallerTauAndMirrored) {
  const auto prm = params(3.0, 1.0);
  for (double tau : {0.2, 0.25, 0.3}) {
    const auto inst = instance::zigzag_instance(3, tau, 64.0);
    const auto power = sinr::oblivious_power(inst.tree_links, tau, prm);
    EXPECT_TRUE(
        sinr::is_feasible(inst.tree_links, inst.long_links, prm, power))
        << tau;
    EXPECT_TRUE(
        sinr::is_feasible(inst.tree_links, inst.short_links, prm, power))
        << tau;
  }
  // Mirrored variant for tau >= 3/5 (here 0.7 mirrors 0.3).
  const auto mir = instance::zigzag_instance(3, 0.7, 64.0, true);
  const auto power = sinr::oblivious_power(mir.tree_links, 0.7, prm);
  EXPECT_TRUE(sinr::is_feasible(mir.tree_links, mir.long_links, prm, power));
  EXPECT_TRUE(sinr::is_feasible(mir.tree_links, mir.short_links, prm, power));
}

TEST(Claim2, ReproductionNoteTauPointFourShortSlotInfeasible) {
  // The paper claims tau in (0, 2/5]; numerically gamma(tau) < 0 already at
  // tau = 0.4 (threshold ~0.3403) and the short slot is infeasible for every
  // x we can represent. Pin this reproduction finding.
  EXPECT_LT(instance::zigzag_tau_threshold(), 0.4);
  const auto prm = params(3.0, 1.0);
  for (double x : {16.0, 64.0, 256.0}) {
    const auto inst = instance::zigzag_instance(4, 0.4, x);
    const auto power = sinr::oblivious_power(inst.tree_links, 0.4, prm);
    EXPECT_FALSE(
        sinr::is_feasible(inst.tree_links, inst.short_links, prm, power))
        << x;
  }
}

TEST(Prop3, MstOfZigzagPointsNeedsLinearSlots) {
  const double tau = 0.3;
  const auto prm = params(3.0, 1.0);
  const auto inst = instance::zigzag_instance(4, tau, 32.0);
  const auto mst_links = mst::mst_tree(inst.points, inst.sink).links;
  const auto power = sinr::oblivious_power(mst_links, tau, prm);
  const auto oracle = schedule::fixed_power_oracle(mst_links, prm, power);
  // The MST contains the doubly-exponential gap chain: no two links
  // cofeasible under P_tau.
  EXPECT_EQ(analysis::count_cofeasible_pairs(mst_links, oracle), 0u);
  const auto bound = analysis::min_slots_lower_bound(mst_links, oracle);
  ASSERT_TRUE(bound.has_value());
  EXPECT_EQ(*bound, static_cast<int>(mst_links.size()));
  // Meanwhile the zigzag tree needs only 2 slots (Claim2 tests above):
  // a Theta(n) separation between MST and the best spanning tree.
  EXPECT_GE(*bound, 7);
}

// --- Proposition 2: MST is optimal on the line for P_0 / P_1 ----------------

TEST(Prop2, LineMstSlotsNeverWorseThanRandomTreesUnderUniformPower) {
  // Compare the MST against random alternative spanning trees on random
  // line instances: with P_0 the MST schedule (after repair, i.e. exact)
  // should be within a constant factor — here we check it is simply no
  // longer than any sampled alternative.
  util::Rng rng(5);
  const auto prm = params(3.0, 3.0);
  core::PlannerConfig cfg;
  cfg.power_mode = core::PowerMode::kUniform;
  cfg.sinr = prm;
  for (int trial = 0; trial < 4; ++trial) {
    const auto pts = instance::uniform_line(12, 100.0, 100 + trial);
    const auto mst_plan = core::plan_aggregation(pts, cfg);
    ASSERT_TRUE(mst_plan.verified());
    // Random spanning tree: random parent among later-sorted nodes.
    std::vector<std::size_t> order(pts.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return pts[a].x < pts[b].x;
    });
    std::vector<mst::Edge> edges;
    for (std::size_t i = 1; i < order.size(); ++i) {
      const std::size_t parent = rng.below(i);
      edges.push_back(mst::Edge{static_cast<std::int32_t>(order[parent]),
                                static_cast<std::int32_t>(order[i])});
    }
    const auto alt_tree = mst::orient_toward_sink(
        pts, edges, static_cast<std::int32_t>(order[0]));
    const auto alt = core::schedule_links(alt_tree.links, cfg);
    EXPECT_TRUE(alt.verification.ok());
    EXPECT_LE(mst_plan.schedule().length(), alt.schedule.length())
        << "trial " << trial;
  }
}

// --- Fig 1: worked example held by the scheduler itself ---------------------

TEST(Fig1, BothSlotsFeasibleUnderUniformPower) {
  const auto inst = instance::fig1_instance();
  const auto prm = params(3.0, 2.0);
  const auto power = sinr::uniform_power(inst.tree, prm);
  for (const auto& slot : inst.slots) {
    EXPECT_TRUE(sinr::is_feasible(inst.tree, slot, prm, power));
  }
  // And the two-slot schedule verifies end to end.
  schedule::Schedule s;
  s.slots = inst.slots;
  const auto oracle = schedule::fixed_power_oracle(inst.tree, prm, power);
  EXPECT_TRUE(schedule::verify_schedule(inst.tree, s, oracle).ok());
}

// --- Remark 2: k-fold MST keeps the sparsity statistic moderate -------------

TEST(Remark2, KFoldMstLemma1StatGrowsSlowly) {
  const auto pts = instance::uniform_square(120, 10.0, 3);
  const auto one = mst::k_fold_mst(pts, 1);
  const auto three = mst::k_fold_mst(pts, 3);
  auto to_links = [&](const std::vector<mst::Edge>& edges) {
    std::vector<geom::Link> links;
    for (const auto& e : edges) links.push_back(geom::Link{e.u, e.v});
    return geom::LinkSet(pts, links);
  };
  const double stat1 = sinr::lemma1_statistic(to_links(one), 3.0);
  const double stat3 = sinr::lemma1_statistic(to_links(three), 3.0);
  EXPECT_LT(stat1, 8.0);
  // k-connected structures pay more interference but stay bounded.
  EXPECT_LT(stat3, 60.0);
  EXPECT_GE(stat3, stat1 * 0.9);
}

}  // namespace
}  // namespace wagg
