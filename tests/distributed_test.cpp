#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "conflict/fgraph.h"
#include "distributed/distributed.h"
#include "instance/basic.h"
#include "mst/tree.h"

namespace wagg::distributed {
namespace {

DistributedConfig config(std::uint64_t seed = 1) {
  DistributedConfig cfg;
  cfg.seed = seed;
  cfg.spec = conflict::ConflictSpec::constant(2.0);
  return cfg;
}

TEST(Distributed, ProducesProperColoring) {
  const auto pts = instance::uniform_square(120, 8.0, 3);
  const auto tree = mst::mst_tree(pts, 0);
  const auto result = distributed_schedule(tree.links, config());
  EXPECT_TRUE(result.proper);
  EXPECT_GT(result.schedule_length(), 0u);
  EXPECT_EQ(result.coloring.color_of.size(), tree.links.size());
}

TEST(Distributed, DeterministicGivenSeed) {
  const auto pts = instance::uniform_square(60, 6.0, 5);
  const auto tree = mst::mst_tree(pts, 0);
  const auto a = distributed_schedule(tree.links, config(7));
  const auto b = distributed_schedule(tree.links, config(7));
  EXPECT_EQ(a.coloring.color_of, b.coloring.color_of);
  EXPECT_EQ(a.total_rounds, b.total_rounds);
}

TEST(Distributed, PhasesFollowLengthClasses) {
  // Exponential chain: every link in its own length class.
  const auto pts = instance::exponential_chain(10, 2.0);
  const auto tree = mst::mst_tree(pts, 0);
  const auto result = distributed_schedule(tree.links, config());
  EXPECT_EQ(result.num_phases, 9);
  // Phases are ordered longest class first.
  for (std::size_t i = 0; i + 1 < result.phases.size(); ++i) {
    EXPECT_GT(result.phases[i].length_class,
              result.phases[i + 1].length_class);
  }
  // Every phase here has exactly one link and needs exactly one round.
  for (const auto& phase : result.phases) {
    EXPECT_EQ(phase.links, 1u);
    EXPECT_EQ(phase.coloring_rounds, 1u);
  }
}

TEST(Distributed, ColoringQualityComparableToCentralized) {
  const auto pts = instance::uniform_square(150, 10.0, 9);
  const auto tree = mst::mst_tree(pts, 0);
  const auto cfg = config(11);
  const auto result = distributed_schedule(tree.links, cfg);
  const auto graph = conflict::build_conflict_graph(tree.links, cfg.spec);
  const auto central =
      coloring::greedy_color(graph, tree.links.by_decreasing_length());
  // Randomized distributed coloring wastes at most a small factor.
  EXPECT_LE(result.schedule_length(),
            3 * static_cast<std::size_t>(central.num_colors) + 3);
}

TEST(Distributed, BroadcastCostModelScalesWithColorsAndLogN) {
  const auto pts = instance::uniform_square(100, 8.0, 13);
  const auto tree = mst::mst_tree(pts, 0);
  auto cfg = config();
  const auto result = distributed_schedule(tree.links, cfg);
  const double log_n =
      std::max(1.0, std::log2(static_cast<double>(pts.size())));
  for (const auto& phase : result.phases) {
    EXPECT_GE(phase.broadcast_rounds,
              static_cast<std::size_t>(log_n * log_n));
  }
  // Total adds up.
  std::size_t sum = 0;
  for (const auto& phase : result.phases) {
    sum += phase.coloring_rounds + phase.broadcast_rounds;
  }
  EXPECT_EQ(sum, result.total_rounds);
}

TEST(Distributed, Validation) {
  geom::Pointset pts{{0, 0}, {1, 0}};
  const geom::LinkSet empty(pts, {});
  EXPECT_THROW(distributed_schedule(empty, config()), std::invalid_argument);
}

}  // namespace
}  // namespace wagg::distributed
