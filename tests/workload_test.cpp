#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/planner.h"
#include "geom/point.h"
#include "instance/extended.h"
#include "workload/workload.h"

namespace wagg::workload {
namespace {

TEST(FamilyRegistry, BuiltinNamesCoverLegacyAndNewFamilies) {
  const auto names = FamilyRegistry::builtin().names();
  for (const std::string expected :
       {"uniform", "cluster", "grid", "expchain", "unitchain", "annulus",
        "twotier", "noisygrid"}) {
    EXPECT_TRUE(std::count(names.begin(), names.end(), expected))
        << "missing family " << expected;
  }
}

TEST(FamilyRegistry, UnknownFamilyThrows) {
  EXPECT_THROW((void)FamilyRegistry::builtin().make("nope", 16, 1),
               std::invalid_argument);
}

TEST(FamilyRegistry, GenerationIsDeterministic) {
  const auto& registry = FamilyRegistry::global();
  for (const auto& name : registry.names()) {
    const auto a = registry.make(name, 64, 7);
    const auto b = registry.make(name, 64, 7);
    EXPECT_EQ(a, b) << "family " << name;
  }
}

TEST(Instance, AnnulusRespectsRadii) {
  const auto points = instance::annulus(200, 3.0, 9.0, 11);
  ASSERT_EQ(points.size(), 200u);
  for (const auto& p : points) {
    const double r = std::hypot(p.x, p.y);
    EXPECT_GE(r, 3.0 - 1e-12);
    EXPECT_LE(r, 9.0 + 1e-12);
  }
  EXPECT_THROW((void)instance::annulus(10, 5.0, 5.0, 1),
               std::invalid_argument);
}

TEST(Instance, TwoTierSplitsScales) {
  const auto points = instance::two_tier(50, 50, 2.0, 16.0, 3);
  ASSERT_EQ(points.size(), 100u);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_LE(std::hypot(points[i].x, points[i].y), 2.0 + 1e-12);
  }
  for (std::size_t i = 50; i < 100; ++i) {
    const double r = std::hypot(points[i].x, points[i].y);
    EXPECT_GE(r, 2.0 - 1e-12);
    EXPECT_LE(r, 16.0 + 1e-12);
  }
}

TEST(WorkloadSpec, ParsesFullGrammar) {
  const auto spec = WorkloadSpec::parse(
      "name=demo  # trailing comment\n"
      "families=uniform,annulus\n"
      "sizes=32,64..256x2\n"
      "modes=global,oblivious\n"
      "reps=3 seed=9 alpha=3.5 beta=2\n");
  EXPECT_EQ(spec.name, "demo");
  EXPECT_EQ(spec.families, (std::vector<std::string>{"uniform", "annulus"}));
  EXPECT_EQ(spec.sizes, (std::vector<std::size_t>{32, 64, 128, 256}));
  ASSERT_EQ(spec.modes.size(), 2u);
  EXPECT_EQ(spec.modes[0], core::PowerMode::kGlobal);
  EXPECT_EQ(spec.modes[1], core::PowerMode::kOblivious);
  EXPECT_EQ(spec.replications, 3u);
  EXPECT_EQ(spec.base_seed, 9u);
  EXPECT_DOUBLE_EQ(spec.alpha, 3.5);
  EXPECT_DOUBLE_EQ(spec.beta, 2.0);
  EXPECT_EQ(spec.num_requests(), 2u * 4u * 2u * 3u);
}

TEST(WorkloadSpec, RoundTripsThroughText) {
  const auto spec = WorkloadSpec::parse(
      "name=rt families=grid,twotier sizes=16..64x2 modes=uniform reps=2 "
      "seed=5 alpha=2.7182818284590452");
  const auto reparsed = WorkloadSpec::parse(spec.to_text());
  EXPECT_EQ(spec, reparsed);
}

TEST(WorkloadSpec, RejectsMalformedInput) {
  EXPECT_THROW((void)WorkloadSpec::parse("bogus"), std::invalid_argument);
  EXPECT_THROW((void)WorkloadSpec::parse("frobnicate=1"),
               std::invalid_argument);
  EXPECT_THROW((void)WorkloadSpec::parse("sizes=abc"), std::invalid_argument);
  EXPECT_THROW((void)WorkloadSpec::parse("modes=warp"), std::invalid_argument);
  // stoull would silently wrap negative values; the parser must reject them.
  EXPECT_THROW((void)WorkloadSpec::parse("sizes=-8"), std::invalid_argument);
  EXPECT_THROW((void)WorkloadSpec::parse("seed=-1"), std::invalid_argument);
  EXPECT_THROW((void)WorkloadSpec::parse("sizes=1..-1x2"),
               std::invalid_argument);
  EXPECT_THROW((void)WorkloadSpec::parse("sizes=64..32x2 families=uniform "
                                         "modes=global")
                   .expand(),
               std::invalid_argument);
  // Unknown family is caught at expansion time.
  EXPECT_THROW(
      (void)WorkloadSpec::parse("families=nope sizes=16 modes=global")
          .expand(),
      std::invalid_argument);
}

TEST(WorkloadSpec, ParsesChurnGrammar) {
  const auto spec = WorkloadSpec::parse(
      "families=uniform sizes=32 modes=global "
      "churn=epochs:25,rate:0.07,add:2,remove:1,move:3,sigma:0.5,audit:1");
  EXPECT_EQ(spec.churn.epochs, 25u);
  EXPECT_DOUBLE_EQ(spec.churn.rate, 0.07);
  EXPECT_DOUBLE_EQ(spec.churn.add_weight, 2.0);
  EXPECT_DOUBLE_EQ(spec.churn.remove_weight, 1.0);
  EXPECT_DOUBLE_EQ(spec.churn.move_weight, 3.0);
  EXPECT_DOUBLE_EQ(spec.churn.drift_sigma, 0.5);
  EXPECT_TRUE(spec.churn_audit);

  // Defaults: no churn key -> static workload.
  const auto plain =
      WorkloadSpec::parse("families=uniform sizes=32 modes=global");
  EXPECT_EQ(plain.churn.epochs, 0u);
  EXPECT_FALSE(plain.churn_audit);
}

TEST(WorkloadSpec, ParsesGrowShrinkChurnKeys) {
  const auto spec = WorkloadSpec::parse(
      "families=uniform sizes=32 modes=global "
      "churn=epochs:10,rate:0.02,grow:0.015,shrink:0.01");
  EXPECT_DOUBLE_EQ(spec.churn.grow_rate, 0.015);
  EXPECT_DOUBLE_EQ(spec.churn.shrink_rate, 0.01);
  EXPECT_EQ(spec, WorkloadSpec::parse(spec.to_text()));

  // Negative rates are rejected by validation at expansion time.
  EXPECT_THROW((void)WorkloadSpec::parse("families=uniform sizes=16 "
                                         "modes=global "
                                         "churn=epochs:3,grow:-0.5")
                   .expand(),
               std::invalid_argument);
  EXPECT_THROW((void)WorkloadSpec::parse("families=uniform sizes=16 "
                                         "modes=global "
                                         "churn=epochs:3,shrink:-1")
                   .expand(),
               std::invalid_argument);
}

TEST(WorkloadSpec, GrowChurnExpandsGrowingTraces) {
  const auto requests = WorkloadSpec::parse(
                            "families=uniform sizes=32 modes=global seed=4 "
                            "churn=epochs:6,rate:0.03,grow:0.1")
                            .expand();
  ASSERT_EQ(requests.size(), 1u);
  std::ptrdiff_t net = 0;
  for (const auto& epoch : requests[0].trace) {
    for (const auto& m : epoch) {
      if (m.kind == dynamic::Mutation::Kind::kAdd) ++net;
      if (m.kind == dynamic::Mutation::Kind::kRemove) --net;
    }
  }
  EXPECT_GT(net, 0);
}

TEST(WorkloadSpec, ChurnRoundTripsThroughText) {
  const auto spec = WorkloadSpec::parse(
      "families=uniform sizes=24 modes=uniform "
      "churn=epochs:7,rate:0.03,add:1,remove:2,move:1");
  const auto reparsed = WorkloadSpec::parse(spec.to_text());
  EXPECT_EQ(spec, reparsed);
}

TEST(WorkloadSpec, RejectsMalformedChurn) {
  EXPECT_THROW((void)WorkloadSpec::parse("churn=epochs"),
               std::invalid_argument);
  EXPECT_THROW((void)WorkloadSpec::parse("churn=bogus:1"),
               std::invalid_argument);
  EXPECT_THROW((void)WorkloadSpec::parse("churn=rate:x"),
               std::invalid_argument);
  // epochs is required: a churn key without it must not silently produce a
  // static workload.
  EXPECT_THROW((void)WorkloadSpec::parse("churn=rate:0.1,audit:1"),
               std::invalid_argument);
  // Negative sigma must not be silently reinterpreted as the auto default.
  EXPECT_THROW((void)WorkloadSpec::parse("families=uniform sizes=16 "
                                         "modes=global "
                                         "churn=epochs:3,sigma:-5")
                   .expand(),
               std::invalid_argument);
  // Zero-rate churn is caught by validation at expansion time.
  EXPECT_THROW((void)WorkloadSpec::parse("families=uniform sizes=16 "
                                         "modes=global churn=epochs:3,rate:0")
                   .expand(),
               std::invalid_argument);
}

TEST(WorkloadSpec, ChurnExpandsIntoDeterministicTraces) {
  const std::string text =
      "families=uniform sizes=32 modes=global reps=2 seed=3 "
      "churn=epochs:5,rate:0.1";
  const auto a = WorkloadSpec::parse(text).expand();
  const auto b = WorkloadSpec::parse(text).expand();
  ASSERT_EQ(a.size(), 2u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].trace.size(), 5u);
    EXPECT_EQ(a[i].trace, b[i].trace);
    EXPECT_FALSE(a[i].audit);
    EXPECT_NE(a[i].tags.find("epochs=5"), std::string::npos);
  }
  // Different reps get different traces (cell-seeded).
  EXPECT_NE(a[0].trace, a[1].trace);
}

TEST(WorkloadSpec, GeometricSweepNearOverflowTerminates) {
  // The sweep loop must stop instead of wrapping n past 2^64.
  const auto spec = WorkloadSpec::parse(
      "sizes=3..18446744073709551615x3");  // hi = 2^64 - 1
  EXPECT_FALSE(spec.sizes.empty());
  EXPECT_EQ(spec.sizes.front(), 3u);
  for (std::size_t i = 1; i < spec.sizes.size(); ++i) {
    EXPECT_EQ(spec.sizes[i], spec.sizes[i - 1] * 3);
  }
}

TEST(WorkloadSpec, ExpansionIsDeterministic) {
  const std::string text =
      "families=uniform,noisygrid sizes=32,64 modes=global,uniform reps=2 "
      "seed=77";
  const auto a = WorkloadSpec::parse(text).expand();
  const auto b = WorkloadSpec::parse(text).expand();
  ASSERT_EQ(a.size(), 2u * 2u * 2u * 2u);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].seed, b[i].seed);
    EXPECT_EQ(a[i].tags, b[i].tags);
    EXPECT_EQ(a[i].points, b[i].points);
    EXPECT_EQ(a[i].config.power_mode, b[i].config.power_mode);
  }
}

TEST(WorkloadSpec, CellSeedsIndependentOfSpecShape) {
  // Adding a family must not change any other cell's seed (or points).
  const auto narrow =
      WorkloadSpec::parse("families=uniform sizes=32 modes=global reps=2");
  const auto wide = WorkloadSpec::parse(
      "families=annulus,uniform sizes=32 modes=global reps=2");
  const auto narrow_requests = narrow.expand();
  const auto wide_requests = wide.expand();
  ASSERT_EQ(narrow_requests.size(), 2u);
  ASSERT_EQ(wide_requests.size(), 4u);
  // uniform cells sit after the annulus cells in the wide expansion.
  for (std::size_t rep = 0; rep < 2; ++rep) {
    EXPECT_EQ(narrow_requests[rep].seed, wide_requests[2 + rep].seed);
    EXPECT_EQ(narrow_requests[rep].points, wide_requests[2 + rep].points);
  }
  // Replications within a cell get distinct seeds.
  EXPECT_NE(narrow_requests[0].seed, narrow_requests[1].seed);
}

TEST(WorkloadSpec, ExpandSetsConfigAndTags) {
  const auto requests = WorkloadSpec::parse(
                            "families=grid sizes=16 modes=oblivious "
                            "alpha=4 beta=1.5")
                            .expand();
  ASSERT_EQ(requests.size(), 1u);
  EXPECT_EQ(requests[0].config.power_mode, core::PowerMode::kOblivious);
  EXPECT_DOUBLE_EQ(requests[0].config.sinr.alpha, 4.0);
  EXPECT_DOUBLE_EQ(requests[0].config.sinr.beta, 1.5);
  EXPECT_EQ(requests[0].tags, "family=grid n=16 mode=oblivious rep=0");
}

TEST(WorkloadSpec, ParsesServingKeys) {
  const auto spec = WorkloadSpec::parse(
      "families=uniform sizes=64 modes=oblivious "
      "churn=epochs:4,rate:0.05 sessions=500 epoch_rate=2.5");
  EXPECT_EQ(spec.sessions, 500u);
  EXPECT_DOUBLE_EQ(spec.epoch_rate, 2.5);
  EXPECT_EQ(spec.num_requests(), 500u);
  const auto reparsed = WorkloadSpec::parse(spec.to_text());
  EXPECT_EQ(spec, reparsed);
  // The serving keys only appear in the rendering when set, so legacy specs
  // render (and hash) unchanged.
  EXPECT_EQ(WorkloadSpec::parse("families=uniform sizes=64 modes=global")
                .to_text()
                .find("sessions="),
            std::string::npos);
  // Range checks live in validate(), which expand() always runs.
  EXPECT_THROW((void)WorkloadSpec::parse(
                   "families=uniform sizes=16 modes=global sessions=0")
                   .expand(),
               std::invalid_argument);
  EXPECT_THROW((void)WorkloadSpec::parse(
                   "families=uniform sizes=16 modes=global epoch_rate=-1")
                   .expand(),
               std::invalid_argument);
}

TEST(WorkloadSpec, SingleSessionMatchesLegacySeedStream) {
  // sessions=1 (the default) must reproduce the legacy expansion byte for
  // byte: same seeds, same points, same tags.
  const std::string base =
      "families=uniform sizes=32 modes=oblivious reps=3 seed=19 "
      "churn=epochs:3,rate:0.05";
  const auto legacy = WorkloadSpec::parse(base).expand();
  const auto serving = WorkloadSpec::parse(base + " sessions=1").expand();
  ASSERT_EQ(legacy.size(), serving.size());
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(legacy[i].seed, serving[i].seed);
    EXPECT_EQ(legacy[i].tags, serving[i].tags);
    EXPECT_EQ(legacy[i].points, serving[i].points);
    EXPECT_EQ(legacy[i].trace, serving[i].trace);
  }
}

TEST(WorkloadSpec, SessionsExpandDistinctSeededRequests) {
  const auto requests = WorkloadSpec::parse(
                            "families=uniform sizes=32 modes=oblivious "
                            "reps=2 seed=7 churn=epochs:2,rate:0.05 "
                            "sessions=3")
                            .expand();
  ASSERT_EQ(requests.size(), 6u);
  // Every (rep, session) cell gets its own seed, instance, and trace; tags
  // carry the session coordinate.
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(requests[i].tags,
              "family=uniform n=32 mode=oblivious rep=" +
                  std::to_string(i / 3) + " session=" + std::to_string(i % 3) +
                  " epochs=2");
    for (std::size_t j = i + 1; j < requests.size(); ++j) {
      EXPECT_NE(requests[i].seed, requests[j].seed);
    }
  }
  // Session 0 of rep r folds to the same coordinate legacy rep 3r used —
  // the fold is rep * sessions + s by construction.
  EXPECT_EQ(requests[0].seed, cell_seed(7, "uniform", 32,
                                        core::PowerMode::kOblivious, 0));
  EXPECT_EQ(requests[4].seed, cell_seed(7, "uniform", 32,
                                        core::PowerMode::kOblivious, 4));
}

// One smoke plan per new instance family: the full paper pipeline must
// produce a verified schedule on each.
TEST(WorkloadSmoke, NewFamiliesPlanAndVerify) {
  for (const std::string family : {"annulus", "twotier", "noisygrid"}) {
    const auto points = FamilyRegistry::global().make(family, 48, 5);
    ASSERT_GE(points.size(), 2u) << family;
    const auto plan = core::plan_aggregation(
        points, mode_config(core::PowerMode::kGlobal));
    EXPECT_TRUE(plan.verified()) << family;
    EXPECT_GT(plan.rate(), 0.0) << family;
  }
}

}  // namespace
}  // namespace wagg::workload
