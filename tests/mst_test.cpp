#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>
#include <set>
#include <tuple>
#include <vector>

#include "geom/point.h"
#include "instance/basic.h"
#include "mst/dtree.h"
#include "mst/mst.h"
#include "mst/point_grid.h"
#include "mst/tree.h"
#include "util/rng.h"

namespace wagg::mst {
namespace {

TEST(UnionFind, MergesAndCounts) {
  UnionFind uf(4);
  EXPECT_EQ(uf.num_components(), 4u);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_FALSE(uf.unite(1, 0));
  EXPECT_TRUE(uf.unite(2, 3));
  EXPECT_EQ(uf.num_components(), 2u);
  EXPECT_TRUE(uf.unite(0, 3));
  EXPECT_EQ(uf.find(1), uf.find(2));
  EXPECT_EQ(uf.num_components(), 1u);
}

TEST(Mst, TwoPoints) {
  const geom::Pointset pts{{0, 0}, {1, 1}};
  const auto edges = euclidean_mst(pts);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_TRUE(is_spanning_tree(2, edges));
}

TEST(Mst, MatchesKruskalWeightOnRandomInstances) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto pts = instance::uniform_square(60, 10.0, seed);
    const auto prim = euclidean_mst(pts);
    const auto kruskal = kruskal_mst(pts);
    EXPECT_TRUE(is_spanning_tree(pts.size(), prim));
    EXPECT_TRUE(is_spanning_tree(pts.size(), kruskal));
    EXPECT_NEAR(total_weight(pts, prim), total_weight(pts, kruskal), 1e-9)
        << "seed " << seed;
  }
}

TEST(Mst, LineMstIsAdjacentPairs) {
  const auto pts = geom::line_pointset({5.0, 1.0, 3.0, 0.0});
  const auto edges = line_mst(pts);
  ASSERT_EQ(edges.size(), 3u);
  // Edges connect sorted neighbours: (3,1), (1,2), (2,0) by index.
  const auto weight = total_weight(pts, edges);
  EXPECT_DOUBLE_EQ(weight, 5.0);
  EXPECT_TRUE(is_spanning_tree(4, edges));
}

TEST(Mst, LineMstMatchesEuclideanOnLine) {
  const auto pts = instance::exponential_chain(12, 1.7);
  EXPECT_NEAR(total_weight(pts, line_mst(pts)),
              total_weight(pts, euclidean_mst(pts)), 1e-9);
}

TEST(Mst, LineMstRejectsPlanarInput) {
  EXPECT_THROW(line_mst({{0, 0}, {1, 1}}), std::invalid_argument);
}

TEST(Mst, GridMstWeightIsMinimal) {
  // 3x3 unit grid: MST weight = 8 (all unit edges).
  const auto pts = instance::grid(3, 3, 1.0);
  EXPECT_NEAR(total_weight(pts, euclidean_mst(pts)), 8.0, 1e-12);
}

TEST(Mst, KFoldProducesMoreEdges) {
  const auto pts = instance::uniform_square(30, 10.0, 5);
  const auto one = k_fold_mst(pts, 1);
  const auto two = k_fold_mst(pts, 2);
  EXPECT_EQ(one.size(), pts.size() - 1);
  EXPECT_EQ(two.size(), 2 * (pts.size() - 1));
  // Rounds are edge-disjoint.
  std::set<std::pair<int, int>> seen;
  for (const auto& e : two) {
    const auto key = std::minmax(e.u, e.v);
    EXPECT_TRUE(seen.emplace(key.first, key.second).second);
  }
  // First round equals the plain MST weight.
  EXPECT_NEAR(total_weight(pts, one),
              total_weight(pts, kruskal_mst(pts)), 1e-9);
}

TEST(Mst, IsSpanningTreeRejectsCyclesAndForests) {
  EXPECT_FALSE(is_spanning_tree(3, std::vector<Edge>{{0, 1}, {0, 1}}));  // dup
  EXPECT_FALSE(is_spanning_tree(4, std::vector<Edge>{{0, 1}, {2, 3}}));  // cnt
  std::vector<Edge> cycle{{0, 1}, {1, 2}, {2, 0}};
  EXPECT_FALSE(is_spanning_tree(4, cycle));
  std::vector<Edge> tree{{0, 1}, {1, 2}, {2, 3}};
  EXPECT_TRUE(is_spanning_tree(4, tree));
}

TEST(Mst, Validation) {
  EXPECT_THROW(euclidean_mst({{0, 0}}), std::invalid_argument);
  EXPECT_THROW(k_fold_mst({{0, 0}, {1, 0}}, 0), std::invalid_argument);
}

TEST(DynamicTree, BasicLinkCutPathMax) {
  DynamicTree dt;
  dt.ensure_vertices(4);
  EXPECT_FALSE(dt.connected(0, 3));
  const auto e01 = dt.link(0, 1, 4.0);
  const auto e12 = dt.link(1, 2, 9.0);
  const auto e23 = dt.link(2, 3, 1.0);
  EXPECT_EQ(dt.num_edges(), 3u);
  EXPECT_TRUE(dt.connected(0, 3));
  EXPECT_EQ(dt.path_max(0, 3), e12);
  EXPECT_EQ(dt.path_max(0, 1), e01);
  EXPECT_EQ(dt.path_max(2, 3), e23);
  dt.cut(e12);
  EXPECT_FALSE(dt.connected(0, 3));
  EXPECT_TRUE(dt.connected(0, 1));
  EXPECT_TRUE(dt.connected(2, 3));
  // Relinking across the cut reroutes the path.
  const auto e03 = dt.link(0, 3, 25.0);
  EXPECT_EQ(dt.path_max(1, 2), e03);
}

TEST(DynamicTree, PathMaxBreaksWeightTiesByEndpoints) {
  DynamicTree dt;
  dt.ensure_vertices(3);
  const auto e01 = dt.link(0, 1, 1.0);
  const auto e12 = dt.link(1, 2, 1.0);
  // Equal weights: the maximum under (w2, a, b) is the larger pair.
  EXPECT_EQ(dt.path_max(0, 2), e12);
  EXPECT_NE(dt.path_max(0, 1), e12);
  EXPECT_EQ(dt.path_max(0, 1), e01);
}

TEST(DynamicTree, RejectsCyclesSelfLoopsAndDeadHandles) {
  DynamicTree dt;
  dt.ensure_vertices(3);
  const auto e01 = dt.link(0, 1, 1.0);
  (void)dt.link(1, 2, 2.0);
  EXPECT_THROW((void)dt.link(0, 2, 3.0), std::logic_error);       // cycle
  EXPECT_THROW((void)dt.link(1, 1, 1.0), std::invalid_argument);  // loop
  EXPECT_THROW((void)dt.connected(0, 9), std::invalid_argument);
  EXPECT_THROW((void)dt.path_max(0, 0), std::invalid_argument);
  dt.cut(e01);
  EXPECT_THROW(dt.cut(e01), std::invalid_argument);  // already dead
  EXPECT_THROW((void)dt.path_max(0, 2), std::invalid_argument);  // split
}

/// The tentpole acceptance harness: randomized link/cut churn with every
/// path_max and connected answer checked against brute-force path scans
/// over an explicitly maintained edge list.
TEST(DynamicTree, RandomizedLinkCutMatchesBruteForce) {
  constexpr std::int32_t kN = 40;
  struct BruteEdge {
    std::int32_t a = -1;
    std::int32_t b = -1;
    double w2 = 0.0;
  };
  for (const std::uint64_t seed : {11ULL, 22ULL, 33ULL}) {
    DynamicTree dt;
    dt.ensure_vertices(kN);
    util::Rng rng(seed);
    std::map<EdgeHandle, BruteEdge> live;

    // Brute-force reference: the handle sequence of the a..b path, or
    // nullopt when disconnected (BFS over the live edge list).
    const auto brute_path =
        [&](std::int32_t from,
            std::int32_t to) -> std::optional<std::vector<EdgeHandle>> {
      std::vector<std::vector<std::pair<std::int32_t, EdgeHandle>>> adj(kN);
      for (const auto& [handle, e] : live) {
        adj[static_cast<std::size_t>(e.a)].emplace_back(e.b, handle);
        adj[static_cast<std::size_t>(e.b)].emplace_back(e.a, handle);
      }
      std::vector<std::int32_t> parent(kN, -1);
      std::vector<EdgeHandle> via(kN, kNoEdgeHandle);
      parent[static_cast<std::size_t>(from)] = from;
      std::vector<std::int32_t> frontier{from};
      for (std::size_t head = 0; head < frontier.size(); ++head) {
        const auto v = frontier[head];
        for (const auto& [w, handle] : adj[static_cast<std::size_t>(v)]) {
          if (parent[static_cast<std::size_t>(w)] >= 0) continue;
          parent[static_cast<std::size_t>(w)] = v;
          via[static_cast<std::size_t>(w)] = handle;
          frontier.push_back(w);
        }
      }
      if (parent[static_cast<std::size_t>(to)] < 0) return std::nullopt;
      std::vector<EdgeHandle> path;
      for (std::int32_t v = to; v != from;
           v = parent[static_cast<std::size_t>(v)]) {
        path.push_back(via[static_cast<std::size_t>(v)]);
      }
      return path;
    };

    for (int step = 0; step < 400; ++step) {
      // Mutate: link a random disconnected pair, else cut a random edge.
      const auto a = static_cast<std::int32_t>(rng.below(kN));
      const auto b = static_cast<std::int32_t>(rng.below(kN));
      if (a != b && !brute_path(a, b).has_value()) {
        // A 30% chance of weight 1.0 forces duplicate-weight ties through
        // the (w2, a, b) ordering.
        const double w2 = rng.chance(0.3) ? 1.0 : rng.uniform(0.0, 4.0);
        const auto handle = dt.link(a, b, w2);
        live.emplace(handle,
                     BruteEdge{std::min(a, b), std::max(a, b), w2});
      } else if (!live.empty()) {
        auto it = live.begin();
        std::advance(it, static_cast<std::ptrdiff_t>(
                             rng.below(live.size())));
        dt.cut(it->first);
        live.erase(it);
      }

      // Verify: connectivity and path_max of random probes after EVERY op.
      for (int probe = 0; probe < 6; ++probe) {
        const auto x = static_cast<std::int32_t>(rng.below(kN));
        const auto y = static_cast<std::int32_t>(rng.below(kN));
        const auto path = brute_path(x, y);
        ASSERT_EQ(dt.connected(x, y), path.has_value())
            << "seed " << seed << " step " << step;
        if (x == y || !path.has_value() || path->empty()) continue;
        std::tuple<double, std::int32_t, std::int32_t> expected{-1.0, -1,
                                                                -1};
        for (const auto handle : *path) {
          const auto& e = live.at(handle);
          expected = std::max(expected, std::tuple{e.w2, e.a, e.b});
        }
        const auto got = dt.path_max(x, y);
        EXPECT_EQ((std::tuple{dt.weight2(got), dt.edge_a(got),
                              dt.edge_b(got)}),
                  expected)
            << "seed " << seed << " step " << step;
      }
    }
  }
}

TEST(PointGrid, NearestAndConeQueriesAreExact) {
  detail::PointGrid grid;
  grid.reset(1.0);
  util::Rng rng(7);
  std::vector<geom::Point> pts;
  for (std::int32_t id = 0; id < 80; ++id) {
    pts.push_back({rng.uniform(0.0, 9.0), rng.uniform(0.0, 9.0)});
    grid.insert(id, pts.back());
  }
  const auto none = [](std::int32_t) { return false; };
  for (int probe = 0; probe < 40; ++probe) {
    const geom::Point q{rng.uniform(-2.0, 11.0), rng.uniform(-2.0, 11.0)};
    // Brute-force nearest and per-cone nearest by (w2, id).
    detail::NearCandidate want;
    std::array<detail::NearCandidate, 6> want_cones{};
    for (std::int32_t id = 0; id < 80; ++id) {
      const double dx = pts[static_cast<std::size_t>(id)].x - q.x;
      const double dy = pts[static_cast<std::size_t>(id)].y - q.y;
      const double w2 = dx * dx + dy * dy;
      const auto cone =
          static_cast<std::size_t>(detail::PointGrid::cone_of(dx, dy));
      if (w2 < want.w2 || (w2 == want.w2 && id < want.id)) {
        want = {id, w2};
      }
      auto& slot = want_cones[cone];
      if (w2 < slot.w2 || (w2 == slot.w2 && id < slot.id)) slot = {id, w2};
    }
    const auto got = grid.nearest(q, none);
    EXPECT_EQ(got.id, want.id);
    const auto got_cones = grid.cone_nearest(q, none);
    for (std::size_t c = 0; c < 6; ++c) {
      EXPECT_EQ(got_cones[c].id, want_cones[c].id) << "cone " << c;
    }
  }
  // The limit contract: candidates at or below the cap are still found.
  const auto capped = grid.nearest({4.5, 4.5}, none,
                                   grid.nearest({4.5, 4.5}, none).w2);
  EXPECT_EQ(capped.id, grid.nearest({4.5, 4.5}, none).id);
}

TEST(Tree, OrientationBasics) {
  //   0 - 1 - 2
  //       |
  //       3
  const geom::Pointset pts{{0, 0}, {1, 0}, {2, 0}, {1, 1}};
  const std::vector<Edge> edges{{0, 1}, {1, 2}, {1, 3}};
  const auto tree = orient_toward_sink(pts, edges, 0);
  EXPECT_EQ(tree.sink, 0);
  EXPECT_EQ(tree.parent[0], -1);
  EXPECT_EQ(tree.parent[1], 0);
  EXPECT_EQ(tree.parent[2], 1);
  EXPECT_EQ(tree.parent[3], 1);
  EXPECT_EQ(tree.depth[0], 0);
  EXPECT_EQ(tree.depth[2], 2);
  EXPECT_EQ(tree.height(), 2);
  ASSERT_EQ(tree.links.size(), 3u);
  // Every non-sink node's link points to its parent.
  for (std::size_t v = 1; v < 4; ++v) {
    const auto li = tree.link_of_node[v];
    ASSERT_GE(li, 0);
    EXPECT_EQ(tree.links.link(static_cast<std::size_t>(li)).sender,
              static_cast<std::int32_t>(v));
    EXPECT_EQ(tree.links.link(static_cast<std::size_t>(li)).receiver,
              tree.parent[v]);
  }
  EXPECT_EQ(tree.children[1].size(), 2u);
  EXPECT_EQ(tree.children[0].size(), 1u);
}

TEST(Tree, RejectsBadInput) {
  const geom::Pointset pts{{0, 0}, {1, 0}, {2, 0}};
  const std::vector<Edge> not_tree{{0, 1}};
  EXPECT_THROW(orient_toward_sink(pts, not_tree, 0), std::invalid_argument);
  const std::vector<Edge> tree{{0, 1}, {1, 2}};
  EXPECT_THROW(orient_toward_sink(pts, tree, 5), std::invalid_argument);
}

TEST(Tree, MstTreeProperties) {
  const auto pts = instance::uniform_square(100, 10.0, 9);
  const auto tree = mst_tree(pts, 0);
  EXPECT_EQ(tree.num_nodes(), 100u);
  EXPECT_EQ(tree.links.size(), 99u);
  // Depths are consistent with parents.
  for (std::size_t v = 0; v < 100; ++v) {
    if (tree.parent[v] >= 0) {
      EXPECT_EQ(tree.depth[v],
                tree.depth[static_cast<std::size_t>(tree.parent[v])] + 1);
    }
  }
}

TEST(Tree, PairingTreeLogHeight) {
  for (std::uint64_t seed : {1ULL, 2ULL}) {
    const auto pts = instance::uniform_square(128, 10.0, seed);
    const auto pt = pairing_tree(pts, 0);
    EXPECT_EQ(pt.tree.links.size(), 127u);
    // Matching halves the active set each level: ~log2(128) = 7 levels.
    EXPECT_LE(pt.num_levels, 9);
    EXPECT_GE(pt.num_levels, 7);
    // Levels partition the links, each level at most half the prior nodes.
    ASSERT_EQ(pt.level_of_link.size(), 127u);
    std::vector<int> per_level(static_cast<std::size_t>(pt.num_levels), 0);
    for (auto lv : pt.level_of_link) {
      ASSERT_GE(lv, 0);
      ASSERT_LT(lv, pt.num_levels);
      ++per_level[static_cast<std::size_t>(lv)];
    }
    EXPECT_EQ(per_level[0], 64);
    // The tree height is bounded by the number of levels... loosely.
    EXPECT_LE(pt.tree.height(), 2 * pt.num_levels + 1);
  }
}

TEST(Tree, PairingTreeKeepsSink) {
  const auto pts = instance::uniform_square(33, 10.0, 4);
  const auto pt = pairing_tree(pts, 17);
  EXPECT_EQ(pt.tree.sink, 17);
  EXPECT_EQ(pt.tree.parent[17], -1);
}

}  // namespace
}  // namespace wagg::mst
