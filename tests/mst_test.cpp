#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "geom/point.h"
#include "instance/basic.h"
#include "mst/mst.h"
#include "mst/tree.h"

namespace wagg::mst {
namespace {

TEST(UnionFind, MergesAndCounts) {
  UnionFind uf(4);
  EXPECT_EQ(uf.num_components(), 4u);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_FALSE(uf.unite(1, 0));
  EXPECT_TRUE(uf.unite(2, 3));
  EXPECT_EQ(uf.num_components(), 2u);
  EXPECT_TRUE(uf.unite(0, 3));
  EXPECT_EQ(uf.find(1), uf.find(2));
  EXPECT_EQ(uf.num_components(), 1u);
}

TEST(Mst, TwoPoints) {
  const geom::Pointset pts{{0, 0}, {1, 1}};
  const auto edges = euclidean_mst(pts);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_TRUE(is_spanning_tree(2, edges));
}

TEST(Mst, MatchesKruskalWeightOnRandomInstances) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto pts = instance::uniform_square(60, 10.0, seed);
    const auto prim = euclidean_mst(pts);
    const auto kruskal = kruskal_mst(pts);
    EXPECT_TRUE(is_spanning_tree(pts.size(), prim));
    EXPECT_TRUE(is_spanning_tree(pts.size(), kruskal));
    EXPECT_NEAR(total_weight(pts, prim), total_weight(pts, kruskal), 1e-9)
        << "seed " << seed;
  }
}

TEST(Mst, LineMstIsAdjacentPairs) {
  const auto pts = geom::line_pointset({5.0, 1.0, 3.0, 0.0});
  const auto edges = line_mst(pts);
  ASSERT_EQ(edges.size(), 3u);
  // Edges connect sorted neighbours: (3,1), (1,2), (2,0) by index.
  const auto weight = total_weight(pts, edges);
  EXPECT_DOUBLE_EQ(weight, 5.0);
  EXPECT_TRUE(is_spanning_tree(4, edges));
}

TEST(Mst, LineMstMatchesEuclideanOnLine) {
  const auto pts = instance::exponential_chain(12, 1.7);
  EXPECT_NEAR(total_weight(pts, line_mst(pts)),
              total_weight(pts, euclidean_mst(pts)), 1e-9);
}

TEST(Mst, LineMstRejectsPlanarInput) {
  EXPECT_THROW(line_mst({{0, 0}, {1, 1}}), std::invalid_argument);
}

TEST(Mst, GridMstWeightIsMinimal) {
  // 3x3 unit grid: MST weight = 8 (all unit edges).
  const auto pts = instance::grid(3, 3, 1.0);
  EXPECT_NEAR(total_weight(pts, euclidean_mst(pts)), 8.0, 1e-12);
}

TEST(Mst, KFoldProducesMoreEdges) {
  const auto pts = instance::uniform_square(30, 10.0, 5);
  const auto one = k_fold_mst(pts, 1);
  const auto two = k_fold_mst(pts, 2);
  EXPECT_EQ(one.size(), pts.size() - 1);
  EXPECT_EQ(two.size(), 2 * (pts.size() - 1));
  // Rounds are edge-disjoint.
  std::set<std::pair<int, int>> seen;
  for (const auto& e : two) {
    const auto key = std::minmax(e.u, e.v);
    EXPECT_TRUE(seen.emplace(key.first, key.second).second);
  }
  // First round equals the plain MST weight.
  EXPECT_NEAR(total_weight(pts, one),
              total_weight(pts, kruskal_mst(pts)), 1e-9);
}

TEST(Mst, IsSpanningTreeRejectsCyclesAndForests) {
  EXPECT_FALSE(is_spanning_tree(3, std::vector<Edge>{{0, 1}, {0, 1}}));  // dup
  EXPECT_FALSE(is_spanning_tree(4, std::vector<Edge>{{0, 1}, {2, 3}}));  // cnt
  std::vector<Edge> cycle{{0, 1}, {1, 2}, {2, 0}};
  EXPECT_FALSE(is_spanning_tree(4, cycle));
  std::vector<Edge> tree{{0, 1}, {1, 2}, {2, 3}};
  EXPECT_TRUE(is_spanning_tree(4, tree));
}

TEST(Mst, Validation) {
  EXPECT_THROW(euclidean_mst({{0, 0}}), std::invalid_argument);
  EXPECT_THROW(k_fold_mst({{0, 0}, {1, 0}}, 0), std::invalid_argument);
}

TEST(Tree, OrientationBasics) {
  //   0 - 1 - 2
  //       |
  //       3
  const geom::Pointset pts{{0, 0}, {1, 0}, {2, 0}, {1, 1}};
  const std::vector<Edge> edges{{0, 1}, {1, 2}, {1, 3}};
  const auto tree = orient_toward_sink(pts, edges, 0);
  EXPECT_EQ(tree.sink, 0);
  EXPECT_EQ(tree.parent[0], -1);
  EXPECT_EQ(tree.parent[1], 0);
  EXPECT_EQ(tree.parent[2], 1);
  EXPECT_EQ(tree.parent[3], 1);
  EXPECT_EQ(tree.depth[0], 0);
  EXPECT_EQ(tree.depth[2], 2);
  EXPECT_EQ(tree.height(), 2);
  ASSERT_EQ(tree.links.size(), 3u);
  // Every non-sink node's link points to its parent.
  for (std::size_t v = 1; v < 4; ++v) {
    const auto li = tree.link_of_node[v];
    ASSERT_GE(li, 0);
    EXPECT_EQ(tree.links.link(static_cast<std::size_t>(li)).sender,
              static_cast<std::int32_t>(v));
    EXPECT_EQ(tree.links.link(static_cast<std::size_t>(li)).receiver,
              tree.parent[v]);
  }
  EXPECT_EQ(tree.children[1].size(), 2u);
  EXPECT_EQ(tree.children[0].size(), 1u);
}

TEST(Tree, RejectsBadInput) {
  const geom::Pointset pts{{0, 0}, {1, 0}, {2, 0}};
  const std::vector<Edge> not_tree{{0, 1}};
  EXPECT_THROW(orient_toward_sink(pts, not_tree, 0), std::invalid_argument);
  const std::vector<Edge> tree{{0, 1}, {1, 2}};
  EXPECT_THROW(orient_toward_sink(pts, tree, 5), std::invalid_argument);
}

TEST(Tree, MstTreeProperties) {
  const auto pts = instance::uniform_square(100, 10.0, 9);
  const auto tree = mst_tree(pts, 0);
  EXPECT_EQ(tree.num_nodes(), 100u);
  EXPECT_EQ(tree.links.size(), 99u);
  // Depths are consistent with parents.
  for (std::size_t v = 0; v < 100; ++v) {
    if (tree.parent[v] >= 0) {
      EXPECT_EQ(tree.depth[v],
                tree.depth[static_cast<std::size_t>(tree.parent[v])] + 1);
    }
  }
}

TEST(Tree, PairingTreeLogHeight) {
  for (std::uint64_t seed : {1ULL, 2ULL}) {
    const auto pts = instance::uniform_square(128, 10.0, seed);
    const auto pt = pairing_tree(pts, 0);
    EXPECT_EQ(pt.tree.links.size(), 127u);
    // Matching halves the active set each level: ~log2(128) = 7 levels.
    EXPECT_LE(pt.num_levels, 9);
    EXPECT_GE(pt.num_levels, 7);
    // Levels partition the links, each level at most half the prior nodes.
    ASSERT_EQ(pt.level_of_link.size(), 127u);
    std::vector<int> per_level(static_cast<std::size_t>(pt.num_levels), 0);
    for (auto lv : pt.level_of_link) {
      ASSERT_GE(lv, 0);
      ASSERT_LT(lv, pt.num_levels);
      ++per_level[static_cast<std::size_t>(lv)];
    }
    EXPECT_EQ(per_level[0], 64);
    // The tree height is bounded by the number of levels... loosely.
    EXPECT_LE(pt.tree.height(), 2 * pt.num_levels + 1);
  }
}

TEST(Tree, PairingTreeKeepsSink) {
  const auto pts = instance::uniform_square(33, 10.0, 4);
  const auto pt = pairing_tree(pts, 17);
  EXPECT_EQ(pt.tree.sink, 17);
  EXPECT_EQ(pt.tree.parent[17], -1);
}

}  // namespace
}  // namespace wagg::mst
