// Model-parameter robustness: the pipeline must produce verified schedules
// across path-loss exponents, SINR thresholds, noise levels and conflict
// constants — the theory's O(.) bounds hide these constants, the library
// must not.

#include <gtest/gtest.h>

#include <tuple>

#include "core/planner.h"
#include "instance/basic.h"
#include "mst/tree.h"
#include "schedule/simulator.h"
#include "sinr/interference.h"

namespace wagg {
namespace {

class AlphaBetaSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(AlphaBetaSweep, AllModesVerifyAndSimulate) {
  const auto [alpha, beta] = GetParam();
  const auto pts = instance::uniform_square(90, 9.0, 17);
  for (const auto mode :
       {core::PowerMode::kUniform, core::PowerMode::kOblivious,
        core::PowerMode::kGlobal}) {
    core::PlannerConfig cfg;
    cfg.power_mode = mode;
    cfg.sinr.alpha = alpha;
    cfg.sinr.beta = beta;
    const auto plan = core::plan_aggregation(pts, cfg);
    EXPECT_TRUE(plan.verified())
        << core::to_string(mode) << " alpha=" << alpha << " beta=" << beta;
    // Harder SINR regimes may need more slots but never a broken schedule.
    schedule::SimulationConfig sim;
    sim.num_frames = 4;
    sim.generation_period = plan.schedule().length();
    const auto rep =
        schedule::simulate_aggregation(plan.tree, plan.schedule(), sim);
    EXPECT_TRUE(rep.all_frames_completed);
    EXPECT_TRUE(rep.aggregates_correct);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Params, AlphaBetaSweep,
    ::testing::Combine(::testing::Values(2.5, 3.0, 4.0, 6.0),
                       ::testing::Values(0.5, 1.0, 4.0)));

TEST(AlphaBetaSweep, HigherBetaNeverShortensSchedules) {
  const auto pts = instance::uniform_square(120, 9.0, 23);
  core::PlannerConfig cfg;
  cfg.power_mode = core::PowerMode::kGlobal;
  std::size_t prev = 0;
  for (double beta : {0.5, 1.0, 2.0, 8.0}) {
    cfg.sinr.beta = beta;
    const auto plan = core::plan_aggregation(pts, cfg);
    ASSERT_TRUE(plan.verified()) << beta;
    EXPECT_GE(plan.schedule().length() + 1, prev) << beta;  // +1: repair noise
    prev = plan.schedule().length();
  }
}

class NoiseSweep : public ::testing::TestWithParam<double> {};

TEST_P(NoiseSweep, InterferenceLimitedMarginsHold) {
  const double noise = GetParam();
  const auto pts = instance::uniform_square(70, 8.0, 29);
  for (const auto mode :
       {core::PowerMode::kUniform, core::PowerMode::kOblivious,
        core::PowerMode::kGlobal}) {
    core::PlannerConfig cfg;
    cfg.power_mode = mode;
    cfg.sinr.noise = noise;
    cfg.sinr.epsilon = 0.5;
    const auto plan = core::plan_aggregation(pts, cfg);
    EXPECT_TRUE(plan.verified())
        << core::to_string(mode) << " noise=" << noise;
  }
}

INSTANTIATE_TEST_SUITE_P(Noise, NoiseSweep,
                         ::testing::Values(0.0, 1e-6, 1e-3, 0.1));

class GammaSweep : public ::testing::TestWithParam<double> {};

TEST_P(GammaSweep, RepairAbsorbsAnyConflictConstant) {
  // gamma far too small (many infeasible color classes) or large (wastefully
  // long schedules): the output must stay verified either way.
  const double gamma = GetParam();
  const auto pts = instance::uniform_square(100, 9.0, 31);
  for (const auto mode :
       {core::PowerMode::kOblivious, core::PowerMode::kGlobal}) {
    core::PlannerConfig cfg;
    cfg.power_mode = mode;
    cfg.gamma = gamma;
    const auto plan = core::plan_aggregation(pts, cfg);
    EXPECT_TRUE(plan.verified()) << core::to_string(mode) << " g=" << gamma;
  }
}

INSTANTIATE_TEST_SUITE_P(Gammas, GammaSweep,
                         ::testing::Values(0.25, 1.0, 4.0, 8.0));

TEST(AlphaSweep, Lemma1StatDropsWithAlpha) {
  // Larger path-loss exponents attenuate interference faster, so the MST
  // sparsity statistic decreases monotonically in alpha.
  const auto pts = instance::uniform_square(200, 10.0, 37);
  const auto tree = mst::mst_tree(pts, 0);
  double prev = 1e9;
  for (double alpha : {2.5, 3.0, 4.0, 5.0, 6.0}) {
    const double stat = sinr::lemma1_statistic(tree.links, alpha);
    EXPECT_LT(stat, prev) << alpha;
    prev = stat;
  }
}

TEST(DeterminismSweep, PlansAreReproducible) {
  const auto pts = instance::uniform_square(100, 9.0, 41);
  for (const auto mode :
       {core::PowerMode::kUniform, core::PowerMode::kOblivious,
        core::PowerMode::kGlobal}) {
    core::PlannerConfig cfg;
    cfg.power_mode = mode;
    const auto a = core::plan_aggregation(pts, cfg);
    const auto b = core::plan_aggregation(pts, cfg);
    EXPECT_EQ(a.schedule().slots, b.schedule().slots) << core::to_string(mode);
  }
}

}  // namespace
}  // namespace wagg
