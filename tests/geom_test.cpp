#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "geom/linkset.h"
#include "geom/point.h"
#include "instance/basic.h"

namespace wagg::geom {
namespace {

TEST(Point, DistanceBasics) {
  const Point a{0, 0}, b{3, 4};
  EXPECT_DOUBLE_EQ(distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(squared_distance(a, b), 25.0);
  EXPECT_DOUBLE_EQ(distance(a, a), 0.0);
}

TEST(Point, DistanceSymmetric) {
  const Point a{1.5, -2.0}, b{-0.5, 7.25};
  EXPECT_DOUBLE_EQ(distance(a, b), distance(b, a));
}

TEST(Point, MinPairwiseAndDiameter) {
  const Pointset pts{{0, 0}, {1, 0}, {10, 0}};
  EXPECT_DOUBLE_EQ(min_pairwise_distance(pts), 1.0);
  EXPECT_DOUBLE_EQ(diameter(pts), 10.0);
}

TEST(Point, MinPairwiseValidation) {
  EXPECT_THROW((void)min_pairwise_distance({{0, 0}}), std::invalid_argument);
  EXPECT_THROW((void)diameter({}), std::invalid_argument);
}

TEST(Point, LinePointsetPlacesOnAxis) {
  const auto pts = line_pointset({0.0, 2.5, 7.0});
  ASSERT_EQ(pts.size(), 3u);
  for (const auto& p : pts) EXPECT_DOUBLE_EQ(p.y, 0.0);
  EXPECT_DOUBLE_EQ(pts[1].x, 2.5);
}

LinkSet make_two_links() {
  // Link 0: (0,0) -> (1,0); link 1: (5,0) -> (5,2).
  Pointset pts{{0, 0}, {1, 0}, {5, 0}, {5, 2}};
  return LinkSet(pts, {Link{0, 1}, Link{2, 3}});
}

TEST(LinkSet, LengthsComputed) {
  const auto ls = make_two_links();
  EXPECT_DOUBLE_EQ(ls.length(0), 1.0);
  EXPECT_DOUBLE_EQ(ls.length(1), 2.0);
  EXPECT_DOUBLE_EQ(ls.min_length(), 1.0);
  EXPECT_DOUBLE_EQ(ls.max_length(), 2.0);
  EXPECT_DOUBLE_EQ(ls.delta(), 2.0);
  EXPECT_NEAR(ls.log2_delta(), 1.0, 1e-12);
}

TEST(LinkSet, SinrDistanceIsSenderToReceiver) {
  const auto ls = make_two_links();
  // d_01 = d(sender 0, receiver 1) = d((0,0),(5,2)).
  EXPECT_DOUBLE_EQ(ls.sinr_distance(0, 1), std::hypot(5.0, 2.0));
  // d_10 = d(sender 1, receiver 0) = d((5,0),(1,0)) = 4.
  EXPECT_DOUBLE_EQ(ls.sinr_distance(1, 0), 4.0);
  // Diagonal equals the link length.
  EXPECT_DOUBLE_EQ(ls.sinr_distance(0, 0), ls.length(0));
}

TEST(LinkSet, LinkDistanceIsMinOverNodePairs) {
  const auto ls = make_two_links();
  // Closest pair of endpoints: (1,0) vs (5,0) -> 4.
  EXPECT_DOUBLE_EQ(ls.link_distance(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(ls.link_distance(1, 0), 4.0);
}

TEST(LinkSet, SharedNodeDistanceZero) {
  Pointset pts{{0, 0}, {1, 0}, {2, 0}};
  const LinkSet ls(pts, {Link{0, 1}, Link{1, 2}});
  EXPECT_TRUE(ls.shares_node(0, 1));
  EXPECT_DOUBLE_EQ(ls.link_distance(0, 1), 0.0);
}

TEST(LinkSet, Validation) {
  Pointset pts{{0, 0}, {1, 0}};
  EXPECT_THROW(LinkSet(pts, {Link{0, 0}}), std::invalid_argument);  // self
  EXPECT_THROW(LinkSet(pts, {Link{0, 2}}), std::invalid_argument);  // range
  Pointset dup{{0, 0}, {0, 0}};
  EXPECT_THROW(LinkSet(dup, {Link{0, 1}}), std::invalid_argument);  // zero len
}

TEST(LinkSet, SubsetKeepsGeometryAndCompactsPoints) {
  const auto ls = make_two_links();
  const std::vector<std::size_t> idx{1};
  const auto sub = ls.subset(idx);
  ASSERT_EQ(sub.size(), 1u);
  EXPECT_DOUBLE_EQ(sub.length(0), 2.0);
  // The pointset is compacted to the referenced endpoints (O(|subset|)),
  // and stable ids carry over from the parent.
  EXPECT_EQ(sub.num_points(), 2u);
  EXPECT_EQ(sub.sender_pos(0), ls.sender_pos(1));
  EXPECT_EQ(sub.receiver_pos(0), ls.receiver_pos(1));
  EXPECT_EQ(sub.id_of(0), ls.id_of(1));
}

TEST(LinkSet, IdentityIdsAndSubsetDistances) {
  Pointset pts{{0, 0}, {1, 0}, {5, 0}, {5, 2}, {9, 9}};
  const LinkSet ls(pts, {Link{0, 1}, Link{2, 3}, Link{3, 4}});
  for (std::size_t i = 0; i < ls.size(); ++i) {
    EXPECT_EQ(ls.id_of(i), static_cast<LinkId>(i));
  }
  const std::vector<std::size_t> idx{0, 1};
  const auto sub = ls.subset(idx);
  ASSERT_EQ(sub.size(), 2u);
  // Pairwise metrics are preserved under point compaction.
  EXPECT_DOUBLE_EQ(sub.link_distance(0, 1), ls.link_distance(0, 1));
  EXPECT_DOUBLE_EQ(sub.sinr_distance(0, 1), ls.sinr_distance(0, 1));
  EXPECT_DOUBLE_EQ(sub.sinr_distance(1, 0), ls.sinr_distance(1, 0));
}

TEST(LinkSet, OrderingsAreInverseAndDeterministic) {
  Pointset pts{{0, 0}, {1, 0}, {10, 0}, {12, 0}, {20, 0}, {25, 0}};
  const LinkSet ls(pts, {Link{0, 1}, Link{2, 3}, Link{4, 5}});
  const auto dec = ls.by_decreasing_length();
  const auto inc = ls.by_increasing_length();
  ASSERT_EQ(dec.size(), 3u);
  EXPECT_EQ(dec[0], 2u);  // length 5
  EXPECT_EQ(dec[1], 1u);  // length 2
  EXPECT_EQ(dec[2], 0u);  // length 1
  EXPECT_EQ(inc[0], 0u);
  EXPECT_EQ(inc[2], 2u);
}

TEST(LinkSet, TieBreakByIndex) {
  Pointset pts{{0, 0}, {1, 0}, {5, 0}, {6, 0}};
  const LinkSet ls(pts, {Link{0, 1}, Link{2, 3}});  // equal lengths
  EXPECT_EQ(ls.by_decreasing_length()[0], 0u);
  EXPECT_EQ(ls.by_increasing_length()[0], 0u);
}

TEST(LinkSet, LogDeltaSurvivesExtremeScales) {
  // Lengths 1 and 1e250: delta overflows nothing, log2_delta is finite.
  Pointset pts{{0, 0}, {1, 0}, {1e260, 0}, {2e260, 0}};
  Pointset shifted = pts;
  shifted[3].x = pts[2].x + 1e250;
  const LinkSet ls(shifted, {Link{0, 1}, Link{2, 3}});
  EXPECT_NEAR(ls.log2_delta(), 250.0 * std::log2(10.0), 1.0);
}

}  // namespace
}  // namespace wagg::geom
