#include <gtest/gtest.h>

#include "geom/linkset.h"
#include "instance/basic.h"
#include "instance/special.h"
#include "mst/tree.h"
#include "schedule/repair.h"
#include "schedule/schedule.h"
#include "schedule/verify.h"
#include "sinr/power.h"

namespace wagg::schedule {
namespace {

sinr::SinrParams params(double alpha = 3.0, double beta = 1.0) {
  sinr::SinrParams p;
  p.alpha = alpha;
  p.beta = beta;
  return p;
}

TEST(Schedule, RatesAndCounts) {
  Schedule s;
  s.slots = {{0, 1}, {2}, {0}};
  EXPECT_EQ(s.length(), 3u);
  EXPECT_EQ(s.total_transmissions(), 4u);
  EXPECT_NEAR(s.coloring_rate(), 1.0 / 3.0, 1e-12);
  // Link 0 appears twice, links 1, 2 once: min rate = 1/3.
  EXPECT_NEAR(min_link_rate(s, 3), 1.0 / 3.0, 1e-12);
  // With a missing link the rate is 0.
  EXPECT_DOUBLE_EQ(min_link_rate(s, 4), 0.0);
}

TEST(Schedule, PartitionAndCoverage) {
  Schedule good;
  good.slots = {{0, 2}, {1}};
  EXPECT_TRUE(covers_all_links(good, 3));
  EXPECT_TRUE(is_partition(good, 3));
  Schedule repeat;
  repeat.slots = {{0, 2}, {1, 0}};
  EXPECT_TRUE(covers_all_links(repeat, 3));
  EXPECT_FALSE(is_partition(repeat, 3));
  Schedule missing;
  missing.slots = {{0}};
  EXPECT_FALSE(covers_all_links(missing, 2));
}

TEST(Schedule, FromColoring) {
  coloring::Coloring c;
  c.color_of = {0, 1, 0};
  c.num_colors = 2;
  const auto s = from_coloring(c);
  ASSERT_EQ(s.length(), 2u);
  EXPECT_EQ(s.slots[0], (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(s.slots[1], (std::vector<std::size_t>{1}));
}

TEST(Schedule, EmptyScheduleRateThrows) {
  Schedule s;
  EXPECT_THROW((void)s.coloring_rate(), std::logic_error);
}

geom::LinkSet chain_links(std::size_t n) {
  return mst::mst_tree(instance::unit_chain(n), 0).links;
}

TEST(Verify, FixedPowerOracleFindsInfeasibleSlot) {
  const auto links = chain_links(5);  // 4 unit links in a row
  const auto prm = params(3.0, 2.0);
  const auto oracle =
      fixed_power_oracle(links, prm, sinr::uniform_power(links, prm));
  Schedule bad;
  bad.slots = {{0, 1, 2, 3}};  // neighbours share nodes: infeasible
  const auto rep = verify_schedule(links, bad, oracle);
  EXPECT_FALSE(rep.all_slots_feasible);
  EXPECT_TRUE(rep.covers_all_links);
  EXPECT_FALSE(rep.ok());
  ASSERT_EQ(rep.infeasible_slots.size(), 1u);
  EXPECT_EQ(rep.infeasible_slots[0], 0u);
}

TEST(Verify, AcceptsFeasibleSchedule) {
  const auto links = chain_links(5);
  const auto prm = params(3.0, 2.0);
  const auto oracle =
      fixed_power_oracle(links, prm, sinr::uniform_power(links, prm));
  Schedule one_at_a_time;
  one_at_a_time.slots = {{0}, {1}, {2}, {3}};
  EXPECT_TRUE(verify_schedule(links, one_at_a_time, oracle).ok());
}

TEST(Verify, PowerControlOracleAcceptsPairsUniformCannot) {
  // Nested links: short inside the shadow of long. Uniform fails, power
  // control succeeds.
  geom::Pointset pts{{0, 0}, {16, 0}, {20, 0}, {21, 0}};
  const geom::LinkSet ls(pts, {geom::Link{0, 1}, geom::Link{3, 2}});
  const auto prm = params(3.0, 2.0);
  const std::vector<std::size_t> both{0, 1};
  EXPECT_FALSE(fixed_power_oracle(ls, prm, sinr::uniform_power(ls, prm))(both));
  EXPECT_TRUE(power_control_oracle(ls, prm)(both));
}

TEST(Repair, SplitsInfeasibleSlotIntoFeasibleOnes) {
  const auto links = chain_links(6);
  const auto prm = params(3.0, 2.0);
  const auto oracle =
      fixed_power_oracle(links, prm, sinr::uniform_power(links, prm));
  Schedule everything;
  everything.slots = {{0, 1, 2, 3, 4}};
  const auto repaired = repair_schedule(links, everything, oracle);
  EXPECT_EQ(repaired.slots_split, 1u);
  EXPECT_EQ(repaired.length_before, 1u);
  EXPECT_GT(repaired.length_after, 1u);
  const auto rep = verify_schedule(links, repaired.schedule, oracle);
  EXPECT_TRUE(rep.ok());
  EXPECT_TRUE(is_partition(repaired.schedule, links.size()));
}

TEST(Repair, LeavesFeasibleSlotsUntouched) {
  const auto links = chain_links(4);
  const auto prm = params(3.0, 2.0);
  const auto oracle =
      fixed_power_oracle(links, prm, sinr::uniform_power(links, prm));
  Schedule fine;
  fine.slots = {{0}, {1}, {2}};
  const auto repaired = repair_schedule(links, fine, oracle);
  EXPECT_EQ(repaired.slots_split, 0u);
  EXPECT_EQ(repaired.schedule.slots, fine.slots);
}

TEST(Repair, PreservesMultiplicity) {
  // Multicolor schedules keep their per-link multiplicities through repair.
  const auto links = chain_links(4);
  const auto prm = params(3.0, 2.0);
  const auto oracle =
      fixed_power_oracle(links, prm, sinr::uniform_power(links, prm));
  Schedule multi;
  multi.slots = {{0, 1, 2}, {0}};
  const auto repaired = repair_schedule(links, multi, oracle);
  std::vector<int> count(3, 0);
  for (const auto& slot : repaired.schedule.slots) {
    for (auto l : slot) ++count[l];
  }
  EXPECT_EQ(count[0], 2);
  EXPECT_EQ(count[1], 1);
  EXPECT_EQ(count[2], 1);
}

TEST(FiveCycle, MulticolorBeatsColoring) {
  // The paper's Sec 4 example: coloring rate 1/3, multicoloring rate 2/5.
  const auto inst = instance::five_cycle_instance();
  const auto prm = params(3.0, 1.0);
  const auto oracle = fixed_power_oracle(inst.links, prm,
                                         sinr::uniform_power(inst.links, prm));
  Schedule multicolor;
  multicolor.slots = inst.multicolor_slots;
  Schedule coloring;
  coloring.slots = inst.coloring_slots;

  EXPECT_TRUE(verify_schedule(inst.links, multicolor, oracle).ok());
  EXPECT_TRUE(verify_schedule(inst.links, coloring, oracle).ok());

  EXPECT_NEAR(min_link_rate(coloring, 5), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(min_link_rate(multicolor, 5), 2.0 / 5.0, 1e-12);
  EXPECT_GT(min_link_rate(multicolor, 5), min_link_rate(coloring, 5));
}

TEST(Repair, EmptySlotSurvivesUnchanged) {
  // An empty slot is vacuously feasible; repair must neither crash nor
  // split it.
  const auto links = chain_links(4);
  const auto prm = params(3.0, 2.0);
  const auto oracle =
      fixed_power_oracle(links, prm, sinr::uniform_power(links, prm));
  Schedule with_empty;
  with_empty.slots = {{0}, {}, {1}, {2}};
  const auto repaired = repair_schedule(links, with_empty, oracle);
  EXPECT_EQ(repaired.slots_split, 0u);
  EXPECT_EQ(repaired.schedule.slots, with_empty.slots);

  const auto fixed = repair_schedule_fixed_power(
      links, with_empty, prm, sinr::uniform_power(links, prm));
  EXPECT_EQ(fixed.slots_split, 0u);
  EXPECT_EQ(fixed.schedule.slots, with_empty.slots);
}

TEST(Repair, SingleLinkSlotsAreFixedPoints) {
  // Singletons are feasible on interference-limited instances, so a
  // schedule of singletons round-trips exactly through both repair paths.
  const auto links = chain_links(5);
  const auto prm = params(3.0, 2.0);
  const auto power = sinr::uniform_power(links, prm);
  const auto oracle = fixed_power_oracle(links, prm, power);
  Schedule singletons;
  for (std::size_t i = 0; i < links.size(); ++i) singletons.slots.push_back({i});
  const auto repaired = repair_schedule(links, singletons, oracle);
  EXPECT_EQ(repaired.slots_split, 0u);
  EXPECT_EQ(repaired.length_after, links.size());
  EXPECT_EQ(repaired.schedule.slots, singletons.slots);
  const auto fixed =
      repair_schedule_fixed_power(links, singletons, prm, power);
  EXPECT_EQ(fixed.schedule.slots, singletons.slots);
}

TEST(Repair, AllPairwiseInfeasibleSlotExplodesIntoSingletons) {
  // Three parallel unit links stacked 0.01 apart: any concurrent pair has
  // SINR ~= 1 < beta = 2, so the slot has no feasible pair and repair must
  // end at one link per sub-slot.
  geom::Pointset pts{{0, 0},    {1, 0},    {0, 0.01},
                     {1, 0.01}, {0, 0.02}, {1, 0.02}};
  const geom::LinkSet links(
      pts, {geom::Link{0, 1}, geom::Link{2, 3}, geom::Link{4, 5}});
  const auto prm = params(3.0, 2.0);
  const auto power = sinr::uniform_power(links, prm);
  const auto oracle = fixed_power_oracle(links, prm, power);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = i + 1; j < 3; ++j) {
      ASSERT_FALSE(oracle(std::vector<std::size_t>{i, j}))
          << "pair " << i << "," << j;
    }
  }
  Schedule hopeless;
  hopeless.slots = {{0, 1, 2}};
  const auto repaired = repair_schedule(links, hopeless, oracle);
  EXPECT_EQ(repaired.slots_split, 1u);
  EXPECT_EQ(repaired.length_after, 3u);
  for (const auto& slot : repaired.schedule.slots) {
    EXPECT_EQ(slot.size(), 1u);
  }
  EXPECT_TRUE(verify_schedule(links, repaired.schedule, oracle).ok());

  // The fixed-power fast path agrees.
  const auto fixed = repair_schedule_fixed_power(links, hopeless, prm, power);
  EXPECT_EQ(fixed.length_after, 3u);
}

TEST(PatchSlot, InsertsLooseIntoKeptWhenFeasible) {
  const auto links = chain_links(8);  // 7 unit links
  const auto prm = params(3.0, 1.0);
  const auto oracle =
      fixed_power_oracle(links, prm, sinr::uniform_power(links, prm));
  // Far-apart links 0 and 6 coexist; insert 3 (feasible with neither-near
  // set? checked via oracle) as loose.
  std::vector<std::vector<std::size_t>> kept = {{0, 6}};
  ASSERT_TRUE(oracle(kept[0]));
  const std::vector<std::size_t> loose = {3};
  const auto patch = patch_slot(links, kept, loose, oracle);
  std::size_t members = 0;
  for (const auto& sub : patch.sub_slots) members += sub.size();
  EXPECT_EQ(members, 3u);
  EXPECT_GE(patch.oracle_calls, 1u);
  for (const auto& sub : patch.sub_slots) {
    EXPECT_TRUE(oracle(sub));
  }
}

TEST(PatchSlot, MixesInsertionAndNewSubSlots) {
  const auto inst = instance::five_cycle_instance();
  const auto prm = params(3.0, 1.0);
  const auto oracle = fixed_power_oracle(
      inst.links, prm, sinr::uniform_power(inst.links, prm));
  // Five-cycle: adjacent pairs are infeasible, non-adjacent pairs feasible.
  // Kept slot {0}; loose 1 (adjacent to 0 -> new sub-slot) and 2
  // (non-adjacent to 0 -> joins the kept slot).
  ASSERT_TRUE(oracle(std::vector<std::size_t>{0, 2}));
  std::vector<std::vector<std::size_t>> kept = {{0}};
  const std::vector<std::size_t> loose = {1, 2};
  const auto patch = patch_slot(inst.links, kept, loose, oracle);
  ASSERT_EQ(patch.sub_slots.size(), 2u);
  EXPECT_EQ(patch.slots_opened, 1u);
  EXPECT_EQ(patch.sub_slots[0], (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(patch.sub_slots[1], (std::vector<std::size_t>{1}));
  for (const auto& sub : patch.sub_slots) {
    EXPECT_TRUE(oracle(sub));
  }
}

TEST(PatchSlot, UncertifiedKeptIsRecheckedOrRepacked) {
  const auto inst = instance::five_cycle_instance();
  const auto prm = params(3.0, 1.0);
  const auto oracle = fixed_power_oracle(
      inst.links, prm, sinr::uniform_power(inst.links, prm));
  // Feasible shrunk kept: one oracle call re-certifies it.
  {
    const auto patch = patch_slot(inst.links, {{0, 2}}, {}, oracle, false);
    ASSERT_EQ(patch.sub_slots.size(), 1u);
    EXPECT_EQ(patch.sub_slots[0], (std::vector<std::size_t>{0, 2}));
    EXPECT_EQ(patch.oracle_calls, 1u);
  }
  // Infeasible kept (adjacent pair): demoted and repacked into singletons.
  {
    const auto patch = patch_slot(inst.links, {{0, 1}}, {}, oracle, false);
    ASSERT_EQ(patch.sub_slots.size(), 2u);
    for (const auto& sub : patch.sub_slots) {
      EXPECT_EQ(sub.size(), 1u);
      EXPECT_TRUE(oracle(sub));
    }
  }
  // Uncertified kept must be a single sub-slot.
  EXPECT_THROW(
      (void)patch_slot(inst.links, {{0}, {2}}, {}, oracle, false),
      std::invalid_argument);
}

TEST(PatchSlot, DropsEmptiedKeptSubSlots) {
  const auto links = chain_links(4);
  const auto prm = params(3.0, 2.0);
  const auto oracle =
      fixed_power_oracle(links, prm, sinr::uniform_power(links, prm));
  std::vector<std::vector<std::size_t>> kept = {{}, {0}, {}};
  const auto patch = patch_slot(links, kept, {}, oracle);
  ASSERT_EQ(patch.sub_slots.size(), 1u);
  EXPECT_EQ(patch.sub_slots[0], (std::vector<std::size_t>{0}));
  EXPECT_EQ(patch.oracle_calls, 0u);  // no loose links, no checks
}

TEST(FiveCycle, AdjacentPairsAreInfeasible) {
  const auto inst = instance::five_cycle_instance();
  const auto prm = params(3.0, 1.0);
  const auto power = sinr::uniform_power(inst.links, prm);
  for (std::size_t i = 0; i < 5; ++i) {
    const std::vector<std::size_t> pair{i, (i + 1) % 5};
    EXPECT_FALSE(sinr::is_feasible(inst.links, pair, prm, power))
        << "pair " << i;
  }
}

}  // namespace
}  // namespace wagg::schedule
