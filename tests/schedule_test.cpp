#include <gtest/gtest.h>

#include "geom/linkset.h"
#include "instance/basic.h"
#include "instance/special.h"
#include "mst/tree.h"
#include "schedule/repair.h"
#include "schedule/schedule.h"
#include "schedule/verify.h"
#include "sinr/power.h"

namespace wagg::schedule {
namespace {

sinr::SinrParams params(double alpha = 3.0, double beta = 1.0) {
  sinr::SinrParams p;
  p.alpha = alpha;
  p.beta = beta;
  return p;
}

TEST(Schedule, RatesAndCounts) {
  Schedule s;
  s.slots = {{0, 1}, {2}, {0}};
  EXPECT_EQ(s.length(), 3u);
  EXPECT_EQ(s.total_transmissions(), 4u);
  EXPECT_NEAR(s.coloring_rate(), 1.0 / 3.0, 1e-12);
  // Link 0 appears twice, links 1, 2 once: min rate = 1/3.
  EXPECT_NEAR(min_link_rate(s, 3), 1.0 / 3.0, 1e-12);
  // With a missing link the rate is 0.
  EXPECT_DOUBLE_EQ(min_link_rate(s, 4), 0.0);
}

TEST(Schedule, PartitionAndCoverage) {
  Schedule good;
  good.slots = {{0, 2}, {1}};
  EXPECT_TRUE(covers_all_links(good, 3));
  EXPECT_TRUE(is_partition(good, 3));
  Schedule repeat;
  repeat.slots = {{0, 2}, {1, 0}};
  EXPECT_TRUE(covers_all_links(repeat, 3));
  EXPECT_FALSE(is_partition(repeat, 3));
  Schedule missing;
  missing.slots = {{0}};
  EXPECT_FALSE(covers_all_links(missing, 2));
}

TEST(Schedule, FromColoring) {
  coloring::Coloring c;
  c.color_of = {0, 1, 0};
  c.num_colors = 2;
  const auto s = from_coloring(c);
  ASSERT_EQ(s.length(), 2u);
  EXPECT_EQ(s.slots[0], (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(s.slots[1], (std::vector<std::size_t>{1}));
}

TEST(Schedule, EmptyScheduleRateThrows) {
  Schedule s;
  EXPECT_THROW((void)s.coloring_rate(), std::logic_error);
}

geom::LinkSet chain_links(std::size_t n) {
  return mst::mst_tree(instance::unit_chain(n), 0).links;
}

TEST(Verify, FixedPowerOracleFindsInfeasibleSlot) {
  const auto links = chain_links(5);  // 4 unit links in a row
  const auto prm = params(3.0, 2.0);
  const auto oracle =
      fixed_power_oracle(links, prm, sinr::uniform_power(links, prm));
  Schedule bad;
  bad.slots = {{0, 1, 2, 3}};  // neighbours share nodes: infeasible
  const auto rep = verify_schedule(links, bad, oracle);
  EXPECT_FALSE(rep.all_slots_feasible);
  EXPECT_TRUE(rep.covers_all_links);
  EXPECT_FALSE(rep.ok());
  ASSERT_EQ(rep.infeasible_slots.size(), 1u);
  EXPECT_EQ(rep.infeasible_slots[0], 0u);
}

TEST(Verify, AcceptsFeasibleSchedule) {
  const auto links = chain_links(5);
  const auto prm = params(3.0, 2.0);
  const auto oracle =
      fixed_power_oracle(links, prm, sinr::uniform_power(links, prm));
  Schedule one_at_a_time;
  one_at_a_time.slots = {{0}, {1}, {2}, {3}};
  EXPECT_TRUE(verify_schedule(links, one_at_a_time, oracle).ok());
}

TEST(Verify, PowerControlOracleAcceptsPairsUniformCannot) {
  // Nested links: short inside the shadow of long. Uniform fails, power
  // control succeeds.
  geom::Pointset pts{{0, 0}, {16, 0}, {20, 0}, {21, 0}};
  const geom::LinkSet ls(pts, {geom::Link{0, 1}, geom::Link{3, 2}});
  const auto prm = params(3.0, 2.0);
  const std::vector<std::size_t> both{0, 1};
  EXPECT_FALSE(fixed_power_oracle(ls, prm, sinr::uniform_power(ls, prm))(both));
  EXPECT_TRUE(power_control_oracle(ls, prm)(both));
}

TEST(Repair, SplitsInfeasibleSlotIntoFeasibleOnes) {
  const auto links = chain_links(6);
  const auto prm = params(3.0, 2.0);
  const auto oracle =
      fixed_power_oracle(links, prm, sinr::uniform_power(links, prm));
  Schedule everything;
  everything.slots = {{0, 1, 2, 3, 4}};
  const auto repaired = repair_schedule(links, everything, oracle);
  EXPECT_EQ(repaired.slots_split, 1u);
  EXPECT_EQ(repaired.length_before, 1u);
  EXPECT_GT(repaired.length_after, 1u);
  const auto rep = verify_schedule(links, repaired.schedule, oracle);
  EXPECT_TRUE(rep.ok());
  EXPECT_TRUE(is_partition(repaired.schedule, links.size()));
}

TEST(Repair, LeavesFeasibleSlotsUntouched) {
  const auto links = chain_links(4);
  const auto prm = params(3.0, 2.0);
  const auto oracle =
      fixed_power_oracle(links, prm, sinr::uniform_power(links, prm));
  Schedule fine;
  fine.slots = {{0}, {1}, {2}};
  const auto repaired = repair_schedule(links, fine, oracle);
  EXPECT_EQ(repaired.slots_split, 0u);
  EXPECT_EQ(repaired.schedule.slots, fine.slots);
}

TEST(Repair, PreservesMultiplicity) {
  // Multicolor schedules keep their per-link multiplicities through repair.
  const auto links = chain_links(4);
  const auto prm = params(3.0, 2.0);
  const auto oracle =
      fixed_power_oracle(links, prm, sinr::uniform_power(links, prm));
  Schedule multi;
  multi.slots = {{0, 1, 2}, {0}};
  const auto repaired = repair_schedule(links, multi, oracle);
  std::vector<int> count(3, 0);
  for (const auto& slot : repaired.schedule.slots) {
    for (auto l : slot) ++count[l];
  }
  EXPECT_EQ(count[0], 2);
  EXPECT_EQ(count[1], 1);
  EXPECT_EQ(count[2], 1);
}

TEST(FiveCycle, MulticolorBeatsColoring) {
  // The paper's Sec 4 example: coloring rate 1/3, multicoloring rate 2/5.
  const auto inst = instance::five_cycle_instance();
  const auto prm = params(3.0, 1.0);
  const auto oracle = fixed_power_oracle(inst.links, prm,
                                         sinr::uniform_power(inst.links, prm));
  Schedule multicolor;
  multicolor.slots = inst.multicolor_slots;
  Schedule coloring;
  coloring.slots = inst.coloring_slots;

  EXPECT_TRUE(verify_schedule(inst.links, multicolor, oracle).ok());
  EXPECT_TRUE(verify_schedule(inst.links, coloring, oracle).ok());

  EXPECT_NEAR(min_link_rate(coloring, 5), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(min_link_rate(multicolor, 5), 2.0 / 5.0, 1e-12);
  EXPECT_GT(min_link_rate(multicolor, 5), min_link_rate(coloring, 5));
}

TEST(FiveCycle, AdjacentPairsAreInfeasible) {
  const auto inst = instance::five_cycle_instance();
  const auto prm = params(3.0, 1.0);
  const auto power = sinr::uniform_power(inst.links, prm);
  for (std::size_t i = 0; i < 5; ++i) {
    const std::vector<std::size_t> pair{i, (i + 1) % 5};
    EXPECT_FALSE(sinr::is_feasible(inst.links, pair, prm, power))
        << "pair " << i;
  }
}

}  // namespace
}  // namespace wagg::schedule
