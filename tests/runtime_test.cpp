#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "instance/basic.h"
#include "runtime/plan_service.h"
#include "workload/workload.h"

namespace wagg::runtime {
namespace {

std::vector<PlanRequest> small_batch(std::size_t count) {
  std::vector<PlanRequest> requests;
  for (std::size_t i = 0; i < count; ++i) {
    PlanRequest request;
    request.seed = 100 + i;
    request.points = instance::uniform_square(48, 7.0, request.seed);
    request.config = workload::mode_config(
        i % 2 == 0 ? core::PowerMode::kGlobal : core::PowerMode::kUniform);
    request.tags = "req=" + std::to_string(i);
    requests.push_back(std::move(request));
  }
  return requests;
}

TEST(PlanService, ParallelMatchesSerial) {
  const auto requests = small_batch(12);

  PlanService serial(ServiceOptions{.num_workers = 1});
  PlanService pooled(ServiceOptions{.num_workers = 4});
  const auto serial_result = serial.run(requests);
  const auto pooled_result = pooled.run(requests);

  ASSERT_EQ(serial_result.outcomes.size(), requests.size());
  ASSERT_EQ(pooled_result.outcomes.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const auto& s = serial_result.outcomes[i];
    const auto& p = pooled_result.outcomes[i];
    EXPECT_TRUE(s.ok) << s.error;
    EXPECT_TRUE(p.ok) << p.error;
    EXPECT_EQ(s.request_index, i);
    EXPECT_EQ(p.request_index, i);
    EXPECT_EQ(s.digest, p.digest) << "request " << i;
    EXPECT_EQ(s.slots, p.slots);
    EXPECT_EQ(s.slots_split, p.slots_split);
    EXPECT_DOUBLE_EQ(s.rate, p.rate);
    EXPECT_EQ(s.tags, p.tags);
  }
}

TEST(PlanService, MalformedRequestsFailWithoutPoisoningBatch) {
  auto requests = small_batch(6);
  // Duplicate points -> zero-length MST edge.
  requests[1].points[3] = requests[1].points[7];
  // Sink out of range.
  requests[4].config.sink = 10000;

  PlanService service(ServiceOptions{.num_workers = 3});
  const auto result = service.run(requests);

  ASSERT_EQ(result.outcomes.size(), requests.size());
  EXPECT_FALSE(result.outcomes[1].ok);
  EXPECT_FALSE(result.outcomes[1].error.empty());
  EXPECT_FALSE(result.outcomes[4].ok);
  EXPECT_FALSE(result.outcomes[4].error.empty());
  for (const std::size_t i : {0u, 2u, 3u, 5u}) {
    EXPECT_TRUE(result.outcomes[i].ok) << result.outcomes[i].error;
    EXPECT_TRUE(result.outcomes[i].verified);
  }
  EXPECT_EQ(result.stats.total, 6u);
  EXPECT_EQ(result.stats.succeeded, 4u);
  EXPECT_EQ(result.stats.failed, 2u);
}

TEST(PlanService, TimingsAndStatsPopulated) {
  const auto requests = small_batch(5);
  PlanService service(ServiceOptions{.num_workers = 2});
  const auto result = service.run(requests);

  for (const auto& outcome : result.outcomes) {
    ASSERT_TRUE(outcome.ok) << outcome.error;
    EXPECT_GT(outcome.total_ms, 0.0);
    // Stage clocks are non-negative and bounded by end-to-end wall clock.
    EXPECT_GE(outcome.timings.tree_ms, 0.0);
    EXPECT_LE(outcome.timings.total_ms(), outcome.total_ms * 1.5 + 1.0);
    EXPECT_GT(outcome.slots, 0u);
    EXPECT_GT(outcome.num_links, 0u);
  }
  EXPECT_GT(result.stats.wall_ms, 0.0);
  EXPECT_GT(result.stats.plans_per_sec, 0.0);
  EXPECT_GE(result.stats.total_latency.p95, result.stats.total_latency.p50);
  EXPECT_GE(result.stats.total_latency.max, result.stats.total_latency.p95);
}

TEST(PlanService, KeepPlansRetainsFullResult) {
  const auto requests = small_batch(2);
  PlanService service(ServiceOptions{.num_workers = 2, .keep_plans = true});
  const auto result = service.run(requests);
  for (const auto& outcome : result.outcomes) {
    ASSERT_TRUE(outcome.ok) << outcome.error;
    ASSERT_NE(outcome.plan, nullptr);
    EXPECT_EQ(outcome.plan->schedule().length(), outcome.slots);
  }

  PlanService summary_only(ServiceOptions{.num_workers = 2});
  const auto lean = summary_only.run(requests);
  for (const auto& outcome : lean.outcomes) {
    EXPECT_EQ(outcome.plan, nullptr);
  }
}

TEST(PlanService, EmptyBatchAndReuse) {
  PlanService service(ServiceOptions{.num_workers = 2});
  const auto empty = service.run({});
  EXPECT_TRUE(empty.outcomes.empty());
  EXPECT_EQ(empty.stats.total, 0u);

  // The pool is reusable across batches.
  const auto requests = small_batch(3);
  const auto first = service.run(requests);
  const auto second = service.run(requests);
  ASSERT_EQ(first.outcomes.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(first.outcomes[i].digest, second.outcomes[i].digest);
  }
}

TEST(PlanService, ReportsQueueWaitLatency) {
  const auto requests = small_batch(8);
  // One worker: later requests must wait for earlier ones, so queue waits
  // are non-decreasing in completion order and the summary is populated.
  PlanService service(ServiceOptions{.num_workers = 1});
  const auto result = service.run(requests);
  for (const auto& outcome : result.outcomes) {
    EXPECT_GE(outcome.queue_ms, 0.0);
    EXPECT_LE(outcome.queue_ms, result.stats.wall_ms + 1.0);
  }
  // With one worker the last-picked request waited at least as long as the
  // first; the max must be strictly positive once 8 plans ran serially.
  EXPECT_GT(result.stats.queue.max, 0.0);
  EXPECT_GE(result.stats.queue.p95, result.stats.queue.p50);
  EXPECT_GE(result.stats.queue.max, result.stats.queue.p95);

  // Direct execution never queues.
  const auto direct = execute_request(requests[0], 0);
  EXPECT_DOUBLE_EQ(direct.queue_ms, 0.0);
}

TEST(ExecuteRequest, MatchesServicePath) {
  const auto requests = small_batch(3);
  PlanService service(ServiceOptions{.num_workers = 2});
  const auto batch = service.run(requests);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const auto direct = execute_request(requests[i], i);
    ASSERT_TRUE(direct.ok) << direct.error;
    EXPECT_EQ(direct.digest, batch.outcomes[i].digest);
  }
}

}  // namespace
}  // namespace wagg::runtime
