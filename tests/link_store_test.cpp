#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "dynamic/dynamic_planner.h"
#include "dynamic/mutation.h"
#include "geom/link_store.h"
#include "geom/linkset.h"
#include "sinr/feasibility.h"
#include "workload/workload.h"

namespace wagg {
namespace {

TEST(LinkStore, IdStabilityAndGenerations) {
  geom::LinkStore store;
  const auto a = store.add(0, 1, 1.0);
  const auto b = store.add(1, 2, 2.0);
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(store.num_live(), 2u);
  EXPECT_EQ(store.find_pair(1, 0), a);  // pairs are undirected
  EXPECT_EQ(store.find_pair(2, 1), b);
  EXPECT_EQ(store.find_pair(0, 2), geom::kNoLink);

  // flip: in-place orientation diff, endpoint generation advances.
  const auto endpoint_gen = store.endpoint_gen(a);
  store.flip(a);
  EXPECT_EQ(store.sender(a), 1);
  EXPECT_EQ(store.receiver(a), 0);
  EXPECT_GT(store.endpoint_gen(a), endpoint_gen);
  EXPECT_EQ(store.find_pair(0, 1), a);  // pair index unaffected

  // set_length: bit-identical refresh must NOT dirty the link.
  const auto length_gen = store.length_gen(a);
  store.set_length(a, 1.0);
  EXPECT_EQ(store.length_gen(a), length_gen);
  store.set_length(a, 1.5);
  EXPECT_GT(store.length_gen(a), length_gen);
  EXPECT_DOUBLE_EQ(store.length(a), 1.5);

  // touch: dirt without column change.
  const auto touch_gen = store.generation(b);
  store.touch(b);
  EXPECT_GT(store.generation(b), touch_gen);
  EXPECT_DOUBLE_EQ(store.length(b), 2.0);

  // remove kills the id forever; new links never reuse it.
  store.remove(a);
  EXPECT_FALSE(store.alive(a));
  EXPECT_EQ(store.find_pair(0, 1), geom::kNoLink);
  const auto c = store.add(0, 1, 1.0);
  EXPECT_EQ(c, 2);
  EXPECT_EQ(store.capacity(), 3u);

  EXPECT_THROW(store.flip(a), std::invalid_argument);       // dead id
  EXPECT_THROW(store.add(2, 1, 1.0), std::invalid_argument);  // live pair
  EXPECT_THROW(store.add(3, 3, 1.0), std::invalid_argument);  // self loop
  EXPECT_THROW(store.add(4, 5, 0.0), std::invalid_argument);  // zero length
}

/// Records every listener callback as "<event>:<id>" for order-sensitive
/// assertions.
class RecordingListener final : public geom::LinkStoreListener {
 public:
  void on_add(geom::LinkId id) override { log("add", id); }
  void on_remove(geom::LinkId id) override { log("remove", id); }
  void on_flip(geom::LinkId id) override { log("flip", id); }
  void on_set_length(geom::LinkId id) override { log("set_length", id); }
  void on_touch(geom::LinkId id) override { log("touch", id); }

  std::vector<std::string> events;

 private:
  void log(const char* what, geom::LinkId id) {
    events.push_back(std::string(what) + ":" + std::to_string(id));
  }
};

TEST(LinkStore, ListenerSeesEveryEffectiveMutation) {
  geom::LinkStore store;
  RecordingListener listener;
  store.set_listener(&listener);

  const auto a = store.add(0, 1, 1.0);
  const auto b = store.add(1, 2, 2.0);
  store.flip(a);
  store.set_length(b, 2.0);  // bit-identical: must NOT fire
  store.set_length(b, 2.5);
  store.touch(a);
  store.remove(a);
  const std::vector<std::string> expected = {
      "add:0", "add:1", "flip:0", "set_length:1", "touch:0", "remove:0"};
  EXPECT_EQ(listener.events, expected);

  // clear() notifies the removal of every still-live link.
  listener.events.clear();
  store.clear();
  EXPECT_EQ(listener.events, std::vector<std::string>{"remove:1"});

  // Detached listeners hear nothing.
  store.set_listener(nullptr);
  (void)store.add(3, 4, 1.0);
  EXPECT_EQ(listener.events, std::vector<std::string>{"remove:1"});
}

TEST(LinkStore, SnapshotIsDenseIdOrderedAndFacadeAdoptsIt) {
  geom::LinkStore store;
  (void)store.add(10, 11, 1.0);
  const auto dead = store.add(11, 13, 9.0);
  (void)store.add(12, 11, 2.0);
  store.remove(dead);

  // node id -> dense point index (nodes 10, 11, 12 -> 0, 1, 2).
  std::vector<std::int32_t> node_index(13, -1);
  node_index[10] = 0;
  node_index[11] = 1;
  node_index[12] = 2;
  geom::Pointset points{{0, 0}, {1, 0}, {1, 2}};
  const auto view = store.snapshot(points, node_index);

  ASSERT_EQ(view.size(), 2u);
  EXPECT_EQ(view.id_of(0), 0);  // increasing-id dense order
  EXPECT_EQ(view.id_of(1), 2);
  EXPECT_EQ(view.link(0).sender, 0);
  EXPECT_EQ(view.link(0).receiver, 1);
  EXPECT_EQ(view.link(1).sender, 2);
  EXPECT_EQ(view.link(1).receiver, 1);
  // Lengths are the maintained column, not recomputed geometry.
  EXPECT_DOUBLE_EQ(view.length(0), 1.0);
  EXPECT_DOUBLE_EQ(view.length(1), 2.0);

  // The LinkSet façade adopts the view verbatim.
  const geom::LinkSet facade(view);
  EXPECT_EQ(facade.size(), 2u);
  EXPECT_EQ(facade.id_of(1), 2);

  // A live link referencing an unmapped node is an error.
  std::vector<std::int32_t> missing(13, -1);
  missing[10] = 0;
  missing[11] = 1;
  EXPECT_THROW((void)store.snapshot(points, missing), std::invalid_argument);
}

/// The tentpole's correctness core: across epochs (including bulk-rebuild
/// and fallback epochs) the diff-maintained store must match a from-scratch
/// re-orientation exactly — audit mode computes both every epoch.
TEST(DynamicPlanner, StoreOrientationMatchesFullRebuildAcrossEpochs) {
  for (const std::string family : {"uniform", "cluster", "expchain"}) {
    for (const double rate : {0.02, 0.25}) {
      const auto points = workload::make_family(family, 80, 11);
      dynamic::ChurnParams params;
      params.epochs = 8;
      params.rate = rate;
      const auto trace = dynamic::make_churn_trace(points, params, 77);

      dynamic::DynamicOptions options;
      options.config = workload::mode_config(core::PowerMode::kGlobal);
      options.audit = true;
      dynamic::DynamicPlanner planner(points, options);
      EXPECT_TRUE(planner.last_report().audit_store_match) << family;
      for (const auto& epoch : trace) {
        const auto report = planner.apply(epoch);
        EXPECT_TRUE(report.audit_store_match)
            << family << " rate " << rate << " epoch " << report.epoch;
        EXPECT_TRUE(report.audit_valid)
            << family << " rate " << rate << " epoch " << report.epoch;
      }
    }
  }
}

/// Same live set => same dense order => same plan: two sessions fed the
/// identical mutation history must agree on ids, links, and schedule.
TEST(DynamicPlanner, ViewDeterminismSameHistorySamePlan) {
  const auto points = workload::make_family("noisygrid", 64, 5);
  dynamic::ChurnParams params;
  params.epochs = 6;
  params.rate = 0.08;
  const auto trace = dynamic::make_churn_trace(points, params, 3);

  dynamic::DynamicOptions options;
  options.config = workload::mode_config(core::PowerMode::kGlobal);
  dynamic::DynamicPlanner one(points, options);
  dynamic::DynamicPlanner two(points, options);
  one.apply_trace(trace);
  two.apply_trace(trace);

  const auto& a = one.snapshot();
  const auto& b = two.snapshot();
  EXPECT_EQ(a.ids, b.ids);
  ASSERT_EQ(a.links.size(), b.links.size());
  for (std::size_t i = 0; i < a.links.size(); ++i) {
    EXPECT_EQ(a.links.id_of(i), b.links.id_of(i));
    EXPECT_EQ(a.links.link(i), b.links.link(i));
    EXPECT_EQ(a.links.length(i), b.links.length(i));
  }
  EXPECT_EQ(a.schedule.slots, b.schedule.slots);
  EXPECT_DOUBLE_EQ(a.rate, b.rate);
}

TEST(DynamicPlanner, SlotPowersAreValidAndCacheCarriedSlots) {
  const auto points = workload::make_family("uniform", 96, 7);
  dynamic::ChurnParams params;
  params.epochs = 4;
  params.rate = 0.02;
  const auto trace = dynamic::make_churn_trace(points, params, 21);

  dynamic::DynamicOptions options;
  options.config = workload::mode_config(core::PowerMode::kGlobal);
  dynamic::DynamicPlanner planner(points, options);

  const auto verify_powers = [&]() {
    const auto& powers = planner.slot_powers();
    const auto& snapshot = planner.snapshot();
    ASSERT_EQ(powers.size(), snapshot.schedule.slots.size());
    for (std::size_t s = 0; s < powers.size(); ++s) {
      // Each Perron vector must satisfy the exact SINR inequalities on its
      // slot — the certificate a radio deployment would ship.
      EXPECT_TRUE(sinr::is_feasible(snapshot.links,
                                    snapshot.schedule.slots[s],
                                    options.config.sinr, powers[s], 1e-6))
          << "slot " << s;
    }
  };
  verify_powers();
  EXPECT_GT(planner.last_report().power_slots_computed, 0u);

  std::size_t cached_total = 0;
  for (const auto& epoch : trace) {
    (void)planner.apply(epoch);
    verify_powers();
    const auto& report = planner.last_report();
    cached_total += report.power_slots_cached;
    EXPECT_EQ(report.power_slots_cached + report.power_slots_computed,
              report.slots);
  }
  // Low churn carries most slots over; the membership cache must serve
  // them without fresh Perron solves.
  EXPECT_GT(cached_total, 0u);

  // Repeated materialization within an epoch is free (memoized).
  const auto before = planner.last_report().power_slots_computed;
  (void)planner.slot_powers();
  EXPECT_EQ(planner.last_report().power_slots_computed, before);
}

TEST(DynamicPlanner, SlotPowersRejectFixedPowerModes) {
  const auto points = workload::make_family("uniform", 24, 2);
  dynamic::DynamicOptions options;
  options.config = workload::mode_config(core::PowerMode::kUniform);
  dynamic::DynamicPlanner planner(points, options);
  EXPECT_THROW((void)planner.slot_powers(), std::logic_error);
}

TEST(ChurnTrace, HotspotConcentratesArrivals) {
  const auto points = workload::make_family("uniform", 200, 9);
  dynamic::ChurnParams params;
  params.epochs = 15;
  params.rate = 0.05;
  params.remove_weight = 0.0;
  params.move_weight = 0.0;
  params.hotspot_fraction = 1.0;
  params.hotspot_radius = 1.0;
  const auto trace = dynamic::make_churn_trace(points, params, 31);
  EXPECT_EQ(trace, dynamic::make_churn_trace(points, params, 31));

  std::vector<geom::Point> adds;
  for (const auto& epoch : trace) {
    for (const auto& m : epoch) {
      ASSERT_EQ(m.kind, dynamic::Mutation::Kind::kAdd);
      adds.push_back(m.position);
    }
  }
  ASSERT_GE(adds.size(), 15u);
  // Every arrival lies in one disk of radius 1, so pairwise distances are
  // bounded by its diameter — far below the ~20-unit instance box.
  for (const auto& p : adds) {
    for (const auto& q : adds) {
      EXPECT_LE(geom::distance(p, q), 2.0 + 1e-9);
    }
  }
}

TEST(ChurnTrace, WaypointDriftIsCorrelatedAndDeterministic) {
  const auto points = workload::make_family("uniform", 32, 4);
  dynamic::ChurnParams params;
  params.epochs = 30;
  params.rate = 0.2;
  params.add_weight = 0.0;
  params.remove_weight = 0.0;
  params.drift = dynamic::DriftKind::kWaypoint;
  params.waypoint_speed = 0.3;
  const auto trace = dynamic::make_churn_trace(points, params, 12);
  EXPECT_EQ(trace, dynamic::make_churn_trace(points, params, 12));

  // Replay positions and collect per-node displacement sequences.
  std::vector<geom::Point> position(points.begin(), points.end());
  std::vector<std::vector<geom::Point>> steps(points.size());
  for (const auto& epoch : trace) {
    for (const auto& m : epoch) {
      ASSERT_EQ(m.kind, dynamic::Mutation::Kind::kMove);
      const auto node = static_cast<std::size_t>(m.node);
      const auto& from = position[node];
      EXPECT_LE(geom::distance(from, m.position),
                params.waypoint_speed + 1e-9);  // bounded speed
      steps[node].push_back({m.position.x - from.x, m.position.y - from.y});
      position[node] = m.position;
    }
  }
  // Consecutive steps of one node walk toward a persistent target, so the
  // drift is positively correlated — unlike memoryless Gaussian churn.
  std::size_t correlated = 0;
  std::size_t pairs = 0;
  for (const auto& s : steps) {
    for (std::size_t k = 1; k < s.size(); ++k) {
      ++pairs;
      if (s[k - 1].x * s[k].x + s[k - 1].y * s[k].y > 0.0) ++correlated;
    }
  }
  ASSERT_GT(pairs, 10u);
  EXPECT_GT(static_cast<double>(correlated),
            0.8 * static_cast<double>(pairs));
}

TEST(WorkloadSpec, ChurnGrammarRoundTripsRealismKnobs) {
  const auto spec = workload::WorkloadSpec::parse(
      "families=uniform sizes=32 modes=global "
      "churn=epochs:5,rate:0.1,hotspot:0.75,hradius:2.5,drift:waypoint,"
      "speed:0.4,audit:1");
  EXPECT_DOUBLE_EQ(spec.churn.hotspot_fraction, 0.75);
  EXPECT_DOUBLE_EQ(spec.churn.hotspot_radius, 2.5);
  EXPECT_EQ(spec.churn.drift, dynamic::DriftKind::kWaypoint);
  EXPECT_DOUBLE_EQ(spec.churn.waypoint_speed, 0.4);
  EXPECT_TRUE(spec.churn_audit);
  EXPECT_EQ(workload::WorkloadSpec::parse(spec.to_text()), spec);

  EXPECT_THROW(workload::WorkloadSpec::parse(
                   "families=uniform sizes=32 modes=global "
                   "churn=epochs:5,drift:brownian"),
               std::invalid_argument);
  dynamic::ChurnParams bad;
  bad.epochs = 3;
  bad.hotspot_fraction = 1.5;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

/// Hotspot + waypoint churn must flow end-to-end through the incremental
/// planner with audit equivalence intact.
TEST(DynamicPlanner, RealisticChurnStaysValid) {
  const auto points = workload::make_family("uniform", 72, 13);
  dynamic::ChurnParams params;
  params.epochs = 6;
  params.rate = 0.08;
  params.hotspot_fraction = 0.7;
  params.drift = dynamic::DriftKind::kWaypoint;
  const auto trace = dynamic::make_churn_trace(points, params, 19);

  dynamic::DynamicOptions options;
  options.config = workload::mode_config(core::PowerMode::kGlobal);
  options.audit = true;
  dynamic::DynamicPlanner planner(points, options);
  for (const auto& epoch : trace) {
    const auto report = planner.apply(epoch);
    EXPECT_TRUE(report.valid) << "epoch " << report.epoch;
    EXPECT_TRUE(report.audit_valid) << "epoch " << report.epoch;
    EXPECT_TRUE(report.audit_store_match) << "epoch " << report.epoch;
  }
}

}  // namespace
}  // namespace wagg
