#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "analysis/audit.h"
#include "instance/basic.h"
#include "instance/lowerbound.h"
#include "mst/tree.h"
#include "schedule/verify.h"
#include "sinr/power.h"

namespace wagg::analysis {
namespace {

sinr::SinrParams params(double alpha = 3.0, double beta = 1.0) {
  sinr::SinrParams p;
  p.alpha = alpha;
  p.beta = beta;
  return p;
}

TEST(Audit, InfeasibilityGraphOnChain) {
  // Unit chain: adjacent links share nodes -> always pairwise infeasible;
  // far-apart links are cofeasible under uniform power with beta = 1.
  const auto tree = mst::mst_tree(instance::unit_chain(8), 0);
  const auto prm = params(3.0, 1.0);
  const auto oracle = schedule::fixed_power_oracle(
      tree.links, prm, sinr::uniform_power(tree.links, prm));
  const auto h = pairwise_infeasibility_graph(tree.links, oracle);
  EXPECT_EQ(h.num_vertices(), 7u);
  // Neighbouring chain links always conflict.
  for (std::size_t i = 0; i + 1 < 7; ++i) {
    const auto a = static_cast<std::size_t>(
        tree.links.link(i).sender);
    for (std::size_t j = i + 1; j < 7; ++j) {
      if (tree.links.shares_node(i, j)) {
        EXPECT_TRUE(h.has_edge(i, j));
      }
    }
    (void)a;
  }
  // Some pair must be cofeasible on a chain of this length.
  EXPECT_GT(count_cofeasible_pairs(tree.links, oracle), 0u);
}

TEST(Audit, CountCofeasiblePairsComplement) {
  const auto tree = mst::mst_tree(instance::unit_chain(6), 0);
  const auto prm = params(3.0, 1.0);
  const auto oracle = schedule::fixed_power_oracle(
      tree.links, prm, sinr::uniform_power(tree.links, prm));
  const auto h = pairwise_infeasibility_graph(tree.links, oracle);
  const std::size_t n = tree.links.size();
  EXPECT_EQ(count_cofeasible_pairs(tree.links, oracle) + h.num_edges(),
            n * (n - 1) / 2);
}

TEST(Audit, GreedyPackingRespectsOracleAndAnchor) {
  const auto tree = mst::mst_tree(instance::unit_chain(10), 0);
  const auto prm = params(3.0, 1.0);
  const auto oracle = schedule::fixed_power_oracle(
      tree.links, prm, sinr::uniform_power(tree.links, prm));
  const auto order = tree.links.by_decreasing_length();
  const auto packed = greedy_feasible_packing(tree.links, order, oracle,
                                              std::size_t{0});
  EXPECT_FALSE(packed.empty());
  EXPECT_EQ(packed.front(), 0u);
  EXPECT_TRUE(oracle(packed));
  // Maximality: no remaining candidate fits.
  for (std::size_t cand : order) {
    if (std::find(packed.begin(), packed.end(), cand) != packed.end()) {
      continue;
    }
    auto trial = packed;
    trial.push_back(cand);
    EXPECT_FALSE(oracle(trial)) << cand;
  }
}

TEST(Audit, ExhaustiveAnchorSearchBeatsGreedy) {
  const auto tree = mst::mst_tree(instance::unit_chain(10), 0);
  const auto prm = params(3.0, 1.0);
  const auto oracle = schedule::fixed_power_oracle(
      tree.links, prm, sinr::uniform_power(tree.links, prm));
  std::vector<std::size_t> all(tree.links.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  const auto greedy =
      greedy_feasible_packing(tree.links, all, oracle, std::size_t{0});
  const auto best = max_feasible_set_with_anchor(tree.links, all, 0, oracle);
  EXPECT_GE(best, greedy.size());
  EXPECT_GE(best, 1u);
}

TEST(Audit, ExhaustiveSearchSizeGuard) {
  const auto tree = mst::mst_tree(instance::uniform_square(30, 6.0, 1), 0);
  const auto prm = params();
  const auto oracle = schedule::fixed_power_oracle(
      tree.links, prm, sinr::uniform_power(tree.links, prm));
  std::vector<std::size_t> all(tree.links.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  EXPECT_THROW((void)max_feasible_set_with_anchor(tree.links, all, 0, oracle),
               std::invalid_argument);
}

TEST(Audit, MinSlotsLowerBoundOnCompleteConflict) {
  // Doubly-exponential chain under P_tau: every pair infeasible -> the
  // pairwise graph is complete -> lower bound = n.
  const auto chain = instance::doubly_exponential_chain(6, 0.5, 3.0, 1.0);
  const auto tree = mst::mst_tree(chain.points, 0);
  const auto prm = params(3.0, 1.0);
  const auto power = sinr::oblivious_power(tree.links, chain.tau, prm);
  const auto oracle = schedule::fixed_power_oracle(tree.links, prm, power);
  const auto bound = min_slots_lower_bound(tree.links, oracle);
  ASSERT_TRUE(bound.has_value());
  EXPECT_EQ(*bound, static_cast<int>(tree.links.size()));
}

TEST(Audit, MinSlotsLowerBoundSmallOnUniformDeployment) {
  const auto tree = mst::mst_tree(instance::uniform_square(20, 40.0, 3), 0);
  const auto prm = params(3.0, 1.0);
  const auto oracle = schedule::power_control_oracle(tree.links, prm);
  const auto bound = min_slots_lower_bound(tree.links, oracle);
  ASSERT_TRUE(bound.has_value());
  // Sparse deployment: a handful of slots suffice, so the bound is small.
  EXPECT_LE(*bound, 6);
  EXPECT_GE(*bound, 1);
}

TEST(Audit, AnchorMustBeFeasibleAlone) {
  // An oracle rejecting everything makes the anchor infeasible.
  const auto tree = mst::mst_tree(instance::unit_chain(4), 0);
  const schedule::FeasibilityOracle never =
      [](std::span<const std::size_t>) { return false; };
  std::vector<std::size_t> all{0, 1, 2};
  EXPECT_THROW(greedy_feasible_packing(tree.links, all, never, std::size_t{0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace wagg::analysis
