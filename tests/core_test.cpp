#include <gtest/gtest.h>

#include "core/baseline.h"
#include "core/planner.h"
#include "instance/basic.h"
#include "schedule/simulator.h"

namespace wagg::core {
namespace {

PlannerConfig config_for(PowerMode mode) {
  PlannerConfig cfg;
  cfg.power_mode = mode;
  cfg.sinr.alpha = 3.0;
  cfg.sinr.beta = 1.0;
  return cfg;
}

TEST(Config, Validation) {
  PlannerConfig cfg = config_for(PowerMode::kOblivious);
  cfg.tau = 0.5;
  cfg.delta = 0.75;
  EXPECT_NO_THROW(cfg.validate());
  cfg.delta = 0.4;  // must exceed max(tau, 1-tau)
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.delta = 0.75;
  cfg.tau = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = config_for(PowerMode::kGlobal);
  cfg.gamma = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(Config, SpecSelection) {
  EXPECT_EQ(spec_for_mode(config_for(PowerMode::kGlobal)).kind,
            conflict::ConflictSpec::Kind::kLogarithmic);
  EXPECT_EQ(spec_for_mode(config_for(PowerMode::kOblivious)).kind,
            conflict::ConflictSpec::Kind::kPowerLaw);
  EXPECT_EQ(spec_for_mode(config_for(PowerMode::kUniform)).kind,
            conflict::ConflictSpec::Kind::kConstant);
  EXPECT_EQ(spec_for_mode(config_for(PowerMode::kLinear)).kind,
            conflict::ConflictSpec::Kind::kConstant);
}

TEST(Config, PowerModeNames) {
  EXPECT_EQ(to_string(PowerMode::kUniform), "uniform");
  EXPECT_EQ(to_string(PowerMode::kGlobal), "global");
}

class PlanAllModes : public ::testing::TestWithParam<PowerMode> {};

TEST_P(PlanAllModes, ProducesVerifiedScheduleOnRandomInstance) {
  const auto pts = instance::uniform_square(80, 8.0, 3);
  const auto plan = plan_aggregation(pts, config_for(GetParam()));
  EXPECT_TRUE(plan.verified());
  EXPECT_TRUE(schedule::is_partition(plan.schedule(), plan.tree.links.size()));
  EXPECT_GT(plan.rate(), 0.0);
  EXPECT_EQ(plan.tree.links.size(), pts.size() - 1);
}

TEST_P(PlanAllModes, ScheduleDrivesSimulatorToCompletion) {
  const auto pts = instance::uniform_square(40, 6.0, 5);
  const auto plan = plan_aggregation(pts, config_for(GetParam()));
  schedule::SimulationConfig sim;
  sim.num_frames = 8;
  sim.generation_period = plan.schedule().length();
  const auto report =
      schedule::simulate_aggregation(plan.tree, plan.schedule(), sim);
  EXPECT_TRUE(report.all_frames_completed);
  EXPECT_TRUE(report.aggregates_correct);
  EXPECT_LE(report.max_buffer, 8u);
}

INSTANTIATE_TEST_SUITE_P(Modes, PlanAllModes,
                         ::testing::Values(PowerMode::kUniform,
                                           PowerMode::kLinear,
                                           PowerMode::kOblivious,
                                           PowerMode::kGlobal));

TEST(Plan, GlobalModeStoresSlotPowers) {
  const auto pts = instance::uniform_square(50, 6.0, 7);
  const auto plan = plan_aggregation(pts, config_for(PowerMode::kGlobal));
  EXPECT_EQ(plan.slot_powers.size(), plan.schedule().length());
  for (const auto& p : plan.slot_powers) {
    EXPECT_EQ(p.size(), plan.tree.links.size());
  }
}

TEST(Plan, RepairOffCanLeaveInfeasibleSlots) {
  // With a tiny gamma and no repair, verification should fail at least
  // sometimes; with repair it must always pass. (Deterministic instance.)
  auto cfg = config_for(PowerMode::kUniform);
  cfg.gamma = 0.05;
  cfg.repair = false;
  const auto pts = instance::uniform_square(60, 3.0, 11);
  const auto plan = plan_aggregation(pts, cfg);
  cfg.repair = true;
  const auto repaired = plan_aggregation(pts, cfg);
  EXPECT_TRUE(repaired.verified());
  EXPECT_GE(repaired.schedule().length(), plan.schedule().length());
  EXPECT_FALSE(plan.verified());  // gamma=0.05 is far below any valid constant
}

TEST(Plan, ColoringOrderAblation) {
  const auto pts = instance::uniform_square(100, 8.0, 13);
  auto cfg = config_for(PowerMode::kGlobal);
  cfg.order = ColoringOrder::kDecreasingLength;
  const auto dec = plan_aggregation(pts, cfg);
  cfg.order = ColoringOrder::kIncreasingLength;
  const auto inc = plan_aggregation(pts, cfg);
  EXPECT_TRUE(dec.verified());
  EXPECT_TRUE(inc.verified());
  // Both are valid; lengths may differ (measured in E3's ablation).
  EXPECT_GT(dec.schedule().length(), 0u);
  EXPECT_GT(inc.schedule().length(), 0u);
}

TEST(Plan, BucketedAndNaiveConflictAgreeOnScheduleLength) {
  const auto pts = instance::clustered(5, 16, 50.0, 0.5, 17);
  auto cfg = config_for(PowerMode::kOblivious);
  cfg.bucketed_conflict = true;
  const auto a = plan_aggregation(pts, cfg);
  cfg.bucketed_conflict = false;
  const auto b = plan_aggregation(pts, cfg);
  EXPECT_EQ(a.schedule().length(), b.schedule().length());
}

TEST(Plan, PairingTreeWorksEndToEnd) {
  const auto pts = instance::uniform_square(64, 8.0, 19);
  auto cfg = config_for(PowerMode::kGlobal);
  cfg.tree = TreeKind::kPairing;
  const auto plan = plan_aggregation(pts, cfg);
  EXPECT_TRUE(plan.verified());
}

TEST(Plan, Validation) {
  EXPECT_THROW(plan_aggregation({{0, 0}}, config_for(PowerMode::kGlobal)),
               std::invalid_argument);
  auto cfg = config_for(PowerMode::kGlobal);
  cfg.sink = 99;
  EXPECT_THROW(plan_aggregation(instance::unit_chain(4), cfg),
               std::invalid_argument);
}

TEST(Baseline, LevelScheduleCoversAllLinksAndVerifies) {
  const auto pts = instance::uniform_square(64, 8.0, 23);
  const auto pt = mst::pairing_tree(pts, 0);
  const auto cfg = config_for(PowerMode::kGlobal);
  const auto level = level_schedule(pt, cfg);
  EXPECT_TRUE(level.verified);
  EXPECT_TRUE(schedule::is_partition(level.schedule, pt.tree.links.size()));
  EXPECT_EQ(level.num_levels, pt.num_levels);
  EXPECT_EQ(level.slots_per_level.size(),
            static_cast<std::size_t>(pt.num_levels));
  // Level schedule length is at least the number of levels: the Omega(log n)
  // baseline behaviour.
  EXPECT_GE(level.schedule.length(),
            static_cast<std::size_t>(pt.num_levels));
}

}  // namespace
}  // namespace wagg::core
