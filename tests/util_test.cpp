#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/logmath.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace wagg::util {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, BelowIsUnbiasedEnough) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(10)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), kDraws / 10.0, kDraws * 0.01);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.03);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.03);
}

TEST(LogMath, Log2StarSmallValues) {
  EXPECT_EQ(log2_star(0.5), 0);
  EXPECT_EQ(log2_star(1.0), 0);
  EXPECT_EQ(log2_star(2.0), 1);
  EXPECT_EQ(log2_star(4.0), 2);
  EXPECT_EQ(log2_star(16.0), 3);
  EXPECT_EQ(log2_star(65536.0), 4);
  EXPECT_EQ(log2_star(1e300), 5);  // 2^65536 unreachable in doubles
}

TEST(LogMath, Log2StarOfLog2MatchesDirect) {
  for (double x : {1.5, 2.0, 10.0, 1e5, 1e300}) {
    EXPECT_EQ(log2_star_of_log2(std::log2(x)), log2_star(x)) << x;
  }
}

TEST(LogMath, Log2StarOfLog2HandlesHugeExponents) {
  // x = 2^(2^20): log2* = 1 + log2*(2^20) = 1 + (1 + log2*(20)) = ...
  EXPECT_EQ(log2_star_of_log2(std::exp2(20.0)), 1 + log2_star(std::exp2(20.0)));
}

TEST(LogMath, Log2Log2) {
  EXPECT_DOUBLE_EQ(log2_log2(2.0), 0.0);
  EXPECT_DOUBLE_EQ(log2_log2(4.0), 1.0);
  EXPECT_DOUBLE_EQ(log2_log2(16.0), 2.0);
  EXPECT_DOUBLE_EQ(log2_log2_of_log2(4.0), 2.0);
}

TEST(LogMath, Tower2) {
  EXPECT_DOUBLE_EQ(tower2(0), 1.0);
  EXPECT_DOUBLE_EQ(tower2(1), 2.0);
  EXPECT_DOUBLE_EQ(tower2(2), 4.0);
  EXPECT_DOUBLE_EQ(tower2(3), 16.0);
  EXPECT_DOUBLE_EQ(tower2(4), 65536.0);
  EXPECT_THROW(tower2(6), std::overflow_error);
  EXPECT_THROW(tower2(-1), std::invalid_argument);
}

TEST(LogMath, TowerInvertsLogStar) {
  // tower2(5) = 2^65536 exceeds double range, so only h <= 4 is testable.
  for (int h = 0; h <= 4; ++h) {
    EXPECT_EQ(log2_star(tower2(h)), h);
  }
}

TEST(LogMath, FloorCeilLog2) {
  EXPECT_EQ(floor_log2(1), 0);
  EXPECT_EQ(floor_log2(2), 1);
  EXPECT_EQ(floor_log2(3), 1);
  EXPECT_EQ(floor_log2(1024), 10);
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(1024), 10);
  EXPECT_EQ(ceil_log2(1025), 11);
}

TEST(LogMath, PowFits) {
  EXPECT_TRUE(pow_fits(2.0, 900.0));
  EXPECT_FALSE(pow_fits(2.0, 1100.0));
  EXPECT_TRUE(pow_fits(0.5, 1e9));  // base <= 1 never overflows
}

TEST(Stats, RunningStatsBasics) {
  RunningStats s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.0);
  EXPECT_DOUBLE_EQ(percentile(v, 10), 1.4);
}

TEST(Stats, PercentileValidation) {
  EXPECT_THROW(percentile({}, 50), std::invalid_argument);
  const std::vector<double> v{1.0};
  EXPECT_THROW(percentile(v, -1), std::invalid_argument);
  EXPECT_THROW(percentile(v, 101), std::invalid_argument);
  EXPECT_DOUBLE_EQ(percentile(v, 99), 1.0);
}

TEST(Stats, RegressionSlopeExact) {
  const std::vector<double> x{0, 1, 2, 3};
  const std::vector<double> y{1, 3, 5, 7};
  EXPECT_NEAR(regression_slope(x, y), 2.0, 1e-12);
}

TEST(Stats, RegressionSlopeValidation) {
  const std::vector<double> x{1.0, 1.0};
  const std::vector<double> y{1.0, 2.0};
  EXPECT_THROW(regression_slope(x, y), std::invalid_argument);  // degenerate
  const std::vector<double> one{1.0};
  EXPECT_THROW(regression_slope(one, one), std::invalid_argument);
}

TEST(Stats, SamplesQueries) {
  Samples s;
  EXPECT_TRUE(s.empty());
  for (double v : {3.0, 1.0, 2.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 2.0);
}

TEST(Table, RendersAlignedRows) {
  Table t({"name", "value"});
  t.row().cell("alpha").cell(3.0);
  t.row().cell("n").cell(std::size_t{128});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name "), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("128"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.row().cell(1).cell(2);
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, Validation) {
  EXPECT_THROW(Table({}), std::invalid_argument);
  Table t({"a"});
  EXPECT_THROW(t.cell("x"), std::logic_error);  // cell before row
  t.row().cell("1");
  EXPECT_THROW(t.cell("2"), std::logic_error);  // row wider than header
}

TEST(Table, FormatDoubleTrimsZeros) {
  EXPECT_EQ(format_double(1.5, 3), "1.5");
  EXPECT_EQ(format_double(2.0, 3), "2");
  EXPECT_EQ(format_double(0.125, 3), "0.125");
  EXPECT_EQ(format_double(0.1239, 2), "0.12");
}

}  // namespace
}  // namespace wagg::util
