#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "conflict/conflict_index.h"
#include "conflict/fgraph.h"
#include "conflict/graph.h"
#include "geom/link_store.h"
#include "geom/linkset.h"
#include "instance/basic.h"
#include "instance/lowerbound.h"
#include "mst/tree.h"
#include "util/rng.h"

namespace wagg::conflict {
namespace {

/// A ConflictIndex mirroring `links` (identity ids 0..n-1), as the planner
/// would have maintained it.
ConflictIndex index_of(const geom::LinkView& links) {
  ConflictIndex index;
  for (std::size_t i = 0; i < links.size(); ++i) {
    index.add(static_cast<geom::LinkId>(i), links.sender_pos(i),
              links.receiver_pos(i), links.length(i));
  }
  return index;
}

/// Asserts that the brute-force O(n^2) graph, the bucketed builder, the
/// one-shot subset query, and the persistent index all agree on every row.
void expect_all_builders_agree(const geom::LinkView& links,
                               const ConflictSpec& spec) {
  const auto brute = build_conflict_graph(links, spec);
  const auto bucketed = build_conflict_graph_bucketed(links, spec);
  std::vector<std::size_t> all(links.size());
  std::iota(all.begin(), all.end(), std::size_t{0});
  const auto rows = conflict_neighbors_bucketed(links, spec, all);
  const auto index = index_of(links);
  const auto index_rows = index.neighbors(links, spec, all);
  const auto index_graph = index.build_graph(links, spec);

  ASSERT_EQ(brute.num_vertices(), bucketed.num_vertices()) << spec.name();
  EXPECT_EQ(brute.num_edges(), bucketed.num_edges()) << spec.name();
  EXPECT_EQ(brute.num_edges(), index_graph.num_edges()) << spec.name();
  for (std::size_t u = 0; u < links.size(); ++u) {
    const auto expected = brute.neighbors(u);
    ASSERT_EQ(rows[u].size(), expected.size())
        << spec.name() << " query row " << u;
    ASSERT_EQ(index_rows[u].size(), expected.size())
        << spec.name() << " index row " << u;
    for (std::size_t a = 0; a < expected.size(); ++a) {
      EXPECT_EQ(rows[u][a], expected[a]) << spec.name() << " row " << u;
      EXPECT_EQ(index_rows[u][a], expected[a])
          << spec.name() << " index row " << u;
      EXPECT_TRUE(bucketed.has_edge(u, static_cast<std::size_t>(expected[a])))
          << spec.name();
    }
  }
}

TEST(Graph, EdgeBasics) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(1, 2);  // duplicate collapses
  g.finalize();
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(2, 1));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.max_degree(), 2u);
}

TEST(Graph, IndependenceCheck) {
  Graph g(4);
  g.add_edge(0, 1);
  g.finalize();
  const std::vector<std::size_t> indep{0, 2, 3};
  const std::vector<std::size_t> dep{0, 1};
  EXPECT_TRUE(g.is_independent(indep));
  EXPECT_FALSE(g.is_independent(dep));
}

TEST(Graph, Validation) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(0, 0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 5), std::out_of_range);
  g.add_edge(0, 1);
  EXPECT_THROW((void)g.has_edge(0, 1), std::logic_error);  // not finalized
}

TEST(Spec, ThresholdFunctions) {
  const auto c = ConflictSpec::constant(2.0);
  EXPECT_DOUBLE_EQ(c.f(1.0), 2.0);
  EXPECT_DOUBLE_EQ(c.f(100.0), 2.0);

  const auto p = ConflictSpec::power_law(1.5, 0.5);
  EXPECT_DOUBLE_EQ(p.f(4.0), 3.0);

  // alpha = 4 -> exponent 2/(alpha-2) = 1: f = gamma * max(1, log2 x).
  const auto l = ConflictSpec::logarithmic(1.0, 4.0);
  EXPECT_DOUBLE_EQ(l.f(2.0), 1.0);
  EXPECT_DOUBLE_EQ(l.f(16.0), 4.0);
  // alpha = 3 -> exponent 2: f = gamma * log2^2 x.
  const auto l3 = ConflictSpec::logarithmic(1.0, 3.0);
  EXPECT_DOUBLE_EQ(l3.f(16.0), 16.0);
}

TEST(Spec, Validation) {
  EXPECT_THROW(ConflictSpec::constant(0.0), std::invalid_argument);
  EXPECT_THROW(ConflictSpec::power_law(1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(ConflictSpec::logarithmic(1.0, 2.0), std::invalid_argument);
  EXPECT_THROW((void)ConflictSpec::constant(1.0).f(0.5),
               std::invalid_argument);
}

TEST(Spec, ConflictPredicateMatchesDefinition) {
  // Two unit links at distance d conflict under G_gamma iff d <= gamma.
  auto make = [](double d) {
    geom::Pointset pts{{0, 0}, {0, 1}, {d, 0}, {d, 1}};
    return geom::LinkSet(pts, {geom::Link{0, 1}, geom::Link{2, 3}});
  };
  const auto spec = ConflictSpec::constant(1.0);
  EXPECT_TRUE(spec.conflicting(make(0.99), 0, 1));
  EXPECT_TRUE(spec.conflicting(make(1.0), 0, 1));  // boundary: d <= f
  EXPECT_FALSE(spec.conflicting(make(1.01), 0, 1));
  EXPECT_FALSE(spec.conflicting(make(1.0), 0, 0));  // i == j never conflicts
}

TEST(Spec, SharedNodeAlwaysConflicts) {
  geom::Pointset pts{{0, 0}, {1, 0}, {100, 0}};
  const geom::LinkSet ls(pts, {geom::Link{0, 1}, geom::Link{1, 2}});
  for (const auto& spec :
       {ConflictSpec::constant(0.5), ConflictSpec::power_law(0.5, 0.3),
        ConflictSpec::logarithmic(0.5, 3.0)}) {
    EXPECT_TRUE(spec.conflicting(ls, 0, 1)) << spec.name();
  }
}

TEST(Spec, ConstantEdgesAreSubsetOfPowerLawEdges) {
  // With equal gamma, f_const(x) <= f_powerlaw(x) for x >= 1, so G_gamma's
  // edge set is contained in G^delta_gamma's.
  const auto pts = instance::uniform_square(80, 6.0, 21);
  const auto tree = mst::mst_tree(pts, 0);
  const auto g_const =
      build_conflict_graph(tree.links, ConflictSpec::constant(1.0));
  const auto g_pow =
      build_conflict_graph(tree.links, ConflictSpec::power_law(1.0, 0.5));
  for (std::size_t u = 0; u < tree.links.size(); ++u) {
    for (const auto v : g_const.neighbors(u)) {
      EXPECT_TRUE(g_pow.has_edge(u, static_cast<std::size_t>(v)));
    }
  }
  EXPECT_GE(g_pow.num_edges(), g_const.num_edges());
}

TEST(Builder, NaiveMatchesBruteForcePredicate) {
  const auto pts = instance::uniform_square(40, 4.0, 3);
  const auto tree = mst::mst_tree(pts, 0);
  const auto spec = ConflictSpec::power_law(1.2, 0.6);
  const auto g = build_conflict_graph(tree.links, spec);
  for (std::size_t i = 0; i < tree.links.size(); ++i) {
    for (std::size_t j = i + 1; j < tree.links.size(); ++j) {
      EXPECT_EQ(g.has_edge(i, j), spec.conflicting(tree.links, i, j));
    }
  }
}

class BucketedEqualsNaive
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(BucketedEqualsNaive, OnSeveralFamiliesAndSpecs) {
  const auto [family, seed] = GetParam();
  geom::Pointset pts;
  switch (family) {
    case 0:
      pts = instance::uniform_square(120, 8.0, seed);
      break;
    case 1:
      pts = instance::clustered(6, 20, 60.0, 0.4, seed);
      break;
    case 2:
      pts = instance::exponential_chain(16, 1.6);
      break;
    case 3:
      pts = instance::grid(10, 12, 1.0);
      break;
    default:
      FAIL();
  }
  const auto tree = mst::mst_tree(pts, 0);
  for (const auto& spec :
       {ConflictSpec::constant(1.0), ConflictSpec::constant(3.0),
        ConflictSpec::power_law(1.0, 0.5),
        ConflictSpec::logarithmic(1.0, 3.0)}) {
    const auto naive = build_conflict_graph(tree.links, spec);
    const auto bucketed = build_conflict_graph_bucketed(tree.links, spec);
    ASSERT_EQ(naive.num_vertices(), bucketed.num_vertices());
    EXPECT_EQ(naive.num_edges(), bucketed.num_edges()) << spec.name();
    for (std::size_t u = 0; u < naive.num_vertices(); ++u) {
      for (const auto v : naive.neighbors(u)) {
        EXPECT_TRUE(bucketed.has_edge(u, static_cast<std::size_t>(v)))
            << spec.name() << " missing edge " << u << "-" << v;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, BucketedEqualsNaive,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(1ULL, 7ULL, 13ULL)));

TEST(SubsetQuery, RowsMatchFullGraphAcrossSpecs) {
  // conflict_neighbors_bucketed must return exactly the full graph's rows
  // for any query subset — it is the incremental planner's replacement for
  // a full rebuild.
  const auto pts = instance::uniform_square(90, 7.0, 5);
  const auto tree = mst::mst_tree(pts, 0);
  std::vector<std::size_t> queries;
  for (std::size_t i = 0; i < tree.links.size(); i += 3) queries.push_back(i);
  for (const auto& spec :
       {ConflictSpec::constant(2.0), ConflictSpec::power_law(1.0, 0.6),
        ConflictSpec::logarithmic(2.0, 3.0)}) {
    const auto full = build_conflict_graph(tree.links, spec);
    const auto rows = conflict_neighbors_bucketed(tree.links, spec, queries);
    ASSERT_EQ(rows.size(), queries.size());
    for (std::size_t k = 0; k < queries.size(); ++k) {
      const auto expected = full.neighbors(queries[k]);
      ASSERT_EQ(rows[k].size(), expected.size())
          << spec.name() << " row " << queries[k];
      for (std::size_t a = 0; a < expected.size(); ++a) {
        EXPECT_EQ(rows[k][a], expected[a])
            << spec.name() << " row " << queries[k];
      }
    }
  }
}

TEST(SubsetQuery, EmptyAndDegenerate) {
  const auto pts = instance::uniform_square(10, 3.0, 2);
  const auto tree = mst::mst_tree(pts, 0);
  const auto spec = ConflictSpec::constant(1.0);
  EXPECT_TRUE(conflict_neighbors_bucketed(tree.links, spec, {}).empty());
  const geom::LinkSet empty;
  const std::vector<std::size_t> none;
  EXPECT_TRUE(conflict_neighbors_bucketed(empty, spec, none).empty());
}

TEST(Builder, ExtremeScalesDoNotOverflow) {
  // Doubly-exponential chain: lengths spanning hundreds of orders of
  // magnitude must not break the predicate or the builders.
  const auto chain = instance::doubly_exponential_chain(8, 0.5, 3.0, 1.0);
  const auto tree = mst::mst_tree(chain.points, 0);
  for (const auto& spec :
       {ConflictSpec::constant(1.0), ConflictSpec::power_law(1.0, 0.5),
        ConflictSpec::logarithmic(1.0, 3.0)}) {
    const auto g = build_conflict_graph(tree.links, spec);
    EXPECT_EQ(g.num_vertices(), tree.links.size());
    const auto gb = build_conflict_graph_bucketed(tree.links, spec);
    EXPECT_EQ(g.num_edges(), gb.num_edges()) << spec.name();
  }
}

/// Regression for the exact-boundary tie guard: construct pairs whose
/// distance equals the conflict threshold lmin * f(lmax / lmin) EXACTLY (in
/// double arithmetic) and require graph membership to agree across the
/// brute-force predicate, the bucketed builder, the subset query, and the
/// persistent index. Before the guards were unified the builder padded its
/// candidate radius with 1e-12 * l_longer while the query padded with
/// 1e-12 * max(l_query, class_hi): a threshold pair could land in one
/// candidate set but not the other, making the built graph disagree with
/// the queried rows.
TEST(Boundary, ExactThresholdPairsAgreeEverywhere) {
  struct Case {
    ConflictSpec spec;
    geom::Pointset points;
    std::vector<geom::Link> links;
  };
  const std::vector<Case> cases = {
      // G_gamma, gamma = 1: unit links at horizontal distance exactly 1.
      {ConflictSpec::constant(1.0),
       {{0, 0}, {0, 1}, {1, 0}, {1, 1}, {5, 0}, {5, 1}},
       {{0, 1}, {2, 3}, {4, 5}}},
      // Huge gamma: the conflict radius is ~1e6x the link scale, so any
      // absolute tie slack vanishes below one ulp of the radius — the
      // distance-pruned index path needs relative slack to keep the
      // threshold pair.
      {ConflictSpec::constant(1048576.0),
       {{0, 0}, {0, 1}, {1048576, 0}, {1048576, 1}, {9000000, 0},
        {9000000, 1}},
       {{0, 1}, {2, 3}, {4, 5}}},
      // G^delta, gamma = 1, delta = 0.5: lengths 1 and 4, threshold
      // 1 * f(4) = sqrt(4) = 2, distance exactly 2.
      {ConflictSpec::power_law(1.0, 0.5),
       {{0, 0}, {0, 1}, {2, 0}, {2, 4}, {16, 0}, {16, 4}},
       {{0, 1}, {2, 3}, {4, 5}}},
      // G_log, gamma = 1, alpha = 4: f(x) = max(1, log2 x), lengths 1 and
      // 4, threshold 1 * f(4) = 2, distance exactly 2.
      {ConflictSpec::logarithmic(1.0, 4.0),
       {{0, 0}, {0, 1}, {2, 0}, {2, 4}, {32, 0}, {32, 4}},
       {{0, 1}, {2, 3}, {4, 5}}},
  };
  for (const auto& c : cases) {
    const geom::LinkSet links(c.points, c.links);
    // The constructed boundary pair must actually sit on the threshold.
    ASSERT_TRUE(c.spec.conflicting(links, 0, 1)) << c.spec.name();
    expect_all_builders_agree(links, c.spec);
  }
}

/// Mirrors planner wiring: a LinkStore with an attached listener keeps a
/// ConflictIndex in sync through adds, removes, endpoint moves (set_length +
/// touch), and flips; after every step the index must answer every row
/// exactly like a from-scratch bucketed query and the brute-force graph.
class StoreIndexBridge final : public geom::LinkStoreListener {
 public:
  StoreIndexBridge(const geom::Pointset& points, const geom::LinkStore& store,
                   ConflictIndex& index)
      : points_(points), store_(store), index_(index) {}

  void on_add(geom::LinkId id) override {
    index_.add(id, points_[static_cast<std::size_t>(store_.sender(id))],
               points_[static_cast<std::size_t>(store_.receiver(id))],
               store_.length(id));
  }
  void on_remove(geom::LinkId id) override { index_.remove(id); }
  void on_flip(geom::LinkId) override {}
  void on_set_length(geom::LinkId id) override {
    index_.update(id, points_[static_cast<std::size_t>(store_.sender(id))],
                  points_[static_cast<std::size_t>(store_.receiver(id))],
                  store_.length(id));
  }
  void on_touch(geom::LinkId id) override { on_set_length(id); }

 private:
  const geom::Pointset& points_;
  const geom::LinkStore& store_;
  ConflictIndex& index_;
};

TEST(ConflictIndex, RandomizedChurnMatchesFromScratch) {
  util::Rng rng(2024);
  geom::Pointset points;
  for (int i = 0; i < 28; ++i) {
    points.push_back({rng.uniform(0.0, 9.0), rng.uniform(0.0, 9.0)});
  }
  geom::LinkStore store;
  ConflictIndex index;
  StoreIndexBridge bridge(points, store, index);
  store.set_listener(&bridge);

  std::vector<std::int32_t> node_index(points.size());
  std::iota(node_index.begin(), node_index.end(), 0);
  const auto specs = {ConflictSpec::constant(2.0),
                      ConflictSpec::power_law(1.0, 0.6),
                      ConflictSpec::logarithmic(2.0, 3.0)};

  const auto random_node = [&] {
    return static_cast<std::int32_t>(rng.below(points.size()));
  };
  // Seed some links, then churn: add / remove / move with equal odds.
  for (int step = 0; step < 120; ++step) {
    const int op = step < 24 ? 0 : static_cast<int>(rng.below(3));
    if (op == 0) {
      const auto a = random_node();
      const auto b = random_node();
      if (a != b && store.find_pair(a, b) == geom::kNoLink) {
        store.add(a, b,
                  geom::distance(points[static_cast<std::size_t>(a)],
                                 points[static_cast<std::size_t>(b)]));
      }
    } else if (op == 1 && store.num_live() > 4) {
      const auto ids = store.live_ids();
      store.remove(ids[rng.below(ids.size())]);
    } else if (op == 2) {
      // Move a node: refresh every incident link the way the planner does
      // (length column + unconditional touch).
      const auto v = random_node();
      auto& p = points[static_cast<std::size_t>(v)];
      p = {p.x + rng.normal() * 0.7, p.y + rng.normal() * 0.7};
      for (const auto id : store.live_ids()) {
        if (store.sender(id) != v && store.receiver(id) != v) continue;
        store.set_length(
            id, geom::distance(
                    points[static_cast<std::size_t>(store.sender(id))],
                    points[static_cast<std::size_t>(store.receiver(id))]));
        store.touch(id);
      }
    }
    if (step % 2 == 1 && rng.below(2) == 0 && store.num_live() > 0) {
      // Orientation flips must be index no-ops.
      const auto ids = store.live_ids();
      store.flip(ids[rng.below(ids.size())]);
    }

    ASSERT_EQ(index.size(), store.num_live()) << "step " << step;
    if (step % 4 != 3) continue;
    const auto view = store.snapshot(points, node_index);
    std::vector<std::size_t> all(view.size());
    std::iota(all.begin(), all.end(), std::size_t{0});
    for (const auto& spec : specs) {
      const auto index_rows = index.neighbors(view, spec, all);
      const auto scratch_rows = conflict_neighbors_bucketed(view, spec, all);
      EXPECT_EQ(index_rows, scratch_rows)
          << spec.name() << " step " << step;
      const auto brute = build_conflict_graph(view, spec);
      for (std::size_t u = 0; u < view.size(); ++u) {
        const auto expected = brute.neighbors(u);
        ASSERT_EQ(index_rows[u].size(), expected.size())
            << spec.name() << " step " << step << " row " << u;
        for (std::size_t a = 0; a < expected.size(); ++a) {
          EXPECT_EQ(index_rows[u][a], expected[a])
              << spec.name() << " step " << step << " row " << u;
        }
      }
    }
  }
  store.set_listener(nullptr);
}

TEST(ConflictIndex, RejectsBadMutations) {
  ConflictIndex index;
  index.add(0, {0, 0}, {0, 1}, 1.0);
  EXPECT_THROW(index.add(0, {1, 0}, {1, 1}, 1.0), std::invalid_argument);
  EXPECT_THROW(index.add(-1, {1, 0}, {1, 1}, 1.0), std::invalid_argument);
  EXPECT_THROW(index.add(1, {1, 0}, {1, 1}, 0.0), std::invalid_argument);
  EXPECT_THROW(index.remove(7), std::invalid_argument);
  EXPECT_THROW(index.update(7, {0, 0}, {0, 1}, 1.0), std::invalid_argument);
  index.remove(0);
  EXPECT_THROW(index.remove(0), std::invalid_argument);
  EXPECT_EQ(index.size(), 0u);
}

TEST(ConflictIndex, LazyReclassOnlyWhenClassChanges) {
  ConflictIndex index;
  index.add(0, {0, 0}, {0, 1.5}, 1.5);   // class [1, 2)
  index.add(1, {3, 0}, {3, 1.2}, 1.2);   // class [1, 2)
  EXPECT_EQ(index.num_classes(), 1u);
  EXPECT_EQ(index.stats().reclasses, 0u);
  // In-class geometry refresh: no re-class.
  index.update(0, {0, 0}, {0, 1.9}, 1.9);
  EXPECT_EQ(index.stats().reclasses, 0u);
  EXPECT_EQ(index.num_classes(), 1u);
  // Crossing the power-of-two boundary moves the link to a new grid.
  index.update(0, {0, 0}, {0, 2.5}, 2.5);
  EXPECT_EQ(index.stats().reclasses, 1u);
  EXPECT_EQ(index.num_classes(), 2u);
  // Shrinking back empties and drops the [2, 4) grid.
  index.update(0, {0, 0}, {0, 1.0}, 1.0);
  EXPECT_EQ(index.stats().reclasses, 2u);
  EXPECT_EQ(index.num_classes(), 1u);
}

/// Randomized cache-equivalence harness: a single fixed spec keeps the row
/// cache live across mutation batches (the multi-spec churn test above
/// flushes on every spec rotation, so diff-patched rows there are never the
/// ones verified). Here every batch is followed by TWO full-row queries —
/// the first may mix cached (diff-patched) and recomputed rows, the second
/// is served entirely from the cache — and both must equal the from-scratch
/// bucketed rows. Moves use large jumps so lengths cross [2^c, 2^(c+1))
/// class boundaries, exercising the re-class erase/insert patch path.
TEST(ConflictIndex, RowCacheStaysExactUnderListenerChurn) {
  util::Rng rng(4096);
  geom::Pointset points;
  for (int i = 0; i < 24; ++i) {
    points.push_back({rng.uniform(0.0, 8.0), rng.uniform(0.0, 8.0)});
  }
  geom::LinkStore store;
  ConflictIndex index;
  StoreIndexBridge bridge(points, store, index);
  store.set_listener(&bridge);

  std::vector<std::int32_t> node_index(points.size());
  std::iota(node_index.begin(), node_index.end(), 0);
  const auto spec = ConflictSpec::power_law(1.0, 0.6);

  const auto random_node = [&] {
    return static_cast<std::int32_t>(rng.below(points.size()));
  };
  for (int step = 0; step < 80; ++step) {
    const int op = step < 20 ? 0 : static_cast<int>(rng.below(3));
    if (op == 0) {
      const auto a = random_node();
      const auto b = random_node();
      if (a != b && store.find_pair(a, b) == geom::kNoLink) {
        store.add(a, b,
                  geom::distance(points[static_cast<std::size_t>(a)],
                                 points[static_cast<std::size_t>(b)]));
      }
    } else if (op == 1 && store.num_live() > 4) {
      const auto ids = store.live_ids();
      store.remove(ids[rng.below(ids.size())]);
    } else if (op == 2) {
      // Large jumps: incident link lengths routinely cross power-of-two
      // class boundaries, so cached rows survive re-class updates too.
      const auto v = random_node();
      auto& p = points[static_cast<std::size_t>(v)];
      p = {p.x + rng.normal() * 2.5, p.y + rng.normal() * 2.5};
      for (const auto id : store.live_ids()) {
        if (store.sender(id) != v && store.receiver(id) != v) continue;
        store.set_length(
            id, geom::distance(
                    points[static_cast<std::size_t>(store.sender(id))],
                    points[static_cast<std::size_t>(store.receiver(id))]));
        store.touch(id);
      }
    }
    if (step % 3 == 2 && store.num_live() > 0) {
      const auto ids = store.live_ids();
      store.flip(ids[rng.below(ids.size())]);
    }

    const auto view = store.snapshot(points, node_index);
    std::vector<std::size_t> all(view.size());
    std::iota(all.begin(), all.end(), std::size_t{0});
    const auto scratch_rows = conflict_neighbors_bucketed(view, spec, all);
    const auto index_rows = index.neighbors(view, spec, all);
    ASSERT_EQ(index_rows, scratch_rows) << "step " << step;
    // Second query: every row served from the cache must still be exact.
    const auto cached_rows = index.neighbors(view, spec, all);
    ASSERT_EQ(cached_rows, scratch_rows) << "step " << step;
    // neighbors() short-circuits (and caches nothing) below 2 live links.
    if (store.num_live() >= 2) {
      EXPECT_EQ(index.rows_cached(), store.num_live()) << "step " << step;
    }
  }
  store.set_listener(nullptr);

  // The trace must have exercised every maintenance path, and the counter
  // identity hits + misses == rows_queried must hold exactly.
  const auto stats = index.stats();
  EXPECT_GT(stats.reclasses, 0u);
  EXPECT_GT(stats.row_cache_patches, 0u);
  EXPECT_GT(stats.row_cache_hits, 0u);
  EXPECT_GT(stats.row_cache_misses, 0u);
  EXPECT_EQ(stats.row_cache_hits + stats.row_cache_misses,
            stats.rows_queried);
}

TEST(ConflictIndex, RowCacheCountersAndHitPath) {
  const geom::Pointset points = {{0, 0}, {0, 1}, {1, 0}, {1, 1},
                                 {4, 0}, {4, 1}, {5, 0}, {5, 1}};
  const geom::LinkSet links(
      points, {geom::Link{0, 1}, geom::Link{2, 3}, geom::Link{4, 5},
               geom::Link{6, 7}});
  auto index = index_of(links);
  const auto spec = ConflictSpec::constant(2.0);
  std::vector<std::size_t> all(links.size());
  std::iota(all.begin(), all.end(), std::size_t{0});

  const auto first = index.neighbors(links, spec, all);
  auto stats = index.stats();
  EXPECT_EQ(stats.row_cache_misses, links.size());
  EXPECT_EQ(stats.row_cache_hits, 0u);
  EXPECT_EQ(index.rows_cached(), links.size());

  const auto second = index.neighbors(links, spec, all);
  EXPECT_EQ(second, first);
  stats = index.stats();
  EXPECT_EQ(stats.row_cache_hits, links.size());
  EXPECT_EQ(stats.row_cache_misses, links.size());
  EXPECT_EQ(stats.row_cache_hits + stats.row_cache_misses,
            stats.rows_queried);
}

TEST(ConflictIndex, SpecChangeFlushesCachedRows) {
  const auto tree = mst::mst_tree(instance::uniform_square(24, 6.0, 11), 0);
  const auto& links = tree.links;
  auto index = index_of(links);
  std::vector<std::size_t> all(links.size());
  std::iota(all.begin(), all.end(), std::size_t{0});

  const auto spec_a = ConflictSpec::constant(2.0);
  const auto spec_b = ConflictSpec::power_law(1.0, 0.5);
  (void)index.neighbors(links, spec_a, all);
  ASSERT_EQ(index.rows_cached(), links.size());

  // A different spec must flush every cached row, then answer exactly.
  const auto rows_b = index.neighbors(links, spec_b, all);
  EXPECT_EQ(rows_b, conflict_neighbors_bucketed(links, spec_b, all));
  const auto stats = index.stats();
  EXPECT_GE(stats.row_cache_invalidations, links.size());
  // Every row under spec_b was a miss (nothing cached for it survived).
  EXPECT_EQ(stats.row_cache_misses, 2 * links.size());
}

/// A tiny entry cap forces LRU sweeps mid-run; evicted rows recompute on
/// the next query, so answers stay exact. Cap 0 disables caching entirely.
TEST(ConflictIndex, EvictionCapKeepsRowsExactAndCapZeroDisables) {
  const auto tree = mst::mst_tree(instance::uniform_square(40, 4.0, 23), 0);
  const auto& links = tree.links;
  auto index = index_of(links);
  const auto spec = ConflictSpec::constant(2.0);
  std::vector<std::size_t> all(links.size());
  std::iota(all.begin(), all.end(), std::size_t{0});

  const auto scratch = conflict_neighbors_bucketed(links, spec, all);
  index.set_row_cache_entry_cap(8);  // far below the total row mass
  for (int pass = 0; pass < 3; ++pass) {
    EXPECT_EQ(index.neighbors(links, spec, all), scratch) << pass;
  }
  EXPECT_GT(index.stats().row_cache_evictions, 0u);

  index.set_row_cache_entry_cap(0);
  EXPECT_EQ(index.rows_cached(), 0u);
  EXPECT_EQ(index.neighbors(links, spec, all), scratch);
  EXPECT_EQ(index.rows_cached(), 0u);  // cap 0: nothing materializes
}

/// clear() (the reconcile_full path) must drop every cached row: a re-seed
/// with different geometry under the same ids would otherwise serve stale
/// rows from before the wipe.
TEST(ConflictIndex, ClearDropsCachedRowsBeforeReseed) {
  const geom::Pointset before = {{0, 0}, {0, 1}, {0.5, 0}, {0.5, 1}};
  const geom::LinkSet links_before(before,
                                   {geom::Link{0, 1}, geom::Link{2, 3}});
  auto index = index_of(links_before);
  const auto spec = ConflictSpec::constant(1.0);
  std::vector<std::size_t> all = {0, 1};
  // Warm the cache: the two parallel unit links conflict.
  ASSERT_EQ(index.neighbors(links_before, spec, all),
            conflict_neighbors_bucketed(links_before, spec, all));
  ASSERT_EQ(index.rows_cached(), 2u);

  index.clear();
  EXPECT_EQ(index.rows_cached(), 0u);
  EXPECT_GE(index.stats().row_cache_invalidations, 2u);

  // Re-seed same ids, far-apart geometry: rows must reflect the new world.
  const geom::Pointset after = {{0, 0}, {0, 1}, {50, 0}, {50, 1}};
  const geom::LinkSet links_after(after,
                                  {geom::Link{0, 1}, geom::Link{2, 3}});
  for (std::size_t i = 0; i < links_after.size(); ++i) {
    index.add(static_cast<geom::LinkId>(i), links_after.sender_pos(i),
              links_after.receiver_pos(i), links_after.length(i));
  }
  const auto rows = index.neighbors(links_after, spec, all);
  EXPECT_EQ(rows, conflict_neighbors_bucketed(links_after, spec, all));
  EXPECT_TRUE(rows[0].empty());
  EXPECT_TRUE(rows[1].empty());
}

/// Huge-extent instance: cell coordinates exceed 32 bits, where the old
/// `(x << 32) ^ (y & 0xffffffff)` cell key silently aliased distant cells
/// onto one bucket. Results must stay exact (aliasing only ever inflated
/// candidate lists, so this doubles as a determinism check on the new
/// full-width key mix).
TEST(Builder, HugeExtentCoordinatesStayExact) {
  geom::Pointset points;
  std::vector<geom::Link> link_specs;
  // Four far-separated clusters of two parallel unit links (cell size ~1 ->
  // cluster offsets of 2^33 and 3 * 2^32 put cell coords far past 32 bits).
  const double offsets[] = {0.0, 8589934592.0, 12884901888.0, 25769803776.0};
  for (const double ox : offsets) {
    const auto base = static_cast<std::int32_t>(points.size());
    points.push_back({ox, 0.0});
    points.push_back({ox, 1.0});
    points.push_back({ox + 0.5, 0.0});
    points.push_back({ox + 0.5, 1.0});
    link_specs.push_back({base, base + 1});
    link_specs.push_back({base + 2, base + 3});
  }
  const geom::LinkSet links(points, link_specs);
  for (const auto& spec :
       {ConflictSpec::constant(1.0), ConflictSpec::power_law(1.0, 0.5),
        ConflictSpec::logarithmic(1.0, 3.0)}) {
    expect_all_builders_agree(links, spec);
    // Each cluster's pair conflicts; clusters are light-years apart.
    const auto g = build_conflict_graph_bucketed(links, spec);
    EXPECT_EQ(g.num_edges(), 4u) << spec.name();
  }
}

TEST(Builder, EmptyAndSingle) {
  geom::Pointset pts{{0, 0}, {1, 0}};
  const geom::LinkSet single(pts, {geom::Link{0, 1}});
  const auto spec = ConflictSpec::constant(1.0);
  EXPECT_EQ(build_conflict_graph_bucketed(single, spec).num_edges(), 0u);
  const geom::LinkSet empty(pts, {});
  EXPECT_EQ(build_conflict_graph_bucketed(empty, spec).num_vertices(), 0u);
}

}  // namespace
}  // namespace wagg::conflict
