#include <gtest/gtest.h>

#include <cmath>

#include "conflict/fgraph.h"
#include "conflict/graph.h"
#include "geom/linkset.h"
#include "instance/basic.h"
#include "instance/lowerbound.h"
#include "mst/tree.h"

namespace wagg::conflict {
namespace {

TEST(Graph, EdgeBasics) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(1, 2);  // duplicate collapses
  g.finalize();
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(2, 1));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.max_degree(), 2u);
}

TEST(Graph, IndependenceCheck) {
  Graph g(4);
  g.add_edge(0, 1);
  g.finalize();
  const std::vector<std::size_t> indep{0, 2, 3};
  const std::vector<std::size_t> dep{0, 1};
  EXPECT_TRUE(g.is_independent(indep));
  EXPECT_FALSE(g.is_independent(dep));
}

TEST(Graph, Validation) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(0, 0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 5), std::out_of_range);
  g.add_edge(0, 1);
  EXPECT_THROW((void)g.has_edge(0, 1), std::logic_error);  // not finalized
}

TEST(Spec, ThresholdFunctions) {
  const auto c = ConflictSpec::constant(2.0);
  EXPECT_DOUBLE_EQ(c.f(1.0), 2.0);
  EXPECT_DOUBLE_EQ(c.f(100.0), 2.0);

  const auto p = ConflictSpec::power_law(1.5, 0.5);
  EXPECT_DOUBLE_EQ(p.f(4.0), 3.0);

  // alpha = 4 -> exponent 2/(alpha-2) = 1: f = gamma * max(1, log2 x).
  const auto l = ConflictSpec::logarithmic(1.0, 4.0);
  EXPECT_DOUBLE_EQ(l.f(2.0), 1.0);
  EXPECT_DOUBLE_EQ(l.f(16.0), 4.0);
  // alpha = 3 -> exponent 2: f = gamma * log2^2 x.
  const auto l3 = ConflictSpec::logarithmic(1.0, 3.0);
  EXPECT_DOUBLE_EQ(l3.f(16.0), 16.0);
}

TEST(Spec, Validation) {
  EXPECT_THROW(ConflictSpec::constant(0.0), std::invalid_argument);
  EXPECT_THROW(ConflictSpec::power_law(1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(ConflictSpec::logarithmic(1.0, 2.0), std::invalid_argument);
  EXPECT_THROW((void)ConflictSpec::constant(1.0).f(0.5),
               std::invalid_argument);
}

TEST(Spec, ConflictPredicateMatchesDefinition) {
  // Two unit links at distance d conflict under G_gamma iff d <= gamma.
  auto make = [](double d) {
    geom::Pointset pts{{0, 0}, {0, 1}, {d, 0}, {d, 1}};
    return geom::LinkSet(pts, {geom::Link{0, 1}, geom::Link{2, 3}});
  };
  const auto spec = ConflictSpec::constant(1.0);
  EXPECT_TRUE(spec.conflicting(make(0.99), 0, 1));
  EXPECT_TRUE(spec.conflicting(make(1.0), 0, 1));  // boundary: d <= f
  EXPECT_FALSE(spec.conflicting(make(1.01), 0, 1));
  EXPECT_FALSE(spec.conflicting(make(1.0), 0, 0));  // i == j never conflicts
}

TEST(Spec, SharedNodeAlwaysConflicts) {
  geom::Pointset pts{{0, 0}, {1, 0}, {100, 0}};
  const geom::LinkSet ls(pts, {geom::Link{0, 1}, geom::Link{1, 2}});
  for (const auto& spec :
       {ConflictSpec::constant(0.5), ConflictSpec::power_law(0.5, 0.3),
        ConflictSpec::logarithmic(0.5, 3.0)}) {
    EXPECT_TRUE(spec.conflicting(ls, 0, 1)) << spec.name();
  }
}

TEST(Spec, ConstantEdgesAreSubsetOfPowerLawEdges) {
  // With equal gamma, f_const(x) <= f_powerlaw(x) for x >= 1, so G_gamma's
  // edge set is contained in G^delta_gamma's.
  const auto pts = instance::uniform_square(80, 6.0, 21);
  const auto tree = mst::mst_tree(pts, 0);
  const auto g_const =
      build_conflict_graph(tree.links, ConflictSpec::constant(1.0));
  const auto g_pow =
      build_conflict_graph(tree.links, ConflictSpec::power_law(1.0, 0.5));
  for (std::size_t u = 0; u < tree.links.size(); ++u) {
    for (const auto v : g_const.neighbors(u)) {
      EXPECT_TRUE(g_pow.has_edge(u, static_cast<std::size_t>(v)));
    }
  }
  EXPECT_GE(g_pow.num_edges(), g_const.num_edges());
}

TEST(Builder, NaiveMatchesBruteForcePredicate) {
  const auto pts = instance::uniform_square(40, 4.0, 3);
  const auto tree = mst::mst_tree(pts, 0);
  const auto spec = ConflictSpec::power_law(1.2, 0.6);
  const auto g = build_conflict_graph(tree.links, spec);
  for (std::size_t i = 0; i < tree.links.size(); ++i) {
    for (std::size_t j = i + 1; j < tree.links.size(); ++j) {
      EXPECT_EQ(g.has_edge(i, j), spec.conflicting(tree.links, i, j));
    }
  }
}

class BucketedEqualsNaive
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(BucketedEqualsNaive, OnSeveralFamiliesAndSpecs) {
  const auto [family, seed] = GetParam();
  geom::Pointset pts;
  switch (family) {
    case 0:
      pts = instance::uniform_square(120, 8.0, seed);
      break;
    case 1:
      pts = instance::clustered(6, 20, 60.0, 0.4, seed);
      break;
    case 2:
      pts = instance::exponential_chain(16, 1.6);
      break;
    case 3:
      pts = instance::grid(10, 12, 1.0);
      break;
    default:
      FAIL();
  }
  const auto tree = mst::mst_tree(pts, 0);
  for (const auto& spec :
       {ConflictSpec::constant(1.0), ConflictSpec::constant(3.0),
        ConflictSpec::power_law(1.0, 0.5),
        ConflictSpec::logarithmic(1.0, 3.0)}) {
    const auto naive = build_conflict_graph(tree.links, spec);
    const auto bucketed = build_conflict_graph_bucketed(tree.links, spec);
    ASSERT_EQ(naive.num_vertices(), bucketed.num_vertices());
    EXPECT_EQ(naive.num_edges(), bucketed.num_edges()) << spec.name();
    for (std::size_t u = 0; u < naive.num_vertices(); ++u) {
      for (const auto v : naive.neighbors(u)) {
        EXPECT_TRUE(bucketed.has_edge(u, static_cast<std::size_t>(v)))
            << spec.name() << " missing edge " << u << "-" << v;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, BucketedEqualsNaive,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(1ULL, 7ULL, 13ULL)));

TEST(SubsetQuery, RowsMatchFullGraphAcrossSpecs) {
  // conflict_neighbors_bucketed must return exactly the full graph's rows
  // for any query subset — it is the incremental planner's replacement for
  // a full rebuild.
  const auto pts = instance::uniform_square(90, 7.0, 5);
  const auto tree = mst::mst_tree(pts, 0);
  std::vector<std::size_t> queries;
  for (std::size_t i = 0; i < tree.links.size(); i += 3) queries.push_back(i);
  for (const auto& spec :
       {ConflictSpec::constant(2.0), ConflictSpec::power_law(1.0, 0.6),
        ConflictSpec::logarithmic(2.0, 3.0)}) {
    const auto full = build_conflict_graph(tree.links, spec);
    const auto rows = conflict_neighbors_bucketed(tree.links, spec, queries);
    ASSERT_EQ(rows.size(), queries.size());
    for (std::size_t k = 0; k < queries.size(); ++k) {
      const auto expected = full.neighbors(queries[k]);
      ASSERT_EQ(rows[k].size(), expected.size())
          << spec.name() << " row " << queries[k];
      for (std::size_t a = 0; a < expected.size(); ++a) {
        EXPECT_EQ(rows[k][a], expected[a])
            << spec.name() << " row " << queries[k];
      }
    }
  }
}

TEST(SubsetQuery, EmptyAndDegenerate) {
  const auto pts = instance::uniform_square(10, 3.0, 2);
  const auto tree = mst::mst_tree(pts, 0);
  const auto spec = ConflictSpec::constant(1.0);
  EXPECT_TRUE(conflict_neighbors_bucketed(tree.links, spec, {}).empty());
  const geom::LinkSet empty;
  const std::vector<std::size_t> none;
  EXPECT_TRUE(conflict_neighbors_bucketed(empty, spec, none).empty());
}

TEST(Builder, ExtremeScalesDoNotOverflow) {
  // Doubly-exponential chain: lengths spanning hundreds of orders of
  // magnitude must not break the predicate or the builders.
  const auto chain = instance::doubly_exponential_chain(8, 0.5, 3.0, 1.0);
  const auto tree = mst::mst_tree(chain.points, 0);
  for (const auto& spec :
       {ConflictSpec::constant(1.0), ConflictSpec::power_law(1.0, 0.5),
        ConflictSpec::logarithmic(1.0, 3.0)}) {
    const auto g = build_conflict_graph(tree.links, spec);
    EXPECT_EQ(g.num_vertices(), tree.links.size());
    const auto gb = build_conflict_graph_bucketed(tree.links, spec);
    EXPECT_EQ(g.num_edges(), gb.num_edges()) << spec.name();
  }
}

TEST(Builder, EmptyAndSingle) {
  geom::Pointset pts{{0, 0}, {1, 0}};
  const geom::LinkSet single(pts, {geom::Link{0, 1}});
  const auto spec = ConflictSpec::constant(1.0);
  EXPECT_EQ(build_conflict_graph_bucketed(single, spec).num_edges(), 0u);
  const geom::LinkSet empty(pts, {});
  EXPECT_EQ(build_conflict_graph_bucketed(empty, spec).num_vertices(), 0u);
}

}  // namespace
}  // namespace wagg::conflict
