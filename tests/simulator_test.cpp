#include <gtest/gtest.h>

#include "instance/basic.h"
#include "instance/special.h"
#include "mst/mst.h"
#include "mst/tree.h"
#include "schedule/schedule.h"
#include "schedule/simulator.h"

namespace wagg::schedule {
namespace {

/// The Fig 1 tree, oriented at the sink, plus its 2-slot schedule with the
/// link indices remapped to the oriented tree's numbering.
struct Fig1Setup {
  mst::AggregationTree tree;
  Schedule schedule;
};

Fig1Setup fig1_setup() {
  const auto inst = instance::fig1_instance();
  // Nodes: a=0, b=1, c=2, d=3, sink=4; tree edges as in the paper.
  const std::vector<mst::Edge> edges{{0, 2}, {1, 3}, {2, 4}, {3, 4}};
  Fig1Setup setup;
  setup.tree = mst::orient_toward_sink(inst.points, edges, 4);
  auto link_of = [&](std::int32_t child) {
    return static_cast<std::size_t>(
        setup.tree.link_of_node[static_cast<std::size_t>(child)]);
  };
  // S1 = {a->c, d->sink}, S2 = {b->d, c->sink}.
  setup.schedule.slots = {{link_of(0), link_of(3)}, {link_of(1), link_of(2)}};
  return setup;
}

TEST(Simulator, Fig1RateOneHalfLatencyThree) {
  const auto setup = fig1_setup();
  SimulationConfig config;
  config.num_frames = 50;
  config.generation_period = 2;  // measurements in every other slot
  const auto report = simulate_aggregation(setup.tree, setup.schedule, config);
  EXPECT_TRUE(report.all_frames_completed);
  EXPECT_TRUE(report.aggregates_correct);
  // Paper: "the first frame will be aggregated at the root by start of
  // timeslot 4, for a latency of 3".
  EXPECT_EQ(report.latencies.front(), 3u);
  EXPECT_EQ(report.max_latency, 3u);
  // Paper: "this schedule attains a throughput rate of 1/2".
  EXPECT_NEAR(report.achieved_rate, 0.5, 0.05);
  // Paper: node d holds two values (b1+d1 and d2) -> max buffer 2.
  EXPECT_EQ(report.max_buffer, 2u);
}

TEST(Simulator, Fig1OverdrivenBuffersGrow) {
  const auto setup = fig1_setup();
  SimulationConfig slow, fast;
  slow.num_frames = 40;
  slow.generation_period = 2;
  fast.num_frames = 40;
  fast.generation_period = 1;  // offered rate 1 > capacity 1/2
  const auto ok = simulate_aggregation(setup.tree, setup.schedule, slow);
  const auto over = simulate_aggregation(setup.tree, setup.schedule, fast);
  EXPECT_LE(ok.max_buffer, 2u);
  // Over capacity the backlog scales with the frame count.
  EXPECT_GE(over.max_buffer, 15u);
  EXPECT_GE(over.max_latency, 30u);
}

TEST(Simulator, ChainPipelinesAtConstantRate) {
  // Unit chain scheduled with 3 colors (link i in slot i mod 3): rate 1/3
  // regardless of n, but latency grows linearly (Sec 3.1).
  for (std::size_t n : {8u, 16u, 32u}) {
    const auto tree = mst::mst_tree(instance::unit_chain(n),
                                    static_cast<std::int32_t>(n - 1));
    Schedule s;
    s.slots.assign(3, {});
    for (std::size_t i = 0; i < tree.links.size(); ++i) {
      // Links are BFS-indexed from the sink; depth of sender = distance.
      const auto sender = static_cast<std::size_t>(
          tree.links.link(i).sender);
      s.slots[static_cast<std::size_t>(tree.depth[sender]) % 3].push_back(i);
    }
    SimulationConfig config;
    config.num_frames = 30;
    config.generation_period = 3;
    const auto report = simulate_aggregation(tree, s, config);
    EXPECT_TRUE(report.all_frames_completed) << n;
    EXPECT_TRUE(report.aggregates_correct) << n;
    // Steady-state throughput matches the offered 1/3 exactly; the
    // whole-run average is dragged below it by pipeline fill/drain.
    EXPECT_NEAR(report.steady_rate, 1.0 / 3.0, 1e-9) << n;
    EXPECT_LE(report.achieved_rate, 1.0 / 3.0 + 1e-9) << n;
    // Latency grows with n (pipeline depth).
    EXPECT_GE(report.max_latency, n - 2) << n;
    // Buffers scale with pipeline depth (nodes near the sink hold their own
    // measurements while the subtree data climbs the chain), but NOT with
    // the number of frames: that is the sustainability criterion.
    EXPECT_LE(report.max_buffer, n) << n;
    SimulationConfig longer_run = config;
    longer_run.num_frames = 60;
    const auto report2 = simulate_aggregation(tree, s, longer_run);
    EXPECT_EQ(report2.max_buffer, report.max_buffer) << n;
  }
}

TEST(Simulator, StarAggregatesEachFrameInOneSweep) {
  // Star: all leaves attach to the sink; schedule = one leaf per slot.
  const std::size_t n = 6;
  geom::Pointset pts;
  pts.push_back({0, 0});
  for (std::size_t i = 1; i < n; ++i) {
    pts.push_back({std::cos(static_cast<double>(i)),
                   std::sin(static_cast<double>(i))});
  }
  std::vector<mst::Edge> edges;
  for (std::size_t i = 1; i < n; ++i) {
    edges.push_back({0, static_cast<std::int32_t>(i)});
  }
  const auto tree = mst::orient_toward_sink(pts, edges, 0);
  Schedule s;
  for (std::size_t i = 0; i < tree.links.size(); ++i) s.slots.push_back({i});
  SimulationConfig config;
  config.num_frames = 12;
  config.generation_period = tree.links.size();
  const auto report = simulate_aggregation(tree, s, config);
  EXPECT_TRUE(report.all_frames_completed);
  EXPECT_TRUE(report.aggregates_correct);
  EXPECT_NEAR(report.achieved_rate, 1.0 / static_cast<double>(n - 1), 0.02);
  EXPECT_EQ(report.max_latency, n - 1);
}

TEST(Simulator, SinkGeneratesFlagIncludesSinkValue) {
  const auto setup = fig1_setup();
  SimulationConfig config;
  config.num_frames = 10;
  config.generation_period = 2;
  config.sink_generates = true;
  const auto report = simulate_aggregation(setup.tree, setup.schedule, config);
  EXPECT_TRUE(report.all_frames_completed);
  EXPECT_TRUE(report.aggregates_correct);
}

TEST(Simulator, RandomMstEndToEnd) {
  const auto pts = instance::uniform_square(60, 10.0, 12);
  const auto tree = mst::mst_tree(pts, 0);
  // Simple valid schedule: one link per slot.
  Schedule s;
  for (std::size_t i = 0; i < tree.links.size(); ++i) s.slots.push_back({i});
  SimulationConfig config;
  config.num_frames = 5;
  config.generation_period = tree.links.size();
  const auto report = simulate_aggregation(tree, s, config);
  EXPECT_TRUE(report.all_frames_completed);
  EXPECT_TRUE(report.aggregates_correct);
  EXPECT_LE(report.max_latency,
            tree.links.size() * (static_cast<std::size_t>(tree.height()) + 1));
}

TEST(Simulator, Validation) {
  const auto setup = fig1_setup();
  SimulationConfig config;
  config.num_frames = 0;
  EXPECT_THROW(simulate_aggregation(setup.tree, setup.schedule, config),
               std::invalid_argument);
  config.num_frames = 1;
  config.generation_period = 0;
  EXPECT_THROW(simulate_aggregation(setup.tree, setup.schedule, config),
               std::invalid_argument);
  config.generation_period = 1;
  Schedule empty;
  EXPECT_THROW(simulate_aggregation(setup.tree, empty, config),
               std::invalid_argument);
  Schedule bad;
  bad.slots = {{99}};
  EXPECT_THROW(simulate_aggregation(setup.tree, bad, config),
               std::invalid_argument);
}

TEST(Simulator, MaxSlotsCapReportsIncomplete) {
  const auto setup = fig1_setup();
  SimulationConfig config;
  config.num_frames = 100;
  config.generation_period = 2;
  config.max_slots = 10;
  const auto report = simulate_aggregation(setup.tree, setup.schedule, config);
  EXPECT_FALSE(report.all_frames_completed);
  EXPECT_EQ(report.slots_elapsed, 10u);
  EXPECT_LT(report.frames_completed, 100u);
}

}  // namespace
}  // namespace wagg::schedule
