#include "obs/bench.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace wagg::obs {
namespace {

BenchTrajectory make_trajectory() {
  Registry registry;
  registry.counter("dynamic.epochs").add(8);
  registry.gauge("service.busy_workers").set(2.5);
  registry.histogram("dynamic.epoch_ms").record(1.5);
  registry.histogram("dynamic.epoch_ms").record(2.5);

  BenchTrajectory trajectory;
  trajectory.date = "2026-08-08";
  trajectory.label = "unit \"quoted\" label";
  trajectory.repeats = 5;
  trajectory.warmup = 1;

  BenchScenario churn;
  churn.name = "churn/uniform/n1024/r0.01";
  churn.kind = "churn";
  churn.metrics.emplace(
      "conflict_query_ms",
      BenchMetric::of({0.5, 0.52, 0.48, 0.51, 0.49}, "ms"));
  churn.metrics.emplace(
      "conflict_share",
      BenchMetric::of({0.4, 0.41, 0.39, 0.4, 0.42}, "ratio",
                      /*higher_is_better=*/false, /*portable=*/true));
  churn.registry = registry.snapshot();
  trajectory.scenarios.push_back(std::move(churn));

  BenchScenario service;
  service.name = "service/sessions8/n256";
  service.kind = "service";
  auto throughput =
      BenchMetric::of({900.0, 1000.0, 1100.0, 1000.0, 950.0}, "per_sec",
                      /*higher_is_better=*/true);
  throughput.min_rel = 0.25;  // pool-dispatch noise floor, as in wagg_bench
  service.metrics.emplace("epochs_per_sec", std::move(throughput));
  trajectory.scenarios.push_back(std::move(service));
  return trajectory;
}

/// A candidate whose medians equal the baseline's exactly.
BenchTrajectory identical_candidate() { return make_trajectory(); }

void scale_metric(BenchTrajectory& trajectory, const std::string& scenario,
                  const std::string& metric, double factor) {
  auto& m = const_cast<BenchScenario*>(trajectory.find(scenario))
                ->metrics.at(metric);
  std::vector<double> scaled;
  for (const double v : m.repeats) scaled.push_back(v * factor);
  const double min_rel = m.min_rel;
  m = BenchMetric::of(std::move(scaled), m.unit, m.higher_is_better,
                      m.portable);
  m.min_rel = min_rel;
}

// ------------------------------------------------------------- statistics

TEST(BenchStats, MedianAndMadAreRobustToOneOutlier) {
  EXPECT_DOUBLE_EQ(median_of({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median_of({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_DOUBLE_EQ(median_of({}), 0.0);
  // One 100x outlier moves the mean wildly but the median/MAD barely.
  EXPECT_DOUBLE_EQ(median_of({1.0, 1.1, 0.9, 100.0, 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(mad_of({1.0, 1.1, 0.9, 100.0, 1.0}), 0.1);
  EXPECT_DOUBLE_EQ(mad_of({5.0}), 0.0);
}

TEST(BenchStats, MetricOfSummarizesRepeats) {
  const auto metric = BenchMetric::of({2.0, 1.0, 3.0}, "ms");
  EXPECT_DOUBLE_EQ(metric.median, 2.0);
  EXPECT_DOUBLE_EQ(metric.mad, 1.0);
  ASSERT_EQ(metric.repeats.size(), 3u);  // raw order preserved
  EXPECT_DOUBLE_EQ(metric.repeats[0], 2.0);
}

// -------------------------------------------------------------- round trip

TEST(BenchTrajectory, JsonRoundTripIsLossless) {
  const auto before = make_trajectory();
  const auto after = BenchTrajectory::from_json(before.to_json());

  EXPECT_EQ(after.date, before.date);
  EXPECT_EQ(after.label, before.label);
  EXPECT_EQ(after.repeats, before.repeats);
  EXPECT_EQ(after.warmup, before.warmup);
  ASSERT_EQ(after.scenarios.size(), before.scenarios.size());
  for (std::size_t i = 0; i < before.scenarios.size(); ++i) {
    const auto& a = after.scenarios[i];
    const auto& b = before.scenarios[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.metrics, b.metrics);  // BenchMetric == is defaulted
    EXPECT_EQ(a.registry.counters, b.registry.counters);
    EXPECT_EQ(a.registry.gauges, b.registry.gauges);
    EXPECT_EQ(a.registry.histograms.size(), b.registry.histograms.size());
  }
  // The embedded registry survives: counters round-trip through the nested
  // wagg-metrics-v1 document.
  EXPECT_EQ(
      after.scenarios[0].registry.counters.at("dynamic.epochs"), 8u);
  EXPECT_EQ(
      after.scenarios[0].registry.histograms.at("dynamic.epoch_ms").count(),
      2u);
}

TEST(BenchTrajectory, FromJsonRejectsWrongOrMissingSchema) {
  EXPECT_THROW(BenchTrajectory::from_json("{}"), std::invalid_argument);
  EXPECT_THROW(
      BenchTrajectory::from_json("{\"schema\": \"wagg-bench-v999\"}"),
      std::invalid_argument);
  EXPECT_THROW(BenchTrajectory::from_json("not json"),
               std::invalid_argument);
}

// ---------------------------------------------------------------- compare

TEST(BenchCompare, IdenticalRunsPassWithinNoiseTolerance) {
  const auto report = compare(make_trajectory(), identical_candidate());
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.regressions, 0u);
  EXPECT_EQ(report.improvements, 0u);
  EXPECT_EQ(report.findings.size(), 3u);
  for (const auto& finding : report.findings) {
    EXPECT_EQ(finding.verdict, Verdict::kOk) << finding.metric;
  }
}

TEST(BenchCompare, InjectedConflictQuerySlowdownRegresses) {
  // The acceptance scenario: a 2x conflict_query_ms slowdown must fail the
  // gate while everything else stays ok.
  auto candidate = identical_candidate();
  scale_metric(candidate, "churn/uniform/n1024/r0.01", "conflict_query_ms",
               2.0);
  const auto report = compare(make_trajectory(), candidate);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.regressions, 1u);
  // Regressions sort first so CI logs lead with the verdict that failed.
  ASSERT_FALSE(report.findings.empty());
  EXPECT_EQ(report.findings.front().verdict, Verdict::kRegressed);
  EXPECT_EQ(report.findings.front().metric, "conflict_query_ms");
  EXPECT_NEAR(report.findings.front().delta_fraction, 1.0, 0.1);
}

TEST(BenchCompare, DirectionAwareForHigherIsBetterMetrics) {
  // Throughput halving = regression; throughput doubling = improvement,
  // which reports but never fails.
  auto slower = identical_candidate();
  scale_metric(slower, "service/sessions8/n256", "epochs_per_sec", 0.5);
  const auto slow_report = compare(make_trajectory(), slower);
  EXPECT_FALSE(slow_report.ok());
  EXPECT_EQ(slow_report.findings.front().metric, "epochs_per_sec");

  auto faster = identical_candidate();
  scale_metric(faster, "service/sessions8/n256", "epochs_per_sec", 2.0);
  const auto fast_report = compare(make_trajectory(), faster);
  EXPECT_TRUE(fast_report.ok());
  EXPECT_EQ(fast_report.improvements, 1u);
  EXPECT_EQ(fast_report.findings.front().verdict, Verdict::kImproved);
}

TEST(BenchCompare, NoiseWidensToleranceThroughTheMads) {
  // Same 20% delta: gated with tight repeats, absorbed with noisy ones.
  const auto tight = BenchMetric::of({1.0, 1.0, 1.0, 1.0, 1.0}, "ratio");
  const auto noisy = BenchMetric::of({1.0, 0.7, 1.3, 0.85, 1.15}, "ratio");
  BenchTrajectory base;
  BenchScenario s;
  s.name = "synthetic";
  s.metrics.emplace("tight", tight);
  s.metrics.emplace("noisy", noisy);
  base.scenarios.push_back(s);

  auto candidate = base;
  scale_metric(candidate, "synthetic", "tight", 1.2);
  scale_metric(candidate, "synthetic", "noisy", 1.2);
  const auto report = compare(base, candidate);
  EXPECT_EQ(report.regressions, 1u);
  EXPECT_EQ(report.findings.front().metric, "tight");
  for (const auto& finding : report.findings) {
    if (finding.metric == "noisy") {
      EXPECT_EQ(finding.verdict, Verdict::kOk);
    }
  }
}

TEST(BenchCompare, PerMetricNoiseFloorAbsorbsRegimeShifts) {
  // Two metrics with identical (zero-MAD) repeats and the same 20% swing:
  // the one whose producer declared a 25% between-run noise floor passes,
  // the undeclared one regresses. Declaring the floor on the candidate side
  // only must widen the band too — either run may know the metric is noisy.
  BenchTrajectory base;
  BenchScenario s;
  s.name = "synthetic";
  s.metrics.emplace("plain", BenchMetric::of({10.0, 10.0, 10.0}, "ms"));
  auto stamped = BenchMetric::of({10.0, 10.0, 10.0}, "ms");
  stamped.min_rel = 0.25;
  s.metrics.emplace("stamped", stamped);
  s.metrics.emplace("cand_stamped", BenchMetric::of({10.0, 10.0, 10.0}, "ms"));
  base.scenarios.push_back(s);

  auto candidate = base;
  scale_metric(candidate, "synthetic", "plain", 1.2);
  scale_metric(candidate, "synthetic", "stamped", 1.2);
  scale_metric(candidate, "synthetic", "cand_stamped", 1.2);
  const_cast<BenchScenario*>(candidate.find("synthetic"))
      ->metrics.at("cand_stamped")
      .min_rel = 0.25;
  const auto report = compare(base, candidate);
  EXPECT_EQ(report.regressions, 1u);
  EXPECT_EQ(report.findings.front().metric, "plain");
  for (const auto& finding : report.findings) {
    if (finding.metric != "plain") {
      EXPECT_EQ(finding.verdict, Verdict::kOk) << finding.metric;
      EXPECT_DOUBLE_EQ(finding.tolerance_fraction, 0.25);
    }
  }
}

TEST(BenchCompare, MinAbsMsFloorsSubSchedulerQuantumSwings) {
  // 0.02 ms -> 0.05 ms is a 150% relative jump but far below the absolute
  // floor for wall-clock metrics; ratio metrics get no such floor.
  BenchTrajectory base;
  BenchScenario s;
  s.name = "synthetic";
  s.metrics.emplace("tiny_ms", BenchMetric::of({0.02, 0.02, 0.02}, "ms"));
  s.metrics.emplace("tiny_ratio",
                    BenchMetric::of({0.02, 0.02, 0.02}, "ratio"));
  base.scenarios.push_back(s);
  auto candidate = base;
  scale_metric(candidate, "synthetic", "tiny_ms", 2.5);
  scale_metric(candidate, "synthetic", "tiny_ratio", 2.5);
  const auto report = compare(base, candidate);
  EXPECT_EQ(report.regressions, 1u);
  EXPECT_EQ(report.findings.front().metric, "tiny_ratio");
}

TEST(BenchCompare, VanishedMetricIsACoverageRegression) {
  auto candidate = identical_candidate();
  const_cast<BenchScenario*>(
      candidate.find("churn/uniform/n1024/r0.01"))
      ->metrics.erase("conflict_query_ms");
  const auto report = compare(make_trajectory(), candidate);
  EXPECT_FALSE(report.ok());
  bool missing_seen = false;
  for (const auto& finding : report.findings) {
    if (finding.metric == "conflict_query_ms") {
      EXPECT_EQ(finding.verdict, Verdict::kMissing);
      missing_seen = true;
    }
  }
  EXPECT_TRUE(missing_seen);
}

TEST(BenchCompare, CandidateOnlyMetricsReportAsNewWithoutGating) {
  auto candidate = identical_candidate();
  const_cast<BenchScenario*>(
      candidate.find("service/sessions8/n256"))
      ->metrics.emplace("wall_ms", BenchMetric::of({10.0, 11.0}, "ms"));
  const auto report = compare(make_trajectory(), candidate);
  EXPECT_TRUE(report.ok());
  bool new_seen = false;
  for (const auto& finding : report.findings) {
    if (finding.metric == "wall_ms") {
      EXPECT_EQ(finding.verdict, Verdict::kNew);
      new_seen = true;
    }
  }
  EXPECT_TRUE(new_seen);
}

TEST(BenchCompare, PortableOnlyGatesRatiosAndDemotesWallClocks) {
  // Cross-machine mode: a wall-clock regression is informational, a
  // portable-ratio regression still fails.
  CompareOptions options;
  options.portable_only = true;

  auto ms_slower = identical_candidate();
  scale_metric(ms_slower, "churn/uniform/n1024/r0.01", "conflict_query_ms",
               2.0);
  const auto ms_report = compare(make_trajectory(), ms_slower, options);
  EXPECT_TRUE(ms_report.ok());
  for (const auto& finding : ms_report.findings) {
    if (finding.metric == "conflict_query_ms") {
      EXPECT_EQ(finding.verdict, Verdict::kInfo);
    }
  }

  auto ratio_worse = identical_candidate();
  scale_metric(ratio_worse, "churn/uniform/n1024/r0.01", "conflict_share",
               2.0);
  const auto ratio_report =
      compare(make_trajectory(), ratio_worse, options);
  EXPECT_FALSE(ratio_report.ok());
  EXPECT_EQ(ratio_report.findings.front().metric, "conflict_share");
}

TEST(BenchCompare, TableLeadsWithTheFailingVerdict) {
  auto candidate = identical_candidate();
  scale_metric(candidate, "churn/uniform/n1024/r0.01", "conflict_query_ms",
               2.0);
  const auto text = compare(make_trajectory(), candidate).table();
  EXPECT_NE(text.find("REGRESSED"), std::string::npos);
  EXPECT_NE(text.find("compare FAILED"), std::string::npos);
  EXPECT_LT(text.find("REGRESSED"), text.find("ok"));
}

}  // namespace
}  // namespace wagg::obs
