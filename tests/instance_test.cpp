#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "geom/point.h"
#include "instance/basic.h"
#include "instance/lowerbound.h"
#include "instance/special.h"
#include "instance/zigzag.h"
#include "util/logmath.h"

namespace wagg::instance {
namespace {

TEST(Basic, UniformSquareBoundsAndDeterminism) {
  const auto a = uniform_square(200, 10.0, 7);
  const auto b = uniform_square(200, 10.0, 7);
  const auto c = uniform_square(200, 10.0, 8);
  ASSERT_EQ(a.size(), 200u);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  for (const auto& p : a) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 10.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 10.0);
  }
}

TEST(Basic, UniformDiskInRadius) {
  const auto pts = uniform_disk(300, 2.0, 3);
  ASSERT_EQ(pts.size(), 300u);
  for (const auto& p : pts) {
    EXPECT_LE(p.x * p.x + p.y * p.y, 4.0 + 1e-12);
  }
}

TEST(Basic, GridShape) {
  const auto pts = grid(3, 4, 0.5);
  ASSERT_EQ(pts.size(), 12u);
  EXPECT_DOUBLE_EQ(geom::min_pairwise_distance(pts), 0.5);
  EXPECT_DOUBLE_EQ(geom::diameter(pts), std::hypot(1.5, 1.0));
}

TEST(Basic, ClusteredCounts) {
  const auto pts = clustered(5, 20, 100.0, 0.5, 11);
  EXPECT_EQ(pts.size(), 100u);
}

TEST(Basic, UnitChainGaps) {
  const auto pts = unit_chain(5);
  ASSERT_EQ(pts.size(), 5u);
  for (std::size_t i = 0; i + 1 < pts.size(); ++i) {
    EXPECT_DOUBLE_EQ(pts[i + 1].x - pts[i].x, 1.0);
  }
}

TEST(Basic, ExponentialChainGapsGrow) {
  const auto pts = exponential_chain(6, 2.0);
  ASSERT_EQ(pts.size(), 6u);
  for (std::size_t i = 0; i + 2 < pts.size(); ++i) {
    const double g0 = pts[i + 1].x - pts[i].x;
    const double g1 = pts[i + 2].x - pts[i + 1].x;
    EXPECT_DOUBLE_EQ(g1 / g0, 2.0);
  }
}

TEST(Basic, ExponentialChainValidation) {
  EXPECT_THROW(exponential_chain(5, 1.0), std::invalid_argument);
  EXPECT_THROW(exponential_chain(2000, 2.0), std::overflow_error);
}

TEST(Basic, Validation) {
  EXPECT_THROW(uniform_square(5, 0.0, 1), std::invalid_argument);
  EXPECT_THROW(grid(0, 3, 1.0), std::invalid_argument);
  EXPECT_THROW(clustered(2, 2, 1.0, -1.0, 1), std::invalid_argument);
}

// --- Fig 2: doubly-exponential chain ---------------------------------------

TEST(Fig2, GapsGrowDoublyExponentially) {
  const auto chain = doubly_exponential_chain(6, 0.5, 3.0, 1.0);
  const auto& pts = chain.points;
  ASSERT_EQ(pts.size(), 6u);
  // Gap exponents grow by 1/tau' = 2 each step: g_(t+1) = g_t^2 / x^...;
  // precisely g_t = x^(2^(t-1)), so g_(t+1) = g_t^2.
  for (std::size_t t = 0; t + 2 < pts.size(); ++t) {
    const double g0 = pts[t + 1].x - pts[t].x;
    const double g1 = pts[t + 2].x - pts[t + 1].x;
    EXPECT_NEAR(g1, g0 * g0, g1 * 1e-9) << "gap " << t;
  }
  // Smallest gap is x itself.
  EXPECT_DOUBLE_EQ(pts[1].x - pts[0].x, chain.x);
  EXPECT_GT(chain.x, 2.0);
}

TEST(Fig2, TauPrimeIsMin) {
  const auto a = doubly_exponential_chain(4, 0.25, 3.0, 1.0);
  const auto b = doubly_exponential_chain(4, 0.75, 3.0, 1.0);
  EXPECT_DOUBLE_EQ(a.tau_prime, 0.25);
  EXPECT_DOUBLE_EQ(b.tau_prime, 0.25);
}

TEST(Fig2, LogDeltaMatchesGapRatio) {
  const auto chain = doubly_exponential_chain(5, 0.5, 3.0, 1.0);
  const auto& pts = chain.points;
  const double g_first = pts[1].x - pts[0].x;
  const double g_last = pts[4].x - pts[3].x;
  EXPECT_NEAR(chain.log2_delta, std::log2(g_last / g_first),
              1e-6 * chain.log2_delta + 1e-9);
}

TEST(Fig2, SizeCapHonoured) {
  const std::size_t cap = max_doubly_exponential_size(0.5, 3.0, 1.0);
  EXPECT_GE(cap, 8u);
  EXPECT_NO_THROW(doubly_exponential_chain(cap, 0.5, 3.0, 1.0));
  EXPECT_THROW(doubly_exponential_chain(cap + 1, 0.5, 3.0, 1.0),
               std::overflow_error);
}

TEST(Fig2, NumPointsIsThetaLogLogDelta) {
  // n should track log2(log2(Delta)) within a small additive constant.
  for (std::size_t n : {5u, 7u, 9u}) {
    const auto chain = doubly_exponential_chain(n, 0.5, 3.0, 1.0);
    const double loglog = util::log2_log2_of_log2(chain.log2_delta);
    EXPECT_NEAR(static_cast<double>(n), loglog, 4.0) << n;
  }
}

TEST(Fig2, Validation) {
  EXPECT_THROW(doubly_exponential_chain(4, 0.0, 3.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW(doubly_exponential_chain(4, 1.0, 3.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW(doubly_exponential_chain(1, 0.5, 3.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW(doubly_exponential_chain(4, 0.5, 2.0, 1.0),
               std::invalid_argument);
}

// --- Fig 3: recursive R_t ---------------------------------------------------

TEST(Fig3, BaseCase) {
  const auto r1 = recursive_rt(1);
  ASSERT_EQ(r1.points.size(), 2u);
  EXPECT_DOUBLE_EQ(r1.points[1].x - r1.points[0].x, 1.0);
  EXPECT_DOUBLE_EQ(r1.log2_delta, 0.0);
}

TEST(Fig3, LevelTwoStructure) {
  const auto r2 = recursive_rt(2, 4.0, 32);
  // k_2 = c / rho(R_1)^alpha = 4 copies of the unit link, then the long link.
  ASSERT_EQ(r2.copies_per_level.size(), 1u);
  EXPECT_EQ(r2.copies_per_level[0], 4u);
  // Nodes: G contributes 1 extra + R' has k+1 nodes (joined copies).
  EXPECT_EQ(r2.points.size(), 6u);
  // Positions are sorted and start at 0.
  EXPECT_DOUBLE_EQ(r2.points.front().x, 0.0);
  for (std::size_t i = 0; i + 1 < r2.points.size(); ++i) {
    EXPECT_LT(r2.points[i].x, r2.points[i + 1].x);
  }
  // The long link G spans half the instance.
  const double total = r2.points.back().x;
  EXPECT_DOUBLE_EQ(r2.points[1].x, total / 2.0);
}

TEST(Fig3, DeltaGrowsFastWithT) {
  const auto r2 = recursive_rt(2, 4.0, 16);
  const auto r3 = recursive_rt(3, 4.0, 16);
  EXPECT_GT(r3.log2_delta, 2.0 * r2.log2_delta + 1.0);
}

TEST(Fig3, CapReportedWhenHit) {
  const auto r3 = recursive_rt(3, 4.0, 8);
  EXPECT_TRUE(r3.capped);  // k_3 = c / rho(R_2)^3 is astronomically large
  for (const auto k : r3.copies_per_level) EXPECT_LE(k, 8u);
}

TEST(Fig3, RhoLineInstance) {
  // rho of {0,1,2,4}: min over links of gap/right-endpoint:
  // 1/1, 1/2, 2/4 -> 0.5.
  geom::Pointset pts = geom::line_pointset({0, 1, 2, 4});
  EXPECT_DOUBLE_EQ(rho_line_instance(pts), 0.5);
  EXPECT_THROW((void)rho_line_instance(geom::line_pointset({1, 0})),
               std::invalid_argument);
}

TEST(Fig3, Validation) {
  EXPECT_THROW(recursive_rt(0), std::invalid_argument);
  EXPECT_THROW(recursive_rt(2, -1.0), std::invalid_argument);
  EXPECT_THROW(recursive_rt(3, 4.0, 32, 10), std::overflow_error);  // budget
}

// --- Fig 4: zigzag ----------------------------------------------------------

TEST(Fig4, EightNodeLengthsMatchPaper) {
  const double tau = 0.3, x = 32.0;
  const auto inst = zigzag_instance(4, tau, x);
  ASSERT_EQ(inst.points.size(), 8u);
  ASSERT_EQ(inst.tree_links.size(), 7u);
  const double y = std::pow(x, 1.0 / tau);
  const double z = std::pow(y, 1.0 / tau);
  const double w = std::pow(z, 1.0 / tau);
  const double e = 2.0 - tau + tau * tau;
  EXPECT_NEAR(inst.tree_links.length(0), x, x * 1e-9);
  EXPECT_NEAR(inst.tree_links.length(1), std::pow(x, e),
              std::pow(x, e) * 1e-9);  // p
  EXPECT_NEAR(inst.tree_links.length(2), y, y * 1e-9);
  EXPECT_NEAR(inst.tree_links.length(3), std::pow(y, e),
              std::pow(y, e) * 1e-9);  // q
  EXPECT_NEAR(inst.tree_links.length(4), z, z * 1e-9);
  EXPECT_NEAR(inst.tree_links.length(5), std::pow(z, e),
              std::pow(z, e) * 1e-9);  // r
  EXPECT_NEAR(inst.tree_links.length(6), w, w * 1e-9);
}

TEST(Fig4, PaperProofDistancesHold) {
  // The key SINR distances used in the Claim 2 proof, in our layout.
  const double tau = 0.3, x = 32.0;
  const auto inst = zigzag_instance(4, tau, x);
  const auto& ls = inst.tree_links;
  const double p = ls.length(1), q = ls.length(3), y = ls.length(2);
  const double z = ls.length(4), r = ls.length(5);
  // d_21 = d(s_2, r_1) = p (link ids: long 2 is index 2; long 1 is index 0).
  EXPECT_NEAR(ls.sinr_distance(2, 0), p, p * 1e-9);
  // d_31 = q - e1 = q - (y - p).
  EXPECT_NEAR(ls.sinr_distance(4, 0), q - y + p, q * 1e-9);
  // d_65 = y (short links 6,5 are indices 3,1).
  EXPECT_NEAR(ls.sinr_distance(3, 1), y, y * 1e-9);
  // d_75 = z + y - q ~ z.
  EXPECT_NEAR(ls.sinr_distance(5, 1), z + y - q, z * 1e-9);
  // d(r_7, r_6) = r - z (the proof's d_3).
  EXPECT_NEAR(std::abs(ls.receiver_pos(5).x - ls.receiver_pos(3).x), r - z,
              r * 1e-9);
}

TEST(Fig4, LongShortPartition) {
  const auto inst = zigzag_instance(5, 0.3, 16.0);
  EXPECT_EQ(inst.long_links.size(), 5u);
  EXPECT_EQ(inst.short_links.size(), 4u);
  // Longs occupy even path indices.
  for (std::size_t k = 0; k < inst.long_links.size(); ++k) {
    EXPECT_EQ(inst.long_links[k], 2 * k);
  }
}

TEST(Fig4, MirroredVariantReversesDirections) {
  const auto fwd = zigzag_instance(3, 0.3, 16.0, false);
  const auto mir = zigzag_instance(3, 0.7, 16.0, true);
  EXPECT_EQ(fwd.sink, static_cast<std::int32_t>(fwd.points.size() - 1));
  EXPECT_EQ(mir.sink, 0);
  // Mirrored with tau = 0.7 uses exponent 1/(1-tau): same lengths as fwd 0.3.
  for (std::size_t i = 0; i < fwd.tree_links.size(); ++i) {
    EXPECT_NEAR(fwd.tree_links.length(i), mir.tree_links.length(i),
                fwd.tree_links.length(i) * 1e-9);
  }
}

TEST(Fig4, TreeSpansAllNodes) {
  const auto inst = zigzag_instance(4, 0.3, 32.0);
  std::vector<bool> seen(inst.points.size(), false);
  for (const auto& link : inst.tree_links.links()) {
    seen[static_cast<std::size_t>(link.sender)] = true;
    seen[static_cast<std::size_t>(link.receiver)] = true;
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

TEST(Fig4, OverflowGuard) {
  const std::size_t cap = max_zigzag_longs(0.3, 32.0);
  EXPECT_GE(cap, 3u);
  EXPECT_NO_THROW(zigzag_instance(cap, 0.3, 32.0));
  EXPECT_THROW(zigzag_instance(cap + 1, 0.3, 32.0), std::overflow_error);
}

TEST(Fig4, TauThreshold) {
  const double t = zigzag_tau_threshold();
  EXPECT_GT(t, 0.33);
  EXPECT_LT(t, 0.35);
  // gamma changes sign at the threshold.
  auto gamma = [](double v) {
    return 1.0 - 4 * v + 4 * v * v - 3 * v * v * v + v * v * v * v;
  };
  EXPECT_GT(gamma(t - 0.01), 0.0);
  EXPECT_LT(gamma(t + 0.01), 0.0);
}

// --- Fig 1 and the 5-cycle --------------------------------------------------

TEST(Fig1, Structure) {
  const auto inst = fig1_instance();
  ASSERT_EQ(inst.points.size(), 5u);
  ASSERT_EQ(inst.tree.size(), 4u);
  ASSERT_EQ(inst.slots.size(), 2u);
  // All four links have unit length.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(inst.tree.length(i), 1.0);
  }
  // Slots partition the links.
  std::vector<int> count(4, 0);
  for (const auto& slot : inst.slots) {
    for (auto l : slot) ++count[l];
  }
  for (int c : count) EXPECT_EQ(c, 1);
}

TEST(Fig1, SlotsShareNoNode) {
  const auto inst = fig1_instance();
  for (const auto& slot : inst.slots) {
    ASSERT_EQ(slot.size(), 2u);
    EXPECT_FALSE(inst.tree.shares_node(slot[0], slot[1]));
  }
}

TEST(FiveCycle, Structure) {
  const auto inst = five_cycle_instance();
  ASSERT_EQ(inst.points.size(), 6u);
  ASSERT_EQ(inst.links.size(), 5u);
  // Multicolor schedule: 5 slots, each link exactly twice.
  std::vector<int> count(5, 0);
  for (const auto& slot : inst.multicolor_slots) {
    ASSERT_EQ(slot.size(), 2u);
    for (auto l : slot) ++count[l];
  }
  for (int c : count) EXPECT_EQ(c, 2);
  // Coloring schedule: 3 slots, each link once.
  std::vector<int> count2(5, 0);
  for (const auto& slot : inst.coloring_slots) {
    for (auto l : slot) ++count2[l];
  }
  for (int c : count2) EXPECT_EQ(c, 1);
}

TEST(FiveCycle, AdjacentLinksShareNodes) {
  const auto inst = five_cycle_instance();
  for (std::size_t i = 0; i + 1 < 5; ++i) {
    EXPECT_TRUE(inst.links.shares_node(i, i + 1));
  }
  // e5 and e1 do NOT share a node (v6 is a distinct point near v1).
  EXPECT_FALSE(inst.links.shares_node(4, 0));
  // ... but their endpoints nearly coincide.
  EXPECT_LT(inst.links.link_distance(4, 0), 0.01);
}

TEST(FiveCycle, Validation) {
  EXPECT_THROW(five_cycle_instance(0.0), std::invalid_argument);
  EXPECT_THROW(five_cycle_instance(1.0, 0.5), std::invalid_argument);
}

}  // namespace
}  // namespace wagg::instance
