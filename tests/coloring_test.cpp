#include <gtest/gtest.h>

#include "coloring/coloring.h"
#include "coloring/refinement.h"
#include "conflict/fgraph.h"
#include "conflict/graph.h"
#include "instance/basic.h"
#include "mst/tree.h"
#include "sinr/interference.h"

namespace wagg::coloring {
namespace {

conflict::Graph cycle(std::size_t n) {
  conflict::Graph g(n);
  for (std::size_t i = 0; i < n; ++i) g.add_edge(i, (i + 1) % n);
  g.finalize();
  return g;
}

conflict::Graph clique(std::size_t n) {
  conflict::Graph g(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) g.add_edge(i, j);
  }
  g.finalize();
  return g;
}

std::vector<std::size_t> identity_order(std::size_t n) {
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  return order;
}

TEST(Greedy, ProperOnCyclesAndCliques) {
  for (std::size_t n : {3u, 4u, 5u, 8u, 9u}) {
    const auto g = cycle(n);
    const auto c = greedy_color(g, identity_order(n));
    EXPECT_TRUE(is_proper(g, c)) << "cycle " << n;
    EXPECT_LE(c.num_colors, 3);
  }
  const auto k5 = clique(5);
  const auto c = greedy_color(k5, identity_order(5));
  EXPECT_TRUE(is_proper(k5, c));
  EXPECT_EQ(c.num_colors, 5);
}

TEST(Greedy, BoundedByMaxDegreePlusOne) {
  const auto pts = instance::uniform_square(150, 8.0, 5);
  const auto tree = mst::mst_tree(pts, 0);
  const auto g = conflict::build_conflict_graph(
      tree.links, conflict::ConflictSpec::constant(2.0));
  const auto c = greedy_color(g, tree.links.by_decreasing_length());
  EXPECT_TRUE(is_proper(g, c));
  EXPECT_LE(static_cast<std::size_t>(c.num_colors), g.max_degree() + 1);
}

TEST(Greedy, OrderValidation) {
  const auto g = cycle(4);
  std::vector<std::size_t> bad{0, 1, 2, 2};
  EXPECT_THROW(greedy_color(g, bad), std::invalid_argument);
  std::vector<std::size_t> wrong_size{0, 1};
  EXPECT_THROW(greedy_color(g, wrong_size), std::invalid_argument);
}

TEST(Greedy, EmptyGraph) {
  conflict::Graph g(0);
  const auto c = greedy_color(g, {});
  EXPECT_EQ(c.num_colors, 0);
  EXPECT_TRUE(is_proper(g, c));
}

TEST(Recolor, KeepsSeedAndStaysProper) {
  // 6-cycle: seed alternating colors on half the vertices, recolor the rest.
  conflict::Graph cycle(6);
  for (std::size_t v = 0; v < 6; ++v) cycle.add_edge(v, (v + 1) % 6);
  cycle.finalize();
  std::vector<int> seed = {0, -1, 0, -1, 0, -1};
  std::vector<std::size_t> order = {0, 1, 2, 3, 4, 5};
  const auto coloring = greedy_recolor(cycle, order, seed);
  for (std::size_t v = 0; v < 6; v += 2) {
    EXPECT_EQ(coloring.color_of[v], 0) << "seed not kept at " << v;
  }
  for (std::size_t v = 0; v < 6; ++v) {
    for (const auto w : cycle.neighbors(v)) {
      EXPECT_NE(coloring.color_of[v],
                coloring.color_of[static_cast<std::size_t>(w)]);
    }
  }
}

TEST(Recolor, RejectsImproperSeedAndBadSizes) {
  conflict::Graph edge(2);
  edge.add_edge(0, 1);
  edge.finalize();
  std::vector<std::size_t> order = {0, 1};
  std::vector<int> clash = {2, 2};
  EXPECT_THROW((void)greedy_recolor(edge, order, clash),
               std::invalid_argument);
  std::vector<int> short_seed = {0};
  EXPECT_THROW((void)greedy_recolor(edge, order, short_seed),
               std::invalid_argument);
}

TEST(Recolor, EmptySeedEqualsGreedy) {
  conflict::Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  g.finalize();
  std::vector<std::size_t> order = {4, 3, 2, 1, 0};
  const std::vector<int> blank(5, -1);
  const auto recolored = greedy_recolor(g, order, blank);
  const auto fresh = greedy_color(g, order);
  EXPECT_EQ(recolored.color_of, fresh.color_of);
  EXPECT_EQ(recolored.num_colors, fresh.num_colors);
}

TEST(Coloring, ClassesPartitionVertices) {
  const auto g = cycle(7);
  const auto c = greedy_color(g, identity_order(7));
  const auto classes = c.classes();
  EXPECT_EQ(classes.size(), static_cast<std::size_t>(c.num_colors));
  std::size_t total = 0;
  for (const auto& cls : classes) {
    total += cls.size();
    EXPECT_TRUE(g.is_independent(cls));
  }
  EXPECT_EQ(total, 7u);
}

TEST(Dsatur, ProperAndOftenTight) {
  for (std::size_t n : {5u, 7u, 9u}) {
    const auto g = cycle(n);
    const auto c = dsatur(g);
    EXPECT_TRUE(is_proper(g, c));
    EXPECT_EQ(c.num_colors, 3);  // odd cycles need exactly 3
  }
  const auto g = clique(6);
  EXPECT_EQ(dsatur(g).num_colors, 6);
}

TEST(Exact, KnownChromaticNumbers) {
  EXPECT_EQ(exact_chromatic_number(cycle(4)).value(), 2);
  EXPECT_EQ(exact_chromatic_number(cycle(5)).value(), 3);
  EXPECT_EQ(exact_chromatic_number(cycle(9)).value(), 3);
  EXPECT_EQ(exact_chromatic_number(clique(6)).value(), 6);
  conflict::Graph empty_graph(4);
  empty_graph.finalize();
  EXPECT_EQ(exact_chromatic_number(empty_graph).value(), 1);
  conflict::Graph zero(0);
  EXPECT_EQ(exact_chromatic_number(zero).value(), 0);
}

TEST(Exact, PetersenGraphNeedsThree) {
  // Petersen graph: outer 5-cycle, inner 5-star, spokes; chi = 3.
  conflict::Graph g(10);
  for (std::size_t i = 0; i < 5; ++i) {
    g.add_edge(i, (i + 1) % 5);          // outer cycle
    g.add_edge(5 + i, 5 + (i + 2) % 5);  // inner pentagram
    g.add_edge(i, 5 + i);                // spokes
  }
  g.finalize();
  EXPECT_EQ(exact_chromatic_number(g).value(), 3);
}

TEST(Exact, BudgetExhaustionReturnsNullopt) {
  // A moderately hard random-ish graph with a 1-node budget.
  const auto g = clique(8);
  EXPECT_EQ(exact_chromatic_number(g, 1), std::nullopt);
}

TEST(Exact, NeverBelowGreedyClique) {
  const auto g = clique(4);
  EXPECT_GE(exact_chromatic_number(g).value(),
            greedy_clique_lower_bound(g));
  EXPECT_EQ(greedy_clique_lower_bound(g), 4);
}

TEST(IsProper, RejectsBadColorings) {
  const auto g = cycle(4);
  Coloring c;
  c.color_of = {0, 1, 0, 1};
  c.num_colors = 2;
  EXPECT_TRUE(is_proper(g, c));
  c.color_of = {0, 0, 1, 1};  // adjacent same color
  EXPECT_FALSE(is_proper(g, c));
  c.color_of = {0, 1, 0, 3};  // color 3 out of range vs num_colors=2
  EXPECT_FALSE(is_proper(g, c));
  c.color_of = {0, 1, 0, 1};
  c.num_colors = 3;  // color 2 unused
  EXPECT_FALSE(is_proper(g, c));
}

// --- Theorem 2's first-fit refinement ---------------------------------------

class RefinementOnFamilies
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(RefinementOnFamilies, ConstantClassesEachIndependentInG1) {
  const auto [family, seed] = GetParam();
  geom::Pointset pts;
  switch (family) {
    case 0:
      pts = instance::uniform_square(200, 10.0, seed);
      break;
    case 1:
      pts = instance::clustered(8, 25, 100.0, 0.5, seed);
      break;
    case 2:
      pts = instance::exponential_chain(20, 1.5);
      break;
    case 3:
      pts = instance::grid(14, 14, 1.0);
      break;
    default:
      FAIL();
  }
  const auto tree = mst::mst_tree(pts, 0);
  const auto refinement = firstfit_refinement(tree.links, 3.0, 1.0);

  // Theorem 2, part 1: the number of classes is an absolute constant.
  // Lemma 1's constant is small; 12 is a generous ceiling.
  EXPECT_LE(refinement.num_classes, 12);
  EXPECT_GE(refinement.num_classes, 1);

  // Theorem 2, part 2: every class is independent in G_1 (gamma = 1).
  const auto g1 = conflict::build_conflict_graph(
      tree.links, conflict::ConflictSpec::constant(1.0));
  for (const auto& cls : refinement.classes()) {
    EXPECT_TRUE(g1.is_independent(cls));
  }

  // Refinement invariant: at insertion time (non-increasing length order),
  // every link's outgoing interference onto its already-inserted classmates
  // is below the threshold. Note the direction matters for equal lengths:
  // only earlier-processed classmates count.
  std::vector<std::size_t> position(tree.links.size());
  {
    const auto order = tree.links.by_decreasing_length();
    for (std::size_t rank = 0; rank < order.size(); ++rank) {
      position[order[rank]] = rank;
    }
  }
  for (const auto& cls : refinement.classes()) {
    for (const std::size_t i : cls) {
      std::vector<std::size_t> earlier;
      for (const std::size_t j : cls) {
        if (j != i && position[j] < position[i]) earlier.push_back(j);
      }
      EXPECT_LT(sinr::outgoing_interference(tree.links, i, earlier, 3.0), 1.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, RefinementOnFamilies,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(1ULL, 5ULL, 9ULL)));

TEST(Refinement, ClassOfLinkConsistent) {
  const auto pts = instance::uniform_square(60, 6.0, 2);
  const auto tree = mst::mst_tree(pts, 0);
  const auto r = firstfit_refinement(tree.links, 3.0);
  ASSERT_EQ(r.class_of_link.size(), tree.links.size());
  const auto classes = r.classes();
  for (std::size_t k = 0; k < classes.size(); ++k) {
    for (const std::size_t i : classes[k]) {
      EXPECT_EQ(r.class_of_link[i], static_cast<int>(k));
    }
  }
}

TEST(Refinement, Validation) {
  const auto pts = instance::unit_chain(4);
  const auto tree = mst::mst_tree(pts, 0);
  EXPECT_THROW(firstfit_refinement(tree.links, 0.0), std::invalid_argument);
  EXPECT_THROW(firstfit_refinement(tree.links, 3.0, 0.0),
               std::invalid_argument);
}

TEST(Refinement, LooserThresholdNeverMoreClasses) {
  const auto pts = instance::uniform_square(150, 8.0, 4);
  const auto tree = mst::mst_tree(pts, 0);
  const auto tight = firstfit_refinement(tree.links, 3.0, 0.5);
  const auto loose = firstfit_refinement(tree.links, 3.0, 2.0);
  EXPECT_LE(loose.num_classes, tight.num_classes);
}

}  // namespace
}  // namespace wagg::coloring
