#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "geom/linkset.h"
#include "instance/basic.h"
#include "instance/lowerbound.h"
#include "mst/mst.h"
#include "mst/tree.h"
#include "sinr/feasibility.h"
#include "sinr/interference.h"
#include "sinr/model.h"
#include "sinr/power.h"
#include "util/rng.h"

namespace wagg::sinr {
namespace {

SinrParams params(double alpha = 3.0, double beta = 1.0, double noise = 0.0) {
  SinrParams p;
  p.alpha = alpha;
  p.beta = beta;
  p.noise = noise;
  return p;
}

/// Two parallel unit links at horizontal separation `sep`.
geom::LinkSet parallel_pair(double sep) {
  geom::Pointset pts{{0, 0}, {0, 1}, {sep, 0}, {sep, 1}};
  return geom::LinkSet(pts, {geom::Link{0, 1}, geom::Link{2, 3}});
}

TEST(Model, Validation) {
  EXPECT_NO_THROW(params().validate());
  EXPECT_THROW(params(2.0).validate(), std::invalid_argument);
  EXPECT_THROW(params(3.0, 0.0).validate(), std::invalid_argument);
  EXPECT_THROW(params(3.0, 1.0, -1.0).validate(), std::invalid_argument);
}

TEST(Power, UniformIsFlat) {
  const auto ls = parallel_pair(5.0);
  const auto p = uniform_power(ls, params());
  EXPECT_DOUBLE_EQ(p.log2_power(0), p.log2_power(1));
  EXPECT_DOUBLE_EQ(p.power(0), 1.0);  // noise-free: C = 1
}

TEST(Power, LinearScalesWithLengthAlpha) {
  geom::Pointset pts{{0, 0}, {1, 0}, {10, 0}, {14, 0}};
  const geom::LinkSet ls(pts, {geom::Link{0, 1}, geom::Link{2, 3}});
  const auto p = linear_power(ls, params(3.0));
  // P(1)/P(0) = (4/1)^3 = 64 -> log2 diff = 6.
  EXPECT_NEAR(p.log2_power(1) - p.log2_power(0), 6.0, 1e-12);
}

TEST(Power, ObliviousInterpolates) {
  geom::Pointset pts{{0, 0}, {1, 0}, {10, 0}, {14, 0}};
  const geom::LinkSet ls(pts, {geom::Link{0, 1}, geom::Link{2, 3}});
  const auto p = oblivious_power(ls, 0.5, params(3.0));
  EXPECT_NEAR(p.log2_power(1) - p.log2_power(0), 3.0, 1e-12);  // (4^3)^0.5
}

TEST(Power, NoiseSetsInterferenceLimitedFloor) {
  geom::Pointset pts{{0, 0}, {2, 0}};
  const geom::LinkSet ls(pts, {geom::Link{0, 1}});
  const auto prm = params(3.0, 1.0, 0.125);
  const auto p = uniform_power(ls, prm);
  // P >= (1+eps) * beta * N * l^alpha = 1.5 * 0.125 * 8 = 1.5.
  EXPECT_GE(p.power(0), 1.5 - 1e-9);
  // And a single link must then be feasible despite the noise.
  const std::vector<std::size_t> solo{0};
  EXPECT_TRUE(is_feasible(ls, solo, prm, p));
}

TEST(Power, Validation) {
  const auto ls = parallel_pair(2.0);
  EXPECT_THROW(oblivious_power(ls, -0.1, params()), std::invalid_argument);
  EXPECT_THROW(oblivious_power(ls, 1.1, params()), std::invalid_argument);
}

TEST(Affectance, MatchesHandComputation) {
  const auto ls = parallel_pair(2.0);
  const auto p = uniform_power(ls, params(3.0));
  // I(1, 0) = (l_0 / d_10)^3 with d_10 = d(sender1, receiver0) = hypot(2,1).
  const double expected = std::pow(1.0 / std::hypot(2.0, 1.0), 3.0);
  EXPECT_NEAR(std::exp2(log2_affectance(ls, params(3.0), p, 1, 0)), expected,
              1e-12);
  // Self affectance is zero (log = -inf).
  EXPECT_EQ(log2_affectance(ls, params(3.0), p, 0, 0),
            -std::numeric_limits<double>::infinity());
}

TEST(Feasibility, FarApartPairIsFeasible) {
  const auto ls = parallel_pair(100.0);
  const std::vector<std::size_t> both{0, 1};
  EXPECT_TRUE(is_feasible(ls, both, params(), uniform_power(ls, params())));
}

TEST(Feasibility, ClosePairIsInfeasible) {
  // With beta = 2 the pair needs interference distance >= 2^(1/3) * length.
  const auto prm = params(3.0, 2.0);
  const auto ls = parallel_pair(0.5);
  const std::vector<std::size_t> both{0, 1};
  const auto rep = check_feasible(ls, both, prm, uniform_power(ls, prm));
  EXPECT_FALSE(rep.feasible);
  EXPECT_GT(rep.max_load, 1.0);
}

TEST(Feasibility, ThresholdAtUnitSinrBoundary) {
  // With alpha = 3, beta = 1, two parallel unit links, interference distance
  // hypot(sep, 1); SINR = hypot(sep,1)^3. Feasible iff hypot(sep,1) >= 1,
  // which always holds; with beta = 8 need hypot(sep,1)^3 >= 8 -> sep >= sqrt(3).
  const double boundary = std::sqrt(3.0);
  const std::vector<std::size_t> both{0, 1};
  auto prm = params(3.0, 8.0);
  const auto below = parallel_pair(boundary - 0.01);
  const auto above = parallel_pair(boundary + 0.01);
  EXPECT_FALSE(is_feasible(below, both, prm, uniform_power(below, prm)));
  EXPECT_TRUE(is_feasible(above, both, prm, uniform_power(above, prm)));
}

TEST(Feasibility, SharedNodeAlwaysInfeasible) {
  geom::Pointset pts{{0, 0}, {1, 0}, {2, 0}};
  const geom::LinkSet ls(pts, {geom::Link{0, 1}, geom::Link{1, 2}});
  const std::vector<std::size_t> both{0, 1};
  EXPECT_TRUE(has_shared_node(ls, both));
  const auto rep = check_feasible(ls, both, params(), uniform_power(ls, params()));
  EXPECT_FALSE(rep.feasible);
  EXPECT_TRUE(rep.shared_node);
}

TEST(Feasibility, SubsetsOfFeasibleSetsAreFeasible) {
  util::Rng rng(3);
  const auto prm = params(3.0, 2.0);
  for (int trial = 0; trial < 20; ++trial) {
    // Random links in a box; test subset-closedness on feasible triples.
    geom::Pointset pts;
    for (int i = 0; i < 8; ++i) {
      pts.push_back({rng.uniform(0, 50), rng.uniform(0, 50)});
    }
    std::vector<geom::Link> links;
    for (int i = 0; i < 4; ++i) links.push_back(geom::Link{2 * i, 2 * i + 1});
    geom::LinkSet ls(pts, links);
    const auto power = uniform_power(ls, prm);
    std::vector<std::size_t> all{0, 1, 2, 3};
    if (!is_feasible(ls, all, prm, power)) continue;
    for (std::size_t drop = 0; drop < 4; ++drop) {
      std::vector<std::size_t> sub;
      for (std::size_t i = 0; i < 4; ++i) {
        if (i != drop) sub.push_back(i);
      }
      EXPECT_TRUE(is_feasible(ls, sub, prm, power)) << "trial " << trial;
    }
  }
}

TEST(Feasibility, EmptyAndSingleton) {
  const auto ls = parallel_pair(1.0);
  const auto p = uniform_power(ls, params());
  EXPECT_TRUE(is_feasible(ls, {}, params(), p));
  const std::vector<std::size_t> solo{0};
  EXPECT_TRUE(is_feasible(ls, solo, params(), p));
}

TEST(PowerControl, PairSpectralRadiusExact) {
  const auto prm = params(3.0, 1.0);
  const auto ls = parallel_pair(2.0);
  const std::vector<std::size_t> both{0, 1};
  const auto res = power_control_feasible(ls, both, prm);
  // Symmetric geometry: rho = beta * (1/hypot(2,1))^3.
  EXPECT_NEAR(res.spectral_radius, std::pow(1.0 / std::hypot(2, 1), 3.0),
              1e-9);
  EXPECT_TRUE(res.feasible);
  ASSERT_EQ(res.log2_power.size(), 2u);
}

TEST(PowerControl, RescuesAsymmetricPairThatUniformCannot) {
  // A long link next to a short one: uniform power fails, power control
  // succeeds by boosting the long link.
  geom::Pointset pts{{0, 0}, {16, 0}, {20, 0}, {21, 0}};
  const geom::LinkSet ls(pts, {geom::Link{0, 1}, geom::Link{3, 2}});
  const auto prm = params(3.0, 2.0);
  const std::vector<std::size_t> both{0, 1};
  EXPECT_FALSE(is_feasible(ls, both, prm, uniform_power(ls, prm)));
  const auto res = power_control_feasible(ls, both, prm);
  ASSERT_TRUE(res.feasible);
  // The certified power vector must pass the exact check.
  const auto embedded = embed_slot_power(ls, both, res);
  EXPECT_TRUE(is_feasible(ls, both, prm, embedded));
  // Long link gets more power.
  EXPECT_GT(embedded.log2_power(0), embedded.log2_power(1));
}

TEST(PowerControl, DetectsInfeasiblePair) {
  // Two crossing-ish links sharing a midpoint region: mutual geometric mean
  // of gains >= 1 -> infeasible under ANY power.
  geom::Pointset pts{{0, 0}, {10, 0}, {5, 0.1}, {5, 10}};
  const geom::LinkSet ls(pts, {geom::Link{0, 1}, geom::Link{3, 2}});
  const auto prm = params(3.0, 1.0);
  const std::vector<std::size_t> both{0, 1};
  const auto res = power_control_feasible(ls, both, prm);
  EXPECT_FALSE(res.feasible);
  EXPECT_GE(res.spectral_radius, 1.0);
}

TEST(PowerControl, AgreesWithBruteForceSearchOnTriples) {
  // Two-sided validation on random triples:
  //  - feasible verdicts must come with a power vector passing the exact
  //    SINR check (certification);
  //  - clearly infeasible verdicts (rho >= 1.1) must not be contradicted by
  //    an exhaustive log-space power grid.
  util::Rng rng(17);
  const auto prm = params(3.0, 1.0);
  int feasible_checked = 0, infeasible_checked = 0;
  for (int trial = 0; trial < 200; ++trial) {
    geom::Pointset pts;
    for (int i = 0; i < 6; ++i) {
      pts.push_back({rng.uniform(0, 12), rng.uniform(0, 12)});
    }
    geom::LinkSet ls(pts,
                     {geom::Link{0, 1}, geom::Link{2, 3}, geom::Link{4, 5}});
    const std::vector<std::size_t> all{0, 1, 2};
    if (has_shared_node(ls, all)) continue;
    const auto res = power_control_feasible(ls, all, prm);
    if (res.feasible) {
      const auto embedded = embed_slot_power(ls, all, res);
      EXPECT_TRUE(is_feasible(ls, all, prm, embedded)) << "trial " << trial;
      ++feasible_checked;
    } else if (res.spectral_radius >= 1.1 && infeasible_checked < 6) {
      bool grid_feasible = false;
      for (double p0 = -30; p0 <= 30 && !grid_feasible; p0 += 1.0) {
        for (double p1 = -30; p1 <= 30 && !grid_feasible; p1 += 1.0) {
          for (double p2 = -30; p2 <= 30 && !grid_feasible; p2 += 1.0) {
            PowerAssignment pa(std::vector<double>{p0, p1, p2});
            grid_feasible = is_feasible(ls, all, prm, pa);
          }
        }
      }
      EXPECT_FALSE(grid_feasible)
          << "trial " << trial << " rho=" << res.spectral_radius;
      ++infeasible_checked;
    }
  }
  EXPECT_GE(feasible_checked, 3);
  EXPECT_GE(infeasible_checked, 3);
}

TEST(PowerControl, PerronPowersCertifiedOnChains) {
  // The exponential chain is the classic case where uniform power needs
  // Omega(n) slots but power control schedules interleaved subsets.
  const auto pts = instance::exponential_chain(10, 2.0);
  const auto tree = mst::mst_tree(pts, 0);
  const auto prm = params(3.0, 1.0);
  // Try the odd links as one slot.
  std::vector<std::size_t> odd;
  for (std::size_t i = 1; i < tree.links.size(); i += 2) odd.push_back(i);
  const auto res = power_control_feasible(tree.links, odd, prm);
  if (res.feasible) {
    const auto embedded = embed_slot_power(tree.links, odd, res);
    EXPECT_TRUE(is_feasible(tree.links, odd, prm, embedded));
  }
  // Either way the solver must return a definite verdict with finite rho.
  EXPECT_TRUE(std::isfinite(res.spectral_radius));
}

TEST(PowerControl, NoiseRequiresFiniteMargin) {
  const auto prm = params(3.0, 1.0, 0.01);
  const auto ls = parallel_pair(4.0);
  const std::vector<std::size_t> both{0, 1};
  const auto res = power_control_feasible(ls, both, prm);
  ASSERT_TRUE(res.feasible);
  const auto embedded = embed_slot_power(ls, both, res);
  EXPECT_TRUE(is_feasible(ls, both, prm, embedded));
}

TEST(PowerControl, EmptyAndSingleton) {
  const auto ls = parallel_pair(1.0);
  EXPECT_TRUE(power_control_feasible(ls, {}, params()).feasible);
  const std::vector<std::size_t> solo{1};
  const auto res = power_control_feasible(ls, solo, params());
  EXPECT_TRUE(res.feasible);
  EXPECT_DOUBLE_EQ(res.spectral_radius, 0.0);
}

TEST(Interference, OperatorBasics) {
  geom::Pointset pts{{0, 0}, {1, 0}, {4, 0}, {6, 0}};
  const geom::LinkSet ls(pts, {geom::Link{0, 1}, geom::Link{2, 3}});
  // I(0, 1) = min(1, (l_0 / d(0,1))^3) = (1/3)^3.
  EXPECT_NEAR(interference_between(ls, 0, 1, 3.0), 1.0 / 27.0, 1e-12);
  // I(1, 0) = min(1, (2/3)^3).
  EXPECT_NEAR(interference_between(ls, 1, 0, 3.0), 8.0 / 27.0, 1e-12);
  // Clamping at 1 for overlapping links.
  geom::Pointset pts2{{0, 0}, {10, 0}, {1, 0}, {2, 0}};
  const geom::LinkSet ls2(pts2, {geom::Link{0, 1}, geom::Link{2, 3}});
  EXPECT_DOUBLE_EQ(interference_between(ls2, 0, 1, 3.0), 1.0);
  // Self is zero.
  EXPECT_DOUBLE_EQ(interference_between(ls, 0, 0, 3.0), 0.0);
}

TEST(Interference, SharedNodeClampsToOne) {
  geom::Pointset pts{{0, 0}, {1, 0}, {3, 0}};
  const geom::LinkSet ls(pts, {geom::Link{0, 1}, geom::Link{1, 2}});
  EXPECT_DOUBLE_EQ(interference_between(ls, 0, 1, 3.0), 1.0);
}

TEST(Interference, DirectionalSums) {
  geom::Pointset pts{{0, 0}, {1, 0}, {4, 0}, {6, 0}, {10, 0}, {14, 0}};
  const geom::LinkSet ls(
      pts, {geom::Link{0, 1}, geom::Link{2, 3}, geom::Link{4, 5}});
  // Link 0 (len 1) vs longer links 1 (len 2, distance 3) and 2 (len 4,
  // distance 9).
  const double out0 = outgoing_to_longer(ls, 0, 3.0);
  EXPECT_NEAR(out0,
              std::pow(1.0 / 3.0, 3.0) + std::pow(1.0 / 9.0, 3.0), 1e-12);
  // Link 2 has no longer links.
  EXPECT_DOUBLE_EQ(outgoing_to_longer(ls, 2, 3.0), 0.0);
  // incoming_from_shorter(2) = I(0,2) + I(1,2), distances 9 and 4.
  EXPECT_NEAR(incoming_from_shorter(ls, 2, 3.0),
              std::pow(1.0 / 9.0, 3.0) + std::pow(2.0 / 4.0, 3.0), 1e-12);
}

TEST(Interference, Lemma1AuditBoundedOnRandomMsts) {
  // The paper's Lemma 1: I(i, T_i^+) = O(1) on MST links. Measured constants:
  // ~6.7 on uniform deployments, ~15.3 on grids (equal-length ties put every
  // link in T_i^+), plateauing as n grows — O(1) as claimed.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto pts = instance::uniform_square(150, 100.0, seed);
    const auto tree = mst::mst_tree(pts, 0);
    EXPECT_LT(lemma1_statistic(tree.links, 3.0), 10.0) << "seed " << seed;
  }
  const auto chain = instance::exponential_chain(24, 1.5);
  EXPECT_LT(lemma1_statistic(mst::mst_tree(chain, 0).links, 3.0), 10.0);
  // Grids: larger constant, but flat in n (the O(1) claim).
  const double g12 =
      lemma1_statistic(mst::mst_tree(instance::grid(12, 12, 1.0), 0).links, 3.0);
  const double g20 =
      lemma1_statistic(mst::mst_tree(instance::grid(20, 20, 1.0), 0).links, 3.0);
  EXPECT_LT(g12, 18.0);
  EXPECT_LT(g20, 18.0);
  EXPECT_NEAR(g12, g20, 1.0);
}

TEST(Interference, Theorem3StatisticOnFeasibleSets) {
  // For sets feasible with beta = 3^alpha, incoming interference from
  // shorter links is O(1). Verify on far-separated parallel links.
  geom::Pointset pts;
  std::vector<geom::Link> links;
  for (int i = 0; i < 6; ++i) {
    pts.push_back({i * 50.0, 0.0});
    pts.push_back({i * 50.0, 1.0});
    links.push_back(geom::Link{2 * i, 2 * i + 1});
  }
  const geom::LinkSet ls(pts, links);
  const auto prm = params(3.0, 27.0);  // beta = 3^alpha
  std::vector<std::size_t> all{0, 1, 2, 3, 4, 5};
  ASSERT_TRUE(is_feasible(ls, all, prm, uniform_power(ls, prm)));
  EXPECT_LT(theorem3_statistic(ls, all, 3.0), 2.0);
}

}  // namespace
}  // namespace wagg::sinr
