// Tests for the library extensions beyond the paper's core protocol:
// FFD packing baseline, latency-aware slot ordering, k-connectivity
// (Remark 2), extended instance families, and the CLI argument parser.

#include <gtest/gtest.h>

#include <cmath>

#include "core/kconnect.h"
#include "core/planner.h"
#include "geom/point.h"
#include "instance/basic.h"
#include "instance/extended.h"
#include "mst/tree.h"
#include "schedule/latency.h"
#include "schedule/packing.h"
#include "schedule/simulator.h"
#include "sinr/power.h"
#include "util/args.h"

namespace wagg {
namespace {

sinr::SinrParams params(double alpha = 3.0, double beta = 1.0) {
  sinr::SinrParams p;
  p.alpha = alpha;
  p.beta = beta;
  return p;
}

// --- FFD packing -------------------------------------------------------------

TEST(Packing, FfdProducesVerifiedPartition) {
  const auto pts = instance::uniform_square(120, 10.0, 3);
  const auto tree = mst::mst_tree(pts, 0);
  const auto prm = params(3.0, 2.0);
  const auto power = sinr::uniform_power(tree.links, prm);
  const auto s = schedule::ffd_schedule_fixed_power(tree.links, prm, power);
  EXPECT_TRUE(schedule::is_partition(s, tree.links.size()));
  const auto oracle = schedule::fixed_power_oracle(tree.links, prm, power);
  EXPECT_TRUE(schedule::verify_schedule(tree.links, s, oracle).ok());
}

TEST(Packing, FfdGenericMatchesFixedPowerLengths) {
  const auto pts = instance::uniform_square(60, 8.0, 5);
  const auto tree = mst::mst_tree(pts, 0);
  const auto prm = params(3.0, 2.0);
  const auto power = sinr::uniform_power(tree.links, prm);
  const auto oracle = schedule::fixed_power_oracle(tree.links, prm, power);
  const auto generic = schedule::ffd_schedule(tree.links, oracle);
  const auto fast = schedule::ffd_schedule_fixed_power(tree.links, prm, power);
  EXPECT_EQ(generic.length(), fast.length());
  EXPECT_EQ(generic.slots, fast.slots);
}

TEST(Packing, FfdWithPowerControlBeatsUniform) {
  // On the exponential chain FFD under power control packs interleaved
  // links; under uniform power nearly everything conflicts.
  const auto pts = instance::exponential_chain(32, 2.0);
  const auto tree = mst::mst_tree(pts, 0);
  const auto prm = params(3.0, 1.0);
  const auto uni = schedule::ffd_schedule_fixed_power(
      tree.links, prm, sinr::uniform_power(tree.links, prm));
  const auto pc = schedule::ffd_schedule(
      tree.links, schedule::power_control_oracle(tree.links, prm));
  EXPECT_LT(pc.length() * 2, uni.length());
  EXPECT_TRUE(schedule::is_partition(pc, tree.links.size()));
}

TEST(Packing, EmptyLinkSet) {
  geom::Pointset pts{{0, 0}, {1, 0}};
  const geom::LinkSet empty(pts, {});
  const auto prm = params();
  EXPECT_TRUE(
      schedule::ffd_schedule_fixed_power(empty, prm,
                                         sinr::uniform_power(empty, prm))
          .empty());
}

// --- latency-aware ordering --------------------------------------------------

TEST(Latency, DepthOrderingCutsChainLatency) {
  const std::size_t n = 48;
  const auto tree = mst::mst_tree(instance::unit_chain(n),
                                  static_cast<std::int32_t>(n - 1));
  schedule::Schedule s;
  s.slots.assign(3, {});
  for (std::size_t i = 0; i < tree.links.size(); ++i) {
    const auto sender = static_cast<std::size_t>(tree.links.link(i).sender);
    s.slots[static_cast<std::size_t>(tree.depth[sender]) % 3].push_back(i);
  }
  const auto ordered = schedule::optimize_slot_order(tree, s);
  EXPECT_LE(schedule::slot_order_cost(tree, ordered),
            schedule::slot_order_cost(tree, s));
  schedule::SimulationConfig cfg;
  cfg.num_frames = 40;
  cfg.generation_period = 3;
  const auto before = schedule::simulate_aggregation(tree, s, cfg);
  const auto after = schedule::simulate_aggregation(tree, ordered, cfg);
  // Same rate...
  EXPECT_NEAR(before.steady_rate, after.steady_rate, 1e-9);
  // ... strictly better worst-case latency (one hop per slot instead of ~2).
  EXPECT_LT(after.max_latency, before.max_latency);
  EXPECT_LE(after.max_latency, n + 4);
}

TEST(Latency, ReorderingPreservesSlotContents) {
  const auto pts = instance::uniform_square(80, 8.0, 7);
  core::PlannerConfig cfg;
  cfg.power_mode = core::PowerMode::kGlobal;
  const auto plan = core::plan_aggregation(pts, cfg);
  const auto ordered =
      schedule::optimize_slot_order(plan.tree, plan.schedule());
  ASSERT_EQ(ordered.length(), plan.schedule().length());
  // Same multiset of slots (feasibility untouched).
  auto canon = [](schedule::Schedule s) {
    for (auto& slot : s.slots) std::sort(slot.begin(), slot.end());
    std::sort(s.slots.begin(), s.slots.end());
    return s.slots;
  };
  EXPECT_EQ(canon(ordered), canon(plan.schedule()));
  // Never worse than the input ordering.
  EXPECT_LE(schedule::slot_order_cost(plan.tree, ordered),
            schedule::slot_order_cost(plan.tree, plan.schedule()));
}

TEST(Latency, CostCountsCircularGaps) {
  // Chain of 4 links, all in distinct slots in reverse order: every hop has
  // gap L - 1... vs forward order: every hop gap 1.
  const auto tree = mst::mst_tree(instance::unit_chain(5), 4);
  schedule::Schedule forward, backward;
  // link of depth-d sender fires at position (height - d).
  std::vector<std::size_t> by_depth(4);
  for (std::size_t i = 0; i < 4; ++i) {
    const auto sender = static_cast<std::size_t>(tree.links.link(i).sender);
    by_depth[static_cast<std::size_t>(tree.depth[sender]) - 1] = i;
  }
  for (std::size_t d = 4; d-- > 0;) forward.slots.push_back({by_depth[d]});
  for (std::size_t d = 0; d < 4; ++d) backward.slots.push_back({by_depth[d]});
  // 3 tree edges with both links scheduled.
  EXPECT_DOUBLE_EQ(schedule::slot_order_cost(tree, forward), 3.0);
  EXPECT_DOUBLE_EQ(schedule::slot_order_cost(tree, backward), 3.0 * 3.0);
  // The optimizer turns the backward order into a cost-3 order.
  const auto fixed = schedule::optimize_slot_order(tree, backward);
  EXPECT_DOUBLE_EQ(schedule::slot_order_cost(tree, fixed), 3.0);
}

TEST(Latency, Validation) {
  const auto tree = mst::mst_tree(instance::unit_chain(4), 0);
  schedule::Schedule bad;
  bad.slots = {{99}};
  EXPECT_THROW(schedule::optimize_slot_order(tree, bad),
               std::invalid_argument);
  EXPECT_THROW((void)schedule::slot_order_cost(tree, bad),
               std::invalid_argument);
}

// --- k-connectivity (Remark 2) ----------------------------------------------

TEST(KConnect, PlansVerifyAndGrowMildly) {
  const auto pts = instance::uniform_square(60, 8.0, 9);
  core::PlannerConfig cfg;
  cfg.power_mode = core::PowerMode::kGlobal;
  std::size_t prev_slots = 0;
  double prev_stat = 0.0;
  for (int k = 1; k <= 3; ++k) {
    const auto plan = core::plan_k_connected(pts, k, cfg);
    EXPECT_TRUE(plan.verified()) << k;
    EXPECT_EQ(plan.links.size(), k * (pts.size() - 1)) << k;
    EXPECT_GE(plan.scheduling.schedule.length(), prev_slots) << k;
    EXPECT_GE(plan.lemma1_statistic + 1e-9, prev_stat) << k;
    prev_slots = plan.scheduling.schedule.length();
    prev_stat = plan.lemma1_statistic;
  }
}

TEST(KConnect, KOneMatchesMstScheduleLength) {
  const auto pts = instance::uniform_square(50, 8.0, 11);
  core::PlannerConfig cfg;
  cfg.power_mode = core::PowerMode::kOblivious;
  const auto kplan = core::plan_k_connected(pts, 1, cfg);
  const auto plan = core::plan_aggregation(pts, cfg);
  // Same edge set (the MST), possibly different orientation: identical
  // lengths, so identical conflict graph size and very close schedules.
  EXPECT_EQ(kplan.links.size(), plan.tree.links.size());
  EXPECT_NEAR(static_cast<double>(kplan.scheduling.schedule.length()),
              static_cast<double>(plan.schedule().length()), 2.0);
}

TEST(KConnect, SurvivesSingleEdgeRemoval) {
  // 2-edge-connectivity: removing any one edge leaves the graph connected.
  const auto pts = instance::uniform_square(24, 6.0, 13);
  const auto edges = mst::k_fold_mst(pts, 2);
  for (std::size_t skip = 0; skip < edges.size(); ++skip) {
    mst::UnionFind uf(pts.size());
    for (std::size_t e = 0; e < edges.size(); ++e) {
      if (e == skip) continue;
      uf.unite(static_cast<std::size_t>(edges[e].u),
               static_cast<std::size_t>(edges[e].v));
    }
    EXPECT_EQ(uf.num_components(), 1u) << "removing edge " << skip;
  }
}

TEST(KConnect, Validation) {
  core::PlannerConfig cfg;
  EXPECT_THROW(core::plan_k_connected({{0, 0}}, 1, cfg),
               std::invalid_argument);
  EXPECT_THROW(core::plan_k_connected(instance::unit_chain(4), 0, cfg),
               std::invalid_argument);
}

// --- extended instance families ----------------------------------------------

TEST(Extended, HierarchicalCountsAndScales) {
  const auto pts = instance::hierarchical(4, 3, 4.0, 5);
  EXPECT_EQ(pts.size(), 81u);  // 3^4
  // Multi-scale: diameter >> typical nearest-neighbour distance.
  EXPECT_GT(geom::diameter(pts), 20.0 * geom::min_pairwise_distance(pts));
  // Deterministic.
  EXPECT_EQ(pts, instance::hierarchical(4, 3, 4.0, 5));
  EXPECT_THROW(instance::hierarchical(0, 3, 4.0, 1), std::invalid_argument);
  EXPECT_THROW(instance::hierarchical(12, 16, 4.0, 1), std::invalid_argument);
}

TEST(Extended, ParetoFieldHeavyTail) {
  const auto light = instance::pareto_field(400, 5.0, 7);
  const auto heavy = instance::pareto_field(400, 0.5, 7);
  EXPECT_EQ(light.size(), 400u);
  // Heavier tail -> much larger spread.
  EXPECT_GT(geom::diameter(heavy), 10.0 * geom::diameter(light));
  EXPECT_THROW(instance::pareto_field(400, 0.0, 1), std::invalid_argument);
}

TEST(Extended, SpiralIsSmooth) {
  const auto pts = instance::spiral(200, 6.0, 1.0);
  EXPECT_EQ(pts.size(), 200u);
  // Consecutive points are close relative to the diameter.
  double max_step = 0.0;
  for (std::size_t i = 0; i + 1 < pts.size(); ++i) {
    max_step = std::max(max_step, geom::distance(pts[i], pts[i + 1]));
  }
  EXPECT_LT(max_step, geom::diameter(pts) / 4.0);
  EXPECT_THROW(instance::spiral(1, 6.0), std::invalid_argument);
}

TEST(Extended, PerturbedGridKeepsPointsDistinct) {
  const auto pts = instance::perturbed_grid(12, 12, 1.0, 0.3, 3);
  EXPECT_EQ(pts.size(), 144u);
  EXPECT_GT(geom::min_pairwise_distance(pts), 0.0);
  EXPECT_THROW(instance::perturbed_grid(4, 4, 1.0, 0.5, 1),
               std::invalid_argument);
}

class ExtendedFamiliesPlan : public ::testing::TestWithParam<int> {};

TEST_P(ExtendedFamiliesPlan, PlannerVerifiesOnEveryFamily) {
  geom::Pointset pts;
  switch (GetParam()) {
    case 0:
      pts = instance::hierarchical(4, 3, 5.0, 2);
      break;
    case 1:
      pts = instance::pareto_field(150, 1.0, 2);
      break;
    case 2:
      pts = instance::spiral(150, 8.0);
      break;
    case 3:
      pts = instance::perturbed_grid(12, 12, 1.0, 0.25, 2);
      break;
    default:
      FAIL();
  }
  for (const auto mode :
       {core::PowerMode::kGlobal, core::PowerMode::kOblivious}) {
    core::PlannerConfig cfg;
    cfg.power_mode = mode;
    const auto plan = core::plan_aggregation(pts, cfg);
    EXPECT_TRUE(plan.verified()) << core::to_string(mode);
    EXPECT_TRUE(
        schedule::is_partition(plan.schedule(), plan.tree.links.size()));
  }
}

INSTANTIATE_TEST_SUITE_P(Families, ExtendedFamiliesPlan,
                         ::testing::Values(0, 1, 2, 3));

// --- CLI args ------------------------------------------------------------------

TEST(Args, ParsesKeyValueAndFlags) {
  const char* argv[] = {"prog", "--n=42", "--family=grid", "--verbose",
                        "ignored"};
  const util::Args args(5, argv);
  EXPECT_TRUE(args.has("n"));
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_FALSE(args.has("ignored"));
  EXPECT_EQ(args.get("family", "x"), "grid");
  EXPECT_EQ(args.get("missing", "fallback"), "fallback");
  EXPECT_EQ(args.get_int("n", 0), 42);
  EXPECT_EQ(args.get("verbose", ""), "1");
}

TEST(Args, NumericValidation) {
  const char* argv[] = {"prog", "--alpha=3.5", "--bad=3x"};
  const util::Args args(3, argv);
  EXPECT_DOUBLE_EQ(args.get_double("alpha", 0.0), 3.5);
  EXPECT_DOUBLE_EQ(args.get_double("missing", 2.5), 2.5);
  EXPECT_THROW((void)args.get_double("bad", 0.0), std::invalid_argument);
  EXPECT_THROW((void)args.get_int("alpha", 0), std::invalid_argument);
}

}  // namespace
}  // namespace wagg

// --- multicoloring search (appended suite) -----------------------------------

#include "instance/special.h"
#include "schedule/multicolor.h"

namespace wagg {
namespace {

TEST(Multicolor, RecoversFiveCycleRate) {
  // The search must rediscover (a rotation of) the paper's 2/5 schedule.
  const auto inst = instance::five_cycle_instance();
  const auto prm = params(3.0, 1.0);
  const auto power = sinr::uniform_power(inst.links, prm);
  const auto oracle = schedule::fixed_power_oracle(inst.links, prm, power);
  schedule::Schedule baseline;
  baseline.slots = inst.coloring_slots;  // 3 slots, rate 1/3
  schedule::MulticolorOptions opts;
  opts.restarts_per_period = 64;
  const auto result = schedule::improve_rate_by_multicoloring(
      inst.links, baseline, oracle, opts);
  EXPECT_TRUE(result.improved());
  EXPECT_NEAR(result.rate, 0.4, 1e-9);
  // Result verifies slot by slot.
  EXPECT_TRUE(
      schedule::verify_schedule(inst.links, result.schedule, oracle)
          .all_slots_feasible);
  EXPECT_TRUE(schedule::covers_all_links(result.schedule, inst.links.size()));
}

TEST(Multicolor, NeverWorseThanBaseline) {
  const auto pts = instance::uniform_square(24, 6.0, 3);
  core::PlannerConfig cfg;
  cfg.power_mode = core::PowerMode::kUniform;
  const auto plan = core::plan_aggregation(pts, cfg);
  const auto oracle = core::oracle_for_mode(plan.tree.links, cfg);
  schedule::MulticolorOptions opts;
  opts.restarts_per_period = 8;
  opts.period_stretch = 1.5;
  const auto result = schedule::improve_rate_by_multicoloring(
      plan.tree.links, plan.schedule(), oracle, opts);
  EXPECT_GE(result.rate + 1e-12, result.baseline_rate);
  EXPECT_TRUE(schedule::covers_all_links(result.schedule,
                                         plan.tree.links.size()));
}

TEST(Multicolor, Validation) {
  const auto pts = instance::unit_chain(4);
  const auto tree = mst::mst_tree(pts, 0);
  const auto prm = params();
  const auto oracle = schedule::fixed_power_oracle(
      tree.links, prm, sinr::uniform_power(tree.links, prm));
  schedule::Schedule not_partition;
  not_partition.slots = {{0, 1}};
  EXPECT_THROW(schedule::improve_rate_by_multicoloring(tree.links,
                                                       not_partition, oracle),
               std::invalid_argument);
}

}  // namespace
}  // namespace wagg
