#include "runtime/executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace wagg::runtime {
namespace {

TEST(Executor, RunsSubmittedTasks) {
  Executor executor(Executor::Options{.num_workers = 4});
  EXPECT_EQ(executor.num_workers(), 4u);
  auto queue = executor.make_queue(64);
  std::atomic<int> ran{0};
  for (int i = 0; i < 32; ++i) {
    ASSERT_EQ(queue->try_submit([&ran] { ran.fetch_add(1); }),
              SubmitResult::kAccepted);
  }
  queue->wait_drained();
  EXPECT_EQ(ran.load(), 32);
  EXPECT_EQ(queue->depth(), 0u);
}

TEST(Executor, SerialQueuePreservesSubmitOrder) {
  // Many workers, ONE queue: the single-drainer invariant must keep the
  // tasks in submit order even though any worker may pick the queue up.
  Executor executor(Executor::Options{.num_workers = 8});
  auto queue = executor.make_queue(256);
  std::vector<int> order;
  std::mutex order_mutex;
  constexpr int kTasks = 200;
  for (int i = 0; i < kTasks; ++i) {
    ASSERT_EQ(queue->submit_blocking([&order, &order_mutex, i] {
                std::lock_guard<std::mutex> lock(order_mutex);
                order.push_back(i);
              }),
              SubmitResult::kAccepted);
  }
  queue->wait_drained();
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kTasks));
  for (int i = 0; i < kTasks; ++i) EXPECT_EQ(order[i], i);
}

TEST(Executor, SerialQueueNeverRunsConcurrently) {
  Executor executor(Executor::Options{.num_workers = 8});
  auto queue = executor.make_queue(256);
  std::atomic<int> inside{0};
  std::atomic<bool> overlapped{false};
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(queue->submit_blocking([&inside, &overlapped] {
                if (inside.fetch_add(1) != 0) overlapped.store(true);
                std::this_thread::yield();
                inside.fetch_sub(1);
              }),
              SubmitResult::kAccepted);
  }
  queue->wait_drained();
  EXPECT_FALSE(overlapped.load());
}

TEST(Executor, QueuesRunConcurrentlyAcrossWorkers) {
  // Two queues, two workers: tasks that wait on each other can only finish
  // if the pool really runs the queues in parallel.
  Executor executor(Executor::Options{.num_workers = 2, .num_stripes = 2});
  auto a = executor.make_queue(4);
  auto b = executor.make_queue(4);
  std::mutex mutex;
  std::condition_variable cv;
  int arrivals = 0;
  const auto rendezvous = [&] {
    std::unique_lock<std::mutex> lock(mutex);
    ++arrivals;
    cv.notify_all();
    cv.wait(lock, [&] { return arrivals >= 2; });
  };
  ASSERT_EQ(a->try_submit(rendezvous), SubmitResult::kAccepted);
  ASSERT_EQ(b->try_submit(rendezvous), SubmitResult::kAccepted);
  a->wait_drained();
  b->wait_drained();
  EXPECT_EQ(arrivals, 2);
}

TEST(Executor, TrySubmitReportsQueueFull) {
  Executor executor(Executor::Options{.num_workers = 1});
  auto gate = executor.make_queue(1);
  // Park the worker on a gate task so the test queue cannot drain.
  std::mutex mutex;
  std::condition_variable cv;
  bool release = false;
  ASSERT_EQ(gate->try_submit([&] {
              std::unique_lock<std::mutex> lock(mutex);
              cv.wait(lock, [&] { return release; });
            }),
            SubmitResult::kAccepted);

  auto queue = executor.make_queue(2);
  EXPECT_EQ(queue->try_submit([] {}), SubmitResult::kAccepted);
  EXPECT_EQ(queue->try_submit([] {}), SubmitResult::kAccepted);
  EXPECT_EQ(queue->try_submit([] {}), SubmitResult::kQueueFull);

  {
    std::lock_guard<std::mutex> lock(mutex);
    release = true;
  }
  cv.notify_all();
  queue->wait_drained();
  EXPECT_EQ(queue->try_submit([] {}), SubmitResult::kAccepted);
  queue->wait_drained();
}

TEST(Executor, SubmitBlockingWaitsForSpace) {
  Executor executor(Executor::Options{.num_workers = 1});
  // Park the single worker on a separate gate queue, and WAIT for the gate
  // task to start — only then is the test queue's capacity accounting
  // deterministic (nothing can drain it until the gate releases).
  auto gate = executor.make_queue(1);
  std::mutex mutex;
  std::condition_variable cv;
  bool started = false;
  bool release = false;
  ASSERT_EQ(gate->try_submit([&] {
              std::unique_lock<std::mutex> lock(mutex);
              started = true;
              cv.notify_all();
              cv.wait(lock, [&] { return release; });
            }),
            SubmitResult::kAccepted);
  {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return started; });
  }

  auto queue = executor.make_queue(1);
  ASSERT_EQ(queue->try_submit([] {}), SubmitResult::kAccepted);
  // The mailbox is now full; a blocking submit from another thread must
  // park until the gate releases the worker and the queue drains.

  std::atomic<bool> submitted{false};
  std::thread submitter([&] {
    EXPECT_EQ(queue->submit_blocking([] {}), SubmitResult::kAccepted);
    submitted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(submitted.load());
  {
    std::lock_guard<std::mutex> lock(mutex);
    release = true;
  }
  cv.notify_all();
  submitter.join();
  EXPECT_TRUE(submitted.load());
  queue->wait_drained();
}

TEST(Executor, CloseRejectsNewWorkButDrainsQueued) {
  Executor executor(Executor::Options{.num_workers = 1});
  auto gate = executor.make_queue(1);
  std::mutex mutex;
  std::condition_variable cv;
  bool release = false;
  ASSERT_EQ(gate->try_submit([&] {
              std::unique_lock<std::mutex> lock(mutex);
              cv.wait(lock, [&] { return release; });
            }),
            SubmitResult::kAccepted);

  auto queue = executor.make_queue(8);
  std::atomic<int> ran{0};
  ASSERT_EQ(queue->try_submit([&ran] { ran.fetch_add(1); }),
            SubmitResult::kAccepted);
  ASSERT_EQ(queue->try_submit([&ran] { ran.fetch_add(1); }),
            SubmitResult::kAccepted);
  queue->close();
  EXPECT_TRUE(queue->closed());
  EXPECT_EQ(queue->try_submit([&ran] { ran.fetch_add(1); }),
            SubmitResult::kClosed);
  EXPECT_EQ(queue->submit_blocking([&ran] { ran.fetch_add(1); }),
            SubmitResult::kClosed);

  {
    std::lock_guard<std::mutex> lock(mutex);
    release = true;
  }
  cv.notify_all();
  queue->wait_drained();
  EXPECT_EQ(ran.load(), 2);  // the queued tasks still ran, the rejected not
}

TEST(Executor, CloseWakesBlockedSubmitters) {
  Executor executor(Executor::Options{.num_workers = 1});
  auto gate = executor.make_queue(1);
  std::mutex mutex;
  std::condition_variable cv;
  bool started = false;
  bool release = false;
  ASSERT_EQ(gate->try_submit([&] {
              std::unique_lock<std::mutex> lock(mutex);
              started = true;
              cv.notify_all();
              cv.wait(lock, [&] { return release; });
            }),
            SubmitResult::kAccepted);
  {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return started; });
  }

  auto queue = executor.make_queue(1);
  ASSERT_EQ(queue->try_submit([] {}), SubmitResult::kAccepted);
  std::thread submitter([&] {
    EXPECT_EQ(queue->submit_blocking([] {}), SubmitResult::kClosed);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  queue->close();
  submitter.join();
  {
    std::lock_guard<std::mutex> lock(mutex);
    release = true;
  }
  cv.notify_all();
  queue->wait_drained();  // the accepted task still runs after close
}

TEST(Executor, ShutdownDrainsAcceptedTasks) {
  std::atomic<int> ran{0};
  {
    Executor executor(Executor::Options{.num_workers = 2});
    std::vector<std::shared_ptr<Executor::SerialQueue>> queues;
    for (int q = 0; q < 8; ++q) {
      queues.push_back(executor.make_queue(32));
      for (int i = 0; i < 16; ++i) {
        ASSERT_EQ(queues.back()->try_submit([&ran] { ran.fetch_add(1); }),
                  SubmitResult::kAccepted);
      }
    }
    executor.shutdown();
    EXPECT_EQ(ran.load(), 8 * 16);
    // After shutdown every submit is rejected.
    EXPECT_EQ(queues[0]->try_submit([] {}), SubmitResult::kShutdown);
    EXPECT_EQ(queues[0]->submit_blocking([] {}), SubmitResult::kShutdown);
    executor.shutdown();  // idempotent
  }
  EXPECT_EQ(ran.load(), 8 * 16);
}

TEST(Executor, ShutdownConcurrentWithSubmittersRunsEveryAcceptedTask) {
  // Regression test for a shutdown/submit race: a submitter could pass the
  // shutting_down_ check, get descheduled, and push its task after the
  // shutdown drain had already observed pending == 0 and let the workers
  // exit — the task was ACCEPTED but never ran, silently violating the
  // graceful-drain contract. shutdown() now fences each live queue's mutex
  // after publishing the flag, so every submit critical section either
  // completed before the fence (its task is visible to the drain) or
  // observes the flag and rejects. The invariant under concurrent
  // shutdown is therefore exact: ran == accepted.
  for (int round = 0; round < 20; ++round) {
    Executor executor(Executor::Options{.num_workers = 2, .num_stripes = 2});
    constexpr int kThreads = 4;
    std::vector<std::shared_ptr<Executor::SerialQueue>> queues;
    for (int q = 0; q < kThreads; ++q) {
      queues.push_back(executor.make_queue(64));
    }
    std::atomic<int> accepted{0};
    std::atomic<int> ran{0};
    std::atomic<bool> stop{false};
    std::vector<std::thread> submitters;
    for (int t = 0; t < kThreads; ++t) {
      submitters.emplace_back([&, t] {
        for (int i = 0; !stop.load(std::memory_order_relaxed); ++i) {
          const auto result =
              i % 2 == 0 ? queues[t]->try_submit([&ran] { ran.fetch_add(1); })
                         : queues[t]->submit_blocking(
                               [&ran] { ran.fetch_add(1); });
          if (result == SubmitResult::kAccepted) {
            accepted.fetch_add(1);
          } else if (result == SubmitResult::kShutdown) {
            return;  // the flag is published: every later submit rejects too
          }
        }
      });
    }
    // Let the storm build, then pull the plug mid-flight.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    executor.shutdown();
    stop.store(true);
    for (auto& thread : submitters) thread.join();
    EXPECT_EQ(ran.load(), accepted.load()) << "round " << round;
  }
}

TEST(Executor, WorkStealingCoversAllStripes) {
  // More stripes than workers: queues pinned to stripes no worker calls
  // home must still be drained via the steal scan.
  Executor executor(Executor::Options{.num_workers = 1, .num_stripes = 7});
  EXPECT_EQ(executor.num_stripes(), 7u);
  std::atomic<int> ran{0};
  std::vector<std::shared_ptr<Executor::SerialQueue>> queues;
  for (int q = 0; q < 14; ++q) {
    queues.push_back(executor.make_queue(4));
    ASSERT_EQ(queues.back()->try_submit([&ran] { ran.fetch_add(1); }),
              SubmitResult::kAccepted);
  }
  for (auto& queue : queues) queue->wait_drained();
  EXPECT_EQ(ran.load(), 14);
}

TEST(Executor, ConcurrentSubmittersStress) {
  // Cross-thread submit storm over shared queues: the TSan target for the
  // mailbox/ready-list/sleep protocol.
  Executor executor(Executor::Options{.num_workers = 4, .num_stripes = 4});
  constexpr int kQueues = 16;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::shared_ptr<Executor::SerialQueue>> queues;
  for (int q = 0; q < kQueues; ++q) queues.push_back(executor.make_queue(8));
  std::atomic<int> ran{0};
  std::atomic<int> rejected{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        auto& queue = queues[(t * kPerThread + i) % kQueues];
        const auto result =
            i % 2 == 0 ? queue->submit_blocking([&ran] { ran.fetch_add(1); })
                       : queue->try_submit([&ran] { ran.fetch_add(1); });
        if (result == SubmitResult::kAccepted) continue;
        ASSERT_EQ(result, SubmitResult::kQueueFull);
        rejected.fetch_add(1);
      }
    });
  }
  for (auto& thread : submitters) thread.join();
  for (auto& queue : queues) queue->wait_drained();
  EXPECT_EQ(ran.load() + rejected.load(), kThreads * kPerThread);
  EXPECT_EQ(executor.pending_tasks(), 0u);
}

TEST(Executor, DeepMailboxDoesNotStarveSiblings) {
  // One queue with many tasks, one with a single task, one worker, ONE
  // stripe: round-robin requeueing must let the single task run before the
  // deep mailbox finishes.
  Executor executor(Executor::Options{.num_workers = 1, .num_stripes = 1});
  auto deep = executor.make_queue(128);
  auto shallow = executor.make_queue(4);

  std::mutex mutex;
  std::condition_variable cv;
  bool release = false;
  // Hold the worker so both queues are fully populated before draining.
  auto gate = executor.make_queue(1);
  ASSERT_EQ(gate->try_submit([&] {
              std::unique_lock<std::mutex> lock(mutex);
              cv.wait(lock, [&] { return release; });
            }),
            SubmitResult::kAccepted);

  std::atomic<int> deep_done{0};
  std::atomic<int> deep_done_when_shallow_ran{-1};
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(deep->try_submit([&deep_done] { deep_done.fetch_add(1); }),
              SubmitResult::kAccepted);
  }
  ASSERT_EQ(shallow->try_submit([&] {
              deep_done_when_shallow_ran.store(deep_done.load());
            }),
            SubmitResult::kAccepted);

  {
    std::lock_guard<std::mutex> lock(mutex);
    release = true;
  }
  cv.notify_all();
  deep->wait_drained();
  shallow->wait_drained();
  EXPECT_EQ(deep_done.load(), 100);
  // The shallow task ran long before the deep queue drained (round-robin
  // gives it the second slot; allow generous slack).
  EXPECT_GE(deep_done_when_shallow_ran.load(), 0);
  EXPECT_LT(deep_done_when_shallow_ran.load(), 50);
}

}  // namespace
}  // namespace wagg::runtime
