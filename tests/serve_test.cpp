#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <random>
#include <span>
#include <stdexcept>
#include <thread>
#include <vector>

#include "dynamic/dynamic_planner.h"
#include "dynamic/mutation.h"
#include "geom/point.h"
#include "instance/basic.h"
#include "runtime/plan_service.h"
#include "workload/workload.h"

namespace wagg::runtime {
namespace {

geom::Pointset points(std::size_t n, std::uint64_t seed) {
  return instance::uniform_square(n, 7.0, seed);
}

dynamic::DynamicOptions dyn_options(core::PowerMode mode,
                                    bool audit = false) {
  dynamic::DynamicOptions options;
  options.config = workload::mode_config(mode);
  options.audit = audit;
  return options;
}

dynamic::ChurnTrace trace_for(const geom::Pointset& initial,
                              std::size_t epochs, std::uint64_t seed) {
  dynamic::ChurnParams params;
  params.epochs = epochs;
  params.rate = 0.05;
  return dynamic::make_churn_trace(initial, params, seed);
}

// The acceptance currency: async sessions produce plans digest-identical to
// a serial DynamicPlanner fed the same trace, and per-session epochs run in
// submit order no matter how many workers multiplex the pool.
TEST(Serve, AsyncMatchesSyncDigestAndOrder) {
  constexpr std::size_t kSessions = 6;
  constexpr std::size_t kEpochs = 5;
  PlanService service(ServiceOptions{.num_workers = 4});

  std::vector<PlanService::SessionId> ids;
  std::vector<geom::Pointset> initials;
  std::vector<dynamic::ChurnTrace> traces;
  std::vector<std::future<OpenOutcome>> opens;
  for (std::size_t s = 0; s < kSessions; ++s) {
    initials.push_back(points(40 + 4 * s, 100 + s));
    traces.push_back(trace_for(initials.back(), kEpochs, 900 + s));
    opens.push_back(service.open_session_async(
        initials.back(), dyn_options(core::PowerMode::kOblivious)));
  }
  for (auto& open : opens) {
    OpenOutcome outcome = open.get();
    ASSERT_EQ(outcome.status, SessionStatus::kOk) << outcome.error;
    ids.push_back(outcome.id);
  }
  EXPECT_EQ(service.num_sessions(), kSessions);

  // Queue every epoch of every session before waiting on any of them.
  std::vector<std::vector<std::future<EpochOutcome>>> futures(kSessions);
  for (std::size_t e = 0; e < kEpochs; ++e) {
    for (std::size_t s = 0; s < kSessions; ++s) {
      futures[s].push_back(
          service.submit_epoch(ids[s], traces[s][e], OnFull::kBlock));
    }
  }
  for (std::size_t s = 0; s < kSessions; ++s) {
    for (std::size_t e = 0; e < kEpochs; ++e) {
      EpochOutcome outcome = futures[s][e].get();
      ASSERT_EQ(outcome.status, SessionStatus::kOk) << outcome.error;
      // report.epoch counts from 0 (the initial plan): submit order holds.
      EXPECT_EQ(outcome.report.epoch, e + 1);
    }
  }

  for (std::size_t s = 0; s < kSessions; ++s) {
    dynamic::DynamicPlanner serial(initials[s],
                                   dyn_options(core::PowerMode::kOblivious));
    for (const auto& epoch : traces[s]) {
      (void)serial.apply(std::span<const dynamic::Mutation>(epoch));
    }
    EXPECT_EQ(service.session_digest(ids[s]), snapshot_digest(serial))
        << "session " << s;
    EXPECT_EQ(service.close_session(ids[s]), SessionStatus::kOk);
  }
  EXPECT_EQ(service.num_sessions(), 0u);
}

// submit_epochs queues a whole trace as ONE mailbox entry and lands on the
// same plan as epoch-at-a-time submission.
TEST(Serve, BatchedSubmitMatchesSingleEpochPath) {
  PlanService service(ServiceOptions{.num_workers = 2});
  const auto initial = points(48, 7);
  const auto trace = trace_for(initial, 6, 77);

  const auto batched =
      service.open_session(initial, dyn_options(core::PowerMode::kOblivious));
  EpochOutcome outcome =
      service.submit_epochs(batched, trace, OnFull::kBlock).get();
  ASSERT_EQ(outcome.status, SessionStatus::kOk) << outcome.error;
  EXPECT_EQ(outcome.report.epoch, trace.size());

  const auto stepped =
      service.open_session(initial, dyn_options(core::PowerMode::kOblivious));
  for (const auto& epoch : trace) {
    (void)service.advance_session(
        stepped, std::span<const dynamic::Mutation>(epoch));
  }
  EXPECT_EQ(service.session_digest(batched), service.session_digest(stepped));
  (void)service.close_session(batched);
  (void)service.close_session(stepped);
}

TEST(Serve, LifecycleStatusesAreTypedNotUB) {
  PlanService service(ServiceOptions{.num_workers = 2});
  const auto initial = points(40, 3);

  // Never-issued ids resolve kUnknownSession everywhere.
  const PlanService::SessionId bogus = (std::uint64_t{7} << 32) | 123u;
  EXPECT_EQ(service.close_session(bogus), SessionStatus::kUnknownSession);
  EXPECT_EQ(service.submit_epoch(bogus, {}).get().status,
            SessionStatus::kUnknownSession);
  EXPECT_EQ(service.close_session(0), SessionStatus::kUnknownSession);
  EXPECT_THROW((void)service.session(bogus), std::invalid_argument);
  EXPECT_THROW((void)service.session_stats(bogus), std::invalid_argument);

  const auto id =
      service.open_session(initial, dyn_options(core::PowerMode::kUniform));
  EXPECT_EQ(service.close_session(id), SessionStatus::kOk);

  // Closed ids are data, not UB: typed status, no exception on submit.
  EXPECT_EQ(service.close_session(id), SessionStatus::kClosedSession);
  EXPECT_EQ(service.submit_epoch(id, {}).get().status,
            SessionStatus::kClosedSession);
  EXPECT_THROW((void)service.advance_session(id, {}), std::invalid_argument);
}

TEST(Serve, GenerationTagDetectsSlotReuse) {
  PlanService service(ServiceOptions{.num_workers = 1, .max_sessions = 1});
  const auto initial = points(40, 5);
  const auto trace = trace_for(initial, 2, 11);

  const auto first =
      service.open_session(initial, dyn_options(core::PowerMode::kUniform));
  EXPECT_EQ(service.close_session(first), SessionStatus::kOk);

  // max_sessions=1 forces the second open onto the SAME slot; only the
  // generation tag distinguishes the stale id from the live session.
  const auto second =
      service.open_session(initial, dyn_options(core::PowerMode::kUniform));
  ASSERT_NE(first, second);
  EXPECT_EQ(service.submit_epoch(first, trace[0]).get().status,
            SessionStatus::kClosedSession);
  EXPECT_EQ(service.submit_epoch(second, trace[0], OnFull::kBlock)
                .get()
                .status,
            SessionStatus::kOk);
  EXPECT_EQ(service.session_stats(second).epochs, 1u);
  EXPECT_EQ(service.close_session(second), SessionStatus::kOk);
}

TEST(Serve, MailboxBackpressureRejectsAndCounts) {
  PlanService service(ServiceOptions{
      .num_workers = 1, .max_sessions = 4, .session_mailbox_capacity = 1});
  const auto initial = points(48, 9);
  const auto id =
      service.open_session(initial, dyn_options(core::PowerMode::kOblivious));

  // One long batched entry keeps the single worker busy; with a capacity-1
  // mailbox, two immediate reject-mode submits cannot both be admitted.
  auto big = service.submit_epochs(id, trace_for(initial, 20, 13),
                                   OnFull::kBlock);
  // The fillers move the sink (node 0) — valid no matter what the big trace
  // did to the instance, and valid to apply any number of times.
  dynamic::Mutation nudge;
  nudge.kind = dynamic::Mutation::Kind::kMove;
  nudge.node = 0;
  nudge.position = initial[0];
  auto a = service.submit_epoch(id, {nudge}, OnFull::kReject);
  auto b = service.submit_epoch(id, {nudge}, OnFull::kReject);
  const auto status_a = a.get().status;
  const auto status_b = b.get().status;
  EXPECT_TRUE(status_a == SessionStatus::kMailboxFull ||
              status_b == SessionStatus::kMailboxFull)
      << to_string(status_a) << " / " << to_string(status_b);
  EXPECT_EQ(big.get().status, SessionStatus::kOk);

  // Blocking submits ride out the backpressure instead.
  EXPECT_EQ(service.submit_epoch(id, {nudge}, OnFull::kBlock).get().status,
            SessionStatus::kOk);

  const SessionStats stats = service.session_stats(id);
  EXPECT_GE(stats.mailbox_rejects, 1u);
  EXPECT_GE(stats.epochs, 21u);
  EXPECT_GE(stats.latency.max, stats.latency.p50);
  EXPECT_GE(stats.p99_ms, stats.latency.p50);
  EXPECT_EQ(stats.queue_depth, 0u);
  (void)service.close_session(id);
}

TEST(Serve, AdmissionControlEnforcesSessionLimit) {
  PlanService service(ServiceOptions{.num_workers = 2, .max_sessions = 2});
  const auto initial = points(40, 21);
  const auto options = dyn_options(core::PowerMode::kUniform);

  const auto a = service.open_session(initial, options);
  const auto b = service.open_session(initial, options);
  OpenOutcome third = service.open_session_async(initial, options).get();
  EXPECT_EQ(third.status, SessionStatus::kSessionLimit);
  EXPECT_THROW((void)service.open_session(initial, options),
               std::runtime_error);
  EXPECT_EQ(service.num_sessions(), 2u);

  // Closing frees admission capacity.
  EXPECT_EQ(service.close_session(a), SessionStatus::kOk);
  OpenOutcome reopened = service.open_session_async(initial, options).get();
  EXPECT_EQ(reopened.status, SessionStatus::kOk) << reopened.error;
  (void)service.close_session(reopened.id);
  (void)service.close_session(b);
}

TEST(Serve, PlannerErrorsAreTypedAndNonFatal) {
  PlanService service(ServiceOptions{.num_workers = 2});
  const auto initial = points(40, 31);
  const auto id =
      service.open_session(initial, dyn_options(core::PowerMode::kUniform));

  // Removing a node that does not exist is a caller error: typed outcome
  // with the invalid_argument flag, and the sync wrapper rethrows it.
  dynamic::Mutation bad;
  bad.kind = dynamic::Mutation::Kind::kRemove;
  bad.node = 9999;
  EpochOutcome outcome = service.submit_epoch(id, {bad}).get();
  EXPECT_EQ(outcome.status, SessionStatus::kPlannerError);
  EXPECT_TRUE(outcome.invalid_argument);
  EXPECT_FALSE(outcome.error.empty());
  EXPECT_THROW((void)service.advance_session(
                   id, std::span<const dynamic::Mutation>(&bad, 1)),
               std::invalid_argument);

  // A failed epoch does not poison the session: the next valid epoch runs.
  const auto trace = trace_for(initial, 1, 41);
  EXPECT_EQ(service.submit_epoch(id, trace[0], OnFull::kBlock).get().status,
            SessionStatus::kOk);
  (void)service.close_session(id);
}

TEST(Serve, FailedAsyncOpenFreesTheSlot) {
  PlanService service(ServiceOptions{.num_workers = 2, .max_sessions = 1});
  // An empty pointset fails DynamicPlanner construction inside the pool.
  OpenOutcome outcome =
      service
          .open_session_async(geom::Pointset{},
                              dyn_options(core::PowerMode::kUniform))
          .get();
  EXPECT_EQ(outcome.status, SessionStatus::kPlannerError);
  EXPECT_FALSE(outcome.error.empty());

  // Epochs aimed at the failed session resolve typed, never run a planner.
  EpochOutcome epoch = service.submit_epoch(outcome.id, {}).get();
  EXPECT_NE(epoch.status, SessionStatus::kOk);

  // The slot was released — with max_sessions=1 a fresh open only succeeds
  // if the failed one gave its capacity back.
  const auto id = service.open_session(points(40, 51),
                                       dyn_options(core::PowerMode::kUniform));
  EXPECT_EQ(service.num_sessions(), 1u);
  (void)service.close_session(id);
  EXPECT_EQ(service.num_sessions(), 0u);
}

TEST(Serve, EpochsSubmittedBeforeOpenResolvesQueueBehindIt) {
  PlanService service(ServiceOptions{.num_workers = 2});
  const auto initial = points(48, 61);
  const auto trace = trace_for(initial, 3, 71);

  auto open = service.open_session_async(
      initial, dyn_options(core::PowerMode::kOblivious));
  // The id is embedded in the future's outcome, so epochs can only be
  // addressed after get() — but the open may still be running; submits
  // order behind it on the serial queue.
  OpenOutcome opened = open.get();
  ASSERT_EQ(opened.status, SessionStatus::kOk) << opened.error;
  std::vector<std::future<EpochOutcome>> futures;
  for (const auto& epoch : trace) {
    futures.push_back(service.submit_epoch(opened.id, epoch, OnFull::kBlock));
  }
  std::size_t expected = 1;
  for (auto& future : futures) {
    EpochOutcome outcome = future.get();
    ASSERT_EQ(outcome.status, SessionStatus::kOk) << outcome.error;
    EXPECT_EQ(outcome.report.epoch, expected++);
  }

  dynamic::DynamicPlanner serial(initial,
                                 dyn_options(core::PowerMode::kOblivious));
  for (const auto& epoch : trace) {
    (void)serial.apply(std::span<const dynamic::Mutation>(epoch));
  }
  EXPECT_EQ(service.session_digest(opened.id), snapshot_digest(serial));
  (void)service.close_session(opened.id);
}

// The TSan target: many threads churning sessions through the full
// lifecycle — async opens, mixed submits, closes, stale-id probes — with a
// sampled audit subset cross-checking every epoch against a full replan.
TEST(Serve, MixedLifecycleStress) {
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kSessionsPerThread = 24;
  PlanService service(ServiceOptions{
      .num_workers = 4, .max_sessions = 64, .session_mailbox_capacity = 4});
  std::atomic<std::size_t> epochs_ok{0};
  std::atomic<std::size_t> backpressured{0};

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937_64 rng(1000 + t);
      for (std::size_t s = 0; s < kSessionsPerThread; ++s) {
        const bool audit = (t * kSessionsPerThread + s) % 8 == 0;
        const auto initial = points(24 + rng() % 16, rng());
        const auto trace = trace_for(initial, 3, rng());
        OpenOutcome opened =
            service
                .open_session_async(
                    initial, dyn_options(core::PowerMode::kOblivious, audit))
                .get();
        if (opened.status == SessionStatus::kSessionLimit) continue;
        ASSERT_EQ(opened.status, SessionStatus::kOk) << opened.error;

        std::vector<std::future<EpochOutcome>> futures;
        for (std::size_t e = 0; e < trace.size(); ++e) {
          const OnFull mode = e % 2 == 0 ? OnFull::kBlock : OnFull::kReject;
          futures.push_back(service.submit_epoch(opened.id, trace[e], mode));
        }
        for (auto& future : futures) {
          const auto status = future.get().status;
          if (status == SessionStatus::kOk) {
            epochs_ok.fetch_add(1);
          } else {
            ASSERT_EQ(status, SessionStatus::kMailboxFull);
            backpressured.fetch_add(1);
          }
        }
        EXPECT_EQ(service.close_session(opened.id), SessionStatus::kOk);
        // Stale-id probes against the closed session race the other
        // threads' opens reusing the slot — the generation tag must keep
        // them typed either way.
        const auto stale = service.submit_epoch(opened.id, {}).get().status;
        EXPECT_TRUE(stale == SessionStatus::kClosedSession ||
                    stale == SessionStatus::kUnknownSession)
            << to_string(stale);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(service.num_sessions(), 0u);
  EXPECT_GT(epochs_ok.load(), 0u);
}

// Destroying the service with sessions still open must drain, not crash:
// in-flight futures all resolve before the destructor returns.
TEST(Serve, DestructionDrainsOpenSessions) {
  std::vector<std::future<EpochOutcome>> futures;
  {
    PlanService service(ServiceOptions{.num_workers = 2});
    const auto initial = points(40, 81);
    const auto trace = trace_for(initial, 2, 91);
    const auto id = service.open_session(
        initial, dyn_options(core::PowerMode::kOblivious));
    for (const auto& epoch : trace) {
      futures.push_back(service.submit_epoch(id, epoch, OnFull::kBlock));
    }
  }
  for (auto& future : futures) {
    EXPECT_EQ(future.get().status, SessionStatus::kOk);
  }
}

}  // namespace
}  // namespace wagg::runtime
