#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <numeric>
#include <vector>

#include "conflict/conflict_index.h"
#include "conflict/fgraph.h"
#include "dynamic/dynamic_planner.h"
#include "dynamic/mutation.h"
#include "mst/incremental.h"
#include "mst/mst.h"
#include "obs/metrics.h"
#include "runtime/plan_service.h"
#include "schedule/verify.h"
#include "util/rng.h"
#include "workload/workload.h"

namespace wagg::dynamic {
namespace {

/// From-scratch MST weight of the alive points, for exactness checks.
double recomputed_weight(const mst::IncrementalMst& inc) {
  geom::Pointset points;
  for (const auto id : inc.alive_ids()) points.push_back(inc.position(id));
  if (points.size() < 2) return 0.0;
  const auto edges = mst::euclidean_mst(points);
  return mst::total_weight(points, edges);
}

void expect_mst_exact(const mst::IncrementalMst& inc, const char* where) {
  ASSERT_TRUE(mst::is_spanning_tree(inc.num_alive(), inc.compact_edges()))
      << where;
  EXPECT_NEAR(inc.weight(), recomputed_weight(inc),
              1e-9 * std::max(1.0, recomputed_weight(inc)))
      << where;
}

TEST(IncrementalMst, AddMatchesFromScratch) {
  auto points = workload::make_family("uniform", 48, 11);
  mst::IncrementalMst inc(points);
  expect_mst_exact(inc, "initial");
  util::Rng rng(99);
  for (int step = 0; step < 25; ++step) {
    inc.add_point({rng.uniform(0.0, 7.0), rng.uniform(0.0, 7.0)});
    expect_mst_exact(inc, "after add");
  }
}

TEST(IncrementalMst, RemoveAndMoveMatchFromScratch) {
  auto points = workload::make_family("uniform", 64, 5);
  mst::IncrementalMst inc(points);
  util::Rng rng(7);
  for (int step = 0; step < 40; ++step) {
    const auto ids = inc.alive_ids();
    const auto victim = ids[rng.below(ids.size())];
    if (step % 2 == 0 && inc.num_alive() > 8) {
      inc.remove_point(victim);
    } else {
      const auto& from = inc.position(victim);
      inc.move_point(victim, {from.x + rng.normal() * 0.5,
                              from.y + rng.normal() * 0.5});
    }
    expect_mst_exact(inc, "after remove/move");
  }
}

TEST(IncrementalMst, MoveIntoLongEdgeReplacesIt) {
  // Moving a far-away node between the endpoints of a long edge must drop
  // that edge — the regression a lazy "reattach only the moved node" update
  // would miss.
  geom::Pointset points = {{0, 0}, {10, 0}, {100, 100}};
  mst::IncrementalMst inc(points);
  inc.move_point(2, {5.0, 0.1});
  expect_mst_exact(inc, "after move into edge");
  // The direct 0 <-> 1 edge (length 10) is no longer in the tree.
  for (const auto& e : inc.edges()) {
    EXPECT_FALSE(e.a == 0 && e.b == 1);
  }
}

TEST(IncrementalMst, DeferredBulkRebuildMatchesFromScratch) {
  auto points = workload::make_family("uniform", 50, 8);
  mst::IncrementalMst inc(points);
  util::Rng rng(31);
  for (int step = 0; step < 12; ++step) {
    inc.add_point_deferred({rng.uniform(0.0, 7.0), rng.uniform(0.0, 7.0)});
  }
  const auto ids = inc.alive_ids();
  inc.remove_point_deferred(ids[5]);
  inc.move_point_deferred(ids[10], {3.0, 3.0});
  inc.rebuild();
  expect_mst_exact(inc, "after bulk rebuild");
  // Immediate updates keep working after a rebuild.
  inc.add_point({1.5, 1.5});
  expect_mst_exact(inc, "immediate after rebuild");
}

/// Replays a churn trace directly against an IncrementalMst, mirroring the
/// planner's kind -> operation mapping.
void apply_epoch_to_mst(mst::IncrementalMst& inc,
                        const std::vector<Mutation>& epoch) {
  for (const auto& m : epoch) {
    switch (m.kind) {
      case Mutation::Kind::kAdd:
        (void)inc.add_point(m.position);
        break;
      case Mutation::Kind::kRemove:
        inc.remove_point(m.node);
        break;
      case Mutation::Kind::kMove:
        inc.move_point(m.node, m.position);
        break;
    }
  }
}

/// The dynamic-tree engine's acceptance sweep: across several scales and
/// families, mixed traces (moves + net growth + net shrink) must keep the
/// maintained tree weight-equal to a from-scratch Prim run after EVERY
/// epoch.
TEST(IncrementalMst, MixedTraceSweepMatchesPrimAcrossScales) {
  for (const std::size_t n : {24u, 72u, 160u}) {
    for (const std::string family : {"uniform", "cluster"}) {
      ChurnParams params;
      params.epochs = 6;
      params.rate = 0.08;
      params.grow_rate = 0.05;
      const auto points = workload::make_family(family, n, 29);
      const auto grow_trace = dynamic::make_churn_trace(points, params, 51);
      mst::IncrementalMst growing(points);
      for (const auto& epoch : grow_trace) {
        apply_epoch_to_mst(growing, epoch);
        expect_mst_exact(growing, (family + " grow").c_str());
      }
      EXPECT_GT(growing.num_alive(), points.size())
          << family << " n=" << n;

      params.grow_rate = 0.0;
      params.shrink_rate = 0.08;
      const auto shrink_trace = dynamic::make_churn_trace(points, params, 52);
      mst::IncrementalMst shrinking(points);
      for (const auto& epoch : shrink_trace) {
        apply_epoch_to_mst(shrinking, epoch);
        expect_mst_exact(shrinking, (family + " shrink").c_str());
      }
      EXPECT_LT(shrinking.num_alive(), points.size())
          << family << " n=" << n;
    }
  }
}

/// Duplicate-distance ties: coincident points (zero-length edges), nodes
/// moved exactly onto other nodes, and the all-ties unit grid. Weight
/// equality must survive every one of them — the (w2, a, b) total order is
/// what keeps the swaps deterministic when w2 alone cannot decide.
TEST(IncrementalMst, DuplicatePositionsAndTiedDistancesStayExact) {
  // Unit grid: every adjacent distance ties with every other.
  const auto grid_points = workload::make_family("grid", 25, 1);
  mst::IncrementalMst inc(grid_points);
  expect_mst_exact(inc, "unit grid seed");
  // Duplicate of an existing point (distance 0 to its twin, ties beyond).
  const auto dup = inc.add_point(grid_points[7]);
  expect_mst_exact(inc, "coincident add");
  // Another coincident pair on a different site.
  (void)inc.add_point(grid_points[12]);
  expect_mst_exact(inc, "second coincident add");
  // Move a node exactly onto another node's position.
  inc.move_point(3, grid_points[18]);
  expect_mst_exact(inc, "move onto occupied site");
  // Move a far node exactly onto a grid site adjacent to the duplicate.
  inc.move_point(24, grid_points[8]);
  expect_mst_exact(inc, "move onto adjacent site");
  // Removing one of a coincident pair keeps the tree exact.
  inc.remove_point(dup);
  expect_mst_exact(inc, "remove twin");
  inc.remove_point(7);
  expect_mst_exact(inc, "remove the other twin");
}

TEST(ChurnTrace, GrowScheduleTrendsUpward) {
  const auto points = workload::make_family("uniform", 40, 3);
  ChurnParams plain;
  plain.epochs = 10;
  plain.rate = 0.05;
  ChurnParams grow = plain;
  grow.grow_rate = 0.1;
  const auto base = make_churn_trace(points, plain, 42);
  const auto grown = make_churn_trace(points, grow, 42);
  ASSERT_EQ(base.size(), grown.size());
  // The first epoch's mixed prefix is byte-identical: grow events are
  // appended AFTER the rate-driven draws, so the legacy stream survives.
  ASSERT_GE(grown[0].size(), base[0].size());
  for (std::size_t m = 0; m < base[0].size(); ++m) {
    EXPECT_EQ(grown[0][m], base[0][m]) << "mutation " << m;
  }
  // Net growth: final alive count strictly above the initial.
  std::ptrdiff_t net = 0;
  std::size_t extra_adds = 0;
  for (std::size_t e = 0; e < grown.size(); ++e) {
    for (const auto& m : grown[e]) {
      if (m.kind == Mutation::Kind::kAdd) ++net;
      if (m.kind == Mutation::Kind::kRemove) --net;
    }
    extra_adds += grown[e].size() - base[e].size();
  }
  EXPECT_GT(net, 0);
  EXPECT_GE(extra_adds, grown.size());  // >= 1 appended add per epoch
  // Determinism.
  EXPECT_EQ(grown, make_churn_trace(points, grow, 42));
}

TEST(ChurnTrace, ShrinkScheduleBottomsOutAtMinNodes) {
  const auto points = workload::make_family("uniform", 16, 5);
  ChurnParams params;
  params.epochs = 12;
  params.rate = 0.05;
  params.add_weight = 0.0;  // no arrivals at all
  params.move_weight = 1.0;
  params.remove_weight = 0.0;
  params.shrink_rate = 0.3;
  const auto trace = make_churn_trace(points, params, 9);
  std::size_t alive = points.size();
  for (const auto& epoch : trace) {
    for (const auto& m : epoch) {
      if (m.kind == Mutation::Kind::kAdd) ++alive;
      if (m.kind == Mutation::Kind::kRemove) {
        --alive;
        EXPECT_NE(m.node, 0);  // the sink survives shrink schedules
      }
    }
    EXPECT_GE(alive, params.min_nodes);
  }
  // The schedule actually bottomed out instead of oscillating via adds.
  EXPECT_EQ(alive, params.min_nodes);
  // A planner survives the whole shrink-to-the-floor session.
  DynamicOptions options;
  options.config = workload::mode_config(core::PowerMode::kGlobal);
  options.audit = true;
  DynamicPlanner planner(points, options);
  for (const auto& epoch : trace) {
    const auto report = planner.apply(epoch);
    EXPECT_TRUE(report.valid) << "epoch " << report.epoch;
    EXPECT_TRUE(report.audit_tree_match) << "epoch " << report.epoch;
  }
  EXPECT_EQ(planner.num_nodes(), params.min_nodes);
}

TEST(ChurnParams, RejectsNegativeGrowShrink) {
  ChurnParams params;
  params.epochs = 4;
  params.grow_rate = -0.1;
  EXPECT_THROW(params.validate(), std::invalid_argument);
  params.grow_rate = 0.0;
  params.shrink_rate = -1.0;
  EXPECT_THROW(params.validate(), std::invalid_argument);
  params.shrink_rate = 0.5;
  EXPECT_NO_THROW(params.validate());
}

TEST(DynamicPlanner, HighChurnBulkEpochsStayValid) {
  // rate 0.3 on n=64 -> ~19 mutations per epoch, well past the bulk-rebuild
  // threshold, and dirty fractions that exercise the fallback path.
  const auto points = workload::make_family("uniform", 64, 17);
  ChurnParams params;
  params.epochs = 6;
  params.rate = 0.3;
  const auto trace = make_churn_trace(points, params, 23);

  DynamicOptions options;
  options.config = workload::mode_config(core::PowerMode::kGlobal);
  options.audit = true;
  DynamicPlanner planner(points, options);
  for (const auto& epoch : trace) {
    const auto report = planner.apply(epoch);
    EXPECT_TRUE(report.valid) << "epoch " << report.epoch;
    EXPECT_TRUE(report.audit_valid) << "epoch " << report.epoch;
    EXPECT_TRUE(report.audit_tree_match) << "epoch " << report.epoch;
    EXPECT_TRUE(report.audit_store_match) << "epoch " << report.epoch;
  }
}

TEST(IncrementalMst, RejectsDeadIds) {
  mst::IncrementalMst inc(workload::make_family("uniform", 8, 1));
  inc.remove_point(3);
  EXPECT_THROW(inc.remove_point(3), std::invalid_argument);
  EXPECT_THROW(inc.move_point(3, {0, 0}), std::invalid_argument);
  EXPECT_THROW((void)inc.position(3), std::invalid_argument);
  EXPECT_THROW(inc.remove_point(99), std::invalid_argument);
}

TEST(ChurnTrace, DeterministicAndStructured) {
  const auto points = workload::make_family("uniform", 40, 3);
  ChurnParams params;
  params.epochs = 12;
  params.rate = 0.1;
  const auto a = make_churn_trace(points, params, 42);
  const auto b = make_churn_trace(points, params, 42);
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), 12u);
  for (const auto& epoch : a) {
    EXPECT_GE(epoch.size(), 1u);
    for (const auto& mutation : epoch) {
      if (mutation.kind == Mutation::Kind::kRemove) {
        EXPECT_NE(mutation.node, 0);  // sink protected
      }
    }
  }
  const auto c = make_churn_trace(points, params, 43);
  EXPECT_NE(a, c);
}

TEST(ChurnParams, Validation) {
  ChurnParams params;
  EXPECT_THROW(params.validate(), std::invalid_argument);  // epochs == 0
  params.epochs = 5;
  EXPECT_NO_THROW(params.validate());
  params.rate = 0.0;
  EXPECT_THROW(params.validate(), std::invalid_argument);
  params.rate = 0.1;
  params.add_weight = params.remove_weight = params.move_weight = 0.0;
  EXPECT_THROW(params.validate(), std::invalid_argument);
}

/// The acceptance check of the incremental engine: for several instance
/// families under seeded churn, every epoch's incremental plan must pass a
/// from-scratch verification and its tree must weigh the same as a
/// from-scratch MST (audit mode computes both).
TEST(DynamicPlanner, AuditedChurnStaysValidAcrossFamilies) {
  // expchain matters: its doubly-exponential length spread makes the
  // power-control oracle's iterative bound conservative and non-monotone
  // under member departure — the regression that forced membership-exact
  // slot certification.
  for (const std::string family :
       {"uniform", "cluster", "noisygrid", "expchain"}) {
    const auto points = workload::make_family(family, 72, 9);
    ChurnParams params;
    params.epochs = 10;
    params.rate = 0.06;
    const auto trace = make_churn_trace(points, params, 1234);

    DynamicOptions options;
    options.config = workload::mode_config(core::PowerMode::kGlobal);
    options.audit = true;
    DynamicPlanner planner(points, options);
    EXPECT_TRUE(planner.last_report().valid) << family;
    EXPECT_TRUE(planner.last_report().audit_valid) << family;

    for (const auto& epoch : trace) {
      const auto report = planner.apply(epoch);
      EXPECT_TRUE(report.valid) << family << " epoch " << report.epoch;
      EXPECT_TRUE(report.audit_valid)
          << family << " epoch " << report.epoch;
      EXPECT_TRUE(report.audit_tree_match)
          << family << " epoch " << report.epoch;
      EXPECT_TRUE(report.audit_store_match)
          << family << " epoch " << report.epoch;
      EXPECT_GT(report.rate, 0.0);
      EXPECT_EQ(report.num_links + 1, report.num_nodes);
    }
  }
}

/// Randomized equivalence harness for the persistent conflict index: across
/// a churn trace, after EVERY epoch the index must answer every link's
/// conflict row exactly like (a) a from-scratch bucketed subset query and
/// (b) the brute-force O(n^2) conflict graph over the same snapshot.
TEST(DynamicPlanner, ConflictIndexMatchesFromScratchEveryEpoch) {
  for (const std::string family : {"uniform", "cluster", "expchain"}) {
    const auto points = workload::make_family(family, 64, 31);
    ChurnParams params;
    params.epochs = 8;
    params.rate = 0.08;
    const auto trace = make_churn_trace(points, params, 77);

    DynamicOptions options;
    options.config = workload::mode_config(core::PowerMode::kGlobal);
    DynamicPlanner planner(points, options);
    const auto spec = core::spec_for_mode(options.config);

    const auto check_epoch = [&](std::size_t epoch) {
      const auto& links = planner.snapshot().links;
      ASSERT_EQ(planner.conflict_index().size(), links.size())
          << family << " epoch " << epoch;
      std::vector<std::size_t> all(links.size());
      std::iota(all.begin(), all.end(), std::size_t{0});
      const auto index_rows =
          planner.conflict_index().neighbors(links, spec, all);
      const auto scratch_rows = conflict::conflict_neighbors_bucketed(
          links, spec, all);
      EXPECT_EQ(index_rows, scratch_rows) << family << " epoch " << epoch;
      const auto brute = conflict::build_conflict_graph(links, spec);
      for (std::size_t u = 0; u < links.size(); ++u) {
        const auto expected = brute.neighbors(u);
        ASSERT_EQ(index_rows[u].size(), expected.size())
            << family << " epoch " << epoch << " row " << u;
        for (std::size_t a = 0; a < expected.size(); ++a) {
          EXPECT_EQ(index_rows[u][a], expected[a])
              << family << " epoch " << epoch << " row " << u;
        }
      }
    };
    check_epoch(0);
    for (const auto& epoch : trace) {
      (void)planner.apply(epoch);
      check_epoch(planner.epoch());
    }
  }
}

TEST(DynamicPlanner, AuditChecksConflictIndex) {
  const auto points = workload::make_family("uniform", 48, 9);
  ChurnParams params;
  params.epochs = 4;
  params.rate = 0.1;
  const auto trace = make_churn_trace(points, params, 21);

  DynamicOptions options;
  options.config = workload::mode_config(core::PowerMode::kGlobal);
  options.audit = true;
  DynamicPlanner planner(points, options);
  EXPECT_TRUE(planner.last_report().audit_index_match);
  for (const auto& epoch : trace) {
    const auto report = planner.apply(epoch);
    EXPECT_TRUE(report.audit_index_match) << "epoch " << report.epoch;
  }
}

/// The documented apply() contract: a throwing mutation mid-batch leaves
/// the plan on the previous epoch, and the next successful epoch replans
/// (and re-verifies) from scratch — including after partially applied
/// prefixes on both the per-mutation and the bulk path.
TEST(DynamicPlanner, BadMutationMidBatchThenGoodEpochRecovers) {
  const auto points = workload::make_family("uniform", 40, 13);
  DynamicOptions options;
  options.config = workload::mode_config(core::PowerMode::kGlobal);
  options.audit = true;
  DynamicPlanner planner(points, options);
  const auto epoch_before = planner.epoch();
  const auto slots_before = planner.snapshot().schedule.length();

  // Per-mutation path: good prefix, then a dead-node removal.
  std::vector<Mutation> batch;
  batch.push_back({Mutation::Kind::kAdd, -1, {1.5, 2.5}});
  batch.push_back({Mutation::Kind::kRemove, 7, {}});
  batch.push_back({Mutation::Kind::kRemove, 7, {}});  // 7 is dead now
  batch.push_back({Mutation::Kind::kAdd, -1, {2.5, 1.5}});
  EXPECT_THROW((void)planner.apply(batch), std::invalid_argument);
  EXPECT_EQ(planner.epoch(), epoch_before);  // plan stayed on the old epoch
  EXPECT_EQ(planner.snapshot().schedule.length(), slots_before);

  // Next good epoch must re-anchor from scratch and stay audit-clean.
  const auto report =
      planner.apply(Mutation{Mutation::Kind::kAdd, -1, {3.0, 3.0}});
  EXPECT_TRUE(report.full_replan);  // carried state was invalidated
  EXPECT_TRUE(report.valid);
  EXPECT_TRUE(report.audit_valid);
  EXPECT_TRUE(report.audit_tree_match);
  EXPECT_TRUE(report.audit_store_match);
  EXPECT_TRUE(report.audit_index_match);

  // Bulk path: enough mutations to defer tree updates, with a bad one in
  // the middle; the catch must rebuild the tree AND invalidate carry-over.
  std::vector<Mutation> bulk;
  for (int i = 0; i < 6; ++i) {
    bulk.push_back({Mutation::Kind::kAdd, -1, {4.0 + 0.1 * i, 4.0}});
  }
  bulk.push_back({Mutation::Kind::kRemove, 0, {}});  // the sink
  for (int i = 0; i < 6; ++i) {
    bulk.push_back({Mutation::Kind::kAdd, -1, {5.0 + 0.1 * i, 5.0}});
  }
  EXPECT_THROW((void)planner.apply(bulk), std::invalid_argument);
  const auto after_bulk =
      planner.apply(Mutation{Mutation::Kind::kMove, 3, {0.5, 0.5}});
  EXPECT_TRUE(after_bulk.full_replan);
  EXPECT_TRUE(after_bulk.valid);
  EXPECT_TRUE(after_bulk.audit_valid);
  EXPECT_TRUE(after_bulk.audit_tree_match);
  EXPECT_TRUE(after_bulk.audit_store_match);
  EXPECT_TRUE(after_bulk.audit_index_match);
}

/// Regression: a FAILED epoch loses its touched-node list, and the recovery
/// reconcile refreshes store lengths with set_length — which fires no event
/// when the value is bit-identical. A node that rotated around its tree
/// parent (length unchanged, position changed) would leave the conflict
/// index holding its OLD endpoint position unless the reconcile re-seeds
/// the index from scratch.
TEST(DynamicPlanner, FailedEpochWithLengthPreservingMoveResyncsIndex) {
  // Node 1 sits at distance exactly 5 from the sink; (5,0) -> (3,4) keeps
  // hypot == 5.0 bit-for-bit. Nodes 2 and 3 form a second tree edge whose
  // conflict relation to link 0-1 depends on node 1's actual position.
  const geom::Pointset points = {{0, 0}, {5, 0}, {3, 12}, {3, 17}};
  DynamicOptions options;
  options.config = workload::mode_config(core::PowerMode::kGlobal);
  options.audit = true;
  DynamicPlanner planner(points, options);

  std::vector<Mutation> batch;
  batch.push_back({Mutation::Kind::kMove, 1, {3, 4}});
  batch.push_back({Mutation::Kind::kRemove, 42, {}});  // unknown node
  EXPECT_THROW((void)planner.apply(batch), std::invalid_argument);

  // The move stayed applied (documented prefix semantics); the next good
  // epoch must see node 1 at (3, 4) in the conflict index too.
  const auto report =
      planner.apply(Mutation{Mutation::Kind::kAdd, -1, {20.0, 0.0}});
  EXPECT_TRUE(report.valid);
  EXPECT_TRUE(report.audit_valid);
  EXPECT_TRUE(report.audit_index_match);
}

/// The row-cache variant of the staleness regression above: warm the cache
/// with an explicit full-row query, fail an epoch after a prefix of applied
/// mutations, and require that the recovery reconcile dropped every cached
/// row — a survivor would serve pre-failure geometry from the cache even
/// though the grids themselves were re-seeded correctly.
TEST(DynamicPlanner, FailedEpochCannotLeaveStaleCachedRows) {
  const geom::Pointset points = {{0, 0}, {5, 0}, {3, 12}, {3, 17}};
  DynamicOptions options;
  options.config = workload::mode_config(core::PowerMode::kGlobal);
  options.audit = true;
  DynamicPlanner planner(points, options);
  const auto spec = core::spec_for_mode(options.config);

  // Materialize every row so the failure path has cached state to corrupt.
  {
    const auto& links = planner.snapshot().links;
    std::vector<std::size_t> all(links.size());
    std::iota(all.begin(), all.end(), std::size_t{0});
    (void)planner.conflict_index().neighbors(links, spec, all);
    ASSERT_GT(planner.conflict_index().rows_cached(), 0u);
  }

  // Length-preserving rotation, then a throwing mutation: the prefix stays
  // applied but the epoch fails and the planner reconciles from scratch.
  std::vector<Mutation> batch;
  batch.push_back({Mutation::Kind::kMove, 1, {3, 4}});
  batch.push_back({Mutation::Kind::kRemove, 42, {}});
  EXPECT_THROW((void)planner.apply(batch), std::invalid_argument);

  const auto report =
      planner.apply(Mutation{Mutation::Kind::kAdd, -1, {20.0, 0.0}});
  EXPECT_TRUE(report.valid);
  EXPECT_TRUE(report.audit_index_match);

  // Belt and braces beyond the audit: both the mixed query and the all-hit
  // repeat must match a from-scratch row build on the recovered snapshot.
  const auto& links = planner.snapshot().links;
  std::vector<std::size_t> all(links.size());
  std::iota(all.begin(), all.end(), std::size_t{0});
  const auto scratch = conflict::conflict_neighbors_bucketed(links, spec, all);
  EXPECT_EQ(planner.conflict_index().neighbors(links, spec, all), scratch);
  EXPECT_EQ(planner.conflict_index().neighbors(links, spec, all), scratch);
}

/// Cross-checks the published row-cache telemetry: across a churn run every
/// row served was either a cache hit or a miss, so the registry counters
/// must satisfy hits + misses == rows_queried exactly, and a warmed cache
/// must actually be hitting.
TEST(DynamicPlanner, RowCacheCountersSatisfyQueryIdentity) {
  obs::Registry::global().reset();
  const auto points = workload::make_family("uniform", 48, 17);
  ChurnParams params;
  params.epochs = 6;
  params.rate = 0.08;
  const auto trace = make_churn_trace(points, params, 33);

  DynamicOptions options;
  options.config = workload::mode_config(core::PowerMode::kGlobal);
  options.audit = true;  // audit double-queries, driving the hit path
  DynamicPlanner planner(points, options);
  for (const auto& epoch : trace) (void)planner.apply(epoch);

  auto& reg = obs::Registry::global();
  const auto hits = reg.counter("conflict.row_cache_hits").value();
  const auto misses = reg.counter("conflict.row_cache_misses").value();
  EXPECT_EQ(hits + misses, reg.counter("conflict.rows_queried").value());
  EXPECT_GT(hits, 0u);
  EXPECT_GT(misses, 0u);

  // The same identity must hold on the index's own cumulative stats.
  const auto stats = planner.conflict_index().stats();
  EXPECT_EQ(stats.row_cache_hits + stats.row_cache_misses,
            stats.rows_queried);
}

TEST(DynamicPlanner, FixedPowerModeStaysValid) {
  const auto points = workload::make_family("uniform", 60, 4);
  ChurnParams params;
  params.epochs = 8;
  params.rate = 0.08;
  const auto trace = make_churn_trace(points, params, 77);

  DynamicOptions options;
  options.config = workload::mode_config(core::PowerMode::kUniform);
  options.audit = true;
  DynamicPlanner planner(points, options);
  for (const auto& epoch : trace) {
    const auto report = planner.apply(epoch);
    EXPECT_TRUE(report.audit_valid) << "epoch " << report.epoch;
  }
}

TEST(DynamicPlanner, IndependentVerifyOfSnapshot) {
  const auto points = workload::make_family("twotier", 64, 21);
  ChurnParams params;
  params.epochs = 6;
  params.rate = 0.1;
  const auto trace = make_churn_trace(points, params, 5);

  DynamicOptions options;
  options.config = workload::mode_config(core::PowerMode::kGlobal);
  DynamicPlanner planner(points, options);
  planner.apply_trace(trace);

  // Verify the final snapshot with a fresh oracle, independent of any state
  // the planner carries.
  const auto& snapshot = planner.snapshot();
  const auto oracle =
      core::oracle_for_mode(snapshot.links, options.config);
  const auto verification =
      schedule::verify_schedule(snapshot.links, snapshot.schedule, oracle);
  EXPECT_TRUE(verification.ok());
  EXPECT_TRUE(schedule::is_partition(snapshot.schedule,
                                     snapshot.links.size()));
}

TEST(DynamicPlanner, LowChurnMostlyReusesAndPatchesLocally) {
  const auto points = workload::make_family("uniform", 200, 2);
  ChurnParams params;
  params.epochs = 6;
  params.rate = 0.01;
  const auto trace = make_churn_trace(points, params, 3);

  DynamicOptions options;
  options.config = workload::mode_config(core::PowerMode::kGlobal);
  DynamicPlanner planner(points, options);
  for (const auto& epoch : trace) {
    const auto report = planner.apply(epoch);
    EXPECT_FALSE(report.full_replan) << "epoch " << report.epoch;
    EXPECT_LT(report.dirty_links, report.num_links / 2)
        << "epoch " << report.epoch;
  }
}

TEST(DynamicPlanner, TinyThresholdForcesFullReplanAndStaysValid) {
  const auto points = workload::make_family("uniform", 64, 13);
  ChurnParams params;
  params.epochs = 5;
  params.rate = 0.1;
  const auto trace = make_churn_trace(points, params, 8);

  DynamicOptions options;
  options.config = workload::mode_config(core::PowerMode::kGlobal);
  options.full_replan_fraction = 1e-9;  // everything falls back
  options.audit = true;
  DynamicPlanner planner(points, options);
  for (const auto& epoch : trace) {
    const auto report = planner.apply(epoch);
    EXPECT_TRUE(report.full_replan) << "epoch " << report.epoch;
    EXPECT_TRUE(report.valid) << "epoch " << report.epoch;
    EXPECT_TRUE(report.audit_valid) << "epoch " << report.epoch;
  }
}

TEST(DynamicPlanner, RejectsIllegalMutations) {
  const auto points = workload::make_family("uniform", 8, 1);
  DynamicOptions options;
  options.config = workload::mode_config(core::PowerMode::kUniform);
  DynamicPlanner planner(points, options);

  Mutation remove_sink{Mutation::Kind::kRemove, 0, {}};
  EXPECT_THROW(planner.apply(remove_sink), std::invalid_argument);
  Mutation remove_dead{Mutation::Kind::kRemove, 3, {}};
  (void)planner.apply(remove_dead);
  EXPECT_THROW(planner.apply(remove_dead), std::invalid_argument);
}

TEST(DynamicPlanner, RejectsBadOptions) {
  const auto points = workload::make_family("uniform", 8, 1);
  DynamicOptions options;
  options.config = workload::mode_config(core::PowerMode::kGlobal);
  options.config.tree = core::TreeKind::kPairing;
  EXPECT_THROW(DynamicPlanner(points, options), std::invalid_argument);
  options.config.tree = core::TreeKind::kMst;
  options.full_replan_fraction = 0.0;
  EXPECT_THROW(DynamicPlanner(points, options), std::invalid_argument);
}

TEST(PlanServiceSessions, StatePersistsAcrossAdvances) {
  runtime::PlanService service(runtime::ServiceOptions{.num_workers = 2});
  const auto points = workload::make_family("uniform", 48, 6);
  DynamicOptions options;
  options.config = workload::mode_config(core::PowerMode::kGlobal);

  const auto id = service.open_session(points, options);
  EXPECT_EQ(service.num_sessions(), 1u);
  EXPECT_EQ(service.session(id)->epoch(), 0u);

  ChurnParams params;
  params.epochs = 3;
  params.rate = 0.05;
  const auto trace = make_churn_trace(points, params, 10);
  for (std::size_t e = 0; e < trace.size(); ++e) {
    const auto report = service.advance_session(id, trace[e]);
    EXPECT_EQ(report.epoch, e + 1);
    EXPECT_TRUE(report.valid);
  }
  EXPECT_EQ(service.session(id)->epoch(), trace.size());

  service.close_session(id);
  EXPECT_EQ(service.num_sessions(), 0u);
  EXPECT_THROW((void)service.advance_session(id, {}),
               std::invalid_argument);
}

TEST(PlanServiceSessions, ChurnRequestsRunThroughBatches) {
  const auto spec = workload::WorkloadSpec::parse(
      "families=uniform,cluster sizes=40 modes=global reps=2 seed=5 "
      "churn=epochs:4,rate:0.08,audit:1");
  const auto requests = spec.expand();
  ASSERT_EQ(requests.size(), 4u);
  for (const auto& request : requests) {
    ASSERT_EQ(request.trace.size(), 4u);
    EXPECT_TRUE(request.audit);
  }

  runtime::PlanService service(runtime::ServiceOptions{.num_workers = 2});
  const auto result = service.run(requests);
  for (const auto& outcome : result.outcomes) {
    EXPECT_TRUE(outcome.ok) << outcome.error;
    EXPECT_EQ(outcome.epochs, 5u);  // initial plan + 4 mutation epochs
    EXPECT_EQ(outcome.epochs_valid, 5u) << outcome.tags;
    EXPECT_TRUE(outcome.verified);
    EXPECT_GT(outcome.rate, 0.0);
    // Sessions split the conflict stage exactly into index maintenance +
    // row queries, and the tree stage into MST updates + orientation.
    EXPECT_NEAR(outcome.timings.conflict_ms,
                outcome.conflict_maintain_ms + outcome.conflict_query_ms,
                1e-9);
    EXPECT_GT(outcome.conflict_maintain_ms, 0.0);
    EXPECT_NEAR(outcome.timings.tree_ms,
                outcome.mst_update_ms + outcome.orient_ms, 1e-9);
    EXPECT_GT(outcome.orient_ms, 0.0);
  }

  // Same digests at any worker count (sessions are deterministic).
  runtime::PlanService serial(runtime::ServiceOptions{.num_workers = 1});
  const auto again = serial.run(requests);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(result.outcomes[i].digest, again.outcomes[i].digest);
  }
}

}  // namespace
}  // namespace wagg::dynamic
