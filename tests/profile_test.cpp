#include "obs/profile.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.h"

namespace wagg::obs {
namespace {

CollectedSpan span(const char* name, std::uint64_t start_ns,
                   std::uint64_t end_ns, std::uint32_t tid = 1) {
  return CollectedSpan{name, start_ns, end_ns, tid};
}

const ProfileRow* find_row(const ProfileReport& report,
                           const std::string& name) {
  for (const auto& row : report.rows) {
    if (row.name == name) return &row;
  }
  return nullptr;
}

// ---------------------------------------------------------------- nesting

TEST(Profile, ExclusiveSubtractsDirectChildrenOnly) {
  // epoch [0,100] > stage_a [10,50] > inner [20,30]; stage_b [50,90].
  // Grandchild time must be charged to stage_a, never double-subtracted
  // from the epoch.
  const auto report = profile_spans({
      span("epoch", 0, 100'000'000),
      span("stage_a", 10'000'000, 50'000'000),
      span("inner", 20'000'000, 30'000'000),
      span("stage_b", 50'000'000, 90'000'000),
  });
  ASSERT_EQ(report.malformed_spans, 0u);
  EXPECT_EQ(report.root_count, 1u);
  EXPECT_DOUBLE_EQ(report.root_ms, 100.0);
  EXPECT_DOUBLE_EQ(find_row(report, "epoch")->exclusive_ms, 20.0);
  EXPECT_DOUBLE_EQ(find_row(report, "stage_a")->inclusive_ms, 40.0);
  EXPECT_DOUBLE_EQ(find_row(report, "stage_a")->exclusive_ms, 30.0);
  EXPECT_DOUBLE_EQ(find_row(report, "inner")->exclusive_ms, 10.0);
  EXPECT_DOUBLE_EQ(find_row(report, "stage_b")->exclusive_ms, 40.0);
}

TEST(Profile, AdjacentChildrenTileWithoutNesting) {
  // StageSpans tile an epoch edge-to-edge: child A ends exactly where
  // child B starts. B is the epoch's child, not A's.
  const auto report = profile_spans({
      span("epoch", 0, 100),
      span("a", 0, 50),
      span("b", 50, 100),
  });
  ASSERT_EQ(report.malformed_spans, 0u);
  EXPECT_DOUBLE_EQ(find_row(report, "epoch")->exclusive_ms, 0.0);
  EXPECT_DOUBLE_EQ(find_row(report, "a")->exclusive_ms,
                   find_row(report, "a")->inclusive_ms);
  EXPECT_DOUBLE_EQ(find_row(report, "b")->exclusive_ms,
                   find_row(report, "b")->inclusive_ms);
}

TEST(Profile, ExclusiveSumEqualsRootTimeExactly) {
  // Multiple roots, repeated stage names, uneven tiling — the identity is
  // structural, not approximate.
  std::vector<CollectedSpan> spans;
  std::uint64_t t = 0;
  for (int epoch = 0; epoch < 5; ++epoch) {
    const std::uint64_t start = t;
    spans.push_back(span("stage_a", t + 3, t + 40 + epoch));
    spans.push_back(span("inner", t + 10, t + 20));
    spans.push_back(span("stage_b", t + 50, t + 90));
    t += 100 + epoch;
    spans.push_back(span("epoch", start, t));
  }
  const auto report = profile_spans(std::move(spans));
  ASSERT_EQ(report.malformed_spans, 0u);
  EXPECT_EQ(report.root_count, 5u);
  EXPECT_DOUBLE_EQ(report.exclusive_sum_ms(), report.root_ms);
}

TEST(Profile, ThreadsProfileIndependently) {
  // Identical timestamps on two tids are two span trees, not an overlap.
  const auto report = profile_spans({
      span("epoch", 0, 100, 1),
      span("work", 10, 90, 1),
      span("epoch", 0, 100, 2),
      span("work", 10, 90, 2),
  });
  ASSERT_EQ(report.malformed_spans, 0u);
  EXPECT_EQ(report.root_count, 2u);
  EXPECT_DOUBLE_EQ(report.root_ms, 200.0 * 1e-6);
  const auto* work = find_row(report, "work");
  EXPECT_EQ(work->count, 2u);
  EXPECT_DOUBLE_EQ(report.exclusive_sum_ms(), report.root_ms);
}

TEST(Profile, PartialOverlapIsCountedMalformed) {
  // [0,100] and [50,150] on one tid can come only from torn ring slots or
  // non-RAII instrumentation; the report must flag itself untrustworthy.
  const auto report = profile_spans({
      span("a", 0, 100),
      span("b", 50, 150),
  });
  EXPECT_EQ(report.malformed_spans, 1u);
}

TEST(Profile, RowsSortHottestFirstAndTableTruncates) {
  const auto report = profile_spans({
      span("epoch", 0, 1'000'000'000),
      span("cold", 0, 10'000'000),
      span("hot", 10'000'000, 900'000'000),
  });
  ASSERT_EQ(report.rows.size(), 3u);
  EXPECT_EQ(report.rows.front().name, "hot");
  for (std::size_t i = 1; i < report.rows.size(); ++i) {
    EXPECT_GE(report.rows[i - 1].exclusive_ms, report.rows[i].exclusive_ms);
  }
  const std::string top1 = report.table(1);
  EXPECT_NE(top1.find("hot"), std::string::npos);
  EXPECT_EQ(top1.find("cold"), std::string::npos);
  EXPECT_NE(top1.find("2 cooler stages"), std::string::npos);  // loud cut
}

TEST(Profile, PerRootColumnDividesByRootCount) {
  const auto report = profile_spans({
      span("epoch", 0, 100'000'000),
      span("work", 0, 60'000'000),
      span("epoch", 200'000'000, 300'000'000),
      span("work", 200'000'000, 240'000'000),
  });
  ASSERT_EQ(report.root_count, 2u);
  EXPECT_DOUBLE_EQ(find_row(report, "work")->exclusive_per_root_ms, 50.0);
  EXPECT_DOUBLE_EQ(find_row(report, "epoch")->exclusive_per_root_ms, 50.0);
}

TEST(Profile, EmptyStreamYieldsEmptyReport) {
  const auto report = profile_spans({});
  EXPECT_TRUE(report.rows.empty());
  EXPECT_EQ(report.root_count, 0u);
  EXPECT_DOUBLE_EQ(report.exclusive_sum_ms(), 0.0);
  EXPECT_FALSE(report.table().empty());  // still prints a totals line
}

// ------------------------------------------------------------- live tracer

TEST(Profile, LiveTracerStreamSatisfiesTheIdentityWithinOnePercent) {
  Tracer::global().disable();
  Tracer::global().clear();
  Tracer::global().enable();
  for (int epoch = 0; epoch < 4; ++epoch) {
    Span root("epoch");
    {
      Span a("stage_a");
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    {
      Span b("stage_b");
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }
  Tracer::global().disable();
  const auto report = profile_global_tracer();
  Tracer::global().clear();
  ASSERT_EQ(report.malformed_spans, 0u);
  ASSERT_EQ(report.root_count, 4u);
  ASSERT_GT(report.root_ms, 0.0);
  // The acceptance identity the bench suite gates on: per-stage exclusive
  // self times must sum to the root epoch spans within 1%. (For clean
  // streams it is exact; 1% is the documented public bound.)
  EXPECT_LE(std::abs(report.exclusive_sum_ms() - report.root_ms),
            0.01 * report.root_ms);
  EXPECT_NE(find_row(report, "stage_a"), nullptr);
  EXPECT_NE(find_row(report, "stage_b"), nullptr);
}

// ------------------------------------------------------------ offline path

TEST(Profile, ChromeTraceJsonProfilesLikeTheLiveStream) {
  const std::vector<CollectedSpan> spans = {
      span("epoch", 0, 100'000),
      span("stage_a", 1'000, 60'000),
      span("stage_b", 60'000, 99'000),
  };
  const auto live = profile_spans(spans);

  // The same stream through the Chrome trace-event form `--trace` writes
  // (ts/dur in fractional microseconds).
  std::ostringstream json;
  json << "{\"traceEvents\": [";
  json << "{\"ph\": \"M\", \"name\": \"thread_name\", \"tid\": 1},";
  bool first = true;
  for (const auto& s : spans) {
    if (!first) json << ",";
    first = false;
    json << "{\"ph\": \"X\", \"name\": \"" << s.name
         << "\", \"tid\": " << s.tid << ", \"ts\": "
         << static_cast<double>(s.start_ns) / 1000.0
         << ", \"dur\": " << static_cast<double>(s.end_ns - s.start_ns) / 1000.0
         << "}";
  }
  json << "]}";
  const auto offline = profile_chrome_trace(json.str());

  ASSERT_EQ(offline.malformed_spans, 0u);
  ASSERT_EQ(offline.rows.size(), live.rows.size());
  for (std::size_t i = 0; i < live.rows.size(); ++i) {
    EXPECT_EQ(offline.rows[i].name, live.rows[i].name);
    EXPECT_EQ(offline.rows[i].count, live.rows[i].count);
    EXPECT_NEAR(offline.rows[i].exclusive_ms, live.rows[i].exclusive_ms,
                1e-9);
  }
  EXPECT_DOUBLE_EQ(offline.exclusive_sum_ms(), offline.root_ms);
}

TEST(Profile, ChromeTraceRejectsMalformedJson) {
  EXPECT_THROW(profile_chrome_trace("not json"), std::invalid_argument);
  EXPECT_THROW(profile_chrome_trace("{\"traceEvents\": [{]}"),
               std::invalid_argument);
}

}  // namespace
}  // namespace wagg::obs
