// Interactive capacity report: pick an instance family and model parameters
// on the command line, get the full planning breakdown.
//
//   ./capacity_explorer --family=uniform --n=512 --mode=global
//        [--alpha=3] [--beta=1] [--tau=0.5] [--seed=1]
//
// Families: uniform | disk | cluster | grid | unitchain | expchain | line
// Modes:    uniform | linear | oblivious | global

#include <cmath>
#include <iostream>
#include <string>

#include "core/planner.h"
#include "instance/basic.h"
#include "util/args.h"
#include "util/logmath.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const wagg::util::Args args(argc, argv);
  if (args.has("help")) {
    std::cout << "usage: capacity_explorer [--family=F] [--n=N] [--mode=M]\n"
                 "  [--alpha=A] [--beta=B] [--tau=T] [--gamma=G] [--seed=S]\n";
    return 0;
  }
  const std::string family = args.get("family", "uniform");
  const auto n = static_cast<std::size_t>(args.get_int("n", 256));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  wagg::geom::Pointset points;
  if (family == "uniform") {
    points = wagg::instance::uniform_square(n, 25.0, seed);
  } else if (family == "disk") {
    points = wagg::instance::uniform_disk(n, 25.0, seed);
  } else if (family == "cluster") {
    points = wagg::instance::clustered(std::max<std::size_t>(1, n / 16), 16,
                                       100.0, 0.5, seed);
  } else if (family == "grid") {
    const auto side = static_cast<std::size_t>(std::sqrt(double(n)));
    points = wagg::instance::grid(side, side, 1.0);
  } else if (family == "unitchain") {
    points = wagg::instance::unit_chain(n);
  } else if (family == "expchain") {
    points = wagg::instance::exponential_chain(std::min<std::size_t>(n, 900),
                                               2.0);
  } else if (family == "line") {
    points = wagg::instance::uniform_line(n, 1000.0, seed);
  } else {
    std::cerr << "unknown family: " << family << "\n";
    return 2;
  }

  wagg::core::PlannerConfig config;
  const std::string mode = args.get("mode", "global");
  if (mode == "uniform") {
    config.power_mode = wagg::core::PowerMode::kUniform;
  } else if (mode == "linear") {
    config.power_mode = wagg::core::PowerMode::kLinear;
  } else if (mode == "oblivious") {
    config.power_mode = wagg::core::PowerMode::kOblivious;
  } else if (mode == "global") {
    config.power_mode = wagg::core::PowerMode::kGlobal;
  } else {
    std::cerr << "unknown mode: " << mode << "\n";
    return 2;
  }
  config.sinr.alpha = args.get_double("alpha", 3.0);
  config.sinr.beta = args.get_double("beta", 1.0);
  config.tau = args.get_double("tau", 0.5);
  config.gamma = args.get_double("gamma", 2.0);

  const auto plan = wagg::core::plan_aggregation(points, config);
  const double log_delta = plan.tree.links.log2_delta();

  wagg::util::Table t({"quantity", "value"});
  t.row().cell("family").cell(family);
  t.row().cell("nodes").cell(points.size());
  t.row().cell("power mode").cell(wagg::core::to_string(config.power_mode));
  t.row().cell("conflict graph").cell(plan.scheduling.spec.name());
  t.row().cell("log2(Delta)").cell(log_delta, 2);
  t.row().cell("log*(Delta)").cell(wagg::util::log2_star_of_log2(log_delta));
  t.row().cell("loglog(Delta)").cell(
      wagg::util::log2_log2_of_log2(log_delta), 2);
  t.row().cell("colors before repair").cell(
      plan.scheduling.colors_before_repair);
  t.row().cell("slots split by repair").cell(plan.scheduling.slots_split);
  t.row().cell("schedule length").cell(plan.schedule().length());
  t.row().cell("aggregation rate").cell(plan.rate(), 5);
  t.row().cell("SINR verified").cell(plan.verified() ? "yes" : "NO");
  t.row().cell("tree height").cell(plan.tree.height());
  t.print(std::cout);
  return plan.verified() ? 0 : 1;
}
