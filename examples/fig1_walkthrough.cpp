// Slot-by-slot walkthrough of the paper's Fig 1: five nodes (a, b, c, d,
// sink), tree a->c, b->d, c->sink, d->sink, periodic schedule
// S1 = {a->c, d->sink}, S2 = {b->d, c->sink}. Reproduces the narrative of
// the introduction: frame 1 aggregated at the root by the start of slot 4,
// latency 3, rate 1/2, node d buffering two values.

#include <iostream>
#include <string>
#include <vector>

#include "instance/special.h"
#include "mst/tree.h"
#include "schedule/simulator.h"

namespace {

const char* kNames[] = {"a", "b", "c", "d", "sink"};

struct NodeState {
  // Per frame: how many child contributions have arrived, and whether the
  // node's own reading exists yet; the partial sum as a string like "a1+c1".
  std::vector<int> received;
  std::vector<bool> has_own;
  std::vector<std::string> partial;
  std::size_t next_to_send = 0;
};

}  // namespace

int main() {
  const auto inst = wagg::instance::fig1_instance();
  const std::vector<wagg::mst::Edge> edges{{0, 2}, {1, 3}, {2, 4}, {3, 4}};
  const auto tree = wagg::mst::orient_toward_sink(inst.points, edges, 4);
  auto link_of = [&](int child) {
    return static_cast<std::size_t>(tree.link_of_node[child]);
  };
  const std::vector<std::vector<std::size_t>> slots{
      {link_of(0), link_of(3)}, {link_of(1), link_of(2)}};

  constexpr std::size_t kFrames = 3;
  constexpr std::size_t kPeriod = 2;
  std::vector<NodeState> state(5);
  for (auto& s : state) {
    s.received.assign(kFrames, 0);
    s.has_own.assign(kFrames, false);
    s.partial.assign(kFrames, "");
  }
  const int need[5] = {0, 0, 1, 1, 2};

  std::cout << "Tree: a->c, b->d, c->sink, d->sink.  Schedule: S1={a->c, "
               "d->sink}, S2={b->d, c->sink}\nFrames generated every 2 slots "
               "(frame k at slot 2k, 0-based). Paper counts slots from 1.\n\n";

  for (std::size_t t = 0; t < 8; ++t) {
    // Generation.
    if (t % kPeriod == 0 && t / kPeriod < kFrames) {
      const std::size_t k = t / kPeriod;
      for (int v = 0; v < 4; ++v) {  // sink holds no measurement
        state[v].has_own[k] = true;
        const std::string reading =
            std::string(kNames[v]) + std::to_string(k + 1);
        state[v].partial[k] =
            state[v].partial[k].empty() ? reading
                                        : state[v].partial[k] + "+" + reading;
      }
      std::cout << "[slot " << t + 1 << "] frame " << k + 1
                << " generated at a, b, c, d\n";
    }
    // Transmissions.
    for (const std::size_t link : slots[t % 2]) {
      const int sender = tree.links.link(link).sender;
      const int parent = tree.links.link(link).receiver;
      auto& s = state[sender];
      const std::size_t k = s.next_to_send;
      if (k >= kFrames || !s.has_own[k] || s.received[k] < need[sender]) {
        std::cout << "[slot " << t + 1 << "] " << kNames[sender] << "->"
                  << kNames[parent] << " idle (nothing complete)\n";
        continue;
      }
      std::cout << "[slot " << t + 1 << "] " << kNames[sender] << "->"
                << kNames[parent] << " transmits " << s.partial[k] << "\n";
      auto& p = state[parent];
      p.partial[k] = p.partial[k].empty() ? s.partial[k]
                                          : p.partial[k] + "+" + s.partial[k];
      ++p.received[k];
      ++s.next_to_send;
      if (parent == 4 && p.received[k] == need[4]) {
        std::cout << "          >>> sink completes frame " << k + 1 << ": "
                  << p.partial[k] << " (latency " << t + 1 - kPeriod * k
                  << " slots)\n";
      }
    }
    // Show d's buffer (the paper highlights it holding two values).
    const auto& d = state[3];
    std::string buffer;
    for (std::size_t k = d.next_to_send; k < kFrames; ++k) {
      if (!d.partial[k].empty()) {
        buffer += (buffer.empty() ? "" : ", ") + d.partial[k];
      }
    }
    if (!buffer.empty()) {
      std::cout << "          d's buffer: {" << buffer << "}\n";
    }
  }
  std::cout << "\nCross-check with the discrete-event simulator:\n";
  wagg::schedule::Schedule sched;
  sched.slots = slots;
  wagg::schedule::SimulationConfig cfg;
  cfg.num_frames = 100;
  cfg.generation_period = 2;
  const auto rep = wagg::schedule::simulate_aggregation(tree, sched, cfg);
  std::cout << "  rate " << rep.steady_rate << " (paper 0.5), latency "
            << rep.max_latency << " (paper 3), max buffer " << rep.max_buffer
            << " (paper 2), aggregates "
            << (rep.aggregates_correct ? "correct" : "WRONG") << "\n";
  return 0;
}
