// Environmental-monitoring scenario: a clustered sensor deployment (dense
// pods of sensors around points of interest) streams measurement frames to
// a gateway. Compares the four power-control regimes end to end, then runs
// the pipelined aggregation simulation at the planned rate and checks the
// sink's aggregates.
//
//   ./sensor_field [pods] [sensors_per_pod] [seed]

#include <cstdlib>
#include <iostream>

#include "core/planner.h"
#include "instance/basic.h"
#include "schedule/simulator.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const std::size_t pods = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 12;
  const std::size_t per_pod =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 24;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 7;

  const auto points =
      wagg::instance::clustered(pods, per_pod, 500.0, 1.5, seed);
  std::cout << "deployment: " << pods << " pods x " << per_pod
            << " sensors = " << points.size() << " nodes, gateway = node 0\n\n";

  wagg::util::Table table(
      {"power mode", "slots", "rate", "verified", "steady rate (sim)",
       "max latency", "max buffer", "aggregates"});
  for (const auto mode :
       {wagg::core::PowerMode::kUniform, wagg::core::PowerMode::kLinear,
        wagg::core::PowerMode::kOblivious, wagg::core::PowerMode::kGlobal}) {
    wagg::core::PlannerConfig config;
    config.power_mode = mode;
    const auto plan = wagg::core::plan_aggregation(points, config);

    wagg::schedule::SimulationConfig sim;
    sim.num_frames = 48;
    sim.generation_period = plan.schedule().length();
    const auto report =
        wagg::schedule::simulate_aggregation(plan.tree, plan.schedule(), sim);

    table.row()
        .cell(wagg::core::to_string(mode))
        .cell(plan.schedule().length())
        .cell(plan.rate(), 4)
        .cell(plan.verified() ? "yes" : "NO")
        .cell(report.steady_rate, 4)
        .cell(report.max_latency)
        .cell(report.max_buffer)
        .cell(report.aggregates_correct ? "correct" : "WRONG");
  }
  table.print(std::cout);
  std::cout << "\nEvery row's schedule is exactly SINR-feasible; the 'global'"
            << "\nrow is the paper's protocol (MST + power control +"
            << "\nG_(gamma log) coloring) and should use the fewest slots.\n";
  return 0;
}
