// A gallery of the paper's lower-bound constructions, built and certified:
//   - Fig 2: doubly-exponential chain (defeats every oblivious P_tau),
//   - Fig 3: recursive R_t (defeats arbitrary power control on the MST),
//   - Fig 4: zigzag instance (defeats the MST itself),
//   - the 5-cycle multicoloring example.

#include <iostream>

#include "analysis/audit.h"
#include "core/planner.h"
#include "instance/lowerbound.h"
#include "instance/special.h"
#include "instance/zigzag.h"
#include "mst/tree.h"
#include "schedule/verify.h"
#include "sinr/power.h"
#include "util/logmath.h"

namespace {

wagg::sinr::SinrParams params() {
  wagg::sinr::SinrParams p;
  p.alpha = 3.0;
  p.beta = 1.0;
  return p;
}

void fig2() {
  std::cout << "--- Fig 2: doubly-exponential chain (tau = 1/2) ---\n";
  const auto prm = params();
  const auto chain = wagg::instance::doubly_exponential_chain(8, 0.5, prm.alpha,
                                                              prm.beta);
  const auto tree = wagg::mst::mst_tree(chain.points, 0);
  const auto power = wagg::sinr::oblivious_power(tree.links, 0.5, prm);
  const auto oracle =
      wagg::schedule::fixed_power_oracle(tree.links, prm, power);
  std::cout << "  points: " << chain.points.size()
            << ", log2(Delta) = " << chain.log2_delta << " (loglog = "
            << wagg::util::log2_log2_of_log2(chain.log2_delta) << ")\n"
            << "  cofeasible link pairs under P_tau: "
            << wagg::analysis::count_cofeasible_pairs(tree.links, oracle)
            << " (paper: 0 -> one link per slot)\n\n";
}

void fig3() {
  std::cout << "--- Fig 3: recursive R_t ---\n";
  for (int t = 1; t <= 4; ++t) {
    const auto rt = wagg::instance::recursive_rt(t, 4.0, 12, 60000);
    const auto plan = wagg::core::plan_aggregation(
        rt.points, [] {
          wagg::core::PlannerConfig c;
          c.power_mode = wagg::core::PowerMode::kGlobal;
          return c;
        }());
    std::cout << "  t=" << t << ": nodes=" << rt.points.size()
              << " log2(Delta)=" << rt.log2_delta
              << " log*(Delta)=" << wagg::util::log2_star_of_log2(rt.log2_delta)
              << " planner slots=" << plan.schedule().length()
              << (rt.capped ? " (copies capped)" : "") << "\n";
  }
  std::cout << "\n";
}

void fig4() {
  std::cout << "--- Fig 4: zigzag spanning tree vs MST (tau = 0.3) ---\n";
  const auto prm = params();
  const auto inst = wagg::instance::zigzag_instance(4, 0.3, 32.0);
  const auto power =
      wagg::sinr::oblivious_power(inst.tree_links, 0.3, prm);
  const bool longs =
      wagg::sinr::is_feasible(inst.tree_links, inst.long_links, prm, power);
  const bool shorts =
      wagg::sinr::is_feasible(inst.tree_links, inst.short_links, prm, power);
  const auto mst_links = wagg::mst::mst_tree(inst.points, inst.sink).links;
  const auto mst_power = wagg::sinr::oblivious_power(mst_links, 0.3, prm);
  const auto oracle =
      wagg::schedule::fixed_power_oracle(mst_links, prm, mst_power);
  const auto bound =
      wagg::analysis::min_slots_lower_bound(mst_links, oracle);
  std::cout << "  zigzag tree: long slot "
            << (longs ? "feasible" : "INFEASIBLE") << ", short slot "
            << (shorts ? "feasible" : "INFEASIBLE") << " -> 2 slots total\n"
            << "  MST of the same 8 points: exact minimum "
            << (bound ? std::to_string(*bound) : std::string("?"))
            << " slots (one per link)\n\n";
}

void five_cycle() {
  std::cout << "--- 5-cycle: multicoloring beats coloring ---\n";
  const auto prm = params();
  const auto inst = wagg::instance::five_cycle_instance();
  const auto power = wagg::sinr::uniform_power(inst.links, prm);
  const auto oracle =
      wagg::schedule::fixed_power_oracle(inst.links, prm, power);
  wagg::schedule::Schedule coloring, multicolor;
  coloring.slots = inst.coloring_slots;
  multicolor.slots = inst.multicolor_slots;
  std::cout << "  coloring schedule: "
            << (wagg::schedule::verify_schedule(inst.links, coloring, oracle)
                        .ok()
                    ? "feasible"
                    : "INFEASIBLE")
            << ", rate " << wagg::schedule::min_link_rate(coloring, 5) << "\n"
            << "  multicolor schedule: "
            << (wagg::schedule::verify_schedule(inst.links, multicolor, oracle)
                        .ok()
                    ? "feasible"
                    : "INFEASIBLE")
            << ", rate " << wagg::schedule::min_link_rate(multicolor, 5)
            << " (paper: 2/5 > 1/3)\n";
}

}  // namespace

int main() {
  fig2();
  fig3();
  fig4();
  five_cycle();
  return 0;
}
