// Batch planning driver: expand a declarative WorkloadSpec into seeded plan
// requests and execute them on the concurrent PlanService.
//
//   ./wagg_batch                          # built-in 216-request demo sweep
//   ./wagg_batch --spec=sweep.txt         # run a spec file
//   ./wagg_batch --workers=8 --csv        # pool size; CSV per-cell output
//   ./wagg_batch --keep-failures          # print every failed request
//   ./wagg_batch --trace=out.json --metrics-json=out-metrics.json
//
// Spec grammar (whitespace-separated key=value, '#' comments):
//   name=demo families=uniform,annulus sizes=64..256x2 modes=global
//   reps=5 seed=1 alpha=3 beta=1

#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "obs/export.h"
#include "obs/trace.h"
#include "runtime/plan_service.h"
#include "util/args.h"
#include "util/stats.h"
#include "util/table.h"
#include "workload/workload.h"

namespace {

constexpr const char* kDemoSpec =
    "name=demo\n"
    "families=uniform,cluster,annulus\n"
    "sizes=48,96,192\n"
    "modes=global,uniform\n"
    "reps=12\n"  // 3 families x 3 sizes x 2 modes x 12 reps = 216 requests
    "seed=1\n";

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open spec file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// Aggregate of all replications of one (family, n, mode) cell.
struct CellAggregate {
  std::size_t ok = 0;
  std::size_t failed = 0;
  wagg::util::Samples slots;
  wagg::util::Samples rate;
  wagg::util::Samples total_ms;
};

std::string cell_key(const std::string& tags) {
  // Tags are "family=<f> n=<n> mode=<m> rep=<r>"; the cell is all but rep.
  const auto rep = tags.rfind(" rep=");
  return rep == std::string::npos ? tags : tags.substr(0, rep);
}

void print_stage_table(const wagg::runtime::BatchStats& stats) {
  wagg::util::Table table({"stage", "p50 ms", "p95 ms", "mean ms", "max ms"});
  const auto add = [&table](const char* name,
                            const wagg::runtime::StageSummary& s) {
    table.row().cell(name).cell(s.p50).cell(s.p95).cell(s.mean).cell(s.max);
  };
  add("tree", stats.tree);
  // Session batches split the tree stage: dynamic-tree MST updates vs
  // orientation-diff replay (all-static batches leave both rows at zero).
  add("  mst-update", stats.mst_update);
  add("  orient", stats.orient);
  add("conflict", stats.conflict);
  // Session batches split the conflict stage: persistent-index upkeep vs
  // dirty-row queries (all-static batches leave both rows at zero).
  add("  maintain", stats.conflict_maintain);
  add("  query", stats.conflict_query);
  add("coloring", stats.coloring);
  add("repair", stats.repair);
  add("verify", stats.verify);
  add("power", stats.power);
  add("queue", stats.queue);
  add("total", stats.total_latency);
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const wagg::util::Args args(argc, argv);
  try {
    const std::string spec_text = args.has("spec")
                                      ? read_file(args.get("spec", ""))
                                      : std::string(kDemoSpec);
    const auto spec = wagg::workload::WorkloadSpec::parse(spec_text);
    const auto requests = spec.expand();

    // RAII export: a request that throws past the service (or a spec bug in
    // the loop below) still leaves the trace/metrics artifacts on disk.
    wagg::obs::ExportGuard telemetry(args.get("trace", ""),
                                     args.get("metrics-json", ""));

    wagg::runtime::ServiceOptions options;
    options.num_workers =
        static_cast<std::size_t>(args.get_int("workers", 0));
    wagg::runtime::PlanService service(options);

    std::cout << "workload: " << spec.name << "  (" << requests.size()
              << " requests, " << service.num_workers() << " workers)\n";

    const auto result = service.run(requests);

    // Per-cell aggregates, in expansion order.
    std::map<std::string, CellAggregate> cells;
    std::vector<std::string> cell_order;
    for (const auto& outcome : result.outcomes) {
      const auto key = cell_key(outcome.tags);
      if (!cells.count(key)) cell_order.push_back(key);
      auto& cell = cells[key];
      if (outcome.ok) {
        ++cell.ok;
        cell.slots.add(static_cast<double>(outcome.slots));
        cell.rate.add(outcome.rate);
        cell.total_ms.add(outcome.total_ms);
      } else {
        ++cell.failed;
        if (args.has("keep-failures")) {
          std::cerr << "FAILED [" << outcome.tags << "]: " << outcome.error
                    << "\n";
        }
      }
    }

    wagg::util::Table table(
        {"cell", "ok", "fail", "slots(mean)", "rate(mean)", "ms(p50)",
         "ms(p95)"});
    for (const auto& key : cell_order) {
      const auto& cell = cells[key];
      table.row()
          .cell(key)
          .cell(cell.ok)
          .cell(cell.failed)
          .cell(cell.slots.empty() ? 0.0 : cell.slots.mean())
          .cell(cell.rate.empty() ? 0.0 : cell.rate.mean())
          .cell(wagg::util::percentile_or(cell.total_ms.values(), 50.0, 0.0))
          .cell(wagg::util::percentile_or(cell.total_ms.values(), 95.0, 0.0));
    }
    if (args.has("csv")) {
      table.print_csv(std::cout);
    } else {
      table.print(std::cout);
    }

    std::cout << "\nbatch: " << result.stats.succeeded << "/"
              << result.stats.total << " ok, wall "
              << wagg::util::format_double(result.stats.wall_ms, 1)
              << " ms, throughput "
              << wagg::util::format_double(result.stats.plans_per_sec, 1)
              << " plans/sec";
    if (result.stats.session_epochs > 0) {
      std::cout << ", "
                << wagg::util::format_double(
                       result.stats.session_epochs_per_sec, 1)
                << " session epochs/sec (" << result.stats.session_epochs
                << " epochs)";
    }
    std::cout << "\n\nstage latencies (successful plans):\n";
    print_stage_table(result.stats);

    // Workers are idle once run() returned (completion synchronized through
    // the batch condition variable), so the export sees complete buffers.
    telemetry.close();
    if (telemetry.wants_trace()) {
      std::cout << "trace: " << args.get("trace", "") << " ("
                << wagg::obs::Tracer::global().recorded_events() << " spans, "
                << wagg::obs::Tracer::global().dropped_events()
                << " dropped)\n";
    }
    if (telemetry.wants_metrics()) {
      std::cout << "metrics: " << args.get("metrics-json", "") << "\n";
    }

    return result.stats.failed == 0 ? 0 : 2;
  } catch (const std::exception& e) {
    std::cerr << "wagg_batch: " << e.what() << "\n";
    return 1;
  }
}
