// Dynamic churn driver: open a planning session on a generated instance,
// stream seeded mutations through it, and watch the incremental engine
// replan each epoch.
//
//   ./wagg_churn                                    # defaults below
//   ./wagg_churn --family=cluster --n=512 --epochs=30 --rate=0.05
//   ./wagg_churn --mode=uniform --audit             # cross-check each epoch
//   ./wagg_churn --powers                           # materialize slot powers
//   ./wagg_churn --grow=0.02                        # net growth schedule
//   ./wagg_churn --shrink=0.02                      # net shrink schedule
//   ./wagg_churn --full-frac=0.1 --seed=7 --csv
//   ./wagg_churn --trace=out.json --metrics-json=out-metrics.json
//
// Per epoch the driver prints the mutation count, the dirty-link set, how
// many slots were reused untouched vs patched, oracle calls spent, the rate,
// and the incremental wall clock — with --audit also the from-scratch
// replan's wall clock and the validity cross-check.
//
// --trace writes a Chrome trace-event / Perfetto JSON of the session's span
// tree (per-epoch stage slices); --metrics-json writes the obs::Registry
// snapshot (counters + log-bucketed latency histograms). Both metric windows
// cover the mutation epochs — the construction full plan is excluded so the
// histograms describe steady-state incremental cost.

#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "conflict/conflict_index.h"
#include "dynamic/dynamic_planner.h"
#include "dynamic/mutation.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/args.h"
#include "util/table.h"
#include "workload/workload.h"

int main(int argc, char** argv) {
  using namespace wagg;
  const util::Args args(argc, argv);
  try {
    const std::string family = args.get("family", "uniform");
    const auto n = static_cast<std::size_t>(args.get_int("n", 256));
    const auto epochs = static_cast<std::size_t>(args.get_int("epochs", 20));
    const double rate = args.get_double("rate", 0.05);
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

    dynamic::ChurnParams params;
    params.epochs = epochs;
    params.rate = rate;
    params.grow_rate = args.get_double("grow", 0.0);
    params.shrink_rate = args.get_double("shrink", 0.0);
    params.hotspot_fraction = args.get_double("hotspot", 0.0);
    params.hotspot_radius = args.get_double("hradius", 0.0);
    params.waypoint_speed = args.get_double("speed", 0.0);
    if (args.get("drift", "gauss") == "waypoint") {
      params.drift = dynamic::DriftKind::kWaypoint;
    }
    const auto points = workload::make_family(family, n, seed);
    const auto trace = dynamic::make_churn_trace(points, params, seed);

    dynamic::DynamicOptions options;
    options.config = workload::mode_config(
        workload::power_mode_from_string(args.get("mode", "global")));
    options.audit = args.has("audit");
    options.full_replan_fraction = args.get_double("full-frac", 0.35);

    // RAII export: if anything below throws mid-session, the guard's
    // destructor still flushes the spans and metrics recorded so far — the
    // postmortem evidence for the very run that died.
    obs::ExportGuard telemetry(args.get("trace", ""),
                               args.get("metrics-json", ""));

    dynamic::DynamicPlanner planner(points, options);
    // Window the registry on the mutation epochs: the construction full plan
    // would otherwise dominate every latency histogram. The trace keeps the
    // construction spans — seeing the initial plan there is useful.
    obs::Registry::global().reset();
    std::cout << "churn session: family=" << family << " n=" << n
              << " rate=" << rate << " epochs=" << epochs
              << " mode=" << core::to_string(options.config.power_mode)
              << (options.audit ? " (audited)" : "") << "\n\n";

    std::vector<std::string> columns = {"epoch", "muts",  "nodes",
                                        "links", "dirty", "slots",
                                        "reused", "patched", "oracle",
                                        "rate",  "incr ms", "mst ms",
                                        "cfl ms", "rc hit", "rc miss"};
    if (options.audit) {
      columns.push_back("full ms");
      columns.push_back("ok");
    }
    util::Table table(columns);

    // Per-epoch conflict row-cache traffic, diffed from the index's
    // cumulative stats around each apply() (the registry holds the same
    // series; diffing here keeps the construction epoch's row honest too).
    auto cache_mark = conflict::ConflictIndexStats{};
    const auto add_row = [&](const dynamic::EpochReport& report) {
      const auto cache = planner.conflict_index().stats();
      auto& row = table.row();
      row.cell(report.epoch)
          .cell(report.mutations_applied)
          .cell(report.num_nodes)
          .cell(report.num_links)
          .cell(report.full_replan ? report.num_links : report.dirty_links)
          .cell(report.slots)
          .cell(report.reused_slots)
          .cell(report.touched_slots)
          .cell(report.oracle_calls)
          .cell(report.rate, 4)
          .cell(report.timings.incremental_ms(), 2)
          .cell(report.timings.mst_ms(), 2)
          .cell(report.timings.conflict_ms, 2)
          .cell(cache.row_cache_hits - cache_mark.row_cache_hits)
          .cell(cache.row_cache_misses - cache_mark.row_cache_misses);
      cache_mark = cache;
      if (options.audit) {
        row.cell(report.audit_full_ms, 2)
            .cell(report.audit_valid && report.audit_tree_match &&
                          report.audit_store_match && report.audit_index_match
                      ? "yes"
                      : "NO");
      }
    };

    // --powers: ship per-slot Perron vectors every epoch, the way a serving
    // deployment would. Carried-over slots hit the membership-keyed cache.
    const bool powers =
        args.has("powers") &&
        options.config.power_mode == core::PowerMode::kGlobal;
    if (args.has("powers") && !powers) {
      std::cout << "note: --powers ignored — per-slot Perron vectors exist "
                   "only under --mode=global (fixed-power modes use a "
                   "closed-form assignment)\n";
    }
    if (powers) (void)planner.slot_powers();

    add_row(planner.last_report());
    std::vector<double> epoch_times;  // per-epoch incremental_ms
    epoch_times.reserve(trace.size());
    double incremental_ms = 0.0;
    double full_ms = 0.0;
    double mst_update_ms = 0.0;
    double orient_ms = 0.0;
    double conflict_maintain_ms = 0.0;
    double conflict_query_ms = 0.0;
    double power_ms = 0.0;
    std::size_t power_cached = 0;
    std::size_t power_computed = 0;
    std::size_t fallbacks = 0;
    bool all_valid = true;
    for (const auto& epoch_mutations : trace) {
      (void)planner.apply(epoch_mutations);
      if (powers) (void)planner.slot_powers();
      const auto report = planner.last_report();
      add_row(report);
      epoch_times.push_back(report.timings.incremental_ms());
      incremental_ms += report.timings.incremental_ms();
      full_ms += report.audit_full_ms;
      mst_update_ms += report.timings.mst_update_ms;
      orient_ms += report.timings.orient_ms;
      conflict_maintain_ms += report.timings.conflict_maintain_ms;
      conflict_query_ms += report.timings.conflict_query_ms;
      power_ms += report.timings.power_ms;
      power_cached += report.power_slots_cached;
      power_computed += report.power_slots_computed;
      if (report.full_replan) ++fallbacks;
      all_valid = all_valid && report.valid &&
                  (!report.audited || (report.audit_valid &&
                                       report.audit_tree_match &&
                                       report.audit_store_match &&
                                       report.audit_index_match));
    }
    if (args.has("csv")) {
      table.print_csv(std::cout);
    } else {
      table.print(std::cout);
    }

    std::cout << "\nsession: " << epochs << " epochs, "
              << util::format_double(
                     incremental_ms / static_cast<double>(epochs), 2)
              << " ms/epoch incremental";
    if (options.audit && incremental_ms > 0.0) {
      std::cout << ", "
                << util::format_double(full_ms / static_cast<double>(epochs),
                                       2)
                << " ms/epoch full replan ("
                << util::format_double(full_ms / incremental_ms, 1)
                << "x speedup)";
    }
    // Round the split cells FIRST and derive each printed total from the
    // rounded parts — formatting the raw sum independently can disagree with
    // the printed parts by the last digit.
    const auto round2 = [](double v) { return std::round(v * 100.0) / 100.0; };
    const double mst_update_cell =
        round2(mst_update_ms / static_cast<double>(epochs));
    const double orient_cell = round2(orient_ms / static_cast<double>(epochs));
    std::cout << ", mst "
              << util::format_double(mst_update_cell + orient_cell, 2)
              << " ms/epoch (" << util::format_double(mst_update_cell, 2)
              << " update / " << util::format_double(orient_cell, 2)
              << " orient)";
    const double maintain_cell =
        round2(conflict_maintain_ms / static_cast<double>(epochs));
    const double query_cell =
        round2(conflict_query_ms / static_cast<double>(epochs));
    std::cout << ", conflict "
              << util::format_double(maintain_cell + query_cell, 2)
              << " ms/epoch (" << util::format_double(maintain_cell, 2)
              << " maintain / " << util::format_double(query_cell, 2)
              << " query)";
    if (powers) {
      std::cout << ", powers "
                << util::format_double(
                       power_ms / static_cast<double>(epochs), 2)
                << " ms/epoch (" << power_cached << " cached / "
                << power_computed << " computed)";
    }
    std::cout << ", " << fallbacks << " fallbacks, "
              << (all_valid ? "all epochs valid" : "INVALID EPOCHS") << "\n";

    // Cumulative row-cache economics for the whole session (construction
    // included — its misses are the warmup that later epochs hit against).
    const auto cache = planner.conflict_index().stats();
    const auto served = cache.row_cache_hits + cache.row_cache_misses;
    std::cout << "row cache: " << cache.row_cache_hits << " hits / "
              << cache.row_cache_misses << " misses";
    if (served > 0) {
      std::cout << " ("
                << util::format_double(100.0 *
                                           static_cast<double>(
                                               cache.row_cache_hits) /
                                           static_cast<double>(served),
                                       1)
                << "% hit)";
    }
    std::cout << ", " << cache.row_cache_patches << " patches, "
              << cache.row_cache_invalidations << " invalidations, "
              << cache.row_cache_evictions << " evictions, "
              << cache.rows_cached << " rows live\n";

    if (!epoch_times.empty()) {
      // The one summary-row implementation of the repo (satellite of the
      // telemetry spine): log-bucketed p50/p95, exact mean/max.
      const obs::SummaryRow lat =
          obs::HistogramSnapshot::of(epoch_times).row();
      std::cout << "epoch latency: p50 " << util::format_double(lat.p50, 2)
                << " ms, p95 " << util::format_double(lat.p95, 2)
                << " ms, mean " << util::format_double(lat.mean, 2)
                << " ms, max " << util::format_double(lat.max, 2) << " ms\n";
    }
    telemetry.close();  // happy path: write now so I/O errors still throw
    if (telemetry.wants_trace()) {
      std::cout << "trace: " << args.get("trace", "") << " ("
                << obs::Tracer::global().recorded_events() << " spans, "
                << obs::Tracer::global().dropped_events() << " dropped)\n";
    }
    if (telemetry.wants_metrics()) {
      std::cout << "metrics: " << args.get("metrics-json", "") << "\n";
    }
    return all_valid ? 0 : 2;
  } catch (const std::exception& e) {
    std::cerr << "wagg_churn: " << e.what() << "\n";
    return 1;
  }
}
