// Quickstart: plan a verified aggregation schedule for a random sensor field
// and report the achieved rate.
//
//   ./quickstart [n] [seed]

#include <cstdlib>
#include <iostream>

#include "core/planner.h"
#include "instance/basic.h"
#include "util/logmath.h"

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 200;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;

  // 1. Deploy n sensors uniformly at random in a square.
  const auto points = wagg::instance::uniform_square(n, 25.0, seed);

  // 2. Plan: MST tree, global power control, G_(gamma log) conflict graph,
  //    greedy coloring, exact-SINR repair + verification.
  wagg::core::PlannerConfig config;
  config.power_mode = wagg::core::PowerMode::kGlobal;
  const auto plan = wagg::core::plan_aggregation(points, config);

  const double log_delta = plan.tree.links.log2_delta();
  std::cout << "nodes:            " << n << "\n"
            << "tree links:       " << plan.tree.links.size() << "\n"
            << "tree height:      " << plan.tree.height() << "\n"
            << "log2(Delta):      " << log_delta << "\n"
            << "log*(Delta):      " << wagg::util::log2_star_of_log2(log_delta)
            << "\n"
            << "schedule slots:   " << plan.schedule().length() << "\n"
            << "aggregation rate: 1/" << plan.schedule().length() << " = "
            << plan.rate() << " frames/slot\n"
            << "SINR verified:    " << (plan.verified() ? "yes" : "NO") << "\n";

  // 3. Inspect the per-slot power vectors computed by the power-control
  //    algorithm (log2 scale; slot 0 shown).
  if (!plan.slot_powers.empty() && !plan.schedule().slots[0].empty()) {
    std::cout << "slot 0 links:     " << plan.schedule().slots[0].size()
              << " (log2 powers of first 5):";
    std::size_t shown = 0;
    for (std::size_t link : plan.schedule().slots[0]) {
      if (shown++ == 5) break;
      std::cout << " " << plan.slot_powers[0].log2_power(link);
    }
    std::cout << "\n";
  }
  return plan.verified() ? 0 : 1;
}
