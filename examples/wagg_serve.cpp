// Serving-runtime driver: open many concurrent churn sessions on the
// striped executor and drive paced epoch rounds through the async session
// API, sweeping sessions x target epochs/sec into a max-sustained-sessions
// curve under a p99 latency SLO.
//
//   ./wagg_serve                                      # defaults below
//   ./wagg_serve --sessions=250,500,1000 --rates=1,2,4
//   ./wagg_serve --family=cluster --n=512 --epochs=10 --slo-ms=100
//   ./wagg_serve --digest-check=8                     # vs sync replay
//   ./wagg_serve --smoke                              # CI gate (see below)
//
// Each sweep point (S sessions, R epochs/sec) expands a serve workload via
// the workload grammar (sessions=S epoch_rate=R churn=...), opens all S
// sessions asynchronously, then submits one epoch per session per round,
// sleeping between rounds to hold the target rate (R=0 = unpaced). A point
// SUSTAINS when every open and epoch succeeded, the achieved rate reached
// 90% of target, and the p99 of submit-to-done latency (mailbox wait +
// epoch execution) stayed within --slo-ms.
//
// --digest-check=K replays the first K sessions' traces on a synchronous
// single-thread DynamicPlanner and requires snapshot_digest equality — the
// executor path must produce bit-identical plans.
//
// --smoke is the CI gate: one point at --sessions (default 1000) x --rates
// (default 2), digest-check forced on, exit 2 unless the point sustains.
// The SLO default is deliberately loose (250 ms) so the gate trips on
// collapse (queue blowup, lost wakeups, serialization), not on runner
// noise.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dynamic/dynamic_planner.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "runtime/plan_service.h"
#include "util/args.h"
#include "util/clock.h"
#include "util/stats.h"
#include "util/table.h"
#include "workload/workload.h"

namespace {

using namespace wagg;

std::vector<std::size_t> parse_list(const std::string& text) {
  std::vector<std::size_t> values;
  std::string current;
  std::istringstream in(text);
  while (std::getline(in, current, ',')) {
    if (!current.empty()) values.push_back(std::stoull(current));
  }
  return values;
}

std::vector<double> parse_double_list(const std::string& text) {
  std::vector<double> values;
  std::string current;
  std::istringstream in(text);
  while (std::getline(in, current, ',')) {
    if (!current.empty()) values.push_back(std::stod(current));
  }
  return values;
}

/// Outcome counters shared by every epoch callback of one sweep point.
struct PointState {
  std::mutex mutex;
  std::condition_variable done_cv;
  std::size_t remaining = 0;
  std::size_t errors = 0;
  std::string first_error;
  util::Samples latency_ms;  ///< mailbox wait + epoch execution, per epoch

  void complete(const runtime::EpochOutcome& outcome) {
    std::lock_guard<std::mutex> lock(mutex);
    if (outcome.status != runtime::SessionStatus::kOk) {
      ++errors;
      if (first_error.empty()) first_error = outcome.error;
    } else {
      latency_ms.add(outcome.queue_ms + outcome.epoch_ms);
    }
    if (--remaining == 0) done_cv.notify_all();
  }

  void wait() {
    std::unique_lock<std::mutex> lock(mutex);
    done_cv.wait(lock, [this] { return remaining == 0; });
  }
};

struct PointResult {
  std::size_t sessions = 0;
  double target_rate = 0.0;    ///< epochs/sec per session; 0 = unpaced
  double achieved_rate = 0.0;  ///< aggregate epochs/sec over the pool
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  std::size_t errors = 0;
  std::size_t open_failures = 0;
  std::size_t digest_mismatches = 0;
  bool sustained = false;
  std::string first_error;
};

struct PointConfig {
  std::string family = "uniform";
  std::size_t n = 256;
  std::string mode = "oblivious";
  std::size_t epochs = 6;
  double churn_rate = 0.05;
  std::uint64_t seed = 1;
  std::size_t workers = 0;
  std::size_t mailbox = 32;
  double slo_ms = 250.0;
  std::size_t digest_check = 0;
};

PointResult run_point(const PointConfig& cfg, std::size_t sessions,
                      double rate) {
  PointResult result;
  result.sessions = sessions;
  result.target_rate = rate;

  // The serve workload is a grammar expression like any other scenario:
  // sessions= folds the session index into the seed stream, so every
  // session gets its own deterministic instance and trace.
  std::ostringstream spec_text;
  spec_text << "name=serve families=" << cfg.family << " sizes=" << cfg.n
            << " modes=" << cfg.mode << " reps=1 seed=" << cfg.seed
            << " sessions=" << sessions << " epoch_rate=" << rate
            << " churn=epochs:" << cfg.epochs << ",rate:" << cfg.churn_rate;
  const auto spec = workload::WorkloadSpec::parse(spec_text.str());
  const auto requests = spec.expand();

  runtime::ServiceOptions service_options;
  service_options.num_workers = cfg.workers;
  service_options.max_sessions = sessions;
  service_options.session_mailbox_capacity = cfg.mailbox;
  runtime::PlanService service(service_options);

  dynamic::DynamicOptions dyn_options;
  dyn_options.config = requests.front().config;

  // Phase 1: open every session asynchronously — the initial full plans
  // parallelize across the pool.
  std::vector<std::future<runtime::OpenOutcome>> opens;
  opens.reserve(sessions);
  for (const auto& request : requests) {
    opens.push_back(service.open_session_async(request.points, dyn_options));
  }
  std::vector<runtime::PlanService::SessionId> ids;
  ids.reserve(sessions);
  for (auto& open : opens) {
    auto outcome = open.get();
    if (outcome.status == runtime::SessionStatus::kOk) {
      ids.push_back(outcome.id);
    } else {
      ++result.open_failures;
      if (result.first_error.empty()) result.first_error = outcome.error;
    }
  }
  if (ids.size() != sessions) {
    result.errors = result.open_failures;
    return result;
  }

  // Phase 2: paced epoch rounds. Session s's epoch e targets wall time
  // (e + s/S)/rate — arrivals stagger evenly across each round (every real
  // session has its own phase) instead of thundering in per-round bursts
  // whose p99 would just measure the burst drain. kBlock turns a full
  // mailbox into natural backpressure instead of dropped epochs (the wait
  // still lands in the latency SLO).
  PointState state;
  state.remaining = sessions * cfg.epochs;
  const auto start = util::Clock::now();
  for (std::size_t e = 0; e < cfg.epochs; ++e) {
    for (std::size_t s = 0; s < sessions; ++s) {
      if (rate > 0.0) {
        const double phase =
            static_cast<double>(e) +
            static_cast<double>(s) / static_cast<double>(sessions);
        std::this_thread::sleep_until(
            start + std::chrono::duration_cast<util::Clock::duration>(
                        std::chrono::duration<double>(phase / rate)));
      }
      service.submit_epoch(
          ids[s], requests[s].trace[e],
          [&state](runtime::EpochOutcome outcome) {
            state.complete(outcome);
          },
          runtime::OnFull::kBlock);
    }
  }
  state.wait();
  const double wall_ms = util::ms_since(start);

  result.errors = state.errors;
  result.first_error = state.first_error;
  if (!state.latency_ms.empty()) {
    const auto snapshot = obs::HistogramSnapshot::of(state.latency_ms.values());
    result.p50_ms = snapshot.quantile(50.0);
    result.p95_ms = snapshot.quantile(95.0);
    result.p99_ms = snapshot.quantile(99.0);
  }
  if (wall_ms > 0.0) {
    result.achieved_rate = static_cast<double>(sessions * cfg.epochs) *
                           1000.0 / wall_ms;
  }

  // Phase 3: digest equality vs the synchronous path — same instance, same
  // trace, single-thread replay must match the executor's plans bit for bit.
  const std::size_t check = std::min(cfg.digest_check, ids.size());
  for (std::size_t s = 0; s < check; ++s) {
    dynamic::DynamicPlanner serial(requests[s].points, dyn_options);
    for (const auto& mutations : requests[s].trace) {
      (void)serial.apply(mutations);
    }
    if (runtime::snapshot_digest(serial) != service.session_digest(ids[s])) {
      ++result.digest_mismatches;
    }
  }

  for (const auto id : ids) (void)service.close_session(id);

  const double target_aggregate =
      rate > 0.0 ? rate * static_cast<double>(sessions) : 0.0;
  const bool rate_ok =
      target_aggregate == 0.0 || result.achieved_rate >= 0.9 * target_aggregate;
  result.sustained = result.errors == 0 && result.open_failures == 0 &&
                     result.digest_mismatches == 0 && rate_ok &&
                     result.p99_ms <= cfg.slo_ms;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  try {
    const bool smoke = args.has("smoke");

    PointConfig cfg;
    cfg.family = args.get("family", cfg.family);
    cfg.n = static_cast<std::size_t>(args.get_int("n", 256));
    cfg.mode = args.get("mode", cfg.mode);
    cfg.epochs = static_cast<std::size_t>(args.get_int("epochs", 6));
    cfg.churn_rate = args.get_double("rate", cfg.churn_rate);
    cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    cfg.workers = static_cast<std::size_t>(args.get_int("workers", 0));
    cfg.mailbox = static_cast<std::size_t>(args.get_int("mailbox", 32));
    cfg.slo_ms = args.get_double("slo-ms", cfg.slo_ms);
    cfg.digest_check = static_cast<std::size_t>(
        args.get_int("digest-check", smoke ? 8 : 0));

    std::vector<std::size_t> session_counts =
        parse_list(args.get("sessions", smoke ? "1000" : "125,250,500,1000"));
    // The smoke gate paces at 0.5 epochs/sec/session: 1000 sessions then
    // demand ~500 epochs/sec aggregate, inside a single CI core's measured
    // capacity (~900/s at n=256 oblivious) — the gate checks the runtime
    // keeps latency flat under real concurrency, not peak throughput.
    std::vector<double> rates =
        parse_double_list(args.get("rates", smoke ? "0.5" : "2"));

    obs::ExportGuard telemetry("", args.get("metrics-json", ""));

    std::cout << "serve sweep: family=" << cfg.family << " n=" << cfg.n
              << " mode=" << cfg.mode << " epochs=" << cfg.epochs
              << " churn_rate=" << cfg.churn_rate << " slo=p99<"
              << util::format_double(cfg.slo_ms, 0) << "ms"
              << (smoke ? " (smoke)" : "") << "\n\n";

    util::Table table({"sessions", "target eps/s", "achieved eps/s",
                       "p50 ms", "p95 ms", "p99 ms", "errors", "digest",
                       "sustained"});
    bool all_sustained = true;
    std::vector<PointResult> results;
    for (const double rate : rates) {
      for (const auto sessions : session_counts) {
        const auto point = run_point(cfg, sessions, rate);
        results.push_back(point);
        all_sustained = all_sustained && point.sustained;
        table.row()
            .cell(point.sessions)
            .cell(rate * static_cast<double>(sessions), 1)
            .cell(point.achieved_rate, 1)
            .cell(point.p50_ms, 2)
            .cell(point.p95_ms, 2)
            .cell(point.p99_ms, 2)
            .cell(point.errors + point.open_failures)
            .cell(cfg.digest_check == 0
                      ? "-"
                      : (point.digest_mismatches == 0 ? "ok" : "MISMATCH"))
            .cell(point.sustained ? "yes" : "NO");
        if (!point.first_error.empty()) {
          std::cerr << "  [" << point.sessions << " sessions] first error: "
                    << point.first_error << "\n";
        }
      }
    }
    if (args.has("csv")) {
      table.print_csv(std::cout);
    } else {
      table.print(std::cout);
    }

    // The headline: the largest session count that sustained, per rate.
    for (const double rate : rates) {
      std::size_t max_sustained = 0;
      for (const auto& point : results) {
        if (point.target_rate == rate && point.sustained) {
          max_sustained = std::max(max_sustained, point.sessions);
        }
      }
      std::cout << "\nmax sustained sessions @ " << rate
                << " eps/s under p99<" << util::format_double(cfg.slo_ms, 0)
                << "ms: " << max_sustained;
    }
    std::cout << "\n";

    telemetry.close();
    if (smoke) {
      std::cout << (all_sustained ? "serve smoke: PASS"
                                  : "serve smoke: FAIL") << "\n";
      return all_sustained ? 0 : 2;
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "wagg_serve: " << e.what() << "\n";
    return 1;
  }
}
