#ifndef WAGG_RUNTIME_EXECUTOR_H
#define WAGG_RUNTIME_EXECUTOR_H

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace wagg::runtime {

/// Typed outcome of enqueueing work on a SerialQueue. Admission failures are
/// values, not exceptions: a serving layer routes them into backpressure
/// (reject the epoch, count it, tell the caller) instead of unwinding.
enum class SubmitResult {
  kAccepted,   ///< task queued; it will run exactly once
  kQueueFull,  ///< mailbox at capacity (try_submit only)
  kClosed,     ///< queue closed; no new work, queued tasks still run
  kShutdown,   ///< executor shutting down; no new work anywhere
};

[[nodiscard]] std::string to_string(SubmitResult result);

/// A fixed pool of worker threads multiplexing many lightweight serial
/// queues ("actors") over a small set of stripes — the session-parallel
/// spine: thousands of open sessions, each pinned to its own SerialQueue,
/// share the pool without a thread per session and without per-session
/// locks in the work they run.
///
/// Scheduling model:
///   - Each SerialQueue is a bounded FIFO mailbox of tasks. At any instant a
///     queue is drained by AT MOST one worker, and its tasks run in submit
///     order — per-queue ordering is an invariant, so the work itself (e.g.
///     dynamic::DynamicPlanner::apply) needs no synchronization.
///   - A queue with pending tasks is "scheduled": it sits on exactly one
///     stripe's ready list (or is held by the draining worker). Queues are
///     assigned stripes round-robin at creation; every worker has a home
///     stripe and steals from the others when its home is empty, so one hot
///     stripe cannot idle the pool.
///   - Workers run ONE task per acquisition and then requeue the mailbox at
///     the back of its stripe if more tasks remain — round-robin fairness
///     across queues, so a deep mailbox cannot starve its stripe.
///
/// Lifecycle: close() stops new submits on one queue (queued tasks still
/// run — graceful drain); wait_drained() blocks until the queue is empty and
/// idle. shutdown() (also run by the destructor) rejects all new work,
/// drains every queued task, and joins the workers.
///
/// Tasks must not block on work scheduled behind them (a task that calls
/// submit_blocking on a full mailbox drained only by this pool can
/// deadlock); non-blocking try_submit from inside tasks is fine.
///
/// Locking invariants are annotated for Clang's thread-safety analysis (see
/// util/thread_annotations.h); the CI static-analysis job compiles them as
/// errors. The lock-free pieces — ready_count_, pending_tasks_, the
/// shutdown flags — are plain atomics with their protocols documented at
/// the declaration.
class Executor {
 public:
  using Task = std::function<void()>;

  struct Options {
    /// Worker threads; 0 means std::thread::hardware_concurrency().
    std::size_t num_workers = 0;
    /// Ready-list stripes; 0 means one per worker.
    std::size_t num_stripes = 0;
    /// Mailbox capacity used by make_queue(0).
    std::size_t default_queue_capacity = 32;
  };

  /// One actor mailbox. Created by Executor::make_queue; all methods are
  /// thread-safe.
  class SerialQueue : public std::enable_shared_from_this<SerialQueue> {
   public:
    /// Enqueues without blocking; kQueueFull when at capacity.
    [[nodiscard]] SubmitResult try_submit(Task task) WAGG_EXCLUDES(mutex_);
    /// Blocks while the mailbox is full; wakes on space, close, or
    /// executor shutdown (returning the corresponding non-kAccepted value).
    [[nodiscard]] SubmitResult submit_blocking(Task task)
        WAGG_EXCLUDES(mutex_);

    /// Stops new submits. Idempotent; queued tasks still run.
    void close() WAGG_EXCLUDES(mutex_);
    [[nodiscard]] bool closed() const WAGG_EXCLUDES(mutex_);

    /// Blocks until the queue is empty AND no task of it is running.
    void wait_drained() WAGG_EXCLUDES(mutex_);

    /// Queued (not yet started) tasks.
    [[nodiscard]] std::size_t depth() const WAGG_EXCLUDES(mutex_);
    [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
    /// The stripe this queue is pinned to (stable for its lifetime).
    [[nodiscard]] std::size_t stripe() const noexcept { return stripe_; }

   private:
    friend class Executor;
    SerialQueue(Executor* executor, std::size_t stripe, std::size_t capacity)
        : executor_(executor), stripe_(stripe), capacity_(capacity) {}

    Executor* executor_;
    const std::size_t stripe_;
    const std::size_t capacity_;

    mutable util::Mutex mutex_;
    util::CondVar space_cv_;  ///< blocked submitters
    util::CondVar idle_cv_;   ///< wait_drained waiters
    std::deque<Task> tasks_ WAGG_GUARDED_BY(mutex_);
    /// True while the queue is on a ready list or held by a worker; the
    /// single-drainer invariant.
    bool scheduled_ WAGG_GUARDED_BY(mutex_) = false;
    bool closed_ WAGG_GUARDED_BY(mutex_) = false;
  };

  // Two constructors instead of one defaulted argument: `Options{}` cannot
  // be evaluated inside the enclosing class (nested-aggregate default
  // member initializers are only available once Executor is complete).
  Executor();
  explicit Executor(Options options);
  ~Executor();  ///< runs shutdown()

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Creates a mailbox pinned to the next stripe (round-robin).
  /// capacity 0 uses Options::default_queue_capacity.
  [[nodiscard]] std::shared_ptr<SerialQueue> make_queue(
      std::size_t capacity = 0) WAGG_EXCLUDES(queues_mutex_);

  [[nodiscard]] std::size_t num_workers() const noexcept {
    return workers_.size();
  }
  [[nodiscard]] std::size_t num_stripes() const noexcept {
    return stripes_.size();
  }
  /// Tasks accepted but not yet finished (queued + running).
  [[nodiscard]] std::size_t pending_tasks() const noexcept {
    return pending_tasks_.load(std::memory_order_relaxed);
  }

  /// Graceful: rejects new work, drains every queued task, joins workers.
  /// Idempotent; called by the destructor.
  void shutdown() WAGG_EXCLUDES(queues_mutex_, sleep_mutex_);

 private:
  struct Stripe {
    util::Mutex mutex;
    std::deque<std::shared_ptr<SerialQueue>> ready WAGG_GUARDED_BY(mutex);
  };

  void worker_loop(std::size_t worker_index);
  /// Pops a ready queue, scanning stripes from `home`; nullptr if all empty.
  [[nodiscard]] std::shared_ptr<SerialQueue> acquire(std::size_t home);
  /// Puts a queue (whose scheduled_ flag is already set) on its stripe's
  /// ready list and wakes a worker.
  void enqueue_ready(std::shared_ptr<SerialQueue> queue)
      WAGG_EXCLUDES(sleep_mutex_);
  /// Runs one task of `queue`, then requeues or parks it.
  void drain_one(const std::shared_ptr<SerialQueue>& queue);
  void finish_task() WAGG_EXCLUDES(sleep_mutex_);

  Options options_;
  std::vector<std::unique_ptr<Stripe>> stripes_;
  std::atomic<std::size_t> next_stripe_{0};

  /// Every queue ever made (weak): shutdown() walks it to wake blocked
  /// submitters so they observe the shutdown. Compacted opportunistically.
  util::Mutex queues_mutex_;
  std::vector<std::weak_ptr<SerialQueue>> queues_
      WAGG_GUARDED_BY(queues_mutex_);

  /// Queues with pending work across all stripes; workers sleep on
  /// work_cv_ when it reaches zero. Producers increment BEFORE touching
  /// sleep_mutex_, workers re-check under it — the no-missed-wakeup pact.
  std::atomic<std::size_t> ready_count_{0};
  std::atomic<std::size_t> pending_tasks_{0};
  std::atomic<bool> shutting_down_{false};  ///< submits rejected
  std::atomic<bool> stop_workers_{false};   ///< workers exit when idle

  util::Mutex sleep_mutex_;
  util::CondVar work_cv_;
  util::CondVar drained_cv_;  ///< shutdown waits for pending == 0

  std::vector<std::thread> workers_;
};

}  // namespace wagg::runtime

#endif  // WAGG_RUNTIME_EXECUTOR_H
