#ifndef WAGG_RUNTIME_PLAN_SERVICE_H
#define WAGG_RUNTIME_PLAN_SERVICE_H

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/planner.h"
#include "dynamic/dynamic_planner.h"
#include "dynamic/mutation.h"
#include "geom/point.h"
#include "util/clock.h"

namespace wagg::runtime {

/// One unit of work for the PlanService: a pointset plus the full planner
/// configuration. `seed` and `tags` are provenance only — the service never
/// interprets them, it just copies them onto the outcome so batch consumers
/// can group and join results (the workload engine fills them in).
///
/// When `trace` is non-empty the request is a churn session: the pointset is
/// planned once, then each trace entry is applied as one incremental epoch
/// (dynamic::DynamicPlanner), and the outcome summarizes the whole session.
/// Session outcomes never carry a PlanResult — ServiceOptions::keep_plans
/// does not apply to them (open a PlanService session instead to inspect a
/// live planner's Snapshot).
struct PlanRequest {
  geom::Pointset points;
  core::PlannerConfig config;
  dynamic::ChurnTrace trace;
  /// Audit every session epoch against a from-scratch replan (churn
  /// requests only; expensive).
  bool audit = false;
  std::uint64_t seed = 0;
  std::string tags;
};

/// The result of one request. Failures (malformed input, planner invariant
/// violations) are captured here instead of thrown, so one bad request never
/// poisons the rest of the batch.
struct PlanOutcome {
  std::size_t request_index = 0;
  bool ok = false;
  std::string error;  ///< non-empty iff !ok

  // Plan summary (meaningful only when ok).
  std::size_t num_points = 0;
  std::size_t num_links = 0;
  std::size_t slots = 0;
  std::size_t colors_before_repair = 0;
  std::size_t slots_split = 0;
  double rate = 0.0;
  bool verified = false;
  /// Order-sensitive hash of the tree parents and schedule slots; two
  /// outcomes with equal digests ran the identical plan. Used to assert
  /// bit-identical results across worker counts.
  std::uint64_t digest = 0;

  // Churn-session summary (non-zero only for requests with a trace).
  std::size_t epochs = 0;        ///< epochs planned, incl. the initial plan
  std::size_t epochs_valid = 0;  ///< epochs whose plan was valid
  std::size_t full_replans = 0;  ///< mutation epochs that hit the fallback
  /// Conflict-layer split across the session: persistent-index upkeep vs
  /// dirty-row queries (their sum is timings.conflict_ms for sessions).
  double conflict_maintain_ms = 0.0;
  double conflict_query_ms = 0.0;
  /// Tree-layer split across the session: IncrementalMst dynamic-tree
  /// updates vs orientation-diff replay + snapshot builds (their sum is
  /// timings.tree_ms for sessions).
  double mst_update_ms = 0.0;
  double orient_ms = 0.0;

  core::StageTimings timings;
  double total_ms = 0.0;  ///< wall clock for the whole request
  /// Enqueue-to-start latency: how long the request waited in the service
  /// queue before a worker picked it up (0 for direct execute_request).
  double queue_ms = 0.0;

  // Provenance copied from the request.
  std::uint64_t seed = 0;
  std::string tags;

  /// Full plan, retained only when ServiceOptions::keep_plans is set.
  std::shared_ptr<const core::PlanResult> plan;
};

struct ServiceOptions {
  /// Worker threads in the pool; 0 means std::thread::hardware_concurrency().
  std::size_t num_workers = 0;
  /// Retain the full PlanResult on each outcome (memory-heavy for big
  /// batches; summaries and digests are always available).
  bool keep_plans = false;
};

/// Latency summary for one pipeline stage across a batch (milliseconds).
struct StageSummary {
  double p50 = 0.0;
  double p95 = 0.0;
  double mean = 0.0;
  double max = 0.0;
};

/// Aggregate statistics for one batch run.
struct BatchStats {
  std::size_t total = 0;
  std::size_t succeeded = 0;
  std::size_t failed = 0;
  double wall_ms = 0.0;        ///< batch wall clock, queue to last completion
  double plans_per_sec = 0.0;  ///< succeeded + failed, over wall_ms
  /// Session throughput: mutation epochs advanced across the batch's churn
  /// sessions (initial full plans excluded) and their rate over the batch
  /// wall clock — the serving-shaped headline the perf observatory tracks.
  /// Zero when the batch had no churn sessions.
  std::size_t session_epochs = 0;
  double session_epochs_per_sec = 0.0;
  StageSummary tree;
  /// Session requests only: the tree stage split into dynamic-tree MST
  /// updates vs orientation-diff replay (empty when the batch had no churn
  /// sessions).
  StageSummary mst_update;
  StageSummary orient;
  StageSummary conflict;
  /// Session requests only: the conflict stage split into persistent-index
  /// maintenance vs row queries (empty when the batch had no churn
  /// sessions).
  StageSummary conflict_maintain;
  StageSummary conflict_query;
  StageSummary coloring;
  StageSummary repair;
  StageSummary verify;
  StageSummary power;
  StageSummary queue;          ///< enqueue-to-start wait per request
  StageSummary total_latency;  ///< per-request end-to-end
};

struct BatchResult {
  /// outcomes[i] answers requests[i] (index-aligned, all slots filled).
  std::vector<PlanOutcome> outcomes;
  BatchStats stats;
};

/// Executes one request synchronously on the calling thread. This is the
/// exact function each worker runs, exposed so serial baselines and tests
/// compare against the same code path.
[[nodiscard]] PlanOutcome execute_request(const PlanRequest& request,
                                          std::size_t request_index,
                                          bool keep_plan = false);

/// A fixed-size pool of worker threads executing batches of plan requests.
/// Workers are started once in the constructor and joined in the destructor;
/// run() may be called any number of times. Requests are independent, so a
/// batch's outcomes are identical for every worker count — only the wall
/// clock changes.
///
/// Thread-compatible, not thread-safe: call run() from one thread at a time.
class PlanService {
 public:
  explicit PlanService(ServiceOptions options = {});
  ~PlanService();

  PlanService(const PlanService&) = delete;
  PlanService& operator=(const PlanService&) = delete;

  [[nodiscard]] std::size_t num_workers() const noexcept {
    return workers_.size();
  }

  /// Executes the whole batch, blocking until every request has an outcome.
  [[nodiscard]] BatchResult run(const std::vector<PlanRequest>& requests);

  // ---- session mode ----
  //
  // A session wraps a dynamic::DynamicPlanner whose per-instance state
  // (incremental MST, slot assignment, validity chain) is retained by the
  // service and reused across any number of advance calls — the serving
  // analogue of a deployment that keeps mutating. Sessions are independent:
  // distinct sessions may be advanced from different threads concurrently,
  // but calls for ONE session must be serialized by the caller (mutation
  // epochs are inherently ordered).

  using SessionId = std::uint64_t;

  /// Opens a session and plans its initial epoch on the calling thread.
  /// Throws std::invalid_argument for malformed inputs (mirrors
  /// DynamicPlanner's constructor).
  [[nodiscard]] SessionId open_session(const geom::Pointset& initial,
                                       const dynamic::DynamicOptions& options);

  /// Applies one epoch of mutations to the session.
  dynamic::EpochReport advance_session(
      SessionId id, std::span<const dynamic::Mutation> mutations);

  /// Read access to a session's planner (last report, snapshot, ...). The
  /// returned shared_ptr keeps the planner alive even if the session is
  /// closed concurrently.
  [[nodiscard]] std::shared_ptr<const dynamic::DynamicPlanner> session(
      SessionId id) const;

  void close_session(SessionId id);
  [[nodiscard]] std::size_t num_sessions() const;

 private:
  void worker_loop();
  [[nodiscard]] std::shared_ptr<dynamic::DynamicPlanner> find_session(
      SessionId id) const;

  ServiceOptions options_;

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable batch_done_;
  const std::vector<PlanRequest>* batch_ = nullptr;  ///< current batch, if any
  std::vector<PlanOutcome>* outcomes_ = nullptr;
  util::Clock::time_point batch_start_{};  ///< enqueue time of current batch
  std::size_t next_index_ = 0;   ///< next request to claim
  std::size_t remaining_ = 0;    ///< requests not yet completed
  bool shutting_down_ = false;

  std::vector<std::thread> workers_;

  mutable std::mutex sessions_mutex_;
  SessionId next_session_id_ = 1;
  std::map<SessionId, std::shared_ptr<dynamic::DynamicPlanner>> sessions_;
};

/// Computes the batch statistics for a set of outcomes (exposed for tests
/// and for callers that execute requests without a service).
[[nodiscard]] BatchStats summarize(const std::vector<PlanOutcome>& outcomes,
                                   double wall_ms);

}  // namespace wagg::runtime

#endif  // WAGG_RUNTIME_PLAN_SERVICE_H
