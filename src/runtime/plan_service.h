#ifndef WAGG_RUNTIME_PLAN_SERVICE_H
#define WAGG_RUNTIME_PLAN_SERVICE_H

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/planner.h"
#include "dynamic/dynamic_planner.h"
#include "dynamic/mutation.h"
#include "geom/point.h"
#include "obs/metrics.h"
#include "runtime/executor.h"
#include "util/clock.h"
#include "util/mutex.h"
#include "util/stats.h"
#include "util/thread_annotations.h"

namespace wagg::runtime {

/// One unit of work for the PlanService: a pointset plus the full planner
/// configuration. `seed` and `tags` are provenance only — the service never
/// interprets them, it just copies them onto the outcome so batch consumers
/// can group and join results (the workload engine fills them in).
///
/// When `trace` is non-empty the request is a churn session: the pointset is
/// planned once, then each trace entry is applied as one incremental epoch
/// (dynamic::DynamicPlanner), and the outcome summarizes the whole session.
/// Session outcomes never carry a PlanResult — ServiceOptions::keep_plans
/// does not apply to them (open a PlanService session instead to inspect a
/// live planner's Snapshot).
struct PlanRequest {
  geom::Pointset points;
  core::PlannerConfig config;
  dynamic::ChurnTrace trace;
  /// Audit every session epoch against a from-scratch replan (churn
  /// requests only; expensive).
  bool audit = false;
  std::uint64_t seed = 0;
  std::string tags;
};

/// The result of one request. Failures (malformed input, planner invariant
/// violations) are captured here instead of thrown, so one bad request never
/// poisons the rest of the batch.
struct PlanOutcome {
  std::size_t request_index = 0;
  bool ok = false;
  std::string error;  ///< non-empty iff !ok

  // Plan summary (meaningful only when ok).
  std::size_t num_points = 0;
  std::size_t num_links = 0;
  std::size_t slots = 0;
  std::size_t colors_before_repair = 0;
  std::size_t slots_split = 0;
  double rate = 0.0;
  bool verified = false;
  /// Order-sensitive hash of the tree parents and schedule slots; two
  /// outcomes with equal digests ran the identical plan. Used to assert
  /// bit-identical results across worker counts.
  std::uint64_t digest = 0;

  // Churn-session summary (non-zero only for requests with a trace).
  std::size_t epochs = 0;        ///< epochs planned, incl. the initial plan
  std::size_t epochs_valid = 0;  ///< epochs whose plan was valid
  std::size_t full_replans = 0;  ///< mutation epochs that hit the fallback
  /// Conflict-layer split across the session: persistent-index upkeep vs
  /// dirty-row queries (their sum is timings.conflict_ms for sessions).
  double conflict_maintain_ms = 0.0;
  double conflict_query_ms = 0.0;
  /// Tree-layer split across the session: IncrementalMst dynamic-tree
  /// updates vs orientation-diff replay + snapshot builds (their sum is
  /// timings.tree_ms for sessions).
  double mst_update_ms = 0.0;
  double orient_ms = 0.0;

  core::StageTimings timings;
  double total_ms = 0.0;  ///< wall clock for the whole request
  /// Enqueue-to-start latency: how long the request waited in the service
  /// queue before a worker picked it up (0 for direct execute_request).
  double queue_ms = 0.0;

  // Provenance copied from the request.
  std::uint64_t seed = 0;
  std::string tags;

  /// Full plan, retained only when ServiceOptions::keep_plans is set.
  std::shared_ptr<const core::PlanResult> plan;
};

struct ServiceOptions {
  /// Worker threads in the pool; 0 means std::thread::hardware_concurrency().
  std::size_t num_workers = 0;
  /// Executor ready-list stripes; 0 means one per worker.
  std::size_t num_stripes = 0;
  /// Retain the full PlanResult on each outcome (memory-heavy for big
  /// batches; summaries and digests are always available).
  bool keep_plans = false;

  // ---- session serving knobs ----
  /// Admission control: open_session beyond this fails with kSessionLimit.
  std::size_t max_sessions = 4096;
  /// Bounded per-session mailbox: epochs queued but not yet started. A full
  /// mailbox rejects (or blocks, per submit mode) — the backpressure seam.
  std::size_t session_mailbox_capacity = 32;
};

/// Latency summary for one pipeline stage across a batch (milliseconds).
struct StageSummary {
  double p50 = 0.0;
  double p95 = 0.0;
  double mean = 0.0;
  double max = 0.0;
};

/// Aggregate statistics for one batch run.
struct BatchStats {
  std::size_t total = 0;
  std::size_t succeeded = 0;
  std::size_t failed = 0;
  double wall_ms = 0.0;        ///< batch wall clock, queue to last completion
  double plans_per_sec = 0.0;  ///< succeeded + failed, over wall_ms
  /// Session throughput: mutation epochs advanced across the batch's churn
  /// sessions (initial full plans excluded) and their rate over the batch
  /// wall clock — the serving-shaped headline the perf observatory tracks.
  /// Zero when the batch had no churn sessions.
  std::size_t session_epochs = 0;
  double session_epochs_per_sec = 0.0;
  StageSummary tree;
  /// Session requests only: the tree stage split into dynamic-tree MST
  /// updates vs orientation-diff replay (empty when the batch had no churn
  /// sessions).
  StageSummary mst_update;
  StageSummary orient;
  StageSummary conflict;
  /// Session requests only: the conflict stage split into persistent-index
  /// maintenance vs row queries (empty when the batch had no churn
  /// sessions).
  StageSummary conflict_maintain;
  StageSummary conflict_query;
  StageSummary coloring;
  StageSummary repair;
  StageSummary verify;
  StageSummary power;
  StageSummary queue;          ///< enqueue-to-start wait per request
  StageSummary total_latency;  ///< per-request end-to-end
};

struct BatchResult {
  /// outcomes[i] answers requests[i] (index-aligned, all slots filled).
  std::vector<PlanOutcome> outcomes;
  BatchStats stats;
};

/// Executes one request synchronously on the calling thread. This is the
/// exact function each worker runs, exposed so serial baselines and tests
/// compare against the same code path.
[[nodiscard]] PlanOutcome execute_request(const PlanRequest& request,
                                          std::size_t request_index,
                                          bool keep_plan = false);

// --------------------------------------------------------------- sessions

/// Typed result of a session operation. Lifecycle misuse (stale ids,
/// closed sessions, full mailboxes) is data, not UB and not an exception —
/// the serving layer turns these into backpressure and client errors.
enum class SessionStatus {
  kOk = 0,
  /// The id was never issued by this service (or is from a future slot).
  kUnknownSession,
  /// The id was valid once; the session has been closed (or its slot was
  /// reused by a later open — the generation tag tells the difference
  /// between this and kUnknownSession).
  kClosedSession,
  /// The session's bounded mailbox is at capacity (reject mode only).
  kMailboxFull,
  /// The service is shutting down.
  kShutdown,
  /// open_session refused: ServiceOptions::max_sessions reached.
  kSessionLimit,
  /// The planner itself rejected the work (bad mutations, failed open);
  /// `error` carries the message.
  kPlannerError,
};

[[nodiscard]] std::string to_string(SessionStatus status);

/// What one submitted epoch produced. On admission failure (kMailboxFull,
/// kClosedSession, ...) the outcome resolves immediately with the status and
/// a default report.
struct EpochOutcome {
  SessionStatus status = SessionStatus::kOk;
  /// True when the planner threw std::invalid_argument (caller error) as
  /// opposed to an internal failure — advance_session rethrows faithfully.
  bool invalid_argument = false;
  std::string error;  ///< non-empty iff status != kOk
  dynamic::EpochReport report;
  double queue_ms = 0.0;  ///< mailbox wait, enqueue to start
  double epoch_ms = 0.0;  ///< planner execution wall clock
};

/// Result of an asynchronous session open.
struct OpenOutcome {
  SessionStatus status = SessionStatus::kOk;
  std::uint64_t id = 0;  ///< valid iff status == kOk
  std::string error;
};

/// Per-session serving statistics, maintained by the session's serial queue
/// (same HistogramSnapshot quantile currency as every other summary).
struct SessionStats {
  std::size_t epochs = 0;           ///< epochs applied via submit/advance
  std::size_t mailbox_rejects = 0;  ///< kMailboxFull submits
  std::size_t queue_depth = 0;      ///< epochs enqueued, not yet started
  StageSummary latency;             ///< per-epoch execution ms
  double p99_ms = 0.0;              ///< p99 of the same distribution
  StageSummary wait;                ///< mailbox wait ms
  double wait_p99_ms = 0.0;
};

/// What a full mailbox does to a submit.
enum class OnFull {
  kReject,  ///< resolve immediately with kMailboxFull
  kBlock,   ///< wait for space (close/shutdown still resolve typed)
};

/// Order-sensitive digest of a dynamic planner's current plan (compact ids,
/// sink, schedule slots). Two planners that applied the same epochs in the
/// same order digest identically — the cross-path equality currency between
/// the synchronous and asynchronous session APIs.
[[nodiscard]] std::uint64_t snapshot_digest(
    const dynamic::DynamicPlanner& planner);

/// A fixed-size pool of worker threads executing plan batches and serving
/// long-lived dynamic sessions, both multiplexed over the same striped
/// executor (runtime::Executor).
///
/// Batches: run() executes every request on the pool and blocks until all
/// outcomes are filled. Requests are independent, so a batch's outcomes are
/// identical for every worker count — only the wall clock changes.
///
/// Sessions: each open session owns a dynamic::DynamicPlanner pinned to a
/// serial executor queue. Epochs submitted to one session run in submit
/// order on at most one worker at a time — per-session ordering is an
/// executor invariant, so the planner itself needs no locks — while
/// thousands of sessions advance concurrently across the pool. Admission
/// control (max_sessions, bounded mailboxes) and typed statuses make
/// overload a backpressure signal instead of a pile-up.
///
/// Thread-safety: all session methods and run() may be called from any
/// thread concurrently. (run() from several threads interleaves batches on
/// the shared pool.)
class PlanService {
 public:
  explicit PlanService(ServiceOptions options = {});
  ~PlanService();

  PlanService(const PlanService&) = delete;
  PlanService& operator=(const PlanService&) = delete;

  [[nodiscard]] std::size_t num_workers() const noexcept {
    return executor_.num_workers();
  }

  /// Executes the whole batch, blocking until every request has an outcome.
  [[nodiscard]] BatchResult run(const std::vector<PlanRequest>& requests);

  // ---- session serving ----

  /// Opaque session handle: slot index in the low 32 bits, a generation tag
  /// in the high 32. The generation makes slot reuse detectable: an id
  /// whose generation is behind the slot's current one resolves to
  /// kClosedSession, never to a stranger's session.
  using SessionId = std::uint64_t;

  /// Opens a session and plans its initial epoch on the calling thread.
  /// Throws std::invalid_argument for malformed inputs (mirrors
  /// DynamicPlanner's constructor) and std::runtime_error when the session
  /// limit is reached (use open_session_async for a typed outcome).
  [[nodiscard]] SessionId open_session(const geom::Pointset& initial,
                                       const dynamic::DynamicOptions& options);

  /// Opens a session asynchronously: the slot is allocated (admission
  /// checked) immediately, the initial full plan runs on the pool as the
  /// session's first queue task. Epochs submitted before the open resolves
  /// queue behind it in order. A failed construction closes the session and
  /// resolves kPlannerError.
  [[nodiscard]] std::future<OpenOutcome> open_session_async(
      geom::Pointset initial, const dynamic::DynamicOptions& options);

  /// Enqueues one epoch of mutations on the session's serial queue.
  /// The returned future resolves when the epoch has been applied (or
  /// immediately, with a typed status, when admission fails). Never throws
  /// for lifecycle misuse.
  [[nodiscard]] std::future<EpochOutcome> submit_epoch(
      SessionId id, std::vector<dynamic::Mutation> mutations,
      OnFull on_full = OnFull::kReject);

  /// Callback form: `done` runs on the worker that applied the epoch (or
  /// inline on admission failure). Callbacks must not block; try_submit
  /// from inside them is fine, blocking submits are not.
  void submit_epoch(SessionId id, std::vector<dynamic::Mutation> mutations,
                    std::function<void(EpochOutcome)> done,
                    OnFull on_full = OnFull::kReject);

  /// Enqueues a whole batch of epochs as ONE mailbox entry (amortizes queue
  /// overhead for trace replay). The future resolves after the LAST epoch,
  /// carrying its report; timings sum over the batch.
  [[nodiscard]] std::future<EpochOutcome> submit_epochs(
      SessionId id, dynamic::ChurnTrace epochs,
      OnFull on_full = OnFull::kReject);

  /// Synchronous wrapper over submit_epoch(kBlock): blocks until the epoch
  /// ran, preserving the historic contract — std::invalid_argument for
  /// unknown/closed sessions and for planner-rejected mutations.
  dynamic::EpochReport advance_session(
      SessionId id, std::span<const dynamic::Mutation> mutations);

  /// Read access to a session's planner (last report, snapshot, ...). The
  /// returned shared_ptr keeps the planner alive even if the session is
  /// closed concurrently. Throws std::invalid_argument for unknown/closed
  /// ids. Safe to READ only while no epochs are in flight for the session
  /// (drain first: wait on your futures).
  [[nodiscard]] std::shared_ptr<const dynamic::DynamicPlanner> session(
      SessionId id) const;

  /// snapshot_digest of the session's current plan (same caveat as
  /// session(): meaningful when no epochs are in flight).
  [[nodiscard]] std::uint64_t session_digest(SessionId id) const;

  /// Per-session serving stats; throws like session().
  [[nodiscard]] SessionStats session_stats(SessionId id) const;

  /// Graceful close: stops new submits (they resolve kClosedSession),
  /// drains already-queued epochs, then frees the slot. Returns the typed
  /// status instead of throwing (closing twice reports kClosedSession).
  SessionStatus close_session(SessionId id);

  [[nodiscard]] std::size_t num_sessions() const;

 private:
  struct Session {
    // queue/slot/generation are set once by allocate_session BEFORE the
    // session is published (no other thread can hold the pointer yet) and
    // immutable afterwards — reads need no lock, so they are deliberately
    // not GUARDED_BY.
    std::shared_ptr<Executor::SerialQueue> queue;
    std::uint32_t slot = 0;
    std::uint32_t generation = 0;

    /// Guards planner (set once by the open task under async open) and the
    /// serving stats below. Uncontended: writers are the session's serial
    /// tasks plus the submit path's reject counter.
    mutable util::Mutex mutex;
    std::shared_ptr<dynamic::DynamicPlanner> planner WAGG_GUARDED_BY(mutex);
    bool open_failed WAGG_GUARDED_BY(mutex) = false;
    std::string open_error WAGG_GUARDED_BY(mutex);
    util::Samples epoch_ms WAGG_GUARDED_BY(mutex);
    util::Samples wait_ms WAGG_GUARDED_BY(mutex);
    std::size_t epochs WAGG_GUARDED_BY(mutex) = 0;
    std::size_t rejects WAGG_GUARDED_BY(mutex) = 0;
  };

  struct Slot {
    std::uint32_t generation = 0;  ///< of the LATEST open on this slot
    std::shared_ptr<Session> session;
  };

  struct Resolved {
    SessionStatus status = SessionStatus::kOk;
    std::shared_ptr<Session> session;
  };

  [[nodiscard]] Resolved resolve(SessionId id) const
      WAGG_EXCLUDES(sessions_mutex_);
  /// Allocates a slot (admission-checked) with a fresh generation.
  [[nodiscard]] Resolved allocate_session() WAGG_EXCLUDES(sessions_mutex_);
  /// Frees a slot if `session` still owns it (idempotent across racers).
  void release_session(const std::shared_ptr<Session>& session)
      WAGG_EXCLUDES(sessions_mutex_);
  /// The one submit path: builds the epoch task (single- or multi-epoch),
  /// enqueues it, resolves admission failures inline.
  void submit_epoch_task(SessionId id, dynamic::ChurnTrace epochs,
                         std::function<void(EpochOutcome)> done,
                         OnFull on_full);
  /// Runs inside the session's serial queue: applies the epochs, fills the
  /// outcome, updates per-session and registry stats.
  void run_epoch_task(const std::shared_ptr<Session>& session,
                      const dynamic::ChurnTrace& epochs,
                      util::Clock::time_point enqueue_time,
                      const std::function<void(EpochOutcome)>& done);

  ServiceOptions options_;
  Executor executor_;

  /// Guards the session table: the slot array, its free list, and the open
  /// count. Session-level state lives behind each Session's own mutex; the
  /// two are never held at the same time (every path releases the table
  /// lock before touching a session), so no lock-order edge exists.
  mutable util::Mutex sessions_mutex_;
  std::vector<Slot> slots_ WAGG_GUARDED_BY(sessions_mutex_);
  std::vector<std::uint32_t> free_slots_ WAGG_GUARDED_BY(sessions_mutex_);
  std::size_t open_sessions_ WAGG_GUARDED_BY(sessions_mutex_) = 0;
};

/// Computes the batch statistics for a set of outcomes (exposed for tests
/// and for callers that execute requests without a service).
[[nodiscard]] BatchStats summarize(const std::vector<PlanOutcome>& outcomes,
                                   double wall_ms);

}  // namespace wagg::runtime

#endif  // WAGG_RUNTIME_PLAN_SERVICE_H
