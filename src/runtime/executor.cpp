#include "runtime/executor.h"

namespace wagg::runtime {

std::string to_string(SubmitResult result) {
  switch (result) {
    case SubmitResult::kAccepted:
      return "accepted";
    case SubmitResult::kQueueFull:
      return "queue_full";
    case SubmitResult::kClosed:
      return "closed";
    case SubmitResult::kShutdown:
      return "shutdown";
  }
  return "unknown";
}

// ---------------------------------------------------------------- SerialQueue

SubmitResult Executor::SerialQueue::try_submit(Task task) {
  bool schedule = false;
  {
    util::MutexLock lock(mutex_);
    if (executor_->shutting_down_.load(std::memory_order_acquire)) {
      return SubmitResult::kShutdown;
    }
    if (closed_) return SubmitResult::kClosed;
    if (tasks_.size() >= capacity_) return SubmitResult::kQueueFull;
    tasks_.push_back(std::move(task));
    executor_->pending_tasks_.fetch_add(1, std::memory_order_acq_rel);
    if (!scheduled_) {
      scheduled_ = true;
      schedule = true;
    }
  }
  if (schedule) executor_->enqueue_ready(shared_from_this());
  return SubmitResult::kAccepted;
}

SubmitResult Executor::SerialQueue::submit_blocking(Task task) {
  bool schedule = false;
  {
    util::MutexLock lock(mutex_);
    while (!closed_ && tasks_.size() >= capacity_ &&
           !executor_->shutting_down_.load(std::memory_order_acquire)) {
      space_cv_.wait(mutex_);
    }
    if (executor_->shutting_down_.load(std::memory_order_acquire)) {
      return SubmitResult::kShutdown;
    }
    if (closed_) return SubmitResult::kClosed;
    tasks_.push_back(std::move(task));
    executor_->pending_tasks_.fetch_add(1, std::memory_order_acq_rel);
    if (!scheduled_) {
      scheduled_ = true;
      schedule = true;
    }
  }
  if (schedule) executor_->enqueue_ready(shared_from_this());
  return SubmitResult::kAccepted;
}

void Executor::SerialQueue::close() {
  {
    util::MutexLock lock(mutex_);
    closed_ = true;
  }
  // Blocked submitters must observe the close and give up.
  space_cv_.notify_all();
}

bool Executor::SerialQueue::closed() const {
  util::MutexLock lock(mutex_);
  return closed_;
}

void Executor::SerialQueue::wait_drained() {
  util::MutexLock lock(mutex_);
  while (!tasks_.empty() || scheduled_) idle_cv_.wait(mutex_);
}

std::size_t Executor::SerialQueue::depth() const {
  util::MutexLock lock(mutex_);
  return tasks_.size();
}

// ------------------------------------------------------------------ Executor

Executor::Executor() : Executor(Options{}) {}

Executor::Executor(Options options) : options_(options) {
  std::size_t workers = options_.num_workers;
  if (workers == 0) {
    workers = std::thread::hardware_concurrency();
    if (workers == 0) workers = 1;
  }
  std::size_t stripes = options_.num_stripes;
  if (stripes == 0) stripes = workers;
  if (options_.default_queue_capacity == 0) {
    options_.default_queue_capacity = 1;
  }
  stripes_.reserve(stripes);
  for (std::size_t i = 0; i < stripes; ++i) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

Executor::~Executor() { shutdown(); }

std::shared_ptr<Executor::SerialQueue> Executor::make_queue(
    std::size_t capacity) {
  if (capacity == 0) capacity = options_.default_queue_capacity;
  const std::size_t stripe =
      next_stripe_.fetch_add(1, std::memory_order_relaxed) % stripes_.size();
  // Private constructor: make_shared can't reach it, and the queue count is
  // tiny next to the work it carries.
  auto queue =  // wagg-lint: allow(naked-new) private ctor, owned immediately
      std::shared_ptr<SerialQueue>(new SerialQueue(this, stripe, capacity));
  {
    util::MutexLock lock(queues_mutex_);
    if (queues_.size() >= 64 && queues_.size() == queues_.capacity()) {
      std::erase_if(queues_, [](const std::weak_ptr<SerialQueue>& weak) {
        return weak.expired();
      });
    }
    queues_.push_back(queue);
  }
  return queue;
}

void Executor::enqueue_ready(std::shared_ptr<SerialQueue> queue) {
  {
    util::MutexLock lock(stripes_[queue->stripe()]->mutex);
    stripes_[queue->stripe()]->ready.push_back(std::move(queue));
  }
  ready_count_.fetch_add(1, std::memory_order_release);
  // Empty critical section: a worker that checked ready_count_ under
  // sleep_mutex_ before our increment is guaranteed to be inside wait() by
  // the time we acquire, so the notify below cannot be lost.
  { util::MutexLock lock(sleep_mutex_); }
  work_cv_.notify_one();
}

std::shared_ptr<Executor::SerialQueue> Executor::acquire(std::size_t home) {
  const std::size_t count = stripes_.size();
  for (std::size_t i = 0; i < count; ++i) {
    Stripe& stripe = *stripes_[(home + i) % count];
    util::MutexLock lock(stripe.mutex);
    if (!stripe.ready.empty()) {
      auto queue = std::move(stripe.ready.front());
      stripe.ready.pop_front();
      ready_count_.fetch_sub(1, std::memory_order_acq_rel);
      return queue;
    }
  }
  return nullptr;
}

void Executor::finish_task() {
  if (pending_tasks_.fetch_sub(1, std::memory_order_acq_rel) == 1 &&
      shutting_down_.load(std::memory_order_acquire)) {
    { util::MutexLock lock(sleep_mutex_); }
    drained_cv_.notify_all();
  }
}

void Executor::drain_one(const std::shared_ptr<SerialQueue>& queue) {
  Task task;
  {
    util::MutexLock lock(queue->mutex_);
    if (queue->tasks_.empty()) {
      // Raced with nothing real: the queue was scheduled but its work is
      // gone (cannot happen today, but parking it keeps the invariant).
      queue->scheduled_ = false;
      queue->idle_cv_.notify_all();
      return;
    }
    task = std::move(queue->tasks_.front());
    queue->tasks_.pop_front();
  }
  // A slot just freed: one blocked submitter may proceed.
  queue->space_cv_.notify_one();
  task();
  finish_task();
  bool more = false;
  {
    util::MutexLock lock(queue->mutex_);
    if (queue->tasks_.empty()) {
      queue->scheduled_ = false;
      queue->idle_cv_.notify_all();
    } else {
      more = true;  // stays scheduled; we re-list it below
    }
  }
  // Requeue at the BACK of the stripe: round-robin across queues, so one
  // deep mailbox cannot monopolize a worker.
  if (more) enqueue_ready(queue);
}

void Executor::worker_loop(std::size_t worker_index) {
  const std::size_t home = worker_index % stripes_.size();
  for (;;) {
    auto queue = acquire(home);
    if (queue) {
      drain_one(queue);
      continue;
    }
    util::MutexLock lock(sleep_mutex_);
    while (!stop_workers_.load(std::memory_order_acquire) &&
           ready_count_.load(std::memory_order_acquire) == 0) {
      work_cv_.wait(sleep_mutex_);
    }
    if (stop_workers_.load(std::memory_order_acquire) &&
        ready_count_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

void Executor::shutdown() {
  shutting_down_.store(true, std::memory_order_release);
  {
    std::vector<std::shared_ptr<SerialQueue>> live;
    {
      util::MutexLock lock(queues_mutex_);
      live.reserve(queues_.size());
      for (const auto& weak : queues_) {
        if (auto queue = weak.lock()) live.push_back(std::move(queue));
      }
    }
    for (const auto& queue : live) {
      // Empty critical section on every queue mutex, AFTER the flag store:
      // a submit critical section that began before it either finished
      // first (so its pending_tasks_ increment is visible to the drain
      // wait below, and workers are still alive to run the task) or starts
      // after we release (and then observes shutting_down_ via the mutex's
      // happens-before and rejects). Without this fence a submitter that
      // passed its flag check could push a task after the drain completed
      // and the workers exited — accepted work that never runs.
      { util::MutexLock lock(queue->mutex_); }
      // Wake every blocked submitter so it observes the shutdown (their
      // wait loops re-check the flag under the queue mutex).
      queue->space_cv_.notify_all();
    }
  }
  {
    // Graceful drain: every accepted task still runs.
    util::MutexLock lock(sleep_mutex_);
    work_cv_.notify_all();
    while (pending_tasks_.load(std::memory_order_acquire) != 0) {
      drained_cv_.wait(sleep_mutex_);
    }
  }
  stop_workers_.store(true, std::memory_order_release);
  { util::MutexLock lock(sleep_mutex_); }
  work_cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

}  // namespace wagg::runtime
