#include "runtime/plan_service.h"

#include <exception>
#include <stdexcept>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/clock.h"
#include "util/stats.h"

namespace wagg::runtime {

using util::Clock;
using util::ms_since;

namespace {

// SplitMix64-style mixing; order-sensitive because the accumulator feeds
// back into every step.
void digest_mix(std::uint64_t& h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
}

std::uint64_t plan_digest(const core::PlanResult& plan) {
  std::uint64_t h = 0x6a09e667f3bcc908ULL;
  for (const auto parent : plan.tree.parent) {
    digest_mix(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(parent)));
  }
  for (const auto& slot : plan.scheduling.schedule.slots) {
    digest_mix(h, 0xffffffffffffffffULL);  // slot boundary marker
    for (const auto link : slot) digest_mix(h, link);
  }
  digest_mix(h, plan.scheduling.slots_split);
  digest_mix(h, plan.scheduling.colors_before_repair);
  digest_mix(h, plan.verified() ? 1 : 0);
  return h;
}

std::uint64_t trace_digest(const dynamic::DynamicPlanner& planner,
                           std::span<const dynamic::EpochReport> reports) {
  std::uint64_t h = 0xbb67ae8584caa73bULL;
  for (const auto& report : reports) {
    digest_mix(h, report.epoch);
    digest_mix(h, report.slots);
    digest_mix(h, report.dirty_links);
    digest_mix(h, report.full_replan ? 1 : 0);
    digest_mix(h, report.valid ? 1 : 0);
  }
  const auto& snapshot = planner.snapshot();
  for (const auto& slot : snapshot.schedule.slots) {
    digest_mix(h, 0xffffffffffffffffULL);
    for (const auto link : slot) digest_mix(h, link);
  }
  return h;
}

/// Runs a churn-session request to completion on the calling thread.
void execute_session_request(const PlanRequest& request,
                             PlanOutcome& outcome) {
  dynamic::DynamicOptions options;
  options.config = request.config;
  options.audit = request.audit;
  dynamic::DynamicPlanner planner(request.points, options);

  // Serving sessions ship the actual transmit powers every epoch; the
  // planner's membership-keyed cache means carried-over slots cost a hash
  // lookup instead of a Perron solve.
  const bool materialize_powers =
      request.config.power_mode == core::PowerMode::kGlobal;
  if (materialize_powers) (void)planner.slot_powers();

  std::vector<dynamic::EpochReport> reports;
  reports.reserve(request.trace.size() + 1);
  reports.push_back(planner.last_report());
  for (const auto& epoch_mutations : request.trace) {
    (void)planner.apply(epoch_mutations);
    if (materialize_powers) (void)planner.slot_powers();
    reports.push_back(planner.last_report());
  }

  outcome.ok = true;
  outcome.epochs = reports.size();
  bool all_valid = true;
  for (const auto& report : reports) {
    const bool epoch_valid =
        report.valid &&
        (!report.audited || (report.audit_valid && report.audit_tree_match));
    if (epoch_valid) ++outcome.epochs_valid;
    all_valid = all_valid && epoch_valid;
    if (report.epoch > 0 && report.full_replan) ++outcome.full_replans;
    // Fold epoch timings into the batch stage summaries: the incremental
    // stages map onto their closest static counterparts, audit onto verify.
    outcome.timings.tree_ms += report.timings.mst_ms();
    outcome.mst_update_ms += report.timings.mst_update_ms;
    outcome.orient_ms += report.timings.orient_ms;
    outcome.timings.conflict_ms += report.timings.conflict_ms;
    outcome.conflict_maintain_ms += report.timings.conflict_maintain_ms;
    outcome.conflict_query_ms += report.timings.conflict_query_ms;
    outcome.timings.coloring_ms += report.timings.recolor_ms;
    outcome.timings.repair_ms += report.timings.repair_ms;
    outcome.timings.power_ms += report.timings.power_ms;
    outcome.timings.verify_ms += report.timings.audit_ms;
  }
  const auto& final_report = reports.back();
  const auto& snapshot = planner.snapshot();
  outcome.num_points = snapshot.points.size();
  outcome.num_links = snapshot.links.size();
  outcome.slots = final_report.slots;
  outcome.rate = final_report.rate;
  outcome.verified = all_valid;
  outcome.digest = trace_digest(planner, reports);
}

StageSummary summarize_stage(const util::Samples& samples) {
  StageSummary summary;
  if (samples.empty()) return summary;
  // One quantile implementation for every latency table in the repo: the
  // registry histograms' snapshot row (log-bucketed p50/p95 with documented
  // relative error; mean and max exact).
  const obs::SummaryRow row =
      obs::HistogramSnapshot::of(samples.values()).row();
  summary.p50 = row.p50;
  summary.p95 = row.p95;
  summary.mean = row.mean;
  summary.max = row.max;
  return summary;
}

/// The service's registry handles, resolved once (see PlannerMetrics in
/// dynamic_planner.cpp for the pattern).
struct ServiceMetrics {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& requests = reg.counter("service.requests");
  obs::Counter& failures = reg.counter("service.request_failures");
  /// Workers currently executing a request — sampled worker utilization.
  obs::Gauge& busy_workers = reg.gauge("service.busy_workers");
  /// Enqueue-to-start wait: batch requests AND session epochs land here,
  /// so batch and serve latency are comparable in one metric.
  obs::Histogram& queue_ms = reg.histogram("service.queue_ms");
  obs::Histogram& request_ms = reg.histogram("service.request_ms");
  // ---- session serving ----
  obs::Gauge& sessions_active = reg.gauge("service.sessions_active");
  /// Epoch tasks enqueued (or blocked waiting for mailbox space) but not
  /// yet started, summed across sessions.
  obs::Gauge& session_queue_depth = reg.gauge("service.session_queue_depth");
  obs::Counter& session_epochs = reg.counter("service.session_epochs");
  obs::Counter& mailbox_rejects = reg.counter("service.mailbox_rejects");
  obs::Histogram& session_epoch_ms = reg.histogram("service.session_epoch_ms");
};

ServiceMetrics& service_metrics() {
  static ServiceMetrics metrics;
  return metrics;
}

// ---- SessionId packing: slot index low 32 bits, generation high 32 ----

constexpr std::uint32_t id_slot(PlanService::SessionId id) noexcept {
  return static_cast<std::uint32_t>(id & 0xffffffffULL);
}

constexpr std::uint32_t id_generation(PlanService::SessionId id) noexcept {
  return static_cast<std::uint32_t>(id >> 32);
}

constexpr PlanService::SessionId make_session_id(
    std::uint32_t slot, std::uint32_t generation) noexcept {
  return (static_cast<PlanService::SessionId>(generation) << 32) |
         static_cast<PlanService::SessionId>(slot);
}

Executor::Options executor_options(const ServiceOptions& options) {
  Executor::Options exec;
  exec.num_workers = options.num_workers;
  exec.num_stripes = options.num_stripes;
  exec.default_queue_capacity = options.session_mailbox_capacity;
  return exec;
}

}  // namespace

std::string to_string(SessionStatus status) {
  switch (status) {
    case SessionStatus::kOk:
      return "ok";
    case SessionStatus::kUnknownSession:
      return "unknown_session";
    case SessionStatus::kClosedSession:
      return "closed_session";
    case SessionStatus::kMailboxFull:
      return "mailbox_full";
    case SessionStatus::kShutdown:
      return "shutdown";
    case SessionStatus::kSessionLimit:
      return "session_limit";
    case SessionStatus::kPlannerError:
      return "planner_error";
  }
  return "unknown";
}

std::uint64_t snapshot_digest(const dynamic::DynamicPlanner& planner) {
  const auto& snapshot = planner.snapshot();
  std::uint64_t h = 0x3c6ef372fe94f82bULL;
  digest_mix(h, planner.epoch());
  digest_mix(h,
             static_cast<std::uint64_t>(static_cast<std::int64_t>(snapshot.sink)));
  for (const auto id : snapshot.ids) {
    digest_mix(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(id)));
  }
  for (const auto& slot : snapshot.schedule.slots) {
    digest_mix(h, 0xffffffffffffffffULL);
    for (const auto link : slot) digest_mix(h, link);
  }
  return h;
}

PlanOutcome execute_request(const PlanRequest& request,
                            std::size_t request_index, bool keep_plan) {
  PlanOutcome outcome;
  outcome.request_index = request_index;
  outcome.seed = request.seed;
  outcome.tags = request.tags;
  outcome.num_points = request.points.size();

  obs::Span span("request");
  auto& metrics = service_metrics();
  const auto start = Clock::now();
  try {
    if (!request.trace.empty()) {
      execute_session_request(request, outcome);
      outcome.total_ms = ms_since(start);
      metrics.requests.add();
      metrics.request_ms.record(outcome.total_ms);
      return outcome;
    }
    core::StageTimings timings;
    auto plan = core::plan_aggregation(request.points, request.config,
                                       &timings);
    outcome.ok = true;
    outcome.num_links = plan.tree.links.size();
    outcome.slots = plan.schedule().length();
    outcome.colors_before_repair = plan.scheduling.colors_before_repair;
    outcome.slots_split = plan.scheduling.slots_split;
    outcome.rate = plan.rate();
    outcome.verified = plan.verified();
    outcome.digest = plan_digest(plan);
    outcome.timings = timings;
    if (keep_plan) {
      outcome.plan =
          std::make_shared<const core::PlanResult>(std::move(plan));
    }
  } catch (const std::exception& e) {
    outcome.ok = false;
    outcome.error = e.what();
  } catch (...) {
    outcome.ok = false;
    outcome.error = "unknown error";
  }
  outcome.total_ms = ms_since(start);
  metrics.requests.add();
  if (!outcome.ok) metrics.failures.add();
  metrics.request_ms.record(outcome.total_ms);
  return outcome;
}

BatchStats summarize(const std::vector<PlanOutcome>& outcomes,
                     double wall_ms) {
  BatchStats stats;
  stats.total = outcomes.size();
  stats.wall_ms = wall_ms;

  util::Samples tree, conflict, coloring, repair, verify, power, queue, total;
  util::Samples conflict_maintain, conflict_query;
  util::Samples mst_update, orient;
  for (const auto& outcome : outcomes) {
    // Queue wait is a service property, not a planning property: failed
    // requests waited too, so they count.
    queue.add(outcome.queue_ms);
    if (outcome.ok) {
      ++stats.succeeded;
      tree.add(outcome.timings.tree_ms);
      conflict.add(outcome.timings.conflict_ms);
      if (outcome.epochs > 0) {
        // Only churn sessions maintain a conflict index / incremental MST;
        // static plans would dilute the splits with structural zeros.
        conflict_maintain.add(outcome.conflict_maintain_ms);
        conflict_query.add(outcome.conflict_query_ms);
        mst_update.add(outcome.mst_update_ms);
        orient.add(outcome.orient_ms);
        // outcome.epochs counts the initial full plan; throughput counts
        // the incremental advances only.
        stats.session_epochs += outcome.epochs - 1;
      }
      coloring.add(outcome.timings.coloring_ms);
      repair.add(outcome.timings.repair_ms);
      verify.add(outcome.timings.verify_ms);
      power.add(outcome.timings.power_ms);
      total.add(outcome.total_ms);
    } else {
      ++stats.failed;
    }
  }
  stats.tree = summarize_stage(tree);
  stats.mst_update = summarize_stage(mst_update);
  stats.orient = summarize_stage(orient);
  stats.conflict = summarize_stage(conflict);
  stats.conflict_maintain = summarize_stage(conflict_maintain);
  stats.conflict_query = summarize_stage(conflict_query);
  stats.coloring = summarize_stage(coloring);
  stats.repair = summarize_stage(repair);
  stats.verify = summarize_stage(verify);
  stats.power = summarize_stage(power);
  stats.queue = summarize_stage(queue);
  stats.total_latency = summarize_stage(total);
  if (wall_ms > 0.0) {
    stats.plans_per_sec = static_cast<double>(stats.total) * 1000.0 / wall_ms;
    stats.session_epochs_per_sec =
        static_cast<double>(stats.session_epochs) * 1000.0 / wall_ms;
  }
  return stats;
}

PlanService::PlanService(ServiceOptions options)
    : options_(options), executor_(executor_options(options)) {}

PlanService::~PlanService() {
  // Drain while every member is still alive: queued session tasks touch
  // slots_ and sessions_mutex_ (open-failure release path), which are
  // destroyed before executor_ would be.
  executor_.shutdown();
}

// ------------------------------------------------------------------ batches

BatchResult PlanService::run(const std::vector<PlanRequest>& requests) {
  BatchResult result;
  result.outcomes.resize(requests.size());
  const auto start = Clock::now();
  if (!requests.empty()) {
    // Completion latch shared by every request task. Notify under the lock:
    // run() may destroy the state the instant the predicate turns true.
    struct BatchState {
      util::Mutex mutex;
      util::CondVar done;
      std::size_t remaining WAGG_GUARDED_BY(mutex) = 0;
    };
    auto state = std::make_shared<BatchState>();
    {
      // The fresh state is not shared yet, but the analysis has no notion
      // of "unpublished" — lock for its benefit (uncontended).
      util::MutexLock lock(state->mutex);
      state->remaining = requests.size();
    }

    // One ephemeral single-slot queue per request: requests spread round-
    // robin across all stripes and interleave fairly with live sessions
    // (one task per acquisition), instead of one mega-queue serializing the
    // batch behind a single drainer.
    std::vector<std::shared_ptr<Executor::SerialQueue>> queues;
    queues.reserve(requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
      auto queue = executor_.make_queue(1);
      const SubmitResult submitted = queue->try_submit([this, &requests,
                                                       &result, state, start,
                                                       i] {
        auto& metrics = service_metrics();
        const double queue_ms = ms_since(start);
        metrics.queue_ms.record(queue_ms);
        metrics.busy_workers.add(1.0);
        // Planning runs unlocked; each task writes only its own slot.
        result.outcomes[i] =
            execute_request(requests[i], i, options_.keep_plans);
        result.outcomes[i].queue_ms = queue_ms;
        metrics.busy_workers.add(-1.0);
        {
          util::MutexLock lock(state->mutex);
          --state->remaining;
        }
        state->done.notify_all();
      });
      if (submitted != SubmitResult::kAccepted) {
        // Executor shutting down (service destruction racing a batch):
        // account the slot as failed instead of hanging the latch.
        result.outcomes[i].request_index = i;
        result.outcomes[i].ok = false;
        result.outcomes[i].error =
            "service rejected request: " + to_string(submitted);
        util::MutexLock lock(state->mutex);
        --state->remaining;
      }
      queues.push_back(std::move(queue));
    }
    util::MutexLock lock(state->mutex);
    while (state->remaining != 0) state->done.wait(state->mutex);
  }
  result.stats = summarize(result.outcomes, ms_since(start));
  return result;
}

// ----------------------------------------------------------------- sessions

PlanService::Resolved PlanService::resolve(SessionId id) const {
  const std::uint32_t slot = id_slot(id);
  const std::uint32_t generation = id_generation(id);
  util::MutexLock lock(sessions_mutex_);
  if (slot >= slots_.size() || generation > slots_[slot].generation ||
      generation == 0) {
    return {SessionStatus::kUnknownSession, nullptr};  // never issued
  }
  const Slot& entry = slots_[slot];
  if (generation < entry.generation || !entry.session) {
    // The id was real once; the slot moved on (or the session closed).
    return {SessionStatus::kClosedSession, nullptr};
  }
  return {SessionStatus::kOk, entry.session};
}

PlanService::Resolved PlanService::allocate_session() {
  util::MutexLock lock(sessions_mutex_);
  if (open_sessions_ >= options_.max_sessions) {
    return {SessionStatus::kSessionLimit, nullptr};
  }
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  auto session = std::make_shared<Session>();
  session->slot = slot;
  session->generation = ++slots_[slot].generation;
  session->queue = executor_.make_queue(options_.session_mailbox_capacity);
  slots_[slot].session = session;
  ++open_sessions_;
  service_metrics().sessions_active.add(1.0);
  return {SessionStatus::kOk, std::move(session)};
}

void PlanService::release_session(const std::shared_ptr<Session>& session) {
  util::MutexLock lock(sessions_mutex_);
  Slot& entry = slots_[session->slot];
  // Idempotent across racing closers: only the one that still owns the slot
  // frees it.
  if (entry.session != session) return;
  entry.session = nullptr;
  free_slots_.push_back(session->slot);
  --open_sessions_;
  service_metrics().sessions_active.add(-1.0);
}

PlanService::SessionId PlanService::open_session(
    const geom::Pointset& initial, const dynamic::DynamicOptions& options) {
  // Plan the initial epoch before taking a slot: constructor exceptions
  // (malformed input) propagate without leaking admission capacity.
  auto planner = std::make_shared<dynamic::DynamicPlanner>(initial, options);
  Resolved allocated = allocate_session();
  if (allocated.status != SessionStatus::kOk) {
    throw std::runtime_error("PlanService: session limit reached (" +
                             std::to_string(options_.max_sessions) + ")");
  }
  {
    util::MutexLock lock(allocated.session->mutex);
    allocated.session->planner = std::move(planner);
  }
  return make_session_id(allocated.session->slot,
                         allocated.session->generation);
}

std::future<OpenOutcome> PlanService::open_session_async(
    geom::Pointset initial, const dynamic::DynamicOptions& options) {
  auto promise = std::make_shared<std::promise<OpenOutcome>>();
  auto future = promise->get_future();

  Resolved allocated = allocate_session();
  if (allocated.status != SessionStatus::kOk) {
    OpenOutcome outcome;
    outcome.status = allocated.status;
    outcome.error = "session limit reached";
    promise->set_value(std::move(outcome));
    return future;
  }
  auto session = std::move(allocated.session);
  const SessionId id = make_session_id(session->slot, session->generation);

  // The initial full plan is the session's FIRST queue task: opens
  // parallelize across the pool, and epochs submitted before the open
  // resolves simply queue behind it in order.
  const SubmitResult submitted = session->queue->try_submit(
      [this, session, id, initial = std::move(initial), options, promise] {
        auto& metrics = service_metrics();
        OpenOutcome outcome;
        outcome.id = id;
        metrics.busy_workers.add(1.0);
        try {
          auto planner =
              std::make_shared<dynamic::DynamicPlanner>(initial, options);
          util::MutexLock lock(session->mutex);
          session->planner = std::move(planner);
        } catch (const std::exception& e) {
          outcome.status = SessionStatus::kPlannerError;
          outcome.error = e.what();
        } catch (...) {
          outcome.status = SessionStatus::kPlannerError;
          outcome.error = "unknown error";
        }
        metrics.busy_workers.add(-1.0);
        if (outcome.status != SessionStatus::kOk) {
          {
            util::MutexLock lock(session->mutex);
            session->open_failed = true;
            session->open_error = outcome.error;
          }
          // A failed open self-closes: queued epochs resolve kPlannerError,
          // the slot frees for the next open.
          session->queue->close();
          release_session(session);
        }
        promise->set_value(std::move(outcome));
      });
  if (submitted != SubmitResult::kAccepted) {
    release_session(session);
    OpenOutcome outcome;
    outcome.status = SessionStatus::kShutdown;
    outcome.error = "service shutting down";
    promise->set_value(std::move(outcome));
  }
  return future;
}

void PlanService::submit_epoch_task(SessionId id, dynamic::ChurnTrace epochs,
                                    std::function<void(EpochOutcome)> done,
                                    OnFull on_full) {
  auto& metrics = service_metrics();
  Resolved resolved = resolve(id);
  if (resolved.status != SessionStatus::kOk) {
    EpochOutcome outcome;
    outcome.status = resolved.status;
    outcome.error = "PlanService: " + to_string(resolved.status) +
                    " for session id " + std::to_string(id);
    done(std::move(outcome));
    return;
  }
  auto session = std::move(resolved.session);

  // Count the entry as queued for the whole enqueue-to-start window —
  // including a blocking submit's wait for mailbox space — so the gauge
  // never dips negative when the task starts before the accept returns.
  metrics.session_queue_depth.add(1.0);
  const auto enqueue_time = Clock::now();
  // The task copies `done` (rather than moving) so admission failures below
  // can still resolve the caller's callback.
  Executor::Task task = [this, session, epochs = std::move(epochs),
                         enqueue_time, done] {
    run_epoch_task(session, epochs, enqueue_time, done);
  };
  const SubmitResult submitted =
      on_full == OnFull::kBlock
          ? session->queue->submit_blocking(std::move(task))
          : session->queue->try_submit(std::move(task));
  if (submitted == SubmitResult::kAccepted) return;

  metrics.session_queue_depth.add(-1.0);
  EpochOutcome outcome;
  switch (submitted) {
    case SubmitResult::kQueueFull:
      outcome.status = SessionStatus::kMailboxFull;
      metrics.mailbox_rejects.add();
      {
        util::MutexLock lock(session->mutex);
        ++session->rejects;
      }
      break;
    case SubmitResult::kClosed:
      outcome.status = SessionStatus::kClosedSession;
      break;
    default:
      outcome.status = SessionStatus::kShutdown;
      break;
  }
  outcome.error = "PlanService: " + to_string(outcome.status) +
                  " for session id " + std::to_string(id);
  done(std::move(outcome));
}

void PlanService::run_epoch_task(
    const std::shared_ptr<Session>& session, const dynamic::ChurnTrace& epochs,
    util::Clock::time_point enqueue_time,
    const std::function<void(EpochOutcome)>& done) {
  auto& metrics = service_metrics();
  metrics.session_queue_depth.add(-1.0);

  EpochOutcome outcome;
  outcome.queue_ms = ms_since(enqueue_time);
  // Satellite: session mailbox waits land in the SAME histogram as batch
  // queue waits, so one metric compares batch and serve latency.
  metrics.queue_ms.record(outcome.queue_ms);

  std::shared_ptr<dynamic::DynamicPlanner> planner;
  {
    util::MutexLock lock(session->mutex);
    if (session->open_failed) {
      outcome.status = SessionStatus::kPlannerError;
      outcome.error = "session open failed: " + session->open_error;
    } else {
      // Set by the open task, which the serial queue ran before us.
      planner = session->planner;
    }
  }
  if (outcome.status != SessionStatus::kOk) {
    done(std::move(outcome));
    return;
  }

  obs::Span span("session_epoch");
  metrics.busy_workers.add(1.0);
  const auto start = Clock::now();
  std::size_t applied = 0;
  try {
    // The serial queue is the session's mutual exclusion: at most one task
    // of this queue runs at a time, so the planner needs no lock here.
    for (const auto& mutations : epochs) {
      (void)planner->apply(std::span<const dynamic::Mutation>(mutations));
      ++applied;
    }
    outcome.report = planner->last_report();
  } catch (const std::invalid_argument& e) {
    outcome.status = SessionStatus::kPlannerError;
    outcome.invalid_argument = true;
    outcome.error = e.what();
  } catch (const std::exception& e) {
    outcome.status = SessionStatus::kPlannerError;
    outcome.error = e.what();
  } catch (...) {
    outcome.status = SessionStatus::kPlannerError;
    outcome.error = "unknown error";
  }
  outcome.epoch_ms = ms_since(start);
  metrics.busy_workers.add(-1.0);
  metrics.session_epochs.add(applied);
  metrics.session_epoch_ms.record(outcome.epoch_ms);
  {
    util::MutexLock lock(session->mutex);
    session->epochs += applied;
    session->epoch_ms.add(outcome.epoch_ms);
    session->wait_ms.add(outcome.queue_ms);
  }
  done(std::move(outcome));
}

std::future<EpochOutcome> PlanService::submit_epoch(
    SessionId id, std::vector<dynamic::Mutation> mutations, OnFull on_full) {
  dynamic::ChurnTrace trace;
  trace.push_back(std::move(mutations));
  auto promise = std::make_shared<std::promise<EpochOutcome>>();
  auto future = promise->get_future();
  submit_epoch_task(id, std::move(trace),
                    [promise](EpochOutcome outcome) {
                      promise->set_value(std::move(outcome));
                    },
                    on_full);
  return future;
}

void PlanService::submit_epoch(SessionId id,
                               std::vector<dynamic::Mutation> mutations,
                               std::function<void(EpochOutcome)> done,
                               OnFull on_full) {
  dynamic::ChurnTrace trace;
  trace.push_back(std::move(mutations));
  submit_epoch_task(id, std::move(trace), std::move(done), on_full);
}

std::future<EpochOutcome> PlanService::submit_epochs(SessionId id,
                                                     dynamic::ChurnTrace epochs,
                                                     OnFull on_full) {
  auto promise = std::make_shared<std::promise<EpochOutcome>>();
  auto future = promise->get_future();
  submit_epoch_task(id, std::move(epochs),
                    [promise](EpochOutcome outcome) {
                      promise->set_value(std::move(outcome));
                    },
                    on_full);
  return future;
}

dynamic::EpochReport PlanService::advance_session(
    SessionId id, std::span<const dynamic::Mutation> mutations) {
  auto future = submit_epoch(
      id, std::vector<dynamic::Mutation>(mutations.begin(), mutations.end()),
      OnFull::kBlock);
  EpochOutcome outcome = future.get();
  if (outcome.status == SessionStatus::kOk) return outcome.report;
  // Historic contract: lifecycle misuse and planner-rejected mutations both
  // surface as std::invalid_argument from the synchronous API.
  if (outcome.invalid_argument ||
      outcome.status == SessionStatus::kUnknownSession ||
      outcome.status == SessionStatus::kClosedSession) {
    throw std::invalid_argument(outcome.error);
  }
  throw std::runtime_error(outcome.error);
}

std::shared_ptr<const dynamic::DynamicPlanner> PlanService::session(
    SessionId id) const {
  Resolved resolved = resolve(id);
  if (resolved.status != SessionStatus::kOk) {
    throw std::invalid_argument("PlanService: " + to_string(resolved.status) +
                                " for session id " + std::to_string(id));
  }
  util::MutexLock lock(resolved.session->mutex);
  if (!resolved.session->planner) {
    throw std::runtime_error(
        "PlanService: session open still in flight for id " +
        std::to_string(id) + " (wait on the open future first)");
  }
  return resolved.session->planner;
}

std::uint64_t PlanService::session_digest(SessionId id) const {
  return snapshot_digest(*session(id));
}

SessionStats PlanService::session_stats(SessionId id) const {
  Resolved resolved = resolve(id);
  if (resolved.status != SessionStatus::kOk) {
    throw std::invalid_argument("PlanService: " + to_string(resolved.status) +
                                " for session id " + std::to_string(id));
  }
  SessionStats stats;
  stats.queue_depth = resolved.session->queue->depth();
  util::MutexLock lock(resolved.session->mutex);
  stats.epochs = resolved.session->epochs;
  stats.mailbox_rejects = resolved.session->rejects;
  stats.latency = summarize_stage(resolved.session->epoch_ms);
  stats.wait = summarize_stage(resolved.session->wait_ms);
  if (!resolved.session->epoch_ms.empty()) {
    stats.p99_ms =
        obs::HistogramSnapshot::of(resolved.session->epoch_ms.values())
            .quantile(99.0);
  }
  if (!resolved.session->wait_ms.empty()) {
    stats.wait_p99_ms =
        obs::HistogramSnapshot::of(resolved.session->wait_ms.values())
            .quantile(99.0);
  }
  return stats;
}

SessionStatus PlanService::close_session(SessionId id) {
  Resolved resolved = resolve(id);
  if (resolved.status != SessionStatus::kOk) return resolved.status;
  // Graceful: stop new submits first (late submit_epoch calls resolve
  // kClosedSession), drain what was already accepted, then free the slot.
  // Must not be called from inside this session's own epoch callback — the
  // drain would wait on the running task.
  resolved.session->queue->close();
  resolved.session->queue->wait_drained();
  release_session(resolved.session);
  return SessionStatus::kOk;
}

std::size_t PlanService::num_sessions() const {
  util::MutexLock lock(sessions_mutex_);
  return open_sessions_;
}

}  // namespace wagg::runtime
