#include "runtime/plan_service.h"

#include <exception>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/clock.h"
#include "util/stats.h"

namespace wagg::runtime {

using util::Clock;
using util::ms_since;

namespace {

// SplitMix64-style mixing; order-sensitive because the accumulator feeds
// back into every step.
void digest_mix(std::uint64_t& h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
}

std::uint64_t plan_digest(const core::PlanResult& plan) {
  std::uint64_t h = 0x6a09e667f3bcc908ULL;
  for (const auto parent : plan.tree.parent) {
    digest_mix(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(parent)));
  }
  for (const auto& slot : plan.scheduling.schedule.slots) {
    digest_mix(h, 0xffffffffffffffffULL);  // slot boundary marker
    for (const auto link : slot) digest_mix(h, link);
  }
  digest_mix(h, plan.scheduling.slots_split);
  digest_mix(h, plan.scheduling.colors_before_repair);
  digest_mix(h, plan.verified() ? 1 : 0);
  return h;
}

std::uint64_t session_digest(const dynamic::DynamicPlanner& planner,
                             std::span<const dynamic::EpochReport> reports) {
  std::uint64_t h = 0xbb67ae8584caa73bULL;
  for (const auto& report : reports) {
    digest_mix(h, report.epoch);
    digest_mix(h, report.slots);
    digest_mix(h, report.dirty_links);
    digest_mix(h, report.full_replan ? 1 : 0);
    digest_mix(h, report.valid ? 1 : 0);
  }
  const auto& snapshot = planner.snapshot();
  for (const auto& slot : snapshot.schedule.slots) {
    digest_mix(h, 0xffffffffffffffffULL);
    for (const auto link : slot) digest_mix(h, link);
  }
  return h;
}

/// Runs a churn-session request to completion on the calling thread.
void execute_session_request(const PlanRequest& request,
                             PlanOutcome& outcome) {
  dynamic::DynamicOptions options;
  options.config = request.config;
  options.audit = request.audit;
  dynamic::DynamicPlanner planner(request.points, options);

  // Serving sessions ship the actual transmit powers every epoch; the
  // planner's membership-keyed cache means carried-over slots cost a hash
  // lookup instead of a Perron solve.
  const bool materialize_powers =
      request.config.power_mode == core::PowerMode::kGlobal;
  if (materialize_powers) (void)planner.slot_powers();

  std::vector<dynamic::EpochReport> reports;
  reports.reserve(request.trace.size() + 1);
  reports.push_back(planner.last_report());
  for (const auto& epoch_mutations : request.trace) {
    (void)planner.apply(epoch_mutations);
    if (materialize_powers) (void)planner.slot_powers();
    reports.push_back(planner.last_report());
  }

  outcome.ok = true;
  outcome.epochs = reports.size();
  bool all_valid = true;
  for (const auto& report : reports) {
    const bool epoch_valid =
        report.valid &&
        (!report.audited || (report.audit_valid && report.audit_tree_match));
    if (epoch_valid) ++outcome.epochs_valid;
    all_valid = all_valid && epoch_valid;
    if (report.epoch > 0 && report.full_replan) ++outcome.full_replans;
    // Fold epoch timings into the batch stage summaries: the incremental
    // stages map onto their closest static counterparts, audit onto verify.
    outcome.timings.tree_ms += report.timings.mst_ms();
    outcome.mst_update_ms += report.timings.mst_update_ms;
    outcome.orient_ms += report.timings.orient_ms;
    outcome.timings.conflict_ms += report.timings.conflict_ms;
    outcome.conflict_maintain_ms += report.timings.conflict_maintain_ms;
    outcome.conflict_query_ms += report.timings.conflict_query_ms;
    outcome.timings.coloring_ms += report.timings.recolor_ms;
    outcome.timings.repair_ms += report.timings.repair_ms;
    outcome.timings.power_ms += report.timings.power_ms;
    outcome.timings.verify_ms += report.timings.audit_ms;
  }
  const auto& final_report = reports.back();
  const auto& snapshot = planner.snapshot();
  outcome.num_points = snapshot.points.size();
  outcome.num_links = snapshot.links.size();
  outcome.slots = final_report.slots;
  outcome.rate = final_report.rate;
  outcome.verified = all_valid;
  outcome.digest = session_digest(planner, reports);
}

StageSummary summarize_stage(const util::Samples& samples) {
  StageSummary summary;
  if (samples.empty()) return summary;
  // One quantile implementation for every latency table in the repo: the
  // registry histograms' snapshot row (log-bucketed p50/p95 with documented
  // relative error; mean and max exact).
  const obs::SummaryRow row =
      obs::HistogramSnapshot::of(samples.values()).row();
  summary.p50 = row.p50;
  summary.p95 = row.p95;
  summary.mean = row.mean;
  summary.max = row.max;
  return summary;
}

/// The service's registry handles, resolved once (see PlannerMetrics in
/// dynamic_planner.cpp for the pattern).
struct ServiceMetrics {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& requests = reg.counter("service.requests");
  obs::Counter& failures = reg.counter("service.request_failures");
  /// Workers currently executing a request — sampled worker utilization.
  obs::Gauge& busy_workers = reg.gauge("service.busy_workers");
  obs::Histogram& queue_ms = reg.histogram("service.queue_ms");
  obs::Histogram& request_ms = reg.histogram("service.request_ms");
};

ServiceMetrics& service_metrics() {
  static ServiceMetrics metrics;
  return metrics;
}

}  // namespace

PlanOutcome execute_request(const PlanRequest& request,
                            std::size_t request_index, bool keep_plan) {
  PlanOutcome outcome;
  outcome.request_index = request_index;
  outcome.seed = request.seed;
  outcome.tags = request.tags;
  outcome.num_points = request.points.size();

  obs::Span span("request");
  auto& metrics = service_metrics();
  const auto start = Clock::now();
  try {
    if (!request.trace.empty()) {
      execute_session_request(request, outcome);
      outcome.total_ms = ms_since(start);
      metrics.requests.add();
      metrics.request_ms.record(outcome.total_ms);
      return outcome;
    }
    core::StageTimings timings;
    auto plan = core::plan_aggregation(request.points, request.config,
                                       &timings);
    outcome.ok = true;
    outcome.num_links = plan.tree.links.size();
    outcome.slots = plan.schedule().length();
    outcome.colors_before_repair = plan.scheduling.colors_before_repair;
    outcome.slots_split = plan.scheduling.slots_split;
    outcome.rate = plan.rate();
    outcome.verified = plan.verified();
    outcome.digest = plan_digest(plan);
    outcome.timings = timings;
    if (keep_plan) {
      outcome.plan =
          std::make_shared<const core::PlanResult>(std::move(plan));
    }
  } catch (const std::exception& e) {
    outcome.ok = false;
    outcome.error = e.what();
  } catch (...) {
    outcome.ok = false;
    outcome.error = "unknown error";
  }
  outcome.total_ms = ms_since(start);
  metrics.requests.add();
  if (!outcome.ok) metrics.failures.add();
  metrics.request_ms.record(outcome.total_ms);
  return outcome;
}

BatchStats summarize(const std::vector<PlanOutcome>& outcomes,
                     double wall_ms) {
  BatchStats stats;
  stats.total = outcomes.size();
  stats.wall_ms = wall_ms;

  util::Samples tree, conflict, coloring, repair, verify, power, queue, total;
  util::Samples conflict_maintain, conflict_query;
  util::Samples mst_update, orient;
  for (const auto& outcome : outcomes) {
    // Queue wait is a service property, not a planning property: failed
    // requests waited too, so they count.
    queue.add(outcome.queue_ms);
    if (outcome.ok) {
      ++stats.succeeded;
      tree.add(outcome.timings.tree_ms);
      conflict.add(outcome.timings.conflict_ms);
      if (outcome.epochs > 0) {
        // Only churn sessions maintain a conflict index / incremental MST;
        // static plans would dilute the splits with structural zeros.
        conflict_maintain.add(outcome.conflict_maintain_ms);
        conflict_query.add(outcome.conflict_query_ms);
        mst_update.add(outcome.mst_update_ms);
        orient.add(outcome.orient_ms);
        // outcome.epochs counts the initial full plan; throughput counts
        // the incremental advances only.
        stats.session_epochs += outcome.epochs - 1;
      }
      coloring.add(outcome.timings.coloring_ms);
      repair.add(outcome.timings.repair_ms);
      verify.add(outcome.timings.verify_ms);
      power.add(outcome.timings.power_ms);
      total.add(outcome.total_ms);
    } else {
      ++stats.failed;
    }
  }
  stats.tree = summarize_stage(tree);
  stats.mst_update = summarize_stage(mst_update);
  stats.orient = summarize_stage(orient);
  stats.conflict = summarize_stage(conflict);
  stats.conflict_maintain = summarize_stage(conflict_maintain);
  stats.conflict_query = summarize_stage(conflict_query);
  stats.coloring = summarize_stage(coloring);
  stats.repair = summarize_stage(repair);
  stats.verify = summarize_stage(verify);
  stats.power = summarize_stage(power);
  stats.queue = summarize_stage(queue);
  stats.total_latency = summarize_stage(total);
  if (wall_ms > 0.0) {
    stats.plans_per_sec = static_cast<double>(stats.total) * 1000.0 / wall_ms;
    stats.session_epochs_per_sec =
        static_cast<double>(stats.session_epochs) * 1000.0 / wall_ms;
  }
  return stats;
}

PlanService::PlanService(ServiceOptions options) : options_(options) {
  std::size_t n = options_.num_workers;
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
  }
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

PlanService::~PlanService() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

BatchResult PlanService::run(const std::vector<PlanRequest>& requests) {
  BatchResult result;
  result.outcomes.resize(requests.size());
  const auto start = Clock::now();
  if (!requests.empty()) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      batch_ = &requests;
      outcomes_ = &result.outcomes;
      batch_start_ = start;
      next_index_ = 0;
      remaining_ = requests.size();
    }
    work_ready_.notify_all();
    std::unique_lock<std::mutex> lock(mutex_);
    batch_done_.wait(lock, [this] { return remaining_ == 0; });
    batch_ = nullptr;
    outcomes_ = nullptr;
  }
  result.stats = summarize(result.outcomes, ms_since(start));
  return result;
}

void PlanService::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_ready_.wait(lock, [this] {
      return shutting_down_ || (batch_ && next_index_ < batch_->size());
    });
    if (shutting_down_) return;

    const std::size_t index = next_index_++;
    const std::vector<PlanRequest>& batch = *batch_;
    std::vector<PlanOutcome>& outcomes = *outcomes_;
    const double queue_ms = ms_since(batch_start_);
    lock.unlock();

    // Planning runs unlocked; each worker writes only its own slot.
    auto& metrics = service_metrics();
    metrics.queue_ms.record(queue_ms);
    metrics.busy_workers.add(1.0);
    outcomes[index] =
        execute_request(batch[index], index, options_.keep_plans);
    outcomes[index].queue_ms = queue_ms;
    metrics.busy_workers.add(-1.0);

    lock.lock();
    if (--remaining_ == 0) batch_done_.notify_all();
  }
}

PlanService::SessionId PlanService::open_session(
    const geom::Pointset& initial, const dynamic::DynamicOptions& options) {
  // Plan the initial epoch outside the lock; registration is cheap.
  auto planner = std::make_shared<dynamic::DynamicPlanner>(initial, options);
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  const SessionId id = next_session_id_++;
  sessions_.emplace(id, std::move(planner));
  return id;
}

std::shared_ptr<dynamic::DynamicPlanner> PlanService::find_session(
    SessionId id) const {
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    throw std::invalid_argument("PlanService: unknown session id " +
                                std::to_string(id));
  }
  return it->second;
}

dynamic::EpochReport PlanService::advance_session(
    SessionId id, std::span<const dynamic::Mutation> mutations) {
  // The shared_ptr keeps the planner alive even if the session is closed
  // concurrently; the planner itself is advanced outside any lock.
  return find_session(id)->apply(mutations);
}

std::shared_ptr<const dynamic::DynamicPlanner> PlanService::session(
    SessionId id) const {
  return find_session(id);
}

void PlanService::close_session(SessionId id) {
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  sessions_.erase(id);
}

std::size_t PlanService::num_sessions() const {
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  return sessions_.size();
}

}  // namespace wagg::runtime
