#include "runtime/plan_service.h"

#include <exception>
#include <stdexcept>

#include "util/clock.h"
#include "util/stats.h"

namespace wagg::runtime {

using util::Clock;
using util::ms_since;

namespace {

// SplitMix64-style mixing; order-sensitive because the accumulator feeds
// back into every step.
void digest_mix(std::uint64_t& h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
}

std::uint64_t plan_digest(const core::PlanResult& plan) {
  std::uint64_t h = 0x6a09e667f3bcc908ULL;
  for (const auto parent : plan.tree.parent) {
    digest_mix(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(parent)));
  }
  for (const auto& slot : plan.scheduling.schedule.slots) {
    digest_mix(h, 0xffffffffffffffffULL);  // slot boundary marker
    for (const auto link : slot) digest_mix(h, link);
  }
  digest_mix(h, plan.scheduling.slots_split);
  digest_mix(h, plan.scheduling.colors_before_repair);
  digest_mix(h, plan.verified() ? 1 : 0);
  return h;
}

StageSummary summarize_stage(const util::Samples& samples) {
  StageSummary summary;
  if (samples.empty()) return summary;
  summary.p50 = samples.percentile(50.0);
  summary.p95 = samples.percentile(95.0);
  summary.mean = samples.mean();
  summary.max = samples.max();
  return summary;
}

}  // namespace

PlanOutcome execute_request(const PlanRequest& request,
                            std::size_t request_index, bool keep_plan) {
  PlanOutcome outcome;
  outcome.request_index = request_index;
  outcome.seed = request.seed;
  outcome.tags = request.tags;
  outcome.num_points = request.points.size();

  const auto start = Clock::now();
  try {
    core::StageTimings timings;
    auto plan = core::plan_aggregation(request.points, request.config,
                                       &timings);
    outcome.ok = true;
    outcome.num_links = plan.tree.links.size();
    outcome.slots = plan.schedule().length();
    outcome.colors_before_repair = plan.scheduling.colors_before_repair;
    outcome.slots_split = plan.scheduling.slots_split;
    outcome.rate = plan.rate();
    outcome.verified = plan.verified();
    outcome.digest = plan_digest(plan);
    outcome.timings = timings;
    if (keep_plan) {
      outcome.plan =
          std::make_shared<const core::PlanResult>(std::move(plan));
    }
  } catch (const std::exception& e) {
    outcome.ok = false;
    outcome.error = e.what();
  } catch (...) {
    outcome.ok = false;
    outcome.error = "unknown error";
  }
  outcome.total_ms = ms_since(start);
  return outcome;
}

BatchStats summarize(const std::vector<PlanOutcome>& outcomes,
                     double wall_ms) {
  BatchStats stats;
  stats.total = outcomes.size();
  stats.wall_ms = wall_ms;

  util::Samples tree, conflict, coloring, repair, verify, power, total;
  for (const auto& outcome : outcomes) {
    if (outcome.ok) {
      ++stats.succeeded;
      tree.add(outcome.timings.tree_ms);
      conflict.add(outcome.timings.conflict_ms);
      coloring.add(outcome.timings.coloring_ms);
      repair.add(outcome.timings.repair_ms);
      verify.add(outcome.timings.verify_ms);
      power.add(outcome.timings.power_ms);
      total.add(outcome.total_ms);
    } else {
      ++stats.failed;
    }
  }
  stats.tree = summarize_stage(tree);
  stats.conflict = summarize_stage(conflict);
  stats.coloring = summarize_stage(coloring);
  stats.repair = summarize_stage(repair);
  stats.verify = summarize_stage(verify);
  stats.power = summarize_stage(power);
  stats.total_latency = summarize_stage(total);
  if (wall_ms > 0.0) {
    stats.plans_per_sec = static_cast<double>(stats.total) * 1000.0 / wall_ms;
  }
  return stats;
}

PlanService::PlanService(ServiceOptions options) : options_(options) {
  std::size_t n = options_.num_workers;
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
  }
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

PlanService::~PlanService() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

BatchResult PlanService::run(const std::vector<PlanRequest>& requests) {
  BatchResult result;
  result.outcomes.resize(requests.size());
  const auto start = Clock::now();
  if (!requests.empty()) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      batch_ = &requests;
      outcomes_ = &result.outcomes;
      next_index_ = 0;
      remaining_ = requests.size();
    }
    work_ready_.notify_all();
    std::unique_lock<std::mutex> lock(mutex_);
    batch_done_.wait(lock, [this] { return remaining_ == 0; });
    batch_ = nullptr;
    outcomes_ = nullptr;
  }
  result.stats = summarize(result.outcomes, ms_since(start));
  return result;
}

void PlanService::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_ready_.wait(lock, [this] {
      return shutting_down_ || (batch_ && next_index_ < batch_->size());
    });
    if (shutting_down_) return;

    const std::size_t index = next_index_++;
    const std::vector<PlanRequest>& batch = *batch_;
    std::vector<PlanOutcome>& outcomes = *outcomes_;
    lock.unlock();

    // Planning runs unlocked; each worker writes only its own slot.
    outcomes[index] =
        execute_request(batch[index], index, options_.keep_plans);

    lock.lock();
    if (--remaining_ == 0) batch_done_.notify_all();
  }
}

}  // namespace wagg::runtime
