#ifndef WAGG_DYNAMIC_MUTATION_H
#define WAGG_DYNAMIC_MUTATION_H

#include <cstdint>
#include <string>
#include <vector>

#include "geom/point.h"
#include "mst/incremental.h"

namespace wagg::dynamic {

using NodeId = mst::NodeId;

/// One topology change. Node ids are the stable ids of the owning
/// DynamicPlanner / IncrementalMst (the initial pointset occupies 0..n-1;
/// every add allocates the next id — a trace generator can therefore predict
/// ids without running the planner).
struct Mutation {
  enum class Kind { kAdd, kRemove, kMove };

  Kind kind = Kind::kAdd;
  /// Target of kRemove / kMove; ignored for kAdd.
  NodeId node = -1;
  /// New position for kAdd / kMove; ignored for kRemove.
  geom::Point position{};

  friend bool operator==(const Mutation&, const Mutation&) = default;
};

[[nodiscard]] std::string to_string(Mutation::Kind kind);

/// A seeded churn workload: epochs[e] holds the mutations applied before the
/// e-th replan.
using ChurnTrace = std::vector<std::vector<Mutation>>;

/// How kMove displacements evolve across epochs.
enum class DriftKind {
  /// Independent Gaussian steps (memoryless).
  kGaussian,
  /// Random waypoint: each mobile node walks toward a persistent target at
  /// a fixed speed, drawing a fresh target on arrival — successive moves of
  /// one node are correlated, the classic mobility model.
  kWaypoint,
};

[[nodiscard]] std::string to_string(DriftKind kind);

/// Parameters of the deterministic churn generator.
struct ChurnParams {
  /// Number of epochs (replans); each applies >= 1 mutation.
  std::size_t epochs = 0;
  /// Expected mutations per alive node per epoch; each epoch applies
  /// max(1, round(rate * alive)) mutations.
  double rate = 0.02;
  /// Relative weights of the mutation kind mix (need not sum to 1).
  double add_weight = 1.0;
  double remove_weight = 1.0;
  double move_weight = 1.0;
  /// Standard deviation of a kMove displacement; 0 means 2% of the initial
  /// bounding-box diagonal. For kWaypoint drift this scales the default
  /// step length instead.
  double drift_sigma = 0.0;
  /// Removes are converted to adds when alive count would drop below this.
  std::size_t min_nodes = 3;

  // ---- size-varying schedules ----
  /// Net growth: extra kAdd mutations per alive node per epoch, appended
  /// AFTER the mixed rate-driven draws so legacy (grow == 0) traces keep
  /// their historical random stream byte-identical. Each epoch appends
  /// max(1, round(grow_rate * alive)) adds while grow_rate > 0 — the
  /// instance trends upward even when the mixed draws balance out.
  double grow_rate = 0.0;
  /// Net shrink: extra kRemove mutations per alive node per epoch (same
  /// convention). Shrink removals stop silently at min_nodes instead of
  /// converting to adds — a shrink schedule must never grow the instance.
  double shrink_rate = 0.0;

  // ---- churn realism knobs ----
  /// Fraction of arrivals/departures concentrated in a hotspot disk (0 =
  /// spatially uniform churn). The hotspot center is drawn once per trace
  /// from the seed; hotspot adds land inside the disk, hotspot removes pick
  /// the victim closest to the center.
  double hotspot_fraction = 0.0;
  /// Hotspot disk radius; 0 means 15% of the initial bounding-box diagonal.
  double hotspot_radius = 0.0;
  /// Displacement model for kMove.
  DriftKind drift = DriftKind::kGaussian;
  /// Waypoint step length per selected move; 0 means 4 * the effective
  /// drift sigma. Ignored for kGaussian.
  double waypoint_speed = 0.0;

  /// Throws std::invalid_argument on non-positive epochs/rate, an all-zero
  /// kind mix, negative grow/shrink rates, or out-of-range hotspot/waypoint
  /// knobs.
  void validate() const;

  friend bool operator==(const ChurnParams&, const ChurnParams&) = default;
};

/// Expands a seeded, fully deterministic mutation trace against the initial
/// pointset: adds are uniform in the initial bounding box, moves are
/// Gaussian drifts, removes pick a uniform alive victim; grow/shrink
/// schedules append their net adds/removes after each epoch's mixed draws.
/// The generator tracks id allocation and liveness exactly as
/// DynamicPlanner will, and never removes `sink`. Same
/// (initial, params, seed, sink) -> same trace.
[[nodiscard]] ChurnTrace make_churn_trace(const geom::Pointset& initial,
                                          const ChurnParams& params,
                                          std::uint64_t seed,
                                          NodeId sink = 0);

}  // namespace wagg::dynamic

#endif  // WAGG_DYNAMIC_MUTATION_H
