#ifndef WAGG_DYNAMIC_DYNAMIC_PLANNER_H
#define WAGG_DYNAMIC_DYNAMIC_PLANNER_H

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/planner.h"
#include "dynamic/mutation.h"
#include "geom/linkset.h"
#include "geom/point.h"
#include "mst/incremental.h"
#include "schedule/schedule.h"

namespace wagg::dynamic {

struct DynamicOptions {
  core::PlannerConfig config{};
  /// Dirty-link fraction above which an epoch abandons the localized patch
  /// path and falls back to a full (warm-started) replan.
  double full_replan_fraction = 0.35;
  /// Re-plan every epoch from scratch as well, cross-checking the
  /// incremental plan's validity and recording rate/length deltas.
  bool audit = false;

  void validate() const;
};

/// Wall-clock breakdown of one epoch, milliseconds. audit_ms covers only the
/// from-scratch replan of audit mode, so incremental_ms() is the honest cost
/// of the incremental engine.
struct EpochTimings {
  double mst_ms = 0.0;      ///< incremental MST updates + reorientation
  double conflict_ms = 0.0; ///< conflict-graph rebuild
  double recolor_ms = 0.0;  ///< dirty detection + seeded recoloring
  double repair_ms = 0.0;   ///< slot carry-over + patch repair
  double audit_ms = 0.0;    ///< audit-mode full replan + full verification

  [[nodiscard]] double incremental_ms() const noexcept {
    return mst_ms + conflict_ms + recolor_ms + repair_ms;
  }
};

/// What one epoch did and produced.
struct EpochReport {
  std::size_t epoch = 0;              ///< 0 is the initial full plan
  std::size_t mutations_applied = 0;
  std::size_t num_nodes = 0;
  std::size_t num_links = 0;

  /// Links whose geometry or existence changed (the recolor set).
  std::size_t dirty_links = 0;
  /// True when the epoch ran the full-replan fallback instead of patching.
  bool full_replan = false;

  std::size_t slots = 0;
  /// Final slots carried over untouched from the previous epoch (zero
  /// oracle calls spent on them).
  std::size_t reused_slots = 0;
  /// Final slots produced by patch repair of changed color classes.
  std::size_t touched_slots = 0;
  /// Feasibility-oracle invocations this epoch (the cost driver).
  std::size_t oracle_calls = 0;

  double rate = 0.0;
  /// Structural validity (schedule partitions the links). Feasibility of
  /// every slot is certified by an oracle call on exactly its membership —
  /// either this epoch or, for slots whose membership did not change, a
  /// previous one; audit mode re-checks everything from scratch.
  bool valid = false;

  EpochTimings timings;

  // ---- audit mode only ----
  bool audited = false;
  /// Every slot of the incremental schedule passed a fresh oracle check.
  bool audit_valid = false;
  /// Incremental MST weight matches the from-scratch MST weight.
  bool audit_tree_match = false;
  std::size_t audit_full_slots = 0;  ///< schedule length of the full replan
  double audit_full_rate = 0.0;
  double audit_full_ms = 0.0;        ///< wall clock of the full replan
};

/// Incremental planning session: wraps the paper's pipeline behind a
/// mutation-stream API and maintains a valid aggregation plan across epochs
/// at a cost proportional to the change, not the instance.
///
/// Epoch pipeline:
///   1. mutations -> IncrementalMst (localized tree updates, exact);
///   2. re-orient toward the sink, diff links by stable (sender, receiver)
///      id pairs;
///   3. query conflict rows for ONLY the dirty links (bucket-grid subset
///      queries) and first-fit recolor them, seeding every surviving link
///      with its previous final slot (final slots are independent sets, so
///      the seed is proper by construction);
///   4. carry over slots whose membership is unchanged verbatim (their old
///      oracle certificate applies — no monotonicity assumption), re-check
///      slots that shrank with one oracle call each, and patch-repair
///      classes that gained members (schedule::patch_slot); oracle calls
///      stay proportional to the dirty set.
/// When the dirty fraction exceeds DynamicOptions::full_replan_fraction the
/// epoch falls back to core::schedule_links with a warm-start seed — full
/// repair and verification re-anchor the carried-over validity chain.
///
/// Not thread-safe; one session per thread (runtime::PlanService sessions
/// wrap instances for service use).
class DynamicPlanner {
 public:
  /// Plans the initial epoch (a full replan). The pointset's indices become
  /// stable node ids 0..n-1; options.config.sink names the sink node.
  DynamicPlanner(const geom::Pointset& initial, DynamicOptions options);

  /// Applies one epoch: all mutations, then one incremental replan.
  /// Mutations referencing dead nodes, removing the sink, or shrinking the
  /// instance below 2 nodes throw std::invalid_argument. The plan is left
  /// on the previous epoch; the mutations preceding the bad one stay
  /// applied, and since their dirty tracking is lost with the failed call,
  /// the next successful epoch replans (and re-verifies) from scratch.
  EpochReport apply(std::span<const Mutation> mutations);
  EpochReport apply(const Mutation& mutation) {
    return apply(std::span<const Mutation>(&mutation, 1));
  }

  /// Applies a whole churn trace, one epoch per entry.
  std::vector<EpochReport> apply_trace(const ChurnTrace& trace);

  [[nodiscard]] const EpochReport& last_report() const noexcept {
    return report_;
  }
  [[nodiscard]] std::size_t epoch() const noexcept { return report_.epoch; }
  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return mst_.num_alive();
  }
  [[nodiscard]] NodeId sink() const noexcept { return sink_id_; }
  [[nodiscard]] bool alive(NodeId id) const noexcept { return mst_.alive(id); }
  [[nodiscard]] const DynamicOptions& options() const noexcept {
    return options_;
  }

  /// The current plan, materialized with compact indices (ids[i] is the
  /// stable id of compact node i). Links and slots index into `links`.
  struct Snapshot {
    geom::Pointset points;
    std::vector<NodeId> ids;
    std::int32_t sink = 0;
    geom::LinkSet links;
    schedule::Schedule schedule;
    double rate = 0.0;
  };
  [[nodiscard]] const Snapshot& snapshot() const noexcept { return current_; }

 private:
  using LinkKey = std::uint64_t;
  static LinkKey link_key(NodeId sender, NodeId receiver) noexcept {
    return (static_cast<LinkKey>(static_cast<std::uint32_t>(sender)) << 32) |
           static_cast<LinkKey>(static_cast<std::uint32_t>(receiver));
  }

  /// Replans after the MST is up to date. `touched` holds the node ids
  /// added or moved this epoch; geometry-dirty links are those incident to
  /// them.
  void replan(const std::vector<NodeId>& touched, EpochReport& report);
  void run_audit(EpochReport& report);

  DynamicOptions options_;
  NodeId sink_id_ = 0;
  mst::IncrementalMst mst_;

  /// Previous epoch's final slot of every link, keyed by stable link key.
  /// Every final slot is conflict-independent and oracle-feasible, so this
  /// doubles as a proper coloring seed for the next epoch.
  std::unordered_map<LinkKey, int> slot_of_key_;

  Snapshot current_;
  EpochReport report_;
};

}  // namespace wagg::dynamic

#endif  // WAGG_DYNAMIC_DYNAMIC_PLANNER_H
