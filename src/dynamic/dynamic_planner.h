#ifndef WAGG_DYNAMIC_DYNAMIC_PLANNER_H
#define WAGG_DYNAMIC_DYNAMIC_PLANNER_H

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "conflict/conflict_index.h"
#include "core/planner.h"
#include "dynamic/mutation.h"
#include "geom/link_store.h"
#include "geom/linkset.h"
#include "geom/point.h"
#include "mst/incremental.h"
#include "schedule/schedule.h"
#include "sinr/power.h"

namespace wagg::dynamic {

struct DynamicOptions {
  core::PlannerConfig config{};
  /// Dirty-link fraction above which an epoch abandons the localized patch
  /// path and falls back to a full (warm-started) replan.
  double full_replan_fraction = 0.35;
  /// Re-plan every epoch from scratch as well, cross-checking the
  /// incremental plan's validity and recording rate/length deltas.
  bool audit = false;

  void validate() const;
};

/// Wall-clock breakdown of one epoch, milliseconds. audit_ms covers only the
/// from-scratch replan of audit mode, so incremental_ms() is the honest cost
/// of the incremental engine. power_ms covers on-demand slot-power
/// materialization (slot_powers()), which runs only when a consumer asks.
struct EpochTimings {
  /// Tree-layer cost, split so a dynamic-tree regression is visible
  /// separately from orientation-replay cost:
  ///   mst_update_ms — IncrementalMst point updates (dynamic-tree
  ///                   link/cut/path_max work, grid upkeep, bulk rebuilds);
  ///   orient_ms     — replaying the journaled edge diff onto the
  ///                   LinkStore (rehang flips, length refreshes) plus the
  ///                   dense per-epoch snapshot build.
  double mst_update_ms = 0.0;
  double orient_ms = 0.0;
  /// Total conflict-layer cost: index maintenance + row queries. Split
  /// below so an index-upkeep regression is visible separately from query
  /// cost.
  double conflict_ms = 0.0;
  double conflict_maintain_ms = 0.0;  ///< ConflictIndex add/remove/update
  double conflict_query_ms = 0.0;     ///< dirty-row queries / graph assembly
  double recolor_ms = 0.0;  ///< dirty detection + seeded recoloring
  double repair_ms = 0.0;   ///< slot carry-over + patch repair
  double power_ms = 0.0;    ///< on-demand per-slot power materialization
  double audit_ms = 0.0;    ///< audit-mode full replan + full verification

  /// The whole MST component of the epoch (tree updates + orientation).
  [[nodiscard]] double mst_ms() const noexcept {
    return mst_update_ms + orient_ms;
  }
  [[nodiscard]] double incremental_ms() const noexcept {
    return mst_ms() + conflict_ms + recolor_ms + repair_ms;
  }
};

/// What one epoch did and produced.
struct EpochReport {
  std::size_t epoch = 0;              ///< 0 is the initial full plan
  std::size_t mutations_applied = 0;
  std::size_t num_nodes = 0;
  std::size_t num_links = 0;

  /// Links whose geometry or existence changed (the recolor set).
  std::size_t dirty_links = 0;
  /// True when the epoch ran the full-replan fallback instead of patching.
  bool full_replan = false;

  std::size_t slots = 0;
  /// Final slots carried over untouched from the previous epoch (zero
  /// oracle calls spent on them).
  std::size_t reused_slots = 0;
  /// Final slots produced by patch repair of changed color classes.
  std::size_t touched_slots = 0;
  /// Feasibility-oracle invocations this epoch (the cost driver).
  std::size_t oracle_calls = 0;

  /// slot_powers() bookkeeping: Perron vectors served from the
  /// membership-keyed cache vs computed fresh this epoch.
  std::size_t power_slots_cached = 0;
  std::size_t power_slots_computed = 0;

  double rate = 0.0;
  /// Structural validity (schedule partitions the links). Feasibility of
  /// every slot is certified by an oracle call on exactly its membership —
  /// either this epoch or, for slots whose membership did not change, a
  /// previous one; audit mode re-checks everything from scratch.
  bool valid = false;

  EpochTimings timings;

  // ---- audit mode only ----
  bool audited = false;
  /// Every slot of the incremental schedule passed a fresh oracle check.
  bool audit_valid = false;
  /// Incremental MST weight matches the from-scratch MST weight.
  bool audit_tree_match = false;
  /// The diff-maintained LinkStore orientation equals a from-scratch
  /// re-orientation (same edges, same sink-ward direction, same lengths).
  bool audit_store_match = false;
  /// The persistent ConflictIndex answers every link's conflict row exactly
  /// as a from-scratch bucket-grid query over the same snapshot, AND a
  /// repeat query served entirely from the diff-maintained row cache
  /// returns the same rows (cache ≡ from-scratch equality).
  bool audit_index_match = false;
  std::size_t audit_full_slots = 0;  ///< schedule length of the full replan
  double audit_full_rate = 0.0;
  double audit_full_ms = 0.0;        ///< wall clock of the full replan
};

/// Incremental planning session: wraps the paper's pipeline behind a
/// mutation-stream API and maintains a valid aggregation plan across epochs
/// at a cost proportional to the change, not the instance.
///
/// The cross-epoch source of truth is a geom::LinkStore in id-space: links
/// carry stable 64-bit ids that survive node insertion/removal/movement,
/// tree re-orientations are applied as in-place flips along the rehung
/// chains (no container rebuild), and per-field generation counters mark
/// exactly which links changed. Dense-index pipeline stages (conflict rows,
/// coloring, repair, verification) run on a geom::LinkView snapshot built
/// once per epoch from only the live set — no per-epoch LinkSet
/// reconstruction, no length recomputation, no key remapping.
///
/// Epoch pipeline:
///   1. mutations -> IncrementalMst (localized tree updates, exact), which
///      journals the edge diff;
///   2. the diff is replayed onto the LinkStore: removed edges drop their
///      links, added edges re-root the detached component by reversing the
///      parent chain (one store.flip per hop); links incident to moved
///      nodes refresh their length column;
///   3. a LinkView snapshot is built (dense order = increasing link id) and
///      links are classified dirty iff their store generation advanced
///      since the last plan;
///   4. conflict rows are queried for ONLY the dirty links (bucket-grid
///      subset queries) and first-fit recolored, seeding every surviving
///      link with its previous final slot (read from an id-indexed array);
///   5. slots whose membership is unchanged carry over verbatim (their old
///      oracle certificate applies — no monotonicity assumption), slots
///      that shrank are re-checked with one oracle call each, and classes
///      that gained members are patch-repaired (schedule::patch_slot);
///      oracle calls stay proportional to the dirty set.
/// When the dirty fraction exceeds DynamicOptions::full_replan_fraction the
/// epoch falls back to core::schedule_links with a warm-start seed — full
/// repair and verification re-anchor the carried-over validity chain. Bulk
/// mutation batches likewise rebuild the tree wholesale and reconcile the
/// store against it (surviving pairs keep their ids, so the warm start
/// still applies).
///
/// Not thread-safe; one session per thread (runtime::PlanService sessions
/// wrap instances for service use).
class DynamicPlanner : private geom::LinkStoreListener {
 public:
  /// Plans the initial epoch (a full replan). The pointset's indices become
  /// stable node ids 0..n-1; options.config.sink names the sink node.
  DynamicPlanner(const geom::Pointset& initial, DynamicOptions options);

  // The planner registers itself as the store's mutation listener (the
  // conflict index rides the mutation path); moving it would leave the
  // store pointing at the old address.
  DynamicPlanner(const DynamicPlanner&) = delete;
  DynamicPlanner& operator=(const DynamicPlanner&) = delete;
  DynamicPlanner(DynamicPlanner&&) = delete;
  DynamicPlanner& operator=(DynamicPlanner&&) = delete;

  /// Applies one epoch: all mutations, then one incremental replan.
  /// Mutations referencing dead nodes, removing the sink, or shrinking the
  /// instance below 2 nodes throw std::invalid_argument. The plan is left
  /// on the previous epoch; the mutations preceding the bad one stay
  /// applied, and since their dirty tracking is lost with the failed call,
  /// the next successful epoch replans (and re-verifies) from scratch.
  EpochReport apply(std::span<const Mutation> mutations);
  EpochReport apply(const Mutation& mutation) {
    return apply(std::span<const Mutation>(&mutation, 1));
  }

  /// Applies a whole churn trace, one epoch per entry.
  std::vector<EpochReport> apply_trace(const ChurnTrace& trace);

  [[nodiscard]] const EpochReport& last_report() const noexcept {
    return report_;
  }
  [[nodiscard]] std::size_t epoch() const noexcept { return report_.epoch; }
  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return mst_.num_alive();
  }
  [[nodiscard]] NodeId sink() const noexcept { return sink_id_; }
  [[nodiscard]] bool alive(NodeId id) const noexcept { return mst_.alive(id); }
  [[nodiscard]] const DynamicOptions& options() const noexcept {
    return options_;
  }

  /// Read access to the id-space link store (stable link ids, generation
  /// counters). Links reference stable node ids; snapshot().links holds the
  /// dense per-epoch view of the same data.
  [[nodiscard]] const geom::LinkStore& link_store() const noexcept {
    return store_;
  }

  /// The persistent conflict index maintained over the store's mutation
  /// stream (the planner is the store's listener). Always mirrors the live
  /// link set; epochs query dirty rows against it with zero rebuild.
  [[nodiscard]] const conflict::ConflictIndex& conflict_index()
      const noexcept {
    return conflict_index_;
  }

  /// The current plan, materialized with compact indices (ids[i] is the
  /// stable id of compact node i). Links and slots index into `links`;
  /// links.ids() exposes the stable link ids of the store.
  struct Snapshot {
    geom::Pointset points;
    std::vector<NodeId> ids;
    std::int32_t sink = 0;
    geom::LinkSet links;
    schedule::Schedule schedule;
    double rate = 0.0;
  };
  [[nodiscard]] const Snapshot& snapshot() const noexcept { return current_; }

  /// kGlobal only: the per-slot Perron power vectors of the current
  /// schedule (aligned with snapshot().schedule.slots), materialized on
  /// demand. Vectors are cached across epochs keyed by the slot's stable-id
  /// membership and validated against the store's generation counters, so
  /// carried-over slots skip power_control_feasible entirely. The cost and
  /// hit counts land in last_report().timings.power_ms /
  /// power_slots_cached / power_slots_computed. Throws std::logic_error for
  /// fixed-power modes (their assignment is sinr::*_power, not per-slot).
  [[nodiscard]] const std::vector<sinr::PowerAssignment>& slot_powers();

 private:
  static constexpr NodeId kNoParent = -2;  ///< broken / dead / unset

  // ---- geom::LinkStoreListener (the store -> conflict-index bridge):
  // every store mutation lands in the index with positions resolved through
  // the maintained MST, so the index never needs a per-epoch rebuild. ----
  void on_add(geom::LinkId id) override;
  void on_remove(geom::LinkId id) override;
  void on_flip(geom::LinkId id) override;
  void on_set_length(geom::LinkId id) override;
  void on_touch(geom::LinkId id) override;

  /// Replans after the MST is up to date. `touched` holds the node ids
  /// added or moved this epoch; geometry-dirty links are those incident to
  /// them.
  void replan(const std::vector<NodeId>& touched, EpochReport& report);
  void run_audit(EpochReport& report);

  /// Grows the id-indexed node arrays to cover `id`.
  void ensure_node(NodeId id);
  /// Replays a journaled edge diff onto the store: removals break parent
  /// chains, additions re-root detached components via in-place flips.
  void apply_structural_diff(const mst::MstDelta& delta);
  /// From-scratch orientation (BFS in id-space) reconciled against the
  /// store: surviving pairs keep their ids, orientations are flipped in
  /// place, stale links dropped, missing ones added, lengths refreshed.
  void reconcile_full();
  /// Marks the tree links incident to `touched` nodes geometry-dirty and
  /// refreshes their lengths.
  void refresh_touched(const std::vector<NodeId>& touched);
  /// Re-roots the detached component containing `child` onto `parent`
  /// (sink side), reversing the old parent chain with in-place flips.
  void rehang(NodeId child, NodeId parent);
  /// True iff the parent chain from `node` currently reaches the sink.
  [[nodiscard]] bool reaches_sink(NodeId node) const;
  /// Drops all carried plan state (slot seeds, caches) and forces the next
  /// epoch through reconcile_full + full replan.
  void invalidate_carried_state();
  /// Pushes the finished epoch into the global obs::Registry: report
  /// counters verbatim, engine lifetime counters as deltas against the
  /// marks below, stage timings into per-epoch histograms.
  void publish_epoch_metrics(const EpochReport& report);

  DynamicOptions options_;
  NodeId sink_id_ = 0;
  mst::IncrementalMst mst_;

  /// The mutation-aware id-space link container (the tree's directed links,
  /// child -> parent).
  geom::LinkStore store_;
  /// Persistent per-length-class conflict grids over the live links,
  /// maintained through the store's listener hooks.
  conflict::ConflictIndex conflict_index_;
  // ---- id-space orientation state, indexed by NodeId ----
  std::vector<NodeId> parent_;          ///< kNoParent dead/broken; -1 sink
  std::vector<geom::LinkId> uplink_;    ///< node's upward link, kNoLink none
  std::vector<std::vector<NodeId>> tree_adj_;  ///< current tree neighbors

  /// Previous epoch's final slot of every link, indexed by stable LinkId
  /// (-1 unknown). Every final slot is conflict-independent and
  /// oracle-feasible, so this doubles as a proper coloring seed for the
  /// next epoch.
  std::vector<int> slot_of_;
  /// Member count per previous final slot (including links that died
  /// since) — membership-unchanged certification needs exact counts.
  std::vector<std::size_t> prev_slot_count_;
  /// Store clock at the end of the last successful replan; links whose
  /// generation exceeds it are dirty.
  std::uint64_t plan_clock_ = 0;
  /// Set after construction, bulk rebuilds, or failed epochs: the next
  /// replan must rebuild orientation from scratch.
  bool force_reconcile_ = true;

  // ---- slot-power materialization cache (kGlobal) ----
  struct CachedSlotPower {
    std::vector<geom::LinkId> members;  ///< sorted stable ids
    std::vector<double> log2_power;     ///< aligned with members
    std::uint64_t clock_mark = 0;       ///< store clock at computation
    bool feasible = false;
  };
  std::unordered_map<std::uint64_t, CachedSlotPower> power_cache_;
  std::vector<sinr::PowerAssignment> slot_powers_;
  bool slot_powers_current_ = false;

  Snapshot current_;
  EpochReport report_;

  /// Telemetry marks: the engines' lifetime counters as of the last
  /// publish_epoch_metrics — diffing against them attributes work per epoch
  /// without putting a single atomic in the engines' hot loops.
  mst::IncrementalMstStats mst_stats_mark_;
  conflict::ConflictIndexStats conflict_stats_mark_;
};

}  // namespace wagg::dynamic

#endif  // WAGG_DYNAMIC_DYNAMIC_PLANNER_H
