#include "dynamic/mutation.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.h"

namespace wagg::dynamic {

std::string to_string(Mutation::Kind kind) {
  switch (kind) {
    case Mutation::Kind::kAdd:
      return "add";
    case Mutation::Kind::kRemove:
      return "remove";
    case Mutation::Kind::kMove:
      return "move";
  }
  return "?";
}

void ChurnParams::validate() const {
  if (epochs == 0) {
    throw std::invalid_argument("ChurnParams: epochs must be positive");
  }
  if (!(rate > 0.0)) {
    throw std::invalid_argument("ChurnParams: rate must be positive");
  }
  if (add_weight < 0.0 || remove_weight < 0.0 || move_weight < 0.0 ||
      add_weight + remove_weight + move_weight <= 0.0) {
    throw std::invalid_argument(
        "ChurnParams: kind weights must be non-negative with positive sum");
  }
  if (drift_sigma < 0.0) {
    throw std::invalid_argument(
        "ChurnParams: drift_sigma must be >= 0 (0 selects the auto default)");
  }
  if (min_nodes < 2) {
    throw std::invalid_argument("ChurnParams: min_nodes must be >= 2");
  }
}

ChurnTrace make_churn_trace(const geom::Pointset& initial,
                            const ChurnParams& params, std::uint64_t seed,
                            NodeId sink) {
  params.validate();
  if (initial.size() < 2) {
    throw std::invalid_argument("make_churn_trace: need >= 2 initial points");
  }
  if (sink < 0 || static_cast<std::size_t>(sink) >= initial.size()) {
    throw std::invalid_argument("make_churn_trace: sink out of range");
  }

  // Initial bounding box: adds land inside it, keeping the density regime of
  // the instance family roughly intact.
  double min_x = initial[0].x, max_x = initial[0].x;
  double min_y = initial[0].y, max_y = initial[0].y;
  for (const auto& p : initial) {
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }
  const double diag =
      std::hypot(max_x - min_x, max_y - min_y);
  const double sigma =
      params.drift_sigma > 0.0 ? params.drift_sigma
                               : std::max(diag, 1e-9) * 0.02;

  // Mirror of the planner's id allocation and liveness.
  std::vector<geom::Point> position(initial.begin(), initial.end());
  std::vector<NodeId> alive(initial.size());
  for (std::size_t i = 0; i < alive.size(); ++i) {
    alive[i] = static_cast<NodeId>(i);
  }

  util::Rng rng(seed ^ 0x85ebca6b0f00dULL);
  const double total_weight =
      params.add_weight + params.remove_weight + params.move_weight;

  ChurnTrace trace;
  trace.reserve(params.epochs);
  for (std::size_t epoch = 0; epoch < params.epochs; ++epoch) {
    const auto count = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::llround(params.rate * static_cast<double>(alive.size()))));
    std::vector<Mutation> mutations;
    mutations.reserve(count);
    for (std::size_t m = 0; m < count; ++m) {
      double pick = rng.uniform(0.0, total_weight);
      Mutation::Kind kind;
      if (pick < params.add_weight) {
        kind = Mutation::Kind::kAdd;
      } else if (pick < params.add_weight + params.remove_weight) {
        kind = Mutation::Kind::kRemove;
      } else {
        kind = Mutation::Kind::kMove;
      }
      if (kind == Mutation::Kind::kRemove && alive.size() <= params.min_nodes) {
        kind = Mutation::Kind::kAdd;  // keep the instance plannable
      }

      Mutation mutation;
      mutation.kind = kind;
      switch (kind) {
        case Mutation::Kind::kAdd: {
          mutation.position = {rng.uniform(min_x, max_x),
                               min_y == max_y ? min_y
                                              : rng.uniform(min_y, max_y)};
          mutation.node = static_cast<NodeId>(position.size());
          position.push_back(mutation.position);
          alive.push_back(mutation.node);
          break;
        }
        case Mutation::Kind::kRemove: {
          // Uniform victim among alive non-sink nodes.
          std::size_t slot;
          do {
            slot = static_cast<std::size_t>(rng.below(alive.size()));
          } while (alive[slot] == sink);
          mutation.node = alive[slot];
          alive.erase(alive.begin() + static_cast<std::ptrdiff_t>(slot));
          break;
        }
        case Mutation::Kind::kMove: {
          const auto slot = static_cast<std::size_t>(rng.below(alive.size()));
          mutation.node = alive[slot];
          const auto& from = position[static_cast<std::size_t>(mutation.node)];
          mutation.position = {from.x + rng.normal() * sigma,
                               min_y == max_y
                                   ? from.y
                                   : from.y + rng.normal() * sigma};
          position[static_cast<std::size_t>(mutation.node)] =
              mutation.position;
          break;
        }
      }
      mutations.push_back(mutation);
    }
    trace.push_back(std::move(mutations));
  }
  return trace;
}

}  // namespace wagg::dynamic
