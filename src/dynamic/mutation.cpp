#include "dynamic/mutation.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/rng.h"

namespace wagg::dynamic {

std::string to_string(Mutation::Kind kind) {
  switch (kind) {
    case Mutation::Kind::kAdd:
      return "add";
    case Mutation::Kind::kRemove:
      return "remove";
    case Mutation::Kind::kMove:
      return "move";
  }
  return "?";
}

std::string to_string(DriftKind kind) {
  switch (kind) {
    case DriftKind::kGaussian:
      return "gauss";
    case DriftKind::kWaypoint:
      return "waypoint";
  }
  return "?";
}

void ChurnParams::validate() const {
  if (epochs == 0) {
    throw std::invalid_argument("ChurnParams: epochs must be positive");
  }
  if (!(rate > 0.0)) {
    throw std::invalid_argument("ChurnParams: rate must be positive");
  }
  if (add_weight < 0.0 || remove_weight < 0.0 || move_weight < 0.0 ||
      add_weight + remove_weight + move_weight <= 0.0) {
    throw std::invalid_argument(
        "ChurnParams: kind weights must be non-negative with positive sum");
  }
  if (drift_sigma < 0.0) {
    throw std::invalid_argument(
        "ChurnParams: drift_sigma must be >= 0 (0 selects the auto default)");
  }
  if (grow_rate < 0.0 || shrink_rate < 0.0) {
    throw std::invalid_argument(
        "ChurnParams: grow/shrink rates must be >= 0");
  }
  if (min_nodes < 2) {
    throw std::invalid_argument("ChurnParams: min_nodes must be >= 2");
  }
  if (!(hotspot_fraction >= 0.0 && hotspot_fraction <= 1.0)) {
    throw std::invalid_argument(
        "ChurnParams: hotspot_fraction must lie in [0, 1]");
  }
  if (hotspot_radius < 0.0) {
    throw std::invalid_argument(
        "ChurnParams: hotspot_radius must be >= 0 (0 selects the auto "
        "default)");
  }
  if (waypoint_speed < 0.0) {
    throw std::invalid_argument(
        "ChurnParams: waypoint_speed must be >= 0 (0 selects the auto "
        "default)");
  }
}

ChurnTrace make_churn_trace(const geom::Pointset& initial,
                            const ChurnParams& params, std::uint64_t seed,
                            NodeId sink) {
  params.validate();
  if (initial.size() < 2) {
    throw std::invalid_argument("make_churn_trace: need >= 2 initial points");
  }
  if (sink < 0 || static_cast<std::size_t>(sink) >= initial.size()) {
    throw std::invalid_argument("make_churn_trace: sink out of range");
  }

  // Initial bounding box: adds land inside it, keeping the density regime of
  // the instance family roughly intact.
  double min_x = initial[0].x, max_x = initial[0].x;
  double min_y = initial[0].y, max_y = initial[0].y;
  for (const auto& p : initial) {
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }
  const double diag =
      std::hypot(max_x - min_x, max_y - min_y);
  const double sigma =
      params.drift_sigma > 0.0 ? params.drift_sigma
                               : std::max(diag, 1e-9) * 0.02;
  const double hotspot_radius = params.hotspot_radius > 0.0
                                    ? params.hotspot_radius
                                    : std::max(diag, 1e-9) * 0.15;
  const double waypoint_step =
      params.waypoint_speed > 0.0 ? params.waypoint_speed : 4.0 * sigma;

  // Mirror of the planner's id allocation and liveness.
  std::vector<geom::Point> position(initial.begin(), initial.end());
  std::vector<NodeId> alive(initial.size());
  for (std::size_t i = 0; i < alive.size(); ++i) {
    alive[i] = static_cast<NodeId>(i);
  }
  // Per-node waypoint targets (kWaypoint drift): -inf x marks "none yet".
  constexpr double kNoWaypoint = -std::numeric_limits<double>::infinity();
  std::vector<geom::Point> waypoint(initial.size(),
                                    geom::Point{kNoWaypoint, 0.0});

  util::Rng rng(seed ^ 0x85ebca6b0f00dULL);
  const double total_weight =
      params.add_weight + params.remove_weight + params.move_weight;

  // Hotspot center: one deterministic draw per trace. Skipped entirely at
  // fraction 0 so legacy (spatially uniform) traces keep their historical
  // random stream byte-identical.
  geom::Point hotspot{0.0, 0.0};
  if (params.hotspot_fraction > 0.0) {
    hotspot = {rng.uniform(min_x, max_x),
               min_y == max_y ? min_y : rng.uniform(min_y, max_y)};
  }

  // Event constructors shared by the mixed rate-driven draws and the
  // grow/shrink tails, so both produce identical distributions (and the
  // legacy stream stays byte-identical when grow/shrink are off).
  const auto make_add = [&](bool in_hotspot) {
    Mutation mutation;
    mutation.kind = Mutation::Kind::kAdd;
    if (in_hotspot) {
      // Uniform in the hotspot disk (rejection-free: polar with
      // sqrt-radius), clamped to the instance bounding box.
      const double angle = rng.uniform(0.0, 6.283185307179586);
      const double r = hotspot_radius * std::sqrt(rng.uniform());
      mutation.position = {
          std::clamp(hotspot.x + r * std::cos(angle), min_x, max_x),
          min_y == max_y
              ? min_y
              : std::clamp(hotspot.y + r * std::sin(angle), min_y, max_y)};
    } else {
      mutation.position = {rng.uniform(min_x, max_x),
                           min_y == max_y ? min_y
                                          : rng.uniform(min_y, max_y)};
    }
    mutation.node = static_cast<NodeId>(position.size());
    position.push_back(mutation.position);
    alive.push_back(mutation.node);
    waypoint.push_back({kNoWaypoint, 0.0});
    return mutation;
  };
  const auto make_remove = [&](bool in_hotspot) {
    Mutation mutation;
    mutation.kind = Mutation::Kind::kRemove;
    std::size_t slot;
    if (in_hotspot) {
      // The victim nearest the hotspot center (sink excepted) — a
      // depletion front, the failure mode hotspot churn models.
      slot = alive.size();
      double best = std::numeric_limits<double>::infinity();
      for (std::size_t s = 0; s < alive.size(); ++s) {
        if (alive[s] == sink) continue;
        const double d2 = geom::squared_distance(
            position[static_cast<std::size_t>(alive[s])], hotspot);
        if (d2 < best) {
          best = d2;
          slot = s;
        }
      }
    } else {
      // Uniform victim among alive non-sink nodes.
      do {
        slot = static_cast<std::size_t>(rng.below(alive.size()));
      } while (alive[slot] == sink);
    }
    mutation.node = alive[slot];
    alive.erase(alive.begin() + static_cast<std::ptrdiff_t>(slot));
    return mutation;
  };
  // Hotspot coin of one arrival/departure event (deterministic).
  const auto hotspot_coin = [&] {
    return params.hotspot_fraction > 0.0 &&
           rng.uniform() < params.hotspot_fraction;
  };

  ChurnTrace trace;
  trace.reserve(params.epochs);
  for (std::size_t epoch = 0; epoch < params.epochs; ++epoch) {
    const auto count = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::llround(params.rate * static_cast<double>(alive.size()))));
    std::vector<Mutation> mutations;
    mutations.reserve(count);
    for (std::size_t m = 0; m < count; ++m) {
      double pick = rng.uniform(0.0, total_weight);
      Mutation::Kind kind;
      if (pick < params.add_weight) {
        kind = Mutation::Kind::kAdd;
      } else if (pick < params.add_weight + params.remove_weight) {
        kind = Mutation::Kind::kRemove;
      } else {
        kind = Mutation::Kind::kMove;
      }
      if (kind == Mutation::Kind::kRemove && alive.size() <= params.min_nodes) {
        kind = Mutation::Kind::kAdd;  // keep the instance plannable
      }

      // Arrival/departure hotspot: this event is hotspot-local when the
      // (deterministic) coin says so.
      const bool in_hotspot =
          (kind == Mutation::Kind::kAdd || kind == Mutation::Kind::kRemove) &&
          hotspot_coin();

      Mutation mutation;
      mutation.kind = kind;
      switch (kind) {
        case Mutation::Kind::kAdd: {
          mutation = make_add(in_hotspot);
          break;
        }
        case Mutation::Kind::kRemove: {
          mutation = make_remove(in_hotspot);
          break;
        }
        case Mutation::Kind::kMove: {
          const auto slot = static_cast<std::size_t>(rng.below(alive.size()));
          mutation.node = alive[slot];
          const auto node = static_cast<std::size_t>(mutation.node);
          const auto& from = position[node];
          if (params.drift == DriftKind::kWaypoint) {
            // Walk toward the persistent target; redraw it on arrival so
            // successive moves of one node stay correlated.
            auto& target = waypoint[node];
            if (target.x == kNoWaypoint ||
                geom::distance(from, target) <= waypoint_step) {
              target = {rng.uniform(min_x, max_x),
                        min_y == max_y ? min_y : rng.uniform(min_y, max_y)};
            }
            const double dist = geom::distance(from, target);
            const double step = std::min(waypoint_step, dist);
            mutation.position =
                dist <= 0.0 ? from
                            : geom::Point{from.x + (target.x - from.x) *
                                                       step / dist,
                                          from.y + (target.y - from.y) *
                                                       step / dist};
          } else {
            mutation.position = {from.x + rng.normal() * sigma,
                                 min_y == max_y
                                     ? from.y
                                     : from.y + rng.normal() * sigma};
          }
          position[node] = mutation.position;
          break;
        }
      }
      mutations.push_back(mutation);
    }

    // Size-varying schedules: net adds/removes appended AFTER the mixed
    // draws, so a grow/shrink of 0 leaves the legacy random stream (and
    // thus every historical trace) byte-identical. Counts track the alive
    // set as it stood after the mixed draws of this epoch.
    if (params.grow_rate > 0.0) {
      const auto extra = std::max<std::size_t>(
          1, static_cast<std::size_t>(std::llround(
                 params.grow_rate * static_cast<double>(alive.size()))));
      for (std::size_t g = 0; g < extra; ++g) {
        mutations.push_back(make_add(hotspot_coin()));
      }
    }
    if (params.shrink_rate > 0.0) {
      const auto extra = std::max<std::size_t>(
          1, static_cast<std::size_t>(std::llround(
                 params.shrink_rate * static_cast<double>(alive.size()))));
      for (std::size_t s = 0; s < extra; ++s) {
        // A shrink schedule bottoms out instead of bouncing back into adds.
        if (alive.size() <= params.min_nodes) break;
        mutations.push_back(make_remove(hotspot_coin()));
      }
    }
    trace.push_back(std::move(mutations));
  }
  return trace;
}

}  // namespace wagg::dynamic
