#include "dynamic/dynamic_planner.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "conflict/fgraph.h"
#include "mst/tree.h"
#include "schedule/repair.h"
#include "schedule/verify.h"
#include "util/clock.h"

namespace wagg::dynamic {

using util::Clock;
using util::ms_since;

void DynamicOptions::validate() const {
  config.validate();
  if (config.tree != core::TreeKind::kMst) {
    throw std::invalid_argument(
        "DynamicOptions: only TreeKind::kMst supports incremental updates");
  }
  if (!(full_replan_fraction > 0.0 && full_replan_fraction <= 1.0)) {
    throw std::invalid_argument(
        "DynamicOptions: full_replan_fraction must lie in (0, 1]");
  }
}

DynamicPlanner::DynamicPlanner(const geom::Pointset& initial,
                               DynamicOptions options)
    : options_(std::move(options)), mst_(initial) {
  options_.validate();
  if (initial.size() < 2) {
    throw std::invalid_argument("DynamicPlanner: need >= 2 initial points");
  }
  if (options_.config.sink < 0 ||
      static_cast<std::size_t>(options_.config.sink) >= initial.size()) {
    throw std::invalid_argument("DynamicPlanner: sink out of range");
  }
  sink_id_ = options_.config.sink;

  EpochReport report;
  report.epoch = 0;
  replan({}, report);
  if (options_.audit) run_audit(report);
  report_ = report;
}

EpochReport DynamicPlanner::apply(std::span<const Mutation> mutations) {
  EpochReport report;
  report.epoch = report_.epoch + 1;
  report.mutations_applied = mutations.size();

  const auto mst_start = Clock::now();
  // Past ~n/16 mutations one batch Prim beats per-mutation maintenance
  // (per-update cost is ~n log n against a single n^2/2 rebuild), so bulk
  // epochs defer tree updates and rebuild once.
  const bool bulk =
      mutations.size() >= std::max<std::size_t>(8, mst_.num_alive() / 16);
  std::vector<NodeId> touched;
  touched.reserve(mutations.size());
  try {
    for (const auto& mutation : mutations) {
      switch (mutation.kind) {
        case Mutation::Kind::kAdd:
          touched.push_back(bulk ? mst_.add_point_deferred(mutation.position)
                                 : mst_.add_point(mutation.position));
          break;
        case Mutation::Kind::kRemove:
          if (mutation.node == sink_id_) {
            throw std::invalid_argument(
                "DynamicPlanner: the sink cannot be removed");
          }
          if (mst_.num_alive() <= 2) {
            throw std::invalid_argument(
                "DynamicPlanner: removal would drop below 2 nodes");
          }
          if (bulk) {
            mst_.remove_point_deferred(mutation.node);
          } else {
            mst_.remove_point(mutation.node);
          }
          break;
        case Mutation::Kind::kMove:
          if (bulk) {
            mst_.move_point_deferred(mutation.node, mutation.position);
          } else {
            mst_.move_point(mutation.node, mutation.position);
          }
          touched.push_back(mutation.node);
          break;
      }
    }
  } catch (...) {
    // Applied prefix stays applied (documented); the tree must still be
    // consistent for the next epoch, which deferred updates postponed.
    if (bulk) mst_.rebuild();
    // The prefix's touched nodes are lost with this frame, so carried slot
    // certificates can no longer tell clean links from moved ones. Drop
    // them: the next epoch replans (and re-verifies) from scratch.
    slot_of_key_.clear();
    throw;
  }
  if (bulk) mst_.rebuild();
  report.timings.mst_ms = ms_since(mst_start);

  replan(touched, report);
  if (options_.audit) run_audit(report);
  report_ = report;
  return report;
}

std::vector<EpochReport> DynamicPlanner::apply_trace(const ChurnTrace& trace) {
  std::vector<EpochReport> reports;
  reports.reserve(trace.size());
  for (const auto& epoch_mutations : trace) {
    reports.push_back(apply(epoch_mutations));
  }
  return reports;
}

void DynamicPlanner::replan(const std::vector<NodeId>& touched,
                            EpochReport& report) {
  const auto& config = options_.config;

  // ---- re-orient the maintained tree toward the sink ----
  auto stage_start = Clock::now();
  auto ids = mst_.alive_ids();
  geom::Pointset points;
  points.reserve(ids.size());
  for (const auto id : ids) points.push_back(mst_.position(id));
  const auto sink_it = std::lower_bound(ids.begin(), ids.end(), sink_id_);
  const auto sink_idx = static_cast<std::int32_t>(sink_it - ids.begin());
  auto tree =
      mst::orient_toward_sink(points, mst_.compact_edges(), sink_idx);
  const geom::LinkSet& links = tree.links;
  const std::size_t n = links.size();

  std::vector<LinkKey> keys;
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys.push_back(link_key(ids[static_cast<std::size_t>(links.link(i).sender)],
                            ids[static_cast<std::size_t>(
                                links.link(i).receiver)]));
  }
  report.timings.mst_ms += ms_since(stage_start);

  // ---- dirty detection (no conflict graph needed: the pairwise conflict
  // relation of two geometrically unchanged links cannot change) ----
  stage_start = Clock::now();
  std::unordered_set<NodeId> touched_set(touched.begin(), touched.end());
  // Fixed-power modes with ambient noise couple every power to the global
  // max link length; any change then invalidates every link.
  const bool noise_coupled = config.power_mode != core::PowerMode::kGlobal &&
                             config.sinr.noise > 0.0;
  std::vector<bool> dirty(n, false);
  std::size_t dirty_count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto sender_id = ids[static_cast<std::size_t>(links.link(i).sender)];
    const auto receiver_id =
        ids[static_cast<std::size_t>(links.link(i).receiver)];
    dirty[i] = noise_coupled || !slot_of_key_.count(keys[i]) ||
               touched_set.count(sender_id) || touched_set.count(receiver_id);
    if (dirty[i]) ++dirty_count;
  }
  report.dirty_links = dirty_count;
  report.num_nodes = points.size();
  report.num_links = n;
  // Dirty detection counts toward recolor on both paths.
  report.timings.recolor_ms += ms_since(stage_start);

  const bool full =
      slot_of_key_.empty() ||
      static_cast<double>(dirty_count) >
          options_.full_replan_fraction * static_cast<double>(n);
  report.full_replan = full;

  schedule::Schedule final_schedule;
  if (full) {
    // ---- fallback: full replan, warm-started from the surviving slots so
    // the coloring stays stable; repair + verification run from scratch and
    // re-anchor the carried-over validity chain ----
    stage_start = Clock::now();
    core::StageTimings stage_timings;
    core::WarmStart warm;
    const core::WarmStart* warm_ptr = nullptr;
    if (!slot_of_key_.empty()) {
      warm.seed_colors.assign(n, -1);
      for (std::size_t i = 0; i < n; ++i) {
        if (!dirty[i]) warm.seed_colors[i] = slot_of_key_.at(keys[i]);
      }
      warm_ptr = &warm;
    }
    report.timings.recolor_ms += ms_since(stage_start);
    auto scheduled =
        core::schedule_links(links, config, &stage_timings, warm_ptr);
    report.timings.conflict_ms += stage_timings.conflict_ms;
    report.timings.recolor_ms += stage_timings.coloring_ms;
    report.timings.repair_ms +=
        stage_timings.repair_ms + stage_timings.verify_ms;
    report.touched_slots = scheduled.schedule.length();
    report.valid = scheduled.verification.ok();
    final_schedule = std::move(scheduled.schedule);
  } else {
    // ---- localized path ----
    // Conflict adjacency is needed only for the dirty links: the relation
    // between two unchanged links cannot change, and clean links keep their
    // colors. The bucket-grid subset query makes this O(n) index work plus
    // output-sensitive rows instead of a full graph rebuild.
    stage_start = Clock::now();
    std::vector<std::size_t> dirty_indices;
    dirty_indices.reserve(dirty_count);
    for (std::size_t i = 0; i < n; ++i) {
      if (dirty[i]) dirty_indices.push_back(i);
    }
    if (config.order == core::ColoringOrder::kDecreasingLength) {
      dirty_indices = schedule::pack_order(links, dirty_indices);
    } else {
      std::sort(dirty_indices.begin(), dirty_indices.end(),
                [&](std::size_t a, std::size_t b) {
                  if (links.length(a) != links.length(b)) {
                    return links.length(a) < links.length(b);
                  }
                  return a < b;
                });
    }
    const auto spec = core::spec_for_mode(config);
    const auto neighbor_rows =
        conflict::conflict_neighbors_bucketed(links, spec, dirty_indices);
    report.timings.conflict_ms += ms_since(stage_start);

    // Seeded recolor: surviving links keep their final slot (final slots
    // are independent sets, so the seed is proper); only dirty links are
    // first-fit colored against their conflict rows.
    stage_start = Clock::now();
    std::vector<int> seed(n, -1);
    std::vector<std::size_t> prev_size;  // keys per previous slot index
    for (std::size_t i = 0; i < n; ++i) {
      if (!dirty[i]) seed[i] = slot_of_key_.at(keys[i]);
    }
    for (const auto& [key, slot] : slot_of_key_) {
      const auto s = static_cast<std::size_t>(slot);
      if (s >= prev_size.size()) prev_size.resize(s + 1, 0);
      ++prev_size[s];
    }
    const auto recolored =
        coloring::greedy_recolor_rows(dirty_indices, neighbor_rows, seed);
    report.timings.recolor_ms += ms_since(stage_start);

    // Slot carry-over + patch repair. Soundness does NOT assume oracle
    // monotonicity under member departure (the power-control oracle's
    // iterative bound is conservative and need not be monotone): a slot's
    // verdict is carried over only when its membership is UNCHANGED (the
    // oracle is deterministic, so the old certificate applies verbatim);
    // any class that shrank is re-checked — and repacked if the oracle now
    // rejects it — before serving as a kept sub-slot or a final slot.
    stage_start = Clock::now();
    const auto oracle = core::oracle_for_mode(links, config);
    std::vector<std::vector<std::size_t>> classes(
        static_cast<std::size_t>(recolored.num_colors));
    for (std::size_t i = 0; i < n; ++i) {
      classes[static_cast<std::size_t>(recolored.color_of[i])].push_back(i);
    }
    for (std::size_t c = 0; c < classes.size(); ++c) {
      auto& members = classes[c];
      if (members.empty()) continue;
      std::vector<std::size_t> kept;
      std::vector<std::size_t> loose;
      for (const auto i : members) {
        (dirty[i] ? loose : kept).push_back(i);
      }
      // Unchanged membership <=> every previous member survived clean; the
      // old certificate then applies verbatim (oracles are deterministic).
      // A shrunk class is handled by patch_slot's uncertified-kept path:
      // one fresh check, or a repack if the conservative oracle now
      // rejects it.
      const bool kept_certified =
          kept.empty() || (c < prev_size.size() && kept.size() == prev_size[c]);
      if (loose.empty() && kept_certified) {
        ++report.reused_slots;
        final_schedule.slots.push_back(std::move(kept));
        continue;
      }
      auto patch = schedule::patch_slot(links, {std::move(kept)}, loose,
                                        oracle, kept_certified);
      report.oracle_calls += patch.oracle_calls;
      report.touched_slots += patch.sub_slots.size();
      for (auto& sub : patch.sub_slots) {
        final_schedule.slots.push_back(std::move(sub));
      }
    }
    report.valid = schedule::is_partition(final_schedule, n);
    report.timings.repair_ms += ms_since(stage_start);
  }

  report.slots = final_schedule.length();
  report.rate = final_schedule.empty() ? 0.0 : final_schedule.coloring_rate();

  // ---- persist state for the next epoch ----
  slot_of_key_.clear();
  slot_of_key_.reserve(n * 2);
  for (std::size_t s = 0; s < final_schedule.slots.size(); ++s) {
    for (const auto i : final_schedule.slots[s]) {
      slot_of_key_[keys[i]] = static_cast<int>(s);
    }
  }
  // `links` (a reference into `tree`) and `ids` are dead past this point,
  // so the snapshot can steal them instead of copying O(n) state.
  current_.points = std::move(points);
  current_.ids = std::move(ids);
  current_.sink = sink_idx;
  current_.links = std::move(tree.links);
  current_.schedule = std::move(final_schedule);
  current_.rate = report.rate;
}

void DynamicPlanner::run_audit(EpochReport& report) {
  const auto audit_start = Clock::now();
  auto config = options_.config;
  config.sink = current_.sink;  // compact index of the stable sink id

  const auto full_start = Clock::now();
  const auto full = core::plan_aggregation(current_.points, config);
  report.audit_full_ms = ms_since(full_start);
  report.audit_full_slots = full.schedule().length();
  report.audit_full_rate = full.rate();

  // From-scratch feasibility check of the incremental schedule.
  const auto oracle = core::oracle_for_mode(current_.links, config);
  const auto verification =
      schedule::verify_schedule(current_.links, current_.schedule, oracle);
  report.audit_valid = verification.ok();

  // The incremental MST must weigh exactly as much as a from-scratch MST.
  double incremental_weight = 0.0;
  for (std::size_t i = 0; i < current_.links.size(); ++i) {
    incremental_weight += current_.links.length(i);
  }
  double full_weight = 0.0;
  for (std::size_t i = 0; i < full.tree.links.size(); ++i) {
    full_weight += full.tree.links.length(i);
  }
  report.audit_tree_match =
      std::abs(incremental_weight - full_weight) <=
      1e-9 * std::max(1.0, std::abs(full_weight));

  report.audited = true;
  report.timings.audit_ms = ms_since(audit_start);
}

}  // namespace wagg::dynamic
