#include "dynamic/dynamic_planner.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "conflict/fgraph.h"
#include "mst/tree.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "schedule/repair.h"
#include "schedule/verify.h"
#include "sinr/feasibility.h"
#include "util/clock.h"

namespace wagg::dynamic {

using util::Clock;
using util::ms_since;

namespace {

/// FNV-1a over a sorted id list — the slot-membership key of the power
/// cache (collisions are disambiguated by comparing the stored members).
std::uint64_t membership_key(std::span<const geom::LinkId> ids) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const auto id : ids) {
    auto v = static_cast<std::uint64_t>(id);
    for (int shift = 0; shift < 64; shift += 8) {
      h ^= (v >> shift) & 0xff;
      h *= 0x100000001b3ULL;
    }
  }
  return h;
}

/// The planner's registry handles, resolved once (registration takes the
/// registry mutex; after that every epoch publishes against stable
/// references — no lookups, no locks). Registry::reset() zeroes values but
/// keeps registrations, so the references stay valid across metric windows.
struct PlannerMetrics {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& epochs = reg.counter("dynamic.epochs");
  obs::Counter& mutations = reg.counter("dynamic.mutations");
  obs::Counter& dirty_links = reg.counter("dynamic.dirty_links");
  obs::Counter& full_replans = reg.counter("dynamic.full_replans");
  obs::Counter& oracle_calls = reg.counter("dynamic.oracle_calls");
  obs::Counter& reused_slots = reg.counter("dynamic.reused_slots");
  obs::Counter& touched_slots = reg.counter("dynamic.touched_slots");
  obs::Counter& audit_failures = reg.counter("dynamic.audit_failures");
  obs::Counter& delta_added = reg.counter("mst.delta_added");
  obs::Counter& delta_removed = reg.counter("mst.delta_removed");
  obs::Counter& rebuilds = reg.counter("mst.rebuilds");
  obs::Counter& path_max_swaps = reg.counter("mst.path_max_swaps");
  obs::Counter& boruvka_rounds = reg.counter("mst.boruvka_rounds");
  obs::Counter& grid_fallbacks = reg.counter("mst.grid_fallback_sweeps");
  obs::Counter& rows_queried = reg.counter("conflict.rows_queried");
  obs::Counter& dedupe_hits = reg.counter("conflict.dedupe_hits");
  obs::Counter& cells_pruned = reg.counter("conflict.cells_pruned");
  obs::Counter& row_cache_hits = reg.counter("conflict.row_cache_hits");
  obs::Counter& row_cache_misses = reg.counter("conflict.row_cache_misses");
  obs::Counter& row_cache_patches = reg.counter("conflict.row_cache_patches");
  obs::Counter& row_cache_invalidations =
      reg.counter("conflict.row_cache_invalidations");
  obs::Counter& row_cache_evictions =
      reg.counter("conflict.row_cache_evictions");
  obs::Counter& power_hits = reg.counter("power.slot_cache_hits");
  obs::Counter& power_misses = reg.counter("power.slot_cache_misses");
  obs::Histogram& epoch_ms = reg.histogram("dynamic.epoch_ms");
  obs::Histogram& mst_ms = reg.histogram("dynamic.mst_ms");
  obs::Histogram& conflict_ms = reg.histogram("dynamic.conflict_ms");
  obs::Histogram& recolor_ms = reg.histogram("dynamic.recolor_ms");
  obs::Histogram& repair_ms = reg.histogram("dynamic.repair_ms");
  obs::Histogram& power_ms = reg.histogram("dynamic.power_ms");
  obs::Histogram& dirty_per_epoch =
      reg.histogram("dynamic.dirty_links_per_epoch");
};

PlannerMetrics& planner_metrics() {
  static PlannerMetrics metrics;
  return metrics;
}

}  // namespace

void DynamicOptions::validate() const {
  config.validate();
  if (config.tree != core::TreeKind::kMst) {
    throw std::invalid_argument(
        "DynamicOptions: only TreeKind::kMst supports incremental updates");
  }
  if (!(full_replan_fraction > 0.0 && full_replan_fraction <= 1.0)) {
    throw std::invalid_argument(
        "DynamicOptions: full_replan_fraction must lie in (0, 1]");
  }
}

void DynamicPlanner::on_add(geom::LinkId id) {
  conflict_index_.add(id, mst_.position(store_.sender(id)),
                      mst_.position(store_.receiver(id)), store_.length(id));
}

void DynamicPlanner::on_remove(geom::LinkId id) { conflict_index_.remove(id); }

void DynamicPlanner::on_flip(geom::LinkId id) {
  // An orientation flip leaves the undirected endpoint pair — the conflict
  // metric's only input — untouched; the index needs no update.
  (void)id;
}

void DynamicPlanner::on_set_length(geom::LinkId id) {
  conflict_index_.update(id, mst_.position(store_.sender(id)),
                         mst_.position(store_.receiver(id)),
                         store_.length(id));
}

void DynamicPlanner::on_touch(geom::LinkId id) {
  // touch marks geometry context changes; the endpoints may have moved even
  // when the cached length survived, so refresh the index cells.
  on_set_length(id);
}

DynamicPlanner::DynamicPlanner(const geom::Pointset& initial,
                               DynamicOptions options)
    : options_(std::move(options)), mst_(initial) {
  options_.validate();
  store_.set_listener(this);
  if (initial.size() < 2) {
    throw std::invalid_argument("DynamicPlanner: need >= 2 initial points");
  }
  if (options_.config.sink < 0 ||
      static_cast<std::size_t>(options_.config.sink) >= initial.size()) {
    throw std::invalid_argument("DynamicPlanner: sink out of range");
  }
  sink_id_ = options_.config.sink;

  EpochReport report;
  report.epoch = 0;
  {
    obs::Span epoch_span("epoch");
    replan({}, report);
    if (options_.audit) run_audit(report);
  }
  publish_epoch_metrics(report);
  report_ = report;
}

EpochReport DynamicPlanner::apply(std::span<const Mutation> mutations) {
  EpochReport report;
  report.epoch = report_.epoch + 1;
  report.mutations_applied = mutations.size();

  obs::Span epoch_span("epoch");
  obs::StageSpan mst_span("mst_update");
  const auto mst_start = Clock::now();
  // Past ~n/8 mutations one batch Prim beats per-mutation maintenance, so
  // bulk epochs defer tree updates and rebuild once. The threshold rose
  // with the dynamic-tree engine: per-update cost is now polylog plus the
  // occasional component walk, so localized patching stays ahead of the
  // n^2/2 rebuild for much denser mutation batches than the merge-Kruskal
  // engine could absorb.
  const bool bulk =
      mutations.size() >= std::max<std::size_t>(8, mst_.num_alive() / 8);
  std::vector<NodeId> touched;
  touched.reserve(mutations.size());
  try {
    for (const auto& mutation : mutations) {
      switch (mutation.kind) {
        case Mutation::Kind::kAdd:
          touched.push_back(bulk ? mst_.add_point_deferred(mutation.position)
                                 : mst_.add_point(mutation.position));
          break;
        case Mutation::Kind::kRemove:
          if (mutation.node == sink_id_) {
            throw std::invalid_argument(
                "DynamicPlanner: the sink cannot be removed");
          }
          if (mst_.num_alive() <= 2) {
            throw std::invalid_argument(
                "DynamicPlanner: removal would drop below 2 nodes");
          }
          if (bulk) {
            mst_.remove_point_deferred(mutation.node);
          } else {
            mst_.remove_point(mutation.node);
          }
          break;
        case Mutation::Kind::kMove:
          if (bulk) {
            mst_.move_point_deferred(mutation.node, mutation.position);
          } else {
            mst_.move_point(mutation.node, mutation.position);
          }
          touched.push_back(mutation.node);
          break;
      }
    }
  } catch (...) {
    // Applied prefix stays applied (documented). The prefix's touched nodes
    // are lost with this frame, so carried slot certificates can no longer
    // tell clean links from moved ones, and the store's lengths may be
    // stale. Drop everything FIRST — the carried state must be invalidated
    // even if the recovery rebuild below throws too — so the next epoch
    // reconciles the store and replans (and re-verifies) from scratch.
    invalidate_carried_state();
    // The tree must still be consistent for the next epoch: bulk epochs
    // postponed their updates entirely, and even a per-mutation update can
    // die partway through its in-place dtree/adjacency/grid edits — so
    // rebuild unconditionally (error path; the O(n^2) Prim is immaterial).
    mst_.rebuild();
    throw;
  }
  if (bulk) mst_.rebuild();
  mst_span.close();
  report.timings.mst_update_ms = ms_since(mst_start);

  try {
    replan(touched, report);
    if (options_.audit) run_audit(report);
  } catch (...) {
    // replan may have mutated the store/index/plan partway (or run_audit
    // died after the plan advanced); either way the carried validity chain
    // is broken, so drop it before propagating — the next successful epoch
    // re-anchors from scratch.
    invalidate_carried_state();
    throw;
  }
  publish_epoch_metrics(report);
  report_ = report;
  return report;
}

std::vector<EpochReport> DynamicPlanner::apply_trace(const ChurnTrace& trace) {
  std::vector<EpochReport> reports;
  reports.reserve(trace.size());
  for (const auto& epoch_mutations : trace) {
    reports.push_back(apply(epoch_mutations));
  }
  return reports;
}

void DynamicPlanner::invalidate_carried_state() {
  std::fill(slot_of_.begin(), slot_of_.end(), -1);
  prev_slot_count_.clear();
  power_cache_.clear();
  slot_powers_.clear();
  slot_powers_current_ = false;
  force_reconcile_ = true;
}

void DynamicPlanner::ensure_node(NodeId id) {
  const auto needed = static_cast<std::size_t>(id) + 1;
  if (parent_.size() < needed) {
    parent_.resize(needed, kNoParent);
    uplink_.resize(needed, geom::kNoLink);
    tree_adj_.resize(needed);
  }
}

bool DynamicPlanner::reaches_sink(NodeId node) const {
  NodeId cur = node;
  for (std::size_t steps = 0; steps <= parent_.size(); ++steps) {
    if (cur == sink_id_) return true;
    const NodeId up = parent_[static_cast<std::size_t>(cur)];
    if (up < 0) return false;  // broken root (or inconsistent state)
    cur = up;
  }
  throw std::logic_error("DynamicPlanner: parent-chain cycle detected");
}

void DynamicPlanner::rehang(NodeId child, NodeId parent) {
  // Attach the detached component at `child` and re-root it there: walk the
  // old parent chain up to the broken root, reversing one pointer — and
  // flipping one store link in place — per hop. Cost is the path length,
  // not the component (let alone the instance).
  geom::LinkId new_link = store_.add(
      child, parent,
      geom::distance(mst_.position(child), mst_.position(parent)));
  NodeId cur = child;
  NodeId new_parent = parent;
  for (std::size_t steps = 0; steps <= parent_.size(); ++steps) {
    const NodeId old_parent = parent_[static_cast<std::size_t>(cur)];
    const geom::LinkId old_link = uplink_[static_cast<std::size_t>(cur)];
    parent_[static_cast<std::size_t>(cur)] = new_parent;
    uplink_[static_cast<std::size_t>(cur)] = new_link;
    if (old_parent == kNoParent) return;  // reached the broken root
    if (old_parent < 0) {
      throw std::logic_error(
          "DynamicPlanner::rehang: chain ran into the sink — the attached "
          "component already contained it");
    }
    store_.flip(old_link);  // was cur -> old_parent, now old_parent -> cur
    new_parent = cur;
    new_link = old_link;
    cur = old_parent;
  }
  throw std::logic_error("DynamicPlanner::rehang: parent-chain cycle");
}

void DynamicPlanner::apply_structural_diff(const mst::MstDelta& delta) {
  const auto& final_edges = mst_.edges();  // sorted by (a, b), a < b
  const auto in_tree = [&](NodeId a, NodeId b) {
    const mst::IdEdge probe = a < b ? mst::IdEdge{a, b} : mst::IdEdge{b, a};
    return std::binary_search(
        final_edges.begin(), final_edges.end(), probe,
        [](const mst::IdEdge& x, const mst::IdEdge& y) {
          if (x.a != y.a) return x.a < y.a;
          return x.b < y.b;
        });
  };

  // The journal over-approximates: an edge removed and re-added within the
  // epoch nets out. Filter to the exact diff against the store (which still
  // mirrors the pre-epoch tree), deduplicating repeats.
  std::vector<std::pair<NodeId, NodeId>> removed;
  std::vector<std::uint64_t> seen;
  for (const auto& e : delta.removed) {
    if (store_.find_pair(e.a, e.b) == geom::kNoLink) continue;
    if (in_tree(e.a, e.b)) continue;
    const auto key = geom::LinkStore::pair_key(e.a, e.b);
    if (std::find(seen.begin(), seen.end(), key) != seen.end()) continue;
    seen.push_back(key);
    removed.emplace_back(e.a, e.b);
  }
  std::vector<std::pair<NodeId, NodeId>> pending;
  seen.clear();
  for (const auto& e : delta.added) {
    if (!in_tree(e.a, e.b)) continue;
    if (store_.find_pair(e.a, e.b) != geom::kNoLink) continue;
    const auto key = geom::LinkStore::pair_key(e.a, e.b);
    if (std::find(seen.begin(), seen.end(), key) != seen.end()) continue;
    seen.push_back(key);
    pending.emplace_back(e.a, e.b);
  }

  // Removals first: break the child side's parent pointer. The store drops
  // the link; the component below keeps its orientation toward the (now
  // broken) root.
  for (const auto& [a, b] : removed) {
    auto& adj_a = tree_adj_[static_cast<std::size_t>(a)];
    auto& adj_b = tree_adj_[static_cast<std::size_t>(b)];
    const auto it_a = std::find(adj_a.begin(), adj_a.end(), b);
    const auto it_b = std::find(adj_b.begin(), adj_b.end(), a);
    if (it_a == adj_a.end() || it_b == adj_b.end()) {
      throw std::logic_error(
          "DynamicPlanner: removed edge missing from adjacency");
    }
    adj_a.erase(it_a);
    adj_b.erase(it_b);
    NodeId child;
    if (parent_[static_cast<std::size_t>(a)] == b) {
      child = a;
    } else if (parent_[static_cast<std::size_t>(b)] == a) {
      child = b;
    } else {
      throw std::logic_error(
          "DynamicPlanner: removed edge inconsistent with orientation");
    }
    store_.remove(uplink_[static_cast<std::size_t>(child)]);
    uplink_[static_cast<std::size_t>(child)] = geom::kNoLink;
    parent_[static_cast<std::size_t>(child)] = kNoParent;
  }

  for (const auto& [a, b] : pending) {
    ensure_node(a > b ? a : b);
    tree_adj_[static_cast<std::size_t>(a)].push_back(b);
    tree_adj_[static_cast<std::size_t>(b)].push_back(a);
  }

  // Reattach detached components. An added edge is processable once one
  // endpoint reaches the sink through already-settled structure; chained
  // reconnections settle over multiple passes (the final tree is connected,
  // so each pass resolves at least one edge).
  while (!pending.empty()) {
    bool progressed = false;
    for (std::size_t k = 0; k < pending.size();) {
      const auto [a, b] = pending[k];
      if (reaches_sink(a)) {
        rehang(b, a);
      } else if (reaches_sink(b)) {
        rehang(a, b);
      } else {
        ++k;
        continue;
      }
      progressed = true;
      pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(k));
    }
    if (!progressed) {
      throw std::logic_error(
          "DynamicPlanner: edge diff left the tree disconnected");
    }
  }
}

void DynamicPlanner::reconcile_full() {
  // From-scratch orientation in id-space (BFS from the sink), reconciled
  // against the store so surviving pairs keep their stable ids: stale links
  // are dropped, mis-directed ones flipped in place, missing ones added,
  // and every length refreshed (bit-identical values do not bump
  // generations, so clean links stay clean).
  const auto ids = mst_.alive_ids();
  if (!ids.empty()) ensure_node(ids.back());
  for (const auto id : ids) {
    parent_[static_cast<std::size_t>(id)] = kNoParent;
    uplink_[static_cast<std::size_t>(id)] = geom::kNoLink;
    tree_adj_[static_cast<std::size_t>(id)].clear();
  }
  for (const auto& e : mst_.edges()) {
    tree_adj_[static_cast<std::size_t>(e.a)].push_back(e.b);
    tree_adj_[static_cast<std::size_t>(e.b)].push_back(e.a);
  }

  parent_[static_cast<std::size_t>(sink_id_)] = -1;
  std::vector<NodeId> frontier{sink_id_};
  std::size_t head = 0;
  while (head < frontier.size()) {
    const NodeId v = frontier[head++];
    for (const NodeId w : tree_adj_[static_cast<std::size_t>(v)]) {
      if (parent_[static_cast<std::size_t>(w)] != kNoParent) continue;
      parent_[static_cast<std::size_t>(w)] = v;
      frontier.push_back(w);
    }
  }
  if (frontier.size() != ids.size()) {
    throw std::logic_error(
        "DynamicPlanner: maintained tree does not span the alive nodes");
  }

  for (const auto link : store_.live_ids()) {
    const NodeId s = store_.sender(link);
    const NodeId r = store_.receiver(link);
    const bool live_pair = mst_.alive(s) && mst_.alive(r);
    if (live_pair && parent_[static_cast<std::size_t>(s)] == r) {
      uplink_[static_cast<std::size_t>(s)] = link;
    } else if (live_pair && parent_[static_cast<std::size_t>(r)] == s) {
      store_.flip(link);
      uplink_[static_cast<std::size_t>(r)] = link;
    } else {
      store_.remove(link);
    }
  }
  for (const auto id : ids) {
    if (id == sink_id_) continue;
    const NodeId up = parent_[static_cast<std::size_t>(id)];
    const double len =
        geom::distance(mst_.position(id), mst_.position(up));
    if (uplink_[static_cast<std::size_t>(id)] == geom::kNoLink) {
      uplink_[static_cast<std::size_t>(id)] = store_.add(id, up, len);
    } else {
      store_.set_length(uplink_[static_cast<std::size_t>(id)], len);
    }
  }

  // Re-seed the conflict index from the reconciled truth. The listener kept
  // it structurally in sync above, but a reconcile can follow a FAILED epoch
  // whose touched-node list died with the exception frame — a node may have
  // moved while its uplink length stayed bit-identical, in which case the
  // set_length refresh above fires no event and the index would keep the
  // endpoint's OLD position (wrong grid cell, wrong distance prune). This
  // path is already O(n), so the rebuild is asymptotically free.
  conflict_index_.clear();
  for (const auto link : store_.live_ids()) {
    conflict_index_.add(link, mst_.position(store_.sender(link)),
                        mst_.position(store_.receiver(link)),
                        store_.length(link));
  }
}

void DynamicPlanner::refresh_touched(const std::vector<NodeId>& touched) {
  for (const NodeId v : touched) {
    if (!mst_.alive(v)) continue;  // added/moved, then removed in-batch
    for (const NodeId u : tree_adj_[static_cast<std::size_t>(v)]) {
      const NodeId child = parent_[static_cast<std::size_t>(u)] == v ? u : v;
      const geom::LinkId link = uplink_[static_cast<std::size_t>(child)];
      const NodeId up = parent_[static_cast<std::size_t>(child)];
      store_.set_length(
          link, geom::distance(mst_.position(child), mst_.position(up)));
      // The length alone cannot express a moved endpoint (SINR distances to
      // every other link shifted even when the length survived), so bump
      // the generation unconditionally.
      store_.touch(link);
    }
  }
}

void DynamicPlanner::replan(const std::vector<NodeId>& touched,
                            EpochReport& report) {
  const auto& config = options_.config;

  // ---- bring the id-space store in line with the maintained tree ----
  // Conflict-index upkeep rides the store's listener hooks inside this
  // stage; its accumulated-timer delta is carved out of orient_ms below so
  // the conflict stage owns the full conflict-layer cost.
  const double maintain_mark = conflict_index_.stats().maintain_ms;
  obs::StageSpan stage_span("orient");
  auto stage_start = Clock::now();
  const auto delta = mst_.take_delta();
  {
    auto& metrics = planner_metrics();
    metrics.delta_added.add(delta.added.size());
    metrics.delta_removed.add(delta.removed.size());
    if (delta.rebuilt) metrics.rebuilds.add();
  }
  if (force_reconcile_ || delta.rebuilt) {
    reconcile_full();
    force_reconcile_ = false;
  } else {
    apply_structural_diff(delta);
  }
  refresh_touched(touched);

  // ---- dense per-epoch snapshot (increasing-id order) ----
  auto ids = mst_.alive_ids();
  geom::Pointset points;
  points.reserve(ids.size());
  for (const auto id : ids) points.push_back(mst_.position(id));
  std::vector<std::int32_t> node_index(
      ids.empty() ? 0 : static_cast<std::size_t>(ids.back()) + 1, -1);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    node_index[static_cast<std::size_t>(ids[i])] =
        static_cast<std::int32_t>(i);
  }
  const auto sink_it = std::lower_bound(ids.begin(), ids.end(), sink_id_);
  const auto sink_idx = static_cast<std::int32_t>(sink_it - ids.begin());
  geom::LinkSet links(store_.snapshot(points, node_index));
  const std::size_t n = links.size();
  const double maintain_ms =
      conflict_index_.stats().maintain_ms - maintain_mark;
  report.timings.conflict_maintain_ms += maintain_ms;
  report.timings.conflict_ms += maintain_ms;
  report.timings.orient_ms += ms_since(stage_start) - maintain_ms;
  stage_span.next("dirty_detect");

  // ---- dirty detection via generation counters (no conflict graph
  // needed: the pairwise conflict relation of two geometrically unchanged
  // links cannot change) ----
  stage_start = Clock::now();
  // Fixed-power modes with ambient noise couple every power to the global
  // max link length; any change then invalidates every link.
  const bool noise_coupled = config.power_mode != core::PowerMode::kGlobal &&
                             config.sinr.noise > 0.0;
  if (slot_of_.size() < store_.capacity()) {
    slot_of_.resize(store_.capacity(), -1);
  }
  std::vector<bool> dirty(n, false);
  std::size_t dirty_count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto id = static_cast<std::size_t>(links.id_of(i));
    dirty[i] = noise_coupled || slot_of_[id] < 0 ||
               store_.generation(links.id_of(i)) > plan_clock_;
    if (dirty[i]) ++dirty_count;
  }
  report.dirty_links = dirty_count;
  report.num_nodes = points.size();
  report.num_links = n;
  // Dirty detection counts toward recolor on both paths.
  report.timings.recolor_ms += ms_since(stage_start);

  const bool full =
      prev_slot_count_.empty() ||
      static_cast<double>(dirty_count) >
          options_.full_replan_fraction * static_cast<double>(n);
  report.full_replan = full;

  schedule::Schedule final_schedule;
  if (full) {
    // ---- fallback: full replan, warm-started from the surviving slots so
    // the coloring stays stable; repair + verification run from scratch and
    // re-anchor the carried-over validity chain ----
    stage_span.next("full_replan");
    stage_start = Clock::now();
    core::StageTimings stage_timings;
    core::WarmStart warm;
    const core::WarmStart* warm_ptr = nullptr;
    if (!prev_slot_count_.empty()) {
      warm.seed_colors.assign(n, -1);
      for (std::size_t i = 0; i < n; ++i) {
        if (!dirty[i]) warm.seed_colors[i] = slot_of_[links.id_of(i)];
      }
      warm_ptr = &warm;
    }
    report.timings.recolor_ms += ms_since(stage_start);
    auto scheduled = core::schedule_links(links, config, &stage_timings,
                                          warm_ptr, &conflict_index_);
    report.timings.conflict_ms += stage_timings.conflict_ms;
    report.timings.conflict_query_ms += stage_timings.conflict_ms;
    report.timings.recolor_ms += stage_timings.coloring_ms;
    report.timings.repair_ms +=
        stage_timings.repair_ms + stage_timings.verify_ms;
    report.touched_slots = scheduled.schedule.length();
    report.valid = scheduled.verification.ok();
    final_schedule = std::move(scheduled.schedule);
  } else {
    // ---- localized path ----
    // Conflict adjacency is needed only for the dirty links: the relation
    // between two unchanged links cannot change, and clean links keep their
    // colors. The persistent index answers those rows against its standing
    // per-class grids — output-sensitive queries with ZERO per-epoch
    // rebuild (the O(n) grid construction the from-scratch subset query
    // pays every call).
    stage_span.next("conflict_query");
    stage_start = Clock::now();
    std::vector<std::size_t> dirty_indices;
    dirty_indices.reserve(dirty_count);
    for (std::size_t i = 0; i < n; ++i) {
      if (dirty[i]) dirty_indices.push_back(i);
    }
    if (config.order == core::ColoringOrder::kDecreasingLength) {
      dirty_indices = schedule::pack_order(links, dirty_indices);
    } else {
      std::sort(dirty_indices.begin(), dirty_indices.end(),
                [&](std::size_t a, std::size_t b) {
                  if (links.length(a) != links.length(b)) {
                    return links.length(a) < links.length(b);
                  }
                  return a < b;
                });
    }
    const auto spec = core::spec_for_mode(config);
    const auto neighbor_rows =
        conflict_index_.neighbors(links, spec, dirty_indices);
    const double query_ms = ms_since(stage_start);
    report.timings.conflict_ms += query_ms;
    report.timings.conflict_query_ms += query_ms;

    // Seeded recolor: surviving links keep their final slot (final slots
    // are independent sets, so the seed is proper); only dirty links are
    // first-fit colored against their conflict rows.
    stage_span.next("recolor");
    stage_start = Clock::now();
    std::vector<int> seed(n, -1);
    for (std::size_t i = 0; i < n; ++i) {
      if (!dirty[i]) seed[i] = slot_of_[links.id_of(i)];
    }
    const auto recolored =
        coloring::greedy_recolor_rows(dirty_indices, neighbor_rows, seed);
    report.timings.recolor_ms += ms_since(stage_start);

    // Slot carry-over + patch repair. Soundness does NOT assume oracle
    // monotonicity under member departure (the power-control oracle's
    // iterative bound is conservative and need not be monotone): a slot's
    // verdict is carried over only when its membership is UNCHANGED (the
    // oracle is deterministic, so the old certificate applies verbatim);
    // any class that shrank is re-checked — and repacked if the oracle now
    // rejects it — before serving as a kept sub-slot or a final slot.
    stage_span.next("repair");
    stage_start = Clock::now();
    const auto oracle = core::oracle_for_mode(links, config);
    std::vector<std::vector<std::size_t>> classes(
        static_cast<std::size_t>(recolored.num_colors));
    for (std::size_t i = 0; i < n; ++i) {
      classes[static_cast<std::size_t>(recolored.color_of[i])].push_back(i);
    }
    for (std::size_t c = 0; c < classes.size(); ++c) {
      auto& members = classes[c];
      if (members.empty()) continue;
      std::vector<std::size_t> kept;
      std::vector<std::size_t> loose;
      for (const auto i : members) {
        (dirty[i] ? loose : kept).push_back(i);
      }
      // Unchanged membership <=> every previous member survived clean; the
      // old certificate then applies verbatim (oracles are deterministic).
      // A shrunk class is handled by patch_slot's uncertified-kept path:
      // one fresh check, or a repack if the conservative oracle now
      // rejects it.
      const bool kept_certified =
          kept.empty() || (c < prev_slot_count_.size() &&
                           kept.size() == prev_slot_count_[c]);
      if (loose.empty() && kept_certified) {
        ++report.reused_slots;
        final_schedule.slots.push_back(std::move(kept));
        continue;
      }
      auto patch = schedule::patch_slot(links, {std::move(kept)}, loose,
                                        oracle, kept_certified);
      report.oracle_calls += patch.oracle_calls;
      report.touched_slots += patch.sub_slots.size();
      for (auto& sub : patch.sub_slots) {
        final_schedule.slots.push_back(std::move(sub));
      }
    }
    report.valid = schedule::is_partition(final_schedule, n);
    report.timings.repair_ms += ms_since(stage_start);
  }

  stage_span.close();
  report.slots = final_schedule.length();
  report.rate = final_schedule.empty() ? 0.0 : final_schedule.coloring_rate();

  // ---- persist state for the next epoch (id-indexed arrays: no key
  // remapping, no hashing) ----
  prev_slot_count_.assign(final_schedule.slots.size(), 0);
  for (std::size_t s = 0; s < final_schedule.slots.size(); ++s) {
    prev_slot_count_[s] = final_schedule.slots[s].size();
    for (const auto i : final_schedule.slots[s]) {
      slot_of_[static_cast<std::size_t>(links.id_of(i))] =
          static_cast<int>(s);
    }
  }
  plan_clock_ = store_.clock();
  slot_powers_current_ = false;
  current_.points = std::move(points);
  current_.ids = std::move(ids);
  current_.sink = sink_idx;
  current_.links = std::move(links);
  current_.schedule = std::move(final_schedule);
  current_.rate = report.rate;
}

const std::vector<sinr::PowerAssignment>& DynamicPlanner::slot_powers() {
  if (options_.config.power_mode != core::PowerMode::kGlobal) {
    throw std::logic_error(
        "DynamicPlanner::slot_powers: fixed-power modes use sinr::*_power, "
        "not per-slot Perron vectors");
  }
  if (slot_powers_current_) return slot_powers_;
  obs::Span span("power");
  const auto start = Clock::now();
  const auto& links = current_.links;
  const auto link_ids = links.ids();  // increasing (store snapshot order)
  const auto dense_of = [&](geom::LinkId id) {
    const auto it = std::lower_bound(link_ids.begin(), link_ids.end(), id);
    return static_cast<std::size_t>(it - link_ids.begin());
  };

  slot_powers_.clear();
  slot_powers_.reserve(current_.schedule.slots.size());
  std::vector<std::uint64_t> used_keys;
  std::vector<geom::LinkId> members;
  for (const auto& slot : current_.schedule.slots) {
    members.clear();
    for (const auto i : slot) members.push_back(links.id_of(i));
    std::sort(members.begin(), members.end());
    const auto key = membership_key(members);
    used_keys.push_back(key);

    auto it = power_cache_.find(key);
    bool hit = it != power_cache_.end() && it->second.members == members;
    if (hit) {
      // Generations certify the members' geometry is untouched since the
      // vector was computed; any change invalidates the entry.
      for (const auto id : members) {
        if (store_.generation(id) > it->second.clock_mark) {
          hit = false;
          break;
        }
      }
    }
    if (!hit) {
      const auto pc =
          sinr::power_control_feasible(links, slot, options_.config.sinr);
      CachedSlotPower entry;
      entry.members = members;
      entry.clock_mark = store_.clock();
      entry.feasible = pc.feasible;
      if (pc.feasible) {
        // Re-align from slot order to sorted-member order for storage.
        std::vector<std::pair<geom::LinkId, double>> by_id;
        by_id.reserve(slot.size());
        for (std::size_t a = 0; a < slot.size(); ++a) {
          by_id.emplace_back(links.id_of(slot[a]), pc.log2_power[a]);
        }
        std::sort(by_id.begin(), by_id.end());
        entry.log2_power.reserve(by_id.size());
        for (const auto& [id, p] : by_id) entry.log2_power.push_back(p);
      }
      it = power_cache_.insert_or_assign(key, std::move(entry)).first;
      ++report_.power_slots_computed;
      planner_metrics().power_misses.add();
    } else {
      ++report_.power_slots_cached;
      planner_metrics().power_hits.add();
    }

    const auto& entry = it->second;
    if (!entry.feasible) {
      slot_powers_.emplace_back(std::vector<double>(links.size(), 0.0),
                                "infeasible-slot");
      continue;
    }
    std::vector<double> dense(links.size(), 0.0);
    for (std::size_t a = 0; a < entry.members.size(); ++a) {
      dense[dense_of(entry.members[a])] = entry.log2_power[a];
    }
    slot_powers_.emplace_back(std::move(dense), "power-control");
  }

  // Retain only the current schedule's entries so the cache tracks the
  // session instead of its history.
  std::sort(used_keys.begin(), used_keys.end());
  std::erase_if(power_cache_, [&](const auto& kv) {
    return !std::binary_search(used_keys.begin(), used_keys.end(), kv.first);
  });

  slot_powers_current_ = true;
  const double elapsed = ms_since(start);
  report_.timings.power_ms += elapsed;
  planner_metrics().power_ms.record(elapsed);
  return slot_powers_;
}

void DynamicPlanner::run_audit(EpochReport& report) {
  obs::Span span("audit");
  const auto audit_start = Clock::now();
  auto config = options_.config;
  config.sink = current_.sink;  // compact index of the stable sink id

  const auto full_start = Clock::now();
  const auto full = core::plan_aggregation(current_.points, config);
  report.audit_full_ms = ms_since(full_start);
  report.audit_full_slots = full.schedule().length();
  report.audit_full_rate = full.rate();

  // From-scratch feasibility check of the incremental schedule.
  const auto oracle = core::oracle_for_mode(current_.links, config);
  const auto verification =
      schedule::verify_schedule(current_.links, current_.schedule, oracle);
  report.audit_valid = verification.ok();

  // The incremental MST must weigh exactly as much as a from-scratch MST.
  double incremental_weight = 0.0;
  for (std::size_t i = 0; i < current_.links.size(); ++i) {
    incremental_weight += current_.links.length(i);
  }
  double full_weight = 0.0;
  for (std::size_t i = 0; i < full.tree.links.size(); ++i) {
    full_weight += full.tree.links.length(i);
  }
  report.audit_tree_match =
      std::abs(incremental_weight - full_weight) <=
      1e-9 * std::max(1.0, std::abs(full_weight));

  // The diff-maintained store must equal a from-scratch re-orientation of
  // the maintained tree: same directed pairs, same lengths (bit-identical —
  // both sides run geom::distance on the same coordinates).
  auto oriented =
      mst::orient_toward_sink(current_.points, mst_.compact_edges(),
                              current_.sink);
  bool store_match =
      oriented.links.size() == store_.num_live() &&
      store_.num_live() == current_.links.size();
  for (std::size_t i = 0; store_match && i < oriented.links.size(); ++i) {
    const NodeId s = current_.ids[static_cast<std::size_t>(
        oriented.links.link(i).sender)];
    const NodeId r = current_.ids[static_cast<std::size_t>(
        oriented.links.link(i).receiver)];
    const geom::LinkId link = store_.find_pair(s, r);
    store_match = link != geom::kNoLink && store_.sender(link) == s &&
                  store_.receiver(link) == r &&
                  store_.length(link) == oriented.links.length(i);
  }
  report.audit_store_match = store_match;

  // The maintained conflict index must answer every link's row exactly as a
  // from-scratch bucket-grid query over the same snapshot — the standing
  // grids never drift from the live geometry. The first call materializes
  // every row it misses; the second is then answered from the diff-patched
  // row cache, so equality of the pair proves cached rows never drift from
  // a from-scratch recomputation either.
  std::vector<std::size_t> all_links(current_.links.size());
  std::iota(all_links.begin(), all_links.end(), std::size_t{0});
  const auto spec = core::spec_for_mode(config);
  const auto index_rows =
      conflict_index_.neighbors(current_.links, spec, all_links);
  report.audit_index_match =
      index_rows ==
          conflict::conflict_neighbors_bucketed(current_.links, spec,
                                                all_links) &&
      index_rows == conflict_index_.neighbors(current_.links, spec,
                                              all_links);

  report.audited = true;
  report.timings.audit_ms = ms_since(audit_start);
  if (!(report.audit_valid && report.audit_tree_match &&
        report.audit_store_match && report.audit_index_match)) {
    planner_metrics().audit_failures.add();
  }
}

void DynamicPlanner::publish_epoch_metrics(const EpochReport& report) {
  auto& metrics = planner_metrics();
  metrics.epochs.add();
  metrics.mutations.add(report.mutations_applied);
  metrics.dirty_links.add(report.dirty_links);
  if (report.full_replan) metrics.full_replans.add();
  metrics.oracle_calls.add(report.oracle_calls);
  metrics.reused_slots.add(report.reused_slots);
  metrics.touched_slots.add(report.touched_slots);

  const auto mst_stats = mst_.stats();
  metrics.path_max_swaps.add(mst_stats.path_max_swaps -
                             mst_stats_mark_.path_max_swaps);
  metrics.boruvka_rounds.add(mst_stats.boruvka_rounds -
                             mst_stats_mark_.boruvka_rounds);
  metrics.grid_fallbacks.add(mst_stats.grid_fallback_sweeps -
                             mst_stats_mark_.grid_fallback_sweeps);
  mst_stats_mark_ = mst_stats;

  const auto conflict_stats = conflict_index_.stats();
  metrics.rows_queried.add(conflict_stats.rows_queried -
                           conflict_stats_mark_.rows_queried);
  metrics.dedupe_hits.add(conflict_stats.dedupe_hits -
                          conflict_stats_mark_.dedupe_hits);
  metrics.cells_pruned.add(conflict_stats.cells_pruned -
                           conflict_stats_mark_.cells_pruned);
  metrics.row_cache_hits.add(conflict_stats.row_cache_hits -
                             conflict_stats_mark_.row_cache_hits);
  metrics.row_cache_misses.add(conflict_stats.row_cache_misses -
                               conflict_stats_mark_.row_cache_misses);
  metrics.row_cache_patches.add(conflict_stats.row_cache_patches -
                                conflict_stats_mark_.row_cache_patches);
  metrics.row_cache_invalidations.add(
      conflict_stats.row_cache_invalidations -
      conflict_stats_mark_.row_cache_invalidations);
  metrics.row_cache_evictions.add(conflict_stats.row_cache_evictions -
                                  conflict_stats_mark_.row_cache_evictions);
  conflict_stats_mark_ = conflict_stats;

  const EpochTimings& t = report.timings;
  metrics.epoch_ms.record(t.incremental_ms());
  metrics.mst_ms.record(t.mst_ms());
  metrics.conflict_ms.record(t.conflict_ms);
  metrics.recolor_ms.record(t.recolor_ms);
  metrics.repair_ms.record(t.repair_ms);
  metrics.dirty_per_epoch.record(static_cast<double>(report.dirty_links));
}

}  // namespace wagg::dynamic
