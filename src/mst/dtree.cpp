#include "mst/dtree.h"

#include <stdexcept>
#include <utility>

namespace wagg::mst {

void DynamicTree::ensure_vertices(std::size_t n) {
  while (vertex_node_.size() < n) {
    vertex_node_.push_back(alloc_node(-1, -1, -1.0));
  }
}

std::int32_t DynamicTree::vertex(std::int32_t v) const {
  if (v < 0 || static_cast<std::size_t>(v) >= vertex_node_.size()) {
    throw std::invalid_argument("DynamicTree: vertex id out of range");
  }
  return vertex_node_[static_cast<std::size_t>(v)];
}

std::int32_t DynamicTree::alloc_node(std::int32_t ea, std::int32_t eb,
                                     double w2) {
  std::int32_t idx;
  if (!free_.empty()) {
    idx = free_.back();
    free_.pop_back();
    nodes_[static_cast<std::size_t>(idx)] = Node{};
  } else {
    idx = static_cast<std::int32_t>(nodes_.size());
    nodes_.emplace_back();
  }
  Node& n = nodes_[static_cast<std::size_t>(idx)];
  n.ea = ea;
  n.eb = eb;
  n.w2 = w2;
  n.mx = idx;
  return idx;
}

bool DynamicTree::key_less(std::int32_t p, std::int32_t q) const {
  const Node& a = nodes_[static_cast<std::size_t>(p)];
  const Node& b = nodes_[static_cast<std::size_t>(q)];
  if (a.w2 != b.w2) return a.w2 < b.w2;
  if (a.ea != b.ea) return a.ea < b.ea;
  return a.eb < b.eb;
}

bool DynamicTree::is_splay_root(std::int32_t x) const {
  const std::int32_t p = nodes_[static_cast<std::size_t>(x)].parent;
  return p < 0 || (nodes_[static_cast<std::size_t>(p)].ch[0] != x &&
                   nodes_[static_cast<std::size_t>(p)].ch[1] != x);
}

void DynamicTree::push(std::int32_t x) {
  Node& n = nodes_[static_cast<std::size_t>(x)];
  if (!n.rev) return;
  std::swap(n.ch[0], n.ch[1]);
  for (const std::int32_t c : n.ch) {
    if (c >= 0) {
      Node& child = nodes_[static_cast<std::size_t>(c)];
      child.rev = !child.rev;
    }
  }
  n.rev = false;
}

void DynamicTree::pull(std::int32_t x) {
  Node& n = nodes_[static_cast<std::size_t>(x)];
  std::int32_t best = x;
  for (const std::int32_t c : n.ch) {
    if (c < 0) continue;
    const std::int32_t cm = nodes_[static_cast<std::size_t>(c)].mx;
    if (key_less(best, cm)) best = cm;
  }
  n.mx = best;
}

void DynamicTree::rotate(std::int32_t x) {
  const std::int32_t p = nodes_[static_cast<std::size_t>(x)].parent;
  const std::int32_t g = nodes_[static_cast<std::size_t>(p)].parent;
  const bool p_root = is_splay_root(p);
  const int side = nodes_[static_cast<std::size_t>(p)].ch[1] == x ? 1 : 0;
  const std::int32_t b = nodes_[static_cast<std::size_t>(x)].ch[side ^ 1];
  if (!p_root) {
    Node& gp = nodes_[static_cast<std::size_t>(g)];
    if (gp.ch[0] == p) {
      gp.ch[0] = x;
    } else if (gp.ch[1] == p) {
      gp.ch[1] = x;
    }
  }
  nodes_[static_cast<std::size_t>(x)].parent = g;
  nodes_[static_cast<std::size_t>(x)].ch[side ^ 1] = p;
  nodes_[static_cast<std::size_t>(p)].parent = x;
  nodes_[static_cast<std::size_t>(p)].ch[side] = b;
  if (b >= 0) nodes_[static_cast<std::size_t>(b)].parent = p;
  pull(p);
  pull(x);
}

void DynamicTree::splay(std::int32_t x) {
  // Pending reversals must be resolved top-down before rotating bottom-up.
  scratch_.clear();
  for (std::int32_t y = x;;
       y = nodes_[static_cast<std::size_t>(y)].parent) {
    scratch_.push_back(y);
    if (is_splay_root(y)) break;
  }
  for (std::size_t i = scratch_.size(); i-- > 0;) push(scratch_[i]);

  while (!is_splay_root(x)) {
    const std::int32_t p = nodes_[static_cast<std::size_t>(x)].parent;
    if (!is_splay_root(p)) {
      const std::int32_t g = nodes_[static_cast<std::size_t>(p)].parent;
      const bool zigzig =
          (nodes_[static_cast<std::size_t>(g)].ch[0] == p) ==
          (nodes_[static_cast<std::size_t>(p)].ch[0] == x);
      rotate(zigzig ? p : x);
    }
    rotate(x);
  }
}

std::int32_t DynamicTree::access(std::int32_t x) {
  std::int32_t last = -1;
  for (std::int32_t y = x; y >= 0;
       y = nodes_[static_cast<std::size_t>(y)].parent) {
    splay(y);
    nodes_[static_cast<std::size_t>(y)].ch[1] = last;
    pull(y);
    last = y;
  }
  splay(x);
  return last;
}

void DynamicTree::make_root(std::int32_t x) {
  access(x);
  Node& n = nodes_[static_cast<std::size_t>(x)];
  n.rev = !n.rev;
  push(x);
}

std::int32_t DynamicTree::find_root(std::int32_t x) {
  access(x);
  std::int32_t r = x;
  for (;;) {
    push(r);
    const std::int32_t left = nodes_[static_cast<std::size_t>(r)].ch[0];
    if (left < 0) break;
    r = left;
  }
  splay(r);  // keep the amortized bound — deep walks must be paid for
  return r;
}

bool DynamicTree::connected(std::int32_t a, std::int32_t b) {
  const std::int32_t va = vertex(a);
  const std::int32_t vb = vertex(b);
  if (a == b) return true;
  return find_root(va) == find_root(vb);
}

EdgeHandle DynamicTree::link(std::int32_t a, std::int32_t b, double w2) {
  const std::int32_t va = vertex(a);
  const std::int32_t vb = vertex(b);
  if (a == b) {
    throw std::invalid_argument("DynamicTree::link: a self-loop is not a "
                                "tree edge");
  }
  if (connected(a, b)) {
    throw std::logic_error(
        "DynamicTree::link: endpoints already connected (cycle)");
  }
  const std::int32_t e =
      a < b ? alloc_node(a, b, w2) : alloc_node(b, a, w2);
  // Standard link of a represented root under another tree, twice: a's
  // whole tree hangs below the fresh edge node, the edge node below b.
  make_root(va);
  nodes_[static_cast<std::size_t>(va)].parent = e;
  nodes_[static_cast<std::size_t>(e)].parent = vb;
  ++num_edges_;
  return e;
}

void DynamicTree::cut_adjacent(std::int32_t x, std::int32_t y) {
  make_root(x);
  access(y);
  // The exposed splay tree now holds exactly the represented path x..y; for
  // adjacent nodes that is the two of them, with x alone as y's left child.
  Node& ny = nodes_[static_cast<std::size_t>(y)];
  if (ny.ch[0] != x ||
      nodes_[static_cast<std::size_t>(x)].ch[0] >= 0 ||
      nodes_[static_cast<std::size_t>(x)].ch[1] >= 0) {
    throw std::logic_error("DynamicTree::cut: nodes are not adjacent");
  }
  ny.ch[0] = -1;
  nodes_[static_cast<std::size_t>(x)].parent = -1;
  pull(y);
}

void DynamicTree::cut(EdgeHandle e) {
  if (e < 0 || static_cast<std::size_t>(e) >= nodes_.size() ||
      nodes_[static_cast<std::size_t>(e)].ea < 0) {
    throw std::invalid_argument("DynamicTree::cut: not a live edge handle");
  }
  const std::int32_t va = vertex(nodes_[static_cast<std::size_t>(e)].ea);
  const std::int32_t vb = vertex(nodes_[static_cast<std::size_t>(e)].eb);
  cut_adjacent(e, va);
  cut_adjacent(e, vb);
  nodes_[static_cast<std::size_t>(e)] = Node{};  // ea = -1 marks it dead
  free_.push_back(e);
  --num_edges_;
}

EdgeHandle DynamicTree::path_max(std::int32_t a, std::int32_t b) {
  const std::int32_t va = vertex(a);
  const std::int32_t vb = vertex(b);
  if (a == b || !connected(a, b)) {
    throw std::invalid_argument(
        "DynamicTree::path_max: endpoints must be distinct and connected");
  }
  make_root(va);
  access(vb);
  const std::int32_t m = nodes_[static_cast<std::size_t>(vb)].mx;
  if (nodes_[static_cast<std::size_t>(m)].ea < 0) {
    throw std::logic_error(
        "DynamicTree::path_max: path aggregate returned a vertex");
  }
  return m;
}

void DynamicTree::clear() {
  nodes_.clear();
  vertex_node_.clear();
  free_.clear();
  num_edges_ = 0;
}

}  // namespace wagg::mst
