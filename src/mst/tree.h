#ifndef WAGG_MST_TREE_H
#define WAGG_MST_TREE_H

#include <cstdint>
#include <span>
#include <vector>

#include "geom/linkset.h"
#include "geom/point.h"
#include "mst/mst.h"

namespace wagg::mst {

/// A spanning tree oriented towards a sink: the convergecast structure the
/// paper schedules. Every non-sink node owns exactly one link (node ->
/// parent); links are indexed consistently with `links`.
struct AggregationTree {
  geom::Pointset points;
  std::int32_t sink = 0;
  /// parent[v] is v's parent node; parent[sink] == -1.
  std::vector<std::int32_t> parent;
  /// depth[v]: hop count from v up to the sink (depth[sink] == 0).
  std::vector<std::int32_t> depth;
  /// link_of_node[v]: index into `links` of v's upward link; -1 for the sink.
  std::vector<std::int32_t> link_of_node;
  /// The directed links (sender = child, receiver = parent).
  geom::LinkSet links;
  /// children[v]: child nodes of v (convenient for the simulator).
  std::vector<std::vector<std::int32_t>> children;

  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return points.size();
  }
  [[nodiscard]] int height() const noexcept;
};

/// Orients an undirected spanning tree towards `sink` (BFS from the sink).
/// Throws std::invalid_argument if `edges` is not a spanning tree of the
/// pointset or `sink` is out of range.
[[nodiscard]] AggregationTree orient_toward_sink(geom::Pointset points,
                                                 std::span<const Edge> edges,
                                                 std::int32_t sink);

/// Convenience: Euclidean MST oriented towards the given sink.
[[nodiscard]] AggregationTree mst_tree(geom::Pointset points,
                                       std::int32_t sink = 0);

/// The matching-hierarchy baseline tree in the spirit of [11] (Halldorsson &
/// Mitra, SODA 2012): level by level, greedily match each active node to its
/// nearest active neighbour, keep one survivor per pair, repeat until only
/// the sink remains. Produces a tree of height O(log n) whose links carry a
/// level number; scheduling level-by-level yields the classic Theta(1/log n)
/// rate baseline the paper improves upon.
struct PairingTree {
  AggregationTree tree;
  /// level_of_link[i]: matching round in which link i was created (0-based).
  std::vector<std::int32_t> level_of_link;
  int num_levels = 0;
};

[[nodiscard]] PairingTree pairing_tree(geom::Pointset points,
                                       std::int32_t sink = 0);

}  // namespace wagg::mst

#endif  // WAGG_MST_TREE_H
