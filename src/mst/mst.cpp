#include "mst/mst.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace wagg::mst {

namespace {

void require_at_least_two(const geom::Pointset& points, const char* who) {
  if (points.size() < 2) {
    throw std::invalid_argument(std::string(who) + ": need >= 2 points");
  }
}

struct WeightedEdge {
  double w;
  std::int32_t u;
  std::int32_t v;
};

/// All-pairs edges sorted by (weight, u, v); deterministic.
std::vector<WeightedEdge> sorted_complete_graph(const geom::Pointset& points) {
  const auto n = static_cast<std::int32_t>(points.size());
  std::vector<WeightedEdge> edges;
  edges.reserve(static_cast<std::size_t>(n) * (n - 1) / 2);
  for (std::int32_t i = 0; i < n; ++i) {
    for (std::int32_t j = i + 1; j < n; ++j) {
      edges.push_back(
          {geom::distance(points[static_cast<std::size_t>(i)],
                          points[static_cast<std::size_t>(j)]),
           i, j});
    }
  }
  std::sort(edges.begin(), edges.end(),
            [](const WeightedEdge& a, const WeightedEdge& b) {
              if (a.w != b.w) return a.w < b.w;
              if (a.u != b.u) return a.u < b.u;
              return a.v < b.v;
            });
  return edges;
}

}  // namespace

std::vector<Edge> euclidean_mst(const geom::Pointset& points) {
  require_at_least_two(points, "euclidean_mst");
  const std::size_t n = points.size();
  std::vector<double> best(n, std::numeric_limits<double>::infinity());
  std::vector<std::int32_t> attach(n, -1);
  std::vector<bool> in_tree(n, false);

  std::vector<Edge> result;
  result.reserve(n - 1);

  std::size_t current = 0;
  in_tree[0] = true;
  for (std::size_t step = 1; step < n; ++step) {
    // Relax distances from the most recently added vertex.
    for (std::size_t v = 0; v < n; ++v) {
      if (in_tree[v]) continue;
      const double d = geom::distance(points[current], points[v]);
      if (d < best[v]) {
        best[v] = d;
        attach[v] = static_cast<std::int32_t>(current);
      }
    }
    // Pick the closest fringe vertex; tie-break on index for determinism.
    std::size_t pick = n;
    for (std::size_t v = 0; v < n; ++v) {
      if (in_tree[v]) continue;
      if (pick == n || best[v] < best[pick]) pick = v;
    }
    in_tree[pick] = true;
    result.push_back(Edge{attach[pick], static_cast<std::int32_t>(pick)});
    current = pick;
  }
  return result;
}

std::vector<Edge> kruskal_mst(const geom::Pointset& points) {
  require_at_least_two(points, "kruskal_mst");
  const auto edges = sorted_complete_graph(points);
  UnionFind uf(points.size());
  std::vector<Edge> result;
  result.reserve(points.size() - 1);
  for (const auto& e : edges) {
    if (uf.unite(static_cast<std::size_t>(e.u),
                 static_cast<std::size_t>(e.v))) {
      result.push_back(Edge{e.u, e.v});
      if (result.size() + 1 == points.size()) break;
    }
  }
  return result;
}

std::vector<Edge> line_mst(const geom::Pointset& points) {
  require_at_least_two(points, "line_mst");
  std::vector<std::int32_t> order(points.size());
  std::iota(order.begin(), order.end(), 0);
  for (const auto& p : points) {
    if (p.y != 0.0) {
      throw std::invalid_argument("line_mst: pointset is not collinear on y=0");
    }
  }
  std::sort(order.begin(), order.end(), [&](std::int32_t a, std::int32_t b) {
    const double xa = points[static_cast<std::size_t>(a)].x;
    const double xb = points[static_cast<std::size_t>(b)].x;
    if (xa != xb) return xa < xb;
    return a < b;
  });
  std::vector<Edge> result;
  result.reserve(points.size() - 1);
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    result.push_back(Edge{order[i], order[i + 1]});
  }
  return result;
}

std::vector<Edge> k_fold_mst(const geom::Pointset& points, int k) {
  require_at_least_two(points, "k_fold_mst");
  if (k < 1) throw std::invalid_argument("k_fold_mst: k must be >= 1");
  auto all = sorted_complete_graph(points);
  std::vector<bool> used(all.size(), false);
  std::vector<Edge> result;
  for (int round = 0; round < k; ++round) {
    UnionFind uf(points.size());
    for (std::size_t idx = 0; idx < all.size(); ++idx) {
      if (used[idx]) continue;
      const auto& e = all[idx];
      if (uf.unite(static_cast<std::size_t>(e.u),
                   static_cast<std::size_t>(e.v))) {
        used[idx] = true;
        result.push_back(Edge{e.u, e.v});
      }
    }
    if (uf.num_components() > 1) break;  // not enough edges left to span
  }
  return result;
}

double total_weight(const geom::Pointset& points, std::span<const Edge> edges) {
  double sum = 0.0;
  for (const Edge& e : edges) {
    sum += geom::distance(points.at(static_cast<std::size_t>(e.u)),
                          points.at(static_cast<std::size_t>(e.v)));
  }
  return sum;
}

bool is_spanning_tree(std::size_t n, std::span<const Edge> edges) {
  if (n == 0) return false;
  if (edges.size() != n - 1) return false;
  UnionFind uf(n);
  for (const Edge& e : edges) {
    if (e.u < 0 || e.v < 0 || static_cast<std::size_t>(e.u) >= n ||
        static_cast<std::size_t>(e.v) >= n) {
      return false;
    }
    if (!uf.unite(static_cast<std::size_t>(e.u),
                  static_cast<std::size_t>(e.v))) {
      return false;  // cycle
    }
  }
  return uf.num_components() == 1;
}

UnionFind::UnionFind(std::size_t n)
    : parent_(n), rank_(n, 0), components_(n) {
  std::iota(parent_.begin(), parent_.end(), std::size_t{0});
}

std::size_t UnionFind::find(std::size_t x) {
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

bool UnionFind::unite(std::size_t a, std::size_t b) {
  std::size_t ra = find(a);
  std::size_t rb = find(b);
  if (ra == rb) return false;
  if (rank_[ra] < rank_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  if (rank_[ra] == rank_[rb]) ++rank_[ra];
  --components_;
  return true;
}

}  // namespace wagg::mst
