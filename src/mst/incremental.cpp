#include "mst/incremental.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <unordered_map>

namespace wagg::mst {

namespace {

struct Candidate {
  double w;
  NodeId a;  ///< canonical a < b
  NodeId b;

  [[nodiscard]] bool operator<(const Candidate& other) const {
    if (w != other.w) return w < other.w;
    if (a != other.a) return a < other.a;
    return b < other.b;
  }
};

Candidate make_candidate(double w, NodeId x, NodeId y) {
  return x < y ? Candidate{w, x, y} : Candidate{w, y, x};
}

void sort_edges(std::vector<IdEdge>& edges) {
  std::sort(edges.begin(), edges.end(), [](const IdEdge& x, const IdEdge& y) {
    if (x.a != y.a) return x.a < y.a;
    return x.b < y.b;
  });
}

}  // namespace

IncrementalMst::IncrementalMst(const geom::Pointset& initial)
    : points_(initial), alive_(initial.size(), true),
      num_alive_(initial.size()) {
  if (initial.size() >= 2) {
    // Seed from the batch algorithm; Prim is O(n^2) once, and every later
    // update is localized.
    const auto seed_edges = euclidean_mst(initial);
    edges_.reserve(seed_edges.size());
    for (const auto& e : seed_edges) {
      edges_.push_back(e.u < e.v ? IdEdge{e.u, e.v} : IdEdge{e.v, e.u});
    }
    sort_edges(edges_);
  }
}

const geom::Point& IncrementalMst::position(NodeId id) const {
  if (!alive(id)) {
    throw std::invalid_argument("IncrementalMst: dead or unknown node id");
  }
  return points_[static_cast<std::size_t>(id)];
}

std::vector<NodeId> IncrementalMst::alive_ids() const {
  std::vector<NodeId> ids;
  ids.reserve(num_alive_);
  for (std::size_t id = 0; id < alive_.size(); ++id) {
    if (alive_[id]) ids.push_back(static_cast<NodeId>(id));
  }
  return ids;
}

double IncrementalMst::edge_weight(NodeId a, NodeId b) const {
  return geom::distance(points_[static_cast<std::size_t>(a)],
                        points_[static_cast<std::size_t>(b)]);
}

double IncrementalMst::weight() const {
  double sum = 0.0;
  for (const auto& e : edges_) sum += edge_weight(e.a, e.b);
  return sum;
}

std::vector<Edge> IncrementalMst::compact_edges() const {
  std::unordered_map<NodeId, std::int32_t> index;
  index.reserve(num_alive_ * 2);
  std::int32_t next = 0;
  for (std::size_t id = 0; id < alive_.size(); ++id) {
    if (alive_[id]) index[static_cast<NodeId>(id)] = next++;
  }
  std::vector<Edge> result;
  result.reserve(edges_.size());
  for (const auto& e : edges_) {
    result.push_back(Edge{index.at(e.a), index.at(e.b)});
  }
  return result;
}

NodeId IncrementalMst::add_point(const geom::Point& position) {
  const auto id = static_cast<NodeId>(points_.size());
  points_.push_back(position);
  alive_.push_back(true);
  ++num_alive_;
  attach(id);
  return id;
}

void IncrementalMst::remove_point(NodeId id) {
  if (!alive(id)) {
    throw std::invalid_argument("IncrementalMst: dead or unknown node id");
  }
  detach(id);
}

void IncrementalMst::move_point(NodeId id, const geom::Point& position) {
  if (!alive(id)) {
    throw std::invalid_argument("IncrementalMst: dead or unknown node id");
  }
  // A genuine two-step update. Merely re-attaching the moved node to the
  // otherwise-unchanged tree would be wrong: a node moving into the middle
  // of a long tree edge obsoletes that edge even though the edge is not
  // incident to the node. Detaching first restores the MST of the other
  // points; attaching is then the standard insertion update.
  detach(id);
  points_[static_cast<std::size_t>(id)] = position;
  alive_[static_cast<std::size_t>(id)] = true;
  ++num_alive_;
  attach(id);
}

NodeId IncrementalMst::add_point_deferred(const geom::Point& position) {
  const auto id = static_cast<NodeId>(points_.size());
  points_.push_back(position);
  alive_.push_back(true);
  ++num_alive_;
  return id;
}

void IncrementalMst::remove_point_deferred(NodeId id) {
  if (!alive(id)) {
    throw std::invalid_argument("IncrementalMst: dead or unknown node id");
  }
  alive_[static_cast<std::size_t>(id)] = false;
  --num_alive_;
}

void IncrementalMst::move_point_deferred(NodeId id,
                                         const geom::Point& position) {
  if (!alive(id)) {
    throw std::invalid_argument("IncrementalMst: dead or unknown node id");
  }
  points_[static_cast<std::size_t>(id)] = position;
}

void IncrementalMst::rebuild() {
  edges_.clear();
  if (num_alive_ < 2) return;
  const auto ids = alive_ids();
  geom::Pointset compact;
  compact.reserve(ids.size());
  for (const auto id : ids) {
    compact.push_back(points_[static_cast<std::size_t>(id)]);
  }
  const auto compact_tree = euclidean_mst(compact);
  edges_.reserve(compact_tree.size());
  for (const auto& e : compact_tree) {
    const NodeId a = ids[static_cast<std::size_t>(e.u)];
    const NodeId b = ids[static_cast<std::size_t>(e.v)];
    edges_.push_back(a < b ? IdEdge{a, b} : IdEdge{b, a});
  }
  sort_edges(edges_);
}

void IncrementalMst::attach(NodeId id) {
  if (num_alive_ < 2) return;

  // Cycle property: every old non-tree edge stays non-tree after inserting a
  // point, so the new MST lies inside (old tree edges) + (the point's star).
  std::vector<Candidate> candidates;
  candidates.reserve(edges_.size() + num_alive_ - 1);
  for (const auto& e : edges_) {
    candidates.push_back({edge_weight(e.a, e.b), e.a, e.b});
  }
  for (std::size_t other = 0; other < alive_.size(); ++other) {
    if (!alive_[other] || static_cast<NodeId>(other) == id) continue;
    candidates.push_back(
        make_candidate(edge_weight(static_cast<NodeId>(other), id),
                       static_cast<NodeId>(other), id));
  }
  std::sort(candidates.begin(), candidates.end());

  std::unordered_map<NodeId, std::size_t> slot;
  slot.reserve(num_alive_ * 2);
  for (const auto alive_id : alive_ids()) {
    const std::size_t next = slot.size();
    slot[alive_id] = next;
  }
  UnionFind uf(num_alive_);
  std::vector<IdEdge> next_edges;
  next_edges.reserve(num_alive_ - 1);
  for (const auto& c : candidates) {
    if (uf.unite(slot.at(c.a), slot.at(c.b))) {
      next_edges.push_back(IdEdge{c.a, c.b});
      if (next_edges.size() + 1 == num_alive_) break;
    }
  }
  edges_ = std::move(next_edges);
  sort_edges(edges_);
}

void IncrementalMst::detach(NodeId id) {
  alive_[static_cast<std::size_t>(id)] = false;
  --num_alive_;
  std::erase_if(edges_,
                [id](const IdEdge& e) { return e.a == id || e.b == id; });
  if (num_alive_ < 2) return;

  // Component labelling over the surviving forest (compact slots).
  const auto ids = alive_ids();
  std::unordered_map<NodeId, std::size_t> slot;
  slot.reserve(ids.size() * 2);
  for (std::size_t i = 0; i < ids.size(); ++i) slot[ids[i]] = i;

  UnionFind uf(ids.size());
  for (const auto& e : edges_) uf.unite(slot.at(e.a), slot.at(e.b));
  if (uf.num_components() == 1) return;

  // Member lists per component, keyed by union-find root.
  std::unordered_map<std::size_t, std::vector<NodeId>> groups;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    groups[uf.find(i)].push_back(ids[i]);
  }
  std::vector<std::vector<NodeId>> comps;
  comps.reserve(groups.size());
  for (auto& [root, members] : groups) comps.push_back(std::move(members));
  // Deterministic component order (members are already id-sorted because
  // alive_ids() is increasing).
  std::sort(comps.begin(), comps.end(),
            [](const std::vector<NodeId>& x, const std::vector<NodeId>& y) {
              return x.front() < y.front();
            });

  // Cut property: the new MST is the old forest plus the MST of the
  // contracted component graph, whose only useful edges are the minimum
  // cross edge of each component pair. An Euclidean MST has max degree 6,
  // so at most 6 components exist and — churn being local — all but one are
  // typically small.
  std::vector<Candidate> candidates;
  candidates.reserve(comps.size() * (comps.size() - 1) / 2);
  for (std::size_t x = 0; x < comps.size(); ++x) {
    for (std::size_t y = x + 1; y < comps.size(); ++y) {
      Candidate best{std::numeric_limits<double>::infinity(), -1, -1};
      for (const NodeId p : comps[x]) {
        for (const NodeId q : comps[y]) {
          const auto c = make_candidate(edge_weight(p, q), p, q);
          if (c < best) best = c;
        }
      }
      candidates.push_back(best);
    }
  }
  std::sort(candidates.begin(), candidates.end());
  for (const auto& c : candidates) {
    if (uf.unite(slot.at(c.a), slot.at(c.b))) {
      edges_.push_back(IdEdge{c.a, c.b});
      if (uf.num_components() == 1) break;
    }
  }
  sort_edges(edges_);
}

}  // namespace wagg::mst
