#include "mst/incremental.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace wagg::mst {

namespace {

void sort_by_pair(std::vector<IdEdge>& edges) {
  std::sort(edges.begin(), edges.end(), [](const IdEdge& x, const IdEdge& y) {
    if (x.a != y.a) return x.a < y.a;
    return x.b < y.b;
  });
}

}  // namespace

IncrementalMst::IncrementalMst(const geom::Pointset& initial)
    : points_(initial), alive_(initial.size(), true),
      num_alive_(initial.size()) {
  if (initial.size() >= 2) {
    // Seed from the batch algorithm; Prim is O(n^2) once, and every later
    // update is localized.
    const auto seed_edges = euclidean_mst(initial);
    std::vector<NodeId> ids(initial.size());
    for (std::size_t i = 0; i < ids.size(); ++i) {
      ids[i] = static_cast<NodeId>(i);
    }
    reset_tree_from(seed_edges, ids);
  }
}

const geom::Point& IncrementalMst::position(NodeId id) const {
  if (!alive(id)) {
    throw std::invalid_argument("IncrementalMst: dead or unknown node id");
  }
  return points_[static_cast<std::size_t>(id)];
}

std::vector<NodeId> IncrementalMst::alive_ids() const {
  std::vector<NodeId> ids;
  ids.reserve(num_alive_);
  for (std::size_t id = 0; id < alive_.size(); ++id) {
    if (alive_[id]) ids.push_back(static_cast<NodeId>(id));
  }
  return ids;
}

double IncrementalMst::squared_weight(NodeId a, NodeId b) const {
  return geom::squared_distance(points_[static_cast<std::size_t>(a)],
                                points_[static_cast<std::size_t>(b)]);
}

double IncrementalMst::weight() const {
  double sum = 0.0;
  for (const auto& e : tree_) sum += std::sqrt(e.w2);
  return sum;
}

const std::vector<IdEdge>& IncrementalMst::edges() const {
  if (edges_cache_stale_) {
    edges_cache_.clear();
    edges_cache_.reserve(tree_.size());
    for (const auto& e : tree_) edges_cache_.push_back(IdEdge{e.a, e.b});
    sort_by_pair(edges_cache_);
    edges_cache_stale_ = false;
  }
  return edges_cache_;
}

std::vector<Edge> IncrementalMst::compact_edges() const {
  // Dense index per alive id via a scratch array (ids are small integers).
  std::vector<std::int32_t> index(alive_.size(), -1);
  std::int32_t next = 0;
  for (std::size_t id = 0; id < alive_.size(); ++id) {
    if (alive_[id]) index[id] = next++;
  }
  std::vector<Edge> result;
  result.reserve(edges().size());
  for (const auto& e : edges()) {
    result.push_back(Edge{index[static_cast<std::size_t>(e.a)],
                          index[static_cast<std::size_t>(e.b)]});
  }
  return result;
}

MstDelta IncrementalMst::take_delta() {
  MstDelta drained = std::move(delta_);
  delta_ = MstDelta{};
  return drained;
}

NodeId IncrementalMst::add_point(const geom::Point& position) {
  const auto id = static_cast<NodeId>(points_.size());
  points_.push_back(position);
  alive_.push_back(true);
  ++num_alive_;
  attach(id);
  return id;
}

void IncrementalMst::remove_point(NodeId id) {
  if (!alive(id)) {
    throw std::invalid_argument("IncrementalMst: dead or unknown node id");
  }
  detach(id);
}

void IncrementalMst::move_point(NodeId id, const geom::Point& position) {
  if (!alive(id)) {
    throw std::invalid_argument("IncrementalMst: dead or unknown node id");
  }
  // A genuine two-step update. Merely re-attaching the moved node to the
  // otherwise-unchanged tree would be wrong: a node moving into the middle
  // of a long tree edge obsoletes that edge even though the edge is not
  // incident to the node. Detaching first restores the MST of the other
  // points; attaching is then the standard insertion update.
  detach(id);
  points_[static_cast<std::size_t>(id)] = position;
  alive_[static_cast<std::size_t>(id)] = true;
  ++num_alive_;
  attach(id);
}

NodeId IncrementalMst::add_point_deferred(const geom::Point& position) {
  const auto id = static_cast<NodeId>(points_.size());
  points_.push_back(position);
  alive_.push_back(true);
  ++num_alive_;
  return id;
}

void IncrementalMst::remove_point_deferred(NodeId id) {
  if (!alive(id)) {
    throw std::invalid_argument("IncrementalMst: dead or unknown node id");
  }
  alive_[static_cast<std::size_t>(id)] = false;
  --num_alive_;
}

void IncrementalMst::move_point_deferred(NodeId id,
                                         const geom::Point& position) {
  if (!alive(id)) {
    throw std::invalid_argument("IncrementalMst: dead or unknown node id");
  }
  points_[static_cast<std::size_t>(id)] = position;
}

void IncrementalMst::reset_tree_from(const std::vector<Edge>& compact,
                                     const std::vector<NodeId>& ids) {
  tree_.clear();
  tree_.reserve(compact.size());
  for (const auto& e : compact) {
    const NodeId a = ids[static_cast<std::size_t>(e.u)];
    const NodeId b = ids[static_cast<std::size_t>(e.v)];
    tree_.push_back(a < b ? WeightedEdge{squared_weight(a, b), a, b}
                          : WeightedEdge{squared_weight(a, b), b, a});
  }
  std::sort(tree_.begin(), tree_.end());
  edges_cache_stale_ = true;
}

void IncrementalMst::rebuild() {
  if (num_alive_ < 2) {
    tree_.clear();
  } else {
    const auto ids = alive_ids();
    geom::Pointset compact;
    compact.reserve(ids.size());
    for (const auto id : ids) {
      compact.push_back(points_[static_cast<std::size_t>(id)]);
    }
    reset_tree_from(euclidean_mst(compact), ids);
  }
  edges_cache_stale_ = true;
  delta_ = MstDelta{};
  delta_.rebuilt = true;
}

void IncrementalMst::attach(NodeId id) {
  edges_cache_stale_ = true;
  if (num_alive_ < 2) return;

  // Cycle property: every old non-tree edge stays non-tree after inserting a
  // point, so the new MST lies inside (old tree edges) + (the point's star).
  // The maintained tree is already in (w2, a, b) order — Kruskal acceptance
  // order is weight order — so sorting just the star and merging the two
  // sorted streams replaces the old full candidate sort.
  std::vector<WeightedEdge> star;
  star.reserve(num_alive_ - 1);
  for (std::size_t other = 0; other < alive_.size(); ++other) {
    const auto o = static_cast<NodeId>(other);
    if (!alive_[other] || o == id) continue;
    star.push_back(o < id ? WeightedEdge{squared_weight(o, id), o, id}
                          : WeightedEdge{squared_weight(o, id), id, o});
  }
  std::sort(star.begin(), star.end());

  UnionFind uf(alive_.size());
  std::vector<WeightedEdge> next_tree;
  next_tree.reserve(num_alive_ - 1);
  std::size_t ti = 0;
  std::size_t si = 0;
  const auto target = num_alive_ - 1;
  while (next_tree.size() < target) {
    if (ti >= tree_.size() && si >= star.size()) {
      throw std::logic_error(
          "IncrementalMst::attach: candidate streams exhausted before the "
          "tree completed (maintained tree was not spanning)");
    }
    const bool from_tree =
        ti < tree_.size() && (si >= star.size() || tree_[ti] < star[si]);
    const WeightedEdge& c = from_tree ? tree_[ti++] : star[si++];
    if (uf.unite(static_cast<std::size_t>(c.a), static_cast<std::size_t>(c.b))) {
      next_tree.push_back(c);
      if (!from_tree) delta_.added.push_back(IdEdge{c.a, c.b});
    } else if (from_tree) {
      delta_.removed.push_back(IdEdge{c.a, c.b});
    }
  }
  // The new tree is complete; every old edge not yet examined is displaced.
  for (; ti < tree_.size(); ++ti) {
    delta_.removed.push_back(IdEdge{tree_[ti].a, tree_[ti].b});
  }
  tree_ = std::move(next_tree);
}

void IncrementalMst::detach(NodeId id) {
  edges_cache_stale_ = true;
  alive_[static_cast<std::size_t>(id)] = false;
  --num_alive_;
  std::erase_if(tree_, [&](const WeightedEdge& e) {
    if (e.a != id && e.b != id) return false;
    delta_.removed.push_back(IdEdge{e.a, e.b});
    return true;
  });
  if (num_alive_ < 2) return;

  // Component labelling over the surviving forest, on raw ids (dead slots
  // simply stay singleton components nothing references).
  UnionFind uf(alive_.size());
  for (const auto& e : tree_) {
    uf.unite(static_cast<std::size_t>(e.a), static_cast<std::size_t>(e.b));
  }

  // Member lists per component, in increasing-first-member order (alive ids
  // are scanned in increasing order, so the order is deterministic).
  std::vector<std::size_t> comp_roots;
  std::vector<std::vector<NodeId>> comps;
  std::vector<std::int32_t> comp_of_root(alive_.size(), -1);
  for (std::size_t node = 0; node < alive_.size(); ++node) {
    if (!alive_[node]) continue;
    const std::size_t root = uf.find(node);
    if (comp_of_root[root] < 0) {
      comp_of_root[root] = static_cast<std::int32_t>(comps.size());
      comps.emplace_back();
    }
    comps[static_cast<std::size_t>(comp_of_root[root])].push_back(
        static_cast<NodeId>(node));
  }
  if (comps.size() == 1) return;

  // Cut property: the new MST is the old forest plus the MST of the
  // contracted component graph, whose only useful edges are the minimum
  // cross edge of each component pair. An Euclidean MST has max degree 6,
  // so at most 6 components exist and — churn being local — all but one are
  // typically small.
  std::vector<WeightedEdge> candidates;
  candidates.reserve(comps.size() * (comps.size() - 1) / 2);
  for (std::size_t x = 0; x < comps.size(); ++x) {
    for (std::size_t y = x + 1; y < comps.size(); ++y) {
      WeightedEdge best{std::numeric_limits<double>::infinity(), -1, -1};
      for (const NodeId p : comps[x]) {
        for (const NodeId q : comps[y]) {
          const double w2 = squared_weight(p, q);
          const WeightedEdge c = p < q ? WeightedEdge{w2, p, q}
                                       : WeightedEdge{w2, q, p};
          if (c < best) best = c;
        }
      }
      candidates.push_back(best);
    }
  }
  std::sort(candidates.begin(), candidates.end());
  for (const auto& c : candidates) {
    if (uf.unite(static_cast<std::size_t>(c.a),
                 static_cast<std::size_t>(c.b))) {
      // Keep the maintained tree in weight order: insert in place (at most
      // five reconnection edges, so the memmove cost is negligible).
      tree_.insert(std::upper_bound(tree_.begin(), tree_.end(), c), c);
      delta_.added.push_back(IdEdge{c.a, c.b});
    }
  }
}

}  // namespace wagg::mst
