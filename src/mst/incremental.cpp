#include "mst/incremental.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

namespace wagg::mst {

namespace {

void sort_by_pair(std::vector<IdEdge>& edges) {
  std::sort(edges.begin(), edges.end(), [](const IdEdge& x, const IdEdge& y) {
    if (x.a != y.a) return x.a < y.a;
    return x.b < y.b;
  });
}

}  // namespace

IncrementalMst::IncrementalMst(const geom::Pointset& initial)
    : points_(initial), alive_(initial.size(), true),
      num_alive_(initial.size()), adj_(initial.size()),
      comp_stamp_(initial.size(), 0) {
  dtree_.ensure_vertices(initial.size());
  rebuild_grid();
  if (initial.size() >= 2) {
    // Seed from the batch algorithm; Prim is O(n^2) once, and every later
    // update is localized.
    const auto seed_edges = euclidean_mst(initial);
    std::vector<NodeId> ids(initial.size());
    for (std::size_t i = 0; i < ids.size(); ++i) {
      ids[i] = static_cast<NodeId>(i);
    }
    seed_tree_from(seed_edges, ids);
  }
}

const geom::Point& IncrementalMst::position(NodeId id) const {
  if (!alive(id)) {
    throw std::invalid_argument("IncrementalMst: dead or unknown node id");
  }
  return points_[static_cast<std::size_t>(id)];
}

std::vector<NodeId> IncrementalMst::alive_ids() const {
  std::vector<NodeId> ids;
  ids.reserve(num_alive_);
  for (std::size_t id = 0; id < alive_.size(); ++id) {
    if (alive_[id]) ids.push_back(static_cast<NodeId>(id));
  }
  return ids;
}

double IncrementalMst::squared_weight(NodeId a, NodeId b) const {
  return geom::squared_distance(points_[static_cast<std::size_t>(a)],
                                points_[static_cast<std::size_t>(b)]);
}

double IncrementalMst::weight() const {
  double sum = 0.0;
  for (std::size_t id = 0; id < adj_.size(); ++id) {
    for (const AdjEntry& e : adj_[id]) {
      if (static_cast<NodeId>(id) < e.neighbor) {
        sum += std::sqrt(dtree_.weight2(e.edge));
      }
    }
  }
  return sum;
}

const std::vector<IdEdge>& IncrementalMst::edges() const {
  if (edges_cache_stale_) {
    edges_cache_.clear();
    edges_cache_.reserve(num_alive_);
    for (std::size_t id = 0; id < adj_.size(); ++id) {
      for (const AdjEntry& e : adj_[id]) {
        if (static_cast<NodeId>(id) < e.neighbor) {
          edges_cache_.push_back(IdEdge{static_cast<NodeId>(id), e.neighbor});
        }
      }
    }
    sort_by_pair(edges_cache_);
    edges_cache_stale_ = false;
  }
  return edges_cache_;
}

std::vector<Edge> IncrementalMst::compact_edges() const {
  // Dense index per alive id via a scratch array (ids are small integers).
  std::vector<std::int32_t> index(alive_.size(), -1);
  std::int32_t next = 0;
  for (std::size_t id = 0; id < alive_.size(); ++id) {
    if (alive_[id]) index[id] = next++;
  }
  std::vector<Edge> result;
  result.reserve(edges().size());
  for (const auto& e : edges()) {
    result.push_back(Edge{index[static_cast<std::size_t>(e.a)],
                          index[static_cast<std::size_t>(e.b)]});
  }
  return result;
}

MstDelta IncrementalMst::take_delta() {
  MstDelta drained = std::move(delta_);
  delta_ = MstDelta{};
  return drained;
}

void IncrementalMst::ensure_node(NodeId id) {
  const auto needed = static_cast<std::size_t>(id) + 1;
  dtree_.ensure_vertices(needed);
  if (adj_.size() < needed) adj_.resize(needed);
  if (comp_stamp_.size() < needed) comp_stamp_.resize(needed, 0);
}

void IncrementalMst::rebuild_grid() {
  if (num_alive_ == 0) {
    grid_.reset(1.0);
    grid_built_points_ = 0;
    return;
  }
  double min_x = 0.0, max_x = 0.0, min_y = 0.0, max_y = 0.0;
  bool first = true;
  for (std::size_t id = 0; id < alive_.size(); ++id) {
    if (!alive_[id]) continue;
    const auto& p = points_[id];
    if (first) {
      min_x = max_x = p.x;
      min_y = max_y = p.y;
      first = false;
    } else {
      min_x = std::min(min_x, p.x);
      max_x = std::max(max_x, p.x);
      min_y = std::min(min_y, p.y);
      max_y = std::max(max_y, p.y);
    }
  }
  // Cell ~ the mean nearest-neighbor spacing of a uniform instance, so ring
  // searches resolve in O(1) cells there; extreme spreads (exponential
  // chains) degrade to the grid's linear-sweep fallback, never below it.
  const double diag = std::hypot(max_x - min_x, max_y - min_y);
  const double cell =
      diag > 0.0
          ? diag / (std::sqrt(static_cast<double>(num_alive_)) + 1.0)
          : 1.0;
  grid_.reset(cell);
  for (std::size_t id = 0; id < alive_.size(); ++id) {
    if (alive_[id]) grid_.insert(static_cast<NodeId>(id), points_[id]);
  }
  grid_built_points_ = num_alive_;
}

void IncrementalMst::add_tree_edge(NodeId a, NodeId b, double w2) {
  const EdgeHandle e = dtree_.link(a, b, w2);
  adj_[static_cast<std::size_t>(a)].push_back(AdjEntry{b, e});
  adj_[static_cast<std::size_t>(b)].push_back(AdjEntry{a, e});
}

void IncrementalMst::remove_tree_edge(NodeId a, const AdjEntry& entry) {
  const NodeId b = entry.neighbor;
  for (NodeId side : {a, b}) {
    auto& list = adj_[static_cast<std::size_t>(side)];
    const auto it = std::find_if(
        list.begin(), list.end(),
        [&](const AdjEntry& e) { return e.edge == entry.edge; });
    if (it == list.end()) {
      throw std::logic_error(
          "IncrementalMst: tree edge missing from adjacency");
    }
    *it = list.back();
    list.pop_back();
  }
  dtree_.cut(entry.edge);
}

void IncrementalMst::seed_tree_from(const std::vector<Edge>& compact,
                                    const std::vector<NodeId>& ids) {
  for (const auto& e : compact) {
    const NodeId a = ids[static_cast<std::size_t>(e.u)];
    const NodeId b = ids[static_cast<std::size_t>(e.v)];
    add_tree_edge(a < b ? a : b, a < b ? b : a, squared_weight(a, b));
  }
  edges_cache_stale_ = true;
}

NodeId IncrementalMst::add_point(const geom::Point& position) {
  const auto id = static_cast<NodeId>(points_.size());
  points_.push_back(position);
  alive_.push_back(true);
  ++num_alive_;
  ensure_node(id);
  // Re-tune the grid when the instance drifted 4x from the size it was
  // built for (a rebuild already includes the new point).
  if (num_alive_ > 4 * grid_built_points_ + 8) {
    rebuild_grid();
  } else {
    grid_.insert(id, position);
  }
  attach(id);
  return id;
}

void IncrementalMst::remove_point(NodeId id) {
  if (!alive(id)) {
    throw std::invalid_argument("IncrementalMst: dead or unknown node id");
  }
  detach(id);
}

void IncrementalMst::move_point(NodeId id, const geom::Point& position) {
  if (!alive(id)) {
    throw std::invalid_argument("IncrementalMst: dead or unknown node id");
  }
  // A genuine two-step update. Merely re-attaching the moved node to the
  // otherwise-unchanged tree would be wrong: a node moving into the middle
  // of a long tree edge obsoletes that edge even though the edge is not
  // incident to the node. Detaching first restores the MST of the other
  // points; attaching is then the standard insertion update.
  detach(id);
  points_[static_cast<std::size_t>(id)] = position;
  alive_[static_cast<std::size_t>(id)] = true;
  ++num_alive_;
  grid_.insert(id, position);
  attach(id);
}

NodeId IncrementalMst::add_point_deferred(const geom::Point& position) {
  const auto id = static_cast<NodeId>(points_.size());
  points_.push_back(position);
  alive_.push_back(true);
  ++num_alive_;
  return id;
}

void IncrementalMst::remove_point_deferred(NodeId id) {
  if (!alive(id)) {
    throw std::invalid_argument("IncrementalMst: dead or unknown node id");
  }
  alive_[static_cast<std::size_t>(id)] = false;
  --num_alive_;
}

void IncrementalMst::move_point_deferred(NodeId id,
                                         const geom::Point& position) {
  if (!alive(id)) {
    throw std::invalid_argument("IncrementalMst: dead or unknown node id");
  }
  points_[static_cast<std::size_t>(id)] = position;
}

void IncrementalMst::rebuild() {
  dtree_.clear();
  dtree_.ensure_vertices(points_.size());
  adj_.assign(points_.size(), {});
  comp_stamp_.assign(points_.size(), 0);
  stamp_clock_ = 0;
  if (num_alive_ >= 2) {
    const auto ids = alive_ids();
    geom::Pointset compact;
    compact.reserve(ids.size());
    for (const auto id : ids) {
      compact.push_back(points_[static_cast<std::size_t>(id)]);
    }
    seed_tree_from(euclidean_mst(compact), ids);
  }
  rebuild_grid();
  edges_cache_stale_ = true;
  delta_ = MstDelta{};
  delta_.rebuilt = true;
}

void IncrementalMst::attach(NodeId id) {
  edges_cache_stale_ = true;
  if (num_alive_ < 2) return;

  // Cycle property: every old non-tree edge stays non-tree after inserting
  // a point, so the new MST lies inside (old tree edges) + (the point's
  // star) — and of the star, only the nearest neighbor per 60-degree cone
  // can enter an MST (two points in one cone are < 60 degrees apart, so
  // the farther one always loses an exchange). The maintained grid yields
  // those <= 6 candidates; each is then the textbook dynamic-tree MST
  // insertion: keep the tree unless the candidate beats the heaviest edge
  // on the cycle it closes, in which case swap via one cut + one link.
  const auto& p = points_[static_cast<std::size_t>(id)];
  const auto cones = grid_.cone_nearest(
      p, [&](std::int32_t other) { return other == id; });
  std::array<WeightedEdge, 6> candidates;
  std::size_t k = 0;
  for (const auto& cone : cones) {
    if (cone.id < 0) continue;
    const auto q = static_cast<NodeId>(cone.id);
    candidates[k++] = q < id ? WeightedEdge{cone.w2, q, id}
                             : WeightedEdge{cone.w2, id, q};
  }
  if (k == 0) {
    throw std::logic_error(
        "IncrementalMst::attach: candidate grid returned no neighbors");
  }
  // k <= 6 by construction (at most one candidate per cone). The min()
  // restates that bound where the optimizer can see it: without it GCC 12's
  // -Warray-bounds hallucinates an out-of-bounds insertion-sort subscript
  // after inlining std::sort over the fixed-size array.
  k = std::min(k, candidates.size());
  std::sort(candidates.begin(), candidates.begin() + k);
  for (std::size_t i = 0; i < k; ++i) {
    const WeightedEdge& cand = candidates[i];
    const NodeId q = cand.a == id ? cand.b : cand.a;
    if (!dtree_.connected(id, q)) {
      add_tree_edge(cand.a, cand.b, cand.w2);
      delta_.added.push_back(IdEdge{cand.a, cand.b});
      continue;
    }
    const EdgeHandle m = dtree_.path_max(id, q);
    const WeightedEdge heaviest{dtree_.weight2(m), dtree_.edge_a(m),
                                dtree_.edge_b(m)};
    if (cand < heaviest) {
      ++stats_.path_max_swaps;
      delta_.removed.push_back(IdEdge{heaviest.a, heaviest.b});
      remove_tree_edge(heaviest.a,
                       AdjEntry{heaviest.b, static_cast<EdgeHandle>(m)});
      add_tree_edge(cand.a, cand.b, cand.w2);
      delta_.added.push_back(IdEdge{cand.a, cand.b});
    }
  }
}

void IncrementalMst::detach(NodeId id) {
  edges_cache_stale_ = true;
  // Re-tune while the grid still mirrors the alive set (a rebuild includes
  // id; the erase below then removes it).
  if (4 * num_alive_ + 8 < grid_built_points_) rebuild_grid();
  alive_[static_cast<std::size_t>(id)] = false;
  --num_alive_;
  grid_.erase(id, points_[static_cast<std::size_t>(id)]);

  std::vector<NodeId> seeds;
  auto& incident = adj_[static_cast<std::size_t>(id)];
  seeds.reserve(incident.size());
  while (!incident.empty()) {
    const AdjEntry entry = incident.back();
    seeds.push_back(entry.neighbor);
    delta_.removed.push_back(entry.neighbor < id
                                 ? IdEdge{entry.neighbor, id}
                                 : IdEdge{id, entry.neighbor});
    remove_tree_edge(id, entry);
  }
  if (num_alive_ < 2 || seeds.size() <= 1) return;
  reconnect(std::move(seeds));
}

void IncrementalMst::reconnect(std::vector<NodeId> seeds) {
  // Cut property: the new MST is the surviving forest plus safe cross
  // edges. Boruvka over the <= 6 leftover components (Euclidean MSTs have
  // max degree 6): each round links every component's minimum outgoing
  // edge, found by grid nearest-neighbor searches over the component's
  // members with its own members excluded. One component per round may
  // abstain — every other one still merges, so rounds strictly shrink the
  // component count — and the lockstep enumeration below always elects the
  // one that proves largest, so the big side of a split is never walked.
  for (;;) {
    std::vector<NodeId> reps;
    for (const NodeId s : seeds) {
      bool known = false;
      for (const NodeId r : reps) known = known || dtree_.connected(s, r);
      if (!known) reps.push_back(s);
    }
    if (reps.size() <= 1) return;
    ++stats_.boruvka_rounds;

    struct Walk {
      std::vector<NodeId> stack;
      std::vector<NodeId> members;
      std::uint64_t stamp = 0;
      bool done = false;
    };
    std::vector<Walk> walks(reps.size());
    for (std::size_t i = 0; i < walks.size(); ++i) {
      walks[i].stamp = ++stamp_clock_;
      walks[i].stack.push_back(reps[i]);
      walks[i].members.push_back(reps[i]);
      comp_stamp_[static_cast<std::size_t>(reps[i])] = walks[i].stamp;
    }
    std::size_t finished = 0;
    while (finished + 1 < walks.size()) {
      for (auto& walk : walks) {
        if (walk.done) continue;
        if (walk.stack.empty()) {
          walk.done = true;
          if (++finished + 1 >= walks.size()) break;
          continue;
        }
        const NodeId u = walk.stack.back();
        walk.stack.pop_back();
        for (const AdjEntry& e : adj_[static_cast<std::size_t>(u)]) {
          auto& stamp = comp_stamp_[static_cast<std::size_t>(e.neighbor)];
          if (stamp == walk.stamp) continue;
          stamp = walk.stamp;
          walk.stack.push_back(e.neighbor);
          walk.members.push_back(e.neighbor);
        }
      }
    }

    std::vector<WeightedEdge> candidates;
    candidates.reserve(walks.size());
    for (std::size_t i = 0; i < walks.size(); ++i) {
      const auto& walk = walks[i];
      if (!walk.done) continue;  // the (one) abstaining largest component
      // Seed the running best with the rep-to-rep cross edges (valid
      // outgoing edges by construction), then let it cap every member's
      // grid search: interior members — whose nearest outsider is across
      // the whole component — terminate after a few rings instead of
      // falling back to a full sweep. Exactness survives because the grid
      // answers distances up to the cap exactly, ties included.
      WeightedEdge best{std::numeric_limits<double>::infinity(), -1, -1};
      for (std::size_t j = 0; j < walks.size(); ++j) {
        if (j == i) continue;
        const NodeId u = reps[i];
        const NodeId v = reps[j];
        const double w2 = squared_weight(u, v);
        const WeightedEdge cand = v < u ? WeightedEdge{w2, v, u}
                                        : WeightedEdge{w2, u, v};
        if (cand < best) best = cand;
      }
      for (const NodeId u : walk.members) {
        const auto near = grid_.nearest(
            points_[static_cast<std::size_t>(u)],
            [&](std::int32_t v) {
              return comp_stamp_[static_cast<std::size_t>(v)] == walk.stamp;
            },
            best.w2);
        if (near.id < 0) continue;
        const auto v = static_cast<NodeId>(near.id);
        const WeightedEdge cand = v < u ? WeightedEdge{near.w2, v, u}
                                        : WeightedEdge{near.w2, u, v};
        if (cand < best) best = cand;
      }
      if (best.a < 0) {
        throw std::logic_error(
            "IncrementalMst::reconnect: component has no outgoing edge");
      }
      candidates.push_back(best);
    }
    std::sort(candidates.begin(), candidates.end());
    bool linked = false;
    for (const auto& c : candidates) {
      if (dtree_.connected(c.a, c.b)) continue;
      add_tree_edge(c.a, c.b, c.w2);
      delta_.added.push_back(IdEdge{c.a, c.b});
      linked = true;
    }
    if (!linked) {
      throw std::logic_error("IncrementalMst::reconnect: no progress");
    }
  }
}

}  // namespace wagg::mst
