#include "mst/tree.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

namespace wagg::mst {

int AggregationTree::height() const noexcept {
  int h = 0;
  for (const auto d : depth) h = std::max(h, static_cast<int>(d));
  return h;
}

AggregationTree orient_toward_sink(geom::Pointset points,
                                   std::span<const Edge> edges,
                                   std::int32_t sink) {
  const std::size_t n = points.size();
  if (sink < 0 || static_cast<std::size_t>(sink) >= n) {
    throw std::invalid_argument("orient_toward_sink: sink out of range");
  }
  if (!is_spanning_tree(n, edges)) {
    throw std::invalid_argument("orient_toward_sink: edges not a spanning tree");
  }

  std::vector<std::vector<std::int32_t>> adjacency(n);
  for (const Edge& e : edges) {
    adjacency[static_cast<std::size_t>(e.u)].push_back(e.v);
    adjacency[static_cast<std::size_t>(e.v)].push_back(e.u);
  }

  AggregationTree tree;
  tree.sink = sink;
  tree.parent.assign(n, -2);  // -2: unvisited
  tree.depth.assign(n, -1);
  tree.link_of_node.assign(n, -1);
  tree.children.assign(n, {});

  std::queue<std::int32_t> frontier;
  frontier.push(sink);
  tree.parent[static_cast<std::size_t>(sink)] = -1;
  tree.depth[static_cast<std::size_t>(sink)] = 0;

  std::vector<geom::Link> links;
  links.reserve(n - 1);
  while (!frontier.empty()) {
    const std::int32_t v = frontier.front();
    frontier.pop();
    for (const std::int32_t w : adjacency[static_cast<std::size_t>(v)]) {
      if (tree.parent[static_cast<std::size_t>(w)] != -2) continue;
      tree.parent[static_cast<std::size_t>(w)] = v;
      tree.depth[static_cast<std::size_t>(w)] =
          tree.depth[static_cast<std::size_t>(v)] + 1;
      tree.children[static_cast<std::size_t>(v)].push_back(w);
      tree.link_of_node[static_cast<std::size_t>(w)] =
          static_cast<std::int32_t>(links.size());
      links.push_back(geom::Link{w, v});  // child transmits to parent
      frontier.push(w);
    }
  }
  tree.links = geom::LinkSet(points, std::move(links));
  tree.points = std::move(points);
  return tree;
}

AggregationTree mst_tree(geom::Pointset points, std::int32_t sink) {
  const auto edges = euclidean_mst(points);
  return orient_toward_sink(std::move(points), edges, sink);
}

PairingTree pairing_tree(geom::Pointset points, std::int32_t sink) {
  const std::size_t n = points.size();
  if (n < 2) throw std::invalid_argument("pairing_tree: need >= 2 points");
  if (sink < 0 || static_cast<std::size_t>(sink) >= n) {
    throw std::invalid_argument("pairing_tree: sink out of range");
  }

  std::vector<std::int32_t> active;
  active.reserve(n);
  for (std::size_t v = 0; v < n; ++v) {
    active.push_back(static_cast<std::int32_t>(v));
  }

  std::vector<Edge> edges;
  std::vector<std::int32_t> level_of_edge;
  int level = 0;
  while (active.size() > 1) {
    // Greedy nearest-pair matching among active nodes: sort all candidate
    // pairs by distance and take them greedily. Deterministic via
    // (dist, i, j) ordering.
    struct Candidate {
      double d2;
      std::size_t i;
      std::size_t j;
    };
    std::vector<Candidate> cands;
    cands.reserve(active.size() * (active.size() - 1) / 2);
    for (std::size_t i = 0; i < active.size(); ++i) {
      for (std::size_t j = i + 1; j < active.size(); ++j) {
        cands.push_back({geom::distance(
                             points[static_cast<std::size_t>(active[i])],
                             points[static_cast<std::size_t>(active[j])]),
                         i, j});
      }
    }
    std::sort(cands.begin(), cands.end(),
              [](const Candidate& a, const Candidate& b) {
                if (a.d2 != b.d2) return a.d2 < b.d2;
                if (a.i != b.i) return a.i < b.i;
                return a.j < b.j;
              });
    std::vector<bool> matched(active.size(), false);
    std::vector<std::pair<std::size_t, std::size_t>> pairs;
    for (const auto& c : cands) {
      if (matched[c.i] || matched[c.j]) continue;
      matched[c.i] = matched[c.j] = true;
      pairs.emplace_back(c.i, c.j);
    }
    std::vector<std::int32_t> survivors;
    // The survivor is the sink if it participates, else the smaller index,
    // so the sink is never eliminated.
    for (const auto& [i, j] : pairs) {
      std::int32_t a = active[i];
      std::int32_t b = active[j];
      std::int32_t keep = (b == sink) ? b : (a == sink ? a : std::min(a, b));
      std::int32_t drop = (keep == a) ? b : a;
      edges.push_back(Edge{drop, keep});
      level_of_edge.push_back(level);
      survivors.push_back(keep);
    }
    for (std::size_t i = 0; i < active.size(); ++i) {
      if (!matched[i]) survivors.push_back(active[i]);
    }
    std::sort(survivors.begin(), survivors.end());
    active = std::move(survivors);
    ++level;
  }

  PairingTree result;
  result.num_levels = level;
  result.tree = orient_toward_sink(std::move(points), edges, sink);
  // orient_toward_sink re-indexes links by BFS order; map levels onto the
  // final link indices via the child node of each edge (edge {drop, keep}
  // becomes drop's upward link, since each drop node is dropped exactly once).
  result.level_of_link.assign(result.tree.links.size(), 0);
  for (std::size_t e = 0; e < edges.size(); ++e) {
    const std::int32_t child = edges[e].u;
    const std::int32_t link_idx =
        result.tree.link_of_node[static_cast<std::size_t>(child)];
    result.level_of_link[static_cast<std::size_t>(link_idx)] =
        level_of_edge[e];
  }
  return result;
}

}  // namespace wagg::mst
