#ifndef WAGG_MST_MST_H
#define WAGG_MST_MST_H

#include <cstdint>
#include <span>
#include <vector>

#include "geom/point.h"

namespace wagg::mst {

/// An undirected edge between two point indices.
struct Edge {
  std::int32_t u = -1;
  std::int32_t v = -1;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// Exact Euclidean minimum spanning tree via Prim's algorithm on the implicit
/// complete graph, O(n^2) time / O(n) space. Ties are broken by smaller node
/// index so the result is deterministic even on degenerate pointsets.
/// Throws std::invalid_argument for fewer than 2 points.
[[nodiscard]] std::vector<Edge> euclidean_mst(const geom::Pointset& points);

/// Kruskal's algorithm on the explicit complete graph, O(n^2 log n).
/// Exists as an independent cross-check for euclidean_mst (same weight, and
/// identical edges when all pairwise distances are distinct).
[[nodiscard]] std::vector<Edge> kruskal_mst(const geom::Pointset& points);

/// MST of collinear points: connects neighbours in sorted x order (the unique
/// MST on the line when gaps are distinct). Throws if any y != 0.
[[nodiscard]] std::vector<Edge> line_mst(const geom::Pointset& points);

/// Union of k rounds of MST over the complete graph with previously chosen
/// edges removed — the k-edge-connectivity construction referenced by the
/// paper's Remark 2 (following [11]). k = 1 equals euclidean_mst.
[[nodiscard]] std::vector<Edge> k_fold_mst(const geom::Pointset& points,
                                           int k);

/// Total Euclidean weight of an edge list.
[[nodiscard]] double total_weight(const geom::Pointset& points,
                                  std::span<const Edge> edges);

/// True iff `edges` forms a spanning tree on n nodes (n-1 edges, connected).
[[nodiscard]] bool is_spanning_tree(std::size_t n, std::span<const Edge> edges);

/// Disjoint-set forest with union by rank and path halving.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n);
  /// Representative of x's component.
  [[nodiscard]] std::size_t find(std::size_t x);
  /// Merges the components of a and b; returns false if already merged.
  bool unite(std::size_t a, std::size_t b);
  [[nodiscard]] std::size_t num_components() const noexcept {
    return components_;
  }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::uint8_t> rank_;
  std::size_t components_;
};

}  // namespace wagg::mst

#endif  // WAGG_MST_MST_H
