#ifndef WAGG_MST_INCREMENTAL_H
#define WAGG_MST_INCREMENTAL_H

#include <cstdint>
#include <span>
#include <vector>

#include "geom/point.h"
#include "mst/mst.h"

namespace wagg::mst {

/// Stable node identifier inside an IncrementalMst. Ids are assigned
/// consecutively (the initial pointset gets 0..n-1, each add_point the next
/// integer) and are never reused, so they survive arbitrary churn — the
/// dynamic planner keys every cross-epoch structure on them.
using NodeId = std::int32_t;

/// An undirected MST edge between two stable node ids, stored canonically
/// with a < b.
struct IdEdge {
  NodeId a = -1;
  NodeId b = -1;

  friend bool operator==(const IdEdge&, const IdEdge&) = default;
};

/// Edge changes accumulated by an IncrementalMst since the last
/// take_delta(). When `rebuilt` is set the added/removed lists are empty
/// and meaningless: the whole tree was recomputed and the consumer must
/// reconcile against edges() wholesale. An edge may appear in both lists
/// (removed then re-added within the window); consumers diff against their
/// own view of the pre-window tree.
struct MstDelta {
  std::vector<IdEdge> added;
  std::vector<IdEdge> removed;
  bool rebuilt = false;

  [[nodiscard]] bool empty() const noexcept {
    return !rebuilt && added.empty() && removed.empty();
  }
};

/// Exact Euclidean MST maintained under point insertion, deletion, and
/// motion, at a cost proportional to the disturbed neighborhood instead of
/// the instance:
///
///   add_point    new MST is a subset of (old edges + the new point's star);
///                the maintained tree is kept in weight order, so one sort
///                of the star plus a merge-Kruskal pass suffices.
///   remove_point the old edges minus the removed point's incident ones stay
///                in the new MST (cycle property: deleting a vertex only
///                removes cycles); the <= 6 resulting components (Euclidean
///                MSTs have max degree 6) are reconnected by the minimum
///                cross edge per component pair, found by scanning member
///                lists — O(n * size of the smaller components) in practice.
///   move_point   remove + re-add under the same id.
///
/// All updates are deterministic: candidate edges are compared by
/// (squared weight, a, b). With distinct pairwise distances the maintained
/// tree is THE Euclidean MST; under ties it is an MST of equal weight (tests
/// compare weights against a from-scratch Prim run).
///
/// Every structural change is journaled into an MstDelta that tree
/// consumers (dynamic::DynamicPlanner's geom::LinkStore orientation) drain
/// with take_delta() to update in place instead of re-reading the world.
class IncrementalMst {
 public:
  /// Ids 0..initial.size()-1 map to the initial points. A single point (or
  /// even an empty set) is allowed; the tree is empty until 2 nodes exist.
  explicit IncrementalMst(const geom::Pointset& initial);

  /// Inserts a point, returning its new stable id.
  NodeId add_point(const geom::Point& position);

  /// Deletes a point. Throws std::invalid_argument for dead/unknown ids.
  void remove_point(NodeId id);

  /// Moves a point to a new position (same id before and after).
  void move_point(NodeId id, const geom::Point& position);

  /// Deferred variants: apply the point change WITHOUT updating the tree.
  /// The maintained edges are stale until rebuild() runs; interleaving
  /// deferred and immediate updates without a rebuild in between is a bug.
  /// Worth it for bulk epochs — once a batch mutates more than ~n/log n
  /// points, one O(n^2) Prim beats per-mutation maintenance.
  NodeId add_point_deferred(const geom::Point& position);
  void remove_point_deferred(NodeId id);
  void move_point_deferred(NodeId id, const geom::Point& position);

  /// From-scratch, id-preserving recompute of the maintained tree.
  void rebuild();

  /// Drains the accumulated edge-change journal (and resets it).
  [[nodiscard]] MstDelta take_delta();

  [[nodiscard]] bool alive(NodeId id) const noexcept {
    return id >= 0 && static_cast<std::size_t>(id) < alive_.size() &&
           alive_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] std::size_t num_alive() const noexcept { return num_alive_; }
  [[nodiscard]] const geom::Point& position(NodeId id) const;

  /// Alive ids in increasing order (the canonical compaction order).
  [[nodiscard]] std::vector<NodeId> alive_ids() const;

  /// Current MST edges over the alive points (stable ids, canonical a < b,
  /// sorted by (a, b) so equal trees compare equal).
  [[nodiscard]] const std::vector<IdEdge>& edges() const;

  /// Total Euclidean weight of the maintained tree.
  [[nodiscard]] double weight() const;

  /// The maintained edges re-indexed into compact [0, num_alive) space
  /// following alive_ids() order — ready for orient_toward_sink.
  [[nodiscard]] std::vector<Edge> compact_edges() const;

 private:
  /// A maintained or candidate edge with its cached squared weight;
  /// canonical a < b, ordered by (w2, a, b) — the same order as
  /// (weight, a, b) since x -> x^2 is monotone on lengths.
  struct WeightedEdge {
    double w2 = 0.0;
    NodeId a = -1;
    NodeId b = -1;

    [[nodiscard]] bool operator<(const WeightedEdge& other) const noexcept {
      if (w2 != other.w2) return w2 < other.w2;
      if (a != other.a) return a < other.a;
      return b < other.b;
    }
  };

  [[nodiscard]] double squared_weight(NodeId a, NodeId b) const;
  /// Insertion update: merge-Kruskal over (weight-ordered tree + sorted
  /// star of id).
  void attach(NodeId id);
  /// Deletion update: drops id and its incident edges, then reconnects the
  /// leftover components via their minimum cross edges.
  void detach(NodeId id);
  void reset_tree_from(const std::vector<Edge>& compact,
                       const std::vector<NodeId>& ids);

  std::vector<geom::Point> points_;  ///< indexed by id (dead slots stale)
  std::vector<bool> alive_;
  std::size_t num_alive_ = 0;
  /// The maintained tree in (w2, a, b) order — Kruskal acceptance order.
  std::vector<WeightedEdge> tree_;
  /// Lazily materialized (a, b)-sorted view backing edges().
  mutable std::vector<IdEdge> edges_cache_;
  mutable bool edges_cache_stale_ = true;
  MstDelta delta_;
};

}  // namespace wagg::mst

#endif  // WAGG_MST_INCREMENTAL_H
