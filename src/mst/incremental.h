#ifndef WAGG_MST_INCREMENTAL_H
#define WAGG_MST_INCREMENTAL_H

#include <cstdint>
#include <span>
#include <vector>

#include "geom/point.h"
#include "mst/mst.h"

namespace wagg::mst {

/// Stable node identifier inside an IncrementalMst. Ids are assigned
/// consecutively (the initial pointset gets 0..n-1, each add_point the next
/// integer) and are never reused, so they survive arbitrary churn — the
/// dynamic planner keys every cross-epoch structure on them.
using NodeId = std::int32_t;

/// An undirected MST edge between two stable node ids, stored canonically
/// with a < b.
struct IdEdge {
  NodeId a = -1;
  NodeId b = -1;

  friend bool operator==(const IdEdge&, const IdEdge&) = default;
};

/// Exact Euclidean MST maintained under point insertion, deletion, and
/// motion, at a cost proportional to the disturbed neighborhood instead of
/// the instance:
///
///   add_point    new MST is a subset of (old edges + the new point's star);
///                one Kruskal pass over those 2n-1 edges, O(n log n).
///   remove_point the old edges minus the removed point's incident ones stay
///                in the new MST (cycle property: deleting a vertex only
///                removes cycles); the <= 6 resulting components (Euclidean
///                MSTs have max degree 6) are reconnected by the minimum
///                cross edge per component pair, found by scanning member
///                lists — O(n * size of the smaller components) in practice.
///   move_point   remove + re-add under the same id.
///
/// All updates are deterministic: candidate edges are compared by
/// (weight, a, b). With distinct pairwise distances the maintained tree is
/// THE Euclidean MST; under ties it is an MST of equal weight (tests compare
/// weights against a from-scratch Prim run).
class IncrementalMst {
 public:
  /// Ids 0..initial.size()-1 map to the initial points. A single point (or
  /// even an empty set) is allowed; the tree is empty until 2 nodes exist.
  explicit IncrementalMst(const geom::Pointset& initial);

  /// Inserts a point, returning its new stable id.
  NodeId add_point(const geom::Point& position);

  /// Deletes a point. Throws std::invalid_argument for dead/unknown ids.
  void remove_point(NodeId id);

  /// Moves a point to a new position (same id before and after).
  void move_point(NodeId id, const geom::Point& position);

  /// Deferred variants: apply the point change WITHOUT updating the tree.
  /// The maintained edges are stale until rebuild() runs; interleaving
  /// deferred and immediate updates without a rebuild in between is a bug.
  /// Worth it for bulk epochs — once a batch mutates more than ~n/log n
  /// points, one O(n^2) Prim beats per-mutation maintenance.
  NodeId add_point_deferred(const geom::Point& position);
  void remove_point_deferred(NodeId id);
  void move_point_deferred(NodeId id, const geom::Point& position);

  /// From-scratch, id-preserving recompute of the maintained tree.
  void rebuild();

  [[nodiscard]] bool alive(NodeId id) const noexcept {
    return id >= 0 && static_cast<std::size_t>(id) < alive_.size() &&
           alive_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] std::size_t num_alive() const noexcept { return num_alive_; }
  [[nodiscard]] const geom::Point& position(NodeId id) const;

  /// Alive ids in increasing order (the canonical compaction order).
  [[nodiscard]] std::vector<NodeId> alive_ids() const;

  /// Current MST edges over the alive points (stable ids, canonical a < b,
  /// sorted by (a, b) so equal trees compare equal).
  [[nodiscard]] const std::vector<IdEdge>& edges() const noexcept {
    return edges_;
  }

  /// Total Euclidean weight of the maintained tree.
  [[nodiscard]] double weight() const;

  /// The maintained edges re-indexed into compact [0, num_alive) space
  /// following alive_ids() order — ready for orient_toward_sink.
  [[nodiscard]] std::vector<Edge> compact_edges() const;

 private:
  [[nodiscard]] double edge_weight(NodeId a, NodeId b) const;
  /// Insertion update: Kruskal over (current forest + id's star).
  void attach(NodeId id);
  /// Deletion update: drops id and its incident edges, then reconnects the
  /// leftover components via their minimum cross edges.
  void detach(NodeId id);

  std::vector<geom::Point> points_;  ///< indexed by id (dead slots stale)
  std::vector<bool> alive_;
  std::size_t num_alive_ = 0;
  std::vector<IdEdge> edges_;
};

}  // namespace wagg::mst

#endif  // WAGG_MST_INCREMENTAL_H
