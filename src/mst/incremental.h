#ifndef WAGG_MST_INCREMENTAL_H
#define WAGG_MST_INCREMENTAL_H

#include <cstdint>
#include <span>
#include <vector>

#include "geom/point.h"
#include "mst/dtree.h"
#include "mst/mst.h"
#include "mst/point_grid.h"

namespace wagg::mst {

/// Stable node identifier inside an IncrementalMst. Ids are assigned
/// consecutively (the initial pointset gets 0..n-1, each add_point the next
/// integer) and are never reused, so they survive arbitrary churn — the
/// dynamic planner keys every cross-epoch structure on them.
using NodeId = std::int32_t;

/// An undirected MST edge between two stable node ids, stored canonically
/// with a < b.
struct IdEdge {
  NodeId a = -1;
  NodeId b = -1;

  friend bool operator==(const IdEdge&, const IdEdge&) = default;
};

/// Edge changes accumulated by an IncrementalMst since the last
/// take_delta(). When `rebuilt` is set the added/removed lists are empty
/// and meaningless: the whole tree was recomputed and the consumer must
/// reconcile against edges() wholesale. An edge may appear in both lists
/// (removed then re-added within the window); consumers diff against their
/// own view of the pre-window tree.
struct MstDelta {
  std::vector<IdEdge> added;
  std::vector<IdEdge> removed;
  bool rebuilt = false;

  [[nodiscard]] bool empty() const noexcept {
    return !rebuilt && added.empty() && removed.empty();
  }
};

/// Work counters of an IncrementalMst, accumulated since construction.
/// Consumers (the dynamic planner's telemetry publisher) diff successive
/// reads to attribute work per epoch; none of these affect results.
struct IncrementalMstStats {
  /// attach() exchanges: a cone candidate beat path_max and cost one
  /// cut + one link. The per-insert count is the real "how disturbed was
  /// the tree" signal (inserts that merely connect don't swap).
  std::uint64_t path_max_swaps = 0;
  /// reconnect() rounds: each Boruvka round links every leftover
  /// component's minimum outgoing edge. Bounded by log(components) <= 3
  /// per removal; climbing counts mean removals keep splitting badly.
  std::uint64_t boruvka_rounds = 0;
  /// Ring searches that blew kRingBudget and swept every occupied cell —
  /// the grid's exact-but-linear escape hatch (see PointGrid).
  std::uint64_t grid_fallback_sweeps = 0;
};

/// Exact Euclidean MST maintained under point insertion, deletion, and
/// motion, at a cost proportional to the disturbed neighborhood instead of
/// the instance. The engine is a DynamicTree (splay path decomposition,
/// O(log n) link/cut/path_max) plus a maintained detail::PointGrid spatial
/// index that turns "the new point's star" into O(1)-ish candidates:
///
///   add_point    the new MST is a subset of (old edges + the new point's
///                star), and the star edges that can enter an MST connect
///                the point to the NEAREST neighbor in each of its six
///                60-degree cones (same-cone points are < 60 degrees apart,
///                so the farther one is never needed — the classic Yao-graph
///                argument). The grid yields those <= 6 candidates; each is
///                applied as the textbook dynamic-MST insertion: skip it
///                unless it beats path_max(p, q), else one cut + one link.
///   remove_point the old edges minus the removed point's incident ones
///                stay in the new MST (cycle property); the <= 6 resulting
///                components (Euclidean MSTs have max degree 6) are
///                reconnected Boruvka-style by each component's minimum
///                outgoing edge, found by grid nearest-neighbor searches
///                over the members of every component EXCEPT the largest —
///                components are enumerated in lockstep so the big one is
///                never walked.
///   move_point   remove + re-add under the same id.
///
/// All updates are deterministic: edges compare by (squared weight, a, b),
/// in the maintained tree and among candidates alike. With distinct
/// pairwise distances the maintained tree is THE Euclidean MST; under ties
/// it is an MST of equal weight (tests compare weights against a
/// from-scratch Prim run).
///
/// Every structural change is journaled into an MstDelta that tree
/// consumers (dynamic::DynamicPlanner's geom::LinkStore orientation) drain
/// with take_delta() to update in place instead of re-reading the world.
class IncrementalMst {
 public:
  /// Ids 0..initial.size()-1 map to the initial points. A single point (or
  /// even an empty set) is allowed; the tree is empty until 2 nodes exist.
  explicit IncrementalMst(const geom::Pointset& initial);

  /// Inserts a point, returning its new stable id.
  NodeId add_point(const geom::Point& position);

  /// Deletes a point. Throws std::invalid_argument for dead/unknown ids.
  void remove_point(NodeId id);

  /// Moves a point to a new position (same id before and after).
  void move_point(NodeId id, const geom::Point& position);

  /// Deferred variants: apply the point change WITHOUT updating the tree.
  /// The maintained edges are stale until rebuild() runs; interleaving
  /// deferred and immediate updates without a rebuild in between is a bug.
  /// Worth it for bulk epochs — once a batch mutates a sizable fraction of
  /// the instance, one O(n^2) Prim beats per-mutation maintenance.
  NodeId add_point_deferred(const geom::Point& position);
  void remove_point_deferred(NodeId id);
  void move_point_deferred(NodeId id, const geom::Point& position);

  /// From-scratch, id-preserving recompute of the maintained tree.
  void rebuild();

  /// Drains the accumulated edge-change journal (and resets it).
  [[nodiscard]] MstDelta take_delta();

  [[nodiscard]] bool alive(NodeId id) const noexcept {
    return id >= 0 && static_cast<std::size_t>(id) < alive_.size() &&
           alive_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] std::size_t num_alive() const noexcept { return num_alive_; }
  [[nodiscard]] const geom::Point& position(NodeId id) const;

  /// Alive ids in increasing order (the canonical compaction order).
  [[nodiscard]] std::vector<NodeId> alive_ids() const;

  /// Current MST edges over the alive points (stable ids, canonical a < b,
  /// sorted by (a, b) so equal trees compare equal).
  [[nodiscard]] const std::vector<IdEdge>& edges() const;

  /// Total Euclidean weight of the maintained tree.
  [[nodiscard]] double weight() const;

  /// The maintained edges re-indexed into compact [0, num_alive) space
  /// following alive_ids() order — ready for orient_toward_sink.
  [[nodiscard]] std::vector<Edge> compact_edges() const;

  /// Accumulated work counters (telemetry; see IncrementalMstStats).
  [[nodiscard]] IncrementalMstStats stats() const noexcept {
    IncrementalMstStats out = stats_;
    out.grid_fallback_sweeps = grid_.fallback_sweeps();
    return out;
  }

 private:
  /// A candidate edge with its cached squared weight; canonical a < b,
  /// ordered by (w2, a, b) — the same order as (weight, a, b) since
  /// x -> x^2 is monotone on lengths.
  struct WeightedEdge {
    double w2 = 0.0;
    NodeId a = -1;
    NodeId b = -1;

    [[nodiscard]] bool operator<(const WeightedEdge& other) const noexcept {
      if (w2 != other.w2) return w2 < other.w2;
      if (a != other.a) return a < other.a;
      return b < other.b;
    }
  };
  /// One adjacency entry of the maintained tree. Degree is <= 6 for
  /// distinct positions (Euclidean MST bound), but coincident points can
  /// exceed it — a hub of zero-weight twin edges — so the lists must stay
  /// genuinely dynamic.
  struct AdjEntry {
    NodeId neighbor = -1;
    EdgeHandle edge = kNoEdgeHandle;
  };

  [[nodiscard]] double squared_weight(NodeId a, NodeId b) const;
  /// Insertion update: cone candidates + path_max swaps.
  void attach(NodeId id);
  /// Deletion update: cuts id's incident edges, then reconnects the
  /// leftover components via their minimum outgoing edges (grid-pruned).
  void detach(NodeId id);
  void reconnect(std::vector<NodeId> seeds);
  /// Adds a maintained tree edge (dtree link + adjacency on both sides).
  void add_tree_edge(NodeId a, NodeId b, double w2);
  /// Removes a maintained tree edge by one side's adjacency entry.
  void remove_tree_edge(NodeId a, const AdjEntry& entry);
  void seed_tree_from(const std::vector<Edge>& compact,
                      const std::vector<NodeId>& ids);
  /// Rebuilds the point grid from the alive set, re-tuning the cell size.
  void rebuild_grid();
  /// Grows dtree vertices / adjacency / stamps to cover `id`.
  void ensure_node(NodeId id);

  std::vector<geom::Point> points_;  ///< indexed by id (dead slots stale)
  std::vector<bool> alive_;
  std::size_t num_alive_ = 0;
  /// The maintained tree: path-max structure + explicit adjacency (the
  /// degree-<= 6 lists detach and edges() iterate).
  DynamicTree dtree_;
  std::vector<std::vector<AdjEntry>> adj_;
  /// Maintained spatial candidate index over the alive points.
  detail::PointGrid grid_;
  std::size_t grid_built_points_ = 0;  ///< alive count at the last re-tune
  /// Component marks for detach's lockstep enumeration (monotone stamps, so
  /// stale marks never alias).
  std::vector<std::uint64_t> comp_stamp_;
  std::uint64_t stamp_clock_ = 0;
  /// Lazily materialized (a, b)-sorted view backing edges().
  mutable std::vector<IdEdge> edges_cache_;
  mutable bool edges_cache_stale_ = true;
  MstDelta delta_;
  /// Work counters (grid_fallback_sweeps lives on the grid; stats() merges).
  IncrementalMstStats stats_;
};

}  // namespace wagg::mst

#endif  // WAGG_MST_INCREMENTAL_H
