#ifndef WAGG_MST_POINT_GRID_H
#define WAGG_MST_POINT_GRID_H

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <unordered_map>
#include <vector>

// wagg-lint: allow(class-grid) cell_key mixer only; no grid/row-cache state
#include "conflict/class_grid.h"
#include "geom/point.h"

namespace wagg::mst::detail {

/// One nearest-candidate answer: the point id minimizing (squared distance,
/// id), or id == -1 when no admissible point exists.
struct NearCandidate {
  std::int32_t id = -1;
  double w2 = std::numeric_limits<double>::infinity();
};

/// Uniform hash grid over the alive points of an IncrementalMst — the
/// maintained spatial candidate index behind the dynamic-tree MST engine.
/// It is the point-set analogue of conflict::detail::ClassGrid's endpoint
/// buckets and shares its mixed cell keys and saturating coordinates; the
/// query side differs because the MST engine needs EXACT nearest neighbors,
/// not over-approximate candidate lists.
///
/// Searches walk expanding Chebyshev rings of cells around the query: a
/// candidate is certified once every closer ring has been scanned, because
/// any point in a ring-r cell lies at Euclidean distance >= (r-1) * cell
/// from the query point. When a search would walk more cells than a budget
/// (hull points with empty cones, extreme density spreads like the
/// exponential chain), it falls back to one exact sweep over the occupied
/// cells — the worst case matches a brute-force scan instead of sinking
/// below it.
class PointGrid {
 public:
  PointGrid() = default;

  /// Resets to an empty grid with the given cell size (> 0).
  void reset(double cell) {
    if (!(cell > 0.0)) {
      throw std::invalid_argument("PointGrid: cell size must be positive");
    }
    cells_.clear();
    cell_ = cell;
    num_points_ = 0;
    min_cx_ = min_cy_ = std::numeric_limits<std::int64_t>::max();
    max_cx_ = max_cy_ = std::numeric_limits<std::int64_t>::min();
  }

  [[nodiscard]] std::size_t size() const noexcept { return num_points_; }
  [[nodiscard]] double cell_size() const noexcept { return cell_; }

  /// Lifetime count of budget-exceeded ring searches that fell back to the
  /// exact occupied-cell sweep (survives reset(): it tracks the engine, not
  /// one grid generation). The telemetry layer surfaces it as
  /// mst.grid_fallback_sweeps — a sudden climb means the cell tuning no
  /// longer matches the instance's density spread.
  [[nodiscard]] std::uint64_t fallback_sweeps() const noexcept {
    return fallback_sweeps_;
  }

  void insert(std::int32_t id, const geom::Point& p) {
    const auto [cx, cy] = coords(p);
    auto& cell = cells_[conflict::detail::cell_key(cx, cy)];
    if (cell.entries.empty()) {
      cell.cx = cx;
      cell.cy = cy;
    }
    cell.entries.push_back(Entry{p, id});
    ++num_points_;
    min_cx_ = std::min(min_cx_, cx);
    max_cx_ = std::max(max_cx_, cx);
    min_cy_ = std::min(min_cy_, cy);
    max_cy_ = std::max(max_cy_, cy);
  }

  /// Removes one (id, p) entry inserted earlier; `p` must be bit-identical
  /// to the inserted position. Throws std::logic_error when absent — the
  /// caller's bookkeeping desynchronized. Occupied-cell bounds stay
  /// conservative (they never shrink); they only bound ring searches, so
  /// staleness costs empty-ring scans, never correctness.
  void erase(std::int32_t id, const geom::Point& p) {
    const auto [cx, cy] = coords(p);
    const auto it = cells_.find(conflict::detail::cell_key(cx, cy));
    if (it == cells_.end()) {
      throw std::logic_error("PointGrid::erase: cell not found");
    }
    auto& entries = it->second.entries;
    const auto pos =
        std::find_if(entries.begin(), entries.end(),
                     [&](const Entry& e) { return e.id == id; });
    if (pos == entries.end()) {
      throw std::logic_error("PointGrid::erase: id not in cell");
    }
    *pos = entries.back();
    entries.pop_back();
    if (entries.empty()) cells_.erase(it);
    --num_points_;
  }

  /// The 60-degree cone around `from` that contains direction (dx, dy).
  /// Any two directions in one cone are < 60 degrees apart (up to the
  /// floating-point boundary), which is exactly what makes nearest-per-cone
  /// a sufficient MST candidate star. Deterministic.
  [[nodiscard]] static int cone_of(double dx, double dy) noexcept {
    constexpr double kPi = 3.14159265358979323846;
    const double angle = std::atan2(dy, dx);  // [-pi, pi]
    const int cone = static_cast<int>(std::floor((angle + kPi) / (kPi / 3.0)));
    return cone < 0 ? 0 : (cone > 5 ? 5 : cone);
  }

  /// Exact nearest admissible point per 60-degree cone around `from`,
  /// minimizing (squared distance, id) within each cone. `excluded(id)`
  /// filters (e.g. the query point itself). Cones with no admissible point
  /// report id == -1.
  template <typename ExcludeFn>
  [[nodiscard]] std::array<NearCandidate, 6> cone_nearest(
      const geom::Point& from, ExcludeFn&& excluded) const {
    std::array<NearCandidate, 6> best{};
    search(from, excluded, best,
           std::numeric_limits<double>::infinity());
    return best;
  }

  /// Exact nearest admissible point overall (same contract, one cone-less
  /// answer) — the reconnection primitive of IncrementalMst::detach.
  /// `limit_w2` prunes the search: the answer is exact for squared
  /// distances <= limit_w2, and id == -1 beyond it (callers that already
  /// hold a candidate at limit_w2 lose nothing). Points AT the limit are
  /// still found, so (w2, id) tie-breaks against the caller's candidate
  /// stay exact.
  template <typename ExcludeFn>
  [[nodiscard]] NearCandidate nearest(
      const geom::Point& from, ExcludeFn&& excluded,
      double limit_w2 = std::numeric_limits<double>::infinity()) const {
    std::array<NearCandidate, 1> best{};
    search(from, excluded, best, limit_w2);
    return best[0];
  }

 private:
  struct Entry {
    geom::Point p;
    std::int32_t id = -1;
  };
  struct Cell {
    std::int64_t cx = 0;
    std::int64_t cy = 0;
    std::vector<Entry> entries;
  };

  /// Cells a ring search may probe before falling back to the exact
  /// occupied-cell sweep.
  static constexpr std::size_t kRingBudget = 128;

  [[nodiscard]] std::pair<std::int64_t, std::int64_t> coords(
      const geom::Point& p) const {
    return {conflict::detail::saturating_cell(p.x / cell_),
            conflict::detail::saturating_cell(p.y / cell_)};
  }

  template <std::size_t N, typename ExcludeFn>
  void consider(const geom::Point& from, const ExcludeFn& excluded,
                std::array<NearCandidate, N>& best, const Entry& e) const {
    if (excluded(e.id)) return;
    const double dx = e.p.x - from.x;
    const double dy = e.p.y - from.y;
    const double w2 = dx * dx + dy * dy;
    NearCandidate& slot =
        best[N == 1 ? 0 : static_cast<std::size_t>(cone_of(dx, dy))];
    if (w2 < slot.w2 || (w2 == slot.w2 && e.id < slot.id)) {
      slot.id = e.id;
      slot.w2 = w2;
    }
  }

  template <std::size_t N, typename ExcludeFn>
  void sweep_all(const geom::Point& from, const ExcludeFn& excluded,
                 std::array<NearCandidate, N>& best) const {
    for (const auto& [key, cell] : cells_) {
      for (const Entry& e : cell.entries) consider(from, excluded, best, e);
    }
  }

  template <std::size_t N, typename ExcludeFn>
  void probe(std::int64_t cx, std::int64_t cy, const geom::Point& from,
             const ExcludeFn& excluded,
             std::array<NearCandidate, N>& best) const {
    const auto it = cells_.find(conflict::detail::cell_key(cx, cy));
    if (it == cells_.end()) return;
    for (const Entry& e : it->second.entries) {
      consider(from, excluded, best, e);
    }
  }

  template <std::size_t N, typename ExcludeFn>
  void search(const geom::Point& from, const ExcludeFn& excluded,
              std::array<NearCandidate, N>& best, double limit_w2) const {
    if (num_points_ == 0) return;
    const auto [cx, cy] = coords(from);
    std::size_t probed = 0;
    for (std::int64_t r = 0;; ++r) {
      // Certification: nothing at ring >= r can be closer than
      // (r-1) * cell, so a strictly closer best is final (strict, because
      // an equal-distance point with a smaller id could still appear).
      // Past the caller's limit, unseen points are irrelevant by contract.
      const double ring_min = (static_cast<double>(r) - 1.0) * cell_;
      if (ring_min > 0.0) {
        const double ring_min2 = ring_min * ring_min;
        if (ring_min2 > limit_w2) return;
        bool resolved = true;
        for (const auto& b : best) resolved = resolved && b.w2 < ring_min2;
        if (resolved) return;
      }
      // The previous square already covered every occupied cell: whatever
      // is still unresolved has no admissible point at all.
      if (r > 0 && cx - (r - 1) <= min_cx_ && cx + (r - 1) >= max_cx_ &&
          cy - (r - 1) <= min_cy_ && cy + (r - 1) >= max_cy_) {
        return;
      }
      if (probed > kRingBudget) {
        ++fallback_sweeps_;
        sweep_all(from, excluded, best);
        return;
      }
      if (r == 0) {
        probe(cx, cy, from, excluded, best);
        ++probed;
        continue;
      }
      for (std::int64_t dx = -r; dx <= r; ++dx) {
        probe(cx + dx, cy - r, from, excluded, best);
        probe(cx + dx, cy + r, from, excluded, best);
        probed += 2;
      }
      for (std::int64_t dy = -r + 1; dy <= r - 1; ++dy) {
        probe(cx - r, cy + dy, from, excluded, best);
        probe(cx + r, cy + dy, from, excluded, best);
        probed += 2;
      }
    }
  }

  double cell_ = 1.0;
  std::size_t num_points_ = 0;
  std::int64_t min_cx_ = 0, max_cx_ = 0, min_cy_ = 0, max_cy_ = 0;
  std::unordered_map<std::uint64_t, Cell> cells_;
  /// Queries are const; the fallback tally is telemetry, not state.
  mutable std::uint64_t fallback_sweeps_ = 0;
};

}  // namespace wagg::mst::detail

#endif  // WAGG_MST_POINT_GRID_H
