#ifndef WAGG_MST_DTREE_H
#define WAGG_MST_DTREE_H

#include <cstdint>
#include <vector>

namespace wagg::mst {

/// Handle of a tree edge inside a DynamicTree: an index into its node pool,
/// stable from link() until the matching cut(), then recycled.
using EdgeHandle = std::int32_t;
inline constexpr EdgeHandle kNoEdgeHandle = -1;

/// Fully dynamic forest over integer vertices with weighted edges:
///
///   link(a, b, w2)   joins two components with an edge of squared weight w2
///   cut(e)           removes an edge by handle
///   connected(a, b)  same-component test
///   path_max(a, b)   the maximum-weight edge on the unique a-b tree path
///
/// each in O(log n) amortized. This is the structure that localizes
/// IncrementalMst: an insertion candidate (p, q) improves the tree iff it
/// beats path_max(p, q), and the repair is one cut + one link instead of a
/// merge pass over the whole weight-ordered edge list.
///
/// The implementation is a splay-based path decomposition (the
/// Sleator-Tarjan preferred-path forest). A sequence-aggregated Euler-tour
/// treap was considered and rejected: tour intervals aggregate SUBTREES,
/// while the query here is a PATH maximum, which the preferred-path splay
/// forest answers directly — expose the a-b path as one splay tree and read
/// its aggregate. Edges are materialized as their own splay nodes carrying
/// (w2, a, b); vertices carry a sentinel key ordered below every real edge,
/// so the subtree maximum of an exposed path is exactly its heaviest edge.
///
/// Keys compare by (w2, a, b) with a < b canonical — the same total order
/// IncrementalMst applies to candidate edges — so path_max is deterministic
/// under duplicate distances.
///
/// Not thread-safe (queries splay, so even connected() mutates).
class DynamicTree {
 public:
  DynamicTree() = default;

  /// Grows the vertex set to cover ids [0, n). Existing state is kept.
  void ensure_vertices(std::size_t n);
  [[nodiscard]] std::size_t num_vertices() const noexcept {
    return vertex_node_.size();
  }
  [[nodiscard]] std::size_t num_edges() const noexcept { return num_edges_; }

  /// Joins the components of a and b. Throws std::invalid_argument for
  /// out-of-range or equal endpoints, std::logic_error if already connected
  /// (the caller would be creating a cycle).
  EdgeHandle link(std::int32_t a, std::int32_t b, double w2);

  /// Removes a linked edge; its handle becomes invalid (and recyclable).
  void cut(EdgeHandle e);

  [[nodiscard]] bool connected(std::int32_t a, std::int32_t b);

  /// The maximum-key edge on the a-b path, by (w2, a, b). Throws
  /// std::invalid_argument unless a != b and the endpoints are connected.
  [[nodiscard]] EdgeHandle path_max(std::int32_t a, std::int32_t b);

  // ---- edge payload access (valid between link and cut) ----
  [[nodiscard]] double weight2(EdgeHandle e) const { return nodes_[e].w2; }
  [[nodiscard]] std::int32_t edge_a(EdgeHandle e) const {
    return nodes_[e].ea;
  }
  [[nodiscard]] std::int32_t edge_b(EdgeHandle e) const {
    return nodes_[e].eb;
  }

  /// Drops every vertex and edge (handles become invalid).
  void clear();

 private:
  /// One splay node: a vertex (ea == -1, w2 == -1 sentinel) or an edge.
  struct Node {
    std::int32_t ch[2] = {-1, -1};
    std::int32_t parent = -1;  ///< splay parent or path-parent
    std::int32_t mx = -1;      ///< max-key node of this splay subtree
    std::int32_t ea = -1;      ///< edge endpoints, canonical ea < eb
    std::int32_t eb = -1;
    double w2 = -1.0;          ///< squared weight; -1 sorts below any edge
    bool rev = false;          ///< lazy reversal of the represented path
  };

  [[nodiscard]] std::int32_t alloc_node(std::int32_t ea, std::int32_t eb,
                                        double w2);
  [[nodiscard]] bool key_less(std::int32_t p, std::int32_t q) const;
  [[nodiscard]] bool is_splay_root(std::int32_t x) const;
  void push(std::int32_t x);
  void pull(std::int32_t x);
  void rotate(std::int32_t x);
  void splay(std::int32_t x);
  /// Exposes the path from the represented root to x; returns the last
  /// preferred-path root touched.
  std::int32_t access(std::int32_t x);
  void make_root(std::int32_t x);
  [[nodiscard]] std::int32_t find_root(std::int32_t x);
  /// Splits two nodes KNOWN to be adjacent in the represented tree.
  void cut_adjacent(std::int32_t x, std::int32_t y);
  [[nodiscard]] std::int32_t vertex(std::int32_t v) const;

  std::vector<Node> nodes_;
  std::vector<std::int32_t> vertex_node_;  ///< vertex id -> node index
  std::vector<std::int32_t> free_;         ///< recycled edge-node indices
  std::vector<std::int32_t> scratch_;      ///< splay ancestor stack
  std::size_t num_edges_ = 0;
};

}  // namespace wagg::mst

#endif  // WAGG_MST_DTREE_H
