#ifndef WAGG_DISTRIBUTED_DISTRIBUTED_H
#define WAGG_DISTRIBUTED_DISTRIBUTED_H

#include <cstdint>
#include <vector>

#include "coloring/coloring.h"
#include "conflict/fgraph.h"
#include "geom/linkset.h"
#include "sinr/model.h"

namespace wagg::distributed {

/// Round-synchronous simulation of the paper's Sec 3.3 distributed schedule
/// computation:
///  - links are partitioned into length classes L_t = { i : l_i in
///    [2^(t-1) l_min, 2^t l_min) };
///  - phases process classes from the longest to the shortest; within a
///    phase the class runs a randomized distributed coloring (each round,
///    every uncolored link proposes the smallest color unused by its already
///    colored conflict-graph neighbours; proposals conflicting with an
///    uncolored neighbour's identical proposal are resolved by per-round
///    random priorities, Luby style);
///  - after a class stabilizes, its links notify shorter neighbours (the
///    paper's local broadcast). We charge the paper's cost model
///    O(colors + log^2 n) rounds per phase for this step rather than
///    simulating the packet-level broadcast, as the paper itself only
///    sketches it ("taken with a grain of salt").
struct DistributedConfig {
  sinr::SinrParams sinr;
  conflict::ConflictSpec spec = conflict::ConflictSpec::constant(2.0);
  std::uint64_t seed = 1;
  int max_rounds_per_phase = 100000;
  /// Multiplier of the modeled log^2 n local-broadcast term.
  double broadcast_constant = 1.0;
};

struct PhaseStats {
  int length_class = 0;         ///< class index t (0 = shortest links)
  std::size_t links = 0;        ///< links in the class
  std::size_t coloring_rounds = 0;
  std::size_t broadcast_rounds = 0;
  int colors_used = 0;          ///< distinct colors committed by the class
};

struct DistributedResult {
  coloring::Coloring coloring;      ///< proper coloring of the conflict graph
  int num_phases = 0;               ///< non-empty length classes
  std::size_t coloring_rounds = 0;  ///< simulated contention rounds (total)
  std::size_t broadcast_rounds = 0; ///< modeled broadcast rounds (total)
  std::size_t total_rounds = 0;
  bool proper = false;              ///< validated against the conflict graph
  std::vector<PhaseStats> phases;

  [[nodiscard]] std::size_t schedule_length() const {
    return static_cast<std::size_t>(coloring.num_colors);
  }
};

/// Runs the simulation on the given link set (typically MST links).
/// Deterministic given the seed. Throws std::invalid_argument on empty input
/// or a phase failing to stabilize within max_rounds_per_phase.
[[nodiscard]] DistributedResult distributed_schedule(
    const geom::LinkView& links, const DistributedConfig& config);

}  // namespace wagg::distributed

#endif  // WAGG_DISTRIBUTED_DISTRIBUTED_H
