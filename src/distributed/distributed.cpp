#include "distributed/distributed.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "util/rng.h"

namespace wagg::distributed {

DistributedResult distributed_schedule(const geom::LinkView& links,
                                       const DistributedConfig& config) {
  config.sinr.validate();
  if (links.empty()) {
    throw std::invalid_argument("distributed_schedule: empty link set");
  }
  const conflict::Graph graph = conflict::build_conflict_graph(links,
                                                               config.spec);
  const double lmin = links.min_length();
  const double n_nodes = static_cast<double>(links.num_points());
  const double log_n = std::max(1.0, std::log2(n_nodes));

  // Length classes, processed longest first (std::map iterated in reverse).
  std::map<int, std::vector<std::size_t>> classes;
  for (std::size_t i = 0; i < links.size(); ++i) {
    const int cls = static_cast<int>(
        std::floor(std::log2(links.length(i) / lmin)));
    classes[cls].push_back(i);
  }

  DistributedResult result;
  result.coloring.color_of.assign(links.size(), -1);
  util::Rng rng(config.seed);

  for (auto it = classes.rbegin(); it != classes.rend(); ++it) {
    const auto& members = it->second;
    PhaseStats stats;
    stats.length_class = it->first;
    stats.links = members.size();

    std::vector<std::size_t> uncolored = members;
    std::vector<int> candidate(links.size(), -1);
    std::vector<double> priority(links.size(), 0.0);
    std::vector<bool> used;
    int phase_max_color = -1;
    while (!uncolored.empty()) {
      if (stats.coloring_rounds >=
          static_cast<std::size_t>(config.max_rounds_per_phase)) {
        throw std::invalid_argument(
            "distributed_schedule: phase failed to stabilize");
      }
      ++stats.coloring_rounds;
      // Proposal step: smallest color unused by colored neighbours.
      for (std::size_t link : uncolored) {
        used.assign(links.size() + 1, false);
        for (const auto w : graph.neighbors(link)) {
          const int c = result.coloring.color_of[static_cast<std::size_t>(w)];
          if (c >= 0 && static_cast<std::size_t>(c) < used.size()) {
            used[static_cast<std::size_t>(c)] = true;
          }
        }
        int c = 0;
        while (used[static_cast<std::size_t>(c)]) ++c;
        candidate[link] = c;
        priority[link] = rng.uniform();
      }
      // Commit step: win against uncolored conflicting neighbours proposing
      // the same color (ties broken by index for determinism). Decisions are
      // taken against the start-of-round state and applied only afterwards —
      // committing eagerly would hide just-colored neighbours from later
      // links in the same round and produce conflicting commits.
      std::vector<std::size_t> winners, still_uncolored;
      std::vector<bool> uncolored_now(links.size(), false);
      for (std::size_t link : uncolored) uncolored_now[link] = true;
      for (std::size_t link : uncolored) {
        bool wins = true;
        for (const auto w_raw : graph.neighbors(link)) {
          const auto w = static_cast<std::size_t>(w_raw);
          if (!uncolored_now[w]) continue;
          if (candidate[w] < 0 || candidate[w] != candidate[link]) continue;
          if (priority[w] > priority[link] ||
              (priority[w] == priority[link] && w < link)) {
            wins = false;
            break;
          }
        }
        if (wins) {
          winners.push_back(link);
        } else {
          still_uncolored.push_back(link);
        }
      }
      for (std::size_t link : winners) {
        result.coloring.color_of[link] = candidate[link];
        phase_max_color = std::max(phase_max_color, candidate[link]);
      }
      uncolored = std::move(still_uncolored);
    }
    // Distinct colors committed by this class.
    std::vector<int> colors;
    for (std::size_t link : members) {
      colors.push_back(result.coloring.color_of[link]);
    }
    std::sort(colors.begin(), colors.end());
    colors.erase(std::unique(colors.begin(), colors.end()), colors.end());
    stats.colors_used = static_cast<int>(colors.size());
    // Local broadcast cost model: O(colors + log^2 n) rounds per phase.
    stats.broadcast_rounds = static_cast<std::size_t>(
        config.broadcast_constant *
        (static_cast<double>(stats.colors_used) + log_n * log_n));
    result.coloring_rounds += stats.coloring_rounds;
    result.broadcast_rounds += stats.broadcast_rounds;
    result.phases.push_back(stats);
  }

  result.num_phases = static_cast<int>(result.phases.size());
  result.total_rounds = result.coloring_rounds + result.broadcast_rounds;
  int max_color = -1;
  for (int c : result.coloring.color_of) max_color = std::max(max_color, c);
  result.coloring.num_colors = max_color + 1;
  result.proper = coloring::is_proper(graph, result.coloring);
  return result;
}

}  // namespace wagg::distributed
