#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "obs/json.h"

namespace wagg::obs {

namespace {

void atomic_add(std::atomic<double>& target, double delta) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& target, double v) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (v < cur && !target.compare_exchange_weak(
                        cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double v) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (v > cur && !target.compare_exchange_weak(
                        cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

// ---------------------------------------------------------------- Histogram

std::size_t Histogram::bucket_index(double v) noexcept {
  // Zero, negative, and NaN samples clamp to 0 first (fmax maps NaN to 0),
  // then land in bucket 0 alongside every value below 2^kMinExponent.
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(std::fmax(v, 0.0));
  // One shift turns the IEEE-754 pattern into
  //   (biased exponent << kSubBits) | (top kSubBits mantissa bits),
  // which IS the bucket index up to an offset: consecutive indices cover
  // consecutive equal-width slices of each octave. +inf saturates high.
  const std::uint64_t raw = bits >> (52 - kSubBits);
  constexpr std::uint64_t kBase =
      static_cast<std::uint64_t>(kMinExponent + 1023) << kSubBits;
  constexpr std::uint64_t kTop = kBase + kNumBuckets - 1;
  return static_cast<std::size_t>(std::clamp(raw, kBase, kTop) - kBase);
}

double Histogram::bucket_midpoint(std::size_t index) noexcept {
  constexpr std::uint64_t kSubMask = (1u << kSubBits) - 1;
  const int exponent =
      kMinExponent + static_cast<int>(index >> kSubBits);
  const auto sub = static_cast<double>(index & kSubMask);
  const double octave = std::exp2(static_cast<double>(exponent));
  const double width = octave / static_cast<double>(1u << kSubBits);
  return octave + sub * width + width * 0.5;
}

void Histogram::record(double v) noexcept {
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  if (count_.fetch_add(1, std::memory_order_relaxed) == 0) {
    // First sample seeds min/max; racing recorders converge via the CAS
    // loops below (a second thread's sample is still folded in).
    min_.store(v, std::memory_order_relaxed);
    max_.store(v, std::memory_order_relaxed);
  }
  atomic_add(sum_, v);
  atomic_min(min_, v);
  atomic_max(max_, v);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.count_ = count_.load(std::memory_order_relaxed);
  snap.sum_ = sum_.load(std::memory_order_relaxed);
  snap.min_ = min_.load(std::memory_order_relaxed);
  snap.max_ = max_.load(std::memory_order_relaxed);
  snap.buckets_.resize(kNumBuckets);
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    snap.buckets_[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return snap;
}

void Histogram::reset() noexcept {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

// ------------------------------------------------------- HistogramSnapshot

double HistogramSnapshot::quantile(double p) const noexcept {
  if (count_ == 0 || buckets_.empty()) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // 1-based rank of the order statistic a linear-interpolation percentile
  // centers on; the bucket holding it answers with its midpoint, clamped to
  // the exact observed range.
  const double target = p / 100.0 * static_cast<double>(count_ - 1);
  const auto needed = static_cast<std::uint64_t>(std::floor(target)) + 1;
  // The extreme ranks are tracked exactly; answer with them rather than a
  // bucket midpoint (which can undershoot max, as the clamp only caps).
  if (needed >= count_) return max_;
  if (needed <= 1) return min_;
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    cumulative += buckets_[b];
    if (cumulative >= needed) {
      return std::clamp(Histogram::bucket_midpoint(b), min_, max_);
    }
  }
  return max_;
}

SummaryRow HistogramSnapshot::row() const noexcept {
  SummaryRow row;
  row.p50 = quantile(50.0);
  row.p95 = quantile(95.0);
  row.mean = mean();
  row.max = max();
  return row;
}

std::vector<std::pair<std::uint32_t, std::uint64_t>>
HistogramSnapshot::nonzero_buckets() const {
  std::vector<std::pair<std::uint32_t, std::uint64_t>> out;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] != 0) {
      out.emplace_back(static_cast<std::uint32_t>(i), buckets_[i]);
    }
  }
  return out;
}

HistogramSnapshot HistogramSnapshot::of(std::span<const double> values) {
  HistogramSnapshot snap;
  if (values.empty()) return snap;
  snap.buckets_.resize(Histogram::kNumBuckets);
  snap.min_ = values.front();
  snap.max_ = values.front();
  for (const double v : values) {
    ++snap.buckets_[Histogram::bucket_index(v)];
    ++snap.count_;
    snap.sum_ += v;
    snap.min_ = std::min(snap.min_, v);
    snap.max_ = std::max(snap.max_, v);
  }
  return snap;
}

HistogramSnapshot HistogramSnapshot::from_parts(
    std::uint64_t count, double sum, double min, double max,
    std::span<const std::pair<std::uint32_t, std::uint64_t>> buckets) {
  HistogramSnapshot snap;
  snap.count_ = count;
  snap.sum_ = sum;
  snap.min_ = min;
  snap.max_ = max;
  snap.buckets_.resize(Histogram::kNumBuckets);
  for (const auto& [index, bucket_count] : buckets) {
    if (index >= Histogram::kNumBuckets) {
      throw std::invalid_argument(
          "HistogramSnapshot::from_parts: bucket index out of range");
    }
    snap.buckets_[index] += bucket_count;
  }
  return snap;
}

// --------------------------------------------------------- MetricsSnapshot

std::string MetricsSnapshot::to_json() const {
  std::ostringstream out;
  out << "{\n  \"schema\": \"wagg-metrics-v1\"";
  out << ",\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out << (first ? "\n" : ",\n") << "    \"" << json::escape(name)
        << "\": " << value;
    first = false;
  }
  out << (first ? "}" : "\n  }");
  out << ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out << (first ? "\n" : ",\n") << "    \"" << json::escape(name)
        << "\": " << json::number(value);
    first = false;
  }
  out << (first ? "}" : "\n  }");
  out << ",\n  \"histograms\": {";
  first = true;
  for (const auto& [name, snap] : histograms) {
    const auto row = snap.row();
    out << (first ? "\n" : ",\n") << "    \"" << json::escape(name)
        << "\": {\"count\": " << snap.count()
        << ", \"sum\": " << json::number(snap.sum())
        << ", \"min\": " << json::number(snap.min())
        << ", \"max\": " << json::number(snap.max())
        << ", \"mean\": " << json::number(row.mean)
        << ", \"p50\": " << json::number(row.p50)
        << ", \"p95\": " << json::number(row.p95) << ", \"buckets\": [";
    bool first_bucket = true;
    for (const auto& [index, bucket_count] : snap.nonzero_buckets()) {
      out << (first_bucket ? "" : ", ") << "[" << index << ", "
          << bucket_count << "]";
      first_bucket = false;
    }
    out << "]}";
    first = false;
  }
  out << (first ? "}" : "\n  }");
  out << "\n}\n";
  return out.str();
}

MetricsSnapshot MetricsSnapshot::from_json(std::string_view text) {
  return from_value(json::parse(text));
}

MetricsSnapshot MetricsSnapshot::from_value(const json::Value& doc) {
  if (!doc.contains("schema") ||
      doc.at("schema").as_string() != "wagg-metrics-v1") {
    throw std::invalid_argument(
        "MetricsSnapshot::from_json: missing or unknown schema marker");
  }
  MetricsSnapshot snap;
  for (const auto& [name, value] : doc.at("counters").as_object()) {
    snap.counters[name] = static_cast<std::uint64_t>(value.as_number());
  }
  for (const auto& [name, value] : doc.at("gauges").as_object()) {
    snap.gauges[name] = value.as_number();
  }
  for (const auto& [name, value] : doc.at("histograms").as_object()) {
    std::vector<std::pair<std::uint32_t, std::uint64_t>> buckets;
    for (const auto& pair : value.at("buckets").as_array()) {
      const auto& entry = pair.as_array();
      if (entry.size() != 2) {
        throw std::invalid_argument(
            "MetricsSnapshot::from_json: malformed bucket pair");
      }
      buckets.emplace_back(
          static_cast<std::uint32_t>(entry[0].as_number()),
          static_cast<std::uint64_t>(entry[1].as_number()));
    }
    snap.histograms[name] = HistogramSnapshot::from_parts(
        static_cast<std::uint64_t>(value.at("count").as_number()),
        value.at("sum").as_number(), value.at("min").as_number(),
        value.at("max").as_number(), buckets);
  }
  return snap;
}

// ------------------------------------------------------------------ Registry

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

Counter& Registry::counter(const std::string& name) {
  util::MutexLock lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  util::MutexLock lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  util::MutexLock lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot Registry::snapshot() const {
  util::MutexLock lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->value();
  }
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms[name] = histogram->snapshot();
  }
  return snap;
}

void Registry::reset() {
  util::MutexLock lock(mutex_);
  for (const auto& [name, counter] : counters_) counter->reset();
  for (const auto& [name, gauge] : gauges_) gauge->reset();
  for (const auto& [name, histogram] : histograms_) histogram->reset();
}

}  // namespace wagg::obs
