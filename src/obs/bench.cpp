#include "obs/bench.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "obs/json.h"
#include "util/table.h"

namespace wagg::obs {

namespace {

/// Severity order for the findings table: what fails the gate first.
int verdict_rank(Verdict verdict) {
  switch (verdict) {
    case Verdict::kRegressed: return 0;
    case Verdict::kMissing: return 1;
    case Verdict::kImproved: return 2;
    case Verdict::kNew: return 3;
    case Verdict::kInfo: return 4;
    case Verdict::kOk: return 5;
  }
  return 6;
}

void append_json_string(std::ostringstream& out, std::string_view s) {
  out << '"' << json::escape(s) << '"';
}

}  // namespace

double median_of(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t mid = values.size() / 2;
  if (values.size() % 2 == 1) return values[mid];
  return 0.5 * (values[mid - 1] + values[mid]);
}

double mad_of(std::vector<double> values) {
  if (values.size() < 2) return 0.0;
  const double med = median_of(values);
  for (double& v : values) v = std::abs(v - med);
  return median_of(std::move(values));
}

BenchMetric BenchMetric::of(std::vector<double> repeats, std::string unit,
                            bool higher_is_better, bool portable) {
  BenchMetric metric;
  metric.unit = std::move(unit);
  metric.higher_is_better = higher_is_better;
  metric.portable = portable;
  metric.median = median_of(repeats);
  metric.mad = mad_of(repeats);
  metric.repeats = std::move(repeats);
  return metric;
}

const BenchMetric* BenchScenario::find(const std::string& metric) const {
  const auto it = metrics.find(metric);
  return it == metrics.end() ? nullptr : &it->second;
}

const BenchScenario* BenchTrajectory::find(std::string_view name) const {
  for (const auto& scenario : scenarios) {
    if (scenario.name == name) return &scenario;
  }
  return nullptr;
}

std::string BenchTrajectory::to_json() const {
  std::ostringstream out;
  out << "{\n  \"schema\": \"wagg-bench-v1\"";
  out << ",\n  \"date\": ";
  append_json_string(out, date);
  out << ",\n  \"label\": ";
  append_json_string(out, label);
  out << ",\n  \"repeats\": " << repeats;
  out << ",\n  \"warmup\": " << warmup;
  out << ",\n  \"scenarios\": [";
  bool first_scenario = true;
  for (const auto& scenario : scenarios) {
    out << (first_scenario ? "\n" : ",\n") << "    {\"name\": ";
    append_json_string(out, scenario.name);
    out << ", \"kind\": ";
    append_json_string(out, scenario.kind);
    out << ",\n     \"metrics\": {";
    bool first_metric = true;
    for (const auto& [name, metric] : scenario.metrics) {
      out << (first_metric ? "\n" : ",\n") << "      ";
      append_json_string(out, name);
      out << ": {\"unit\": ";
      append_json_string(out, metric.unit);
      out << ", \"higher_is_better\": "
          << (metric.higher_is_better ? "true" : "false")
          << ", \"portable\": " << (metric.portable ? "true" : "false")
          << ", \"min_rel\": " << json::number(metric.min_rel)
          << ", \"median\": " << json::number(metric.median)
          << ", \"mad\": " << json::number(metric.mad) << ", \"repeats\": [";
      bool first_repeat = true;
      for (const double v : metric.repeats) {
        out << (first_repeat ? "" : ", ") << json::number(v);
        first_repeat = false;
      }
      out << "]}";
      first_metric = false;
    }
    out << (first_metric ? "}" : "\n     }");
    // The registry snapshot is a complete wagg-metrics-v1 document; splice
    // it verbatim as a nested value (whitespace is insignificant).
    out << ",\n     \"registry\": " << scenario.registry.to_json() << "    }";
    first_scenario = false;
  }
  out << (first_scenario ? "]" : "\n  ]");
  out << "\n}\n";
  return out.str();
}

BenchTrajectory BenchTrajectory::from_json(std::string_view text) {
  const auto doc = json::parse(text);
  if (!doc.contains("schema") ||
      doc.at("schema").as_string() != "wagg-bench-v1") {
    throw std::invalid_argument(
        "BenchTrajectory::from_json: missing or unknown schema marker");
  }
  BenchTrajectory trajectory;
  trajectory.date = doc.at("date").as_string();
  trajectory.label = doc.at("label").as_string();
  trajectory.repeats = static_cast<std::size_t>(doc.at("repeats").as_number());
  trajectory.warmup = static_cast<std::size_t>(doc.at("warmup").as_number());
  for (const auto& entry : doc.at("scenarios").as_array()) {
    BenchScenario scenario;
    scenario.name = entry.at("name").as_string();
    scenario.kind = entry.at("kind").as_string();
    for (const auto& [metric_name, value] : entry.at("metrics").as_object()) {
      BenchMetric metric;
      metric.unit = value.at("unit").as_string();
      metric.higher_is_better = value.at("higher_is_better").as_bool();
      metric.portable = value.at("portable").as_bool();
      // Optional: points recorded before the field existed parse as 0.
      if (value.contains("min_rel")) {
        metric.min_rel = value.at("min_rel").as_number();
      }
      metric.median = value.at("median").as_number();
      metric.mad = value.at("mad").as_number();
      for (const auto& repeat : value.at("repeats").as_array()) {
        metric.repeats.push_back(repeat.as_number());
      }
      scenario.metrics.emplace(metric_name, std::move(metric));
    }
    scenario.registry = MetricsSnapshot::from_value(entry.at("registry"));
    trajectory.scenarios.push_back(std::move(scenario));
  }
  return trajectory;
}

std::string to_string(Verdict verdict) {
  switch (verdict) {
    case Verdict::kOk: return "ok";
    case Verdict::kImproved: return "IMPROVED";
    case Verdict::kRegressed: return "REGRESSED";
    case Verdict::kInfo: return "info";
    case Verdict::kMissing: return "MISSING";
    case Verdict::kNew: return "new";
  }
  return "?";
}

std::string CompareReport::table() const {
  std::ostringstream out;
  util::Table t({"scenario", "metric", "baseline", "candidate", "delta %",
                 "tol %", "verdict"});
  for (const auto& finding : findings) {
    t.row()
        .cell(finding.scenario)
        .cell(finding.metric)
        .cell(finding.baseline_median, 4)
        .cell(finding.candidate_median, 4)
        .cell(100.0 * finding.delta_fraction, 1)
        .cell(100.0 * finding.tolerance_fraction, 1)
        .cell(to_string(finding.verdict));
  }
  t.print(out);
  out << (ok() ? "compare OK" : "compare FAILED") << ": " << regressions
      << " regression(s), " << improvements << " improvement(s), "
      << findings.size() << " metric(s) examined\n";
  return out.str();
}

CompareReport compare(const BenchTrajectory& baseline,
                      const BenchTrajectory& candidate,
                      const CompareOptions& options) {
  CompareReport report;
  const auto add = [&report](CompareFinding finding) {
    if (finding.verdict == Verdict::kRegressed ||
        finding.verdict == Verdict::kMissing) {
      ++report.regressions;
    }
    if (finding.verdict == Verdict::kImproved) ++report.improvements;
    report.findings.push_back(std::move(finding));
  };

  for (const auto& base_scenario : baseline.scenarios) {
    const BenchScenario* cand_scenario = candidate.find(base_scenario.name);
    for (const auto& [metric_name, base_metric] : base_scenario.metrics) {
      const bool gated = !options.portable_only || base_metric.portable;
      CompareFinding finding;
      finding.scenario = base_scenario.name;
      finding.metric = metric_name;
      finding.baseline_median = base_metric.median;

      const BenchMetric* cand_metric =
          cand_scenario ? cand_scenario->find(metric_name) : nullptr;
      if (cand_metric == nullptr) {
        // A vanished gated metric is a coverage regression — a perf
        // regression could hide behind a deleted row.
        finding.verdict = gated ? Verdict::kMissing : Verdict::kInfo;
        add(std::move(finding));
        continue;
      }
      finding.candidate_median = cand_metric->median;

      const double denom = std::max(std::abs(base_metric.median), 1e-12);
      // Signed change in the metric's own "worse" direction.
      const double raw_delta = cand_metric->median - base_metric.median;
      finding.delta_fraction =
          (base_metric.higher_is_better ? -raw_delta : raw_delta) / denom;
      // Either side's declared noise floor widens the band: a metric whose
      // producer knows its repeats understate between-run spread says so in
      // the schema rather than relying on comparator flags.
      const double min_rel =
          std::max({options.min_rel_tolerance, base_metric.min_rel,
                    cand_metric->min_rel});
      double tolerance =
          std::max(min_rel, options.mad_multiplier *
                                (base_metric.mad + cand_metric->mad) / denom);
      if (base_metric.unit == "ms") {
        tolerance = std::max(tolerance, options.min_abs_ms / denom);
      }
      finding.tolerance_fraction = tolerance;

      if (!gated) {
        finding.verdict = Verdict::kInfo;
      } else if (finding.delta_fraction > tolerance) {
        finding.verdict = Verdict::kRegressed;
      } else if (finding.delta_fraction < -tolerance) {
        finding.verdict = Verdict::kImproved;
      } else {
        finding.verdict = Verdict::kOk;
      }
      add(std::move(finding));
    }
  }

  // Candidate-only scenarios/metrics: new coverage, reported but not gated.
  for (const auto& cand_scenario : candidate.scenarios) {
    const BenchScenario* base_scenario = baseline.find(cand_scenario.name);
    for (const auto& [metric_name, cand_metric] : cand_scenario.metrics) {
      if (base_scenario != nullptr &&
          base_scenario->find(metric_name) != nullptr) {
        continue;
      }
      CompareFinding finding;
      finding.scenario = cand_scenario.name;
      finding.metric = metric_name;
      finding.candidate_median = cand_metric.median;
      finding.verdict = Verdict::kNew;
      add(std::move(finding));
    }
  }

  std::stable_sort(report.findings.begin(), report.findings.end(),
                   [](const CompareFinding& a, const CompareFinding& b) {
                     return verdict_rank(a.verdict) < verdict_rank(b.verdict);
                   });
  return report;
}

}  // namespace wagg::obs
