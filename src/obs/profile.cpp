#include "obs/profile.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "obs/json.h"
#include "util/table.h"

namespace wagg::obs {

namespace {

constexpr double kNsPerMs = 1e6;

/// Per-name accumulator while walking the stream.
struct StageAccumulator {
  std::size_t count = 0;
  std::uint64_t inclusive_ns = 0;
  /// Signed: a malformed stream can attribute more child time than a span's
  /// own duration; the report surfaces that instead of silently clamping.
  std::int64_t exclusive_ns = 0;
};

}  // namespace

double ProfileReport::exclusive_sum_ms() const {
  double sum = 0.0;
  for (const auto& row : rows) sum += row.exclusive_ms;
  return sum;
}

std::string ProfileReport::table(std::size_t top_k) const {
  std::ostringstream out;
  util::Table t({"stage", "count", "incl ms", "excl ms", "excl/root ms",
                 "excl %"});
  const std::size_t limit =
      top_k == 0 ? rows.size() : std::min(top_k, rows.size());
  for (std::size_t i = 0; i < limit; ++i) {
    const auto& row = rows[i];
    t.row()
        .cell(row.name)
        .cell(row.count)
        .cell(row.inclusive_ms, 3)
        .cell(row.exclusive_ms, 3)
        .cell(row.exclusive_per_root_ms, 4)
        .cell(root_ms > 0.0 ? 100.0 * row.exclusive_ms / root_ms : 0.0, 1);
  }
  t.print(out);
  out << "roots: " << root_count << " spans, "
      << util::format_double(root_ms, 3) << " ms; exclusive sum "
      << util::format_double(exclusive_sum_ms(), 3) << " ms";
  if (limit < rows.size()) {
    out << " (" << rows.size() - limit << " cooler stages not shown)";
  }
  if (malformed_spans != 0) {
    out << "; WARNING: " << malformed_spans
        << " partially-overlapping spans — attribution unreliable";
  }
  out << "\n";
  return out.str();
}

ProfileReport profile_spans(std::vector<CollectedSpan> spans) {
  ProfileReport report;
  if (spans.empty()) return report;

  // Nesting is per thread; recover it from timestamps with a scope stack
  // over the spans sorted by (tid, start asc, end desc) — a parent sorts
  // before the children it contains, so the stack top is always the
  // innermost open scope.
  std::sort(spans.begin(), spans.end(),
            [](const CollectedSpan& a, const CollectedSpan& b) {
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.end_ns > b.end_ns;
            });

  std::map<std::string, StageAccumulator> stages;
  std::uint64_t root_ns = 0;

  struct OpenScope {
    const CollectedSpan* span = nullptr;
    std::uint64_t child_ns = 0;  ///< direct children's summed durations
  };
  std::vector<OpenScope> stack;

  const auto close_scope = [&](const OpenScope& scope) {
    const std::uint64_t duration = scope.span->end_ns - scope.span->start_ns;
    auto& stage = stages[scope.span->name];
    ++stage.count;
    stage.inclusive_ns += duration;
    stage.exclusive_ns += static_cast<std::int64_t>(duration) -
                          static_cast<std::int64_t>(scope.child_ns);
  };

  std::uint32_t current_tid = spans.front().tid;
  for (const auto& span : spans) {
    if (span.tid != current_tid) {
      // Thread boundary: close out the previous thread's open scopes.
      while (!stack.empty()) {
        close_scope(stack.back());
        stack.pop_back();
      }
      current_tid = span.tid;
    }
    const std::uint64_t duration = span.end_ns - span.start_ns;
    // Scopes that ended before this span starts are closed for good.
    while (!stack.empty() && stack.back().span->end_ns <= span.start_ns) {
      close_scope(stack.back());
      stack.pop_back();
    }
    if (stack.empty()) {
      ++report.root_count;
      root_ns += duration;
    } else if (span.end_ns <= stack.back().span->end_ns) {
      stack.back().child_ns += duration;
    } else {
      // Partial overlap: impossible for RAII spans on one thread. Count it,
      // attribute the span as a root, and let the report flag itself.
      ++report.malformed_spans;
      ++report.root_count;
      root_ns += duration;
    }
    stack.push_back(OpenScope{&span, 0});
  }
  while (!stack.empty()) {
    close_scope(stack.back());
    stack.pop_back();
  }

  report.root_ms = static_cast<double>(root_ns) / kNsPerMs;
  report.rows.reserve(stages.size());
  for (const auto& [name, stage] : stages) {
    ProfileRow row;
    row.name = name;
    row.count = stage.count;
    row.inclusive_ms = static_cast<double>(stage.inclusive_ns) / kNsPerMs;
    row.exclusive_ms = static_cast<double>(stage.exclusive_ns) / kNsPerMs;
    row.exclusive_per_root_ms =
        report.root_count > 0
            ? row.exclusive_ms / static_cast<double>(report.root_count)
            : 0.0;
    report.rows.push_back(std::move(row));
  }
  std::sort(report.rows.begin(), report.rows.end(),
            [](const ProfileRow& a, const ProfileRow& b) {
              if (a.exclusive_ms != b.exclusive_ms) {
                return a.exclusive_ms > b.exclusive_ms;
              }
              return a.name < b.name;
            });
  return report;
}

ProfileReport profile_global_tracer() {
  return profile_spans(Tracer::global().collect());
}

ProfileReport profile_chrome_trace(std::string_view json_text) {
  const auto doc = json::parse(json_text);
  std::vector<CollectedSpan> spans;
  for (const auto& entry : doc.at("traceEvents").as_array()) {
    if (entry.at("ph").as_string() != "X") continue;  // skip metadata events
    CollectedSpan span;
    span.name = entry.at("name").as_string();
    // Timestamps re-quantize through the export's microsecond doubles;
    // rounding to whole ns keeps tiling spans tiling.
    const double start_us = entry.at("ts").as_number();
    const double dur_us = entry.at("dur").as_number();
    span.start_ns = static_cast<std::uint64_t>(start_us * 1000.0 + 0.5);
    span.end_ns =
        span.start_ns + static_cast<std::uint64_t>(dur_us * 1000.0 + 0.5);
    span.tid = entry.contains("tid")
                   ? static_cast<std::uint32_t>(entry.at("tid").as_number())
                   : 0;
    spans.push_back(std::move(span));
  }
  return profile_spans(std::move(spans));
}

}  // namespace wagg::obs
