#ifndef WAGG_OBS_EXPORT_H
#define WAGG_OBS_EXPORT_H

#include <string>

namespace wagg::obs {

/// Writes `content` to `path`, throwing std::runtime_error on I/O failure.
void write_text_file(const std::string& path, const std::string& content);

/// Writes Registry::global().snapshot().to_json() to `path` (the
/// machine-readable metrics snapshot CLIs expose via --metrics-json).
void export_metrics(const std::string& path);

/// Writes Tracer::global().chrome_trace_json() to `path` (the Perfetto /
/// chrome://tracing file CLIs expose via --trace). Call once recording
/// threads are quiescent.
void export_trace(const std::string& path);

/// RAII guarantee that --trace / --metrics-json artifacts reach disk even
/// when a run throws mid-session. Construction enables the global tracer
/// when a trace path was requested; the artifacts are written exactly once —
/// by close() on the happy path (throws on I/O failure, like export_*), or
/// by the destructor during unwinding (best-effort: I/O failures are
/// reported to stderr, never thrown). Empty paths disable the matching
/// sink, so CLIs construct the guard unconditionally from their flags.
class ExportGuard {
 public:
  ExportGuard(std::string trace_path, std::string metrics_path);
  ~ExportGuard();

  ExportGuard(const ExportGuard&) = delete;
  ExportGuard& operator=(const ExportGuard&) = delete;

  [[nodiscard]] bool wants_trace() const noexcept {
    return !trace_path_.empty();
  }
  [[nodiscard]] bool wants_metrics() const noexcept {
    return !metrics_path_.empty();
  }

  /// Disables the tracer and writes the requested artifacts now. Idempotent;
  /// call it at the natural end of a run so I/O errors still surface as
  /// exceptions instead of a destructor-time stderr note.
  void close();

 private:
  void write_artifacts();

  std::string trace_path_;
  std::string metrics_path_;
  bool written_ = false;
};

}  // namespace wagg::obs

#endif  // WAGG_OBS_EXPORT_H
