#ifndef WAGG_OBS_EXPORT_H
#define WAGG_OBS_EXPORT_H

#include <string>

namespace wagg::obs {

/// Writes `content` to `path`, throwing std::runtime_error on I/O failure.
void write_text_file(const std::string& path, const std::string& content);

/// Writes Registry::global().snapshot().to_json() to `path` (the
/// machine-readable metrics snapshot CLIs expose via --metrics-json).
void export_metrics(const std::string& path);

/// Writes Tracer::global().chrome_trace_json() to `path` (the Perfetto /
/// chrome://tracing file CLIs expose via --trace). Call once recording
/// threads are quiescent.
void export_trace(const std::string& path);

}  // namespace wagg::obs

#endif  // WAGG_OBS_EXPORT_H
