#ifndef WAGG_OBS_JSON_H
#define WAGG_OBS_JSON_H

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace wagg::obs::json {

/// Minimal JSON document model: just enough for the telemetry snapshots the
/// obs layer writes and the CI perf gates read back. Numbers are doubles
/// (every metric the registry exports fits without precision loss at the
/// magnitudes gates compare), objects preserve key lookup via std::map.
class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;
  explicit Value(bool b) : kind_(Kind::kBool), bool_(b) {}
  explicit Value(double d) : kind_(Kind::kNumber), number_(d) {}
  explicit Value(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<Value>& as_array() const;
  [[nodiscard]] const std::map<std::string, Value>& as_object() const;

  /// Object member access; throws std::out_of_range when absent (gates want
  /// a loud failure on a missing metric, not a silent zero).
  [[nodiscard]] const Value& at(const std::string& key) const;
  [[nodiscard]] bool contains(const std::string& key) const;

  static Value array(std::vector<Value> items);
  static Value object(std::map<std::string, Value> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::map<std::string, Value> object_;
};

/// Containers deeper than this fail to parse. The obs writers nest a
/// handful of levels; the cap turns a hostile or corrupted input into a
/// clean std::invalid_argument instead of recursion-depth stack exhaustion.
inline constexpr std::size_t kMaxParseDepth = 128;

/// Parses one JSON document (recursive descent, UTF-8 passthrough, \uXXXX
/// escapes decoded only for the ASCII range the obs layer ever emits).
/// Throws std::invalid_argument on malformed input, trailing garbage, or
/// nesting beyond kMaxParseDepth. Numbers must be finite doubles: NaN/Inf
/// spellings and magnitudes that overflow a double are rejected, not
/// saturated (a gate comparing against inf would pass vacuously).
[[nodiscard]] Value parse(std::string_view text);

/// Escapes `s` for embedding inside a JSON string literal (quotes excluded).
[[nodiscard]] std::string escape(std::string_view s);

/// Serializes a double the way the obs writers do: shortest round-trippable
/// form, with non-finite values mapped to null (JSON has no inf/nan).
[[nodiscard]] std::string number(double d);

}  // namespace wagg::obs::json

#endif  // WAGG_OBS_JSON_H
