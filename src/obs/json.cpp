#include "obs/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace wagg::obs::json {

namespace {

[[noreturn]] void fail(const char* what, std::size_t pos) {
  throw std::invalid_argument("json: " + std::string(what) + " at offset " +
                              std::to_string(pos));
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value document() {
    Value v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage", pos_);
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input", pos_);
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character", pos_);
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case ']':
      case '}':
      case ',':
      case ':':
        fail("unexpected character", pos_);
      case '"':
        return Value(string());
      case 't':
        if (!consume_literal("true")) fail("bad literal", pos_);
        return Value(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal", pos_);
        return Value(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal", pos_);
        return Value();
      default:
        return Value(parse_number());
    }
  }

  double parse_number() {
    // Enforce the strict JSON grammar before handing the slice to
    // from_chars, which is laxer (leading zeros, "1.", ".5").
    const std::size_t start = pos_;
    const auto digit = [this] {
      return pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]));
    };
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (!digit()) fail("malformed number", start);
    if (text_[pos_] == '0') {
      ++pos_;  // a leading zero must stand alone ("0", "0.5", "0e3")
    } else {
      while (digit()) ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!digit()) fail("malformed number", start);
      while (digit()) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() &&
          (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!digit()) fail("malformed number", start);
      while (digit()) ++pos_;
    }
    double out = 0.0;
    const auto* begin = text_.data() + start;
    const auto* end = text_.data() + pos_;
    const auto [ptr, ec] = std::from_chars(begin, end, out);
    if (ec != std::errc{} || ptr != end) {
      fail("malformed number", start);
    }
    return out;
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string", pos_);
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape", pos_);
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape", pos_);
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape", pos_ - 1);
          }
          // The obs writers only ever escape control characters; decode the
          // ASCII range and reject the rest rather than mis-decode UTF-16.
          if (code > 0x7f) fail("non-ASCII \\u escape unsupported", pos_);
          out.push_back(static_cast<char>(code));
          break;
        }
        default:
          fail("unknown escape", pos_ - 1);
      }
    }
  }

  /// Containers recurse through value(); the depth cap bounds the call
  /// stack so adversarially deep input fails loudly instead of overflowing.
  void enter() {
    if (++depth_ > kMaxParseDepth) fail("nesting too deep", pos_);
  }
  void leave() noexcept { --depth_; }

  Value array() {
    expect('[');
    enter();
    std::vector<Value> items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      leave();
      return Value::array(std::move(items));
    }
    for (;;) {
      items.push_back(value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') {
        leave();
        return Value::array(std::move(items));
      }
      if (c != ',') fail("expected ',' or ']'", pos_ - 1);
    }
  }

  Value object() {
    expect('{');
    enter();
    std::map<std::string, Value> members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      leave();
      return Value::object(std::move(members));
    }
    for (;;) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      members.insert_or_assign(std::move(key), value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') {
        leave();
        return Value::object(std::move(members));
      }
      if (c != ',') fail("expected ',' or '}'", pos_ - 1);
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
};

}  // namespace

bool Value::as_bool() const {
  if (kind_ != Kind::kBool) throw std::invalid_argument("json: not a bool");
  return bool_;
}

double Value::as_number() const {
  if (kind_ != Kind::kNumber) {
    throw std::invalid_argument("json: not a number");
  }
  return number_;
}

const std::string& Value::as_string() const {
  if (kind_ != Kind::kString) {
    throw std::invalid_argument("json: not a string");
  }
  return string_;
}

const std::vector<Value>& Value::as_array() const {
  if (kind_ != Kind::kArray) throw std::invalid_argument("json: not an array");
  return array_;
}

const std::map<std::string, Value>& Value::as_object() const {
  if (kind_ != Kind::kObject) {
    throw std::invalid_argument("json: not an object");
  }
  return object_;
}

const Value& Value::at(const std::string& key) const {
  const auto& members = as_object();
  const auto it = members.find(key);
  if (it == members.end()) {
    throw std::out_of_range("json: missing key \"" + key + "\"");
  }
  return it->second;
}

bool Value::contains(const std::string& key) const {
  const auto& members = as_object();
  return members.find(key) != members.end();
}

Value Value::array(std::vector<Value> items) {
  Value v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}

Value Value::object(std::map<std::string, Value> members) {
  Value v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(members);
  return v;
}

Value parse(std::string_view text) { return Parser(text).document(); }

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string number(double d) {
  if (!std::isfinite(d)) return "null";
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), d);
  if (ec != std::errc{}) return "0";
  return std::string(buf, ptr);
}

}  // namespace wagg::obs::json
