#ifndef WAGG_OBS_PROFILE_H
#define WAGG_OBS_PROFILE_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.h"

namespace wagg::obs {

/// One per-stage attribution row of a span profile.
struct ProfileRow {
  std::string name;
  std::size_t count = 0;      ///< span occurrences across the stream
  double inclusive_ms = 0.0;  ///< sum of span durations (subtree time)
  double exclusive_ms = 0.0;  ///< inclusive minus direct children (self time)
  /// Per-root attribution: exclusive self time divided by the number of
  /// root spans — "ms of this stage per epoch" when roots are epochs.
  double exclusive_per_root_ms = 0.0;
};

/// A span stream collapsed into per-stage inclusive/exclusive self-time
/// tables. The structural identity the profiler maintains (and the bench
/// suite gates on): summed exclusive self time over ALL rows equals summed
/// root-span time exactly — every nanosecond of a root span is attributed
/// to exactly one stage, so the table reads as a complete breakdown of
/// where an epoch went.
struct ProfileReport {
  /// Rows sorted hottest first (descending exclusive self time).
  std::vector<ProfileRow> rows;
  /// Spans with no enclosing span. When the stream is a churn session's
  /// epoch window these are exactly the `epoch` spans, and the per-root
  /// columns read as per-epoch attribution.
  std::size_t root_count = 0;
  double root_ms = 0.0;  ///< summed duration of root spans
  /// Spans that partially overlap their predecessor on the same thread
  /// (a torn ring slot or non-RAII instrumentation). Zero on any stream the
  /// built-in spans produce; non-zero means the exclusive identity cannot
  /// hold and the report should be distrusted.
  std::size_t malformed_spans = 0;

  /// Summed exclusive self time across rows. Equals root_ms up to floating
  /// rounding whenever malformed_spans == 0.
  [[nodiscard]] double exclusive_sum_ms() const;

  /// Human-readable hot-stage table: the top_k hottest rows (0 = all) plus
  /// a totals line asserting the exclusive-sum identity.
  [[nodiscard]] std::string table(std::size_t top_k = 0) const;
};

/// Collapses a flat span stream into the per-stage report. Spans are grouped
/// by tid; within a thread they must be well nested (RAII bracketing —
/// any two spans either contain one another or are disjoint), which is what
/// obs::Span/StageSpan produce by construction. Nesting is recovered from
/// the timestamps alone, so offline traces profile identically to live ones.
[[nodiscard]] ProfileReport profile_spans(std::vector<CollectedSpan> spans);

/// Profiles the global tracer's surviving buffer (Tracer::collect()).
[[nodiscard]] ProfileReport profile_global_tracer();

/// Profiles a Chrome trace-event JSON artifact — the offline path for any
/// file a `--trace` flag wrote. Complete ("X") events become spans; metadata
/// events are skipped. Throws std::invalid_argument on malformed JSON.
[[nodiscard]] ProfileReport profile_chrome_trace(std::string_view json_text);

}  // namespace wagg::obs

#endif  // WAGG_OBS_PROFILE_H
