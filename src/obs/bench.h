#ifndef WAGG_OBS_BENCH_H
#define WAGG_OBS_BENCH_H

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace wagg::obs {

/// One measured metric of one bench scenario: the raw per-repeat samples
/// plus the median/MAD summary the comparator gates on. The MAD (median
/// absolute deviation) is the noise currency — a robust spread estimate that
/// one cold-cache outlier cannot inflate the way a stddev can.
struct BenchMetric {
  /// "ms" (lower is better), "per_sec" (higher is better), or "ratio"
  /// (direction carried by higher_is_better).
  std::string unit = "ms";
  bool higher_is_better = false;
  /// True when the value is meaningful across machines (dimensionless
  /// ratios of two quantities measured on the same host, e.g. incremental
  /// cost over an in-process from-scratch baseline). Absolute wall clocks
  /// are not portable; the comparator can be told to gate portable metrics
  /// only when baseline and candidate ran on different hardware.
  bool portable = false;
  /// Producer-declared noise floor as a fraction of the median, max'd with
  /// the comparator's min_rel_tolerance. For most metrics the repeats sample
  /// the between-run noise and 0 is right; set it when they cannot — e.g.
  /// thread-pool wall clocks, where repeats inside one process share a
  /// scheduler regime and the regime itself shifts between runs, so the
  /// within-run MAD understates run-to-run spread.
  double min_rel = 0.0;
  double median = 0.0;
  double mad = 0.0;
  std::vector<double> repeats;  ///< raw values, run order

  /// Builds the summary from raw repeats (median and MAD computed here).
  [[nodiscard]] static BenchMetric of(std::vector<double> repeats,
                                      std::string unit = "ms",
                                      bool higher_is_better = false,
                                      bool portable = false);

  friend bool operator==(const BenchMetric&, const BenchMetric&) = default;
};

/// One scenario of the canonical matrix: a named workload configuration,
/// its measured metrics, and the full registry snapshot captured on the
/// final measured repeat (so a trajectory point carries every counter and
/// latency histogram the run produced, not just the gated medians).
struct BenchScenario {
  std::string name;  ///< e.g. "churn/uniform/n2048/r0.01"
  std::string kind;  ///< "static" | "churn" | "service"
  std::map<std::string, BenchMetric> metrics;
  MetricsSnapshot registry;

  [[nodiscard]] const BenchMetric* find(const std::string& metric) const;
};

/// One point of the perf trajectory: everything `wagg_bench` measured in
/// one suite run, serialized as schema `wagg-bench-v1`. Committed points
/// (bench/baseline.json, BENCH_<date>.json) are what future runs compare
/// against.
struct BenchTrajectory {
  std::string date;   ///< ISO date of the run
  std::string label;  ///< freeform provenance (git sha, PR tag, host)
  std::size_t repeats = 0;
  std::size_t warmup = 0;
  std::vector<BenchScenario> scenarios;

  [[nodiscard]] const BenchScenario* find(std::string_view name) const;

  [[nodiscard]] std::string to_json() const;
  /// Throws std::invalid_argument on malformed input or a schema marker
  /// other than wagg-bench-v1.
  [[nodiscard]] static BenchTrajectory from_json(std::string_view text);
};

/// Robust summary helpers (exposed for tests).
[[nodiscard]] double median_of(std::vector<double> values);
/// Median absolute deviation around the median; 0 for < 2 samples.
[[nodiscard]] double mad_of(std::vector<double> values);

// ---------------------------------------------------------------- compare

struct CompareOptions {
  /// Tolerance floor as a fraction of the baseline median: differences
  /// under this never gate, whatever the MADs claim (k repeats can by luck
  /// produce a near-zero MAD).
  double min_rel_tolerance = 0.05;
  /// Noise band: the tolerance grows with the measured spread of BOTH runs,
  /// mad_multiplier * (baseline.mad + candidate.mad).
  double mad_multiplier = 4.0;
  /// Absolute floor for "ms" metrics: sub-tenth-of-a-millisecond swings are
  /// scheduler noise at any relative size.
  double min_abs_ms = 0.1;
  /// Gate only hardware-portable metrics (baseline from another machine);
  /// absolute metrics still appear in the report as informational rows.
  bool portable_only = false;
};

enum class Verdict {
  kOk,        ///< within the noise tolerance
  kImproved,  ///< better beyond tolerance (reported, never fails)
  kRegressed, ///< worse beyond tolerance (fails the comparison)
  kInfo,      ///< not gated under the active options
  kMissing,   ///< present in baseline, absent in candidate (fails: coverage loss)
  kNew,       ///< present only in candidate (reported)
};

[[nodiscard]] std::string to_string(Verdict verdict);

struct CompareFinding {
  std::string scenario;
  std::string metric;
  double baseline_median = 0.0;
  double candidate_median = 0.0;
  /// Signed change in the metric's own direction: positive = worse.
  double delta_fraction = 0.0;
  double tolerance_fraction = 0.0;
  Verdict verdict = Verdict::kOk;
};

struct CompareReport {
  std::vector<CompareFinding> findings;  ///< regressions first
  std::size_t regressions = 0;
  std::size_t improvements = 0;

  /// The merge gate: false iff any gated metric regressed or went missing.
  [[nodiscard]] bool ok() const noexcept { return regressions == 0; }
  [[nodiscard]] std::string table() const;
};

/// Direction-aware, noise-tolerant comparison of two trajectory points.
/// Per metric the tolerance is
///   max(min_rel_tolerance * |baseline.median|,
///       per-metric min_rel (either side) * |baseline.median|,
///       mad_multiplier * (baseline.mad + candidate.mad)
///       [, min_abs_ms / |baseline.median| for "ms" metrics])
/// as a fraction of the baseline median; a candidate median worse than that
/// is kRegressed, better than that is kImproved, anything else kOk.
[[nodiscard]] CompareReport compare(const BenchTrajectory& baseline,
                                    const BenchTrajectory& candidate,
                                    const CompareOptions& options = {});

}  // namespace wagg::obs

#endif  // WAGG_OBS_BENCH_H
