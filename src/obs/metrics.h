#ifndef WAGG_OBS_METRICS_H
#define WAGG_OBS_METRICS_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace wagg::obs::json {
class Value;
}  // namespace wagg::obs::json

namespace wagg::obs {

/// Monotone event count. All operations are lock-free relaxed atomics: the
/// hot path is one fetch_add, and cross-thread ordering is irrelevant for a
/// telemetry total (the exporter reads whatever has landed).
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written instantaneous value (worker utilization, live sessions...).
/// add() exists for up/down tracking (busy-worker counts); set() for
/// sampled values.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept {
    // CAS loop rather than C++20 floating fetch_add: lock-free on every
    // toolchain this builds with.
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// One p50/p95/mean/max summary line — the single formatting currency for
/// every latency table in the repo (BatchStats stages, wagg_churn's session
/// summary, the bench gates). All values are in the recorded unit.
struct SummaryRow {
  double p50 = 0.0;
  double p95 = 0.0;
  double mean = 0.0;
  double max = 0.0;
};

/// Immutable copy of a Histogram's state (or of a raw sample set squeezed
/// through the same buckets — `of()` — so every summary in the repo shares
/// ONE quantile implementation). quantile() answers from the log buckets
/// with the relative error documented on Histogram; mean and max are exact.
class HistogramSnapshot {
 public:
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }
  [[nodiscard]] double mean() const noexcept {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }

  /// Approximate quantile, p in [0, 100]. Non-throwing: empty snapshots
  /// answer 0 (batches with no churn sessions produce empty summaries), out
  /// of range p clamps. Monotone in p, and clamped to the exact observed
  /// [min, max]; the extreme ranks answer exactly (quantile(0) == min(),
  /// quantile(100) == max()).
  [[nodiscard]] double quantile(double p) const noexcept;

  /// The shared p50/p95/mean/max summary of this distribution.
  [[nodiscard]] SummaryRow row() const noexcept;

  /// Buckets with non-zero counts as (bucket index, count) pairs — the
  /// sparse wire form of the metrics JSON.
  [[nodiscard]] std::vector<std::pair<std::uint32_t, std::uint64_t>>
  nonzero_buckets() const;

  /// Builds a snapshot from raw samples through the same bucket layout.
  static HistogramSnapshot of(std::span<const double> values);

  /// Reassembles a snapshot from wire parts (the metrics-JSON reader).
  /// Bucket indices out of range throw std::invalid_argument.
  static HistogramSnapshot from_parts(
      std::uint64_t count, double sum, double min, double max,
      std::span<const std::pair<std::uint32_t, std::uint64_t>> buckets);

 private:
  friend class Histogram;

  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::vector<std::uint64_t> buckets_;  ///< dense, kNumBuckets when non-empty
};

/// Log-bucketed latency/size histogram, mergeable across threads.
///
/// Bucket layout: each power-of-two octave [2^e, 2^(e+1)) is split into
/// 2^kSubBits = 32 equal-width sub-buckets, for exponents e in
/// [kMinExponent, kMaxExponent]. The bucket index is computed branch-free
/// from the IEEE-754 bit pattern — exponent and top mantissa bits fall out
/// of one shift — plus a clamp into range (compiled as conditional moves).
/// Reported quantiles use the bucket midpoint, so the relative quantile
/// error is bounded by half a bucket width: 2^-(kSubBits+1) = 1/64 ≈ 1.6%
/// of the true value (values outside [2^kMinExponent, 2^(kMaxExponent+1))
/// saturate into the edge buckets; zero and negative samples land in
/// bucket 0 and report as ~0).
///
/// record() is wait-free: one relaxed fetch_add on the bucket plus relaxed
/// count/sum updates and CAS min/max — no locks, safe from any thread.
/// Unlike util::Samples it keeps O(1) state per histogram instead of every
/// sample, so hot loops can record unconditionally.
class Histogram {
 public:
  static constexpr int kSubBits = 5;
  static constexpr int kMinExponent = -32;  ///< bucket 0 starts at 2^-32
  static constexpr int kMaxExponent = 31;   ///< top octave [2^31, 2^32)
  static constexpr std::size_t kNumBuckets =
      static_cast<std::size_t>(kMaxExponent - kMinExponent + 1) << kSubBits;

  /// Maximum relative error of a reported quantile vs the true sample.
  static constexpr double kMaxRelativeError = 1.0 / 64.0;

  /// Branch-free bucket index of a sample (exposed for tests).
  [[nodiscard]] static std::size_t bucket_index(double v) noexcept;
  /// The representative (midpoint) value reported for a bucket.
  [[nodiscard]] static double bucket_midpoint(std::size_t index) noexcept;

  void record(double v) noexcept;
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

  /// Copies the live state. Safe to call concurrently with record(); the
  /// copy is a telemetry-grade snapshot (fields may straddle an in-flight
  /// record), exact once writers are quiescent.
  [[nodiscard]] HistogramSnapshot snapshot() const;

  void reset() noexcept;

 private:
  std::atomic<std::uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

/// Everything the registry knew at one instant, decoupled from the live
/// atomics. to_json() emits the machine-readable snapshot the CLIs write
/// and the CI perf gates parse back with from_json() — see README
/// "Observability" for the schema.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  [[nodiscard]] std::string to_json() const;
  static MetricsSnapshot from_json(std::string_view text);
  /// Reassembles a snapshot from an already-parsed wagg-metrics-v1 object —
  /// the hook that lets other schemas (wagg-bench-v1 trajectories) embed a
  /// registry snapshot per record without re-serializing the subtree.
  static MetricsSnapshot from_value(const json::Value& doc);
};

/// Named metric registry. Registration (the first lookup of a name) takes a
/// mutex; the returned references are stable for the registry's lifetime,
/// so instrumented code resolves its metrics once and then touches only
/// lock-free atomics. Re-looking up a name returns the same instance —
/// counters are process-wide totals, the way a scrape endpoint would see
/// them.
class Registry {
 public:
  /// The process-wide registry every built-in instrumentation site uses.
  static Registry& global();

  Counter& counter(const std::string& name) WAGG_EXCLUDES(mutex_);
  Gauge& gauge(const std::string& name) WAGG_EXCLUDES(mutex_);
  Histogram& histogram(const std::string& name) WAGG_EXCLUDES(mutex_);

  [[nodiscard]] MetricsSnapshot snapshot() const WAGG_EXCLUDES(mutex_);

  /// Zeroes every registered metric (registrations survive, references stay
  /// valid). For CLIs and gates that want a run-scoped window over the
  /// process-wide registry.
  void reset() WAGG_EXCLUDES(mutex_);

 private:
  /// Guards the name→metric maps only. The metric OBJECTS returned by the
  /// lookups are deliberately outside this capability: they are stable for
  /// the registry's lifetime and internally lock-free (relaxed atomics /
  /// CAS loops), so instrumented hot paths touch them without any lock.
  mutable util::Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      WAGG_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      WAGG_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      WAGG_GUARDED_BY(mutex_);
};

}  // namespace wagg::obs

#endif  // WAGG_OBS_METRICS_H
