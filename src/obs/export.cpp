#include "obs/export.h"

#include <fstream>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace wagg::obs {

void write_text_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("obs: cannot open " + path + " for writing");
  }
  out << content;
  if (!out) {
    throw std::runtime_error("obs: short write to " + path);
  }
}

void export_metrics(const std::string& path) {
  write_text_file(path, Registry::global().snapshot().to_json());
}

void export_trace(const std::string& path) {
  write_text_file(path, Tracer::global().chrome_trace_json());
}

}  // namespace wagg::obs
