#include "obs/export.h"

#include <exception>
#include <fstream>
#include <iostream>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace wagg::obs {

void write_text_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("obs: cannot open " + path + " for writing");
  }
  out << content;
  if (!out) {
    throw std::runtime_error("obs: short write to " + path);
  }
}

void export_metrics(const std::string& path) {
  write_text_file(path, Registry::global().snapshot().to_json());
}

void export_trace(const std::string& path) {
  write_text_file(path, Tracer::global().chrome_trace_json());
}

ExportGuard::ExportGuard(std::string trace_path, std::string metrics_path)
    : trace_path_(std::move(trace_path)),
      metrics_path_(std::move(metrics_path)) {
  if (wants_trace()) Tracer::global().enable();
}

ExportGuard::~ExportGuard() {
  if (written_) return;
  // Unwinding path: a run died mid-session. The buffered spans and metrics
  // are exactly the postmortem evidence; write what we can, never throw.
  try {
    close();
  } catch (const std::exception& e) {
    std::cerr << "obs: telemetry export failed during unwind: " << e.what()
              << "\n";
  }
}

void ExportGuard::close() {
  if (written_) return;
  if (wants_trace()) Tracer::global().disable();
  write_artifacts();
  written_ = true;
}

void ExportGuard::write_artifacts() {
  if (wants_trace()) export_trace(trace_path_);
  if (wants_metrics()) export_metrics(metrics_path_);
}

}  // namespace wagg::obs
