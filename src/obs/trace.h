#ifndef WAGG_OBS_TRACE_H
#define WAGG_OBS_TRACE_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/clock.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace wagg::obs {

/// One completed span. `name` must point at a string literal (or any
/// storage outliving the tracer) — the hot path stores the pointer, never
/// copies.
struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;  ///< since the tracer's epoch
  std::uint64_t end_ns = 0;
};

/// One collected span, decoupled from the tracer's storage (the name is
/// copied, the recording thread identified by tid) — the in-process currency
/// of the span profiler (obs/profile.h).
struct CollectedSpan {
  std::string name;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint32_t tid = 0;

  friend bool operator==(const CollectedSpan&, const CollectedSpan&) = default;
};

/// Process-wide span collector. Disabled by default; a disabled tracer
/// costs instrumented code one relaxed atomic load per span.
///
/// When enabled, each recording thread owns a fixed-size ring buffer it
/// alone writes (registered once under a mutex — the only lock, and only on
/// a thread's first span). record() is therefore lock-free and allocation-
/// free on the hot path: one slot store plus a release bump of the write
/// head. A full ring drops the OLDEST events (the ring keeps the tail of
/// the story) and the overwritten count is exact: dropped = written -
/// capacity.
///
/// Export (chrome_trace_json) expects recording threads to be quiescent —
/// either joined (the join provides the happens-before) or between spans;
/// an export raced with an in-flight record() may see a torn oldest slot.
/// All CLIs export after their sessions complete.
class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 16;

  /// The process-wide tracer every Span uses.
  static Tracer& global();

  /// Starts collecting. Clears previously collected events; per-thread
  /// buffers are (re)created at `events_per_thread` capacity on each
  /// thread's next span.
  void enable(std::size_t events_per_thread = kDefaultCapacity)
      WAGG_EXCLUDES(mutex_);
  /// Stops collecting. Buffered events survive for export.
  void disable();
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Nanoseconds since the tracer's epoch (set at construction).
  [[nodiscard]] std::uint64_t now_ns() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            util::Clock::now() - epoch_)
            .count());
  }

  /// Appends one completed span to the calling thread's ring buffer.
  void record(const char* name, std::uint64_t start_ns,
              std::uint64_t end_ns);

  /// Total spans handed to record() since the last enable().
  [[nodiscard]] std::uint64_t recorded_events() const WAGG_EXCLUDES(mutex_);
  /// Spans overwritten by ring wraparound (exact; see class comment).
  [[nodiscard]] std::uint64_t dropped_events() const WAGG_EXCLUDES(mutex_);

  /// Chrome trace-event JSON (the object form: {"traceEvents": [...]}),
  /// loadable in Perfetto / chrome://tracing. Spans become complete ("X")
  /// events with microsecond timestamps; per-thread buffers become tids,
  /// annotated with thread_name metadata. Nesting needs no explicit links:
  /// RAII spans on one thread are properly bracketed, which is exactly the
  /// containment the viewers render as a slice tree.
  [[nodiscard]] std::string chrome_trace_json() const WAGG_EXCLUDES(mutex_);

  /// Snapshots the surviving buffered spans (ring order per thread, oldest
  /// first) for in-process profiling — the same events chrome_trace_json()
  /// would serialize, without the JSON round trip. Same quiescence contract
  /// as export.
  [[nodiscard]] std::vector<CollectedSpan> collect() const
      WAGG_EXCLUDES(mutex_);

  /// Drops all buffered events and thread registrations.
  void clear() WAGG_EXCLUDES(mutex_);

 private:
  struct ThreadBuffer {
    ThreadBuffer(std::size_t capacity, std::uint32_t thread_id)
        : ring(capacity), tid(thread_id) {}
    std::vector<TraceEvent> ring;
    /// Total events ever written; slot = head % ring.size(). Release store
    /// after the slot write so a quiescent reader acquires complete events.
    std::atomic<std::uint64_t> head{0};
    std::uint32_t tid = 0;
  };

  Tracer() : epoch_(util::Clock::now()) {}

  [[nodiscard]] ThreadBuffer* local_buffer() WAGG_EXCLUDES(mutex_);

  std::atomic<bool> enabled_{false};
  /// Bumped by enable()/clear(); thread-local buffer pointers are revalidated
  /// against it so stale pointers from a previous enable window are never
  /// dereferenced.
  std::atomic<std::uint64_t> generation_{1};
  util::Clock::time_point epoch_;

  /// Guards buffer REGISTRATION (the buffers_ vector and capacity_) and
  /// every reader (collect/export/counts). The ring CONTENTS are outside
  /// this capability on the write side: each ring has exactly one writer —
  /// the thread that registered it — and readers rely on the documented
  /// quiescence contract plus the head's release/acquire pairing, not on
  /// the mutex. That one lock-free write path is the record() carve-out.
  mutable util::Mutex mutex_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_
      WAGG_GUARDED_BY(mutex_);
  std::size_t capacity_ WAGG_GUARDED_BY(mutex_) = kDefaultCapacity;
};

/// RAII scoped span against the global tracer. `name` must be a string
/// literal (stored by pointer). Construction on a disabled tracer reduces
/// to one relaxed load; destruction to one branch.
class Span {
 public:
  explicit Span(const char* name) noexcept {
    Tracer& tracer = Tracer::global();
    if (tracer.enabled()) {
      name_ = name;
      start_ns_ = tracer.now_ns();
    }
  }
  ~Span() {
    if (name_ != nullptr) {
      Tracer& tracer = Tracer::global();
      tracer.record(name_, start_ns_, tracer.now_ns());
    }
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
};

/// Manual span rotation for straight-line stage sequences: next("b") closes
/// the current span and opens the next back-to-back (shared timestamp, so
/// consecutive stages tile without gap or overlap), close()/destruction ends
/// the last one. Fits code like DynamicPlanner::replan where stages are
/// sequential statements in one scope and RAII blocks would force
/// restructuring.
class StageSpan {
 public:
  explicit StageSpan(const char* name) noexcept {
    Tracer& tracer = Tracer::global();
    if (tracer.enabled()) {
      name_ = name;
      start_ns_ = tracer.now_ns();
    }
  }
  ~StageSpan() { close(); }

  /// Ends the current stage and starts `name` at the same instant.
  void next(const char* name) noexcept {
    if (name_ == nullptr) return;
    Tracer& tracer = Tracer::global();
    const std::uint64_t now = tracer.now_ns();
    tracer.record(name_, start_ns_, now);
    name_ = name;
    start_ns_ = now;
  }

  /// Ends the current stage (idempotent).
  void close() noexcept {
    if (name_ == nullptr) return;
    Tracer& tracer = Tracer::global();
    tracer.record(name_, start_ns_, tracer.now_ns());
    name_ = nullptr;
  }

  StageSpan(const StageSpan&) = delete;
  StageSpan& operator=(const StageSpan&) = delete;

 private:
  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
};

}  // namespace wagg::obs

#endif  // WAGG_OBS_TRACE_H
