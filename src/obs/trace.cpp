#include "obs/trace.h"

#include <algorithm>
#include <sstream>

#include "obs/json.h"

namespace wagg::obs {

Tracer& Tracer::global() {
  static Tracer instance;
  return instance;
}

void Tracer::enable(std::size_t events_per_thread) {
  util::MutexLock lock(mutex_);
  buffers_.clear();
  capacity_ = std::max<std::size_t>(1, events_per_thread);
  generation_.fetch_add(1, std::memory_order_release);
  enabled_.store(true, std::memory_order_release);
}

void Tracer::disable() {
  enabled_.store(false, std::memory_order_release);
}

void Tracer::clear() {
  util::MutexLock lock(mutex_);
  buffers_.clear();
  generation_.fetch_add(1, std::memory_order_release);
}

Tracer::ThreadBuffer* Tracer::local_buffer() {
  // This thread's binding, revalidated against the tracer's generation so
  // enable()/clear() windows never leak stale buffer pointers across.
  thread_local ThreadBuffer* bound_buffer = nullptr;
  thread_local std::uint64_t bound_generation = 0;

  const std::uint64_t generation =
      generation_.load(std::memory_order_acquire);
  if (bound_buffer != nullptr && bound_generation == generation) {
    return bound_buffer;
  }
  // Cold path: first span of this thread in this enable window.
  util::MutexLock lock(mutex_);
  // A concurrent enable()/clear() between the generation read and the lock
  // would orphan this buffer into a dead window; re-reading under the lock
  // keeps binding and registration consistent.
  bound_generation = generation_.load(std::memory_order_relaxed);
  buffers_.push_back(std::make_unique<ThreadBuffer>(
      capacity_, static_cast<std::uint32_t>(buffers_.size())));
  bound_buffer = buffers_.back().get();
  return bound_buffer;
}

// Carve-out (WAGG_NO_THREAD_SAFETY_ANALYSIS): the hot path writes the ring
// through a raw ThreadBuffer* cached thread-locally, outside mutex_ — by
// design. Safety comes from single-writer ownership (only the registering
// thread ever writes its ring; slot store before the release head bump) and
// from the generation check in local_buffer(), which keeps stale pointers
// from a previous enable()/clear() window from being dereferenced. Readers
// take mutex_ AND require writer quiescence (class comment).
void Tracer::record(const char* name, std::uint64_t start_ns,
                    std::uint64_t end_ns) WAGG_NO_THREAD_SAFETY_ANALYSIS {
  ThreadBuffer* buffer = local_buffer();
  const std::uint64_t head = buffer->head.load(std::memory_order_relaxed);
  buffer->ring[head % buffer->ring.size()] =
      TraceEvent{name, start_ns, end_ns};
  buffer->head.store(head + 1, std::memory_order_release);
}

std::uint64_t Tracer::recorded_events() const {
  util::MutexLock lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& buffer : buffers_) {
    total += buffer->head.load(std::memory_order_acquire);
  }
  return total;
}

std::uint64_t Tracer::dropped_events() const {
  util::MutexLock lock(mutex_);
  std::uint64_t dropped = 0;
  for (const auto& buffer : buffers_) {
    const std::uint64_t written =
        buffer->head.load(std::memory_order_acquire);
    if (written > buffer->ring.size()) {
      dropped += written - buffer->ring.size();
    }
  }
  return dropped;
}

std::vector<CollectedSpan> Tracer::collect() const {
  util::MutexLock lock(mutex_);
  std::vector<CollectedSpan> spans;
  for (const auto& buffer : buffers_) {
    const std::uint64_t written =
        buffer->head.load(std::memory_order_acquire);
    const std::uint64_t kept =
        std::min<std::uint64_t>(written, buffer->ring.size());
    for (std::uint64_t k = written - kept; k < written; ++k) {
      const TraceEvent& event = buffer->ring[k % buffer->ring.size()];
      spans.push_back(CollectedSpan{event.name, event.start_ns, event.end_ns,
                                    buffer->tid});
    }
  }
  return spans;
}

std::string Tracer::chrome_trace_json() const {
  util::MutexLock lock(mutex_);
  std::ostringstream out;
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  std::uint64_t dropped = 0;
  for (const auto& buffer : buffers_) {
    const std::uint64_t written =
        buffer->head.load(std::memory_order_acquire);
    const std::uint64_t kept =
        std::min<std::uint64_t>(written, buffer->ring.size());
    if (written > buffer->ring.size()) {
      dropped += written - buffer->ring.size();
    }
    out << (first ? "\n" : ",\n") << "  {\"ph\": \"M\", \"pid\": 1, \"tid\": "
        << buffer->tid
        << ", \"name\": \"thread_name\", \"args\": {\"name\": \"wagg-thread-"
        << buffer->tid << "\"}}";
    first = false;
    // Oldest surviving event first; ring order is span-completion order.
    for (std::uint64_t k = written - kept; k < written; ++k) {
      const TraceEvent& event = buffer->ring[k % buffer->ring.size()];
      const double ts_us = static_cast<double>(event.start_ns) / 1000.0;
      const double dur_us =
          static_cast<double>(event.end_ns - event.start_ns) / 1000.0;
      out << ",\n  {\"ph\": \"X\", \"pid\": 1, \"tid\": " << buffer->tid
          << ", \"name\": \"" << json::escape(event.name)
          << "\", \"ts\": " << json::number(ts_us)
          << ", \"dur\": " << json::number(dur_us) << "}";
    }
  }
  out << (first ? "]" : "\n]") << ", \"otherData\": {\"dropped_events\": "
      << dropped << "}}\n";
  return out.str();
}

}  // namespace wagg::obs
