#include "schedule/schedule.h"

#include <stdexcept>

namespace wagg::schedule {

double Schedule::coloring_rate() const {
  if (slots.empty()) {
    throw std::logic_error("Schedule::coloring_rate: empty schedule");
  }
  return 1.0 / static_cast<double>(slots.size());
}

std::size_t Schedule::total_transmissions() const noexcept {
  std::size_t total = 0;
  for (const auto& slot : slots) total += slot.size();
  return total;
}

Schedule from_coloring(const coloring::Coloring& coloring) {
  Schedule schedule;
  schedule.slots = coloring.classes();
  return schedule;
}

bool covers_all_links(const Schedule& schedule, std::size_t num_links) {
  std::vector<bool> seen(num_links, false);
  for (const auto& slot : schedule.slots) {
    for (std::size_t link : slot) {
      if (link >= num_links) return false;
      seen[link] = true;
    }
  }
  for (bool s : seen) {
    if (!s) return false;
  }
  return true;
}

bool is_partition(const Schedule& schedule, std::size_t num_links) {
  std::vector<int> count(num_links, 0);
  for (const auto& slot : schedule.slots) {
    for (std::size_t link : slot) {
      if (link >= num_links) return false;
      ++count[link];
    }
  }
  for (int c : count) {
    if (c != 1) return false;
  }
  return true;
}

double min_link_rate(const Schedule& schedule, std::size_t num_links) {
  if (schedule.slots.empty() || num_links == 0) return 0.0;
  std::vector<std::size_t> count(num_links, 0);
  for (const auto& slot : schedule.slots) {
    for (std::size_t link : slot) {
      if (link >= num_links) return 0.0;
      ++count[link];
    }
  }
  std::size_t min_count = count[0];
  for (std::size_t c : count) min_count = std::min(min_count, c);
  return static_cast<double>(min_count) /
         static_cast<double>(schedule.slots.size());
}

}  // namespace wagg::schedule
