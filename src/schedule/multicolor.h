#ifndef WAGG_SCHEDULE_MULTICOLOR_H
#define WAGG_SCHEDULE_MULTICOLOR_H

#include <cstdint>

#include "geom/linkset.h"
#include "schedule/schedule.h"
#include "schedule/verify.h"

namespace wagg::schedule {

/// Searches for a periodic multicoloring schedule with rate above 1/chi —
/// the paper's Sec 4 observation that optimal aggregation schedules need not
/// be colorings (the 5-cycle reaches 2/5 > 1/3). Randomized rounds: for each
/// candidate period P, slots are greedily packed preferring the links with
/// the lowest coverage so far (random tie-breaks, multiple restarts), and
/// the best min-coverage/period schedule is kept.
struct MulticolorOptions {
  /// Candidate periods: baseline_length .. ceil(stretch * baseline_length).
  double period_stretch = 2.0;
  int restarts_per_period = 24;
  std::uint64_t seed = 1;
};

struct MulticolorResult {
  Schedule schedule;
  /// min over links of (appearances / period); the achieved rate.
  double rate = 0.0;
  /// The coloring-schedule rate it had to beat (1 / baseline length).
  double baseline_rate = 0.0;

  [[nodiscard]] bool improved() const noexcept {
    return rate > baseline_rate + 1e-12;
  }
};

/// `baseline` must be a feasible coloring schedule (each link once); the
/// result is verified against the oracle slot by slot and never worse than
/// the baseline. Throws std::invalid_argument if the baseline is not a
/// partition of the link set.
[[nodiscard]] MulticolorResult improve_rate_by_multicoloring(
    const geom::LinkView& links, const Schedule& baseline,
    const FeasibilityOracle& oracle, const MulticolorOptions& options = {});

}  // namespace wagg::schedule

#endif  // WAGG_SCHEDULE_MULTICOLOR_H
