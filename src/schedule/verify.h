#ifndef WAGG_SCHEDULE_VERIFY_H
#define WAGG_SCHEDULE_VERIFY_H

#include <functional>
#include <span>
#include <vector>

#include "geom/linkset.h"
#include "schedule/schedule.h"
#include "sinr/feasibility.h"
#include "sinr/model.h"
#include "sinr/power.h"

namespace wagg::schedule {

/// A slot-feasibility oracle: true iff the given links may share a slot.
using FeasibilityOracle =
    std::function<bool(std::span<const std::size_t> slot)>;

/// Oracle for a fixed power assignment (exact SINR check).
[[nodiscard]] FeasibilityOracle fixed_power_oracle(
    const geom::LinkView& links, const sinr::SinrParams& params,
    sinr::PowerAssignment power, double tolerance = 1e-9);

/// Oracle for arbitrary power control (spectral-radius decision + certified
/// power vector, see sinr::power_control_feasible).
[[nodiscard]] FeasibilityOracle power_control_oracle(
    const geom::LinkView& links, const sinr::SinrParams& params,
    sinr::PowerControlOptions options = {});

/// Per-schedule verification result.
struct VerificationReport {
  bool all_slots_feasible = false;
  bool covers_all_links = false;
  /// Indices of slots that failed the oracle.
  std::vector<std::size_t> infeasible_slots;

  [[nodiscard]] bool ok() const noexcept {
    return all_slots_feasible && covers_all_links;
  }
};

/// Verifies every slot of the schedule against the oracle and checks link
/// coverage.
[[nodiscard]] VerificationReport verify_schedule(const geom::LinkView& links,
                                                 const Schedule& schedule,
                                                 const FeasibilityOracle& oracle);

}  // namespace wagg::schedule

#endif  // WAGG_SCHEDULE_VERIFY_H
