#ifndef WAGG_SCHEDULE_SIMULATOR_H
#define WAGG_SCHEDULE_SIMULATOR_H

#include <cstdint>
#include <vector>

#include "mst/tree.h"
#include "schedule/schedule.h"

namespace wagg::schedule {

/// Configuration for the pipelined convergecast simulation (Fig 1 semantics).
struct SimulationConfig {
  /// Number of measurement frames to aggregate.
  std::size_t num_frames = 64;
  /// A new frame is generated at every node each `generation_period` slots
  /// (the paper's Fig 1 uses 2: measurements in odd time slots). The offered
  /// rate is 1 / generation_period.
  std::size_t generation_period = 1;
  /// Hard stop; 0 = automatic (enough slots for the offered load to drain if
  /// the schedule sustains it).
  std::size_t max_slots = 0;
  /// Whether the sink contributes its own measurement to each frame.
  bool sink_generates = false;
};

/// What happened when the periodic schedule was run against the offered load.
struct SimulationReport {
  std::size_t frames_completed = 0;
  std::size_t slots_elapsed = 0;
  bool all_frames_completed = false;
  /// frames_completed / slots_elapsed: the measured aggregation throughput
  /// including pipeline fill and drain.
  double achieved_rate = 0.0;
  /// Steady-state throughput excluding fill/drain: (frames - 1) / (last
  /// completion slot - first completion slot). 0 with fewer than 2 frames.
  double steady_rate = 0.0;
  /// Latency of frame k = (slot after which the sink holds the complete
  /// aggregate) - (generation slot of k).
  double mean_latency = 0.0;
  std::size_t max_latency = 0;
  /// Peak number of frames simultaneously buffered at any single node; a
  /// schedule sustains the offered rate iff this stays bounded as frames
  /// grow (Sec 1: "a higher rate ... would lead to buffers overflowing").
  std::size_t max_buffer = 0;
  /// True iff every completed frame's aggregate equalled the ground truth
  /// (sum aggregation over per-node integer measurements).
  bool aggregates_correct = true;
  std::vector<std::size_t> latencies;
};

/// Simulates pipelined sum-aggregation of `config.num_frames` frames over the
/// tree, firing the periodic schedule slot by slot:
///  - every node holds partial aggregates per frame;
///  - when a node's upward link is scheduled and its oldest unsent frame is
///    complete (own measurement generated, all children contributions
///    received), it transmits that frame's aggregate to its parent;
///  - the sink completes a frame when all of its children contributions have
///    arrived.
/// Throws std::invalid_argument on malformed inputs (empty schedule, links
/// not matching the tree, zero period).
[[nodiscard]] SimulationReport simulate_aggregation(
    const mst::AggregationTree& tree, const Schedule& schedule,
    const SimulationConfig& config);

}  // namespace wagg::schedule

#endif  // WAGG_SCHEDULE_SIMULATOR_H
