#include "schedule/latency.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace wagg::schedule {

namespace {

void check_links(const mst::AggregationTree& tree, const Schedule& schedule) {
  for (const auto& slot : schedule.slots) {
    for (const std::size_t link : slot) {
      if (link >= tree.links.size()) {
        throw std::invalid_argument(
            "slot ordering: slot references unknown link");
      }
    }
  }
}

/// W[a][b] = number of tree edges whose child link sits in slot a and whose
/// parent link sits in slot b (a != b).
std::vector<std::vector<double>> transition_weights(
    const mst::AggregationTree& tree, const Schedule& schedule) {
  const std::size_t L = schedule.length();
  // Slot of each link (first occurrence; multicolor links use their first).
  std::vector<std::ptrdiff_t> slot_of(tree.links.size(), -1);
  for (std::size_t s = 0; s < L; ++s) {
    for (const std::size_t link : schedule.slots[s]) {
      if (slot_of[link] < 0) slot_of[link] = static_cast<std::ptrdiff_t>(s);
    }
  }
  std::vector<std::vector<double>> w(L, std::vector<double>(L, 0.0));
  for (std::size_t child_link = 0; child_link < tree.links.size();
       ++child_link) {
    const auto parent_node =
        static_cast<std::size_t>(tree.links.link(child_link).receiver);
    const auto parent_link_idx = tree.link_of_node[parent_node];
    if (parent_link_idx < 0) continue;  // parent is the sink
    const auto a = slot_of[child_link];
    const auto b = slot_of[static_cast<std::size_t>(parent_link_idx)];
    if (a < 0 || b < 0 || a == b) continue;
    w[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] += 1.0;
  }
  return w;
}

double cost_of_order(const std::vector<std::vector<double>>& w,
                     const std::vector<std::size_t>& order) {
  const std::size_t L = order.size();
  std::vector<std::size_t> pos(L);
  for (std::size_t p = 0; p < L; ++p) pos[order[p]] = p;
  double cost = 0.0;
  for (std::size_t a = 0; a < L; ++a) {
    for (std::size_t b = 0; b < L; ++b) {
      if (w[a][b] == 0.0) continue;
      const std::size_t gap = (pos[b] + L - pos[a]) % L;
      cost += w[a][b] * static_cast<double>(gap == 0 ? L : gap);
    }
  }
  return cost;
}

}  // namespace

double mean_sender_depth(const mst::AggregationTree& tree,
                         const std::vector<std::size_t>& slot) {
  if (slot.empty()) return 0.0;
  double sum = 0.0;
  for (const std::size_t link : slot) {
    const auto sender =
        static_cast<std::size_t>(tree.links.link(link).sender);
    sum += static_cast<double>(tree.depth[sender]);
  }
  return sum / static_cast<double>(slot.size());
}

double slot_order_cost(const mst::AggregationTree& tree,
                       const Schedule& schedule) {
  check_links(tree, schedule);
  if (schedule.empty()) return 0.0;
  const auto w = transition_weights(tree, schedule);
  std::vector<std::size_t> identity(schedule.length());
  std::iota(identity.begin(), identity.end(), std::size_t{0});
  return cost_of_order(w, identity);
}

Schedule optimize_slot_order(const mst::AggregationTree& tree,
                             const Schedule& schedule) {
  check_links(tree, schedule);
  const std::size_t L = schedule.length();
  if (L <= 2) return schedule;
  const auto w = transition_weights(tree, schedule);

  // Seed: non-increasing mean sender depth (deep slots early).
  std::vector<std::size_t> order(L);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return mean_sender_depth(tree, schedule.slots[a]) >
                            mean_sender_depth(tree, schedule.slots[b]);
                   });

  // Deterministic hill-climbing over pairwise swaps.
  double best = cost_of_order(w, order);
  bool improved = true;
  int rounds = 0;
  while (improved && rounds++ < 64) {
    improved = false;
    for (std::size_t i = 0; i < L; ++i) {
      for (std::size_t j = i + 1; j < L; ++j) {
        std::swap(order[i], order[j]);
        const double cost = cost_of_order(w, order);
        if (cost + 1e-12 < best) {
          best = cost;
          improved = true;
        } else {
          std::swap(order[i], order[j]);
        }
      }
    }
  }

  Schedule reordered;
  reordered.slots.reserve(L);
  for (const std::size_t s : order) reordered.slots.push_back(schedule.slots[s]);
  return reordered;
}

}  // namespace wagg::schedule
