#include "schedule/simulator.h"

#include <algorithm>
#include <stdexcept>

namespace wagg::schedule {

namespace {

/// Deterministic per-(node, frame) measurement value; values are small enough
/// that int64 sums over any tree are exact.
std::int64_t measurement(std::size_t node, std::size_t frame) {
  return static_cast<std::int64_t>(node + 1) * 1009 +
         static_cast<std::int64_t>(frame % 997);
}

}  // namespace

SimulationReport simulate_aggregation(const mst::AggregationTree& tree,
                                      const Schedule& schedule,
                                      const SimulationConfig& config) {
  const std::size_t n = tree.num_nodes();
  const std::size_t num_links = tree.links.size();
  if (schedule.empty()) {
    throw std::invalid_argument("simulate_aggregation: empty schedule");
  }
  if (config.generation_period == 0) {
    throw std::invalid_argument("simulate_aggregation: period must be >= 1");
  }
  if (config.num_frames == 0) {
    throw std::invalid_argument("simulate_aggregation: need >= 1 frame");
  }
  for (const auto& slot : schedule.slots) {
    for (std::size_t link : slot) {
      if (link >= num_links) {
        throw std::invalid_argument(
            "simulate_aggregation: slot references unknown link");
      }
    }
  }

  const std::size_t frames = config.num_frames;
  const std::size_t period = config.generation_period;
  const auto sink = static_cast<std::size_t>(tree.sink);

  std::size_t max_slots = config.max_slots;
  if (max_slots == 0) {
    // Enough for the offered load plus a generous drain allowance.
    max_slots = period * frames +
                schedule.length() *
                    (static_cast<std::size_t>(tree.height()) + 2) *
                    (num_links + 2) +
                64;
  }

  // Per (node, frame) state, row-major node * frames + k.
  std::vector<std::int32_t> received(n * frames, 0);
  std::vector<std::int64_t> partial(n * frames, 0);
  std::vector<std::uint8_t> has_data(n * frames, 0);
  std::vector<std::size_t> next_to_send(n, 0);  // per node: oldest unsent frame
  std::vector<std::size_t> buffer(n, 0);
  std::vector<std::int32_t> need(n);  // children contributions required
  for (std::size_t v = 0; v < n; ++v) {
    need[v] = static_cast<std::int32_t>(tree.children[v].size());
  }

  auto idx = [frames](std::size_t v, std::size_t k) { return v * frames + k; };

  auto own_available = [&](std::size_t v, std::size_t k, std::size_t t) {
    if (v == sink && !config.sink_generates) return true;
    return t >= period * k;
  };

  auto is_complete = [&](std::size_t v, std::size_t k, std::size_t t) {
    return received[idx(v, k)] == need[v] && own_available(v, k, t);
  };

  auto own_value = [&](std::size_t v, std::size_t k) -> std::int64_t {
    if (v == sink && !config.sink_generates) return 0;
    return measurement(v, k);
  };

  SimulationReport report;
  report.latencies.reserve(frames);
  std::size_t next_generation = 0;  // next frame index to generate
  std::size_t completed = 0;
  std::vector<std::size_t> sink_completion(frames, 0);

  struct Arrival {
    std::size_t node;
    std::size_t frame;
    std::int64_t value;
  };
  std::vector<Arrival> arrivals;

  std::size_t t = 0;
  for (; t < max_slots && completed < frames; ++t) {
    // Frame generation events at the start of the slot.
    while (next_generation < frames && period * next_generation <= t) {
      const std::size_t k = next_generation;
      for (std::size_t v = 0; v < n; ++v) {
        if (v == sink && !config.sink_generates) continue;
        if (!has_data[idx(v, k)]) {
          has_data[idx(v, k)] = 1;
          ++buffer[v];
        }
      }
      ++next_generation;
    }
    // Peak buffers are attained at the start of a slot, after generation and
    // before the slot's transmissions remove frames (Fig 1: node d holding
    // b1+d1 and d2 at the start of slot 3).
    for (std::size_t v = 0; v < n; ++v) {
      report.max_buffer = std::max(report.max_buffer, buffer[v]);
    }

    // Transmissions of the current slot, based on start-of-slot state.
    arrivals.clear();
    for (const std::size_t link : schedule.slots[t % schedule.length()]) {
      const auto sender =
          static_cast<std::size_t>(tree.links.link(link).sender);
      const auto parent =
          static_cast<std::size_t>(tree.links.link(link).receiver);
      const std::size_t k = next_to_send[sender];
      if (k >= frames || !is_complete(sender, k, t)) continue;
      arrivals.push_back(
          {parent, k, partial[idx(sender, k)] + own_value(sender, k)});
      ++next_to_send[sender];
      --buffer[sender];
    }
    // Deliveries take effect at the end of the slot.
    for (const Arrival& a : arrivals) {
      const std::size_t id = idx(a.node, a.frame);
      if (!has_data[id]) {
        has_data[id] = 1;
        ++buffer[a.node];
      }
      partial[id] += a.value;
      ++received[id];
      if (a.node == sink && received[id] == need[sink]) {
        // Frame complete at the sink (its own measurement, if any, is
        // available no later than the last child contribution arrives,
        // because children cannot complete frame k before slot period*k).
        const std::size_t completion_time = t + 1;
        sink_completion[a.frame] = completion_time;
        const std::size_t generated_at = period * a.frame;
        const std::size_t latency = completion_time - generated_at;
        report.latencies.push_back(latency);
        report.max_latency = std::max(report.max_latency, latency);
        const std::int64_t expected = [&] {
          std::int64_t total = 0;
          for (std::size_t v = 0; v < n; ++v) {
            if (v == sink && !config.sink_generates) continue;
            total += measurement(v, a.frame);
          }
          return total;
        }();
        if (partial[id] + own_value(sink, a.frame) != expected) {
          report.aggregates_correct = false;
        }
        ++completed;
        --buffer[sink];
      }
    }
    // Peak buffer after all events of the slot.
    for (std::size_t v = 0; v < n; ++v) {
      report.max_buffer = std::max(report.max_buffer, buffer[v]);
    }
  }

  report.frames_completed = completed;
  report.slots_elapsed = t;
  report.all_frames_completed = completed == frames;
  report.achieved_rate =
      t == 0 ? 0.0
             : static_cast<double>(completed) / static_cast<double>(t);
  if (completed >= 2) {
    // First/last completed frames are 0 and completed-1: sinks complete
    // frames in generation order.
    const std::size_t first = sink_completion[0];
    const std::size_t last = sink_completion[completed - 1];
    if (last > first) {
      report.steady_rate =
          static_cast<double>(completed - 1) / static_cast<double>(last - first);
    }
  }
  if (!report.latencies.empty()) {
    double sum = 0.0;
    for (std::size_t l : report.latencies) sum += static_cast<double>(l);
    report.mean_latency = sum / static_cast<double>(report.latencies.size());
  }
  return report;
}

}  // namespace wagg::schedule
