#include "schedule/repair.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sinr/feasibility.h"

namespace wagg::schedule {

std::vector<std::size_t> pack_order(const geom::LinkView& links,
                                    std::span<const std::size_t> members) {
  std::vector<std::size_t> ordered(members.begin(), members.end());
  std::stable_sort(ordered.begin(), ordered.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (links.length(a) != links.length(b)) {
                       return links.length(a) > links.length(b);
                     }
                     return a < b;
                   });
  return ordered;
}

RepairResult repair_schedule(const geom::LinkView& links,
                             const Schedule& schedule,
                             const FeasibilityOracle& oracle) {
  RepairResult result;
  result.length_before = schedule.length();
  for (const auto& slot : schedule.slots) {
    if (oracle(slot)) {
      result.schedule.slots.push_back(slot);
      continue;
    }
    ++result.slots_split;
    // Re-pack first-fit in non-increasing length order (longest links are
    // the hardest to place; packing them first keeps sub-slot counts low).
    const auto ordered = pack_order(links, slot);
    std::vector<std::vector<std::size_t>> sub_slots;
    std::vector<std::size_t> trial;
    for (std::size_t link : ordered) {
      bool placed = false;
      for (auto& sub : sub_slots) {
        trial = sub;
        trial.push_back(link);
        if (oracle(trial)) {
          sub.push_back(link);
          placed = true;
          break;
        }
      }
      if (!placed) {
        trial = {link};
        if (!oracle(trial)) {
          throw std::runtime_error(
              "repair_schedule: singleton slot infeasible; instance is not "
              "interference-limited under this oracle");
        }
        sub_slots.push_back(std::move(trial));
      }
    }
    for (auto& sub : sub_slots) {
      result.schedule.slots.push_back(std::move(sub));
    }
  }
  result.length_after = result.schedule.length();
  return result;
}

PatchResult patch_slot(const geom::LinkView& links,
                       std::vector<std::vector<std::size_t>> kept,
                       std::span<const std::size_t> loose,
                       const FeasibilityOracle& oracle,
                       bool kept_certified) {
  PatchResult result;
  result.sub_slots = std::move(kept);
  // Drop sub-slots emptied by deletions.
  std::erase_if(result.sub_slots,
                [](const std::vector<std::size_t>& sub) { return sub.empty(); });
  if (!kept_certified && result.sub_slots.size() > 1) {
    throw std::invalid_argument(
        "patch_slot: uncertified kept must be a single sub-slot");
  }

  // Longest-first, matching repair_schedule's packing order.
  std::vector<std::size_t> ordered = pack_order(links, loose);

  std::vector<std::size_t> trial;
  // Optimistic fast path: at low churn the whole class usually still fits
  // in one slot, so one oracle call on (kept + loose) replaces |loose|
  // incremental checks — and certifies the merged membership outright,
  // uncertified kept included. Costs a single extra call when it misses.
  if (result.sub_slots.size() <= 1 &&
      (ordered.size() > 1 || (!kept_certified && !ordered.empty()))) {
    trial = result.sub_slots.empty() ? std::vector<std::size_t>{}
                                     : result.sub_slots.front();
    trial.insert(trial.end(), ordered.begin(), ordered.end());
    ++result.oracle_calls;
    if (oracle(trial)) {
      if (result.sub_slots.empty()) {
        ++result.slots_opened;
        result.sub_slots.push_back(std::move(trial));
      } else {
        result.sub_slots.front() = std::move(trial);
      }
      return result;
    }
  }

  // Before any insertion trusts an uncertified kept sub-slot, re-check it
  // once; a rejected kept (the oracle's bound is conservative, not
  // monotone) is demoted into the loose set and repacked.
  if (!kept_certified && !result.sub_slots.empty()) {
    ++result.oracle_calls;
    if (!oracle(result.sub_slots.front())) {
      ordered.insert(ordered.end(), result.sub_slots.front().begin(),
                     result.sub_slots.front().end());
      result.sub_slots.clear();
      ordered = pack_order(links, ordered);
    }
  }
  for (const std::size_t link : ordered) {
    bool placed = false;
    for (auto& sub : result.sub_slots) {
      trial = sub;
      trial.push_back(link);
      ++result.oracle_calls;
      if (oracle(trial)) {
        sub.push_back(link);
        placed = true;
        break;
      }
    }
    if (!placed) {
      trial = {link};
      ++result.oracle_calls;
      if (!oracle(trial)) {
        throw std::runtime_error(
            "patch_slot: singleton slot infeasible; instance is not "
            "interference-limited under this oracle");
      }
      result.sub_slots.push_back(std::move(trial));
      ++result.slots_opened;
    }
  }
  return result;
}

namespace {

/// Incremental first-fit packer for a fixed power assignment: keeps the
/// running SINR load of every placed link so that each placement attempt
/// costs O(|sub-slot|).
class FixedPowerPacker {
 public:
  FixedPowerPacker(const geom::LinkView& links, const sinr::SinrParams& params,
                   const sinr::PowerAssignment& power, double tolerance)
      : links_(links), params_(params), power_(power), tolerance_(tolerance) {
    log2_len_.reserve(links.size());
    for (std::size_t i = 0; i < links.size(); ++i) {
      log2_len_.push_back(std::log2(links.length(i)));
    }
  }

  /// beta * I_P(j, i), saturating instead of overflowing.
  [[nodiscard]] double load_term(std::size_t j, std::size_t i) const {
    const double d = links_.sinr_distance(j, i);
    if (d <= 0.0) return 1e30;
    const double lg = std::log2(params_.beta) + power_.log2_power(j) -
                      power_.log2_power(i) +
                      params_.alpha * (log2_len_[i] - std::log2(d));
    if (lg >= 100.0) return 1e30;
    if (lg <= -1074.0) return 0.0;
    return std::exp2(lg);
  }

  /// beta * noise * l_i^alpha / P_i.
  [[nodiscard]] double noise_load(std::size_t i) const {
    if (params_.noise <= 0.0) return 0.0;
    const double lg = std::log2(params_.beta) + std::log2(params_.noise) +
                      params_.alpha * log2_len_[i] - power_.log2_power(i);
    return lg >= 100.0 ? 1e30 : std::exp2(lg);
  }

  /// Greedily packs `ordered` into feasible sub-slots.
  /// Throws std::runtime_error if a singleton is infeasible.
  [[nodiscard]] std::vector<std::vector<std::size_t>> pack(
      std::span<const std::size_t> ordered) const {
    std::vector<std::vector<std::size_t>> slots;
    std::vector<std::vector<double>> loads;  // per slot, aligned with members
    std::vector<double> incoming;
    for (const std::size_t x : ordered) {
      const double own = noise_load(x);
      if (own > 1.0 + tolerance_) {
        throw std::runtime_error(
            "repair_schedule_fixed_power: singleton slot infeasible; "
            "instance is not interference-limited under this power");
      }
      bool placed = false;
      for (std::size_t s = 0; s < slots.size() && !placed; ++s) {
        auto& members = slots[s];
        auto& member_loads = loads[s];
        incoming.assign(1, own);
        bool ok = true;
        double new_load = own;
        for (std::size_t a = 0; a < members.size() && ok; ++a) {
          const std::size_t i = members[a];
          if (links_.shares_node(x, i)) {
            ok = false;
            break;
          }
          const double inc = load_term(x, i);
          if (member_loads[a] + inc > 1.0 + tolerance_) ok = false;
          new_load += load_term(i, x);
          if (new_load > 1.0 + tolerance_) ok = false;
          incoming.push_back(inc);
        }
        if (!ok) continue;
        for (std::size_t a = 0; a < members.size(); ++a) {
          member_loads[a] += incoming[a + 1];
        }
        members.push_back(x);
        member_loads.push_back(new_load);
        placed = true;
      }
      if (!placed) {
        slots.push_back({x});
        loads.push_back({own});
      }
    }
    return slots;
  }

 private:
  const geom::LinkView& links_;
  sinr::SinrParams params_;
  const sinr::PowerAssignment& power_;
  double tolerance_;
  std::vector<double> log2_len_;
};

}  // namespace

RepairResult repair_schedule_fixed_power(const geom::LinkView& links,
                                         const Schedule& schedule,
                                         const sinr::SinrParams& params,
                                         const sinr::PowerAssignment& power,
                                         double tolerance) {
  params.validate();
  RepairResult result;
  result.length_before = schedule.length();
  const FixedPowerPacker packer(links, params, power, tolerance);
  for (const auto& slot : schedule.slots) {
    if (sinr::is_feasible(links, slot, params, power, tolerance)) {
      result.schedule.slots.push_back(slot);
      continue;
    }
    ++result.slots_split;
    const auto ordered = pack_order(links, slot);
    for (auto& sub : packer.pack(ordered)) {
      result.schedule.slots.push_back(std::move(sub));
    }
  }
  result.length_after = result.schedule.length();
  return result;
}

}  // namespace wagg::schedule
