#ifndef WAGG_SCHEDULE_SCHEDULE_H
#define WAGG_SCHEDULE_SCHEDULE_H

#include <cstddef>
#include <vector>

#include "coloring/coloring.h"
#include "geom/linkset.h"

namespace wagg::schedule {

/// A periodic TDMA schedule: slot s transmits the links in slots[s]; the
/// sequence repeats forever. A *coloring schedule* (partition of the link
/// set) schedules every link once per period, giving rate 1/length; a
/// *multicoloring* schedule may repeat links within the period (Sec 4's
/// 5-cycle example achieves rate 2/5 that way).
struct Schedule {
  std::vector<std::vector<std::size_t>> slots;

  [[nodiscard]] std::size_t length() const noexcept { return slots.size(); }
  [[nodiscard]] bool empty() const noexcept { return slots.empty(); }

  /// Rate of a coloring schedule: 1 / length. Requires non-empty.
  [[nodiscard]] double coloring_rate() const;

  /// Number of link transmissions per period.
  [[nodiscard]] std::size_t total_transmissions() const noexcept;
};

/// Builds a coloring schedule from a vertex coloring of the conflict graph
/// whose vertices are the links 0..n-1.
[[nodiscard]] Schedule from_coloring(const coloring::Coloring& coloring);

/// True iff every link index in [0, num_links) appears in at least one slot.
[[nodiscard]] bool covers_all_links(const Schedule& schedule,
                                    std::size_t num_links);

/// True iff the slots form a partition of [0, num_links) (each link exactly
/// once) — the coloring-schedule property.
[[nodiscard]] bool is_partition(const Schedule& schedule,
                                std::size_t num_links);

/// The aggregation rate guaranteed by the periodic schedule: the minimum over
/// links of (appearances within the period) / period. 0 if some link never
/// appears. This is the paper's definition of rate restricted to periodic
/// schedules.
[[nodiscard]] double min_link_rate(const Schedule& schedule,
                                   std::size_t num_links);

}  // namespace wagg::schedule

#endif  // WAGG_SCHEDULE_SCHEDULE_H
