#include "schedule/packing.h"

#include "schedule/repair.h"

namespace wagg::schedule {

namespace {

Schedule everything_in_one_slot(const geom::LinkView& links) {
  Schedule all;
  all.slots.emplace_back();
  all.slots.front().reserve(links.size());
  for (std::size_t i = 0; i < links.size(); ++i) {
    all.slots.front().push_back(i);
  }
  return all;
}

}  // namespace

Schedule ffd_schedule(const geom::LinkView& links,
                      const FeasibilityOracle& oracle) {
  if (links.empty()) return Schedule{};
  // Repairing the one-slot schedule IS first-fit-decreasing: repair sorts
  // the slot by non-increasing length and first-fit packs it.
  return repair_schedule(links, everything_in_one_slot(links), oracle)
      .schedule;
}

Schedule ffd_schedule_fixed_power(const geom::LinkView& links,
                                  const sinr::SinrParams& params,
                                  const sinr::PowerAssignment& power,
                                  double tolerance) {
  if (links.empty()) return Schedule{};
  return repair_schedule_fixed_power(links, everything_in_one_slot(links),
                                     params, power, tolerance)
      .schedule;
}

}  // namespace wagg::schedule
