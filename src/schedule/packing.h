#ifndef WAGG_SCHEDULE_PACKING_H
#define WAGG_SCHEDULE_PACKING_H

#include "geom/linkset.h"
#include "schedule/schedule.h"
#include "schedule/verify.h"
#include "sinr/model.h"
#include "sinr/power.h"

namespace wagg::schedule {

/// First-fit-decreasing schedule construction directly against a feasibility
/// oracle, with no conflict graph at all: links are processed in
/// non-increasing length order and each joins the first slot that stays
/// feasible with it. This is the natural greedy baseline in the spirit of
/// Kesselheim's capacity framework [16] — the paper's conflict-graph
/// colorings exist to beat/approximate it with local, graph-theoretic
/// decisions. Benchmarked against the planner in E9.
///
/// Throws std::runtime_error if some singleton is infeasible.
[[nodiscard]] Schedule ffd_schedule(const geom::LinkView& links,
                                    const FeasibilityOracle& oracle);

/// Fixed-power FFD using the incremental packer (O(n * slots * slot size)).
[[nodiscard]] Schedule ffd_schedule_fixed_power(
    const geom::LinkView& links, const sinr::SinrParams& params,
    const sinr::PowerAssignment& power, double tolerance = 1e-9);

}  // namespace wagg::schedule

#endif  // WAGG_SCHEDULE_PACKING_H
