#include "schedule/multicolor.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.h"

namespace wagg::schedule {

MulticolorResult improve_rate_by_multicoloring(
    const geom::LinkView& links, const Schedule& baseline,
    const FeasibilityOracle& oracle, const MulticolorOptions& options) {
  if (!is_partition(baseline, links.size())) {
    throw std::invalid_argument(
        "improve_rate_by_multicoloring: baseline is not a coloring schedule");
  }
  if (options.period_stretch < 1.0 || options.restarts_per_period < 1) {
    throw std::invalid_argument(
        "improve_rate_by_multicoloring: bad search options");
  }
  MulticolorResult best;
  best.schedule = baseline;
  best.baseline_rate = baseline.empty() ? 0.0 : baseline.coloring_rate();
  best.rate = best.baseline_rate;
  if (links.empty() || baseline.empty()) return best;

  util::Rng rng(options.seed);
  const std::size_t base_len = baseline.length();
  const auto max_period = static_cast<std::size_t>(
      std::ceil(options.period_stretch * static_cast<double>(base_len)));
  std::vector<std::size_t> order(links.size());
  std::vector<int> count(links.size());
  std::vector<double> jitter(links.size());
  std::vector<std::size_t> trial;

  for (std::size_t period = base_len + 1; period <= max_period; ++period) {
    for (int restart = 0; restart < options.restarts_per_period; ++restart) {
      std::fill(count.begin(), count.end(), 0);
      for (auto& j : jitter) j = rng.uniform();
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      Schedule candidate;
      candidate.slots.resize(period);
      for (std::size_t s = 0; s < period; ++s) {
        // Least-covered links first; random jitter breaks ties differently
        // per restart, longer links first among equals.
        for (auto& j : jitter) j = rng.uniform();
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                    if (count[a] != count[b]) return count[a] < count[b];
                    return jitter[a] < jitter[b];
                  });
        auto& slot = candidate.slots[s];
        for (const std::size_t link : order) {
          trial = slot;
          trial.push_back(link);
          if (oracle(trial)) {
            slot.push_back(link);
            ++count[link];
          }
        }
      }
      const double rate = min_link_rate(candidate, links.size());
      if (rate > best.rate + 1e-12) {
        best.rate = rate;
        best.schedule = std::move(candidate);
      }
    }
  }
  return best;
}

}  // namespace wagg::schedule
