#ifndef WAGG_SCHEDULE_LATENCY_H
#define WAGG_SCHEDULE_LATENCY_H

#include "mst/tree.h"
#include "schedule/schedule.h"

namespace wagg::schedule {

/// Latency-aware slot ordering (the paper optimizes rate only; this is the
/// natural companion optimization for its pipelined schedules).
///
/// A frame that hops over link l and then over l's parent link pl waits
/// ((pos(slot(pl)) - pos(slot(l))) mod L) slots between the two hops, so the
/// end-to-end latency is the sum of those circular gaps along the root-leaf
/// path (plus the initial wait). Reordering slots changes the gaps but not
/// the slots themselves — rate and feasibility are untouched.
///
/// slot_order_cost sums the circular gaps over ALL tree edges (a proxy for
/// the path sums); optimize_slot_order minimizes it by deterministic
/// hill-climbing (pairwise swaps) from a mean-sender-depth seed. On chains
/// this recovers the one-hop-per-slot order, cutting worst-case latency from
/// ~2n to ~n at identical rate (see E1b and extensions tests).
[[nodiscard]] Schedule optimize_slot_order(const mst::AggregationTree& tree,
                                           const Schedule& schedule);

/// Sum over tree edges (child link, parent link) of the circular slot-position
/// gap of the given schedule. Lower is better; >= #edges with both links
/// scheduled. Links absent from the schedule are skipped.
[[nodiscard]] double slot_order_cost(const mst::AggregationTree& tree,
                                     const Schedule& schedule);

/// Mean depth of the sender nodes of a slot's links (0 for an empty slot);
/// the seed heuristic and a useful diagnostic on its own.
[[nodiscard]] double mean_sender_depth(const mst::AggregationTree& tree,
                                       const std::vector<std::size_t>& slot);

}  // namespace wagg::schedule

#endif  // WAGG_SCHEDULE_LATENCY_H
