#ifndef WAGG_SCHEDULE_REPAIR_H
#define WAGG_SCHEDULE_REPAIR_H

#include "geom/linkset.h"
#include "schedule/schedule.h"
#include "schedule/verify.h"

namespace wagg::schedule {

/// Outcome of the feasibility-repair pass.
struct RepairResult {
  Schedule schedule;
  /// Number of input slots that had to be split.
  std::size_t slots_split = 0;
  /// Schedule length before / after.
  std::size_t length_before = 0;
  std::size_t length_after = 0;
};

/// Makes a schedule exactly SINR-feasible: every slot that fails the oracle
/// is re-packed first-fit (links in non-increasing length order, each link
/// joins the first sub-slot that remains feasible with it, else opens a new
/// sub-slot).
///
/// Why this exists: the paper's guarantees hold for "large enough" conflict
/// graph constants gamma; for any concrete gamma a color class can violate
/// the SINR inequalities. Repair restores soundness — every slot of the
/// output passes the oracle — at the cost of a bounded length increase that
/// the benchmarks measure (E3/E9 "repair" columns).
///
/// Precondition: every singleton {link} must satisfy the oracle (true for
/// all oracles in this library on interference-limited instances); otherwise
/// std::runtime_error is thrown.
[[nodiscard]] RepairResult repair_schedule(const geom::LinkSet& links,
                                           const Schedule& schedule,
                                           const FeasibilityOracle& oracle);

/// Same contract as repair_schedule, specialized for a fixed power
/// assignment: sub-slot feasibility is maintained incrementally (running
/// per-link interference loads), making each placement attempt O(|sub-slot|)
/// instead of O(|sub-slot|^2). Large uniform-power instances repair orders
/// of magnitude faster; output slots pass the exact fixed-power check with
/// the same tolerance.
[[nodiscard]] RepairResult repair_schedule_fixed_power(
    const geom::LinkSet& links, const Schedule& schedule,
    const sinr::SinrParams& params, const sinr::PowerAssignment& power,
    double tolerance = 1e-9);

}  // namespace wagg::schedule

#endif  // WAGG_SCHEDULE_REPAIR_H
