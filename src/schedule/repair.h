#ifndef WAGG_SCHEDULE_REPAIR_H
#define WAGG_SCHEDULE_REPAIR_H

#include "geom/linkset.h"
#include "schedule/schedule.h"
#include "schedule/verify.h"

namespace wagg::schedule {

/// Outcome of the feasibility-repair pass.
struct RepairResult {
  Schedule schedule;
  /// Number of input slots that had to be split.
  std::size_t slots_split = 0;
  /// Schedule length before / after.
  std::size_t length_before = 0;
  std::size_t length_after = 0;
};

/// Makes a schedule exactly SINR-feasible: every slot that fails the oracle
/// is re-packed first-fit (links in non-increasing length order, each link
/// joins the first sub-slot that remains feasible with it, else opens a new
/// sub-slot).
///
/// Why this exists: the paper's guarantees hold for "large enough" conflict
/// graph constants gamma; for any concrete gamma a color class can violate
/// the SINR inequalities. Repair restores soundness — every slot of the
/// output passes the oracle — at the cost of a bounded length increase that
/// the benchmarks measure (E3/E9 "repair" columns).
///
/// Precondition: every singleton {link} must satisfy the oracle (true for
/// all oracles in this library on interference-limited instances); otherwise
/// std::runtime_error is thrown.
[[nodiscard]] RepairResult repair_schedule(const geom::LinkView& links,
                                           const Schedule& schedule,
                                           const FeasibilityOracle& oracle);

/// The canonical repair packing order: members sorted longest link first,
/// ties by link index. Shared by repair_schedule, patch_slot, and the
/// dynamic planner so the packing order cannot drift between them.
[[nodiscard]] std::vector<std::size_t> pack_order(
    const geom::LinkView& links, std::span<const std::size_t> members);

/// Outcome of a patch-level (single color class) repair.
struct PatchResult {
  /// Feasible sub-slots covering kept + loose exactly once each.
  std::vector<std::vector<std::size_t>> sub_slots;
  /// Oracle invocations performed (the cost driver of repair).
  std::size_t oracle_calls = 0;
  /// Sub-slots that were opened fresh (not reused from `kept`).
  std::size_t slots_opened = 0;
};

/// Patch-level repair: the incremental counterpart of repair_schedule for
/// ONE slot whose membership changed. `kept` is a partition of the slot's
/// surviving links into sub-slots the caller can certify feasible under
/// THIS oracle — in practice, sub-slots whose exact membership the oracle
/// accepted before (oracles are deterministic, so the certificate carries;
/// do NOT rely on feasibility being monotone under member departure — the
/// power-control oracle's iterative bound is conservative and need not be).
/// `loose` are the changed/new links; each is first-fit inserted into the
/// first sub-slot the oracle accepts it into, else opens a new sub-slot.
/// Only insertions are oracle-checked, so the cost is proportional to
/// |loose|, not the slot.
///
/// When the caller cannot certify `kept` (e.g. members departed since the
/// oracle last accepted it), pass kept_certified = false: the fast path
/// still tries the whole class first (success certifies everything), and
/// otherwise kept is re-checked once — demoted into the loose set if the
/// oracle rejects it — before any insertion trusts it. Requires kept to
/// hold at most one sub-slot in that case.
///
/// Preconditions: kept/loose are disjoint and duplicate-free; every
/// singleton must satisfy the oracle (std::runtime_error otherwise, as in
/// repair_schedule). Certified kept sub-slots are NOT re-verified.
[[nodiscard]] PatchResult patch_slot(const geom::LinkView& links,
                                     std::vector<std::vector<std::size_t>> kept,
                                     std::span<const std::size_t> loose,
                                     const FeasibilityOracle& oracle,
                                     bool kept_certified = true);

/// Same contract as repair_schedule, specialized for a fixed power
/// assignment: sub-slot feasibility is maintained incrementally (running
/// per-link interference loads), making each placement attempt O(|sub-slot|)
/// instead of O(|sub-slot|^2). Large uniform-power instances repair orders
/// of magnitude faster; output slots pass the exact fixed-power check with
/// the same tolerance.
[[nodiscard]] RepairResult repair_schedule_fixed_power(
    const geom::LinkView& links, const Schedule& schedule,
    const sinr::SinrParams& params, const sinr::PowerAssignment& power,
    double tolerance = 1e-9);

}  // namespace wagg::schedule

#endif  // WAGG_SCHEDULE_REPAIR_H
