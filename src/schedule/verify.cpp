#include "schedule/verify.h"

namespace wagg::schedule {

FeasibilityOracle fixed_power_oracle(const geom::LinkView& links,
                                     const sinr::SinrParams& params,
                                     sinr::PowerAssignment power,
                                     double tolerance) {
  return [&links, params, power = std::move(power),
          tolerance](std::span<const std::size_t> slot) {
    return sinr::is_feasible(links, slot, params, power, tolerance);
  };
}

FeasibilityOracle power_control_oracle(const geom::LinkView& links,
                                       const sinr::SinrParams& params,
                                       sinr::PowerControlOptions options) {
  return [&links, params, options](std::span<const std::size_t> slot) {
    return sinr::power_control_feasible(links, slot, params, options).feasible;
  };
}

VerificationReport verify_schedule(const geom::LinkView& links,
                                   const Schedule& schedule,
                                   const FeasibilityOracle& oracle) {
  VerificationReport report;
  report.all_slots_feasible = true;
  for (std::size_t s = 0; s < schedule.slots.size(); ++s) {
    if (!oracle(schedule.slots[s])) {
      report.all_slots_feasible = false;
      report.infeasible_slots.push_back(s);
    }
  }
  report.covers_all_links = covers_all_links(schedule, links.size());
  return report;
}

}  // namespace wagg::schedule
