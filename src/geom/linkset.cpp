#include "geom/linkset.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wagg::geom {

LinkSet::LinkSet(Pointset points, std::vector<Link> links)
    : points_(std::move(points)), links_(std::move(links)) {
  lengths_.reserve(links_.size());
  const auto n = static_cast<std::int32_t>(points_.size());
  for (const Link& link : links_) {
    if (link.sender < 0 || link.sender >= n || link.receiver < 0 ||
        link.receiver >= n) {
      throw std::invalid_argument("LinkSet: link endpoint out of range");
    }
    if (link.sender == link.receiver) {
      throw std::invalid_argument("LinkSet: self-loop link");
    }
    const double len =
        distance(points_[static_cast<std::size_t>(link.sender)],
                 points_[static_cast<std::size_t>(link.receiver)]);
    if (len <= 0.0) {
      throw std::invalid_argument("LinkSet: zero-length link");
    }
    lengths_.push_back(len);
  }
}

double LinkSet::link_distance(std::size_t i, std::size_t j) const {
  if (shares_node(i, j)) return 0.0;
  const Point& si = sender_pos(i);
  const Point& ri = receiver_pos(i);
  const Point& sj = sender_pos(j);
  const Point& rj = receiver_pos(j);
  return std::min(std::min(distance(si, sj), distance(si, rj)),
                  std::min(distance(ri, sj), distance(ri, rj)));
}

double LinkSet::min_length() const {
  if (lengths_.empty()) throw std::logic_error("LinkSet::min_length: empty");
  return *std::min_element(lengths_.begin(), lengths_.end());
}

double LinkSet::max_length() const {
  if (lengths_.empty()) throw std::logic_error("LinkSet::max_length: empty");
  return *std::max_element(lengths_.begin(), lengths_.end());
}

double LinkSet::delta() const { return max_length() / min_length(); }

double LinkSet::log2_delta() const {
  return std::log2(max_length()) - std::log2(min_length());
}

bool LinkSet::shares_node(std::size_t i, std::size_t j) const noexcept {
  const Link& a = links_[i];
  const Link& b = links_[j];
  return a.sender == b.sender || a.sender == b.receiver ||
         a.receiver == b.sender || a.receiver == b.receiver;
}

LinkSet LinkSet::subset(std::span<const std::size_t> indices) const {
  std::vector<Link> sub;
  sub.reserve(indices.size());
  for (std::size_t idx : indices) sub.push_back(links_.at(idx));
  return LinkSet(points_, std::move(sub));
}

std::vector<std::size_t> LinkSet::by_decreasing_length() const {
  std::vector<std::size_t> order(links_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [this](std::size_t a, std::size_t b) {
                     if (lengths_[a] != lengths_[b]) {
                       return lengths_[a] > lengths_[b];
                     }
                     return a < b;
                   });
  return order;
}

std::vector<std::size_t> LinkSet::by_increasing_length() const {
  std::vector<std::size_t> order(links_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [this](std::size_t a, std::size_t b) {
                     if (lengths_[a] != lengths_[b]) {
                       return lengths_[a] < lengths_[b];
                     }
                     return a < b;
                   });
  return order;
}

}  // namespace wagg::geom
