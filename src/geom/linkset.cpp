#include "geom/linkset.h"

#include <stdexcept>

namespace wagg::geom {

LinkSet::LinkSet(Pointset points, std::vector<Link> links) {
  points_ = std::move(points);
  links_ = std::move(links);
  lengths_.reserve(links_.size());
  ids_.reserve(links_.size());
  const auto n = static_cast<std::int32_t>(points_.size());
  for (const Link& link : links_) {
    if (link.sender < 0 || link.sender >= n || link.receiver < 0 ||
        link.receiver >= n) {
      throw std::invalid_argument("LinkSet: link endpoint out of range");
    }
    if (link.sender == link.receiver) {
      throw std::invalid_argument("LinkSet: self-loop link");
    }
    const double len =
        distance(points_[static_cast<std::size_t>(link.sender)],
                 points_[static_cast<std::size_t>(link.receiver)]);
    if (len <= 0.0) {
      throw std::invalid_argument("LinkSet: zero-length link");
    }
    lengths_.push_back(len);
    ids_.push_back(static_cast<LinkId>(ids_.size()));
  }
}

}  // namespace wagg::geom
