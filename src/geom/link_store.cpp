#include "geom/link_store.h"

#include <stdexcept>
#include <string>

namespace wagg::geom {

std::size_t LinkStore::checked(LinkId id) const {
  if (!alive(id)) {
    throw std::invalid_argument("LinkStore: dead or unknown link id " +
                                std::to_string(id));
  }
  return static_cast<std::size_t>(id);
}

std::uint64_t LinkStore::pair_key(std::int32_t a, std::int32_t b) noexcept {
  const auto lo = static_cast<std::uint32_t>(a < b ? a : b);
  const auto hi = static_cast<std::uint32_t>(a < b ? b : a);
  return (static_cast<std::uint64_t>(hi) << 32) | lo;
}

LinkId LinkStore::add(std::int32_t sender, std::int32_t receiver,
                      double length) {
  if (sender == receiver) {
    throw std::invalid_argument("LinkStore: self-loop link");
  }
  if (!(length > 0.0)) {
    throw std::invalid_argument("LinkStore: length must be positive");
  }
  const auto [it, inserted] =
      pair_index_.try_emplace(pair_key(sender, receiver),
                              static_cast<LinkId>(alive_.size()));
  if (!inserted) {
    throw std::invalid_argument("LinkStore: pair already has a live link");
  }
  const LinkId id = static_cast<LinkId>(alive_.size());
  sender_.push_back(sender);
  receiver_.push_back(receiver);
  length_.push_back(length);
  ++clock_;
  endpoint_gen_.push_back(clock_);
  length_gen_.push_back(clock_);
  alive_.push_back(true);
  ++num_live_;
  if (listener_) listener_->on_add(id);
  return id;
}

void LinkStore::remove(LinkId id) {
  const auto slot = checked(id);
  pair_index_.erase(pair_key(sender_[slot], receiver_[slot]));
  alive_[slot] = false;
  --num_live_;
  ++clock_;
  if (listener_) listener_->on_remove(id);
}

void LinkStore::flip(LinkId id) {
  const auto slot = checked(id);
  std::swap(sender_[slot], receiver_[slot]);
  endpoint_gen_[slot] = ++clock_;
  if (listener_) listener_->on_flip(id);
}

void LinkStore::set_length(LinkId id, double length) {
  const auto slot = checked(id);
  if (!(length > 0.0)) {
    throw std::invalid_argument("LinkStore: length must be positive");
  }
  if (length_[slot] == length) return;  // clean sweep must not dirty links
  length_[slot] = length;
  length_gen_[slot] = ++clock_;
  if (listener_) listener_->on_set_length(id);
}

void LinkStore::touch(LinkId id) {
  const auto slot = checked(id);
  length_gen_[slot] = ++clock_;
  if (listener_) listener_->on_touch(id);
}

void LinkStore::clear() {
  // Ids stay retired: columns keep their slots so future adds continue the
  // id sequence and stale ids remain detectably dead.
  for (std::size_t slot = 0; slot < alive_.size(); ++slot) {
    if (!alive_[slot]) continue;
    alive_[slot] = false;
    if (listener_) listener_->on_remove(static_cast<LinkId>(slot));
  }
  pair_index_.clear();
  num_live_ = 0;
  ++clock_;
}

LinkId LinkStore::find_pair(std::int32_t a, std::int32_t b) const {
  const auto it = pair_index_.find(pair_key(a, b));
  return it == pair_index_.end() ? kNoLink : it->second;
}

std::vector<LinkId> LinkStore::live_ids() const {
  std::vector<LinkId> ids;
  ids.reserve(num_live_);
  for (std::size_t slot = 0; slot < alive_.size(); ++slot) {
    if (alive_[slot]) ids.push_back(static_cast<LinkId>(slot));
  }
  return ids;
}

LinkView LinkStore::snapshot(Pointset points,
                             std::span<const std::int32_t> node_index) const {
  std::vector<Link> links;
  std::vector<double> lengths;
  std::vector<LinkId> ids;
  links.reserve(num_live_);
  lengths.reserve(num_live_);
  ids.reserve(num_live_);
  const auto dense = [&](std::int32_t node) {
    const auto n = static_cast<std::size_t>(node);
    if (node < 0 || n >= node_index.size() || node_index[n] < 0) {
      throw std::invalid_argument(
          "LinkStore::snapshot: live link references an unmapped node");
    }
    return node_index[n];
  };
  for (std::size_t slot = 0; slot < alive_.size(); ++slot) {
    if (!alive_[slot]) continue;
    links.push_back(Link{dense(sender_[slot]), dense(receiver_[slot])});
    lengths.push_back(length_[slot]);
    ids.push_back(static_cast<LinkId>(slot));
  }
  return LinkView(std::move(points), std::move(links), std::move(lengths),
                  std::move(ids));
}

}  // namespace wagg::geom
