#ifndef WAGG_GEOM_POINT_H
#define WAGG_GEOM_POINT_H

#include <cmath>
#include <vector>

namespace wagg::geom {

/// A sensor node location on the Euclidean plane. Line instances (all of the
/// paper's lower-bound constructions) simply use y == 0.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point&, const Point&) = default;
};

/// The input to the aggregation problem: a finite set of node locations.
using Pointset = std::vector<Point>;

[[nodiscard]] inline double squared_distance(const Point& a,
                                             const Point& b) noexcept {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

[[nodiscard]] inline double distance(const Point& a, const Point& b) noexcept {
  return std::hypot(a.x - b.x, a.y - b.y);
}

/// Minimum pairwise distance over the pointset (the paper's d_min); used to
/// compute the length diversity Delta of a pointset. O(n^2).
/// Throws std::invalid_argument if fewer than two points.
[[nodiscard]] double min_pairwise_distance(const Pointset& points);

/// Maximum pairwise distance (the diameter). O(n^2).
/// Throws std::invalid_argument if fewer than two points.
[[nodiscard]] double diameter(const Pointset& points);

/// Builds a 1-D pointset (y == 0) from sorted or unsorted x coordinates.
[[nodiscard]] Pointset line_pointset(const std::vector<double>& xs);

}  // namespace wagg::geom

#endif  // WAGG_GEOM_POINT_H
