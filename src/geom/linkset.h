#ifndef WAGG_GEOM_LINKSET_H
#define WAGG_GEOM_LINKSET_H

#include <cstdint>
#include <span>
#include <vector>

#include "geom/point.h"

namespace wagg::geom {

/// A directed communication request from sender node to receiver node,
/// stored as indices into the owning LinkSet's pointset.
struct Link {
  std::int32_t sender = -1;
  std::int32_t receiver = -1;

  friend bool operator==(const Link&, const Link&) = default;
};

/// A set of links over a pointset — the unit every other module operates on
/// (SINR feasibility, conflict graphs, coloring, schedules). Owns both the
/// points and the links; link lengths are precomputed.
///
/// Notation follows the paper: for links i, j
///   l_i          = length(i)                (sender-to-receiver distance)
///   d_ji         = sinr_distance(j, i)      (sender of j to receiver of i)
///   d(i, j)      = link_distance(i, j)      (min over the 4 node pairs)
///   Delta        = delta()                  (max length / min length)
class LinkSet {
 public:
  LinkSet() = default;
  /// Throws std::invalid_argument on out-of-range indices, self-loops, or
  /// zero-length links.
  LinkSet(Pointset points, std::vector<Link> links);

  [[nodiscard]] std::size_t size() const noexcept { return links_.size(); }
  [[nodiscard]] bool empty() const noexcept { return links_.empty(); }
  [[nodiscard]] std::size_t num_points() const noexcept {
    return points_.size();
  }

  [[nodiscard]] const Pointset& points() const noexcept { return points_; }
  [[nodiscard]] std::span<const Link> links() const noexcept { return links_; }
  [[nodiscard]] const Link& link(std::size_t i) const { return links_.at(i); }

  [[nodiscard]] const Point& sender_pos(std::size_t i) const {
    return points_[static_cast<std::size_t>(links_[i].sender)];
  }
  [[nodiscard]] const Point& receiver_pos(std::size_t i) const {
    return points_[static_cast<std::size_t>(links_[i].receiver)];
  }

  /// l_i: the length of link i.
  [[nodiscard]] double length(std::size_t i) const { return lengths_[i]; }
  [[nodiscard]] std::span<const double> lengths() const noexcept {
    return lengths_;
  }

  /// d_ji = d(s_j, r_i): the SINR interference distance from link j's sender
  /// to link i's receiver. sinr_distance(i, i) == length(i).
  [[nodiscard]] double sinr_distance(std::size_t j, std::size_t i) const {
    return distance(sender_pos(j), receiver_pos(i));
  }

  /// d(i, j): minimum distance between the nodes of links i and j
  /// (0 if they share a node). This is the metric of the conflict graphs.
  [[nodiscard]] double link_distance(std::size_t i, std::size_t j) const;

  [[nodiscard]] double min_length() const;
  [[nodiscard]] double max_length() const;

  /// Delta = max link length / min link length. Throws if empty.
  [[nodiscard]] double delta() const;

  /// log2(Delta), computed without forming the ratio (survives instances
  /// whose Delta is representable only in log space via lengths; for lengths
  /// already stored as doubles this is exact enough).
  [[nodiscard]] double log2_delta() const;

  /// True if links i and j share an endpoint node (index equality).
  [[nodiscard]] bool shares_node(std::size_t i, std::size_t j) const noexcept;

  /// The sub-LinkSet induced by the given link indices (points are kept).
  [[nodiscard]] LinkSet subset(std::span<const std::size_t> indices) const;

  /// Indices 0..size()-1 sorted by non-increasing length; ties broken by
  /// link index so the order (and thus every schedule) is deterministic.
  [[nodiscard]] std::vector<std::size_t> by_decreasing_length() const;

  /// Indices sorted by non-decreasing length, same deterministic tie-break.
  [[nodiscard]] std::vector<std::size_t> by_increasing_length() const;

 private:
  Pointset points_;
  std::vector<Link> links_;
  std::vector<double> lengths_;
};

}  // namespace wagg::geom

#endif  // WAGG_GEOM_LINKSET_H
