#ifndef WAGG_GEOM_LINKSET_H
#define WAGG_GEOM_LINKSET_H

#include <span>
#include <vector>

#include "geom/link_view.h"
#include "geom/point.h"

namespace wagg::geom {

/// The owning link container of the static pipeline — a thin façade over
/// LinkView (which carries the whole read API consumers use).
///
/// Two ways in:
///   - the validating constructor (points + links) checks indices,
///     self-loops and zero lengths, computes the length column, and assigns
///     identity ids 0..n-1 — the historical LinkSet contract;
///   - the façade constructor adopts an already-consistent LinkView (e.g. a
///     geom::LinkStore snapshot) verbatim, with no validation and no length
///     recomputation — O(1).
class LinkSet : public LinkView {
 public:
  LinkSet() = default;

  /// Throws std::invalid_argument on out-of-range indices, self-loops, or
  /// zero-length links.
  LinkSet(Pointset points, std::vector<Link> links);

  /// Adopts a consistent view (trusted; no validation, no recompute).
  explicit LinkSet(LinkView view) : LinkView(std::move(view)) {}

  /// The sub-LinkSet induced by the given link indices. The pointset is
  /// compacted to the referenced endpoints (O(|indices|), not O(n)); stable
  /// ids carry over from the parent.
  [[nodiscard]] LinkSet subset(std::span<const std::size_t> indices) const {
    return LinkSet(subset_view(indices));
  }
};

}  // namespace wagg::geom

#endif  // WAGG_GEOM_LINKSET_H
