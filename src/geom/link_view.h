#ifndef WAGG_GEOM_LINK_VIEW_H
#define WAGG_GEOM_LINK_VIEW_H

#include <cstdint>
#include <span>
#include <vector>

#include "geom/point.h"

namespace wagg::geom {

/// Stable 64-bit link identifier. Ids are allocated by a LinkStore (or are
/// the identity 0..n-1 for containers built without one) and never reused,
/// so they survive node insertion/removal/movement across epochs. -1 marks
/// "no link".
using LinkId = std::int64_t;

inline constexpr LinkId kNoLink = -1;

/// A directed communication request from sender node to receiver node,
/// stored as indices into the owning container's pointset.
struct Link {
  std::int32_t sender = -1;
  std::int32_t receiver = -1;

  friend bool operator==(const Link&, const Link&) = default;
};

/// The dense, contiguous read surface every per-plan consumer operates on
/// (conflict graphs, coloring, schedules, SINR feasibility, power control).
///
/// A LinkView is a snapshot: links occupy dense indices 0..size()-1, each
/// carrying its stable LinkId (ids()[i]); lengths are precomputed columns.
/// Mutation-aware producers (geom::LinkStore via the dynamic planner) build
/// one view per epoch from only the live link set and reuse it across every
/// pipeline stage; static pipelines use the owning subclass LinkSet, whose
/// validating constructor assigns identity ids.
///
/// Notation follows the paper: for links i, j
///   l_i          = length(i)                (sender-to-receiver distance)
///   d_ji         = sinr_distance(j, i)      (sender of j to receiver of i)
///   d(i, j)      = link_distance(i, j)      (min over the 4 node pairs)
///   Delta        = delta()                  (max length / min length)
class LinkView {
 public:
  LinkView() = default;

  [[nodiscard]] std::size_t size() const noexcept { return links_.size(); }
  [[nodiscard]] bool empty() const noexcept { return links_.empty(); }
  [[nodiscard]] std::size_t num_points() const noexcept {
    return points_.size();
  }

  [[nodiscard]] const Pointset& points() const noexcept { return points_; }
  [[nodiscard]] std::span<const Link> links() const noexcept { return links_; }
  [[nodiscard]] const Link& link(std::size_t i) const { return links_.at(i); }

  /// Stable ids, aligned with dense indices. Views built without a store
  /// (plain LinkSets) use the identity mapping ids()[i] == i.
  [[nodiscard]] std::span<const LinkId> ids() const noexcept { return ids_; }
  [[nodiscard]] LinkId id_of(std::size_t i) const { return ids_.at(i); }

  [[nodiscard]] const Point& sender_pos(std::size_t i) const {
    return points_[static_cast<std::size_t>(links_[i].sender)];
  }
  [[nodiscard]] const Point& receiver_pos(std::size_t i) const {
    return points_[static_cast<std::size_t>(links_[i].receiver)];
  }

  /// l_i: the length of link i.
  [[nodiscard]] double length(std::size_t i) const { return lengths_[i]; }
  [[nodiscard]] std::span<const double> lengths() const noexcept {
    return lengths_;
  }

  /// d_ji = d(s_j, r_i): the SINR interference distance from link j's sender
  /// to link i's receiver. sinr_distance(i, i) == length(i).
  [[nodiscard]] double sinr_distance(std::size_t j, std::size_t i) const {
    return distance(sender_pos(j), receiver_pos(i));
  }
  [[nodiscard]] double squared_sinr_distance(std::size_t j,
                                             std::size_t i) const {
    return squared_distance(sender_pos(j), receiver_pos(i));
  }

  /// d(i, j): minimum distance between the nodes of links i and j
  /// (0 if they share a node). This is the metric of the conflict graphs.
  [[nodiscard]] double link_distance(std::size_t i, std::size_t j) const;

  [[nodiscard]] double min_length() const;
  [[nodiscard]] double max_length() const;

  /// Delta = max link length / min link length. Throws if empty.
  [[nodiscard]] double delta() const;

  /// log2(Delta), computed without forming the ratio (survives instances
  /// whose Delta is representable only in log space via lengths; for lengths
  /// already stored as doubles this is exact enough).
  [[nodiscard]] double log2_delta() const;

  /// True if links i and j share an endpoint node (index equality).
  [[nodiscard]] bool shares_node(std::size_t i, std::size_t j) const noexcept;

  /// The sub-view induced by the given link indices. The pointset is
  /// compacted to the endpoints actually referenced, so the result costs
  /// O(|indices|), not O(num_points). Stable ids carry over.
  [[nodiscard]] LinkView subset_view(std::span<const std::size_t> indices)
      const;

  /// Indices 0..size()-1 sorted by non-increasing length; ties broken by
  /// link index so the order (and thus every schedule) is deterministic.
  [[nodiscard]] std::vector<std::size_t> by_decreasing_length() const;

  /// Indices sorted by non-decreasing length, same deterministic tie-break.
  [[nodiscard]] std::vector<std::size_t> by_increasing_length() const;

 protected:
  /// Trusted assembly for subclasses and the store snapshotter: columns must
  /// be consistent (same size, valid indices, positive lengths).
  LinkView(Pointset points, std::vector<Link> links,
           std::vector<double> lengths, std::vector<LinkId> ids)
      : points_(std::move(points)),
        links_(std::move(links)),
        lengths_(std::move(lengths)),
        ids_(std::move(ids)) {}

  Pointset points_;
  std::vector<Link> links_;
  std::vector<double> lengths_;
  std::vector<LinkId> ids_;

  friend class LinkStore;
};

}  // namespace wagg::geom

#endif  // WAGG_GEOM_LINK_VIEW_H
