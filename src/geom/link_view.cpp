#include "geom/link_view.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

namespace wagg::geom {

double LinkView::link_distance(std::size_t i, std::size_t j) const {
  if (shares_node(i, j)) return 0.0;
  const Point& si = sender_pos(i);
  const Point& ri = receiver_pos(i);
  const Point& sj = sender_pos(j);
  const Point& rj = receiver_pos(j);
  return std::min(std::min(distance(si, sj), distance(si, rj)),
                  std::min(distance(ri, sj), distance(ri, rj)));
}

double LinkView::min_length() const {
  if (lengths_.empty()) throw std::logic_error("LinkView::min_length: empty");
  return *std::min_element(lengths_.begin(), lengths_.end());
}

double LinkView::max_length() const {
  if (lengths_.empty()) throw std::logic_error("LinkView::max_length: empty");
  return *std::max_element(lengths_.begin(), lengths_.end());
}

double LinkView::delta() const { return max_length() / min_length(); }

double LinkView::log2_delta() const {
  return std::log2(max_length()) - std::log2(min_length());
}

bool LinkView::shares_node(std::size_t i, std::size_t j) const noexcept {
  const Link& a = links_[i];
  const Link& b = links_[j];
  return a.sender == b.sender || a.sender == b.receiver ||
         a.receiver == b.sender || a.receiver == b.receiver;
}

LinkView LinkView::subset_view(std::span<const std::size_t> indices) const {
  // Compact the pointset to the endpoints actually referenced so the result
  // costs O(|indices|) regardless of how many points the parent holds.
  std::unordered_map<std::int32_t, std::int32_t> remap;
  remap.reserve(indices.size() * 2);
  Pointset sub_points;
  std::vector<Link> sub_links;
  std::vector<double> sub_lengths;
  std::vector<LinkId> sub_ids;
  sub_links.reserve(indices.size());
  sub_lengths.reserve(indices.size());
  sub_ids.reserve(indices.size());
  sub_points.reserve(std::min<std::size_t>(2 * indices.size(), num_points()));
  const auto compact = [&](std::int32_t node) {
    const auto [it, inserted] =
        remap.try_emplace(node, static_cast<std::int32_t>(sub_points.size()));
    if (inserted) sub_points.push_back(points_[static_cast<std::size_t>(node)]);
    return it->second;
  };
  for (const std::size_t idx : indices) {
    const Link& original = links_.at(idx);
    sub_links.push_back(
        Link{compact(original.sender), compact(original.receiver)});
    sub_lengths.push_back(lengths_[idx]);
    sub_ids.push_back(ids_[idx]);
  }
  return LinkView(std::move(sub_points), std::move(sub_links),
                  std::move(sub_lengths), std::move(sub_ids));
}

std::vector<std::size_t> LinkView::by_decreasing_length() const {
  std::vector<std::size_t> order(links_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [this](std::size_t a, std::size_t b) {
                     if (lengths_[a] != lengths_[b]) {
                       return lengths_[a] > lengths_[b];
                     }
                     return a < b;
                   });
  return order;
}

std::vector<std::size_t> LinkView::by_increasing_length() const {
  std::vector<std::size_t> order(links_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [this](std::size_t a, std::size_t b) {
                     if (lengths_[a] != lengths_[b]) {
                       return lengths_[a] < lengths_[b];
                     }
                     return a < b;
                   });
  return order;
}

}  // namespace wagg::geom
