#include "geom/point.h"

#include <stdexcept>

namespace wagg::geom {

double min_pairwise_distance(const Pointset& points) {
  if (points.size() < 2) {
    throw std::invalid_argument("min_pairwise_distance: need >= 2 points");
  }
  double best = distance(points[0], points[1]);
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = i + 1; j < points.size(); ++j) {
      const double d = distance(points[i], points[j]);
      if (d < best) best = d;
    }
  }
  return best;
}

double diameter(const Pointset& points) {
  if (points.size() < 2) {
    throw std::invalid_argument("diameter: need >= 2 points");
  }
  double best = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = i + 1; j < points.size(); ++j) {
      const double d = distance(points[i], points[j]);
      if (d > best) best = d;
    }
  }
  return best;
}

Pointset line_pointset(const std::vector<double>& xs) {
  Pointset points;
  points.reserve(xs.size());
  for (double x : xs) points.push_back(Point{x, 0.0});
  return points;
}

}  // namespace wagg::geom
