#ifndef WAGG_GEOM_LINK_STORE_H
#define WAGG_GEOM_LINK_STORE_H

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "geom/link_view.h"
#include "geom/point.h"

namespace wagg::geom {

/// Observer of LinkStore mutations. Derived-data maintainers (e.g. the
/// persistent conflict::ConflictIndex) attach one so every store mutation
/// keeps them in sync without the mutating code knowing they exist.
///
/// Callbacks fire AFTER the store has updated its own state, exactly once
/// per effective mutation:
///   on_add         the id is live and its columns readable
///   on_remove      the id is already dead — column accessors throw; read
///                  what you need from your own mirror
///   on_flip        sender/receiver swapped in place (the undirected
///                  geometry is unchanged)
///   on_set_length  the length column changed value (bit-identical
///                  refreshes do not fire)
///   on_touch       a geometry change the columns cannot express
/// clear() fires on_remove for every live link. Listeners must not mutate
/// the store from inside a callback.
class LinkStoreListener {
 public:
  virtual ~LinkStoreListener() = default;
  virtual void on_add(LinkId id) = 0;
  virtual void on_remove(LinkId id) = 0;
  virtual void on_flip(LinkId id) = 0;
  virtual void on_set_length(LinkId id) = 0;
  virtual void on_touch(LinkId id) = 0;
};

/// The canonical mutation-aware link container: a column store over stable
/// 64-bit link ids that survive node insertion/removal/movement.
///
/// Where LinkSet/LinkView are per-epoch snapshots (dense indices, immutable),
/// the store is the cross-epoch source of truth the dynamic planner mutates
/// in place:
///
///   add         allocates the next id (ids are never reused)
///   remove      kills an id
///   flip        swaps sender/receiver IN PLACE — an orientation diff, not a
///               container rebuild
///   set_length  refreshes the cached length after an endpoint moved
///
/// Every per-field column carries a generation counter (endpoint_gen for the
/// sender/receiver pair, length_gen for the geometry), drawn from a single
/// monotonically increasing clock shared by the whole store. Consumers
/// record the clock after a read and later compare per-link generations
/// against it to detect staleness per link — the basis of O(dirty) epoch
/// work instead of assuming a fresh world.
///
/// Endpoints are stable NODE ids (e.g. mst::IncrementalMst ids), not dense
/// point indices; the store never touches positions. A canonical-pair index
/// (undirected {a, b} -> live id) lets tree maintainers diff edge sets.
class LinkStore {
 public:
  LinkStore() = default;

  /// Allocates a new live link. The pair {sender, receiver} must not
  /// collide with a live link (std::invalid_argument).
  LinkId add(std::int32_t sender, std::int32_t receiver, double length);

  /// Kills a live link. Throws std::invalid_argument on dead/unknown ids.
  void remove(LinkId id);

  /// In-place orientation flip: swaps sender and receiver, bumps the
  /// endpoint generation. The pair index is unaffected (pairs are
  /// undirected).
  void flip(LinkId id);

  /// Refreshes the length column. A no-op (no generation bump) when the
  /// value is unchanged bit-for-bit, so unconditional refresh sweeps do not
  /// dirty clean links.
  void set_length(LinkId id, double length);

  /// Marks a link changed without altering any column — for geometry
  /// context changes the columns cannot express (an endpoint moved but the
  /// cached length happens to be identical: SINR distances to other links
  /// still shifted).
  void touch(LinkId id);

  /// Drops every link and resets the pair index. Ids are still never
  /// reused; the generation clock keeps advancing.
  void clear();

  [[nodiscard]] bool alive(LinkId id) const noexcept {
    return id >= 0 && static_cast<std::size_t>(id) < alive_.size() &&
           alive_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] std::size_t num_live() const noexcept { return num_live_; }
  /// Total ids ever allocated (live + dead).
  [[nodiscard]] std::size_t capacity() const noexcept {
    return alive_.size();
  }

  [[nodiscard]] std::int32_t sender(LinkId id) const {
    return sender_[checked(id)];
  }
  [[nodiscard]] std::int32_t receiver(LinkId id) const {
    return receiver_[checked(id)];
  }
  [[nodiscard]] double length(LinkId id) const { return length_[checked(id)]; }

  /// Generation of the last sender/receiver change (add or flip).
  [[nodiscard]] std::uint64_t endpoint_gen(LinkId id) const {
    return endpoint_gen_[checked(id)];
  }
  /// Generation of the last geometry change (add, a value-changing
  /// set_length, or touch — a moved endpoint is a geometry change even
  /// when the cached length survives).
  [[nodiscard]] std::uint64_t length_gen(LinkId id) const {
    return length_gen_[checked(id)];
  }
  /// max(endpoint_gen, length_gen): the link changed after `mark` iff
  /// generation(id) > mark.
  [[nodiscard]] std::uint64_t generation(LinkId id) const {
    const auto slot = checked(id);
    return endpoint_gen_[slot] > length_gen_[slot] ? endpoint_gen_[slot]
                                                   : length_gen_[slot];
  }

  /// The store-wide clock: strictly increases on every mutating call.
  /// Record it after building a view; any link whose generation() exceeds
  /// the recorded value changed since.
  [[nodiscard]] std::uint64_t clock() const noexcept { return clock_; }

  /// Attaches (or, with nullptr, detaches) the single mutation listener.
  /// The listener must outlive the store or be detached first.
  void set_listener(LinkStoreListener* listener) noexcept {
    listener_ = listener;
  }
  [[nodiscard]] LinkStoreListener* listener() const noexcept {
    return listener_;
  }

  /// The live id of the undirected pair {a, b}, or kNoLink.
  [[nodiscard]] LinkId find_pair(std::int32_t a, std::int32_t b) const;

  /// The canonical key of the undirected pair {a, b} — the scheme the pair
  /// index uses, exposed so tree maintainers deduplicate edge diffs with
  /// the exact same identity.
  [[nodiscard]] static std::uint64_t pair_key(std::int32_t a,
                                              std::int32_t b) noexcept;

  /// Live ids in increasing order — the canonical dense order of views.
  [[nodiscard]] std::vector<LinkId> live_ids() const;

  /// Builds the per-epoch dense snapshot: links in increasing-id order,
  /// endpoints remapped through node_index (stable node id -> dense point
  /// index into `points`, -1 for absent nodes — an std::invalid_argument if
  /// a live link references one). Costs O(live); no distances are
  /// recomputed (lengths are the maintained column).
  [[nodiscard]] LinkView snapshot(Pointset points,
                                  std::span<const std::int32_t> node_index)
      const;

 private:
  [[nodiscard]] std::size_t checked(LinkId id) const;

  std::vector<std::int32_t> sender_;
  std::vector<std::int32_t> receiver_;
  std::vector<double> length_;
  std::vector<std::uint64_t> endpoint_gen_;
  std::vector<std::uint64_t> length_gen_;
  std::vector<bool> alive_;
  std::unordered_map<std::uint64_t, LinkId> pair_index_;
  std::size_t num_live_ = 0;
  std::uint64_t clock_ = 0;
  LinkStoreListener* listener_ = nullptr;
};

}  // namespace wagg::geom

#endif  // WAGG_GEOM_LINK_STORE_H
