#include "analysis/audit.h"

#include <stdexcept>

#include "coloring/coloring.h"

namespace wagg::analysis {

conflict::Graph pairwise_infeasibility_graph(
    const geom::LinkView& links, const schedule::FeasibilityOracle& oracle) {
  conflict::Graph graph(links.size());
  std::vector<std::size_t> pair(2);
  for (std::size_t i = 0; i < links.size(); ++i) {
    for (std::size_t j = i + 1; j < links.size(); ++j) {
      pair[0] = i;
      pair[1] = j;
      if (!oracle(pair)) graph.add_edge(i, j);
    }
  }
  graph.finalize();
  return graph;
}

std::size_t count_cofeasible_pairs(const geom::LinkView& links,
                                   const schedule::FeasibilityOracle& oracle) {
  std::size_t count = 0;
  std::vector<std::size_t> pair(2);
  for (std::size_t i = 0; i < links.size(); ++i) {
    for (std::size_t j = i + 1; j < links.size(); ++j) {
      pair[0] = i;
      pair[1] = j;
      if (oracle(pair)) ++count;
    }
  }
  return count;
}

std::vector<std::size_t> greedy_feasible_packing(
    const geom::LinkView& links, std::span<const std::size_t> candidates,
    const schedule::FeasibilityOracle& oracle,
    std::optional<std::size_t> anchor) {
  (void)links;  // kept for API symmetry with the other audit entry points
  std::vector<std::size_t> packed;
  if (anchor.has_value()) {
    packed.push_back(*anchor);
    if (!oracle(packed)) {
      throw std::invalid_argument(
          "greedy_feasible_packing: anchor alone is infeasible");
    }
  }
  std::vector<std::size_t> trial;
  for (std::size_t link : candidates) {
    if (anchor.has_value() && link == *anchor) continue;
    trial = packed;
    trial.push_back(link);
    if (oracle(trial)) packed.push_back(link);
  }
  return packed;
}

std::size_t max_feasible_set_with_anchor(
    const geom::LinkView& links, std::span<const std::size_t> candidates,
    std::size_t anchor, const schedule::FeasibilityOracle& oracle) {
  if (candidates.size() > 20) {
    throw std::invalid_argument(
        "max_feasible_set_with_anchor: too many candidates for exhaustion");
  }
  std::vector<std::size_t> others;
  for (std::size_t c : candidates) {
    if (c != anchor) others.push_back(c);
  }
  const std::size_t m = others.size();
  std::size_t best = 0;
  std::vector<std::size_t> subset;
  for (std::uint64_t mask = 0; mask < (1ULL << m); ++mask) {
    if (static_cast<std::size_t>(__builtin_popcountll(mask)) + 1 <= best) {
      continue;
    }
    subset.clear();
    subset.push_back(anchor);
    for (std::size_t b = 0; b < m; ++b) {
      if (mask & (1ULL << b)) subset.push_back(others[b]);
    }
    if (oracle(subset)) best = subset.size();
  }
  (void)links;
  return best;
}

std::optional<int> min_slots_lower_bound(
    const geom::LinkView& links, const schedule::FeasibilityOracle& oracle,
    long node_budget) {
  const auto graph = pairwise_infeasibility_graph(links, oracle);
  return coloring::exact_chromatic_number(graph, node_budget);
}

}  // namespace wagg::analysis
