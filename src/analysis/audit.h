#ifndef WAGG_ANALYSIS_AUDIT_H
#define WAGG_ANALYSIS_AUDIT_H

#include <cstddef>
#include <optional>
#include <span>

#include "conflict/graph.h"
#include "geom/linkset.h"
#include "schedule/verify.h"
#include "sinr/model.h"
#include "sinr/power.h"

namespace wagg::analysis {

/// Builds the *pairwise infeasibility graph* H: links i, j are adjacent iff
/// the two-element set {i, j} is not cofeasible under the oracle. Since
/// feasibility is subset-closed (removing links only removes interference),
/// every schedulable slot is an independent set of H, so chi(H) is an exact
/// lower bound on the length of ANY coloring schedule, and n/alpha(H) on any
/// rate. The paper's Prop 1 instance makes H complete: chi(H) = n.
[[nodiscard]] conflict::Graph pairwise_infeasibility_graph(
    const geom::LinkView& links, const schedule::FeasibilityOracle& oracle);

/// Count of cofeasible pairs (non-edges of H, excluding i == j).
[[nodiscard]] std::size_t count_cofeasible_pairs(
    const geom::LinkView& links, const schedule::FeasibilityOracle& oracle);

/// Greedily packs a maximal feasible set from `candidates` (processed in the
/// given order), always keeping the anchor if provided. Returns the set.
[[nodiscard]] std::vector<std::size_t> greedy_feasible_packing(
    const geom::LinkView& links, std::span<const std::size_t> candidates,
    const schedule::FeasibilityOracle& oracle,
    std::optional<std::size_t> anchor = std::nullopt);

/// Exhaustive maximum feasible set that contains `anchor`, over subsets of
/// `candidates` (exponential: requires candidates.size() <= 20). Used to
/// certify Claim-1-style bounds on small R_t instances.
[[nodiscard]] std::size_t max_feasible_set_with_anchor(
    const geom::LinkView& links, std::span<const std::size_t> candidates,
    std::size_t anchor, const schedule::FeasibilityOracle& oracle);

/// Exact minimum coloring-schedule length lower bound: chi of the pairwise
/// infeasibility graph (exact for small graphs, std::nullopt when the
/// branch-and-bound budget is exhausted).
[[nodiscard]] std::optional<int> min_slots_lower_bound(
    const geom::LinkView& links, const schedule::FeasibilityOracle& oracle,
    long node_budget = 2'000'000);

}  // namespace wagg::analysis

#endif  // WAGG_ANALYSIS_AUDIT_H
