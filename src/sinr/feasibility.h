#ifndef WAGG_SINR_FEASIBILITY_H
#define WAGG_SINR_FEASIBILITY_H

#include <cstddef>
#include <span>
#include <vector>

#include "geom/linkset.h"
#include "sinr/model.h"
#include "sinr/power.h"

namespace wagg::sinr {

/// log2 of the relative interference (affectance) of link j on link i under
/// power P:  I_P(j, i) = (P_j / d_ji^alpha) / (P_i / l_i^alpha).
/// Returns -inf for j == i and +inf when d_ji == 0 (sender of j sits on the
/// receiver of i).
[[nodiscard]] double log2_affectance(const geom::LinkView& links,
                                     const SinrParams& params,
                                     const PowerAssignment& power,
                                     std::size_t j, std::size_t i);

/// True iff some node appears in two links of the set (half-duplex, single
/// radio per node: such sets are never schedulable in one slot).
[[nodiscard]] bool has_shared_node(const geom::LinkView& links,
                                   std::span<const std::size_t> set);

/// Result of an exact slot-feasibility check.
struct FeasibilityReport {
  bool feasible = false;
  /// max over links i in the set of beta * (sum_j I_P(j,i) + noise term);
  /// feasible iff <= 1 (up to tolerance) and no shared nodes.
  double max_load = 0.0;
  /// Link (index into the set) attaining max_load; set size on empty input.
  std::size_t worst_link = 0;
  bool shared_node = false;
};

/// Exact SINR feasibility of a set of links under a fixed power assignment.
/// `tolerance` loosens the SINR comparison multiplicatively to absorb
/// floating-point noise (load <= 1 + tolerance passes).
[[nodiscard]] FeasibilityReport check_feasible(
    const geom::LinkView& links, std::span<const std::size_t> set,
    const SinrParams& params, const PowerAssignment& power,
    double tolerance = 1e-9);

/// Convenience wrapper returning just the verdict.
[[nodiscard]] bool is_feasible(const geom::LinkView& links,
                               std::span<const std::size_t> set,
                               const SinrParams& params,
                               const PowerAssignment& power,
                               double tolerance = 1e-9);

/// Feasibility under *arbitrary power control* (the paper's "feasible" with
/// no fixed P): a set S admits a power vector P > 0 satisfying all SINR
/// constraints iff the spectral radius of the normalized gain matrix
///   M_ij = beta * (l_i / d_ji)^alpha   (i != j), M_ii = 0
/// is below 1. Decided by power iteration performed entirely in log2 space
/// (log-sum-exp) so the doubly-exponential instances do not overflow.
/// When feasible, the (log2) Perron vector is returned: it is itself a valid
/// power assignment with slack 1/rho, i.e. the output of a global power
/// control algorithm in the Foschini–Miljanic family.
struct PowerControlResult {
  bool feasible = false;
  /// Spectral radius estimate of M; feasible iff < 1 and no shared node.
  double spectral_radius = 0.0;
  bool shared_node = false;
  /// log2 of the computed power vector (aligned with `set`); empty if
  /// infeasible. Normalized so the maximum log2-power is 0.
  std::vector<double> log2_power;
  int iterations = 0;
};

struct PowerControlOptions {
  int max_iterations = 256;
  double tolerance = 1e-10;
  /// Require rho <= 1 - strictness (strictness > 0 guards against sets that
  /// are only feasible with unbounded power ratios).
  double strictness = 1e-6;
};

[[nodiscard]] PowerControlResult power_control_feasible(
    const geom::LinkView& links, std::span<const std::size_t> set,
    const SinrParams& params, const PowerControlOptions& options = {});

/// Expands the per-set power vector from power_control_feasible into a
/// full-linkset PowerAssignment (links outside `set` keep log2 power 0).
[[nodiscard]] PowerAssignment embed_slot_power(
    const geom::LinkView& links, std::span<const std::size_t> set,
    const PowerControlResult& result);

/// Numerically stable log2(sum_i 2^x_i); -inf on empty input.
[[nodiscard]] double log2_sum_exp2(std::span<const double> values);

}  // namespace wagg::sinr

#endif  // WAGG_SINR_FEASIBILITY_H
