#ifndef WAGG_SINR_POWER_H
#define WAGG_SINR_POWER_H

#include <string>
#include <vector>

#include "geom/linkset.h"
#include "sinr/model.h"

namespace wagg::sinr {

/// Per-link transmit powers, stored and manipulated in log2 space.
///
/// The paper's doubly-exponential constructions produce link lengths whose
/// required powers (~ l^alpha) far exceed the range of IEEE doubles, so every
/// power-dependent computation in this library works on log2(P) and converts
/// to linear scale only inside clamped exponentials.
class PowerAssignment {
 public:
  PowerAssignment() = default;
  explicit PowerAssignment(std::vector<double> log2_power,
                           std::string description = "explicit");

  [[nodiscard]] std::size_t size() const noexcept {
    return log2_power_.size();
  }
  [[nodiscard]] double log2_power(std::size_t i) const {
    return log2_power_.at(i);
  }
  /// Linear-scale power; may overflow to +inf for extreme instances.
  [[nodiscard]] double power(std::size_t i) const;
  [[nodiscard]] const std::string& description() const noexcept {
    return description_;
  }
  [[nodiscard]] const std::vector<double>& log2_powers() const noexcept {
    return log2_power_;
  }

 private:
  std::vector<double> log2_power_;
  std::string description_;
};

/// The oblivious power scheme P_tau(i) = C * l_i^(tau * alpha), tau in [0, 1]
/// (Sec 2). C is 1 for noise-free instances; otherwise the smallest constant
/// making every link interference-limited:
///   C = (1 + eps) * beta * N * max_i l_i^((1 - tau) * alpha).
/// tau = 0 is the uniform scheme P_0, tau = 1 the linear scheme P_1.
[[nodiscard]] PowerAssignment oblivious_power(const geom::LinkView& links,
                                              double tau,
                                              const SinrParams& params);

/// Uniform power P_0 (every sender uses the same power).
[[nodiscard]] PowerAssignment uniform_power(const geom::LinkView& links,
                                            const SinrParams& params);

/// Linear power P_1 (power proportional to l^alpha).
[[nodiscard]] PowerAssignment linear_power(const geom::LinkView& links,
                                           const SinrParams& params);

}  // namespace wagg::sinr

#endif  // WAGG_SINR_POWER_H
