#include "sinr/model.h"

#include <stdexcept>

namespace wagg::sinr {

void SinrParams::validate() const {
  if (!(alpha > 2.0)) {
    throw std::invalid_argument("SinrParams: alpha must exceed 2");
  }
  if (!(beta > 0.0)) {
    throw std::invalid_argument("SinrParams: beta must be positive");
  }
  if (!(noise >= 0.0)) {
    throw std::invalid_argument("SinrParams: noise must be non-negative");
  }
  if (!(epsilon > 0.0)) {
    throw std::invalid_argument("SinrParams: epsilon must be positive");
  }
}

}  // namespace wagg::sinr
