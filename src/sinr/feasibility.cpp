#include "sinr/feasibility.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace wagg::sinr {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// exp2 with saturation instead of overflow/underflow surprises.
double safe_exp2(double x) noexcept {
  if (x >= 1024.0) return kInf;
  if (x <= -1074.0) return 0.0;
  return std::exp2(x);
}

/// log2 of the noise load term beta * N * l_i^alpha / P_i, or -inf if N == 0.
double log2_noise_term(const geom::LinkView& links, const SinrParams& params,
                       const PowerAssignment& power, std::size_t i) {
  if (params.noise <= 0.0) return -kInf;
  return std::log2(params.noise) + params.alpha * std::log2(links.length(i)) -
         power.log2_power(i);
}

}  // namespace

double log2_sum_exp2(std::span<const double> values) {
  double max_v = -kInf;
  for (double v : values) max_v = std::max(max_v, v);
  if (max_v == -kInf) return -kInf;
  if (max_v == kInf) return kInf;
  double sum = 0.0;
  for (double v : values) {
    if (v == -kInf) continue;
    sum += std::exp2(v - max_v);
  }
  return max_v + std::log2(sum);
}

double log2_affectance(const geom::LinkView& links, const SinrParams& params,
                       const PowerAssignment& power, std::size_t j,
                       std::size_t i) {
  if (j == i) return -kInf;
  const double d = links.sinr_distance(j, i);
  if (d <= 0.0) return kInf;
  return power.log2_power(j) - power.log2_power(i) +
         params.alpha * (std::log2(links.length(i)) - std::log2(d));
}

bool has_shared_node(const geom::LinkView& links,
                     std::span<const std::size_t> set) {
  // Sort the 2|set| endpoint indices and look for an adjacent duplicate —
  // O(k log k) against the O(k^2) pairwise check this replaces.
  std::vector<std::int32_t> nodes;
  nodes.reserve(2 * set.size());
  for (const std::size_t i : set) {
    nodes.push_back(links.link(i).sender);
    nodes.push_back(links.link(i).receiver);
  }
  std::sort(nodes.begin(), nodes.end());
  return std::adjacent_find(nodes.begin(), nodes.end()) != nodes.end();
}

FeasibilityReport check_feasible(const geom::LinkView& links,
                                 std::span<const std::size_t> set,
                                 const SinrParams& params,
                                 const PowerAssignment& power,
                                 double tolerance) {
  params.validate();
  FeasibilityReport report;
  report.worst_link = set.size();
  if (set.empty()) {
    report.feasible = true;
    return report;
  }
  if (has_shared_node(links, set)) {
    report.shared_node = true;
    report.feasible = false;
    report.max_load = kInf;
    return report;
  }
  const double log2_beta = std::log2(params.beta);
  report.max_load = 0.0;
  // Hoisted per-link columns: log2 length and log2 power are re-read for
  // every pair in the inner loop, so computing them once per link removes
  // two transcendentals per matrix entry. Distances enter as
  // 0.5 * log2(d^2), saving the square root.
  std::vector<double> log2_len(set.size());
  std::vector<double> log2_pow(set.size());
  for (std::size_t a = 0; a < set.size(); ++a) {
    log2_len[a] = std::log2(links.length(set[a]));
    log2_pow[a] = power.log2_power(set[a]);
  }
  std::vector<double> terms;
  terms.reserve(set.size());
  for (std::size_t a = 0; a < set.size(); ++a) {
    terms.clear();
    const double alpha_log2_len = params.alpha * log2_len[a];
    for (std::size_t b = 0; b < set.size(); ++b) {
      if (b == a) continue;
      const double d2 = links.squared_sinr_distance(set[b], set[a]);
      terms.push_back(d2 <= 0.0
                          ? kInf
                          : log2_pow[b] - log2_pow[a] + alpha_log2_len -
                                params.alpha * 0.5 * std::log2(d2));
    }
    terms.push_back(log2_noise_term(links, params, power, set[a]));
    const double load = safe_exp2(log2_beta + log2_sum_exp2(terms));
    if (load > report.max_load) {
      report.max_load = load;
      report.worst_link = a;
    }
  }
  report.feasible = report.max_load <= 1.0 + tolerance;
  return report;
}

bool is_feasible(const geom::LinkView& links, std::span<const std::size_t> set,
                 const SinrParams& params, const PowerAssignment& power,
                 double tolerance) {
  return check_feasible(links, set, params, power, tolerance).feasible;
}

namespace {

/// log2 of the normalized gain matrix M_ij = beta * (l_i / d_ji)^alpha,
/// row-major over the set; diagonal is -inf.
std::vector<double> log2_gain_matrix(const geom::LinkView& links,
                                     std::span<const std::size_t> set,
                                     const SinrParams& params) {
  const std::size_t k = set.size();
  const double log2_beta = std::log2(params.beta);
  std::vector<double> m(k * k, -kInf);
  for (std::size_t a = 0; a < k; ++a) {
    const double log2_len = std::log2(links.length(set[a]));
    const double row_const = log2_beta + params.alpha * log2_len;
    for (std::size_t b = 0; b < k; ++b) {
      if (a == b) continue;
      // 0.5 * log2(d^2) == log2(d): the square root never materializes.
      const double d2 = links.squared_sinr_distance(set[b], set[a]);
      m[a * k + b] = d2 <= 0.0
                         ? kInf
                         : row_const - params.alpha * 0.5 * std::log2(d2);
    }
  }
  return m;
}

}  // namespace

PowerControlResult power_control_feasible(const geom::LinkView& links,
                                          std::span<const std::size_t> set,
                                          const SinrParams& params,
                                          const PowerControlOptions& options) {
  params.validate();
  PowerControlResult result;
  if (set.empty()) {
    result.feasible = true;
    result.spectral_radius = 0.0;
    return result;
  }
  if (has_shared_node(links, set)) {
    result.shared_node = true;
    result.spectral_radius = kInf;
    return result;
  }
  const std::size_t k = set.size();
  if (k == 1) {
    result.feasible = true;
    result.spectral_radius = 0.0;
    result.log2_power = {0.0};
    return result;
  }
  const auto m = log2_gain_matrix(links, set, params);

  if (k == 2) {
    // Exact: rho([[0,a],[b,0]]) = sqrt(a*b), computed in log2 space.
    const double a = m[1];  // effect of link 2's power on link 1
    const double b = m[2];  // effect of link 1's power on link 2
    const double lg = 0.5 * (a + b);
    result.spectral_radius = safe_exp2(lg);
    result.iterations = 0;
    if (lg < std::log2(1.0 - options.strictness)) {
      if (a == -kInf && b == -kInf) {
        result.log2_power = {0.0, 0.0};
      } else if (a == -kInf) {
        // Only link 1 interferes with link 2: depress link 1's power.
        result.log2_power = {std::min(0.0, -b - 1.0), 0.0};
      } else if (b == -kInf) {
        result.log2_power = {0.0, std::min(0.0, -a - 1.0)};
      } else {
        // Balanced Perron powers p1/p2 = sqrt(M12 / M21).
        result.log2_power = {0.0, 0.5 * (b - a)};
      }
      const double mx =
          std::max(result.log2_power[0], result.log2_power[1]);
      for (double& p : result.log2_power) p -= mx;
      result.feasible = true;
    }
  } else {
    // Power iteration in log2 space. The Collatz–Wielandt inequality gives
    // rho <= max_i (Mx)_i / x_i for every positive x, so as soon as the max
    // ratio drops below the feasibility threshold we can stop: the current
    // iterate is itself a certified power vector (each link's load is at
    // most the max ratio). Ambiguous spectra iterate up to the budget.
    std::vector<double> v(k, 0.0), w(k, -kInf), terms(k);
    double rho_upper = kInf;
    for (int iter = 0; iter < options.max_iterations; ++iter) {
      ++result.iterations;
      for (std::size_t a = 0; a < k; ++a) {
        for (std::size_t b = 0; b < k; ++b) terms[b] = m[a * k + b] + v[b];
        w[a] = log2_sum_exp2(terms);
      }
      double max_ratio = -kInf;
      double max_w = -kInf;
      for (std::size_t a = 0; a < k; ++a) {
        if (w[a] != -kInf) max_ratio = std::max(max_ratio, w[a] - v[a]);
        max_w = std::max(max_w, w[a]);
      }
      if (max_ratio == -kInf) {
        // No interference at all; trivially feasible.
        result.spectral_radius = 0.0;
        result.feasible = true;
        result.log2_power.assign(k, 0.0);
        return result;
      }
      const double new_upper = safe_exp2(max_ratio);
      const bool upper_conclusive = new_upper < 1.0 - options.strictness;
      const bool converged =
          std::isfinite(rho_upper) &&
          std::abs(new_upper - rho_upper) <=
              options.tolerance * std::max(1.0, rho_upper);
      rho_upper = new_upper;
      if (upper_conclusive && iter > 0) break;
      // Normalize to max 0. Links receiving zero interference have w = -inf;
      // pin them far below the pack (their own SINR is unconstrained and a
      // low power keeps their outgoing interference negligible).
      for (std::size_t a = 0; a < k; ++a) {
        v[a] = w[a] == -kInf ? -500.0 : w[a] - max_w;
      }
      if (converged) break;
    }
    result.spectral_radius = rho_upper;
    if (rho_upper < 1.0 - options.strictness) {
      result.log2_power = v;
      result.feasible = true;
    }
  }

  if (!result.feasible) return result;

  // Noise-free instances need no second pass: a feasible verdict above is
  // already certified by its power vector (the k == 2 branch solves the
  // 2x2 system exactly, and the iterative branch only accepts via the
  // Collatz–Wielandt bound — every link's load under the returned vector
  // is at most rho_upper < 1 - strictness). Re-deriving the same loads
  // through check_feasible would double the call's cost for nothing.
  if (params.noise <= 0.0) return result;

  // Certify with an explicit power vector. With noise, run the
  // Foschini–Miljanic fixed-point update in log2 space first.
  PowerAssignment slot_power = embed_slot_power(links, set, result);
  if (params.noise > 0.0) {
    std::vector<double> lp(k);
    for (std::size_t a = 0; a < k; ++a) {
      lp[a] = std::log2((1.0 + params.epsilon) * params.beta * params.noise) +
              params.alpha * std::log2(links.length(set[a]));
    }
    std::vector<double> terms(k + 1);
    for (int iter = 0; iter < options.max_iterations; ++iter) {
      for (std::size_t a = 0; a < k; ++a) {
        for (std::size_t b = 0; b < k; ++b) terms[b] = m[a * k + b] + lp[b];
        terms[k] = std::log2(params.beta * params.noise) +
                   params.alpha * std::log2(links.length(set[a]));
        lp[a] = log2_sum_exp2(terms);
      }
    }
    // Headroom against the exact-equality fixed point.
    for (double& p : lp) p += std::log2(1.0 + params.epsilon);
    result.log2_power = lp;
    slot_power = embed_slot_power(links, set, result);
  }
  const auto report = check_feasible(links, set, params, slot_power, 1e-7);
  result.feasible = report.feasible;
  return result;
}

PowerAssignment embed_slot_power(const geom::LinkView& links,
                                 std::span<const std::size_t> set,
                                 const PowerControlResult& result) {
  if (result.log2_power.size() != set.size()) {
    throw std::invalid_argument("embed_slot_power: size mismatch");
  }
  std::vector<double> lp(links.size(), 0.0);
  for (std::size_t a = 0; a < set.size(); ++a) {
    lp.at(set[a]) = result.log2_power[a];
  }
  return PowerAssignment(std::move(lp), "power-control");
}

}  // namespace wagg::sinr
