#include "sinr/power.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace wagg::sinr {

PowerAssignment::PowerAssignment(std::vector<double> log2_power,
                                 std::string description)
    : log2_power_(std::move(log2_power)),
      description_(std::move(description)) {}

double PowerAssignment::power(std::size_t i) const {
  return std::exp2(log2_power_.at(i));
}

PowerAssignment oblivious_power(const geom::LinkView& links, double tau,
                                const SinrParams& params) {
  params.validate();
  if (!(tau >= 0.0 && tau <= 1.0)) {
    throw std::invalid_argument("oblivious_power: tau must lie in [0, 1]");
  }
  double log2_c = 0.0;
  if (params.noise > 0.0 && !links.empty()) {
    // Smallest C making every link interference-limited:
    // C >= (1+eps) * beta * N * l^((1-tau)*alpha) for every link length l.
    double max_term = -std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < links.size(); ++i) {
      const double term =
          (1.0 - tau) * params.alpha * std::log2(links.length(i));
      max_term = std::max(max_term, term);
    }
    log2_c = std::log2((1.0 + params.epsilon) * params.beta * params.noise) +
             max_term;
  }
  std::vector<double> lp;
  lp.reserve(links.size());
  for (std::size_t i = 0; i < links.size(); ++i) {
    lp.push_back(log2_c + tau * params.alpha * std::log2(links.length(i)));
  }
  return PowerAssignment(std::move(lp),
                         "P_tau(tau=" + std::to_string(tau) + ")");
}

PowerAssignment uniform_power(const geom::LinkView& links,
                              const SinrParams& params) {
  auto p = oblivious_power(links, 0.0, params);
  return PowerAssignment(p.log2_powers(), "uniform");
}

PowerAssignment linear_power(const geom::LinkView& links,
                             const SinrParams& params) {
  auto p = oblivious_power(links, 1.0, params);
  return PowerAssignment(p.log2_powers(), "linear");
}

}  // namespace wagg::sinr
