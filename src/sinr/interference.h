#ifndef WAGG_SINR_INTERFERENCE_H
#define WAGG_SINR_INTERFERENCE_H

#include <cstddef>
#include <span>

#include "geom/linkset.h"

namespace wagg::sinr {

/// The paper's additive interference operator (Sec 3.2):
///   I(j, i) = min{ 1, l_j^alpha / d(i, j)^alpha },   I(i, i) = 0,
/// where d(i, j) is the minimum distance between the nodes of the two links
/// (1 if they share a node, since min{1, inf} = 1).
[[nodiscard]] double interference_between(const geom::LinkView& links,
                                          std::size_t j, std::size_t i,
                                          double alpha);

/// I(i, S) = sum_{j in S} I(i, j): total outgoing interference of link i on
/// the links in `set` (i is skipped if present).
[[nodiscard]] double outgoing_interference(const geom::LinkView& links,
                                           std::size_t i,
                                           std::span<const std::size_t> set,
                                           double alpha);

/// I(S, i) = sum_{j in S} I(j, i): total incoming interference.
[[nodiscard]] double incoming_interference(const geom::LinkView& links,
                                           std::span<const std::size_t> set,
                                           std::size_t i, double alpha);

/// I(i, S_i^+): outgoing interference of link i on all links of the set that
/// are at least as long as i (the quantity Lemma 1 bounds by O(1) for MSTs).
[[nodiscard]] double outgoing_to_longer(const geom::LinkView& links,
                                        std::size_t i, double alpha);

/// I(S_i^-, i): incoming interference from all links no longer than i (the
/// quantity Theorem 3 bounds by O(1) for feasible sets with beta = 3^alpha).
[[nodiscard]] double incoming_from_shorter(const geom::LinkView& links,
                                           std::size_t i, double alpha);

/// Lemma 1 audit: max over links i of I(i, T_i^+). For any MST this should
/// be bounded by an absolute constant regardless of n or Delta.
[[nodiscard]] double lemma1_statistic(const geom::LinkView& links,
                                      double alpha);

/// Theorem 3 audit: max over links i of I(S_i^-, i) within the given set.
[[nodiscard]] double theorem3_statistic(const geom::LinkView& links,
                                        std::span<const std::size_t> set,
                                        double alpha);

}  // namespace wagg::sinr

#endif  // WAGG_SINR_INTERFERENCE_H
