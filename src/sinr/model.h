#ifndef WAGG_SINR_MODEL_H
#define WAGG_SINR_MODEL_H

namespace wagg::sinr {

/// Parameters of the physical (SINR) interference model, Sec 2 of the paper.
///
/// A transmission on link i succeeds, among concurrently transmitting set S,
/// iff   P(i)/l_i^alpha >= beta * ( sum_{j in S\{i}} P(j)/d_ji^alpha + N ).
struct SinrParams {
  /// Path-loss exponent; the model requires alpha > 2.
  double alpha = 3.0;
  /// Minimum SINR threshold beta > 0.
  double beta = 1.0;
  /// Ambient noise N >= 0. The paper's interference-limited assumption
  /// corresponds to noise = 0 (Sec 2 argues this only affects constants).
  double noise = 0.0;
  /// Interference-limitation margin: every power assignment must satisfy
  /// P(i) >= (1 + epsilon) * beta * N * l_i^alpha when noise > 0.
  double epsilon = 0.5;

  /// Throws std::invalid_argument when outside the model's domain.
  void validate() const;
};

}  // namespace wagg::sinr

#endif  // WAGG_SINR_MODEL_H
