#include "sinr/interference.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace wagg::sinr {

double interference_between(const geom::LinkView& links, std::size_t j,
                            std::size_t i, double alpha) {
  if (i == j) return 0.0;
  const double d = links.link_distance(i, j);
  if (d <= 0.0) return 1.0;  // shared node: min{1, inf}
  const double lj = links.length(j);
  if (lj >= d) return 1.0;  // ratio >= 1, min clamps
  // (l_j / d)^alpha with l_j < d: safe in log space for extreme scales.
  return std::exp2(alpha * (std::log2(lj) - std::log2(d)));
}

double outgoing_interference(const geom::LinkView& links, std::size_t i,
                             std::span<const std::size_t> set, double alpha) {
  double sum = 0.0;
  for (std::size_t j : set) {
    if (j == i) continue;
    sum += interference_between(links, i, j, alpha);
  }
  return sum;
}

double incoming_interference(const geom::LinkView& links,
                             std::span<const std::size_t> set, std::size_t i,
                             double alpha) {
  double sum = 0.0;
  for (std::size_t j : set) {
    if (j == i) continue;
    sum += interference_between(links, j, i, alpha);
  }
  return sum;
}

double outgoing_to_longer(const geom::LinkView& links, std::size_t i,
                          double alpha) {
  double sum = 0.0;
  const double li = links.length(i);
  for (std::size_t j = 0; j < links.size(); ++j) {
    if (j == i || links.length(j) < li) continue;
    sum += interference_between(links, i, j, alpha);
  }
  return sum;
}

double incoming_from_shorter(const geom::LinkView& links, std::size_t i,
                             double alpha) {
  double sum = 0.0;
  const double li = links.length(i);
  for (std::size_t j = 0; j < links.size(); ++j) {
    if (j == i || links.length(j) > li) continue;
    sum += interference_between(links, j, i, alpha);
  }
  return sum;
}

double lemma1_statistic(const geom::LinkView& links, double alpha) {
  double worst = 0.0;
  for (std::size_t i = 0; i < links.size(); ++i) {
    worst = std::max(worst, outgoing_to_longer(links, i, alpha));
  }
  return worst;
}

double theorem3_statistic(const geom::LinkView& links,
                          std::span<const std::size_t> set, double alpha) {
  double worst = 0.0;
  for (std::size_t idx : set) {
    const double li = links.length(idx);
    double sum = 0.0;
    for (std::size_t j : set) {
      if (j == idx || links.length(j) > li) continue;
      sum += interference_between(links, j, idx, alpha);
    }
    worst = std::max(worst, sum);
  }
  return worst;
}

}  // namespace wagg::sinr
