#ifndef WAGG_UTIL_ARGS_H
#define WAGG_UTIL_ARGS_H

#include <map>
#include <string>

namespace wagg::util {

/// Minimal `--key=value` command-line parser for the example binaries.
/// `--flag` with no value maps to "1"; non-`--` tokens are ignored.
class Args {
 public:
  Args(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const;
  /// Throws std::invalid_argument when the value does not parse fully.
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] long long get_int(const std::string& key,
                                  long long fallback) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace wagg::util

#endif  // WAGG_UTIL_ARGS_H
