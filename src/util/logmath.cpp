#include "util/logmath.h"

#include <cmath>
#include <stdexcept>

namespace wagg::util {

namespace {
constexpr double kOverflowGuard = 1e300;
}  // namespace

int log2_star(double x) noexcept {
  int k = 0;
  while (x > 1.0) {
    x = std::log2(x);
    ++k;
    if (k > 64) break;  // unreachable for finite doubles; belt and braces
  }
  return k;
}

int log2_star_of_log2(double lg) noexcept {
  // log2*(x) = 1 + log2*(log2 x) for x > 1; here lg = log2(x).
  if (lg <= 0.0) return 0;  // x <= 1
  return 1 + log2_star(lg);
}

double log2_log2(double x) noexcept {
  if (x <= 2.0) return 0.0;
  const double l = std::log2(x);
  return l <= 1.0 ? 0.0 : std::log2(l);
}

double log2_log2_of_log2(double lg) noexcept {
  return lg <= 1.0 ? 0.0 : std::log2(lg);
}

double tower2(int h) {
  if (h < 0) throw std::invalid_argument("tower2: negative height");
  double v = 1.0;
  for (int i = 0; i < h; ++i) {
    if (v > 1020.0) throw std::overflow_error("tower2: exceeds double range");
    v = std::exp2(v);
  }
  return v;
}

int floor_log2(std::uint64_t x) noexcept {
  if (x == 0) return -1;
  return 63 - __builtin_clzll(x);
}

int ceil_log2(std::uint64_t x) noexcept {
  if (x <= 1) return 0;
  return floor_log2(x - 1) + 1;
}

bool pow_fits(double base, double exp) noexcept {
  if (base <= 1.0) return true;
  return exp * std::log10(base) < std::log10(kOverflowGuard);
}

}  // namespace wagg::util
