#ifndef WAGG_UTIL_STATS_H
#define WAGG_UTIL_STATS_H

#include <cstddef>
#include <span>
#include <vector>

namespace wagg::util {

/// Streaming accumulator for count/mean/variance/min/max (Welford update).
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return mean_ * count_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile with linear interpolation between order statistics.
/// p in [0, 100]. Throws std::invalid_argument on empty input or bad p.
double percentile(std::span<const double> values, double p);

/// Non-throwing percentile: `fallback` on empty input. Bad p still throws —
/// an out-of-range p is a programming error, an empty batch is a data
/// condition every summary path must survive.
double percentile_or(std::span<const double> values, double p,
                     double fallback);

/// Least-squares slope of y against x. Throws on size mismatch or < 2 points.
/// Used to measure growth rates (e.g. schedule length vs log log Delta).
double regression_slope(std::span<const double> x, std::span<const double> y);

/// Convenience: collect, then query. Keeps all samples (unlike RunningStats).
class Samples {
 public:
  void add(double x) { values_.push_back(x); }
  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }
  [[nodiscard]] bool empty() const noexcept { return values_.empty(); }
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] const std::vector<double>& values() const noexcept {
    return values_;
  }

 private:
  std::vector<double> values_;
};

}  // namespace wagg::util

#endif  // WAGG_UTIL_STATS_H
