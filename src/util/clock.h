#ifndef WAGG_UTIL_CLOCK_H
#define WAGG_UTIL_CLOCK_H

#include <chrono>

namespace wagg::util {

/// The monotonic clock used for all stage and batch timings.
using Clock = std::chrono::steady_clock;

/// Milliseconds elapsed since `start`.
[[nodiscard]] inline double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace wagg::util

#endif  // WAGG_UTIL_CLOCK_H
