#ifndef WAGG_UTIL_LOGMATH_H
#define WAGG_UTIL_LOGMATH_H

#include <cstdint>

namespace wagg::util {

/// Iterated binary logarithm log2*(x): the number of times log2 must be
/// applied to x before the result is <= 1. log2_star(x) == 0 for x <= 1.
/// This is the `log*` of the paper's rate bound Omega(1 / log* Delta).
int log2_star(double x) noexcept;

/// log2*(x) where the argument is given as lg = log2(x). Needed for the
/// doubly-exponential instances whose Delta overflows IEEE doubles.
int log2_star_of_log2(double lg) noexcept;

/// Iterated-log count of log log: returns log2(log2(x)) clamped at >= 0,
/// for reporting Theta(log log Delta) series. Arguments <= 2 map to 0.
double log2_log2(double x) noexcept;

/// Same but taking lg = log2(x) to survive huge Delta.
double log2_log2_of_log2(double lg) noexcept;

/// Power tower 2^^h (tower(0)=1, tower(1)=2, tower(2)=4, tower(3)=16, ...).
/// Throws std::overflow_error for h that would exceed double range.
double tower2(int h);

/// Floor of log2 for positive integers.
int floor_log2(std::uint64_t x) noexcept;

/// Ceiling of log2 for positive integers (ceil_log2(1) == 0).
int ceil_log2(std::uint64_t x) noexcept;

/// True if base^exp (base > 1, exp > 0) stays below the overflow guard
/// (~1e300). Used by instance generators before materializing coordinates.
bool pow_fits(double base, double exp) noexcept;

}  // namespace wagg::util

#endif  // WAGG_UTIL_LOGMATH_H
