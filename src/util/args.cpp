#include "util/args.h"

#include <cstddef>
#include <stdexcept>

namespace wagg::util {

Args::Args(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      // The explicit std::string temporary makes the map store a move, not
      // an operator=(const char*) — that spelling trips a GCC 12 -Wrestrict
      // false positive (impossible overlap offsets) once the string replace
      // path is inlined.
      values_.insert_or_assign(arg.substr(2), std::string("1"));
    } else {
      values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    }
  }
}

bool Args::has(const std::string& key) const { return values_.count(key) > 0; }

std::string Args::get(const std::string& key,
                      const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

double Args::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::size_t consumed = 0;
  const double value = std::stod(it->second, &consumed);
  if (consumed != it->second.size()) {
    throw std::invalid_argument("Args: --" + key + " is not a number: " +
                                it->second);
  }
  return value;
}

long long Args::get_int(const std::string& key, long long fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::size_t consumed = 0;
  const long long value = std::stoll(it->second, &consumed);
  if (consumed != it->second.size()) {
    throw std::invalid_argument("Args: --" + key + " is not an integer: " +
                                it->second);
  }
  return value;
}

}  // namespace wagg::util
