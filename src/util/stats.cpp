#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wagg::util {

void RunningStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double percentile(std::span<const double> values, double p) {
  if (values.empty()) throw std::invalid_argument("percentile: empty input");
  if (p < 0.0 || p > 100.0) {
    throw std::invalid_argument("percentile: p outside [0, 100]");
  }
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double percentile_or(std::span<const double> values, double p,
                     double fallback) {
  if (p < 0.0 || p > 100.0) {
    throw std::invalid_argument("percentile_or: p outside [0, 100]");
  }
  if (values.empty()) return fallback;
  return percentile(values, p);
}

double regression_slope(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("regression_slope: size mismatch");
  }
  if (x.size() < 2) {
    throw std::invalid_argument("regression_slope: need >= 2 points");
  }
  const auto n = static_cast<double>(x.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) {
    throw std::invalid_argument("regression_slope: degenerate x values");
  }
  return (n * sxy - sx * sy) / denom;
}

double Samples::percentile(double p) const {
  return util::percentile(values_, p);
}

double Samples::mean() const {
  if (values_.empty()) throw std::invalid_argument("Samples::mean: empty");
  double s = 0.0;
  for (double v : values_) s += v;
  return s / static_cast<double>(values_.size());
}

double Samples::min() const {
  if (values_.empty()) throw std::invalid_argument("Samples::min: empty");
  return *std::min_element(values_.begin(), values_.end());
}

double Samples::max() const {
  if (values_.empty()) throw std::invalid_argument("Samples::max: empty");
  return *std::max_element(values_.begin(), values_.end());
}

}  // namespace wagg::util
