#include "util/rng.h"

#include <cmath>

namespace wagg::util {

std::uint64_t Rng::below(std::uint64_t n) noexcept {
  // Lemire's nearly-divisionless method with rejection.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t t = (0 - n) % n;
    while (lo < t) {
      x = next();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::normal() noexcept {
  // Marsaglia polar method; no cached second value to keep state minimal
  // and behaviour independent of call parity.
  for (;;) {
    const double u = uniform(-1.0, 1.0);
    const double v = uniform(-1.0, 1.0);
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

}  // namespace wagg::util
