#ifndef WAGG_UTIL_MUTEX_H
#define WAGG_UTIL_MUTEX_H

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace wagg::util {

/// Thin annotated wrapper over std::mutex — the ONLY mutex type used in
/// src/ (enforced by the wagg_lint `raw-sync` rule), so every protected
/// member can carry WAGG_GUARDED_BY and Clang's thread-safety analysis sees
/// the whole locking story.
///
/// The API is intentionally minimal: lock/unlock/try_lock for the analysis
/// plus native() for CondVar interop. Prefer MutexLock scopes over manual
/// lock()/unlock() pairs.
class WAGG_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() WAGG_ACQUIRE() { mutex_.lock(); }
  void unlock() WAGG_RELEASE() { mutex_.unlock(); }
  [[nodiscard]] bool try_lock() WAGG_TRY_ACQUIRE(true) {
    return mutex_.try_lock();
  }

  /// The wrapped handle, for CondVar only. Waiting re-locks through the
  /// native mutex, so the capability bookkeeping stays consistent (CondVar
  /// is REQUIRES(mu) — held before and after the wait).
  [[nodiscard]] std::mutex& native() noexcept { return mutex_; }

 private:
  std::mutex mutex_;
};

/// RAII scope holding a Mutex — the std::lock_guard of the annotated world.
/// The analysis knows the capability is held from construction to the end
/// of the enclosing scope.
class WAGG_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) WAGG_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() WAGG_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable paired with util::Mutex. wait() takes the Mutex the
/// caller already holds (REQUIRES — the analysis checks the call site), and
/// callers loop on their predicate INLINE:
///
///   util::MutexLock lock(mutex_);
///   while (!ready_) cv_.wait(mutex_);
///
/// There is deliberately no predicate-lambda overload: the analysis treats
/// a lambda body as a separate function that cannot see the held capability,
/// so guarded reads inside it would need carve-outs. An inline while-loop
/// keeps the predicate's guarded reads inside the locked scope where the
/// analysis can verify them.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mutex`, blocks, and re-acquires before returning.
  void wait(Mutex& mutex) WAGG_REQUIRES(mutex) {
    // Adopt the already-held native mutex for the wait, then release the
    // unique_lock's ownership claim so the wrapper keeps it afterwards —
    // from the analysis' point of view the capability never moved.
    std::unique_lock<std::mutex> native(mutex.native(), std::adopt_lock);
    cv_.wait(native);
    (void)native.release();
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace wagg::util

#endif  // WAGG_UTIL_MUTEX_H
