#ifndef WAGG_UTIL_THREAD_ANNOTATIONS_H
#define WAGG_UTIL_THREAD_ANNOTATIONS_H

/// Clang Thread Safety Analysis attribute macros.
///
/// These turn the repo's locking invariants — "this member is protected by
/// that mutex", "this method must be called with the lock held" — into
/// compile-time checks under `clang++ -Wthread-safety` (the CI
/// static-analysis job builds with -Wthread-safety -Werror). On compilers
/// without the capability attributes (GCC) every macro expands to nothing,
/// so annotated code builds everywhere.
///
/// Conventions (see README "Correctness tooling"):
///   - Every mutex-protected member carries WAGG_GUARDED_BY(mutex_).
///   - Private methods called with a lock already held are annotated
///     WAGG_REQUIRES(mutex_) instead of re-locking.
///   - Deliberately lock-free paths (tracer rings, metric atomics) that the
///     analysis cannot model are marked WAGG_NO_THREAD_SAFETY_ANALYSIS with
///     a comment justifying why the access is safe without the capability.
///
/// The macros mirror the Abseil/Clang-doc names with a WAGG_ prefix:
/// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#if defined(__clang__) && defined(__has_attribute)
#define WAGG_THREAD_ANNOTATION_IMPL(x) __has_attribute(x)
#else
#define WAGG_THREAD_ANNOTATION_IMPL(x) 0
#endif

#if WAGG_THREAD_ANNOTATION_IMPL(capability)
#define WAGG_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define WAGG_THREAD_ANNOTATION(x)
#endif

/// A type that is a lockable capability ("mutex" names the kind in
/// diagnostics).
#define WAGG_CAPABILITY(x) WAGG_THREAD_ANNOTATION(capability(x))

/// A RAII type that acquires a capability at construction and releases it at
/// destruction (util::MutexLock).
#define WAGG_SCOPED_CAPABILITY WAGG_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding the given mutex.
#define WAGG_GUARDED_BY(x) WAGG_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose POINTEE is protected by the given mutex (the pointer
/// itself may be read freely).
#define WAGG_PT_GUARDED_BY(x) WAGG_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function that may only be called while holding the listed capabilities.
#define WAGG_REQUIRES(...) \
  WAGG_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function that may only be called while NOT holding the listed
/// capabilities (guards against self-deadlock on non-reentrant mutexes).
#define WAGG_EXCLUDES(...) \
  WAGG_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function that acquires the capability and holds it on return.
#define WAGG_ACQUIRE(...) \
  WAGG_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function that releases the capability.
#define WAGG_RELEASE(...) \
  WAGG_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function that acquires the capability iff it returns `value`.
#define WAGG_TRY_ACQUIRE(value, ...) \
  WAGG_THREAD_ANNOTATION(try_acquire_capability(value, __VA_ARGS__))

/// Declares a lock-ordering edge: this mutex is acquired after the listed
/// ones (checked by -Wthread-safety-beta).
#define WAGG_ACQUIRED_AFTER(...) \
  WAGG_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define WAGG_ACQUIRED_BEFORE(...) \
  WAGG_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

/// Function returning a reference to the given capability (accessor
/// pattern).
#define WAGG_RETURN_CAPABILITY(x) \
  WAGG_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: the function's body is excluded from the analysis. Every
/// use MUST carry a comment explaining the synchronization that replaces the
/// lock (SPSC ownership, quiescence contract, atomics-only protocol, ...).
#define WAGG_NO_THREAD_SAFETY_ANALYSIS \
  WAGG_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // WAGG_UTIL_THREAD_ANNOTATIONS_H
