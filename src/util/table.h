#ifndef WAGG_UTIL_TABLE_H
#define WAGG_UTIL_TABLE_H

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace wagg::util {

/// Column-aligned ASCII table, used by the benchmark harness to print the
/// paper-shaped rows (one table per paper figure/claim). Cells are strings;
/// numeric helpers format with fixed precision.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Starts a new row; subsequent cell() calls append to it.
  Table& row();
  Table& cell(std::string value);
  Table& cell(const char* value);
  Table& cell(double value, int precision = 3);
  Table& cell(std::size_t value);
  Table& cell(int value);

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }

  /// Renders with a header rule; pads every column to its widest cell.
  void print(std::ostream& os) const;

  /// Comma-separated rendering for machine consumption.
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given precision, trimming trailing zeros.
std::string format_double(double value, int precision = 3);

}  // namespace wagg::util

#endif  // WAGG_UTIL_TABLE_H
